#pragma once

#include <cstdint>
#include <vector>

#include "ht/packet.hpp"
#include "sim/stats.hpp"

namespace ms::rmc {

/// Sequential stream prefetcher for remote memory (the paper's stated
/// future-work optimization, Sec. VI: "the use of prefetching techniques
/// will bring the performance closer to local memory").
///
/// Pure detector: the node access path reports every remote demand-miss
/// line per core; when two consecutive misses are one line apart, the
/// stream is confirmed and the detector returns the next `degree` line
/// addresses. The node then issues background RMC reads and installs the
/// lines into the requesting core's cache. Disabled by degree == 0.
class StreamPrefetcher {
 public:
  struct Params {
    int degree = 0;          ///< lines fetched ahead per confirmed stream
    int streams_per_core = 4;
    std::uint32_t line_bytes = 64;
  };

  explicit StreamPrefetcher(const Params& p, int cores);

  /// Observes a demand miss; returns prefetch candidates (may be empty).
  std::vector<ht::PAddr> observe(int core, ht::PAddr line_addr);

  std::uint64_t issued() const { return issued_.value(); }
  bool enabled() const { return params_.degree > 0; }
  const Params& params() const { return params_; }

 private:
  struct Stream {
    ht::PAddr last = 0;
    bool confirmed = false;
    std::uint64_t lru = 0;
  };

  Params params_;
  std::vector<std::vector<Stream>> streams_;  // [core][slot]
  std::uint64_t tick_ = 0;
  sim::Counter issued_;
};

}  // namespace ms::rmc
