#include "rmc/prefetcher.hpp"

namespace ms::rmc {

StreamPrefetcher::StreamPrefetcher(const Params& p, int cores) : params_(p) {
  streams_.resize(static_cast<std::size_t>(cores));
  for (auto& per_core : streams_) {
    per_core.resize(static_cast<std::size_t>(p.streams_per_core));
  }
}

std::vector<ht::PAddr> StreamPrefetcher::observe(int core, ht::PAddr line) {
  std::vector<ht::PAddr> out;
  if (!enabled()) return out;
  ++tick_;
  auto& per_core = streams_[static_cast<std::size_t>(core)];

  // Does this miss continue a tracked stream?
  for (auto& s : per_core) {
    if (s.last != 0 && line == s.last + params_.line_bytes) {
      s.last = line;
      s.lru = tick_;
      s.confirmed = true;
      out.reserve(static_cast<std::size_t>(params_.degree));
      for (int i = 1; i <= params_.degree; ++i) {
        out.push_back(line + static_cast<ht::PAddr>(i) * params_.line_bytes);
      }
      issued_.inc(out.size());
      return out;
    }
  }

  // New stream: replace the least recently used slot.
  Stream* victim = &per_core[0];
  for (auto& s : per_core) {
    if (s.lru < victim->lru) victim = &s;
  }
  victim->last = line;
  victim->confirmed = false;
  victim->lru = tick_;
  return out;
}

}  // namespace ms::rmc
