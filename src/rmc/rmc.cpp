#include "rmc/rmc.hpp"

#include <stdexcept>

#include "sim/tracer.hpp"

namespace ms::rmc {

namespace {

/// Decrements the in-flight gauge on every exit path (including frame
/// destruction on engine teardown).
struct GaugeGuard {
  int* v;
  explicit GaugeGuard(int* gauge) : v(gauge) { ++*v; }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;
  ~GaugeGuard() { --*v; }
};

}  // namespace

Rmc::Rmc(sim::Engine& engine, ht::NodeId self, noc::Fabric& fabric,
         const Params& p)
    : engine_(engine),
      self_(self),
      fabric_(fabric),
      params_(p),
      bridge_(p.bridge),
      port_(engine, p.local_port_slots),
      track_("rmc." + std::to_string(self)) {}

sim::Task<void> Rmc::use_port(Dir d, sim::Time occupancy, bool client_leg,
                              sim::TraceContext ctx) {
  const bool contended = port_.available() == 0;
  const int queued = static_cast<int>(port_.waiters());
  const sim::Time asked = engine_.now();
  co_await port_.acquire();
  port_wait_.add_time(engine_.now() - asked);
  // Recorded retroactively: the wait is only interesting once it happened.
  sim::record_wait(engine_, track_, "port.wait", asked, ctx);

  if (client_leg && contended && last_dir_ != Dir::kNone && last_dir_ != d) {
    const int w = std::min(queued + 1, params_.max_turnaround_waiters);
    occupancy += params_.per_waiter_turnaround * static_cast<sim::Time>(w);
    turnarounds_.inc();
  }
  last_dir_ = d;
  {
    sim::SegmentSpan port(engine_, ctx, track_, "port", sim::Segment::kRmc);
    co_await engine_.delay(occupancy);
  }
  port_.release();
}

sim::Task<void> Rmc::client_access(ht::PAddr addr, std::uint32_t bytes,
                                   bool is_write, sim::TraceContext ctx) {
  if (!node::has_prefix(addr)) {
    throw std::logic_error("Rmc::client_access: address has no node prefix");
  }
  const sim::Time start = engine_.now();
  client_requests_.inc();
  GaugeGuard in_flight(&outstanding_);
  sim::ScopedSpan span(engine_, track_, is_write ? "write" : "read", ctx);
  // Children attach under this round-trip container when it recorded;
  // otherwise the incoming context is passed through untouched.
  const sim::TraceContext here = span.ctx() ? span.ctx() : ctx;
  // Watchdog over the whole round trip; disarms on every exit path
  // (loopback co_return, normal return, exception) via RAII.
  sim::ScopedTimer watchdog =
      params_.request_timeout > 0
          ? sim::ScopedTimer(engine_,
                             engine_.schedule(params_.request_timeout,
                                              [this] {
                                                request_timeouts_.inc();
                                              }))
          : sim::ScopedTimer();

  ht::Packet req{
      .type = is_write ? ht::PacketType::kWriteReq : ht::PacketType::kReadReq,
      .src = self_,
      .dst = node::node_of(addr),
      .addr = addr,
      .size = bytes,
      .tag = next_tag_++,
  };
  req.txn = here.txn;

  // Request enters the RMC from the local HT domain.
  {
    sim::ScopedSpan issue(engine_, track_, "issue", here);
    const sim::TraceContext ic = issue.ctx() ? issue.ctx() : here;
    co_await use_port(Dir::kToFabric, params_.process_latency,
                      /*client_leg=*/true, ic);
    sim::SegmentSpan encap(engine_, ic, track_, "encap", sim::Segment::kRmc);
    co_await engine_.delay(bridge_.encapsulate(req));
  }

  if (req.dst == self_) {
    // Loopback mode (Sec. III-B): the prefix names this very node. The RMC
    // strips it and replays the access locally without touching the fabric.
    loopbacks_.inc();
    if (hot_pages_ != nullptr) hot_pages_->record(addr >> 12);
    {
      sim::SegmentSpan decap(engine_, here, track_, "decap",
                             sim::Segment::kRmc);
      co_await engine_.delay(bridge_.decapsulate(req));
    }
    co_await use_port(Dir::kToLocal, params_.serve_occupancy, false, here);
    co_await local_service_(node::local_part(addr), bytes, is_write, here);
    co_await use_port(Dir::kToFabric, params_.serve_occupancy, false, here);
    // Response delivery to the core is a client leg again.
    co_await use_port(Dir::kToLocal, params_.process_latency, true, here);
    round_trip_.add_time(engine_.now() - start);
    co_return;
  }

  {
    sim::ScopedSpan hop(engine_, track_, "fabric.req", here);
    req.parent_span = hop.ctx() ? hop.ctx().span : here.span;
    co_await fabric_.traverse(req);
  }

  Rmc* peer = peer_lookup_ ? peer_lookup_(req.dst) : nullptr;
  if (peer == nullptr) {
    throw std::logic_error("Rmc: no peer RMC registered for destination node");
  }
  req.parent_span = here.span;
  co_await peer->serve(req);

  ht::Packet resp{
      .type = is_write ? ht::PacketType::kWriteAck : ht::PacketType::kReadResp,
      .src = req.dst,
      .dst = self_,
      .addr = req.addr,
      .size = is_write ? 0 : bytes,
      .tag = req.tag,
  };
  resp.txn = here.txn;
  {
    sim::ScopedSpan hop(engine_, track_, "fabric.resp", here);
    resp.parent_span = hop.ctx() ? hop.ctx().span : here.span;
    co_await fabric_.traverse(resp);
  }

  // Response is decapsulated and delivered back into the local HT domain.
  {
    sim::ScopedSpan reply(engine_, track_, "reply", here);
    const sim::TraceContext rc = reply.ctx() ? reply.ctx() : here;
    {
      sim::SegmentSpan decap(engine_, rc, track_, "decap",
                             sim::Segment::kRmc);
      co_await engine_.delay(bridge_.decapsulate(resp));
    }
    co_await use_port(Dir::kToLocal, params_.process_latency,
                      /*client_leg=*/true, rc);
  }
  round_trip_.add_time(engine_.now() - start);
}

sim::Task<void> Rmc::serve(ht::Packet req) {
  served_requests_.inc();
  if (hot_pages_ != nullptr) hot_pages_->record(req.addr >> 12);
  const sim::TraceContext in{req.txn, req.parent_span};
  sim::ScopedSpan span(engine_, track_, "serve", in);
  const sim::TraceContext here = span.ctx() ? span.ctx() : in;
  const bool is_write = req.type == ht::PacketType::kWriteReq;
  {
    sim::SegmentSpan decap(engine_, here, track_, "decap",
                           sim::Segment::kRmc);
    co_await engine_.delay(bridge_.decapsulate(req));
  }
  // Forward into the donor's HT domain; its memory controllers answer. The
  // serve path pipelines: the port is held for the issue interval only and
  // the residual pipeline latency runs unblocked.
  co_await use_port(Dir::kToLocal, params_.serve_occupancy, false, here);
  {
    sim::SegmentSpan pipe(engine_, here, track_, "pipeline",
                          sim::Segment::kRmc);
    co_await engine_.delay(params_.process_latency - params_.serve_occupancy);
  }
  if (!local_service_) {
    throw std::logic_error("Rmc::serve: no local service bound");
  }
  co_await local_service_(node::local_part(req.addr), req.size, is_write,
                          here);
  // Response crosses back into the RMC and is encapsulated for the fabric.
  co_await use_port(Dir::kToFabric, params_.serve_occupancy, false, here);
  {
    sim::SegmentSpan pipe(engine_, here, track_, "pipeline",
                          sim::Segment::kRmc);
    co_await engine_.delay(params_.process_latency - params_.serve_occupancy);
  }
  ht::Packet resp{
      .type = is_write ? ht::PacketType::kWriteAck : ht::PacketType::kReadResp,
      .src = self_,
      .dst = req.src,
      .addr = req.addr,
      .size = is_write ? 0 : req.size,
      .tag = req.tag,
  };
  {
    sim::SegmentSpan encap(engine_, here, track_, "encap",
                           sim::Segment::kRmc);
    co_await engine_.delay(bridge_.encapsulate(resp));
  }
}

}  // namespace ms::rmc
