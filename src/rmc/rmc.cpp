#include "rmc/rmc.hpp"

#include <stdexcept>

#include "sim/tracer.hpp"

namespace ms::rmc {

Rmc::Rmc(sim::Engine& engine, ht::NodeId self, noc::Fabric& fabric,
         const Params& p)
    : engine_(engine),
      self_(self),
      fabric_(fabric),
      params_(p),
      bridge_(p.bridge),
      port_(engine, p.local_port_slots),
      track_("rmc." + std::to_string(self)) {}

sim::Task<void> Rmc::use_port(Dir d, sim::Time occupancy, bool client_leg) {
  const bool contended = port_.available() == 0;
  const int queued = static_cast<int>(port_.waiters());
  const sim::Time asked = engine_.now();
  co_await port_.acquire();
  port_wait_.add_time(engine_.now() - asked);
  if (auto* tr = engine_.tracer(); tr != nullptr && engine_.now() != asked) {
    // Recorded retroactively: the wait is only interesting once it happened.
    tr->end_span(tr->begin_span(track_, "port.wait", asked), engine_.now());
  }

  if (client_leg && contended && last_dir_ != Dir::kNone && last_dir_ != d) {
    const int w = std::min(queued + 1, params_.max_turnaround_waiters);
    occupancy += params_.per_waiter_turnaround * static_cast<sim::Time>(w);
    turnarounds_.inc();
  }
  last_dir_ = d;
  co_await engine_.delay(occupancy);
  port_.release();
}

sim::Task<void> Rmc::client_access(ht::PAddr addr, std::uint32_t bytes,
                                   bool is_write) {
  if (!node::has_prefix(addr)) {
    throw std::logic_error("Rmc::client_access: address has no node prefix");
  }
  const sim::Time start = engine_.now();
  client_requests_.inc();
  sim::ScopedSpan span(engine_, track_, is_write ? "write" : "read");
  // Watchdog over the whole round trip; disarms on every exit path
  // (loopback co_return, normal return, exception) via RAII.
  sim::ScopedTimer watchdog =
      params_.request_timeout > 0
          ? sim::ScopedTimer(engine_,
                             engine_.schedule(params_.request_timeout,
                                              [this] {
                                                request_timeouts_.inc();
                                              }))
          : sim::ScopedTimer();

  ht::Packet req{
      .type = is_write ? ht::PacketType::kWriteReq : ht::PacketType::kReadReq,
      .src = self_,
      .dst = node::node_of(addr),
      .addr = addr,
      .size = bytes,
      .tag = next_tag_++,
  };

  // Request enters the RMC from the local HT domain.
  {
    sim::ScopedSpan issue(engine_, track_, "issue");
    co_await use_port(Dir::kToFabric, params_.process_latency,
                      /*client_leg=*/true);
    co_await engine_.delay(bridge_.encapsulate(req));
  }

  if (req.dst == self_) {
    // Loopback mode (Sec. III-B): the prefix names this very node. The RMC
    // strips it and replays the access locally without touching the fabric.
    loopbacks_.inc();
    co_await engine_.delay(bridge_.decapsulate(req));
    co_await use_port(Dir::kToLocal, params_.serve_occupancy, false);
    co_await local_service_(node::local_part(addr), bytes, is_write);
    co_await use_port(Dir::kToFabric, params_.serve_occupancy, false);
    // Response delivery to the core is a client leg again.
    co_await use_port(Dir::kToLocal, params_.process_latency, true);
    round_trip_.add_time(engine_.now() - start);
    co_return;
  }

  {
    sim::ScopedSpan hop(engine_, track_, "fabric.req");
    co_await fabric_.traverse(req);
  }

  Rmc* peer = peer_lookup_ ? peer_lookup_(req.dst) : nullptr;
  if (peer == nullptr) {
    throw std::logic_error("Rmc: no peer RMC registered for destination node");
  }
  co_await peer->serve(req);

  ht::Packet resp{
      .type = is_write ? ht::PacketType::kWriteAck : ht::PacketType::kReadResp,
      .src = req.dst,
      .dst = self_,
      .addr = req.addr,
      .size = is_write ? 0 : bytes,
      .tag = req.tag,
  };
  {
    sim::ScopedSpan hop(engine_, track_, "fabric.resp");
    co_await fabric_.traverse(resp);
  }

  // Response is decapsulated and delivered back into the local HT domain.
  {
    sim::ScopedSpan reply(engine_, track_, "reply");
    co_await engine_.delay(bridge_.decapsulate(resp));
    co_await use_port(Dir::kToLocal, params_.process_latency,
                      /*client_leg=*/true);
  }
  round_trip_.add_time(engine_.now() - start);
}

sim::Task<void> Rmc::serve(ht::Packet req) {
  served_requests_.inc();
  sim::ScopedSpan span(engine_, track_, "serve");
  const bool is_write = req.type == ht::PacketType::kWriteReq;
  co_await engine_.delay(bridge_.decapsulate(req));
  // Forward into the donor's HT domain; its memory controllers answer. The
  // serve path pipelines: the port is held for the issue interval only and
  // the residual pipeline latency runs unblocked.
  co_await use_port(Dir::kToLocal, params_.serve_occupancy, false);
  co_await engine_.delay(params_.process_latency - params_.serve_occupancy);
  if (!local_service_) {
    throw std::logic_error("Rmc::serve: no local service bound");
  }
  co_await local_service_(node::local_part(req.addr), req.size, is_write);
  // Response crosses back into the RMC and is encapsulated for the fabric.
  co_await use_port(Dir::kToFabric, params_.serve_occupancy, false);
  co_await engine_.delay(params_.process_latency - params_.serve_occupancy);
  ht::Packet resp{
      .type = is_write ? ht::PacketType::kWriteAck : ht::PacketType::kReadResp,
      .src = self_,
      .dst = req.src,
      .addr = req.addr,
      .size = is_write ? 0 : req.size,
      .tag = req.tag,
  };
  co_await engine_.delay(bridge_.encapsulate(resp));
}

}  // namespace ms::rmc
