#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ht/bridge.hpp"
#include "ht/packet.hpp"
#include "noc/fabric.hpp"
#include "node/address_map.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/timeseries.hpp"
#include "sim/trace_context.hpp"

namespace ms::rmc {

/// Remote Memory Controller (Sec. III-B / IV-A).
///
/// Appears to the local cores as a HyperTransport I/O unit covering every
/// physical address with a nonzero node prefix. A request whose prefix
/// names another node is encapsulated (HT -> HNC-HT) and forwarded over the
/// fabric; the destination RMC strips the prefix ("sets those 14 bits to
/// zero") and replays the access on its local memory controllers, then
/// returns the response. Addressing the node's own prefix takes the
/// loopback path: the request turns around inside the RMC without touching
/// the fabric.
///
/// Performance model:
///  * One shared local HT port carries everything crossing between the
///    node's HT domain and the RMC, in both directions. The port is held
///    for `process_latency` per message. When the port is contended and
///    consecutive messages flow in opposite directions, the pipeline pays a
///    turnaround penalty proportional to queue depth — this is the client
///    RMC bottleneck the paper diagnoses in Figs. 7/8 (the FPGA saturates
///    around two hammering threads, and longer network paths *reduce*
///    pressure enough to help slightly).
///  * The per-core outstanding-request limit (the paper's "only one
///    outstanding memory request targeted to the memory region mapped to
///    the RMC") is enforced by the cores in node::Node, not here.
class Rmc {
 public:
  /// Timing-only access to the *donor-local* memory system, bound to
  /// node::Node::serve_remote by cluster wiring. The context links the
  /// donor-side spans into the requester's traced transaction.
  using LocalService =
      std::function<sim::Task<void>(ht::PAddr local_addr, std::uint32_t bytes,
                                    bool is_write, sim::TraceContext ctx)>;

  struct Params {
    // Calibrated so the Fig. 6/7 shapes reproduce: ~1 us 1-hop read round
    // trip, client RMC saturation between 2 and 4 hammering threads, and a
    // slight *improvement* when overloaded servers move farther away.
    sim::Time process_latency = sim::ns(170);     ///< FPGA per-message pipeline
    /// Port occupancy of a *served* (donor-side) message. The serve path is
    /// a straight bridge and pipelines in the FPGA, so its issue interval
    /// is much shorter than its latency — this is why one memory server
    /// absorbs ~3 hammering nodes before the control thread notices
    /// (Fig. 8), while the request-initiating client path saturates at two
    /// threads (Fig. 7).
    sim::Time serve_occupancy = sim::ns(60);
    sim::Time per_waiter_turnaround = sim::ns(50);///< contention thrash per queued msg
    int max_turnaround_waiters = 4;
    int local_port_slots = 1;                     ///< HT-side interface width
    /// Round-trip watchdog for client_access: request_timeouts() ticks when
    /// a round trip exceeds this. Zero disables it (default). The timer is
    /// cancelled when the response arrives first, on every exit path — it
    /// rides a ScopedTimer in the coroutine frame.
    sim::Time request_timeout = 0;
    ht::HncBridge::Params bridge;
  };

  Rmc(sim::Engine& engine, ht::NodeId self, noc::Fabric& fabric,
      const Params& p);
  Rmc(const Rmc&) = delete;
  Rmc& operator=(const Rmc&) = delete;

  void set_local_service(LocalService svc) { local_service_ = std::move(svc); }
  void set_peer_lookup(std::function<Rmc*(ht::NodeId)> lookup) {
    peer_lookup_ = std::move(lookup);
  }

  /// Full round trip for one remote access issued by a local core. `addr`
  /// carries the node prefix. Resumes when the response has been delivered
  /// back into the local HT domain. `ctx` links the recorded spans into a
  /// traced transaction (observability only; timing is unaffected).
  sim::Task<void> client_access(ht::PAddr addr, std::uint32_t bytes,
                                bool is_write, sim::TraceContext ctx = {});

  ht::NodeId node_id() const { return self_; }

  /// Optional hot-page profiler: every request this RMC answers (served or
  /// loopback) records the 4 KiB page of the target address. Not owned.
  void set_hot_pages(sim::HotPageProfiler* hp) { hot_pages_ = hp; }

  /// Client round trips currently in flight (time-series gauge).
  int outstanding() const { return outstanding_; }
  /// Requests queued on the shared local HT port right now.
  std::size_t port_waiters() const { return port_.waiters(); }

  std::uint64_t client_requests() const { return client_requests_.value(); }
  std::uint64_t served_requests() const { return served_requests_.value(); }
  std::uint64_t loopbacks() const { return loopbacks_.value(); }
  std::uint64_t turnarounds() const { return turnarounds_.value(); }
  std::uint64_t request_timeouts() const { return request_timeouts_.value(); }
  const sim::Sampler& round_trip() const { return round_trip_; }
  const sim::Sampler& port_wait() const { return port_wait_; }
  const ht::HncBridge& bridge() const { return bridge_; }

  /// Fault injection for the fuzzing harness: count a client request that
  /// never existed, breaking the every-request-exactly-one-response books
  /// (client_requests == completed round trips at drain) so the packet-
  /// conservation checker can prove it fires. Test-only.
  void test_inject_phantom_request() { client_requests_.inc(); }

 private:
  enum class Dir { kNone, kToFabric, kToLocal };

  /// Occupies the shared local HT port for one message in direction `d`.
  /// Client legs hold it for the full process latency and pay turnaround
  /// thrash under contention; pipelined serve legs hold it for
  /// `occupancy` only (the residual pipeline latency is charged by the
  /// caller without blocking the port).
  sim::Task<void> use_port(Dir d, sim::Time occupancy, bool client_leg,
                           sim::TraceContext ctx = {});

  /// Server side: handles a request that has traversed the fabric. Runs in
  /// the *requesting* process's coroutine but consumes this RMC's resources.
  sim::Task<void> serve(ht::Packet req);

  sim::Engine& engine_;
  ht::NodeId self_;
  noc::Fabric& fabric_;
  Params params_;
  ht::HncBridge bridge_;
  sim::Semaphore port_;
  std::string track_;  ///< tracer track ("rmc.N")
  Dir last_dir_ = Dir::kNone;
  std::uint64_t next_tag_ = 1;
  int outstanding_ = 0;
  LocalService local_service_;
  std::function<Rmc*(ht::NodeId)> peer_lookup_;
  sim::HotPageProfiler* hot_pages_ = nullptr;

  sim::Counter client_requests_;
  sim::Counter served_requests_;
  sim::Counter loopbacks_;
  sim::Counter turnarounds_;
  sim::Counter request_timeouts_;
  sim::Sampler round_trip_;
  sim::Sampler port_wait_;
};

}  // namespace ms::rmc
