#pragma once

#include <cstdint>
#include <vector>

#include "ht/packet.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ms::mem {

/// Open-page DRAM timing for one channel (the paper's nodes use 800 MHz
/// DDR2, one channel per Opteron socket).
///
/// The model keeps the open row per bank: an access to the open row costs
/// CAS only; a conflict costs precharge + activate + CAS. Data transfer is
/// charged at the channel's burst bandwidth. This is deliberately simpler
/// than a full DDR state machine — the evaluation needs realistic *average*
/// local-memory latency (~60-70 ns loaded) and bank-level parallelism, not
/// per-command fidelity.
class DramModel {
 public:
  struct Params {
    int banks = 8;
    std::uint64_t row_bytes = 8 * 1024;
    sim::Time t_cas = sim::ns(15);       ///< CL ~ 5 cycles @ 400 MHz clock
    sim::Time t_rcd = sim::ns(15);       ///< activate to column
    sim::Time t_rp = sim::ns(15);        ///< precharge
    double bytes_per_ns = 6.4;           ///< DDR2-800 x 64-bit channel
  };

  explicit DramModel(const Params& p);

  int bank_of(ht::PAddr addr) const;

  /// Timing for one access; updates the open-row bookkeeping.
  /// `bank_ready` handling (tRC occupancy) is done by the controller; this
  /// returns pure access latency.
  sim::Time access_latency(ht::PAddr addr, std::uint32_t bytes);

  std::uint64_t row_hits() const { return row_hits_.value(); }
  std::uint64_t row_conflicts() const { return row_conflicts_.value(); }
  const Params& params() const { return params_; }

 private:
  Params params_;
  std::vector<std::int64_t> open_row_;  // -1 = closed
  sim::Counter row_hits_;
  sim::Counter row_conflicts_;
};

}  // namespace ms::mem
