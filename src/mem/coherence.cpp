#include "mem/coherence.hpp"

#include <bit>
#include <stdexcept>

namespace ms::mem {

CoherenceDirectory::CoherenceDirectory(const Params& p,
                                       std::vector<Cache*> caches)
    : params_(p), caches_(std::move(caches)) {
  if (caches_.size() > 64) {
    throw std::invalid_argument("CoherenceDirectory: at most 64 cores/node");
  }
}

int CoherenceDirectory::sharer_count(ht::PAddr line) const {
  auto it = lines_.find(line);
  return it == lines_.end() ? 0 : std::popcount(it->second.sharers);
}

CoherenceDirectory::Outcome CoherenceDirectory::on_miss(int core,
                                                        ht::PAddr line,
                                                        bool is_write) {
  Outcome out;
  Entry& e = lines_[line];
  const std::uint64_t self = 1ULL << core;
  const int before = std::popcount(e.sharers);

  if (is_write) {
    // Invalidate every other sharer; a modified owner supplies the data.
    std::uint64_t others = e.sharers & ~self;
    while (others) {
      int peer = std::countr_zero(others);
      others &= others - 1;
      ++out.probes;
      auto inv = caches_[static_cast<std::size_t>(peer)]->invalidate(line);
      if (inv.was_dirty) out.dirty_transfer = true;
      ++out.invalidations;
      if (profiler_ != nullptr) {
        profiler_->record_event(sim::CohDomain::kIntra,
                                sim::CohEvent::kProbe, line,
                                requester_base_ + core);
        profiler_->record_invalidation(sim::CohDomain::kIntra,
                                       sim::CohEvent::kInvalidate, line,
                                       requester_base_ + core,
                                       requester_base_ + peer);
        if (inv.was_dirty) {
          profiler_->record_event(sim::CohDomain::kIntra,
                                  sim::CohEvent::kWritebackForced, line,
                                  requester_base_ + core);
        }
      }
    }
    e.sharers = self;
    e.owner = core;
  } else {
    // A modified owner must supply and clean the line.
    if (e.owner >= 0 && e.owner != core && !test_skip_downgrade_) {
      ++out.probes;
      const bool was_dirty =
          caches_[static_cast<std::size_t>(e.owner)]->clean(line);
      if (was_dirty) out.dirty_transfer = true;
      if (profiler_ != nullptr) {
        profiler_->record_event(sim::CohDomain::kIntra,
                                sim::CohEvent::kProbe, line,
                                requester_base_ + core);
        profiler_->record_event(sim::CohDomain::kIntra,
                                sim::CohEvent::kDowngrade, line,
                                requester_base_ + core);
        if (was_dirty) {
          profiler_->record_event(sim::CohDomain::kIntra,
                                  sim::CohEvent::kWritebackForced, line,
                                  requester_base_ + core);
        }
      }
      e.owner = -1;
    }
    e.sharers |= self;
  }

  if (profiler_ != nullptr && out.probes > 0) {
    profiler_->record_sharers(line, before, std::popcount(e.sharers));
  }
  probes_.inc(static_cast<std::uint64_t>(out.probes));
  invalidations_.inc(static_cast<std::uint64_t>(out.invalidations));
  if (out.dirty_transfer) dirty_transfers_.inc();
  if (out.probes > 0) out.latency += params_.probe_latency;  // probed in parallel
  if (out.dirty_transfer) out.latency += params_.dirty_transfer_latency;
  return out;
}

CoherenceDirectory::Outcome CoherenceDirectory::on_write_hit(int core,
                                                             ht::PAddr line) {
  Outcome out;
  Entry& e = lines_[line];
  const std::uint64_t self = 1ULL << core;
  e.sharers |= self;  // defensive: a hit implies the core is a sharer
  const int before = std::popcount(e.sharers);
  std::uint64_t others = e.sharers & ~self;
  while (others) {
    int peer = std::countr_zero(others);
    others &= others - 1;
    ++out.probes;
    ++out.invalidations;
    caches_[static_cast<std::size_t>(peer)]->invalidate(line);
    if (profiler_ != nullptr) {
      profiler_->record_event(sim::CohDomain::kIntra, sim::CohEvent::kProbe,
                              line, requester_base_ + core);
      profiler_->record_invalidation(sim::CohDomain::kIntra,
                                     sim::CohEvent::kUpgradeMiss, line,
                                     requester_base_ + core,
                                     requester_base_ + peer);
    }
  }
  e.sharers = self;
  e.owner = core;

  if (profiler_ != nullptr && out.probes > 0) {
    profiler_->record_sharers(line, before, std::popcount(e.sharers));
  }
  probes_.inc(static_cast<std::uint64_t>(out.probes));
  invalidations_.inc(static_cast<std::uint64_t>(out.invalidations));
  if (out.probes > 0) out.latency += params_.probe_latency;
  return out;
}

void CoherenceDirectory::drop_core(int core) {
  const std::uint64_t self = 1ULL << core;
  for (auto it = lines_.begin(); it != lines_.end();) {
    it->second.sharers &= ~self;
    if (it->second.owner == core) it->second.owner = -1;
    it = it->second.sharers == 0 ? lines_.erase(it) : std::next(it);
  }
}

void CoherenceDirectory::on_evict(int core, ht::PAddr line) {
  auto it = lines_.find(line);
  if (it == lines_.end()) return;
  Entry& e = it->second;
  e.sharers &= ~(1ULL << core);
  if (e.owner == core) e.owner = -1;
  if (e.sharers == 0) lines_.erase(it);
}

}  // namespace ms::mem
