#include "mem/dram.hpp"

namespace ms::mem {

DramModel::DramModel(const Params& p)
    : params_(p), open_row_(static_cast<std::size_t>(p.banks), -1) {}

int DramModel::bank_of(ht::PAddr addr) const {
  // Interleave banks on row-sized chunks so sequential streams hit all banks.
  return static_cast<int>((addr / params_.row_bytes) %
                          static_cast<std::uint64_t>(params_.banks));
}

sim::Time DramModel::access_latency(ht::PAddr addr, std::uint32_t bytes) {
  const int bank = bank_of(addr);
  const auto row = static_cast<std::int64_t>(addr / params_.row_bytes);
  sim::Time lat;
  if (open_row_[static_cast<std::size_t>(bank)] == row) {
    row_hits_.inc();
    lat = params_.t_cas;
  } else {
    row_conflicts_.inc();
    open_row_[static_cast<std::size_t>(bank)] = row;
    lat = params_.t_rp + params_.t_rcd + params_.t_cas;
  }
  lat += sim::ns_d(static_cast<double>(bytes) / params_.bytes_per_ns);
  return lat;
}

}  // namespace ms::mem
