#include "mem/memory_controller.hpp"

#include "sim/tracer.hpp"

namespace ms::mem {

MemoryController::MemoryController(sim::Engine& engine, std::string name,
                                   const Params& p)
    : engine_(engine),
      name_(std::move(name)),
      params_(p),
      dram_(p.dram),
      ports_(engine, p.ports) {
  banks_.reserve(static_cast<std::size_t>(p.dram.banks));
  for (int b = 0; b < p.dram.banks; ++b) {
    banks_.push_back(std::make_unique<sim::Semaphore>(engine, 1));
  }
}

sim::Task<void> MemoryController::access(ht::PAddr local_addr,
                                         std::uint32_t bytes, bool is_write,
                                         sim::TraceContext ctx) {
  const sim::Time start = engine_.now();
  // Container span (kNone): the tagged leaves below carry the segment
  // attribution, so nothing is double-counted in the decomposition.
  sim::ScopedSpan span(engine_, name_, is_write ? "dram.write" : "dram.read",
                       ctx);
  const sim::TraceContext here = span.ctx() ? span.ctx() : ctx;
  co_await ports_.acquire();
  sim::SemToken port(ports_);
  sim::record_wait(engine_, name_, "port.wait", start, here);
  {
    sim::SegmentSpan sched(engine_, here, name_, "sched",
                           sim::Segment::kMemory);
    co_await engine_.delay(params_.controller_latency);
  }

  auto& bank = *banks_[static_cast<std::size_t>(dram_.bank_of(local_addr))];
  const sim::Time bank_asked = engine_.now();
  co_await bank.acquire();
  sim::record_wait(engine_, name_, "bank.wait", bank_asked, here);
  const sim::Time lat = dram_.access_latency(local_addr, bytes);
  {
    sim::SegmentSpan burst(engine_, here, name_, "dram",
                           sim::Segment::kMemory);
    co_await engine_.delay(lat);
  }
  bank.release();

  (is_write ? writes_ : reads_).inc();
  latency_.add_time(engine_.now() - start);
}

}  // namespace ms::mem
