#include "mem/memory_controller.hpp"

#include "sim/tracer.hpp"

namespace ms::mem {

MemoryController::MemoryController(sim::Engine& engine, std::string name,
                                   const Params& p)
    : engine_(engine),
      name_(std::move(name)),
      params_(p),
      dram_(p.dram),
      ports_(engine, p.ports) {
  banks_.reserve(static_cast<std::size_t>(p.dram.banks));
  for (int b = 0; b < p.dram.banks; ++b) {
    banks_.push_back(std::make_unique<sim::Semaphore>(engine, 1));
  }
}

sim::Task<void> MemoryController::access(ht::PAddr local_addr,
                                         std::uint32_t bytes, bool is_write) {
  const sim::Time start = engine_.now();
  sim::ScopedSpan span(engine_, name_, is_write ? "dram.write" : "dram.read");
  co_await ports_.acquire();
  sim::SemToken port(ports_);
  co_await engine_.delay(params_.controller_latency);

  auto& bank = *banks_[static_cast<std::size_t>(dram_.bank_of(local_addr))];
  co_await bank.acquire();
  const sim::Time lat = dram_.access_latency(local_addr, bytes);
  co_await engine_.delay(lat);
  bank.release();

  (is_write ? writes_ : reads_).inc();
  latency_.add_time(engine_.now() - start);
}

}  // namespace ms::mem
