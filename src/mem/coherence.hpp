#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ht/packet.hpp"
#include "mem/cache.hpp"
#include "sim/sharing_profiler.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ms::mem {

/// Node-internal coherence directory (MSI over the cores' private caches).
///
/// This is the coherency domain of the paper: it spans exactly the caches
/// of one motherboard, no matter how much memory the node's region borrows
/// from other nodes. The directory's probe counters are the quantity the
/// paper argues about — growing a memory region never increases them,
/// whereas the dsm baseline (inter-node coherence) probes across the fabric.
///
/// The directory holds a sharer bitmask per line *currently cached by at
/// least one core*; the node access path reports evictions, so the map is
/// bounded by aggregate cache capacity, not by footprint.
class CoherenceDirectory {
 public:
  struct Params {
    sim::Time probe_latency = sim::ns(40);       ///< one on-die probe round
    sim::Time dirty_transfer_latency = sim::ns(25);  ///< cache-to-cache data
  };

  CoherenceDirectory(const Params& p, std::vector<Cache*> caches);

  /// Extra latency the access must pay for coherence actions, if any.
  struct Outcome {
    int probes = 0;
    int invalidations = 0;
    bool dirty_transfer = false;
    sim::Time latency = 0;
  };

  /// Core `core` missed on `line` (read or write). Probes/invalidates peers
  /// as required and registers the new sharer/owner.
  Outcome on_miss(int core, ht::PAddr line, bool is_write);

  /// Core `core` wrote a line it already holds. Cheap when the line is
  /// exclusive; otherwise invalidates the other sharers (upgrade).
  Outcome on_write_hit(int core, ht::PAddr line);

  /// Core `core` evicted `line` (clean or dirty).
  void on_evict(int core, ht::PAddr line);

  /// Core `core` invalidated its entire cache (explicit flush): drop its
  /// sharer bit from every tracked line.
  void drop_core(int core);

  /// Whether any sharers are registered for the line (test hook).
  bool tracked(ht::PAddr line) const { return lines_.count(line) != 0; }
  int sharer_count(ht::PAddr line) const;

  /// Whether `core`'s sharer bit is set for the line.
  bool sharer(ht::PAddr line, int core) const {
    auto it = lines_.find(line);
    return it != lines_.end() &&
           ((it->second.sharers >> core) & 1ULL) != 0;
  }

  /// Invokes `fn(line, sharers_mask, owner)` for every tracked line.
  /// Read-only walk for the invariant checkers; never on production paths.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& [line, e] : lines_) fn(line, e.sharers, e.owner);
  }

  /// Fault injection for the fuzzing harness: skip the modified-owner
  /// downgrade on read misses. This deliberately breaks the MSI single-
  /// writer rule (owner stays registered while a new sharer is added) so
  /// the checkers can prove they catch it. Test-only; never set by
  /// production code.
  void test_skip_downgrade(bool on) { test_skip_downgrade_ = on; }

  std::uint64_t probes() const { return probes_.value(); }
  std::uint64_t invalidations() const { return invalidations_.value(); }
  std::uint64_t dirty_transfers() const { return dirty_transfers_.value(); }

  /// Attaches the cluster-wide sharing profiler. `requester_base` maps this
  /// node's core indices into the profiler's global intra-domain requester
  /// id space (node_index * cores_per_node). The profiler no-ops while
  /// disabled, so wiring it unconditionally costs one branch per event.
  void set_profiler(sim::SharingProfiler* p, int requester_base) {
    profiler_ = p;
    requester_base_ = requester_base;
  }

 private:
  struct Entry {
    std::uint64_t sharers = 0;  ///< bitmask over cores
    int owner = -1;             ///< core holding it modified, or -1
  };

  Params params_;
  bool test_skip_downgrade_ = false;
  sim::SharingProfiler* profiler_ = nullptr;
  int requester_base_ = 0;
  std::vector<Cache*> caches_;
  std::unordered_map<ht::PAddr, Entry> lines_;
  sim::Counter probes_;
  sim::Counter invalidations_;
  sim::Counter dirty_transfers_;
};

}  // namespace ms::mem
