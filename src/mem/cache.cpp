#include "mem/cache.hpp"

#include <bit>
#include <stdexcept>

#include "sim/tracer.hpp"

namespace ms::mem {

void Cache::trace_event(const char* what) const {
  if (trace_engine_ == nullptr) return;
  if (auto* tr = trace_engine_->tracer()) {
    tr->instant(track_, what, trace_engine_->now());
  }
}

Cache::Cache(const Params& p) : params_(p) {
  if (!std::has_single_bit(p.line_bytes)) {
    throw std::invalid_argument("Cache: line size must be a power of two");
  }
  if (p.ways < 1 || p.size_bytes % (static_cast<std::uint64_t>(p.ways) * p.line_bytes) != 0) {
    throw std::invalid_argument("Cache: size must divide into ways*lines");
  }
  line_mask_ = p.line_bytes - 1;
  num_sets_ = p.size_bytes / (static_cast<std::uint64_t>(p.ways) * p.line_bytes);
  if (!std::has_single_bit(num_sets_)) {
    throw std::invalid_argument("Cache: set count must be a power of two");
  }
  ways_.resize(num_sets_ * static_cast<std::size_t>(p.ways));
}

std::size_t Cache::set_of(ht::PAddr addr) const {
  return static_cast<std::size_t>((addr / params_.line_bytes) & (num_sets_ - 1));
}

Cache::Way* Cache::find(ht::PAddr addr) {
  const ht::PAddr line = line_of(addr);
  Way* base = &ways_[set_of(addr) * static_cast<std::size_t>(params_.ways)];
  for (int w = 0; w < params_.ways; ++w) {
    if (base[w].valid && base[w].tag == line) return &base[w];
  }
  return nullptr;
}

const Cache::Way* Cache::find(ht::PAddr addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

bool Cache::access_hit(ht::PAddr addr, bool is_write) {
  Way* way = find(addr);
  if (way == nullptr) return false;  // miss: zero side effects
  ++tick_;
  if (profiler_ != nullptr) {
    profiler_->record_touch(line_of(addr), requester_,
                            static_cast<std::uint32_t>(addr & line_mask_), 8);
  }
  hits_.inc();
  way->lru = tick_;
  if (is_write) way->dirty = true;
  return true;
}

Cache::AccessResult Cache::access(ht::PAddr addr, bool is_write) {
  ++tick_;
  if (profiler_ != nullptr) {
    // Accesses are word references; 8 bytes matches the profiler's chunk
    // granularity, so each access marks exactly one footprint bit.
    profiler_->record_touch(line_of(addr), requester_,
                            static_cast<std::uint32_t>(addr & line_mask_), 8);
  }
  if (Way* way = find(addr)) {
    hits_.inc();
    way->lru = tick_;
    if (is_write) way->dirty = true;
    return {.hit = true};
  }
  misses_.inc();
  trace_event("miss");
  AccessResult r = install(addr);
  r.hit = false;
  if (is_write) find(addr)->dirty = true;
  return r;
}

Cache::AccessResult Cache::install(ht::PAddr addr) {
  ++tick_;
  if (Way* way = find(addr)) {
    way->lru = tick_;
    return {.hit = true};
  }
  Way* base = &ways_[set_of(addr) * static_cast<std::size_t>(params_.ways)];
  Way* victim = &base[0];
  for (int w = 0; w < params_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  AccessResult r;
  if (victim->valid) {
    r.evicted = true;
    r.victim_line = victim->tag;
    trace_event("evict");
    if (victim->dirty) {
      r.writeback = true;
      writebacks_.inc();
      trace_event("writeback");
    }
  }
  victim->valid = true;
  victim->dirty = false;
  victim->tag = line_of(addr);
  victim->lru = tick_;
  return r;
}

bool Cache::contains(ht::PAddr addr) const { return find(addr) != nullptr; }

bool Cache::dirty(ht::PAddr addr) const {
  const Way* w = find(addr);
  return w && w->dirty;
}

Cache::InvalidateResult Cache::invalidate(ht::PAddr addr) {
  if (Way* way = find(addr)) {
    InvalidateResult r{.was_present = true, .was_dirty = way->dirty};
    way->valid = false;
    way->dirty = false;
    return r;
  }
  return {};
}

bool Cache::clean(ht::PAddr addr) {
  if (Way* way = find(addr)) {
    bool was_dirty = way->dirty;
    way->dirty = false;
    return was_dirty;
  }
  return false;
}

void Cache::flush_all(sim::FunctionRef<void(ht::PAddr)> writeback) {
  for (auto& way : ways_) {
    if (way.valid && way.dirty) writeback(way.tag);
    way.valid = false;
    way.dirty = false;
  }
}

double Cache::hit_rate() const {
  const double total = static_cast<double>(hits_.value() + misses_.value());
  return total == 0 ? 0.0 : static_cast<double>(hits_.value()) / total;
}

}  // namespace ms::mem
