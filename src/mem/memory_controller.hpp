#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mem/dram.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/trace_context.hpp"

namespace ms::mem {

/// One socket's integrated memory controller.
///
/// Requests contend for a limited number of controller ports (command queue
/// slots) and then for the addressed bank; the DRAM model supplies the
/// access latency. Bank semaphores give the model bank-level parallelism:
/// independent streams to different banks overlap, a single hot bank
/// serializes — both effects show up in the congestion figures.
class MemoryController {
 public:
  struct Params {
    DramModel::Params dram;
    int ports = 8;                        ///< in-flight requests accepted
    sim::Time controller_latency = sim::ns(10);  ///< decode/schedule overhead
  };

  MemoryController(sim::Engine& engine, std::string name, const Params& p);
  MemoryController(const MemoryController&) = delete;
  MemoryController& operator=(const MemoryController&) = delete;

  /// Performs one access (timing only); resumes when data would be returned
  /// (reads) or accepted for write (writes are posted at full latency —
  /// HT sized writes carry data and get an ack at completion). `ctx` links
  /// the recorded spans into a traced transaction (observability only).
  sim::Task<void> access(ht::PAddr local_addr, std::uint32_t bytes,
                         bool is_write, sim::TraceContext ctx = {});

  const std::string& name() const { return name_; }
  std::uint64_t reads() const { return reads_.value(); }
  std::uint64_t writes() const { return writes_.value(); }
  const sim::Sampler& latency() const { return latency_; }
  const DramModel& dram() const { return dram_; }

  /// Instantaneous queue state, for time-series sampling.
  std::size_t port_waiters() const { return ports_.waiters(); }
  int ports_free() const { return ports_.available(); }

 private:
  sim::Engine& engine_;
  std::string name_;
  Params params_;
  DramModel dram_;
  sim::Semaphore ports_;
  std::vector<std::unique_ptr<sim::Semaphore>> banks_;
  sim::Counter reads_;
  sim::Counter writes_;
  sim::Sampler latency_;
};

}  // namespace ms::mem
