#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>

#include "ht/packet.hpp"

namespace ms::mem {

/// Functional storage for the whole cluster's physical memory.
///
/// The simulator separates *function* from *timing*: workloads read and
/// write real bytes here (so a b-tree search returns the actual key and
/// tests can check data integrity end-to-end), while the timing of the same
/// access is modelled by caches, controllers, the RMC and the fabric.
/// Storage is sparse — pages materialize zero-filled on first touch — so a
/// simulated 128 GB pool costs only as much host memory as is touched.
///
/// Keys are (owning node, node-local physical address): each node's local
/// address space starts at zero, exactly like the paper's per-node memory
/// map (Fig. 3), and the node prefix has been stripped by the time an
/// access reaches its home memory controller.
class BackingStore {
 public:
  explicit BackingStore(std::size_t page_size = 4096);

  void read(ht::NodeId node, ht::PAddr addr, std::span<std::byte> out) const;
  void write(ht::NodeId node, ht::PAddr addr, std::span<const std::byte> in);

  std::uint64_t read_u64(ht::NodeId node, ht::PAddr addr) const;
  void write_u64(ht::NodeId node, ht::PAddr addr, std::uint64_t value);

  template <typename T>
  T read_pod(ht::NodeId node, ht::PAddr addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    read(node, addr, std::as_writable_bytes(std::span(&value, 1)));
    return value;
  }

  template <typename T>
  void write_pod(ht::NodeId node, ht::PAddr addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(node, addr, std::as_bytes(std::span(&value, 1)));
  }

  /// Copies `bytes` from one physical location to another (page migration,
  /// swap-in/swap-out). Works across nodes.
  void copy(ht::NodeId src_node, ht::PAddr src, ht::NodeId dst_node,
            ht::PAddr dst, std::size_t bytes);

  std::size_t pages_touched() const { return pages_.size(); }
  std::size_t page_size() const { return page_size_; }

 private:
  using Key = std::uint64_t;
  Key key_of(ht::NodeId node, std::uint64_t page_index) const {
    return (static_cast<Key>(node) << 44) | page_index;
  }
  std::byte* page_for(ht::NodeId node, ht::PAddr addr);
  const std::byte* page_if_present(ht::NodeId node, ht::PAddr addr) const;

  std::size_t page_size_;
  std::size_t page_shift_;
  // mutable-free: read() const-casts nothing; absent pages read as zeroes.
  std::unordered_map<Key, std::unique_ptr<std::byte[]>> pages_;
};

}  // namespace ms::mem
