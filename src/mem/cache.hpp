#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ht/packet.hpp"
#include "sim/function_ref.hpp"
#include "sim/sharing_profiler.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ms::sim {
class Engine;
}

namespace ms::mem {

/// Set-associative write-back cache (tags only).
///
/// Each simulated core owns one of these as its private cache hierarchy
/// (L1+L2 collapsed — the evaluation is sensitive to hit-vs-miss, not to
/// the level split). Data is functional in BackingStore; the cache tracks
/// presence, dirtiness and LRU order and tells the access path what traffic
/// a reference generates (fill, writeback). Remote lines are cacheable
/// exactly as in the prototype ("we have configured the remote memory
/// ranges as write-back", Sec. IV-B) — evicting a dirty remote line is what
/// sends writebacks across the fabric.
class Cache {
 public:
  struct Params {
    std::uint64_t size_bytes = 512 * 1024;  ///< per-core private capacity
    int ways = 8;
    std::uint32_t line_bytes = 64;
    sim::Time hit_latency = sim::ns(3);
  };

  explicit Cache(const Params& p);

  struct AccessResult {
    bool hit = false;
    bool evicted = false;        ///< a valid victim was displaced
    bool writeback = false;      ///< ... and it was dirty (write back needed)
    ht::PAddr victim_line = 0;   ///< line address of the victim (if evicted)
  };

  /// Looks up `addr`, allocating on miss (write-allocate policy) and
  /// returning the victim writeback, if any.
  AccessResult access(ht::PAddr addr, bool is_write);

  /// Hit-only probe for the synchronous fast path: on a hit it applies
  /// exactly the side effects access() would (tick, profiler touch, hit
  /// counter, LRU stamp, dirty bit) and returns true; on a miss it applies
  /// NO side effects at all — the caller falls back to access(), which
  /// then counts/installs the miss once. Keeping the two paths' observable
  /// state identical is what lets the fast path leave every golden
  /// byte-identical.
  bool access_hit(ht::PAddr addr, bool is_write);

  /// Tag probe without state change.
  bool contains(ht::PAddr addr) const;

  /// Whether the line holding `addr` is present and dirty.
  bool dirty(ht::PAddr addr) const;

  /// Invalidate one line; returns true (and reports dirtiness) if present.
  struct InvalidateResult {
    bool was_present = false;
    bool was_dirty = false;
  };
  InvalidateResult invalidate(ht::PAddr addr);

  /// Drops write permission but keeps the line (coherence downgrade).
  /// Returns true if the line was dirty (data must be provided/cleaned).
  bool clean(ht::PAddr addr);

  /// Insert a line (e.g. prefetch fill) without an access; may evict.
  AccessResult install(ht::PAddr addr);

  /// Flushes every dirty line, invoking `writeback(line_addr)` for each,
  /// then invalidates the whole cache. This is the paper's explicit flush
  /// between a write phase and a parallel read-only phase (Sec. IV-B).
  /// The callback is a non-owning FunctionRef: no std::function allocation
  /// at the call site, and the callable only needs to outlive this call.
  void flush_all(sim::FunctionRef<void(ht::PAddr)> writeback);

  ht::PAddr line_of(ht::PAddr addr) const { return addr & ~line_mask_; }

  /// Binds the cache to an engine so miss/evict/writeback show up as
  /// instant events on `track` when a tracer is attached. The cache itself
  /// is untimed, so this is its only connection to the engine.
  void bind_trace(sim::Engine* engine, std::string track) {
    trace_engine_ = engine;
    track_ = std::move(track);
  }

  /// Attaches the cluster-wide sharing profiler; `requester` is this
  /// cache's global core id in the intra-domain requester space. Each
  /// access reports its sub-line footprint (8-byte granularity) so the
  /// profiler can separate true from false sharing.
  void set_profiler(sim::SharingProfiler* p, int requester) {
    profiler_ = p;
    requester_ = requester;
  }

  const Params& params() const { return params_; }
  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  std::uint64_t writebacks() const { return writebacks_.value(); }
  double hit_rate() const;

  /// Invokes `fn(line_address, dirty)` for every resident line. Tags store
  /// the full line address, so no set/tag reconstruction is needed. Used by
  /// the invariant checkers (donor-never-caches, MSI agreement); read-only
  /// and never called on production paths.
  template <typename Fn>
  void for_each_resident(Fn&& fn) const {
    for (const Way& way : ways_) {
      if (way.valid) fn(way.tag, way.dirty);
    }
  }

  std::size_t resident_lines() const {
    std::size_t n = 0;
    for (const Way& way : ways_) n += way.valid ? 1 : 0;
    return n;
  }

 private:
  struct Way {
    ht::PAddr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  ///< last-touch stamp; smallest is victim
  };

  std::size_t set_of(ht::PAddr addr) const;
  Way* find(ht::PAddr addr);
  const Way* find(ht::PAddr addr) const;
  void trace_event(const char* what) const;

  Params params_;
  sim::SharingProfiler* profiler_ = nullptr;
  int requester_ = 0;
  sim::Engine* trace_engine_ = nullptr;
  std::string track_;
  ht::PAddr line_mask_;
  std::size_t num_sets_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_;  // num_sets * ways, row-major by set
  sim::Counter hits_;
  sim::Counter misses_;
  sim::Counter writebacks_;
};

}  // namespace ms::mem
