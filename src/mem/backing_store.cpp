#include "mem/backing_store.hpp"

#include <bit>
#include <stdexcept>

namespace ms::mem {

BackingStore::BackingStore(std::size_t page_size) : page_size_(page_size) {
  if (!std::has_single_bit(page_size)) {
    throw std::invalid_argument("BackingStore: page size must be a power of two");
  }
  page_shift_ = static_cast<std::size_t>(std::countr_zero(page_size));
}

std::byte* BackingStore::page_for(ht::NodeId node, ht::PAddr addr) {
  auto& slot = pages_[key_of(node, addr >> page_shift_)];
  if (!slot) {
    slot = std::make_unique<std::byte[]>(page_size_);
    std::memset(slot.get(), 0, page_size_);
  }
  return slot.get();
}

const std::byte* BackingStore::page_if_present(ht::NodeId node,
                                               ht::PAddr addr) const {
  auto it = pages_.find(key_of(node, addr >> page_shift_));
  return it == pages_.end() ? nullptr : it->second.get();
}

void BackingStore::read(ht::NodeId node, ht::PAddr addr,
                        std::span<std::byte> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    ht::PAddr cur = addr + done;
    std::size_t offset = cur & (page_size_ - 1);
    std::size_t chunk = std::min(out.size() - done, page_size_ - offset);
    if (const std::byte* page = page_if_present(node, cur)) {
      std::memcpy(out.data() + done, page + offset, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
}

void BackingStore::write(ht::NodeId node, ht::PAddr addr,
                         std::span<const std::byte> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    ht::PAddr cur = addr + done;
    std::size_t offset = cur & (page_size_ - 1);
    std::size_t chunk = std::min(in.size() - done, page_size_ - offset);
    std::memcpy(page_for(node, cur) + offset, in.data() + done, chunk);
    done += chunk;
  }
}

std::uint64_t BackingStore::read_u64(ht::NodeId node, ht::PAddr addr) const {
  return read_pod<std::uint64_t>(node, addr);
}

void BackingStore::write_u64(ht::NodeId node, ht::PAddr addr,
                             std::uint64_t value) {
  write_pod(node, addr, value);
}

void BackingStore::copy(ht::NodeId src_node, ht::PAddr src, ht::NodeId dst_node,
                        ht::PAddr dst, std::size_t bytes) {
  std::byte buf[512];
  std::size_t done = 0;
  while (done < bytes) {
    std::size_t chunk = std::min(bytes - done, sizeof buf);
    read(src_node, src + done, std::span(buf, chunk));
    write(dst_node, dst + done, std::span<const std::byte>(buf, chunk));
    done += chunk;
  }
}

}  // namespace ms::mem
