#include "broker/migration.hpp"

#include <algorithm>

namespace ms::broker {

MigrationEngine::MigrationEngine(core::Cluster& cluster, const Params& p)
    : cluster_(cluster), engine_(cluster.engine()), params_(p) {}

sim::Task<void> MigrationEngine::enter(core::MemorySpace& space, os::VAddr va,
                                       std::uint32_t bytes) {
  const auto& pt = space.page_table();
  const os::VAddr first = pt.page_base(va);
  const os::VAddr last = pt.page_base(va + (bytes > 0 ? bytes - 1 : 0));
  const std::uint64_t page = pt.page_bytes();

  // Park until no page in the range is sealed. After a wake-up the whole
  // range is re-checked: the migration that fired may be followed by
  // another one sealing a different page of the range.
  bool again = true;
  while (again) {
    again = false;
    for (os::VAddr p = first; p <= last; p += page) {
      auto it = sealed_.find(Key{&space, p});
      if (it == sealed_.end()) continue;
      // Hold the shared_ptr across the await: migrate_page erases the map
      // entry before firing, and the Trigger must outlive its waiters.
      std::shared_ptr<sim::Trigger> seal = it->second;
      parked_waits_.inc();
      co_await seal->wait();
      again = true;
      break;
    }
  }

  // Clean pass above has no suspension before this point, so no seal can
  // have appeared since: safe to register as in-flight on every page.
  for (os::VAddr p = first; p <= last; p += page) {
    ++inflight_[Key{&space, p}];
  }
}

void MigrationEngine::exit(core::MemorySpace& space, os::VAddr va,
                           std::uint32_t bytes) {
  const auto& pt = space.page_table();
  const os::VAddr first = pt.page_base(va);
  const os::VAddr last = pt.page_base(va + (bytes > 0 ? bytes - 1 : 0));
  const std::uint64_t page = pt.page_bytes();
  for (os::VAddr p = first; p <= last; p += page) {
    const Key key{&space, p};
    auto it = inflight_.find(key);
    if (it == inflight_.end()) continue;  // gate installed mid-access
    if (--it->second > 0) continue;
    inflight_.erase(it);
    auto dit = drain_.find(key);
    if (dit != drain_.end()) {
      std::shared_ptr<sim::Trigger> drain = dit->second;
      drain_.erase(dit);
      drain->fire();
    }
  }
}

sim::Task<void> MigrationEngine::copy_chunk_timed(core::MemorySpace& space,
                                                  ht::PAddr src, ht::PAddr dst,
                                                  std::uint32_t bytes) {
  const ht::NodeId home = space.home();
  const ht::NodeId src_owner =
      node::has_prefix(src) ? node::node_of(src) : home;
  const ht::NodeId dst_owner =
      node::has_prefix(dst) ? node::node_of(dst) : home;
  auto& fabric = cluster_.fabric();

  // Pull leg: request out, donor memory time, chunk payload back.
  if (src_owner != home) {
    ht::Packet req;
    req.type = ht::PacketType::kMigRead;
    req.src = home;
    req.dst = src_owner;
    req.addr = src;
    req.size = bytes;
    co_await fabric.traverse(req);
    co_await cluster_.node(src_owner).serve_remote(node::local_part(src),
                                                   bytes, /*is_write=*/false);
    ht::Packet data;
    data.type = ht::PacketType::kMigData;
    data.src = src_owner;
    data.dst = home;
    data.addr = src;
    data.size = bytes;
    co_await fabric.traverse(data);
  } else {
    co_await cluster_.node(home).serve_remote(node::local_part(src), bytes,
                                              /*is_write=*/false);
  }

  // Push leg: chunk payload out, donor memory time, ack back.
  if (dst_owner != home) {
    ht::Packet data;
    data.type = ht::PacketType::kMigData;
    data.src = home;
    data.dst = dst_owner;
    data.addr = dst;
    data.size = bytes;
    co_await fabric.traverse(data);
    co_await cluster_.node(dst_owner).serve_remote(node::local_part(dst),
                                                   bytes, /*is_write=*/true);
    ht::Packet ack;
    ack.type = ht::PacketType::kMigAck;
    ack.src = dst_owner;
    ack.dst = home;
    ack.addr = dst;
    co_await fabric.traverse(ack);
  } else {
    co_await cluster_.node(home).serve_remote(node::local_part(dst), bytes,
                                              /*is_write=*/true);
  }
}

sim::Task<bool> MigrationEngine::migrate_page(core::MemorySpace& space,
                                              os::VAddr page_va,
                                              ht::NodeId dest) {
  auto* region = space.region();
  if (region == nullptr) co_return false;  // swap modes migrate via faults
  const Key key{&space, page_va};
  if (migrating_.count(key) != 0) co_return false;

  const os::PageTable::Entry* entry = space.page_table().find(page_va);
  if (entry == nullptr || !entry->present) co_return false;
  const ht::PAddr src = entry->frame;
  const ht::NodeId src_owner =
      node::has_prefix(src) ? node::node_of(src) : space.home();
  if (src_owner == dest) co_return false;

  migrating_.insert(key);
  struct Unguard {
    std::set<Key>* set;
    Key key;
    ~Unguard() { set->erase(key); }
  } unguard{&migrating_, key};

  auto dst = co_await region->alloc_page_on(dest);
  if (!dst) co_return false;
  // Re-validate after the suspension: nothing else remaps region-backed
  // pages today, but the guard is what makes that a local argument.
  entry = space.page_table().find(page_va);
  if (entry == nullptr || !entry->present || entry->frame != src) {
    region->free_page(*dst);
    co_return false;
  }

  const std::uint64_t page_bytes = space.page_table().page_bytes();
  transit_[key] = Transit{&space, page_va, src, *dst};

  // Phase 1: pre-copy. The page stays fully accessible; racing writes go
  // to the old frame and are picked up by the functional copy in phase 3.
  if (params_.timed_copy) {
    for (std::uint64_t off = 0; off < page_bytes;
         off += params_.copy_chunk) {
      const auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          params_.copy_chunk, page_bytes - off));
      co_await copy_chunk_timed(space, src + off, *dst + off, chunk);
    }
  }

  // Phase 2: blackout. Seal the page, then wait for in-flight accesses.
  auto seal = std::make_shared<sim::Trigger>(engine_);
  sealed_[key] = seal;
  const sim::Time blackout_start = engine_.now();
  while (true) {
    auto it = inflight_.find(key);
    if (it == inflight_.end() || it->second == 0) break;
    auto drain = std::make_shared<sim::Trigger>(engine_);
    drain_[key] = drain;
    co_await drain->wait();
  }

  co_await engine_.delay(params_.remap_cost);

  // Phase 3: the atomic step — functional copy, remap, bookkeeping. No
  // suspension from here to the unseal, so page table, BackingStore and
  // the transit ledger flip together as far as any observer can tell.
  const ht::NodeId dst_owner =
      node::has_prefix(*dst) ? node::node_of(*dst) : space.home();
  cluster_.store().copy(src_owner, node::local_part(src), dst_owner,
                        node::local_part(*dst), page_bytes);
  if (!lose_page_) {
    space.remap_page(page_va, *dst);
  }
  settled_[key] = *dst;
  transit_.erase(key);
  if (!lose_page_) {
    region->free_page(src);
  }
  sealed_.erase(key);
  seal->fire();
  blackout_.add_time(engine_.now() - blackout_start);
  migrations_.inc();
  co_return true;
}

}  // namespace ms::broker
