#include "broker/broker.hpp"

#include <algorithm>
#include <sstream>

namespace ms::broker {

namespace {
std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

MemoryBroker::MemoryBroker(core::Cluster& cluster, const Params& p)
    : cluster_(cluster), params_(p), migration_(cluster, p.migration) {
  cluster_.add_stats_source(
      [this](sim::StatRegistry& reg, const std::string& prefix) {
        export_stats(reg, prefix);
      });
}

void MemoryBroker::attach(core::MemorySpace& space) {
  spaces_.push_back(&space);
  space.set_migration_gate(&migration_);
  if (auto* region = space.region()) {
    region->set_observer(this);
    // Segments granted before the broker existed become leases now.
    for (const auto& grant : region->segment_grants()) on_grant(grant);
  }
}

void MemoryBroker::on_grant(const os::ReservationService::Grant& grant) {
  const sim::Time now = cluster_.engine().now();
  Lease lease;
  lease.donor = grant.donor;
  lease.prefixed_base = grant.prefixed_base;
  lease.bytes = grant.bytes;
  lease.granted_at = now;
  lease.expires = params_.lease_term > 0 ? now + params_.lease_term : 0;
  book_.add(lease);
  leases_granted_.inc();
}

void MemoryBroker::on_release(const os::ReservationService::Grant& grant) {
  if (book_.remove(grant.donor, grant.prefixed_base)) {
    leases_released_.inc();
  }
}

std::vector<os::VAddr> MemoryBroker::pages_on(core::MemorySpace& space,
                                              ht::NodeId donor) const {
  std::vector<os::VAddr> pages;
  space.page_table().for_each(
      [&](os::VAddr va, const os::PageTable::Entry& e) {
        if (e.present && node::node_of(e.frame) == donor) pages.push_back(va);
      });
  std::sort(pages.begin(), pages.end());  // unordered_map walk -> determinism
  return pages;
}

ht::NodeId MemoryBroker::pick_dest(core::MemorySpace& space,
                                   ht::NodeId avoid) const {
  const auto& dir = cluster_.directory();
  const ht::PAddr need = space.region() != nullptr
                             ? space.region()->params().segment_bytes
                             : 0;
  ht::NodeId best = ht::kNoNode;
  ht::PAddr best_free = 0;
  for (int i = 1; i <= cluster_.num_nodes(); ++i) {
    const auto id = static_cast<ht::NodeId>(i);
    if (id == avoid || id == space.home()) continue;
    if (!dir.donatable(id) || drained_.count(id) != 0) continue;
    const ht::PAddr free = dir.free_at(id);
    if (free < need) continue;  // worst case: a whole fresh segment
    if (best == ht::kNoNode || free > best_free) {
      best = id;
      best_free = free;
    }
  }
  // Fall back to home: alloc_page_on(home) carves an unprefixed local
  // frame, i.e. the page migrates back into local memory.
  return best == ht::kNoNode ? space.home() : best;
}

sim::Task<bool> MemoryBroker::migrate_any(core::MemorySpace& space,
                                          std::uint64_t rng_state) {
  std::vector<std::pair<os::VAddr, ht::NodeId>> pages;
  space.page_table().for_each(
      [&](os::VAddr va, const os::PageTable::Entry& e) {
        if (e.present && node::has_prefix(e.frame)) {
          pages.emplace_back(va, node::node_of(e.frame));
        }
      });
  if (pages.empty()) co_return false;
  std::sort(pages.begin(), pages.end());
  const auto [va, owner] = pages[splitmix(rng_state) % pages.size()];

  std::vector<ht::NodeId> dests;
  for (int i = 1; i <= cluster_.num_nodes(); ++i) {
    const auto id = static_cast<ht::NodeId>(i);
    if (id == owner) continue;
    if (id != space.home() &&
        (!cluster_.directory().donatable(id) || drained_.count(id) != 0)) {
      continue;
    }
    dests.push_back(id);
  }
  if (dests.empty()) co_return false;
  const ht::NodeId dest = dests[splitmix(rng_state) % dests.size()];
  co_return co_await migration_.migrate_page(space, va, dest);
}

sim::Task<bool> MemoryBroker::rebalance_once() {
  if (params_.pressure_pct <= 0) co_return false;
  for (int i = 1; i <= cluster_.num_nodes(); ++i) {
    const auto id = static_cast<ht::NodeId>(i);
    const auto& alloc = cluster_.allocator(id);
    if (alloc.free_bytes() * 100 >=
        static_cast<ht::PAddr>(params_.pressure_pct) * alloc.total_bytes()) {
      continue;  // not under pressure
    }
    for (auto* space : spaces_) {
      const auto pages = pages_on(*space, id);
      if (pages.empty()) continue;
      const ht::NodeId dest = pick_dest(*space, id);
      if (dest == id) continue;
      if (co_await migration_.migrate_page(*space, pages.front(), dest)) {
        co_return true;
      }
    }
  }
  co_return false;
}

sim::Task<bool> MemoryBroker::defrag_once(std::size_t max_pages) {
  for (auto* space : spaces_) {
    std::map<ht::NodeId, std::vector<os::VAddr>> by_donor;
    space->page_table().for_each(
        [&](os::VAddr va, const os::PageTable::Entry& e) {
          if (e.present && node::has_prefix(e.frame)) {
            by_donor[node::node_of(e.frame)].push_back(va);
          }
        });
    if (by_donor.size() < 2) continue;  // nothing to consolidate into
    ht::NodeId src = ht::kNoNode;
    ht::NodeId dst = ht::kNoNode;
    std::size_t src_count = max_pages + 1;
    std::size_t dst_count = 0;
    for (const auto& [donor, pages] : by_donor) {
      if (!pages.empty() && pages.size() <= max_pages &&
          pages.size() < src_count) {
        src = donor;
        src_count = pages.size();
      }
      if (pages.size() > dst_count) {
        dst = donor;
        dst_count = pages.size();
      }
    }
    if (src == ht::kNoNode || dst == ht::kNoNode || src == dst) continue;
    auto pages = by_donor[src];
    std::sort(pages.begin(), pages.end());
    if (co_await migration_.migrate_page(*space, pages.front(), dst)) {
      co_return true;
    }
  }
  co_return false;
}

sim::Task<void> MemoryBroker::drain_donor(ht::NodeId donor) {
  cluster_.directory().set_donatable(donor, false);
  for (auto* space : spaces_) {
    if (space->region() != nullptr) space->region()->quarantine_donor(donor);
  }
  bool clean = true;
  for (auto* space : spaces_) {
    while (clean) {
      const auto pages = pages_on(*space, donor);
      if (pages.empty()) break;
      bool progress = false;
      for (os::VAddr va : pages) {
        const ht::NodeId dest = pick_dest(*space, donor);
        if (co_await migration_.migrate_page(*space, va, dest)) {
          progress = true;
        }
      }
      // A full pass with zero movement means the cluster cannot absorb the
      // donor's pages; leave it quarantined rather than spin.
      if (!progress) clean = false;
    }
  }
  if (!clean) co_return;
  for (auto* space : spaces_) {
    if (space->region() != nullptr) {
      co_await space->region()->release_segments_on(donor);
    }
  }
  drained_.insert(donor);
  evacuations_.inc();
}

std::size_t MemoryBroker::renew_leases() {
  if (params_.lease_term <= 0) return 0;
  const std::size_t n =
      book_.renew_expired(cluster_.engine().now(), params_.lease_term);
  renewals_.inc(n);
  return n;
}

void MemoryBroker::register_invariants(sim::InvariantRegistry& reg,
                                       const bool* released) {
  const auto quiet = [released] {
    return released != nullptr && *released;
  };

  // Frame-ownership conservation: a page in transit is still reachable
  // through its source frame (remap happens only at the end of the
  // blackout); once settled, the page table must say the destination —
  // until a later migration or unmap supersedes it.
  reg.add("broker.transit", [this, quiet](sim::InvariantContext& ctx) {
    if (quiet()) return;
    for (const auto& [key, t] : migration_.transits()) {
      const auto* e = key.first->page_table().find(key.second);
      std::ostringstream out;
      out << "va=0x" << std::hex << key.second;
      if (e == nullptr || !e->present) {
        ctx.fail("page vanished mid-transit: " + out.str());
      } else if (e->frame != t.src) {
        out << " pte=0x" << e->frame << " expected-src=0x" << t.src;
        ctx.fail("transit page remapped early: " + out.str());
      }
    }
    for (const auto& [key, dst] : migration_.settled()) {
      if (migration_.transits().count(key) != 0) continue;
      const auto* e = key.first->page_table().find(key.second);
      if (e == nullptr || !e->present) continue;  // unmapped since
      if (e->frame != dst) {
        std::ostringstream out;
        out << "va=0x" << std::hex << key.second << " pte=0x" << e->frame
            << " expected-dst=0x" << dst;
        ctx.fail("migrated page lost: " + out.str());
      }
    }
  });

  // Lease accounting: the book mirrors the reservation ground truth of
  // every attached region exactly, and no donor is leased beyond its pool.
  reg.add("broker.leases", [this, quiet](sim::InvariantContext& ctx) {
    if (quiet()) return;
    std::size_t ground = 0;
    for (auto* space : spaces_) {
      if (space->region() == nullptr) continue;
      for (const auto& g : space->region()->segment_grants()) {
        ++ground;
        const Lease* lease = book_.find(g.donor, g.prefixed_base);
        if (lease == nullptr) {
          ctx.fail("grant not in lease book: donor=" +
                   std::to_string(g.donor));
        } else if (lease->bytes != g.bytes) {
          ctx.fail("lease size mismatch on donor " + std::to_string(g.donor));
        }
      }
    }
    if (ground != book_.size()) {
      ctx.fail("lease book holds " + std::to_string(book_.size()) +
               " leases for " + std::to_string(ground) + " live grants");
    }
    for (int i = 1; i <= cluster_.num_nodes(); ++i) {
      const auto id = static_cast<ht::NodeId>(i);
      if (book_.bytes_on(id) > cluster_.allocator(id).total_bytes()) {
        ctx.fail("donor " + std::to_string(id) + " leased beyond capacity");
      }
    }
  });

  // Evacuation: a drained donor backs nothing — no leases, no live pages.
  reg.add("broker.evacuated", [this, quiet](sim::InvariantContext& ctx) {
    if (quiet()) return;
    for (ht::NodeId donor : drained_) {
      if (book_.bytes_on(donor) > 0) {
        ctx.fail("drained donor " + std::to_string(donor) +
                 " still holds leases");
      }
      for (auto* space : spaces_) {
        const auto pages = pages_on(*space, donor);
        if (!pages.empty()) {
          ctx.fail("drained donor " + std::to_string(donor) + " still backs " +
                   std::to_string(pages.size()) + " live pages");
        }
      }
    }
  });
}

void MemoryBroker::export_stats(sim::StatRegistry& reg,
                                const std::string& prefix) const {
  // Nonzero-only: a broker that never acted leaves the dump byte-identical
  // to a run without a broker at all (ARCHITECTURE.md, stats export
  // convention).
  const std::string p = prefix + "broker.";
  sim::export_counter_nonzero(reg, p + "migrations",
                              migration_.migrations());
  sim::export_counter_nonzero(reg, p + "parked_waits",
                              migration_.parked_waits());
  sim::export_sampler_nonzero(reg, p + "blackout_ps", migration_.blackout());
  sim::export_counter_nonzero(reg, p + "leases_granted",
                              leases_granted_.value());
  sim::export_counter_nonzero(reg, p + "leases_released",
                              leases_released_.value());
  sim::export_counter_nonzero(reg, p + "lease_renewals", renewals_.value());
  sim::export_counter_nonzero(reg, p + "evacuations", evacuations_.value());
}

}  // namespace ms::broker
