#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "ht/packet.hpp"
#include "sim/time.hpp"

namespace ms::broker {

/// One borrowed segment viewed as a *lease*: the reservation-protocol grant
/// plus the broker's time bookkeeping. The underlying protocol (Sec. III-B)
/// has no notion of duration — a grant lives until released — so leases are
/// a broker-level overlay: the ground truth stays the reservation service,
/// and the book is reconciled against it by an invariant checker.
///
/// Lifecycle: Granted -> Renewed* -> (Recalled | Released | Evacuated).
/// `expires == 0` means the lease never expires (the default, matching the
/// plain reservation protocol).
struct Lease {
  ht::NodeId donor = ht::kNoNode;
  ht::PAddr prefixed_base = 0;  ///< donor-local base with donor prefix
  ht::PAddr bytes = 0;
  sim::Time granted_at = 0;
  sim::Time expires = 0;  ///< 0 = never
  int renewals = 0;
};

/// The broker's ledger of every live lease, keyed by (donor, base) — the
/// same identity the reservation service uses for a grant.
class LeaseBook {
 public:
  using Key = std::pair<ht::NodeId, ht::PAddr>;

  void add(const Lease& lease) {
    leases_[Key{lease.donor, lease.prefixed_base}] = lease;
  }

  /// Removes a lease; false when it was not in the book (double release or
  /// a grant the broker never saw — both invariant violations upstream).
  bool remove(ht::NodeId donor, ht::PAddr prefixed_base) {
    return leases_.erase(Key{donor, prefixed_base}) > 0;
  }

  const Lease* find(ht::NodeId donor, ht::PAddr prefixed_base) const {
    auto it = leases_.find(Key{donor, prefixed_base});
    return it == leases_.end() ? nullptr : &it->second;
  }

  /// Total leased bytes currently charged against one donor.
  ht::PAddr bytes_on(ht::NodeId donor) const {
    ht::PAddr sum = 0;
    for (const auto& [key, l] : leases_) {
      if (key.first == donor) sum += l.bytes;
    }
    return sum;
  }

  std::size_t count_on(ht::NodeId donor) const {
    std::size_t n = 0;
    for (const auto& [key, l] : leases_) {
      if (key.first == donor) ++n;
    }
    return n;
  }

  /// Renews every lease past its expiry: pushes `expires` out by `term`
  /// from `now` and bumps the renewal count. Returns how many were renewed.
  /// (The alternative policy — recall — is a drain of the donor; see
  /// MemoryBroker::drain_donor.)
  std::size_t renew_expired(sim::Time now, sim::Time term) {
    std::size_t renewed = 0;
    for (auto& [key, l] : leases_) {
      if (l.expires != 0 && now >= l.expires) {
        l.expires = now + term;
        ++l.renewals;
        ++renewed;
      }
    }
    return renewed;
  }

  std::size_t size() const { return leases_.size(); }
  bool empty() const { return leases_.empty(); }

  /// Deterministic walk (keys ordered by donor, then base).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, l] : leases_) fn(l);
  }

 private:
  std::map<Key, Lease> leases_;
};

}  // namespace ms::broker
