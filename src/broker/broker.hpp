#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "broker/lease.hpp"
#include "broker/migration.hpp"
#include "core/cluster.hpp"
#include "core/memory_space.hpp"
#include "sim/invariant.hpp"

namespace ms::broker {

/// Cluster-wide dynamic memory broker, layered over the reservation
/// protocol (ARCHITECTURE.md §11).
///
/// The base system reserves memory at malloc and holds it until process
/// teardown; the broker makes that capacity *managed*: every grant becomes
/// a time-bookkept lease, and three policies move capacity while workloads
/// run, all built on the same live-page-migration engine:
///  * rebalance_once()  — pressure relief: migrate a page off the donor
///    with the least free memory (below `pressure_pct`);
///  * defrag_once()     — consolidation: empty a donor that backs only a
///    handful of pages so its segment can be released;
///  * drain_donor()     — drain-before-shutdown: evacuate every live page
///    a donor backs, then hand its frames back (the hot-remove enabler).
///
/// Everything is method-driven: the broker owns no periodic process, so a
/// simulation without broker calls runs byte-identically to one without a
/// broker at all. Callers (benches, the fuzzer) spawn their own tickers.
///
/// Lifetime: construct after the Cluster and before the spaces it manages
/// (the reverse destruction order then tears the spaces down while the
/// broker — whose MigrationEngine they point at — is still alive).
class MemoryBroker : public os::RegionObserver {
 public:
  struct Params {
    /// Rebalance threshold: a donor whose free memory falls below this
    /// percentage of its pool is a migration source. 0 disables.
    int pressure_pct = 0;
    /// Lease duration; expired leases are renewed by renew_leases().
    /// 0 = leases never expire (plain reservation-protocol behaviour).
    sim::Time lease_term = 0;
    MigrationEngine::Params migration;
  };

  MemoryBroker(core::Cluster& cluster, const Params& p);

  /// Puts `space` under broker management: installs the migration gate,
  /// observes its region for grant/release, and snapshots already-granted
  /// segments into the lease book.
  void attach(core::MemorySpace& space);

  // RegionObserver -----------------------------------------------------
  void on_grant(const os::ReservationService::Grant& grant) override;
  void on_release(const os::ReservationService::Grant& grant) override;

  /// Migrates one pseudo-randomly chosen remote-backed page of `space` to
  /// a pseudo-randomly chosen other node (possibly home). Deterministic in
  /// `rng_state`. Returns false when the space has no eligible page.
  sim::Task<bool> migrate_any(core::MemorySpace& space,
                              std::uint64_t rng_state);

  /// Pressure policy: one page off the most-pressured donor. False when
  /// no donor is below the threshold or no destination can take the page.
  sim::Task<bool> rebalance_once();

  /// Defrag policy: if some donor backs at most `max_pages` live pages
  /// (but more than zero), migrate one of them toward the donor that backs
  /// the most — repeated calls empty the fragmented segment for release.
  sim::Task<bool> defrag_once(std::size_t max_pages = 8);

  /// Drain-before-shutdown: stop new placement on `donor`, migrate every
  /// live page it backs to other nodes, release its segments. After this
  /// completes cleanly, FrameAllocator::hot_remove of the donated range
  /// succeeds. A donor that cannot be fully drained (cluster out of
  /// memory) is left quarantined but not marked drained.
  sim::Task<void> drain_donor(ht::NodeId donor);

  /// Renews expired leases per Params::lease_term (no-op when 0).
  std::size_t renew_leases();

  /// Broker invariants for the fuzzing harness. `released` (optional)
  /// silences the checkers after workload teardown, when the attached
  /// spaces may no longer be alive.
  void register_invariants(sim::InvariantRegistry& reg,
                           const bool* released = nullptr);

  /// Nonzero-only stats under "<prefix>broker."; also installable via
  /// Cluster::add_stats_source.
  void export_stats(sim::StatRegistry& reg, const std::string& prefix) const;

  MigrationEngine& migration() { return migration_; }
  const LeaseBook& leases() const { return book_; }
  bool drained(ht::NodeId donor) const { return drained_.count(donor) != 0; }
  std::uint64_t evacuations() const { return evacuations_.value(); }
  void test_lose_page(bool on) { migration_.test_lose_page(on); }

 private:
  /// Live pages of `space` backed by `donor`, sorted for determinism.
  std::vector<os::VAddr> pages_on(core::MemorySpace& space,
                                  ht::NodeId donor) const;
  /// Destination for an evacuated page: directory choice, else home.
  ht::NodeId pick_dest(core::MemorySpace& space, ht::NodeId avoid) const;

  core::Cluster& cluster_;
  Params params_;
  MigrationEngine migration_;
  LeaseBook book_;
  std::vector<core::MemorySpace*> spaces_;
  std::set<ht::NodeId> drained_;
  sim::Counter leases_granted_;
  sim::Counter leases_released_;
  sim::Counter renewals_;
  sim::Counter evacuations_;
};

}  // namespace ms::broker
