#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "core/cluster.hpp"
#include "core/memory_space.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"

namespace ms::broker {

/// Live page migration: moves the physical frame backing one virtual page
/// to another donor (or home) while the workload keeps running.
///
/// Protocol, per page:
///  1. *Pre-copy* — the page's bytes are pulled chunk by chunk over the
///     kMig* traffic class (a dedicated packet family so the copy stream
///     can ride its own virtual channel, Fabric::Params::migration_vc).
///     Accesses proceed untouched during this phase; writes land in the
///     old frame and are caught by step 3.
///  2. *Blackout* — the page is sealed: new accesses park on a Trigger and
///     in-flight accesses drain (the PageAccessGate brackets every timed
///     access). Because donors never cache donated frames, there is no
///     invalidation traffic to wait for — draining the access count is the
///     whole synchronization.
///  3. *Remap* — one remap_cost delay models the PTE update + TLB
///     shootdown; then the functional bytes are copied (picking up any
///     writes that raced with the pre-copy), the page table is retargeted
///     and the old frame freed — all without suspension, so an invariant
///     sweep can never observe a half-migrated page. The seal is removed
///     and parked accesses replay against the new frame.
class MigrationEngine : public core::PageAccessGate {
 public:
  struct Params {
    /// Model the copy stream on the fabric (kMig* packets + donor-side
    /// memory time). Off = functional-only migration, for unit tests.
    bool timed_copy = true;
    std::uint32_t copy_chunk = 256;        ///< bytes per kMigData packet
    sim::Time remap_cost = sim::ns(400);   ///< PTE update + TLB shootdown
  };

  MigrationEngine(core::Cluster& cluster, const Params& p);

  // PageAccessGate -----------------------------------------------------
  sim::Task<void> enter(core::MemorySpace& space, os::VAddr va,
                        std::uint32_t bytes) override;
  void exit(core::MemorySpace& space, os::VAddr va,
            std::uint32_t bytes) override;

  /// Moves the frame backing `page_va` to a fresh frame allocated on
  /// `dest` (dest == space.home() migrates the page back to local
  /// memory). Returns false when nothing was migrated: page unmapped, a
  /// migration of it already in flight, the page already lives on `dest`,
  /// or the destination cannot provide a frame.
  sim::Task<bool> migrate_page(core::MemorySpace& space, os::VAddr page_va,
                               ht::NodeId dest);

  /// A page mid-migration, for the frame-ownership invariant: the page
  /// table must still say `src` (remap happens only at the end of the
  /// blackout), and the page is unreachable through `dst` until then.
  struct Transit {
    core::MemorySpace* space = nullptr;
    os::VAddr page = 0;
    ht::PAddr src = 0;
    ht::PAddr dst = 0;
  };
  using Key = std::pair<core::MemorySpace*, os::VAddr>;

  const std::map<Key, Transit>& transits() const { return transit_; }
  /// Where each completed migration left its page (what the page table
  /// must say, unless a later migration superseded it).
  const std::map<Key, ht::PAddr>& settled() const { return settled_; }

  std::uint64_t migrations() const { return migrations_.value(); }
  std::uint64_t parked_waits() const { return parked_waits_.value(); }
  const sim::Sampler& blackout() const { return blackout_; }

  /// Fault injection for the fuzzer: complete the bookkeeping of a
  /// migration but skip the page-table remap and the old-frame free — the
  /// classic lost-page bug the broker.transit invariant must catch.
  void test_lose_page(bool on) { lose_page_ = on; }

 private:
  /// One pre-copy chunk: pull from the source owner, push to the
  /// destination owner, over the kMig* traffic class.
  sim::Task<void> copy_chunk_timed(core::MemorySpace& space, ht::PAddr src,
                                   ht::PAddr dst, std::uint32_t bytes);

  core::Cluster& cluster_;
  sim::Engine& engine_;
  Params params_;

  // Gate state, all keyed by (space, page base).
  std::map<Key, int> inflight_;  ///< accesses currently past enter()
  std::map<Key, std::shared_ptr<sim::Trigger>> sealed_;  ///< blackout parks
  std::map<Key, std::shared_ptr<sim::Trigger>> drain_;   ///< migrator waits
  std::set<Key> migrating_;      ///< re-entrancy guard (covers pre-copy)
  std::map<Key, Transit> transit_;
  std::map<Key, ht::PAddr> settled_;

  sim::Counter migrations_;
  sim::Counter parked_waits_;
  sim::Sampler blackout_;  ///< seal-to-unseal window per migration
  bool lose_page_ = false;
};

}  // namespace ms::broker
