#include "workloads/streamcluster.hpp"

#include "sim/random.hpp"

namespace ms::workloads {

Streamcluster::Streamcluster(core::MemorySpace& space, const Params& p)
    : space_(space), params_(p) {}

std::vector<Streamcluster::Point> Streamcluster::make_centers() const {
  sim::Rng rng(params_.seed * 1013 + 5);
  std::vector<Point> centers(static_cast<std::size_t>(params_.centers));
  for (auto& c : centers) {
    for (auto& x : c.coord) x = static_cast<float>(rng.uniform() * 100.0);
  }
  return centers;
}

sim::Task<void> Streamcluster::setup() {
  points_ = co_await space_.map_range(params_.points * sizeof(Point));
  labels_ = co_await space_.map_range(params_.points * 4);
  sim::Rng rng(params_.seed);
  for (std::uint64_t i = 0; i < params_.points; ++i) {
    Point p;
    for (auto& x : p.coord) x = static_cast<float>(rng.uniform() * 100.0);
    space_.poke_pod(points_ + i * sizeof(Point), p);
  }
}

sim::Task<void> Streamcluster::run(core::ThreadCtx& t) {
  const auto centers = make_centers();
  assignment_sum_ = 0;
  for (int round = 0; round < params_.rounds; ++round) {
    for (std::uint64_t i = 0; i < params_.points; ++i) {
      auto p = co_await space_.read_pod<Point>(t, points_ + i * sizeof(Point));
      int best = 0;
      float best_d = 0;
      for (int c = 0; c < params_.centers; ++c) {
        float d = 0;
        for (int k = 0; k < kDims; ++k) {
          const float diff = p.coord[k] - centers[static_cast<std::size_t>(c)].coord[k];
          d += diff * diff;
        }
        t.compute(params_.compute_per_distance);
        if (c == 0 || d < best_d) {
          best_d = d;
          best = c;
        }
      }
      co_await space_.write_pod(t, labels_ + i * 4,
                                static_cast<std::uint32_t>(best));
      if (round == params_.rounds - 1) {
        assignment_sum_ += static_cast<std::uint64_t>(best);
      }
    }
  }
  co_await space_.sync(t);
}

std::uint64_t Streamcluster::expected_assignment_sum() const {
  const auto centers = make_centers();
  sim::Rng rng(params_.seed);
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < params_.points; ++i) {
    Point p;
    for (auto& x : p.coord) x = static_cast<float>(rng.uniform() * 100.0);
    int best = 0;
    float best_d = 0;
    for (int c = 0; c < params_.centers; ++c) {
      float d = 0;
      for (int k = 0; k < kDims; ++k) {
        const float diff = p.coord[k] - centers[static_cast<std::size_t>(c)].coord[k];
        d += diff * diff;
      }
      if (c == 0 || d < best_d) {
        best_d = d;
        best = c;
      }
    }
    sum += static_cast<std::uint64_t>(best);
  }
  return sum;
}

}  // namespace ms::workloads
