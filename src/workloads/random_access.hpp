#pragma once

#include <vector>

#include "core/memory_space.hpp"
#include "sim/random.hpp"

namespace ms::workloads {

/// The paper's "random benchmark" (Sec. V-A): threads hammer a remote
/// buffer with independent random reads; execution time for a fixed number
/// of accesses exposes where the architecture saturates (client RMC at ~2
/// threads, then the server RMC as client nodes multiply).
class RandomAccess {
 public:
  struct Params {
    std::uint64_t buffer_bytes = std::uint64_t{1} << 28;  ///< per server
    std::uint64_t accesses_per_thread = 20'000;
    std::uint32_t access_bytes = 8;
    std::uint64_t seed = 1;
    bool verify = true;              ///< check the data pattern on every read
    sim::Time loop_overhead = sim::ns(4);  ///< address generation per access
  };

  RandomAccess(core::MemorySpace& space, const Params& p);

  /// Maps one buffer slice per server node and fills it with the pattern.
  /// Servers may be remote donors or the home node itself (local baseline).
  sim::Task<void> setup(std::vector<ht::NodeId> servers);

  /// One benchmark thread bound to `core`; performs the configured number
  /// of random reads uniformly over all slices.
  sim::Task<void> thread_fn(int core, int thread_id);

  std::uint64_t errors() const { return errors_; }
  std::uint64_t total_reads() const { return total_reads_; }

  /// Deterministic content at byte offset (verification pattern).
  static std::uint64_t pattern(std::uint64_t word_index) {
    return word_index * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  }

 private:
  core::MemorySpace& space_;
  Params params_;
  std::vector<core::VAddr> slices_;
  std::uint64_t words_per_slice_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t total_reads_ = 0;
};

}  // namespace ms::workloads
