#pragma once

#include <optional>

#include "core/memory_space.hpp"
#include "sim/function_ref.hpp"

namespace ms::workloads {

/// Open-addressing hash index in simulated memory.
///
/// The paper's footnote 3: "in-memory databases usually implement hash
/// indexes, as this structure presents even better performance when it is
/// stored in memory. Thus, by using b-trees in this study, we relinquish
/// the advantage over remote swap provided by hash indexes when used in
/// remote memory." This class makes that claim measurable
/// (bench_ext_hash_vs_btree): a lookup costs ~1 probe = ~1 cache line in
/// remote memory (far cheaper than a b-tree walk), but the same probe is a
/// whole page fault under remote swap — hash indexes amplify exactly the
/// locality difference between the two architectures.
///
/// Layout: a power-of-two array of 16-byte slots {key, value}, linear
/// probing, key 0 reserved as the empty sentinel. No deletion (the paper's
/// retrieval study needs none); inserts are timed block operations like
/// the b-tree's.
class HashIndex {
 public:
  HashIndex(core::MemorySpace& space, std::uint64_t capacity_slots);

  /// Functional bulk population (untimed), like BTree::bulk_build.
  sim::Task<void> build(std::uint64_t n,
                        sim::FunctionRef<std::uint64_t(std::uint64_t)> key_at);

  /// Timed operations.
  sim::Task<void> insert(core::ThreadCtx& t, std::uint64_t key,
                         std::uint64_t value);
  sim::Task<std::optional<std::uint64_t>> get(core::ThreadCtx& t,
                                              std::uint64_t key);
  sim::Task<bool> contains(core::ThreadCtx& t, std::uint64_t key);

  std::uint64_t size() const { return size_; }
  std::uint64_t capacity() const { return capacity_; }
  double load_factor() const {
    return static_cast<double>(size_) / static_cast<double>(capacity_);
  }
  std::uint64_t total_probes() const { return probes_.value(); }
  std::uint64_t footprint_bytes() const { return capacity_ * 16; }

  /// Functional invariant check: every slot's key rehashes to a probe
  /// sequence that reaches it without crossing an empty slot.
  void validate() const;

 private:
  static std::uint64_t mix(std::uint64_t key) {
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ULL;
    key ^= key >> 33;
    return key;
  }
  std::uint64_t slot_of(std::uint64_t key) const {
    return mix(key) & (capacity_ - 1);
  }
  core::VAddr slot_addr(std::uint64_t slot) const {
    return base_ + slot * 16;
  }

  core::MemorySpace& space_;
  std::uint64_t capacity_;
  core::VAddr base_ = 0;
  std::uint64_t size_ = 0;
  bool mapped_ = false;
  sim::Counter probes_;
};

}  // namespace ms::workloads
