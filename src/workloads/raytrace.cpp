#include "workloads/raytrace.hpp"

#include <stdexcept>

#include "sim/random.hpp"

namespace ms::workloads {

Raytrace::Raytrace(core::MemorySpace& space, const Params& p)
    : space_(space), params_(p) {
  if (p.depth < 2 || p.depth > 30) {
    throw std::invalid_argument("Raytrace: depth out of range");
  }
}

sim::Task<void> Raytrace::setup() {
  nodes_ = co_await space_.map_range(footprint_bytes());
  // Node contents: only the checksum seed matters functionally; fill it
  // deterministically so the traversal hash is checkable.
  for (std::uint64_t i = 0; i < node_count(); ++i) {
    BvhNode n{};
    n.prim_id = i;
    n.checksum_seed = i * 0x9e3779b97f4a7c15ULL + 1;
    space_.poke_pod(nodes_ + i * sizeof(BvhNode), n);
  }
}

std::uint64_t Raytrace::target_leaf(std::uint64_t ray, sim::Rng& rng) const {
  // Coherent sweep across the leaf layer with bounded jitter.
  const std::uint64_t leaves = leaf_count();
  const std::uint64_t base = (ray * params_.stride) % leaves;  // slow pan
  const std::uint64_t j = rng.below(params_.jitter);
  return (base + j) % leaves;
}

sim::Task<void> Raytrace::run(core::ThreadCtx& t) {
  sim::Rng rng(params_.seed);
  const std::uint64_t first_leaf = leaf_count() - 1;  // heap index of leaf 0
  for (std::uint64_t ray = 0; ray < params_.rays; ++ray) {
    std::uint64_t leaf_index = first_leaf + target_leaf(ray, rng);

    // Root-to-leaf path in the implicit heap: the path is the bit prefix
    // of (leaf_index+1).
    std::uint64_t path = leaf_index + 1;
    int levels = 0;
    std::uint64_t probe = path;
    while (probe > 1) {
      probe >>= 1;
      ++levels;
    }
    for (int level = levels; level >= 0; --level) {
      const std::uint64_t heap_pos = (path >> level) - 1;
      auto n = co_await space_.read_pod<BvhNode>(
          t, nodes_ + heap_pos * sizeof(BvhNode));
      if (level == 0) {
        t.compute(params_.compute_per_leaf);
        hash_ ^= n.checksum_seed * (ray + 1);
      } else {
        t.compute(params_.compute_per_node);
      }
    }
  }
  co_await space_.sync(t);
}

std::uint64_t Raytrace::expected_hash() const {
  sim::Rng rng(params_.seed);
  std::uint64_t h = 0;
  const std::uint64_t first_leaf = leaf_count() - 1;
  for (std::uint64_t ray = 0; ray < params_.rays; ++ray) {
    std::uint64_t idx = first_leaf + target_leaf(ray, rng);
    std::uint64_t seed = idx * 0x9e3779b97f4a7c15ULL + 1;
    h ^= seed * (ray + 1);
  }
  return h;
}

}  // namespace ms::workloads
