#include "workloads/blackscholes.hpp"

#include <cmath>

#include "sim/random.hpp"

namespace ms::workloads {

namespace {
// Abramowitz & Stegun 26.2.17 — the same polynomial PARSEC uses.
double normal_cdf(double x) {
  const double a1 = 0.319381530, a2 = -0.356563782, a3 = 1.781477937,
               a4 = -1.821255978, a5 = 1.330274429;
  const double L = std::fabs(x);
  const double k = 1.0 / (1.0 + 0.2316419 * L);
  const double poly = k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5))));
  const double w =
      1.0 - 1.0 / std::sqrt(2.0 * M_PI) * std::exp(-L * L / 2.0) * poly;
  return x < 0 ? 1.0 - w : w;
}
}  // namespace

double Blackscholes::price(const OptionData& o) {
  const double sqrt_t = std::sqrt(o.maturity);
  const double d1 =
      (std::log(o.spot / o.strike) +
       (o.rate + o.volatility * o.volatility / 2.0) * o.maturity) /
      (o.volatility * sqrt_t);
  const double d2 = d1 - o.volatility * sqrt_t;
  const double discounted = o.strike * std::exp(-o.rate * o.maturity);
  if (o.is_put) {
    return discounted * normal_cdf(-d2) - o.spot * normal_cdf(-d1);
  }
  return o.spot * normal_cdf(d1) - discounted * normal_cdf(d2);
}

Blackscholes::Blackscholes(core::MemorySpace& space, const Params& p)
    : space_(space), params_(p) {}

sim::Task<void> Blackscholes::setup() {
  options_ = co_await space_.map_range(params_.options * sizeof(OptionData));
  results_ = co_await space_.map_range(params_.options * 8);
  sim::Rng rng(params_.seed);
  for (std::uint64_t i = 0; i < params_.options; ++i) {
    OptionData o{
        .spot = 20.0 + rng.uniform() * 80.0,
        .strike = 20.0 + rng.uniform() * 80.0,
        .rate = 0.01 + rng.uniform() * 0.09,
        .volatility = 0.10 + rng.uniform() * 0.50,
        .maturity = 0.25 + rng.uniform() * 2.0,
        .is_put = static_cast<std::uint32_t>(rng.below(2)),
    };
    space_.poke_pod(options_ + i * sizeof(OptionData), o);
  }
}

sim::Task<void> Blackscholes::run(core::ThreadCtx& t) {
  for (int round = 0; round < params_.rounds; ++round) {
    for (std::uint64_t i = 0; i < params_.options; ++i) {
      auto o = co_await space_.read_pod<OptionData>(
          t, options_ + i * sizeof(OptionData));
      t.compute(params_.compute_per_option);
      const double p = price(o);
      co_await space_.write_pod(t, results_ + i * 8, p);
    }
  }
  co_await space_.sync(t);
}

double Blackscholes::checksum() const {
  double sum = 0.0;
  for (std::uint64_t i = 0; i < params_.options; ++i) {
    sum += space_.peek_pod<double>(results_ + i * 8);
  }
  return sum;
}

}  // namespace ms::workloads
