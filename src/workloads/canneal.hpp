#pragma once

#include "core/memory_space.hpp"
#include "sim/random.hpp"

namespace ms::workloads {

/// canneal-like kernel (PARSEC): simulated annealing of a netlist
/// placement.
///
/// The netlist is an array of 64-byte elements, each with a 2D location
/// and six neighbour ids pointing *uniformly at random* across the whole
/// array. One annealing step picks two random elements, reads both
/// records, chases all twelve neighbour locations (more uniform random
/// 64-byte touches), computes the wire-length delta and swaps the
/// locations when accepted.
///
/// This is the memory-hungry, locality-free access pattern for which the
/// paper's architecture exists: under remote memory each step costs a
/// bounded number of line fills; under remote swap nearly every touch is a
/// page fault and "the performance worsens exponentially to prohibitive
/// levels" (Sec. V-C).
class Canneal {
 public:
  struct Params {
    std::uint64_t elements = 1 << 20;  ///< 64 MiB netlist
    std::uint64_t steps = 20'000;
    std::uint64_t seed = 1;
    double initial_temperature = 100.0;
    sim::Time compute_per_step = sim::ns(180);
  };

  struct Element {
    std::int32_t x;
    std::int32_t y;
    std::uint32_t neighbors[6];
    std::uint32_t pad[8];
  };
  static_assert(sizeof(Element) == 64);

  Canneal(core::MemorySpace& space, const Params& p);

  sim::Task<void> setup();
  sim::Task<void> run(core::ThreadCtx& t);

  std::uint64_t footprint_bytes() const {
    return params_.elements * sizeof(Element);
  }
  std::uint64_t accepted_swaps() const { return accepted_; }

  /// Total wire length (functional, exact) — must strictly decrease over a
  /// cooling run; tests assert it.
  double total_wire_length() const;

 private:
  core::MemorySpace& space_;
  Params params_;
  core::VAddr elements_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace ms::workloads
