#pragma once

#include <optional>
#include <vector>

#include "core/memory_space.hpp"
#include "sim/function_ref.hpp"
#include "core/remote_allocator.hpp"

namespace ms::workloads {

/// B-tree stored in simulated memory (Sec. V-B).
///
/// The paper uses b-tree search to mimic database index retrieval and to
/// contrast the two architectures: remote swap pays per *page* touched, so
/// it cares enormously about fanout; remote memory pays per *cache line*,
/// so it is nearly locality-insensitive (Eq. 1 vs Eq. 2).
///
/// Node layout (fixed, 16*fanout bytes, so power-of-two size classes never
/// straddle page boundaries for fanout <= 256):
///   [u32 nkeys][u32 flags]              8 B header, bit0 of flags = leaf
///   [u64 keys[fanout-1]]
///   [u64 children[fanout]]              (meaningful for internal nodes)
///
/// Search is fine-grained — header word, ~log2(fanout) key probes, one
/// child pointer per level — exactly the access pattern whose locality the
/// paper analyzes. Insert loads/stores whole node blocks (page-style DB
/// I/O) and supports splits, so tests can grow trees organically and check
/// the invariants.
class BTree {
 public:
  BTree(core::MemorySpace& space, core::RemoteAllocator& alloc, int fanout);

  /// Bulk-populates with `n` keys from the strictly increasing generator
  /// `key_at(i)`, building the paper's shape: all levels full except the
  /// leaf level, which fills left to right. Construction is functional
  /// (untimed) — the paper times only the searches.
  sim::Task<void> bulk_build(std::uint64_t n,
                             sim::FunctionRef<std::uint64_t(std::uint64_t)> key_at);

  struct SearchStats {
    int nodes_visited = 0;
    int key_probes = 0;
  };

  /// Timed search; true iff the key is present.
  sim::Task<bool> search(core::ThreadCtx& t, std::uint64_t key,
                         SearchStats* stats = nullptr);

  /// Timed insert with node splits (duplicates are ignored).
  sim::Task<void> insert(core::ThreadCtx& t, std::uint64_t key);

  /// Timed range query: every key in [lo, hi], ascending. The descent
  /// prunes subtrees by separator, so cost ~ matching leaves + height.
  sim::Task<std::vector<std::uint64_t>> range_scan(core::ThreadCtx& t,
                                                   std::uint64_t lo,
                                                   std::uint64_t hi);

  std::uint64_t size() const { return size_; }
  int height() const { return height_; }  ///< levels incl. leaf; 0 = empty
  int fanout() const { return fanout_; }
  std::uint64_t node_bytes() const {
    return 16 * static_cast<std::uint64_t>(fanout_);
  }
  std::uint64_t node_count() const { return node_count_; }

  /// Structural invariants, checked functionally (throws on violation):
  /// sorted keys, fanout bounds, separator ranges, uniform leaf depth.
  void validate() const;

  /// All keys in order, functionally (test oracle).
  std::vector<std::uint64_t> collect_all() const;

 private:
  static constexpr std::uint32_t kLeafFlag = 1;

  // In-memory image of one node, for block-style operations.
  struct HostNode {
    bool leaf = true;
    std::vector<std::uint64_t> keys;
    std::vector<core::VAddr> children;
  };

  core::VAddr key_addr(core::VAddr node, int i) const {
    return node + 8 + static_cast<core::VAddr>(i) * 8;
  }
  core::VAddr child_addr(core::VAddr node, int i) const {
    return node + 8 + static_cast<core::VAddr>(fanout_ - 1) * 8 +
           static_cast<core::VAddr>(i) * 8;
  }

  sim::Task<core::VAddr> alloc_node();

  // Functional node I/O (construction / validation).
  void poke_node(core::VAddr addr, const HostNode& n);
  HostNode peek_node(core::VAddr addr) const;

  // Timed block I/O (insert path).
  sim::Task<HostNode> load_node(core::ThreadCtx& t, core::VAddr addr);
  sim::Task<void> store_node(core::ThreadCtx& t, core::VAddr addr,
                             const HostNode& n);

  // Recursive helpers.
  struct Split {
    std::uint64_t separator;
    core::VAddr right;
  };
  sim::Task<std::optional<Split>> insert_into(core::ThreadCtx& t,
                                              core::VAddr addr,
                                              std::uint64_t key,
                                              bool* inserted);
  sim::Task<void> scan_node(core::ThreadCtx& t, core::VAddr addr,
                            std::uint64_t lo, std::uint64_t hi,
                            std::vector<std::uint64_t>* out);
  void validate_node(core::VAddr addr, std::optional<std::uint64_t> lo,
                     std::optional<std::uint64_t> hi, int depth,
                     int& leaf_depth) const;
  void collect_node(core::VAddr addr, std::vector<std::uint64_t>& out) const;

  core::MemorySpace& space_;
  core::RemoteAllocator& alloc_;
  int fanout_;
  core::VAddr root_ = 0;
  int height_ = 0;
  std::uint64_t size_ = 0;
  std::uint64_t node_count_ = 0;
  sim::Time compare_cost_ = sim::ns(2);
};

}  // namespace ms::workloads
