#include "workloads/hash_index.hpp"

#include <bit>
#include <stdexcept>

namespace ms::workloads {

HashIndex::HashIndex(core::MemorySpace& space, std::uint64_t capacity_slots)
    : space_(space), capacity_(capacity_slots) {
  if (!std::has_single_bit(capacity_slots)) {
    throw std::invalid_argument("HashIndex: capacity must be a power of two");
  }
}

sim::Task<void> HashIndex::build(
    std::uint64_t n,
    sim::FunctionRef<std::uint64_t(std::uint64_t)> key_at) {
  if (!mapped_) {
    base_ = co_await space_.map_range(footprint_bytes());
    mapped_ = true;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = key_at(i);
    if (key == 0) throw std::invalid_argument("HashIndex: key 0 is reserved");
    std::uint64_t slot = slot_of(key);
    while (true) {
      const auto existing =
          space_.peek_pod<std::uint64_t>(slot_addr(slot));
      if (existing == 0) {
        space_.poke_pod(slot_addr(slot), key);
        space_.poke_pod(slot_addr(slot) + 8, i);
        ++size_;
        break;
      }
      if (existing == key) break;  // duplicate
      slot = (slot + 1) & (capacity_ - 1);
    }
    if (size_ * 4 > capacity_ * 3) {
      throw std::runtime_error("HashIndex: load factor above 0.75");
    }
  }
}

sim::Task<void> HashIndex::insert(core::ThreadCtx& t, std::uint64_t key,
                                  std::uint64_t value) {
  if (!mapped_) {
    base_ = co_await space_.map_range(footprint_bytes());
    mapped_ = true;
  }
  if (key == 0) throw std::invalid_argument("HashIndex: key 0 is reserved");
  if (size_ * 4 > capacity_ * 3) {
    throw std::runtime_error("HashIndex: load factor above 0.75");
  }
  std::uint64_t slot = slot_of(key);
  while (true) {
    probes_.inc();
    const auto existing = co_await space_.read_u64(t, slot_addr(slot));
    t.compute(sim::ns(2));
    if (existing == 0) {
      co_await space_.write_u64(t, slot_addr(slot), key);
      co_await space_.write_u64(t, slot_addr(slot) + 8, value);
      ++size_;
      break;
    }
    if (existing == key) {
      co_await space_.write_u64(t, slot_addr(slot) + 8, value);
      break;
    }
    slot = (slot + 1) & (capacity_ - 1);
  }
  co_await space_.sync(t);
}

sim::Task<std::optional<std::uint64_t>> HashIndex::get(core::ThreadCtx& t,
                                                       std::uint64_t key) {
  std::uint64_t slot = slot_of(key);
  while (true) {
    probes_.inc();
    const auto existing = co_await space_.read_u64(t, slot_addr(slot));
    t.compute(sim::ns(2));
    if (existing == 0) {
      co_await space_.sync(t);
      co_return std::nullopt;
    }
    if (existing == key) {
      const auto value = co_await space_.read_u64(t, slot_addr(slot) + 8);
      co_await space_.sync(t);
      co_return value;
    }
    slot = (slot + 1) & (capacity_ - 1);
  }
}

sim::Task<bool> HashIndex::contains(core::ThreadCtx& t, std::uint64_t key) {
  co_return (co_await get(t, key)).has_value();
}

void HashIndex::validate() const {
  std::uint64_t found = 0;
  for (std::uint64_t s = 0; s < capacity_; ++s) {
    const auto key = space_.peek_pod<std::uint64_t>(slot_addr(s));
    if (key == 0) continue;
    ++found;
    // The probe sequence from the key's home slot must reach s without
    // crossing an empty slot.
    std::uint64_t probe = slot_of(key);
    while (probe != s) {
      const auto k = space_.peek_pod<std::uint64_t>(slot_addr(probe));
      if (k == 0) {
        throw std::logic_error("HashIndex: probe chain broken by empty slot");
      }
      probe = (probe + 1) & (capacity_ - 1);
    }
  }
  if (found != size_) {
    throw std::logic_error("HashIndex: slot count does not match size");
  }
}

}  // namespace ms::workloads
