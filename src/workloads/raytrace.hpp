#pragma once

#include "core/memory_space.hpp"
#include "sim/random.hpp"

namespace ms::workloads {

/// raytrace-like kernel (PARSEC): coherent rays through a BVH.
///
/// The acceleration structure is a complete binary BVH stored as an
/// implicit heap of 64-byte node records. Rays are *coherent* the way a
/// frame render's rays are: consecutive rays hit neighbouring leaves (with
/// small jitter), so the top of the tree stays cached/resident and leaf
/// pages stream. Each ray reads its full root-to-leaf path plus the leaf's
/// primitive block and does a bounded amount of intersection math.
///
/// Under remote swap this behaves like blackscholes-with-depth: mostly
/// streaming faults amortized over many rays per page (~2x), while canneal
/// (random access) thrashes — the contrast Fig. 11 shows.
class Raytrace {
 public:
  struct Params {
    int depth = 18;            ///< tree levels; leaves = 2^(depth-1)
    std::uint64_t rays = 50'000;
    std::uint64_t seed = 1;
    std::uint32_t jitter = 64; ///< leaf neighbourhood of consecutive rays
    std::uint32_t stride = 2;  ///< leaf-layer pan speed (ray coherence)
    sim::Time compute_per_node = sim::ns(25);  ///< AABB test
    sim::Time compute_per_leaf = sim::ns(120); ///< triangle intersections
  };

  struct BvhNode {
    float bounds[12];      ///< two child AABBs
    std::uint64_t prim_id; ///< leaf payload tag
    std::uint64_t checksum_seed;
  };
  static_assert(sizeof(BvhNode) == 64);

  Raytrace(core::MemorySpace& space, const Params& p);

  sim::Task<void> setup();
  sim::Task<void> run(core::ThreadCtx& t);

  std::uint64_t footprint_bytes() const { return node_count() * 64; }
  std::uint64_t node_count() const {
    return (std::uint64_t{1} << params_.depth) - 1;
  }
  std::uint64_t leaf_count() const {
    return std::uint64_t{1} << (params_.depth - 1);
  }

  /// Accumulated hit hash — deterministic for a given seed (test oracle).
  std::uint64_t result_hash() const { return hash_; }

  /// Host-side oracle: the hash the run must produce.
  std::uint64_t expected_hash() const;

 private:
  std::uint64_t target_leaf(std::uint64_t ray, sim::Rng& rng) const;

  core::MemorySpace& space_;
  Params params_;
  core::VAddr nodes_ = 0;
  std::uint64_t hash_ = 0;
};

}  // namespace ms::workloads
