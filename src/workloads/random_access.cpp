#include "workloads/random_access.hpp"

#include <stdexcept>

namespace ms::workloads {

RandomAccess::RandomAccess(core::MemorySpace& space, const Params& p)
    : space_(space), params_(p) {
  if (p.access_bytes == 0 || p.buffer_bytes % 8 != 0) {
    throw std::invalid_argument("RandomAccess: bad sizes");
  }
}

sim::Task<void> RandomAccess::setup(std::vector<ht::NodeId> servers) {
  if (servers.empty()) {
    throw std::invalid_argument("RandomAccess: need at least one server");
  }
  words_per_slice_ = params_.buffer_bytes / 8;
  std::uint64_t word = 0;
  for (ht::NodeId server : servers) {
    core::VAddr base =
        server == space_.home()
            ? co_await space_.map_range(params_.buffer_bytes)
            : co_await space_.map_range_on(params_.buffer_bytes, server);
    slices_.push_back(base);
    for (std::uint64_t w = 0; w < words_per_slice_; ++w, ++word) {
      space_.poke_pod<std::uint64_t>(base + w * 8, pattern(word));
    }
  }
}

sim::Task<void> RandomAccess::thread_fn(int core, int thread_id) {
  core::ThreadCtx t{.core = core};
  sim::Rng rng(params_.seed * 7919 + static_cast<std::uint64_t>(thread_id));
  const std::uint64_t total_words =
      words_per_slice_ * slices_.size();

  for (std::uint64_t i = 0; i < params_.accesses_per_thread; ++i) {
    const std::uint64_t word = rng.below(total_words);
    const std::size_t slice = static_cast<std::size_t>(word / words_per_slice_);
    const std::uint64_t in_slice = word % words_per_slice_;
    t.compute(params_.loop_overhead);
    const std::uint64_t got =
        co_await space_.read_u64(t, slices_[slice] + in_slice * 8);
    ++total_reads_;
    if (params_.verify && got != pattern(word)) ++errors_;
  }
  co_await space_.sync(t);
}

}  // namespace ms::workloads
