#include "workloads/btree.hpp"

#include <algorithm>
#include <stdexcept>

namespace ms::workloads {

BTree::BTree(core::MemorySpace& space, core::RemoteAllocator& alloc,
             int fanout)
    : space_(space), alloc_(alloc), fanout_(fanout) {
  if (fanout < 3) throw std::invalid_argument("BTree: fanout must be >= 3");
}

sim::Task<core::VAddr> BTree::alloc_node() {
  ++node_count_;
  co_return co_await alloc_.gmalloc(node_bytes());
}

void BTree::poke_node(core::VAddr addr, const HostNode& n) {
  space_.poke_pod<std::uint32_t>(addr, static_cast<std::uint32_t>(n.keys.size()));
  space_.poke_pod<std::uint32_t>(addr + 4, n.leaf ? kLeafFlag : 0);
  for (std::size_t i = 0; i < n.keys.size(); ++i) {
    space_.poke_pod<std::uint64_t>(key_addr(addr, static_cast<int>(i)), n.keys[i]);
  }
  if (!n.leaf) {
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      space_.poke_pod<std::uint64_t>(child_addr(addr, static_cast<int>(i)),
                                     n.children[i]);
    }
  }
}

BTree::HostNode BTree::peek_node(core::VAddr addr) const {
  HostNode n;
  auto nkeys = space_.peek_pod<std::uint32_t>(addr);
  n.leaf = (space_.peek_pod<std::uint32_t>(addr + 4) & kLeafFlag) != 0;
  n.keys.resize(nkeys);
  for (std::uint32_t i = 0; i < nkeys; ++i) {
    n.keys[i] = space_.peek_pod<std::uint64_t>(key_addr(addr, static_cast<int>(i)));
  }
  if (!n.leaf) {
    n.children.resize(nkeys + 1);
    for (std::uint32_t i = 0; i <= nkeys; ++i) {
      n.children[i] =
          space_.peek_pod<std::uint64_t>(child_addr(addr, static_cast<int>(i)));
    }
  }
  return n;
}

sim::Task<BTree::HostNode> BTree::load_node(core::ThreadCtx& t,
                                            core::VAddr addr) {
  HostNode n;
  auto header = co_await space_.read_pod<std::uint64_t>(t, addr);
  auto nkeys = static_cast<std::uint32_t>(header & 0xffffffffu);
  n.leaf = ((header >> 32) & kLeafFlag) != 0;
  n.keys.resize(nkeys);
  for (std::uint32_t i = 0; i < nkeys; ++i) {
    n.keys[i] = co_await space_.read_u64(t, key_addr(addr, static_cast<int>(i)));
  }
  if (!n.leaf) {
    n.children.resize(nkeys + 1);
    for (std::uint32_t i = 0; i <= nkeys; ++i) {
      n.children[i] =
          co_await space_.read_u64(t, child_addr(addr, static_cast<int>(i)));
    }
  }
  co_return n;
}

sim::Task<void> BTree::store_node(core::ThreadCtx& t, core::VAddr addr,
                                  const HostNode& n) {
  const std::uint64_t header =
      static_cast<std::uint64_t>(n.keys.size()) |
      (static_cast<std::uint64_t>(n.leaf ? kLeafFlag : 0) << 32);
  co_await space_.write_pod(t, addr, header);
  for (std::size_t i = 0; i < n.keys.size(); ++i) {
    co_await space_.write_u64(t, key_addr(addr, static_cast<int>(i)), n.keys[i]);
  }
  if (!n.leaf) {
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      co_await space_.write_u64(t, child_addr(addr, static_cast<int>(i)),
                                n.children[i]);
    }
  }
}

sim::Task<void> BTree::bulk_build(
    std::uint64_t n,
    sim::FunctionRef<std::uint64_t(std::uint64_t)> key_at) {
  if (root_ != 0) throw std::logic_error("BTree: already built");
  size_ = n;
  if (n == 0) {
    root_ = co_await alloc_node();
    poke_node(root_, HostNode{});
    height_ = 1;
    co_return;
  }

  // Leaf level: full leaves (fanout-1 keys) filled left to right.
  const auto max_keys = static_cast<std::uint64_t>(fanout_ - 1);
  struct Built {
    core::VAddr addr;
    std::uint64_t min_key;
  };
  std::vector<Built> level;
  std::uint64_t produced = 0;
  while (produced < n) {
    HostNode leaf;
    leaf.leaf = true;
    const std::uint64_t take = std::min(max_keys, n - produced);
    leaf.keys.reserve(take);
    for (std::uint64_t i = 0; i < take; ++i) {
      leaf.keys.push_back(key_at(produced + i));
    }
    produced += take;
    core::VAddr addr = co_await alloc_node();
    poke_node(addr, leaf);
    level.push_back(Built{addr, leaf.keys.front()});
  }
  height_ = 1;

  // Internal levels: group `fanout` children per parent; the separator for
  // child i>0 is the minimum key of its subtree.
  while (level.size() > 1) {
    std::vector<Built> parents;
    for (std::size_t i = 0; i < level.size();) {
      HostNode inner;
      inner.leaf = false;
      const std::size_t take =
          std::min<std::size_t>(static_cast<std::size_t>(fanout_),
                                level.size() - i);
      for (std::size_t c = 0; c < take; ++c) {
        inner.children.push_back(level[i + c].addr);
        if (c > 0) inner.keys.push_back(level[i + c].min_key);
      }
      core::VAddr addr = co_await alloc_node();
      poke_node(addr, inner);
      parents.push_back(Built{addr, level[i].min_key});
      i += take;
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level.front().addr;
}

sim::Task<bool> BTree::search(core::ThreadCtx& t, std::uint64_t key,
                              SearchStats* stats) {
  if (root_ == 0) co_return false;
  core::VAddr node = root_;
  SearchStats local;
  while (true) {
    ++local.nodes_visited;
    const auto header = co_await space_.read_pod<std::uint64_t>(t, node);
    const auto nkeys = static_cast<int>(header & 0xffffffffu);
    const bool leaf = ((header >> 32) & kLeafFlag) != 0;

    // Binary search over the key array, one timed probe per comparison.
    int lo = 0, hi = nkeys;  // first index with keys[idx] > key
    bool found = false;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      const std::uint64_t k = co_await space_.read_u64(t, key_addr(node, mid));
      ++local.key_probes;
      t.compute(compare_cost_);
      if (k == key) {
        found = true;
        lo = mid + 1;
        break;
      }
      if (k < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }

    if (leaf) {
      if (stats) *stats = local;
      co_await space_.sync(t);
      co_return found;
    }
    if (found) {
      if (stats) *stats = local;
      co_await space_.sync(t);
      co_return true;  // separator hit: key exists in the subtree's min
    }
    node = co_await space_.read_u64(t, child_addr(node, lo));
  }
}

sim::Task<std::optional<BTree::Split>> BTree::insert_into(core::ThreadCtx& t,
                                                          core::VAddr addr,
                                                          std::uint64_t key,
                                                          bool* inserted) {
  HostNode n = co_await load_node(t, addr);
  const auto pos = static_cast<std::size_t>(
      std::lower_bound(n.keys.begin(), n.keys.end(), key) - n.keys.begin());
  if (pos < n.keys.size() && n.keys[pos] == key) {
    *inserted = false;
    co_return std::nullopt;  // duplicate
  }

  if (n.leaf) {
    n.keys.insert(n.keys.begin() + static_cast<std::ptrdiff_t>(pos), key);
    *inserted = true;
  } else {
    auto split = co_await insert_into(t, n.children[pos], key, inserted);
    if (!split) {
      co_return std::nullopt;
    }
    n.keys.insert(n.keys.begin() + static_cast<std::ptrdiff_t>(pos),
                  split->separator);
    n.children.insert(n.children.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                      split->right);
  }

  const auto max_keys = static_cast<std::size_t>(fanout_ - 1);
  if (n.keys.size() <= max_keys) {
    co_await store_node(t, addr, n);
    co_return std::nullopt;
  }

  // Split: left keeps the lower half, the middle key moves up.
  const std::size_t mid = n.keys.size() / 2;
  HostNode right;
  right.leaf = n.leaf;
  std::uint64_t separator;
  if (n.leaf) {
    // Leaf split: the separator is copied (stays in the right leaf).
    separator = n.keys[mid];
    right.keys.assign(n.keys.begin() + static_cast<std::ptrdiff_t>(mid),
                      n.keys.end());
    n.keys.resize(mid);
  } else {
    separator = n.keys[mid];
    right.keys.assign(n.keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                      n.keys.end());
    right.children.assign(
        n.children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
        n.children.end());
    n.keys.resize(mid);
    n.children.resize(mid + 1);
  }
  core::VAddr right_addr = co_await alloc_node();
  co_await store_node(t, addr, n);
  co_await store_node(t, right_addr, right);
  co_return Split{separator, right_addr};
}

sim::Task<void> BTree::insert(core::ThreadCtx& t, std::uint64_t key) {
  if (root_ == 0) {
    root_ = co_await alloc_node();
    poke_node(root_, HostNode{});
    height_ = 1;
  }
  bool inserted = false;
  auto split = co_await insert_into(t, root_, key, &inserted);
  if (split) {
    HostNode new_root;
    new_root.leaf = false;
    new_root.keys.push_back(split->separator);
    new_root.children.push_back(root_);
    new_root.children.push_back(split->right);
    core::VAddr addr = co_await alloc_node();
    co_await store_node(t, addr, new_root);
    root_ = addr;
    ++height_;
  }
  if (inserted) ++size_;
  co_await space_.sync(t);
}

sim::Task<void> BTree::scan_node(core::ThreadCtx& t, core::VAddr addr,
                                 std::uint64_t lo, std::uint64_t hi,
                                 std::vector<std::uint64_t>* out) {
  HostNode n = co_await load_node(t, addr);
  if (n.leaf) {
    for (std::uint64_t k : n.keys) {
      if (k >= lo && k <= hi) out->push_back(k);
    }
    co_return;
  }
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    // Child i holds keys in [keys[i-1], keys[i]) — separators copy up, so
    // keys equal to a separator live in the right sibling.
    if (i < n.keys.size() && n.keys[i] <= lo) continue;  // entirely below
    if (i > 0 && n.keys[i - 1] > hi) break;  // this and the rest are above
    co_await scan_node(t, n.children[i], lo, hi, out);
  }
}

sim::Task<std::vector<std::uint64_t>> BTree::range_scan(core::ThreadCtx& t,
                                                        std::uint64_t lo,
                                                        std::uint64_t hi) {
  std::vector<std::uint64_t> out;
  if (root_ != 0 && lo <= hi) {
    co_await scan_node(t, root_, lo, hi, &out);
    co_await space_.sync(t);
  }
  co_return out;
}

void BTree::validate_node(core::VAddr addr, std::optional<std::uint64_t> lo,
                          std::optional<std::uint64_t> hi, int depth,
                          int& leaf_depth) const {
  HostNode n = peek_node(addr);
  if (n.keys.size() > static_cast<std::size_t>(fanout_ - 1)) {
    throw std::logic_error("BTree: node overflows fanout");
  }
  for (std::size_t i = 0; i + 1 < n.keys.size(); ++i) {
    if (n.keys[i] >= n.keys[i + 1]) {
      throw std::logic_error("BTree: keys not strictly sorted");
    }
  }
  for (std::uint64_t k : n.keys) {
    if ((lo && k < *lo) || (hi && k >= *hi)) {
      throw std::logic_error("BTree: key outside separator range");
    }
  }
  if (n.leaf) {
    if (leaf_depth == -1) {
      leaf_depth = depth;
    } else if (leaf_depth != depth) {
      throw std::logic_error("BTree: leaves at different depths");
    }
    return;
  }
  if (n.children.size() != n.keys.size() + 1) {
    throw std::logic_error("BTree: child count mismatch");
  }
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    auto child_lo = i == 0 ? lo : std::optional<std::uint64_t>(n.keys[i - 1]);
    auto child_hi =
        i == n.keys.size() ? hi : std::optional<std::uint64_t>(n.keys[i]);
    validate_node(n.children[i], child_lo, child_hi, depth + 1, leaf_depth);
  }
}

void BTree::validate() const {
  if (root_ == 0) return;
  int leaf_depth = -1;
  validate_node(root_, std::nullopt, std::nullopt, 0, leaf_depth);
}

void BTree::collect_node(core::VAddr addr,
                         std::vector<std::uint64_t>& out) const {
  HostNode n = peek_node(addr);
  if (n.leaf) {
    out.insert(out.end(), n.keys.begin(), n.keys.end());
    return;
  }
  // Separators are always copies of leaf keys (B+-style copy-up on leaf
  // splits, promotion of existing copies on internal splits), so the leaf
  // level alone carries the exact key set.
  for (core::VAddr child : n.children) collect_node(child, out);
}

std::vector<std::uint64_t> BTree::collect_all() const {
  std::vector<std::uint64_t> out;
  if (root_ != 0) collect_node(root_, out);
  return out;
}

}  // namespace ms::workloads
