#pragma once

#include "core/memory_space.hpp"

namespace ms::workloads {

/// blackscholes-like kernel (PARSEC): streaming option pricing.
///
/// Memory character (what Fig. 11 depends on): a sequential read of one
/// 48-byte option record plus one 8-byte result write per option, with a
/// few hundred nanoseconds of floating-point work in between. Footprint is
/// `options * 56` bytes, locality is perfectly streaming — under remote
/// swap each 4 KiB page serves ~73 options, so the fault cost amortizes to
/// roughly a 2x slowdown rather than a blowup.
///
/// The math is the real Black-Scholes closed form (Abramowitz-Stegun normal
/// CDF), so tests can validate prices against known values.
class Blackscholes {
 public:
  struct Params {
    std::uint64_t options = 100'000;
    int rounds = 1;
    std::uint64_t seed = 1;
    sim::Time compute_per_option = sim::ns(500);  ///< transcendental-heavy math @ 2.1 GHz
  };

  struct OptionData {
    double spot;
    double strike;
    double rate;
    double volatility;
    double maturity;
    std::uint32_t is_put;
    std::uint32_t pad = 0;
  };
  static_assert(sizeof(OptionData) == 48);

  Blackscholes(core::MemorySpace& space, const Params& p);

  sim::Task<void> setup();
  sim::Task<void> run(core::ThreadCtx& t);

  /// Sum of all computed prices (order-independent correctness check).
  double checksum() const;

  std::uint64_t footprint_bytes() const {
    return params_.options * (sizeof(OptionData) + 8);
  }

  /// Reference price for one option (host-side oracle for tests).
  static double price(const OptionData& o);

 private:
  core::MemorySpace& space_;
  Params params_;
  core::VAddr options_ = 0;
  core::VAddr results_ = 0;
};

}  // namespace ms::workloads
