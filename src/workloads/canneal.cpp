#include "workloads/canneal.hpp"

#include <cmath>
#include <cstdlib>

namespace ms::workloads {

Canneal::Canneal(core::MemorySpace& space, const Params& p)
    : space_(space), params_(p) {}

sim::Task<void> Canneal::setup() {
  elements_ = co_await space_.map_range(footprint_bytes());
  sim::Rng rng(params_.seed);
  const auto n = params_.elements;
  const auto side = static_cast<std::int32_t>(std::sqrt(static_cast<double>(n)));
  for (std::uint64_t i = 0; i < n; ++i) {
    Element e{};
    e.x = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side)));
    e.y = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(side)));
    for (auto& nb : e.neighbors) {
      nb = static_cast<std::uint32_t>(rng.below(n));
    }
    space_.poke_pod(elements_ + i * sizeof(Element), e);
  }
}

namespace {
struct Location {
  std::int32_t x;
  std::int32_t y;
};
}  // namespace

sim::Task<void> Canneal::run(core::ThreadCtx& t) {
  sim::Rng rng(params_.seed * 31 + 7);
  double temperature = params_.initial_temperature;
  const double cooling = std::pow(
      0.01 / params_.initial_temperature,
      1.0 / static_cast<double>(std::max<std::uint64_t>(1, params_.steps)));

  for (std::uint64_t step = 0; step < params_.steps; ++step) {
    const std::uint64_t ia = rng.below(params_.elements);
    std::uint64_t ib = rng.below(params_.elements);
    if (ib == ia) ib = (ib + 1) % params_.elements;

    auto a = co_await space_.read_pod<Element>(t, elements_ + ia * sizeof(Element));
    auto b = co_await space_.read_pod<Element>(t, elements_ + ib * sizeof(Element));

    // Wire-length delta: chase all twelve neighbour locations.
    double before = 0.0, after = 0.0;
    for (std::uint32_t nb : a.neighbors) {
      auto n = co_await space_.read_pod<Element>(
          t, elements_ + static_cast<std::uint64_t>(nb) * sizeof(Element));
      before += std::abs(a.x - n.x) + std::abs(a.y - n.y);
      after += std::abs(b.x - n.x) + std::abs(b.y - n.y);
    }
    for (std::uint32_t nb : b.neighbors) {
      auto n = co_await space_.read_pod<Element>(
          t, elements_ + static_cast<std::uint64_t>(nb) * sizeof(Element));
      before += std::abs(b.x - n.x) + std::abs(b.y - n.y);
      after += std::abs(a.x - n.x) + std::abs(a.y - n.y);
    }
    t.compute(params_.compute_per_step);

    const double delta = after - before;
    const bool accept =
        delta < 0 || rng.uniform() < std::exp(-delta / temperature);
    if (accept) {
      ++accepted_;
      std::swap(a.x, b.x);
      std::swap(a.y, b.y);
      // Write back only the locations (first 8 bytes of each record).
      co_await space_.write_pod(t, elements_ + ia * sizeof(Element),
                                Location{a.x, a.y});
      co_await space_.write_pod(t, elements_ + ib * sizeof(Element),
                                Location{b.x, b.y});
    }
    temperature *= cooling;
  }
  co_await space_.sync(t);
}

double Canneal::total_wire_length() const {
  double total = 0.0;
  for (std::uint64_t i = 0; i < params_.elements; ++i) {
    auto e = space_.peek_pod<Element>(elements_ + i * sizeof(Element));
    for (std::uint32_t nb : e.neighbors) {
      auto n = space_.peek_pod<Element>(
          elements_ + static_cast<std::uint64_t>(nb) * sizeof(Element));
      total += std::abs(e.x - n.x) + std::abs(e.y - n.y);
    }
  }
  return total;
}

}  // namespace ms::workloads
