#pragma once

#include <vector>

#include "core/memory_space.hpp"

namespace ms::workloads {

/// streamcluster-like kernel (PARSEC): online k-median assignment.
///
/// Points stream sequentially (one 64-byte record each — 16 floats); every
/// point is compared against the k current centers, which form a tiny hot
/// working set that the cache holds. Footprint is the points array only,
/// and the paper sized it *below* the remote-swap resident limit, so swap
/// never triggers for this benchmark — the "small footprint" control case
/// of Fig. 11.
class Streamcluster {
 public:
  static constexpr int kDims = 16;

  struct Params {
    std::uint64_t points = 200'000;
    int centers = 16;
    int rounds = 1;
    std::uint64_t seed = 1;
    sim::Time compute_per_distance = sim::ns(20);  ///< 16-dim L2, SSE-ish
  };

  struct Point {
    float coord[kDims];
  };
  static_assert(sizeof(Point) == 64);

  Streamcluster(core::MemorySpace& space, const Params& p);

  sim::Task<void> setup();
  sim::Task<void> run(core::ThreadCtx& t);

  std::uint64_t footprint_bytes() const {
    return params_.points * sizeof(Point) + params_.points * 4;
  }

  /// Sum over points of the chosen center index (deterministic oracle).
  std::uint64_t assignment_sum() const { return assignment_sum_; }
  std::uint64_t expected_assignment_sum() const;

 private:
  std::vector<Point> make_centers() const;

  core::MemorySpace& space_;
  Params params_;
  core::VAddr points_ = 0;
  core::VAddr labels_ = 0;
  std::uint64_t assignment_sum_ = 0;
};

}  // namespace ms::workloads
