#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "ht/packet.hpp"
#include "noc/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/sharing_profiler.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/trace_context.hpp"

namespace ms::dsm {

/// Inter-node directory-coherent DSM baseline — the 3Leaf/ScaleMP-style
/// aggregation the paper argues against (Sec. I/II).
///
/// Every cache line of the shared space has a home node; the home's
/// directory tracks which *nodes* cache the line and in what state. A read
/// miss with a remote modified owner triggers a forward/writeback pair; a
/// write invalidates every sharer and collects acks. All of that traffic
/// crosses the cluster fabric — this is precisely the "inter-node coherency
/// protocol running on top of the intra-node protocol" whose overhead the
/// non-coherent architecture avoids, and bench_ablation_coherency measures
/// the two against each other.
///
/// `software_overhead` models a ScaleMP-like software DSM layer (per
/// coherence action); zero gives the 3Leaf-like hardware variant.
class DirectoryDsm {
 public:
  struct Params {
    std::uint32_t line_bytes = 64;
    sim::Time directory_latency = sim::ns(50);   ///< home lookup/update
    sim::Time software_overhead = 0;             ///< per action, if software
    int num_nodes = 16;
  };

  /// Timing of a memory access executed at `home`'s local controllers.
  using MemService = std::function<sim::Task<void>(
      ht::NodeId home, ht::PAddr addr, std::uint32_t bytes, bool is_write,
      sim::TraceContext ctx)>;

  DirectoryDsm(sim::Engine& engine, noc::Fabric& fabric, MemService mem,
               const Params& p);
  DirectoryDsm(const DirectoryDsm&) = delete;
  DirectoryDsm& operator=(const DirectoryDsm&) = delete;

  /// One coherent access (line-granular miss handling) by `requester`.
  /// `cached` tells whether the requester already holds the line in the
  /// state needed (hit — no global action). `ctx` links recorded spans into
  /// a traced transaction (observability only).
  sim::Task<void> access(ht::NodeId requester, ht::PAddr addr,
                         std::uint32_t bytes, bool is_write,
                         sim::TraceContext ctx = {});

  /// Home node of a line: the address prefix when present, otherwise
  /// round-robin interleave over the nodes.
  ht::NodeId home_of(ht::PAddr addr) const;

  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  std::uint64_t probes_sent() const { return probes_.value(); }
  std::uint64_t invalidations() const { return invalidations_.value(); }
  std::uint64_t coherence_messages() const { return messages_.value(); }

  /// Attaches a sharing profiler; DSM events are recorded in the inter
  /// domain with node ids as requester ids. No-op while the profiler is
  /// disabled.
  void set_profiler(sim::SharingProfiler* p) { profiler_ = p; }

 private:
  struct Entry {
    std::uint64_t sharers = 0;  ///< bitmask over node ids (bit = id-1)
    int owner = 0;              ///< node id holding modified copy, 0 = none
  };

  /// True when `node` may satisfy the access locally without any
  /// inter-node message (line cached in sufficient state).
  bool is_hit(const Entry& e, ht::NodeId node, bool is_write) const;

  sim::Task<void> message(ht::NodeId from, ht::NodeId to,
                          ht::PacketType type, ht::PAddr addr,
                          std::uint32_t size, sim::TraceContext ctx);

  sim::Engine& engine_;
  noc::Fabric& fabric_;
  MemService mem_;
  Params params_;
  sim::SharingProfiler* profiler_ = nullptr;
  std::unordered_map<ht::PAddr, Entry> lines_;

  sim::Counter hits_;
  sim::Counter misses_;
  sim::Counter probes_;
  sim::Counter invalidations_;
  sim::Counter messages_;
};

}  // namespace ms::dsm
