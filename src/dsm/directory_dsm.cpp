#include "dsm/directory_dsm.hpp"

#include <bit>

#include "node/address_map.hpp"
#include "sim/tracer.hpp"

namespace ms::dsm {

DirectoryDsm::DirectoryDsm(sim::Engine& engine, noc::Fabric& fabric,
                           MemService mem, const Params& p)
    : engine_(engine), fabric_(fabric), mem_(std::move(mem)), params_(p) {}

ht::NodeId DirectoryDsm::home_of(ht::PAddr addr) const {
  if (node::has_prefix(addr)) return node::node_of(addr);
  const std::uint64_t line = addr / params_.line_bytes;
  return static_cast<ht::NodeId>(
      line % static_cast<std::uint64_t>(params_.num_nodes) + 1);
}

bool DirectoryDsm::is_hit(const Entry& e, ht::NodeId node,
                          bool is_write) const {
  const std::uint64_t bit = 1ULL << (node - 1);
  if (is_write) return e.owner == node;
  return (e.sharers & bit) != 0;
}

sim::Task<void> DirectoryDsm::message(ht::NodeId from, ht::NodeId to,
                                      ht::PacketType type, ht::PAddr addr,
                                      std::uint32_t size,
                                      sim::TraceContext ctx) {
  messages_.inc();
  if (params_.software_overhead != 0) {
    sim::SegmentSpan sw(engine_, ctx, "dsm", "sw_overhead",
                        sim::Segment::kCoherence, sim::CohCause::kSoftware);
    co_await engine_.delay(params_.software_overhead);
  }
  if (from == to) co_return;  // intra-node
  ht::Packet pkt{.type = type, .src = from, .dst = to, .addr = addr,
                 .size = size};
  pkt.txn = ctx.txn;
  pkt.parent_span = ctx.span;
  co_await fabric_.traverse(pkt);
}

sim::Task<void> DirectoryDsm::access(ht::NodeId requester, ht::PAddr addr,
                                     std::uint32_t bytes, bool is_write,
                                     sim::TraceContext ctx) {
  const ht::PAddr line = addr & ~static_cast<ht::PAddr>(params_.line_bytes - 1);
  // Copy the directory state: references into lines_ must not be held
  // across co_await (concurrent accesses insert and rehash the map).
  Entry e = lines_[line];

  if (profiler_ != nullptr) {
    profiler_->record_touch(
        line, requester,
        static_cast<std::uint32_t>(addr & (params_.line_bytes - 1)), bytes);
  }

  if (is_hit(e, requester, is_write)) {
    hits_.inc();
    co_return;  // node-local; the caller charges its intra-node time
  }
  misses_.inc();
  const int sharers_before = std::popcount(e.sharers);

  sim::ScopedSpan span(engine_, "dsm", is_write ? "coh_write" : "coh_read",
                       ctx);
  const sim::TraceContext here = span.ctx() ? span.ctx() : ctx;

  const ht::NodeId home = home_of(line);
  const std::uint64_t self_bit = 1ULL << (requester - 1);

  // Request travels to the home directory.
  co_await message(requester, home,
                   is_write ? ht::PacketType::kWriteReq
                            : ht::PacketType::kReadReq,
                   line, 0, here);
  {
    sim::SegmentSpan dir(engine_, here, "dsm", "directory",
                         sim::Segment::kCoherence, sim::CohCause::kDirectory);
    co_await engine_.delay(params_.directory_latency);
  }

  if (is_write) {
    // Invalidate every other sharer and collect acknowledgements.
    std::uint64_t others = e.sharers & ~self_bit;
    while (others) {
      const int peer = std::countr_zero(others) + 1;
      others &= others - 1;
      probes_.inc();
      invalidations_.inc();
      if (profiler_ != nullptr) {
        profiler_->record_event(sim::CohDomain::kInter,
                                sim::CohEvent::kProbe, line, requester);
        profiler_->record_invalidation(sim::CohDomain::kInter,
                                       sim::CohEvent::kInvalidate, line,
                                       requester, peer);
      }
      co_await message(home, static_cast<ht::NodeId>(peer),
                       ht::PacketType::kCohProbe, line, 0, here);
      co_await message(static_cast<ht::NodeId>(peer), home,
                       ht::PacketType::kCohAck, line, 0, here);
    }
    if (e.owner != 0 && e.owner != requester) {
      // Modified elsewhere: the owner's data is written back at home.
      if (profiler_ != nullptr) {
        profiler_->record_event(sim::CohDomain::kInter,
                                sim::CohEvent::kWritebackForced, line,
                                requester);
      }
      co_await mem_(home, node::local_part(line), params_.line_bytes, true,
                    here);
    }
    e.sharers = self_bit;
    e.owner = requester;
  } else {
    if (e.owner != 0 && e.owner != requester) {
      // Forward to the modified owner; it supplies data and demotes.
      probes_.inc();
      if (profiler_ != nullptr) {
        profiler_->record_event(sim::CohDomain::kInter,
                                sim::CohEvent::kProbe, line, requester);
        profiler_->record_event(sim::CohDomain::kInter,
                                sim::CohEvent::kDowngrade, line, requester);
      }
      co_await message(home, static_cast<ht::NodeId>(e.owner),
                       ht::PacketType::kCohProbe, line, 0, here);
      co_await message(static_cast<ht::NodeId>(e.owner), home,
                       ht::PacketType::kReadResp, line, params_.line_bytes,
                       here);
      e.owner = 0;
    } else {
      // Clean at home: read memory there.
      co_await mem_(home, node::local_part(line), params_.line_bytes, false,
                    here);
    }
    e.sharers |= self_bit;
  }

  // Publish the new directory state (last concurrent updater wins — the
  // model serializes semantics at the home in reality; the timing already
  // reflects the message exchanges above).
  lines_[line] = e;
  if (profiler_ != nullptr) {
    profiler_->record_sharers(line, sharers_before, std::popcount(e.sharers));
  }

  // Data/completion back to the requester.
  co_await message(home, requester,
                   is_write ? ht::PacketType::kWriteAck
                            : ht::PacketType::kReadResp,
                   line, is_write ? 0 : bytes, here);
}

}  // namespace ms::dsm
