#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace ms::swap {

/// 2010-era SATA disk for the classic swap baseline: a single spindle,
/// average positioning time, then streaming transfer. The point the paper
/// makes with it ("thrashing ... increasing execution time to prohibitive
/// levels") only needs the four-orders-of-magnitude latency gap.
class DiskModel {
 public:
  struct Params {
    sim::Time position = sim::ms_(8);  ///< avg seek + rotational latency
    double bytes_per_ns = 0.06;        ///< ~60 MB/s sustained
  };

  DiskModel(sim::Engine& engine, const Params& p)
      : engine_(engine), params_(p), spindle_(engine, 1) {}
  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  /// One page-sized transfer (read or write — symmetric).
  sim::Task<void> transfer(std::uint32_t bytes) {
    co_await spindle_.acquire();
    sim::SemToken token(spindle_);
    co_await engine_.delay(
        params_.position +
        sim::ns_d(static_cast<double>(bytes) / params_.bytes_per_ns));
    ops_.inc();
  }

  std::uint64_t operations() const { return ops_.value(); }

 private:
  sim::Engine& engine_;
  Params params_;
  sim::Semaphore spindle_;
  sim::Counter ops_;
};

}  // namespace ms::swap
