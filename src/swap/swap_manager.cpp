#include "swap/swap_manager.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/tracer.hpp"

namespace ms::swap {

std::string SwapManager::validate() const {
  std::ostringstream err;
  if (resident_.size() > max_resident_) {
    err << "resident set " << resident_.size() << " pages exceeds capacity "
        << max_resident_;
    return err.str();
  }
  if (lru_.size() != resident_.size()) {
    err << "LRU list has " << lru_.size() << " entries for "
        << resident_.size() << " resident pages";
    return err.str();
  }
  std::unordered_set<ht::PAddr> frames;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    auto rit = resident_.find(*it);
    if (rit == resident_.end()) {
      err << "LRU page 0x" << std::hex << *it << " not resident";
      return err.str();
    }
    if (rit->second.lru_it != it) {
      err << "resident page 0x" << std::hex << *it
          << " has a stale LRU iterator";
      return err.str();
    }
    if (!frames.insert(rit->second.frame).second) {
      err << "frame 0x" << std::hex << rit->second.frame
          << " backs two resident pages";
      return err.str();
    }
  }
  return {};
}

SwapManager::SwapManager(sim::Engine& engine, node::Node& node,
                         noc::Fabric& fabric, os::RegionManager* region,
                         DiskModel* disk, const Params& p)
    : engine_(engine),
      node_(node),
      fabric_(fabric),
      region_(region),
      disk_(disk),
      params_(p),
      max_resident_(std::max<std::uint64_t>(1, p.resident_limit_bytes /
                                                   p.page_bytes)),
      fault_mutex_(engine, 1),
      track_("swap." + std::to_string(node.id())) {
  if (p.backend == Backend::kRemote && region_ == nullptr) {
    throw std::invalid_argument("SwapManager: remote backend needs a region");
  }
  if (p.backend == Backend::kDisk && disk_ == nullptr) {
    throw std::invalid_argument("SwapManager: disk backend needs a disk");
  }
  // kCompressed needs neither: the backend is the local CPU + spare DRAM.
}

sim::Task<ht::PAddr> SwapManager::slot_of(os::VAddr page) {
  auto it = slots_.find(page);
  if (it != slots_.end()) co_return it->second;

  ht::PAddr slot;
  if (params_.backend == Backend::kRemote) {
    auto allocated =
        co_await region_->alloc_page(os::RegionManager::Placement::kRemoteOnly);
    if (!allocated) co_return kNoSlot;
    slot = *allocated;
  } else {
    // Disk/compressed slots: cost-only cookies under a pseudo-node key no
    // fabric node uses, indexed by the virtual page itself.
    if (page >= node::kLocalSpaceBytes) {
      throw std::out_of_range("SwapManager: swap VA above 16 GiB");
    }
    slot = node::make_remote(node::kMaxNodeId, page);
  }
  slots_[page] = slot;
  co_return slot;
}

sim::Task<void> SwapManager::page_transfer(ht::PAddr slot, bool to_backend,
                                           sim::TraceContext ctx) {
  sim::ScopedSpan span(engine_, track_, to_backend ? "swap_out" : "swap_in",
                       ctx);
  const sim::TraceContext here = span.ctx() ? span.ctx() : ctx;
  const auto bytes = static_cast<std::uint32_t>(params_.page_bytes);
  if (params_.backend == Backend::kDisk) {
    sim::SegmentSpan disk(engine_, here, track_, "disk", sim::Segment::kSwap);
    co_await disk_->transfer(bytes);
    co_return;
  }
  if (params_.backend == Backend::kCompressed) {
    sim::SegmentSpan zip(engine_, here, track_,
                         to_backend ? "compress" : "decompress",
                         sim::Segment::kSwap);
    co_await engine_.delay(to_backend ? params_.compress_time
                                      : params_.decompress_time);
    co_return;
  }
  {
    // Commodity NBD-over-GigE-class serialization dominates the transfer.
    sim::SegmentSpan wire(engine_, here, track_, "nbd_wire",
                          sim::Segment::kSerialization);
    co_await engine_.delay(sim::ns_d(static_cast<double>(bytes) /
                                     params_.backend_bytes_per_ns));
  }
  const ht::NodeId self = node_.id();
  const ht::NodeId donor = node::node_of(slot);
  {
    sim::SegmentSpan nic(engine_, here, track_, "nic", sim::Segment::kSwap);
    co_await engine_.delay(params_.nic_overhead);
  }
  ht::Packet out{
      .type = to_backend ? ht::PacketType::kWriteReq : ht::PacketType::kReadReq,
      .src = self,
      .dst = donor,
      .addr = slot,
      .size = to_backend ? bytes : 0,
  };
  out.txn = here.txn;
  out.parent_span = here.span;
  co_await fabric_.traverse(out);
  if (donor_service_) {
    co_await donor_service_(donor, node::local_part(slot), bytes, to_backend,
                            here);
  } else {
    sim::SegmentSpan dram(engine_, here, track_, "donor_dram",
                          sim::Segment::kMemory);
    co_await engine_.delay(sim::ns(120));  // standalone tests: flat DRAM cost
  }
  ht::Packet back{
      .type = to_backend ? ht::PacketType::kWriteAck : ht::PacketType::kReadResp,
      .src = donor,
      .dst = self,
      .addr = slot,
      .size = to_backend ? 0 : bytes,
  };
  back.txn = here.txn;
  back.parent_span = here.span;
  co_await fabric_.traverse(back);
  {
    sim::SegmentSpan nic(engine_, here, track_, "nic", sim::Segment::kSwap);
    co_await engine_.delay(params_.nic_overhead);
  }
}


ht::PAddr SwapManager::fresh_frame(std::size_t index) const {
  // Interleave resident frames across the node's sockets, like a real
  // kernel's page allocator — otherwise every synthetic frame would sit on
  // socket 0 and enjoy an unrealistic NUMA advantage.
  const auto& np = node_.params();
  const auto sockets = static_cast<std::uint64_t>(np.sockets);
  const ht::PAddr per_socket = np.local_bytes / sockets;
  const std::uint64_t i = static_cast<std::uint64_t>(index);
  return (i % sockets) * per_socket + (i / sockets) * params_.page_bytes;
}

sim::Task<void> SwapManager::fault_in(os::VAddr page, sim::TraceContext ctx) {
  faults_.inc();
  // A page is "major" when its data lives in the backend (it was written
  // out, or the setup phase declared it as pre-existing data). A truly
  // fresh page is a zero-fill minor fault: no transfer, small cost.
  const bool major = backed_.count(page) != 0 || slots_.count(page) != 0;
  sim::ScopedSpan span(engine_, track_,
                       major ? "major_fault" : "minor_fault", ctx);
  const sim::TraceContext here = span.ctx() ? span.ctx() : ctx;
  // Fault watchdog (trap through map update); RAII disarm covers the
  // backend-exhausted throw below as well as normal completion.
  sim::ScopedTimer watchdog =
      params_.fault_timeout > 0
          ? sim::ScopedTimer(engine_,
                             engine_.schedule(params_.fault_timeout,
                                              [this] {
                                                fault_timeouts_.inc();
                                              }))
          : sim::ScopedTimer();
  if (!major) {
    sim::SegmentSpan trap(engine_, here, track_, "zero_fill",
                          sim::Segment::kSwap);
    co_await engine_.delay(params_.minor_fault);
  } else {
    major_faults_.inc();
    sim::SegmentSpan trap(engine_, here, track_, "trap", sim::Segment::kSwap);
    co_await engine_.delay(params_.fault_trap);
  }

  ht::PAddr frame;
  if (resident_.size() >= max_resident_) {
    os::VAddr victim = lru_.front();
    lru_.pop_front();
    auto vit = resident_.find(victim);
    frame = vit->second.frame;
    const bool dirty = vit->second.dirty;
    resident_.erase(vit);
    evictions_.inc();
    backed_.insert(victim);  // once evicted, a reload is always major
    if (dirty) {
      dirty_writebacks_.inc();
      ht::PAddr slot = co_await slot_of(victim);
      co_await page_transfer(slot, /*to_backend=*/true, here);
    }
  } else {
    frame = fresh_frame(resident_.size());
  }

  if (major) {
    ht::PAddr slot = co_await slot_of(page);
    if (slot == kNoSlot) {
      throw std::runtime_error("SwapManager: backend exhausted");
    }
    co_await page_transfer(slot, /*to_backend=*/false, here);
    sim::SegmentSpan map(engine_, here, track_, "map_update",
                         sim::Segment::kSwap);
    co_await engine_.delay(params_.map_update);
  }

  lru_.push_back(page);
  resident_[page] = Resident{frame, false, std::prev(lru_.end())};
  if (auto* tr = engine_.tracer()) {
    tr->counter(track_, "resident_pages", engine_.now(),
                static_cast<double>(resident_.size()));
  }
}

void SwapManager::note_poke(os::VAddr page) {
  backed_.insert(page);
  if (resident_.count(page) != 0) {
    auto& r = resident_[page];
    lru_.splice(lru_.end(), lru_, r.lru_it);
    return;
  }
  // Untimed residency shuffle: the build phase left the most recently
  // written pages in memory and pushed the rest to the backend.
  ht::PAddr frame;
  if (resident_.size() >= max_resident_) {
    os::VAddr victim = lru_.front();
    lru_.pop_front();
    auto vit = resident_.find(victim);
    frame = vit->second.frame;
    resident_.erase(vit);
    backed_.insert(victim);
  } else {
    frame = fresh_frame(resident_.size());
  }
  lru_.push_back(page);
  resident_[page] = Resident{frame, false, std::prev(lru_.end())};
}

sim::Task<sim::Time> SwapManager::access(os::VAddr vaddr, std::uint32_t bytes,
                                         bool is_write, int core,
                                         sim::Time carried,
                                         sim::TraceContext ctx) {
  const os::VAddr page = vaddr & ~(params_.page_bytes - 1);
  auto it = resident_.find(page);
  if (it == resident_.end()) {
    {
      sim::SegmentSpan cr(engine_, ctx, track_, "carried",
                          sim::Segment::kOther);
      co_await engine_.delay(carried);
    }
    carried = 0;
    const sim::Time asked = engine_.now();
    co_await fault_mutex_.acquire();
    sim::record_wait(engine_, track_, "fault_lock.wait", asked, ctx);
    sim::SemToken lock(fault_mutex_);
    it = resident_.find(page);  // a peer thread may have faulted it in
    if (it == resident_.end()) {
      co_await fault_in(page, ctx);
      it = resident_.find(page);
    }
  }

  // Touch LRU, set dirtiness, then time the access like any local reference.
  lru_.splice(lru_.end(), lru_, it->second.lru_it);
  if (is_write) it->second.dirty = true;
  const ht::PAddr phys =
      it->second.frame + (vaddr & (params_.page_bytes - 1));
  co_return co_await node_.access(core, phys, bytes, is_write, carried, ctx);
}

void SwapManager::export_stats(sim::StatRegistry& reg,
                               const std::string& prefix) const {
  reg.counter(prefix + "faults").inc(faults());
  reg.counter(prefix + "major_faults").inc(major_faults());
  reg.counter(prefix + "evictions").inc(evictions());
  reg.counter(prefix + "dirty_writebacks").inc(dirty_writebacks());
  // Watchdog is off by default; nonzero-only so configs that never arm it
  // keep byte-identical stats output (ARCHITECTURE.md, stats export
  // convention).
  sim::export_counter_nonzero(reg, prefix + "fault_timeouts",
                              fault_timeouts());
}

}  // namespace ms::swap
