#include "swap/disk_model.hpp"

// Header-only; anchors the module in the library.
namespace ms::swap {}
