#pragma once

#include <list>
#include <unordered_map>
#include <unordered_set>

#include "noc/fabric.hpp"
#include "node/node.hpp"
#include "os/page_table.hpp"
#include "os/region_manager.hpp"
#include "swap/disk_model.hpp"

namespace ms::swap {

/// Remote-swap / disk-swap baseline (Sec. II and Eq. 1).
///
/// The process sees only `resident_limit` bytes of local memory. Pages
/// beyond it live in a backend — pinned remote segments (remote swap) or
/// disk (classic swap). A reference to a non-resident page takes a fault:
/// OS trap, LRU eviction (with write-back if dirty), a whole-page transfer
/// in, and a mapping update. Resident pages are accessed through the normal
/// local cache/DRAM path, so Eq. 1's two terms — A_total * L_local and
/// (A_total / A_page) * L_swap — both emerge mechanistically.
///
/// Functional note: data bytes stay at the backend slot address in
/// mem::BackingStore (copying them on every simulated migration would be
/// pure overhead); the resident frame is a timing entity.
class SwapManager {
 public:
  /// kCompressed models an in-memory compressed pool (the memory-
  /// compression alternative of the paper's related work [12][13],
  /// zram-style): faults cost CPU de/compression, no network or disk.
  enum class Backend { kRemote, kDisk, kCompressed };

  struct Params {
    Backend backend = Backend::kRemote;
    std::uint64_t page_bytes = 4096;
    std::uint64_t resident_limit_bytes = 64 << 20;
    // 2010-era remote-swap costs (network block device over the cluster
    // interconnect, kernel block+net stack on both ends): tens of
    // microseconds per fault end to end, cf. the remote-swap literature
    // the paper cites ([7][8][26][27]).
    sim::Time fault_trap = sim::us(8);    ///< trap + handler + block layer
    sim::Time map_update = sim::us(2);    ///< page table + TLB maintenance
    sim::Time minor_fault = sim::us(2);   ///< fresh zero page: no transfer
    sim::Time nic_overhead = sim::us(50); ///< per-message driver/stack cost
    sim::Time compress_time = sim::us(3);   ///< 4 KiB software LZO, 2010 CPU
    sim::Time decompress_time = sim::us(2);
    /// Remote-swap transfers ride a commodity NBD/GigE-class path (the
    /// remote-swap literature's setting), not the HT fabric's bandwidth.
    double backend_bytes_per_ns = 0.08;   ///< ~640 Mb/s effective (TCP/GigE)
    /// Fault watchdog: fault_timeouts() ticks when one fault (trap through
    /// map update) exceeds this. Zero disables it (default); when the fault
    /// completes first the timer is cancelled in O(1).
    sim::Time fault_timeout = 0;
  };

  /// `region` supplies backend slots for remote swap (pages on donor
  /// nodes); `disk` is used for Backend::kDisk. Either may be null when
  /// the corresponding backend is not selected.
  SwapManager(sim::Engine& engine, node::Node& node, noc::Fabric& fabric,
              os::RegionManager* region, DiskModel* disk, const Params& p);
  SwapManager(const SwapManager&) = delete;
  SwapManager& operator=(const SwapManager&) = delete;

  /// Timing for one reference by `core`; same accumulated-time contract as
  /// node::Node::access. Returns the new accumulator.
  /// `slot` is the backend slot of the page (see slot_of). `ctx` links
  /// recorded spans into a traced transaction (observability only).
  sim::Task<sim::Time> access(os::VAddr vaddr, std::uint32_t bytes,
                              bool is_write, int core, sim::Time carried,
                              sim::TraceContext ctx = {});

  /// Backend slot (prefixed physical address) assigned to a virtual page;
  /// allocated lazily on first use. This is also where the functional
  /// bytes of the page live. Returns kNoSlot on backend exhaustion.
  sim::Task<ht::PAddr> slot_of(os::VAddr page);

  static constexpr ht::PAddr kNoSlot = ~ht::PAddr{0};

  /// Donor-side timing for a page transfer (bound by the cluster to the
  /// donor node's serve_remote); when unset a flat DRAM cost is charged.
  using DonorService = std::function<sim::Task<void>(
      ht::NodeId donor, ht::PAddr donor_local, std::uint32_t bytes,
      bool is_write, sim::TraceContext ctx)>;
  void set_donor_service(DonorService svc) { donor_service_ = std::move(svc); }

  /// Declares that `page` holds pre-existing data (workload setup wrote
  /// it). The page becomes resident if there is room — the state a real
  /// build phase leaves behind — and is marked as swap-backed, so a later
  /// reload is a full (major) fault, never a cheap zero-fill.
  void note_poke(os::VAddr page);

  std::uint64_t faults() const { return faults_.value(); }
  std::uint64_t major_faults() const { return major_faults_.value(); }
  std::uint64_t minor_faults() const {
    return faults_.value() - major_faults_.value();
  }
  std::uint64_t evictions() const { return evictions_.value(); }
  std::uint64_t dirty_writebacks() const { return dirty_writebacks_.value(); }
  std::uint64_t fault_timeouts() const { return fault_timeouts_.value(); }
  std::size_t resident_pages() const { return resident_.size(); }
  std::uint64_t max_resident_pages() const { return max_resident_; }
  const Params& params() const { return params_; }

  /// Consistency audit for the invariant checkers: resident set within the
  /// configured capacity, LRU list and resident map in exact one-to-one
  /// correspondence, and no two resident pages sharing a frame. Returns an
  /// empty string when consistent, else a description of the problem.
  std::string validate() const;

  /// Fault injection for the fuzzing harness: shrink the resident-set
  /// capacity below the current population so the resident-set <= capacity
  /// checker can prove it fires. Test-only.
  void test_shrink_limit(std::uint64_t pages) {
    max_resident_ = pages == 0 ? 1 : pages;
  }

  /// Snapshots fault counters into `reg` under `prefix`. The fault watchdog
  /// follows the repo-wide convention for off-by-default watchdogs (see
  /// Link::stall_timeouts, Rmc::request_timeouts): the gauge is emitted only
  /// when it fired, so configs that never arm it keep byte-identical output.
  void export_stats(sim::StatRegistry& reg, const std::string& prefix) const;

 private:
  struct Resident {
    ht::PAddr frame;                       ///< local frame (timing address)
    bool dirty;
    std::list<os::VAddr>::iterator lru_it; ///< position in lru_ (back = hottest)
  };

  sim::Task<void> page_transfer(ht::PAddr slot, bool to_backend,
                                sim::TraceContext ctx);
  ht::PAddr fresh_frame(std::size_t index) const;
  sim::Task<void> fault_in(os::VAddr page, sim::TraceContext ctx);

  sim::Engine& engine_;
  node::Node& node_;
  noc::Fabric& fabric_;
  os::RegionManager* region_;
  DiskModel* disk_;
  DonorService donor_service_;
  Params params_;
  std::uint64_t max_resident_;
  sim::Semaphore fault_mutex_;  ///< one fault handled at a time (kernel lock)
  std::string track_;           ///< tracer track ("swap.N")

  std::unordered_map<os::VAddr, Resident> resident_;
  std::list<os::VAddr> lru_;  ///< front = coldest
  std::unordered_map<os::VAddr, ht::PAddr> slots_;
  std::unordered_set<os::VAddr> backed_;  ///< pages with data in the backend
  std::uint64_t next_local_frame_ = 0;

  sim::Counter faults_;
  sim::Counter major_faults_;
  sim::Counter evictions_;
  sim::Counter dirty_writebacks_;
  sim::Counter fault_timeouts_;
};

}  // namespace ms::swap
