#include "noc/topology.hpp"

#include <cmath>
#include <stdexcept>

namespace ms::noc {

namespace {
// Near-square factorization w*h == n with w >= h, preferring squares.
std::pair<int, int> factorize(int n) {
  for (int h = static_cast<int>(std::sqrt(static_cast<double>(n))); h >= 1; --h) {
    if (n % h == 0) return {n / h, h};
  }
  return {n, 1};
}
}  // namespace

std::unique_ptr<Topology> Topology::make(const std::string& kind, int n) {
  if (n < 1) throw std::invalid_argument("topology needs at least one node");
  if (kind == "mesh2d") {
    auto [w, h] = factorize(n);
    return std::make_unique<Mesh2D>(w, h, /*wrap=*/false);
  }
  if (kind == "torus2d") {
    auto [w, h] = factorize(n);
    return std::make_unique<Mesh2D>(w, h, /*wrap=*/true);
  }
  if (kind == "ring") return std::make_unique<Ring>(n);
  if (kind == "star") return std::make_unique<Star>(n);
  if (kind == "full") return std::make_unique<FullyConnected>(n);
  throw std::invalid_argument("unknown topology kind: " + kind);
}

Mesh2D::Mesh2D(int width, int height, bool wrap)
    : width_(width), height_(height), wrap_(wrap) {
  if (width < 1 || height < 1) {
    throw std::invalid_argument("mesh dimensions must be positive");
  }
}

std::string Mesh2D::name() const {
  return (wrap_ ? "torus2d-" : "mesh2d-") + std::to_string(width_) + "x" +
         std::to_string(height_);
}

std::vector<std::pair<NodeId, NodeId>> Mesh2D::edges() const {
  std::vector<std::pair<NodeId, NodeId>> e;
  auto add_both = [&](NodeId a, NodeId b) {
    e.emplace_back(a, b);
    e.emplace_back(b, a);
  };
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      if (x + 1 < width_) add_both(at(x, y), at(x + 1, y));
      if (y + 1 < height_) add_both(at(x, y), at(x, y + 1));
    }
  }
  if (wrap_) {
    if (width_ > 2) {
      for (int y = 0; y < height_; ++y) add_both(at(width_ - 1, y), at(0, y));
    }
    if (height_ > 2) {
      for (int x = 0; x < width_; ++x) add_both(at(x, height_ - 1), at(x, 0));
    }
  }
  return e;
}

std::vector<NodeId> Mesh2D::route(NodeId src, NodeId dst) const {
  std::vector<NodeId> path;
  if (src == dst) return path;
  auto [x, y] = coords(src);
  auto [dx, dy] = coords(dst);

  // One step along a dimension, taking the shorter way around on a torus.
  auto step = [&](int cur, int target, int extent) {
    int forward = (target - cur + extent) % extent;
    int backward = (cur - target + extent) % extent;
    if (!wrap_ || extent <= 2) return cur < target ? cur + 1 : cur - 1;
    return forward <= backward ? (cur + 1) % extent
                               : (cur - 1 + extent) % extent;
  };

  // Dimension-order: fully resolve X, then Y (deadlock-free on the mesh).
  while (x != dx) {
    x = step(x, dx, width_);
    path.push_back(at(x, y));
  }
  while (y != dy) {
    y = step(y, dy, height_);
    path.push_back(at(x, y));
  }
  return path;
}

std::vector<std::pair<NodeId, NodeId>> Ring::edges() const {
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int i = 0; i < n_; ++i) {
    NodeId a = static_cast<NodeId>(i + 1);
    NodeId b = static_cast<NodeId>((i + 1) % n_ + 1);
    if (a == b) continue;              // n == 1: no links
    if (n_ == 2 && i == 1) continue;   // n == 2: one pair, not a double link
    e.emplace_back(a, b);
    e.emplace_back(b, a);
  }
  return e;
}

std::vector<NodeId> Ring::route(NodeId src, NodeId dst) const {
  std::vector<NodeId> path;
  if (src == dst) return path;
  int cur = src - 1;
  int target = dst - 1;
  int forward = (target - cur + n_) % n_;
  int backward = (cur - target + n_) % n_;
  int dir = forward <= backward ? 1 : -1;
  while (cur != target) {
    cur = (cur + dir + n_) % n_;
    path.push_back(static_cast<NodeId>(cur + 1));
  }
  return path;
}

std::vector<std::pair<NodeId, NodeId>> Star::edges() const {
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int i = 1; i <= n_; ++i) {
    e.emplace_back(static_cast<NodeId>(i), hub());
    e.emplace_back(hub(), static_cast<NodeId>(i));
  }
  return e;
}

std::vector<NodeId> Star::route(NodeId src, NodeId dst) const {
  if (src == dst) return {};
  return {hub(), dst};
}

std::vector<std::pair<NodeId, NodeId>> FullyConnected::edges() const {
  std::vector<std::pair<NodeId, NodeId>> e;
  for (int a = 1; a <= n_; ++a) {
    for (int b = 1; b <= n_; ++b) {
      if (a != b) e.emplace_back(static_cast<NodeId>(a), static_cast<NodeId>(b));
    }
  }
  return e;
}

std::vector<NodeId> FullyConnected::route(NodeId src, NodeId dst) const {
  if (src == dst) return {};
  return {dst};
}

}  // namespace ms::noc
