#pragma once

#include <string>
#include <vector>

#include "noc/topology.hpp"

namespace ms::noc {

/// Precomputed routes for every (src, dst) pair.
///
/// Route computation is pure but called on every remote memory access, so
/// the fabric looks routes up here instead of recomputing. The table also
/// validates the topology at construction: every route must walk existing
/// edges and terminate at the destination.
class RouteTable {
 public:
  explicit RouteTable(const Topology& topo);

  const std::vector<NodeId>& route(NodeId src, NodeId dst) const {
    return routes_[index(src, dst)];
  }
  int hops(NodeId src, NodeId dst) const {
    return static_cast<int>(route(src, dst).size());
  }
  int num_nodes() const { return n_; }

  /// Longest route in the table (network diameter in hops).
  int diameter() const { return diameter_; }

 private:
  std::size_t index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src - 1) * static_cast<std::size_t>(n_) +
           (dst - 1);
  }
  int n_;
  int diameter_ = 0;
  std::vector<std::vector<NodeId>> routes_;
};

/// Checks structural sanity of a topology; throws std::logic_error with a
/// description on the first violation. Used by tests and by RouteTable.
void validate_topology(const Topology& topo);

}  // namespace ms::noc
