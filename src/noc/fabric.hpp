#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ht/link.hpp"
#include "ht/packet.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace ms::noc {

/// The cluster fabric: a topology instantiated with one ht::Link per
/// directed edge plus a per-hop router (switch) delay.
///
/// Traversal follows the "process walks the packet" model: the coroutine
/// performing a remote transaction co_awaits traverse(), which serializes
/// on every link along the precomputed route in turn. Contention between
/// concurrent transactions therefore appears naturally on shared links,
/// which is what Fig. 8 (server congestion) measures.
class Fabric {
 public:
  struct Params {
    ht::Link::Params link;
    sim::Time router_delay = sim::ns(60);  ///< FPGA switch per-hop latency
    /// Virtual channels per physical link. With 2, requests and responses
    /// ride separate buffer classes (the classic protocol-deadlock
    /// avoidance in request/response fabrics) and never queue behind each
    /// other. 1 reproduces the prototype's single-buffer behaviour.
    int virtual_channels = 1;
    /// Dedicated virtual channel for the broker's kMig* migration traffic
    /// class. -1 (the default) disables the dedicated class — migration
    /// packets then share the request/response channels — so every
    /// pre-broker configuration behaves identically.
    int migration_vc = -1;
  };

  Fabric(sim::Engine& engine, std::unique_ptr<Topology> topo, const Params& p);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Moves `packet` from its src to its dst; resumes when it has fully
  /// arrived. Throws std::logic_error if a link on the path is down.
  sim::Task<void> traverse(ht::Packet packet);

  int hops(NodeId src, NodeId dst) const { return routes_.hops(src, dst); }
  int diameter() const { return routes_.diameter(); }
  const Topology& topology() const { return *topo_; }

  /// Zero-load one-way latency for a packet of `bytes` over `hops` hops
  /// (used by tests to check the timing model against first principles).
  sim::Time zero_load_latency(int hops, std::uint32_t bytes) const;

  /// Failure injection: mark the directed link from->to as down/up.
  void set_link_down(NodeId from, NodeId to, bool down);
  bool link_is_down(NodeId from, NodeId to) const;

  /// Per-link accounting (for congestion analysis / tests).
  const ht::Link& link(NodeId from, NodeId to, int vc = 0) const;

  /// Mutable link access for fault injection (test-only hooks such as
  /// ht::Link::test_leak_credit).
  ht::Link& mutable_link(NodeId from, NodeId to, int vc = 0);

  /// Invokes `fn(from, to, vc, link)` for every (edge, virtual channel).
  /// Read-only walk for the invariant checkers.
  template <typename Fn>
  void for_each_link(Fn&& fn) const {
    for (const auto& [edge, vcs] : links_) {
      for (std::size_t vc = 0; vc < vcs.size(); ++vc) {
        fn(edge.first, edge.second, static_cast<int>(vc), *vcs[vc]);
      }
    }
  }

  /// Virtual channel a packet class rides on (0 = requests, last =
  /// responses when more than one channel is configured).
  int vc_of(ht::PacketType type) const;

  std::uint64_t packets_delivered() const { return delivered_.value(); }
  const sim::Sampler& traversal_latency() const { return traversal_latency_; }

  /// Snapshots fabric totals and every link that saw traffic into `reg`
  /// under `prefix` ("noc.", "noc.link.1-2.vc0.", ...).
  void export_stats(sim::StatRegistry& reg, const std::string& prefix) const;

  /// Time-series sample: appends "<prefix><link>.busy_ps" / ".packets" for
  /// every link that saw traffic (cumulative values; consumers diff
  /// consecutive points for utilization).
  void sample_timeseries(std::vector<std::pair<std::string, double>>& out,
                         const std::string& prefix) const;

 private:
  sim::Engine& engine_;
  std::unique_ptr<Topology> topo_;
  RouteTable routes_;
  Params params_;
  // One Link object per (edge, virtual channel).
  std::map<std::pair<NodeId, NodeId>, std::vector<std::unique_ptr<ht::Link>>>
      links_;
  std::map<std::pair<NodeId, NodeId>, bool> down_;
  sim::Counter delivered_;
  sim::Sampler traversal_latency_;
};

}  // namespace ms::noc
