#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ht/packet.hpp"

namespace ms::noc {

using ht::NodeId;

/// Cluster interconnect topology and its routing function.
///
/// Node ids are 1-based (no node 0, matching the paper's address scheme).
/// A topology may introduce internal switch vertices (e.g. the hub of a
/// star); those get ids above num_nodes() and never source or sink traffic.
///
/// route(src, dst) returns the sequence of vertices a packet visits after
/// leaving src, ending with dst. Every consecutive pair must be an edge.
class Topology {
 public:
  virtual ~Topology() = default;

  virtual int num_nodes() const = 0;
  virtual std::string name() const = 0;

  /// Directed edges (from, to) over which links are instantiated.
  virtual std::vector<std::pair<NodeId, NodeId>> edges() const = 0;

  /// Deterministic route; empty when src == dst.
  virtual std::vector<NodeId> route(NodeId src, NodeId dst) const = 0;

  int hops(NodeId src, NodeId dst) const {
    return static_cast<int>(route(src, dst).size());
  }

  /// Factory: kind in {"mesh2d", "torus2d", "ring", "star", "full"}.
  /// mesh2d/torus2d require n to have a near-square factorization; the
  /// canonical paper configuration is mesh2d with n=16 (a 4x4 mesh).
  static std::unique_ptr<Topology> make(const std::string& kind, int n);
};

/// w x h 2D mesh with XY dimension-order routing (deadlock-free on meshes).
class Mesh2D : public Topology {
 public:
  Mesh2D(int width, int height, bool wrap);

  int num_nodes() const override { return width_ * height_; }
  std::string name() const override;
  std::vector<std::pair<NodeId, NodeId>> edges() const override;
  std::vector<NodeId> route(NodeId src, NodeId dst) const override;

  int width() const { return width_; }
  int height() const { return height_; }

  /// Node id at mesh coordinate (x, y); 1-based.
  NodeId at(int x, int y) const {
    return static_cast<NodeId>(y * width_ + x + 1);
  }
  std::pair<int, int> coords(NodeId n) const {
    int idx = n - 1;
    return {idx % width_, idx / width_};
  }

 private:
  int width_;
  int height_;
  bool wrap_;  // true => torus (wraparound links, shortest-direction XY)
};

/// Bidirectional ring, shortest-direction routing.
class Ring : public Topology {
 public:
  explicit Ring(int n) : n_(n) {}
  int num_nodes() const override { return n_; }
  std::string name() const override { return "ring" + std::to_string(n_); }
  std::vector<std::pair<NodeId, NodeId>> edges() const override;
  std::vector<NodeId> route(NodeId src, NodeId dst) const override;

 private:
  int n_;
};

/// All nodes hang off one central switch (models a switched fabric such as
/// the HT-over-Ethernet/InfiniBand options mentioned in Sec. IV-B).
class Star : public Topology {
 public:
  explicit Star(int n) : n_(n) {}
  int num_nodes() const override { return n_; }
  std::string name() const override { return "star" + std::to_string(n_); }
  std::vector<std::pair<NodeId, NodeId>> edges() const override;
  std::vector<NodeId> route(NodeId src, NodeId dst) const override;
  NodeId hub() const { return static_cast<NodeId>(n_ + 1); }

 private:
  int n_;
};

/// Dedicated link between every node pair (upper bound on fabric quality).
class FullyConnected : public Topology {
 public:
  explicit FullyConnected(int n) : n_(n) {}
  int num_nodes() const override { return n_; }
  std::string name() const override { return "full" + std::to_string(n_); }
  std::vector<std::pair<NodeId, NodeId>> edges() const override;
  std::vector<NodeId> route(NodeId src, NodeId dst) const override;

 private:
  int n_;
};

}  // namespace ms::noc
