#include "noc/routing.hpp"

#include <set>
#include <stdexcept>

namespace ms::noc {

void validate_topology(const Topology& topo) {
  const int n = topo.num_nodes();
  std::set<std::pair<NodeId, NodeId>> edge_set;
  for (auto [a, b] : topo.edges()) {
    if (a == b) throw std::logic_error(topo.name() + ": self-loop edge");
    if (!edge_set.insert({a, b}).second) {
      throw std::logic_error(topo.name() + ": duplicate edge");
    }
  }
  for (NodeId s = 1; s <= n; ++s) {
    for (NodeId d = 1; d <= n; ++d) {
      auto path = topo.route(s, d);
      if (s == d) {
        if (!path.empty()) {
          throw std::logic_error(topo.name() + ": non-empty self route");
        }
        continue;
      }
      if (path.empty() || path.back() != d) {
        throw std::logic_error(topo.name() + ": route does not reach dst");
      }
      NodeId prev = s;
      for (NodeId hop : path) {
        if (!edge_set.count({prev, hop})) {
          throw std::logic_error(topo.name() + ": route uses missing edge " +
                                 std::to_string(prev) + "->" +
                                 std::to_string(hop));
        }
        prev = hop;
      }
    }
  }
}

RouteTable::RouteTable(const Topology& topo) : n_(topo.num_nodes()) {
  validate_topology(topo);
  routes_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
  for (NodeId s = 1; s <= n_; ++s) {
    for (NodeId d = 1; d <= n_; ++d) {
      auto r = topo.route(s, d);
      diameter_ = std::max(diameter_, static_cast<int>(r.size()));
      routes_[index(s, d)] = std::move(r);
    }
  }
}

}  // namespace ms::noc
