#include "noc/fabric.hpp"

#include <stdexcept>

#include "sim/tracer.hpp"

namespace ms::noc {

Fabric::Fabric(sim::Engine& engine, std::unique_ptr<Topology> topo,
               const Params& p)
    : engine_(engine), topo_(std::move(topo)), routes_(*topo_), params_(p) {
  if (p.virtual_channels < 1) {
    throw std::invalid_argument("Fabric: need at least one virtual channel");
  }
  for (auto [from, to] : topo_->edges()) {
    std::vector<std::unique_ptr<ht::Link>> vcs;
    for (int vc = 0; vc < p.virtual_channels; ++vc) {
      auto name = "link." + std::to_string(from) + "-" + std::to_string(to) +
                  ".vc" + std::to_string(vc);
      auto link_params = p.link;
      link_params.error_seed = p.link.error_seed + from * 131 + to * 7 + vc;
      vcs.push_back(std::make_unique<ht::Link>(engine_, name, link_params));
    }
    links_.emplace(std::make_pair(from, to), std::move(vcs));
  }
}

int Fabric::vc_of(ht::PacketType type) const {
  const bool migration = type == ht::PacketType::kMigRead ||
                         type == ht::PacketType::kMigData ||
                         type == ht::PacketType::kMigAck;
  if (migration && params_.migration_vc >= 0 &&
      params_.migration_vc < params_.virtual_channels) {
    return params_.migration_vc;
  }
  if (params_.virtual_channels < 2) return 0;
  switch (type) {
    case ht::PacketType::kReadResp:
    case ht::PacketType::kWriteAck:
    case ht::PacketType::kCtrlResp:
    case ht::PacketType::kCohAck:
    case ht::PacketType::kMigData:  // both data legs behave like responses
    case ht::PacketType::kMigAck:
      return params_.virtual_channels - 1;
    default:
      return 0;
  }
}

sim::Task<void> Fabric::traverse(ht::Packet packet) {
  if (packet.src == packet.dst) {
    throw std::logic_error("Fabric::traverse: src == dst (loopback packets "
                           "must be handled by the RMC, not the fabric)");
  }
  const sim::Time start = engine_.now();
  const std::uint32_t bytes = ht::wire_size(packet);
  const sim::TraceContext ctx{packet.txn, packet.parent_span};
  const int vc = vc_of(packet.type);
  const auto& path = routes_.route(packet.src, packet.dst);
  NodeId prev = packet.src;
  for (NodeId hop : path) {
    auto key = std::make_pair(prev, hop);
    auto dit = down_.find(key);
    if (dit != down_.end() && dit->second) {
      throw std::logic_error("Fabric: link " + std::to_string(prev) + "->" +
                             std::to_string(hop) + " is down");
    }
    if (engine_.tracer() != nullptr) {
      // Router occupancy: the routing/arbitration stage at the hop's
      // ingress. Track names are built only when a tracer is attached.
      sim::ScopedSpan route(engine_, "router." + std::to_string(prev),
                            "route", ctx, sim::Segment::kLink);
      co_await engine_.delay(params_.router_delay);
    } else {
      co_await engine_.delay(params_.router_delay);
    }
    co_await links_.at(key)[static_cast<std::size_t>(vc)]->transmit(bytes,
                                                                    ctx);
    prev = hop;
  }
  delivered_.inc();
  traversal_latency_.add_time(engine_.now() - start);
}

sim::Time Fabric::zero_load_latency(int hops, std::uint32_t bytes) const {
  if (hops <= 0) return 0;
  // Store-and-forward at message granularity: every hop pays router delay,
  // serialization and wire propagation.
  const sim::Time per_hop = params_.router_delay + params_.link.propagation;
  const sim::Time serialization =
      sim::ns_d(static_cast<double>(bytes) / params_.link.bytes_per_ns);
  return static_cast<sim::Time>(hops) * (per_hop + serialization);
}

void Fabric::set_link_down(NodeId from, NodeId to, bool down) {
  if (!links_.count({from, to})) {
    throw std::invalid_argument("Fabric: no such link");
  }
  down_[{from, to}] = down;
}

bool Fabric::link_is_down(NodeId from, NodeId to) const {
  auto it = down_.find({from, to});
  return it != down_.end() && it->second;
}

const ht::Link& Fabric::link(NodeId from, NodeId to, int vc) const {
  return *links_.at({from, to}).at(static_cast<std::size_t>(vc));
}

ht::Link& Fabric::mutable_link(NodeId from, NodeId to, int vc) {
  return *links_.at({from, to}).at(static_cast<std::size_t>(vc));
}

void Fabric::export_stats(sim::StatRegistry& reg,
                          const std::string& prefix) const {
  reg.counter(prefix + "packets_delivered").inc(delivered_.value());
  reg.sampler(prefix + "traversal_latency_ps") = traversal_latency_;
  for (const auto& [edge, vcs] : links_) {
    for (const auto& link : vcs) {
      if (link->packets() == 0) continue;
      const std::string p = prefix + link->name() + ".";
      reg.counter(p + "packets").inc(link->packets());
      reg.counter(p + "bytes").inc(link->bytes());
      reg.counter(p + "retries").inc(link->retries());
      // Off-by-default watchdog: nonzero-only (ARCHITECTURE.md, stats
      // export convention).
      sim::export_counter_nonzero(reg, p + "stall_timeouts",
                                  link->stall_timeouts());
      reg.counter(p + "busy_ps").inc(static_cast<std::uint64_t>(
          link->busy_time()));
      reg.sampler(p + "queue_wait_ps") = link->queue_wait();
    }
  }
}

void Fabric::sample_timeseries(
    std::vector<std::pair<std::string, double>>& out,
    const std::string& prefix) const {
  out.emplace_back(prefix + "packets_delivered",
                   static_cast<double>(delivered_.value()));
  for (const auto& [edge, vcs] : links_) {
    for (const auto& link : vcs) {
      if (link->packets() == 0) continue;
      out.emplace_back(prefix + link->name() + ".busy_ps",
                       static_cast<double>(link->busy_time()));
      out.emplace_back(prefix + link->name() + ".packets",
                       static_cast<double>(link->packets()));
    }
  }
}

}  // namespace ms::noc
