#pragma once

#include <cstdint>
#include <string>

namespace ms::ht {

/// Cluster node identifier carried in the 14 most significant address bits.
/// Node ids are 1-based — the paper deliberately has *no node 0* so that a
/// zero prefix always means "local memory" and the RMC needs no translation
/// table (Sec. III-B).
using NodeId = std::uint16_t;

inline constexpr NodeId kNoNode = 0;

/// 48-bit physical address; the top 14 bits are the node prefix.
using PAddr = std::uint64_t;

/// HyperTransport-like transaction types.
///
/// kReadReq/kWriteReq/kReadResp/kWriteAck mirror HT sized read/write
/// semantics; kCtrl* carry the OS reservation protocol (Sec. III-B, Fig. 4)
/// over the same fabric; kCohProbe/kCohAck exist only for the coherent-DSM
/// baseline, where inter-node coherence traffic is the measured overhead.
/// kMig* carry the memory broker's live-page-migration copy stream — a
/// separate traffic class so migration bandwidth can ride its own virtual
/// channel and never head-of-line-block demand requests.
enum class PacketType : std::uint8_t {
  kReadReq,
  kWriteReq,
  kReadResp,
  kWriteAck,
  kCtrlReq,
  kCtrlResp,
  kCohProbe,
  kCohAck,
  kMigRead,   ///< broker pulls one copy chunk from the source donor
  kMigData,   ///< chunk payload (source->home and home->destination legs)
  kMigAck,    ///< destination donor acknowledges a chunk landed
};

const char* to_string(PacketType t);

/// One fabric message. Data payloads are not carried here — real bytes live
/// in mem::BackingStore and are read/written at the endpoints; the packet
/// carries only the metadata the timing model needs.
struct Packet {
  PacketType type = PacketType::kReadReq;
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  PAddr addr = 0;            ///< target physical address (with node prefix)
  std::uint32_t size = 0;    ///< payload bytes (reads: requested, writes: carried)
  std::uint64_t tag = 0;     ///< transaction tag for response matching
  std::uint32_t ctrl_op = 0; ///< opcode for kCtrl* packets
  std::uint64_t payload0 = 0;
  std::uint64_t payload1 = 0;
  /// Causal trace identity (sim/trace_context.hpp), threaded through the
  /// fabric so per-hop spans link back to the originating transaction.
  /// Pure observability: zero when untraced, never affects timing.
  std::uint64_t txn = 0;
  std::uint64_t parent_span = 0;

  std::string describe() const;
};

/// Bytes this packet occupies on an HNC-HT wire: an 8-byte HT command/addr
/// header plus the 8-byte High Node Count encapsulation header, plus payload
/// for data-carrying packets. (HT 3.x uses 4- and 8-byte control packets;
/// we always charge the 8-byte form with address extension.)
std::uint32_t wire_size(const Packet& p);

inline constexpr std::uint32_t kHtHeaderBytes = 8;
inline constexpr std::uint32_t kHncHeaderBytes = 8;

}  // namespace ms::ht
