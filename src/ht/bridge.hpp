#pragma once

#include <cstdint>

#include "ht/packet.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ms::ht {

/// HT <-> High Node Count HT protocol bridge.
///
/// The RMC bridges the node-internal HyperTransport domain (<= 32 devices,
/// no node addressing) to the HNC-HT cluster fabric (Sec. 7.2 of the HNC
/// spec, as used in the paper Sec. IV-A). The bridge's job in the timing
/// model is the per-packet translation latency and the extra encapsulation
/// header; the address arithmetic itself lives in node::AddressMap.
class HncBridge {
 public:
  struct Params {
    sim::Time encapsulate_latency = sim::ns(32);   ///< FPGA pipeline, HT->HNC
    sim::Time decapsulate_latency = sim::ns(32);   ///< HNC->HT
  };

  explicit HncBridge(const Params& p) : params_(p) {}

  /// Latency to wrap a local HT transaction into an HNC packet.
  sim::Time encapsulate(const Packet& p) {
    packets_out_.inc();
    bytes_out_.inc(wire_size(p));
    return params_.encapsulate_latency;
  }

  /// Latency to unwrap an HNC packet back into a local HT transaction.
  sim::Time decapsulate(const Packet& p) {
    packets_in_.inc();
    bytes_in_.inc(wire_size(p));
    return params_.decapsulate_latency;
  }

  std::uint64_t packets_out() const { return packets_out_.value(); }
  std::uint64_t packets_in() const { return packets_in_.value(); }

 private:
  Params params_;
  sim::Counter packets_out_;
  sim::Counter packets_in_;
  sim::Counter bytes_out_;
  sim::Counter bytes_in_;
};

}  // namespace ms::ht
