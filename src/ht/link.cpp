#include "ht/link.hpp"

#include "sim/tracer.hpp"

namespace ms::ht {

Link::Link(sim::Engine& engine, std::string name, const Params& p)
    : engine_(engine),
      name_(std::move(name)),
      params_(p),
      credits_(engine, p.credits),
      transmitter_(engine, 1),
      error_rng_(p.error_seed) {}

sim::Time Link::serialization_time(std::uint32_t bytes) const {
  return sim::ns_d(static_cast<double>(bytes) / params_.bytes_per_ns);
}

sim::Task<void> Link::transmit(std::uint32_t bytes, sim::TraceContext ctx) {
  const sim::Time arrived = engine_.now();
  // Stall watchdog across the whole wait (credits + transmitter). Armed
  // only when configured; disarmed in O(1) once the wait ends, so in the
  // common case the closure never runs and its node goes back to the pool.
  // The ScopedTimer additionally covers frame destruction mid-wait.
  sim::ScopedTimer watchdog =
      params_.stall_timeout > 0
          ? sim::ScopedTimer(engine_,
                             engine_.schedule(params_.stall_timeout,
                                              [this] {
                                                stall_timeouts_.inc();
                                              }))
          : sim::ScopedTimer();
  co_await credits_.acquire();
  sim::SemToken credit(credits_);
  co_await transmitter_.acquire();
  watchdog.disarm();
  queue_wait_.add_time(engine_.now() - arrived);
  sim::record_wait(engine_, name_, "wait", arrived, ctx);
  const sim::Time ser = serialization_time(bytes);
  {
    // Span covers exactly the transmitter occupancy (retries included).
    sim::ScopedSpan xmit(engine_, name_, "xmit", ctx,
                         sim::Segment::kSerialization);
    // Link-layer CRC retry: a corrupted packet is detected at the far end,
    // NAKed, and retransmitted while still holding the transmitter.
    while (params_.error_rate > 0.0 && error_rng_.chance(params_.error_rate)) {
      retries_.inc();
      busy_ += ser;
      co_await engine_.delay(ser + params_.retry_penalty);
    }
    busy_ += ser;
    co_await engine_.delay(ser);
  }
  transmitter_.release();
  // Propagation does not hold the transmitter; the credit is returned when
  // the tail reaches the receiver (SemToken destructor at coroutine end).
  {
    sim::SegmentSpan prop(engine_, ctx, name_, "prop", sim::Segment::kLink);
    co_await engine_.delay(params_.propagation);
  }
  packets_.inc();
  bytes_.inc(bytes);
}

}  // namespace ms::ht
