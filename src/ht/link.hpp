#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/trace_context.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace ms::ht {

/// One unidirectional point-to-point link.
///
/// Timing model: a message first competes for the transmitter (one message
/// serializes at a time, FIFO), holds it for size/bandwidth, then propagates
/// for a fixed wire delay without occupying the transmitter. Credit-based
/// flow control bounds the number of messages in flight (serializing or
/// propagating) exactly like HT's buffer credits: when the receiver's
/// buffers are exhausted, the sender stalls before serialization.
class Link {
 public:
  struct Params {
    double bytes_per_ns = 4.0;        ///< ~4 GB/s: 16-bit HT link @ 2 GT/s
    sim::Time propagation = sim::ns(20);
    int credits = 8;                  ///< receiver buffer slots
    /// Per-packet probability of a CRC error forcing a retransmission
    /// (HT links retry corrupted packets at the link layer). Zero for the
    /// clean-fabric default; failure-injection tests and reliability
    /// studies raise it.
    double error_rate = 0.0;
    sim::Time retry_penalty = sim::ns(100);  ///< error detect + NAK turnaround
    std::uint64_t error_seed = 0x5eed;       ///< deterministic error stream
    /// Stall watchdog: if a message waits longer than this for credits plus
    /// the transmitter, stall_timeouts() ticks once. Zero disables the
    /// watchdog (the default — it changes no timing either way; the timer
    /// is cancelled in O(1) when the wait ends first).
    sim::Time stall_timeout = 0;
  };

  Link(sim::Engine& engine, std::string name, const Params& p);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Moves `bytes` across the link; resumes when the tail arrives. `ctx`
  /// links the recorded spans into a traced transaction (observability
  /// only; timing is identical with or without it).
  sim::Task<void> transmit(std::uint32_t bytes, sim::TraceContext ctx = {});

  sim::Time serialization_time(std::uint32_t bytes) const;

  const std::string& name() const { return name_; }
  std::uint64_t packets() const { return packets_.value(); }
  std::uint64_t bytes() const { return bytes_.value(); }
  std::uint64_t retries() const { return retries_.value(); }
  std::uint64_t stall_timeouts() const { return stall_timeouts_.value(); }
  sim::Time busy_time() const { return busy_; }
  const sim::Sampler& queue_wait() const { return queue_wait_; }

  /// Credit-conservation observability (invariant checkers): at drain every
  /// receiver buffer credit must be back in the pool and the transmitter
  /// idle — anything else means a message leaked or is stuck.
  int credits_available() const { return credits_.available(); }
  int credits_configured() const { return params_.credits; }
  bool transmitter_idle() const { return transmitter_.available() == 1; }
  std::size_t credit_waiters() const { return credits_.waiters(); }

  /// Fault injection for the fuzzing harness: permanently eat one credit,
  /// simulating a lost-buffer leak, so the credit-conservation checker can
  /// prove it fires. Test-only; never called by production code.
  void test_leak_credit() { (void)credits_.try_acquire(); }

 private:
  sim::Engine& engine_;
  std::string name_;
  Params params_;
  sim::Semaphore credits_;
  sim::Semaphore transmitter_;
  sim::Counter packets_;
  sim::Counter bytes_;
  sim::Counter retries_;
  sim::Counter stall_timeouts_;
  sim::Time busy_ = 0;
  sim::Sampler queue_wait_;
  sim::Rng error_rng_;
};

}  // namespace ms::ht
