#include "ht/bridge.hpp"

// HncBridge is header-only today; this translation unit pins the module into
// the library so future out-of-line additions don't touch the build.
namespace ms::ht {}
