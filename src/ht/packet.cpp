#include "ht/packet.hpp"

#include <sstream>

namespace ms::ht {

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kReadReq: return "ReadReq";
    case PacketType::kWriteReq: return "WriteReq";
    case PacketType::kReadResp: return "ReadResp";
    case PacketType::kWriteAck: return "WriteAck";
    case PacketType::kCtrlReq: return "CtrlReq";
    case PacketType::kCtrlResp: return "CtrlResp";
    case PacketType::kCohProbe: return "CohProbe";
    case PacketType::kCohAck: return "CohAck";
    case PacketType::kMigRead: return "MigRead";
    case PacketType::kMigData: return "MigData";
    case PacketType::kMigAck: return "MigAck";
  }
  return "?";
}

std::string Packet::describe() const {
  std::ostringstream out;
  out << to_string(type) << " " << src << "->" << dst << " addr=0x" << std::hex
      << addr << std::dec << " size=" << size << " tag=" << tag;
  return out.str();
}

std::uint32_t wire_size(const Packet& p) {
  std::uint32_t header = kHtHeaderBytes + kHncHeaderBytes;
  switch (p.type) {
    case PacketType::kWriteReq:
    case PacketType::kReadResp:
    case PacketType::kMigData:
      return header + p.size;
    case PacketType::kCtrlReq:
    case PacketType::kCtrlResp:
      return header + 16;  // small control payload (two 8-byte words)
    case PacketType::kReadReq:
    case PacketType::kWriteAck:
    case PacketType::kCohProbe:
    case PacketType::kCohAck:
    case PacketType::kMigRead:
    case PacketType::kMigAck:
      return header;
  }
  return header;
}

}  // namespace ms::ht
