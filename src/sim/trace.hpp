#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>

#include "sim/time.hpp"

namespace ms::sim {

/// Bounded memory-access trace for offline analysis.
///
/// Attach one to a core::MemorySpace (set_trace) to capture every timed
/// access: simulated time, core, virtual address, size, direction. The
/// buffer is a ring — old entries fall off past `capacity` so a trace can
/// stay attached to an arbitrarily long run. dump_csv emits a header plus
/// one row per record, newest last, suitable for plotting access patterns
/// or replaying against another configuration.
class AccessTrace {
 public:
  struct Record {
    Time when;
    std::uint64_t vaddr;
    std::uint32_t bytes;
    std::uint16_t core;
    bool is_write;
  };

  explicit AccessTrace(std::size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  void record(Time when, int core, std::uint64_t vaddr, std::uint32_t bytes,
              bool is_write) {
    if (records_.size() == capacity_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back(Record{when, vaddr, bytes,
                              static_cast<std::uint16_t>(core), is_write});
  }

  std::size_t size() const { return records_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  const std::deque<Record>& records() const { return records_; }
  void clear() {
    records_.clear();
    dropped_ = 0;
  }

  void dump_csv(std::ostream& out) const {
    out << "time_ps,core,vaddr,bytes,op\n";
    for (const auto& r : records_) {
      out << r.when << ',' << r.core << ',' << r.vaddr << ',' << r.bytes
          << ',' << (r.is_write ? 'W' : 'R') << '\n';
    }
  }

 private:
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::deque<Record> records_;
};

}  // namespace ms::sim
