#include "sim/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "sim/stats.hpp"

namespace ms::sim {

void Tracer::begin_process(std::string_view name) {
  process_names_.emplace_back(name);
  // Track names intern per process: the same component name in the next
  // bench point must get its own lane group under the new pid.
  track_ids_.clear();
}

std::uint32_t Tracer::track_id(std::string_view name) {
  auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(tracks_.size());
  const int pid =
      process_names_.empty() ? 0 : static_cast<int>(process_names_.size()) - 1;
  tracks_.push_back(Track{std::string(name), pid});
  track_ids_.emplace(tracks_.back().name, id);
  return id;
}

Tracer::SpanId Tracer::begin_span(std::string_view track,
                                  std::string_view name, Time t,
                                  TraceContext ctx, Segment seg, bool root,
                                  CohCause cause) {
  SpanId id;
  if (flight_capacity_ != 0 && !free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    spans_[id] = Span{};
  } else {
    id = spans_.size();
    spans_.emplace_back();
  }
  Span& s = spans_[id];
  s.begin = t;
  s.end = t;
  s.track = track_id(track);
  s.seq = static_cast<std::uint32_t>(id);
  s.uid = next_uid_++;
  s.txn = ctx.txn;
  s.parent = ctx.span;
  s.segment = seg;
  // Causes only make sense on coherence leaves; normalize so the exports
  // never carry a stray cause on other segments.
  s.cause = seg == Segment::kCoherence ? cause : CohCause::kUnattributed;
  s.root = root;
  s.name = std::string(name);
  ++open_;
  last_time_ = std::max(last_time_, t);
  return id;
}

void Tracer::finalize_txn(const Span& root, Time t) {
  TxnBreakdown b;
  b.txn = root.txn;
  b.total = std::max(root.begin, t) - root.begin;
  auto it = open_txns_.find(root.txn);
  if (it != open_txns_.end()) {
    b.seg = it->second.seg;
    b.coh = it->second.coh;
    open_txns_.erase(it);
  }
  Time accounted = 0;
  for (Time v : b.seg) accounted += v;
  // The residual (time under the root not covered by any tagged leaf span)
  // lands in kOther, so the segments sum to the total exactly. A negative
  // residual can only arise from overlapping tagged spans, which the
  // sequential per-transaction instrumentation never produces; clamp
  // defensively rather than wrap.
  if (accounted <= b.total) {
    b.seg[static_cast<std::size_t>(Segment::kOther)] += b.total - accounted;
  }
  last_txn_ = b;
  ++txns_finalized_;
  txn_total_.add_time(b.total);
  for (int i = 0; i < kNumSegments; ++i) {
    if (b.seg[static_cast<std::size_t>(i)] != 0) {
      txn_seg_[static_cast<std::size_t>(i)].add_time(
          b.seg[static_cast<std::size_t>(i)]);
    }
  }
  for (int i = 0; i < kNumCohCauses; ++i) {
    if (b.coh[static_cast<std::size_t>(i)] != 0) {
      txn_coh_[static_cast<std::size_t>(i)].add_time(
          b.coh[static_cast<std::size_t>(i)]);
    }
  }
}

void Tracer::end_span(SpanId id, Time t) {
  if (id == kNoSpan || id >= spans_.size() || spans_[id].closed) return;
  Span& s = spans_[id];
  s.end = std::max(s.begin, t);
  s.closed = true;
  --open_;
  last_time_ = std::max(last_time_, t);
  if (s.txn != 0) {
    if (s.root) {
      finalize_txn(s, t);
    } else if (s.segment != Segment::kNone) {
      OpenTxn& open_txn = open_txns_[s.txn];
      open_txn.seg[static_cast<std::size_t>(s.segment)] += s.end - s.begin;
      if (s.segment == Segment::kCoherence) {
        open_txn.coh[static_cast<std::size_t>(s.cause)] += s.end - s.begin;
      }
    }
  }
  if (flight_capacity_ != 0) {
    FlightRecord rec{s.begin,
                     s.end,
                     s.uid,
                     s.txn,
                     s.parent,
                     flight_intern(tracks_[s.track].name),
                     flight_intern(s.name),
                     static_cast<std::uint8_t>(s.segment),
                     static_cast<std::uint8_t>(s.root ? 1 : 0),
                     static_cast<std::uint8_t>(s.cause)};
    if (flight_ring_.size() < flight_capacity_) {
      flight_ring_.push_back(rec);
    } else {
      flight_ring_[flight_head_] = rec;
      flight_head_ = (flight_head_ + 1) % flight_capacity_;
      ++flight_dropped_;
    }
    free_slots_.push_back(id);
  }
}

void Tracer::instant(std::string_view track, std::string_view name, Time t) {
  if (flight_capacity_ != 0) return;  // bounded mode keeps spans only
  instants_.push_back(Instant{t, track_id(track), std::string(name)});
  last_time_ = std::max(last_time_, t);
}

void Tracer::counter(std::string_view track, std::string_view name, Time t,
                     double value) {
  if (flight_capacity_ != 0) return;  // bounded mode keeps spans only
  counter_samples_.push_back(
      CounterSample{t, track_id(track), value, std::string(name)});
  last_time_ = std::max(last_time_, t);
}

void Tracer::export_txn_stats(StatRegistry& reg,
                              const std::string& prefix) const {
  if (txns_finalized_ == 0) return;
  reg.counter(prefix + "count").inc(txns_finalized_);
  reg.sampler(prefix + "total_ps") = txn_total_;
  for (int i = 0; i < kNumSegments; ++i) {
    const auto& s = txn_seg_[static_cast<std::size_t>(i)];
    if (s.count() == 0) continue;
    reg.sampler(prefix + "seg." + to_string(static_cast<Segment>(i)) +
                "_ps") = s;
  }
  for (int i = 0; i < kNumCohCauses; ++i) {
    export_sampler_nonzero(reg,
                           prefix + "seg.coherence." +
                               to_string(static_cast<CohCause>(i)) + "_ps",
                           txn_coh_[static_cast<std::size_t>(i)]);
  }
}

void Tracer::reset_txn_stats() {
  txns_finalized_ = 0;
  txn_total_.reset();
  for (auto& s : txn_seg_) s.reset();
  for (auto& s : txn_coh_) s.reset();
}

std::vector<Tracer::SpanView> Tracer::span_views() const {
  std::vector<SpanView> out;
  out.reserve(spans_.size());
  for (const Span& s : spans_) {
    out.push_back(SpanView{s.begin, s.end, s.uid, s.txn, s.parent, s.segment,
                           s.cause, s.root, s.closed, &tracks_[s.track].name,
                           &s.name});
  }
  return out;
}

void Tracer::enable_flight_recorder(std::size_t capacity) {
  if (!spans_.empty()) {
    throw std::logic_error(
        "Tracer: enable_flight_recorder before recording spans");
  }
  if (capacity == 0) {
    throw std::invalid_argument("Tracer: flight capacity must be nonzero");
  }
  flight_capacity_ = capacity;
  flight_ring_.reserve(capacity);
}

std::uint32_t Tracer::flight_intern(const std::string& s) {
  auto it = flight_name_ids_.find(s);
  if (it != flight_name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(flight_names_.size());
  flight_names_.push_back(s);
  flight_name_ids_.emplace(s, id);
  return id;
}

namespace {

void put_u32(std::ostream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 8);
}

}  // namespace

void Tracer::export_flight(std::ostream& out) const {
  out.write("MSFLIGHT", 8);
  put_u32(out, 1);  // version
  put_u32(out, 0);  // reserved
  put_u64(out, flight_ring_.size());
  put_u64(out, flight_dropped_);
  put_u32(out, static_cast<std::uint32_t>(flight_names_.size()));
  for (const std::string& n : flight_names_) {
    put_u32(out, static_cast<std::uint32_t>(n.size()));
    out.write(n.data(), static_cast<std::streamsize>(n.size()));
  }
  // Oldest first: the ring head is the oldest slot once the ring wrapped.
  const std::size_t n = flight_ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const FlightRecord& r =
        flight_ring_[(flight_head_ + i) % (n == 0 ? 1 : n)];
    put_u64(out, static_cast<std::uint64_t>(r.begin));
    put_u64(out, static_cast<std::uint64_t>(r.end));
    put_u64(out, r.uid);
    put_u64(out, r.txn);
    put_u64(out, r.parent);
    put_u32(out, r.track_name);
    put_u32(out, r.name);
    // Format stays version 1: bits 16-23 were always written as zero
    // before causes existed, so old readers mask them off harmlessly and
    // new readers decode old dumps as kUnattributed.
    put_u32(out, static_cast<std::uint32_t>(r.segment) |
                     (static_cast<std::uint32_t>(r.root) << 8) |
                     (static_cast<std::uint32_t>(r.cause) << 16));
  }
}

void Tracer::clear() {
  process_names_.clear();
  tracks_.clear();
  track_ids_.clear();
  spans_.clear();
  instants_.clear();
  counter_samples_.clear();
  open_ = 0;
  last_time_ = 0;
  next_uid_ = 1;
  next_txn_ = 1;
  mint_counter_ = 0;
  open_txns_.clear();
  last_txn_ = TxnBreakdown{};
  reset_txn_stats();
  flight_head_ = 0;
  flight_dropped_ = 0;
  flight_ring_.clear();
  free_slots_.clear();
  flight_names_.clear();
  flight_name_ids_.clear();
}

namespace {

// "ts" is in microseconds; simulated time is picoseconds, so six decimals
// preserve full resolution (exactly, for any run shorter than ~2.5 hours).
std::string fmt_ts(Time t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", static_cast<double>(t) / 1e6);
  return buf;
}

struct ExportSpan {
  Time begin;
  Time end;
  std::uint32_t seq;
  const std::string* name;
  std::uint64_t uid;
  std::uint64_t txn;
  std::uint64_t parent;
  Segment segment;
  CohCause cause;
};

// Where a span slice landed in the export, for flow-event binding.
struct FlowLoc {
  int pid;
  int tid;
  Time begin;
};

}  // namespace

void Tracer::export_chrome(std::ostream& out) const {
  if (flight_capacity_ != 0) {
    throw std::logic_error(
        "Tracer: export_chrome unavailable in flight-recorder mode "
        "(span slots recycle; use export_flight)");
  }
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&]() -> std::ostream& {
    out << (first ? "\n" : ",\n");
    first = false;
    return out;
  };

  if (process_names_.empty()) {
    sep() << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
             "\"args\":{\"name\":\"sim\"}}";
  }
  for (std::size_t p = 0; p < process_names_.size(); ++p) {
    sep() << "{\"ph\":\"M\",\"pid\":" << p
          << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
          << process_names_[p] << "\"}}";
    sep() << "{\"ph\":\"M\",\"pid\":" << p
          << ",\"tid\":0,\"name\":\"process_sort_index\",\"args\":{"
             "\"sort_index\":"
          << p << "}}";
  }

  // Group spans by track, pack each track into nesting lanes, emit each
  // lane as one tid of balanced B/E events.
  std::vector<std::vector<ExportSpan>> by_track(tracks_.size());
  for (const Span& s : spans_) {
    by_track[s.track].push_back(ExportSpan{
        s.begin, s.closed ? s.end : std::max(s.begin, last_time_), s.seq,
        &s.name, s.uid, s.txn, s.parent, s.segment, s.cause});
  }

  // Transaction spans remember their lane so flow events can bind to the
  // emitted slices afterwards.
  std::unordered_map<std::uint64_t, FlowLoc> flow_locs;

  int next_tid = 1;
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    auto& spans = by_track[t];
    const int pid = tracks_[t].pid;
    if (spans.empty()) continue;
    std::sort(spans.begin(), spans.end(),
              [](const ExportSpan& a, const ExportSpan& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                if (a.end != b.end) return a.end > b.end;
                return a.seq < b.seq;
              });
    // Greedy lane packing: a span joins the first lane whose innermost
    // still-open span fully contains it (or that is idle by then).
    std::vector<std::vector<Time>> lane_open;   // per lane: stack of ends
    std::vector<std::vector<const ExportSpan*>> lane_spans;
    for (const ExportSpan& s : spans) {
      std::size_t lane = lane_open.size();
      for (std::size_t i = 0; i < lane_open.size(); ++i) {
        auto& ends = lane_open[i];
        while (!ends.empty() && ends.back() <= s.begin) ends.pop_back();
        if (ends.empty() || ends.back() >= s.end) {
          lane = i;
          break;
        }
      }
      if (lane == lane_open.size()) {
        lane_open.emplace_back();
        lane_spans.emplace_back();
      }
      lane_open[lane].push_back(s.end);
      lane_spans[lane].push_back(&s);
    }

    for (std::size_t lane = 0; lane < lane_spans.size(); ++lane) {
      const int tid = next_tid++;
      std::string label = tracks_[t].name;
      if (lane > 0) label += " #" + std::to_string(lane + 1);
      sep() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << label
            << "\"}}";
      sep() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
            << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
            << tid << "}}";
      auto emit = [&](char ph, const ExportSpan* s, Time ts) {
        sep() << "{\"ph\":\"" << ph << "\",\"pid\":" << pid
              << ",\"tid\":" << tid << ",\"ts\":" << fmt_ts(ts)
              << ",\"name\":\"" << *s->name << "\"";
        if (ph == 'B' && s->txn != 0) {
          out << ",\"args\":{\"txn\":" << s->txn << ",\"uid\":" << s->uid
              << ",\"parent\":" << s->parent << ",\"seg\":\""
              << to_string(s->segment) << "\"";
          if (s->segment == Segment::kCoherence) {
            out << ",\"cause\":\"" << to_string(s->cause) << "\"";
          }
          out << "}";
        }
        out << "}";
      };
      std::vector<const ExportSpan*> stack;
      for (const ExportSpan* s : lane_spans[lane]) {
        while (!stack.empty() && stack.back()->end <= s->begin) {
          emit('E', stack.back(), stack.back()->end);
          stack.pop_back();
        }
        emit('B', s, s->begin);
        stack.push_back(s);
        if (s->txn != 0) flow_locs.emplace(s->uid, FlowLoc{pid, tid, s->begin});
      }
      while (!stack.empty()) {
        emit('E', stack.back(), stack.back()->end);
        stack.pop_back();
      }
    }
  }

  // Flow events: one s/f pair per parent->child edge of the causal DAG,
  // bound to the emitted slices. Iterated in span order for determinism.
  for (const Span& s : spans_) {
    if (s.txn == 0 || s.parent == 0) continue;
    auto child = flow_locs.find(s.uid);
    auto parent = flow_locs.find(s.parent);
    if (child == flow_locs.end() || parent == flow_locs.end()) continue;
    sep() << "{\"ph\":\"s\",\"pid\":" << parent->second.pid
          << ",\"tid\":" << parent->second.tid
          << ",\"ts\":" << fmt_ts(s.begin) << ",\"id\":" << s.uid
          << ",\"cat\":\"txn\",\"name\":\"txn\"}";
    sep() << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":" << child->second.pid
          << ",\"tid\":" << child->second.tid
          << ",\"ts\":" << fmt_ts(s.begin) << ",\"id\":" << s.uid
          << ",\"cat\":\"txn\",\"name\":\"txn\"}";
  }

  for (const Instant& i : instants_) {
    sep() << "{\"ph\":\"i\",\"pid\":" << tracks_[i.track].pid
          << ",\"tid\":0,\"ts\":" << fmt_ts(i.when) << ",\"name\":\""
          << tracks_[i.track].name << "." << i.name << "\",\"s\":\"t\"}";
  }
  for (const CounterSample& c : counter_samples_) {
    sep() << "{\"ph\":\"C\",\"pid\":" << tracks_[c.track].pid
          << ",\"tid\":0,\"ts\":" << fmt_ts(c.when) << ",\"name\":\""
          << tracks_[c.track].name << "." << c.name
          << "\",\"args\":{\"value\":" << json_double(c.value) << "}}";
  }

  out << "\n]}\n";
}

}  // namespace ms::sim
