#include "sim/tracer.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/stats.hpp"

namespace ms::sim {

void Tracer::begin_process(std::string_view name) {
  process_names_.emplace_back(name);
  // Track names intern per process: the same component name in the next
  // bench point must get its own lane group under the new pid.
  track_ids_.clear();
}

std::uint32_t Tracer::track_id(std::string_view name) {
  auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(tracks_.size());
  const int pid =
      process_names_.empty() ? 0 : static_cast<int>(process_names_.size()) - 1;
  tracks_.push_back(Track{std::string(name), pid});
  track_ids_.emplace(tracks_.back().name, id);
  return id;
}

Tracer::SpanId Tracer::begin_span(std::string_view track,
                                  std::string_view name, Time t) {
  Span s;
  s.begin = t;
  s.end = t;
  s.track = track_id(track);
  s.seq = static_cast<std::uint32_t>(spans_.size());
  s.name = std::string(name);
  spans_.push_back(std::move(s));
  ++open_;
  last_time_ = std::max(last_time_, t);
  return spans_.size() - 1;
}

void Tracer::end_span(SpanId id, Time t) {
  if (id == kNoSpan || id >= spans_.size() || spans_[id].closed) return;
  Span& s = spans_[id];
  s.end = std::max(s.begin, t);
  s.closed = true;
  --open_;
  last_time_ = std::max(last_time_, t);
}

void Tracer::instant(std::string_view track, std::string_view name, Time t) {
  instants_.push_back(Instant{t, track_id(track), std::string(name)});
  last_time_ = std::max(last_time_, t);
}

void Tracer::counter(std::string_view track, std::string_view name, Time t,
                     double value) {
  counter_samples_.push_back(
      CounterSample{t, track_id(track), value, std::string(name)});
  last_time_ = std::max(last_time_, t);
}

void Tracer::clear() {
  process_names_.clear();
  tracks_.clear();
  track_ids_.clear();
  spans_.clear();
  instants_.clear();
  counter_samples_.clear();
  open_ = 0;
  last_time_ = 0;
}

namespace {

// "ts" is in microseconds; simulated time is picoseconds, so six decimals
// preserve full resolution (exactly, for any run shorter than ~2.5 hours).
std::string fmt_ts(Time t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", static_cast<double>(t) / 1e6);
  return buf;
}

struct ExportSpan {
  Time begin;
  Time end;
  std::uint32_t seq;
  const std::string* name;
};

}  // namespace

void Tracer::export_chrome(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&]() -> std::ostream& {
    out << (first ? "\n" : ",\n");
    first = false;
    return out;
  };

  if (process_names_.empty()) {
    sep() << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
             "\"args\":{\"name\":\"sim\"}}";
  }
  for (std::size_t p = 0; p < process_names_.size(); ++p) {
    sep() << "{\"ph\":\"M\",\"pid\":" << p
          << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
          << process_names_[p] << "\"}}";
    sep() << "{\"ph\":\"M\",\"pid\":" << p
          << ",\"tid\":0,\"name\":\"process_sort_index\",\"args\":{"
             "\"sort_index\":"
          << p << "}}";
  }

  // Group spans by track, pack each track into nesting lanes, emit each
  // lane as one tid of balanced B/E events.
  std::vector<std::vector<ExportSpan>> by_track(tracks_.size());
  for (const Span& s : spans_) {
    by_track[s.track].push_back(ExportSpan{
        s.begin, s.closed ? s.end : std::max(s.begin, last_time_), s.seq,
        &s.name});
  }

  int next_tid = 1;
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    auto& spans = by_track[t];
    const int pid = tracks_[t].pid;
    if (spans.empty()) continue;
    std::sort(spans.begin(), spans.end(),
              [](const ExportSpan& a, const ExportSpan& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                if (a.end != b.end) return a.end > b.end;
                return a.seq < b.seq;
              });
    // Greedy lane packing: a span joins the first lane whose innermost
    // still-open span fully contains it (or that is idle by then).
    std::vector<std::vector<Time>> lane_open;   // per lane: stack of ends
    std::vector<std::vector<const ExportSpan*>> lane_spans;
    for (const ExportSpan& s : spans) {
      std::size_t lane = lane_open.size();
      for (std::size_t i = 0; i < lane_open.size(); ++i) {
        auto& ends = lane_open[i];
        while (!ends.empty() && ends.back() <= s.begin) ends.pop_back();
        if (ends.empty() || ends.back() >= s.end) {
          lane = i;
          break;
        }
      }
      if (lane == lane_open.size()) {
        lane_open.emplace_back();
        lane_spans.emplace_back();
      }
      lane_open[lane].push_back(s.end);
      lane_spans[lane].push_back(&s);
    }

    for (std::size_t lane = 0; lane < lane_spans.size(); ++lane) {
      const int tid = next_tid++;
      std::string label = tracks_[t].name;
      if (lane > 0) label += " #" + std::to_string(lane + 1);
      sep() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << label
            << "\"}}";
      sep() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
            << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
            << tid << "}}";
      auto emit = [&](char ph, const ExportSpan* s, Time ts) {
        sep() << "{\"ph\":\"" << ph << "\",\"pid\":" << pid
              << ",\"tid\":" << tid << ",\"ts\":" << fmt_ts(ts)
              << ",\"name\":\"" << *s->name << "\"}";
      };
      std::vector<const ExportSpan*> stack;
      for (const ExportSpan* s : lane_spans[lane]) {
        while (!stack.empty() && stack.back()->end <= s->begin) {
          emit('E', stack.back(), stack.back()->end);
          stack.pop_back();
        }
        emit('B', s, s->begin);
        stack.push_back(s);
      }
      while (!stack.empty()) {
        emit('E', stack.back(), stack.back()->end);
        stack.pop_back();
      }
    }
  }

  for (const Instant& i : instants_) {
    sep() << "{\"ph\":\"i\",\"pid\":" << tracks_[i.track].pid
          << ",\"tid\":0,\"ts\":" << fmt_ts(i.when) << ",\"name\":\""
          << tracks_[i.track].name << "." << i.name << "\",\"s\":\"t\"}";
  }
  for (const CounterSample& c : counter_samples_) {
    sep() << "{\"ph\":\"C\",\"pid\":" << tracks_[c.track].pid
          << ",\"tid\":0,\"ts\":" << fmt_ts(c.when) << ",\"name\":\""
          << tracks_[c.track].name << "." << c.name
          << "\",\"args\":{\"value\":" << json_double(c.value) << "}}";
  }

  out << "\n]}\n";
}

}  // namespace ms::sim
