#include "sim/invariant.hpp"

namespace ms::sim {

void InvariantContext::fail(std::string detail) {
  if (reg_.violations_.size() >= reg_.max_violations_) return;
  reg_.violations_.push_back(
      InvariantViolation{name_, std::move(detail), now_, at_drain_});
}

std::size_t InvariantRegistry::check_all(Time now, bool at_drain) {
  if (items_.empty()) return 0;
  const std::size_t before = violations_.size();
  for (const Item& item : items_) {
    if (item.drain_only && !at_drain) continue;
    ++checks_run_;
    InvariantContext ctx(*this, item.name, now, at_drain);
    item.fn(ctx);
  }
  return violations_.size() - before;
}

}  // namespace ms::sim
