#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "sim/frame_pool.hpp"

namespace ms::sim {

/// A lazy coroutine task used for every simulated activity.
///
/// Task<T> follows the standard continuation-passing design: awaiting a task
/// starts it and records the awaiter as the continuation; when the task
/// finishes, final_suspend symmetrically transfers control back. A task that
/// is never awaited never runs (tests rely on this), and a moved-from task is
/// empty. Top-level tasks are handed to Engine::spawn, which drives them and
/// owns their lifetime.
template <typename T>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
  // Frames come from the thread-local slab pool: the engine allocates and
  // frees the same handful of frame sizes millions of times, so steady
  // state is a freelist pop/push instead of a malloc/free pair. Declaring
  // only the sized delete is deliberate — the coroutine machinery passes
  // the frame size back, which is what lets the pool find the size class
  // without a per-frame header.
  static void* operator new(std::size_t bytes) {
    return FramePool::allocate(bytes);
  }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    FramePool::deallocate(p, bytes);
  }

  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a task starts it (lazy start) with the awaiter as continuation.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
        if constexpr (!std::is_void_v<T>) return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

  /// Releases ownership of the coroutine frame (used by Engine::spawn, which
  /// arranges destruction itself once the frame completes).
  Handle release() { return std::exchange(handle_, {}); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace ms::sim
