#include "sim/parallel.hpp"

namespace ms::sim {

int ParallelExecutor::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelExecutor::ParallelExecutor(int jobs)
    : jobs_(jobs <= 0 ? default_jobs() : jobs) {
  threads_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    threads_.emplace_back([this] { worker(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ParallelExecutor::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ParallelExecutor::worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain queued work even when stopping: map() holds references into
      // its stack frame, so every submitted task must run before join.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace ms::sim
