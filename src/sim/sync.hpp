#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace ms::sim {

/// Counting semaphore for simulated processes.
///
/// Used to model any resource with limited concurrency: an RMC's outstanding
/// request slots, a link's single transmitter, a memory controller port.
/// Waiters are served strictly FIFO; a released token is handed directly to
/// the oldest waiter (no barging), which keeps service order deterministic.
class Semaphore {
 public:
  Semaphore(Engine& engine, int initial) : engine_(engine), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct Acquire {
    Semaphore* sem;
    bool await_ready() const noexcept {
      if (sem->count_ > 0) {
        --sem->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  /// co_await sem.acquire();  ... sem.release();
  Acquire acquire() { return Acquire{this}; }
  void release();

  /// Tries to take a token without waiting.
  bool try_acquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  int available() const { return count_; }
  std::size_t waiters() const { return waiters_.size(); }

 private:
  Engine& engine_;
  int count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII helper: holds one semaphore token for the enclosing scope.
/// Safe across co_await points (the guard lives in the coroutine frame).
class SemToken {
 public:
  explicit SemToken(Semaphore& s) : sem_(&s) {}
  SemToken(SemToken&& o) noexcept : sem_(std::exchange(o.sem_, nullptr)) {}
  SemToken(const SemToken&) = delete;
  SemToken& operator=(const SemToken&) = delete;
  SemToken& operator=(SemToken&&) = delete;
  ~SemToken() {
    if (sem_) sem_->release();
  }

 private:
  Semaphore* sem_;
};

/// One-shot broadcast event. Processes co_await wait(); fire() releases all
/// of them (at the current time, through the event queue). Used for
/// completion notifications, e.g. a response matching an outstanding tag.
class Trigger {
 public:
  explicit Trigger(Engine& engine) : engine_(engine) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  struct Wait {
    Trigger* trig;
    bool await_ready() const noexcept { return trig->fired_; }
    void await_suspend(std::coroutine_handle<> h) { trig->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Wait wait() { return Wait{this}; }

  void fire();
  bool fired() const { return fired_; }
  void reset() { fired_ = false; }

 private:
  Engine& engine_;
  bool fired_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Join-counter for fan-out/fan-in: spawn N workers with add(N), each calls
/// done() on exit, the parent co_awaits wait() until the count drains.
class WaitGroup {
 public:
  explicit WaitGroup(Engine& engine) : engine_(engine) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(int n = 1) { count_ += n; }
  void done();

  struct Wait {
    WaitGroup* wg;
    bool await_ready() const noexcept { return wg->count_ == 0; }
    void await_suspend(std::coroutine_handle<> h) { wg->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Wait wait() { return Wait{this}; }

  int count() const { return count_; }

 private:
  Engine& engine_;
  int count_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel between simulated processes. send() never blocks;
/// receive() blocks until an item is available. Receivers are served FIFO.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : engine_(engine) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void send(T item) {
    if (!receivers_.empty()) {
      Receiver r = receivers_.front();
      receivers_.pop_front();
      r.slot->emplace(std::move(item));
      engine_.schedule_resume(0, r.handle);
    } else {
      items_.push_back(std::move(item));
    }
  }

  struct Receive {
    Mailbox* box;
    std::optional<T> value;
    bool await_ready() {
      if (!box->items_.empty()) {
        value.emplace(std::move(box->items_.front()));
        box->items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      box->receivers_.push_back(Receiver{h, &value});
    }
    T await_resume() { return std::move(*value); }
  };
  Receive receive() { return Receive{this, std::nullopt}; }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t waiting_receivers() const { return receivers_.size(); }

 private:
  struct Receiver {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };
  Engine& engine_;
  std::deque<T> items_;
  std::deque<Receiver> receivers_;
};

}  // namespace ms::sim
