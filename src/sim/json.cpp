#include "sim/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace ms::sim::json {

bool Value::as_bool() const {
  if (!is_bool()) throw std::runtime_error("json: not a bool");
  return std::get<bool>(v_);
}

double Value::as_number() const {
  if (!is_number()) throw std::runtime_error("json: not a number");
  return std::get<double>(v_);
}

const std::string& Value::as_string() const {
  if (!is_string()) throw std::runtime_error("json: not a string");
  return std::get<std::string>(v_);
}

const Value::Array& Value::as_array() const {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<Array>(v_);
}

const Value::Object& Value::as_object() const {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<Object>(v_);
}

const Value& Value::at(const std::string& key) const {
  const Object& o = as_object();
  auto it = o.find(key);
  if (it == o.end()) {
    throw std::runtime_error("json: missing key \"" + key + "\"");
  }
  return it->second;
}

const Value* Value::find(const std::string& key) const {
  const Object& o = as_object();
  auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(o));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(a));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string s;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return s;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            // Stat keys and labels are ASCII; decode the escape but only
            // pass through code points that fit one byte.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (code > 0xff) fail("non-ASCII \\u escape unsupported");
            s += static_cast<char>(code);
            break;
          }
          default: fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      s += c;
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) fail("bad number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ms::sim::json
