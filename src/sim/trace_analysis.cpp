#include "sim/trace_analysis.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

namespace ms::sim {

namespace {

// Minimal field extraction for the fixed single-line event format the
// tracer emits. Not a general JSON parser — it does not need to be: the
// producer is in this repo and the formats are covered by round-trip tests.
bool find_field(const std::string& line, const std::string& key,
                std::size_t& pos) {
  const std::string needle = "\"" + key + "\":";
  pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  return true;
}

bool field_u64(const std::string& line, const std::string& key,
               std::uint64_t& out) {
  std::size_t pos;
  if (!find_field(line, key, pos)) return false;
  out = std::strtoull(line.c_str() + pos, nullptr, 10);
  return true;
}

bool field_str(const std::string& line, const std::string& key,
               std::string& out) {
  std::size_t pos;
  if (!find_field(line, key, pos)) return false;
  if (pos >= line.size() || line[pos] != '"') return false;
  const std::size_t end = line.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = line.substr(pos + 1, end - pos - 1);
  return true;
}

Segment segment_from(const std::string& s) {
  for (int i = 0; i < kNumSegments; ++i) {
    const auto seg = static_cast<Segment>(i);
    if (s == to_string(seg)) return seg;
  }
  throw std::runtime_error("trace analysis: unknown segment \"" + s + "\"");
}

CohCause cause_from(const std::string& s) {
  for (int i = 0; i < kNumCohCauses; ++i) {
    const auto cause = static_cast<CohCause>(i);
    if (s == to_string(cause)) return cause;
  }
  throw std::runtime_error("trace analysis: unknown coherence cause \"" + s +
                           "\"");
}

// "router.3 #2" -> "router.3": strips the overflow-lane suffix the Chrome
// exporter appends so all lanes of one component aggregate together.
std::string strip_lane(std::string label) {
  const std::size_t pos = label.rfind(" #");
  if (pos == std::string::npos) return label;
  if (pos + 2 >= label.size()) return label;
  for (std::size_t i = pos + 2; i < label.size(); ++i) {
    if (label[i] < '0' || label[i] > '9') return label;
  }
  label.resize(pos);
  return label;
}

std::uint64_t lane_key(std::uint64_t pid, std::uint64_t tid) {
  return (pid << 32) | tid;
}

std::uint32_t get_u32(std::istream& in) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  if (!in) throw std::runtime_error("trace analysis: truncated flight dump");
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(std::istream& in) {
  const std::uint64_t lo = get_u32(in);
  const std::uint64_t hi = get_u32(in);
  return lo | (hi << 32);
}

}  // namespace

Time parse_ts_us(const std::string& text) {
  const std::size_t dot = text.find('.');
  const std::uint64_t whole =
      std::strtoull(text.substr(0, dot).c_str(), nullptr, 10);
  std::uint64_t frac = 0;
  if (dot != std::string::npos) {
    std::string digits = text.substr(dot + 1);
    digits.resize(6, '0');  // µs with six decimals == integer picoseconds
    frac = std::strtoull(digits.c_str(), nullptr, 10);
  }
  return static_cast<Time>(whole * 1000000ULL + frac);
}

TraceAnalysis TraceAnalysis::load_chrome(std::istream& in) {
  TraceAnalysis out;
  std::unordered_map<std::uint64_t, std::string> lane_names;
  // Per-lane stack of open spans: B pushes, E pops its innermost.
  std::unordered_map<std::uint64_t, std::vector<AnalyzedSpan>> open;

  // Structural validation: the exporter always writes the
  // {"...","traceEvents":[ header first and a final "]}" line. A stream
  // missing either is not a complete trace (wrong file, or a run that was
  // killed mid-write) and must fail loudly, not yield a partial report.
  bool saw_header = false;
  bool saw_trailer = false;

  std::string line;
  while (std::getline(in, line)) {
    if (!saw_header) {
      if (line.find("\"traceEvents\"") == std::string::npos) {
        throw std::runtime_error(
            "trace analysis: not a chrome trace (missing traceEvents "
            "header)");
      }
      saw_header = true;
    }
    if (line == "]}") saw_trailer = true;
    std::string ph;
    if (!field_str(line, "ph", ph)) continue;
    if (ph == "M") {
      std::string mname;
      if (field_str(line, "name", mname) && mname == "thread_name") {
        std::uint64_t pid = 0, tid = 0;
        std::string label;
        field_u64(line, "pid", pid);
        field_u64(line, "tid", tid);
        // args:{"name":"..."} — the second "name" field; take the last one.
        const std::size_t args = line.find("\"args\"");
        if (args != std::string::npos) {
          const std::string rest = line.substr(args);
          if (field_str(rest, "name", label)) {
            lane_names[lane_key(pid, tid)] = strip_lane(label);
          }
        }
      }
      continue;
    }
    if (ph != "B" && ph != "E") continue;  // flows/instants/counters

    std::uint64_t pid = 0, tid = 0;
    field_u64(line, "pid", pid);
    field_u64(line, "tid", tid);
    const std::uint64_t key = lane_key(pid, tid);
    std::string ts;
    if (!field_str(line, "ts", ts)) {
      // "ts" is numeric, not quoted: extract manually.
      std::size_t pos;
      if (!find_field(line, "ts", pos)) {
        throw std::runtime_error("trace analysis: event without ts");
      }
      const std::size_t end = line.find_first_of(",}", pos);
      ts = line.substr(pos, end - pos);
    }
    const Time when = parse_ts_us(ts);

    if (ph == "B") {
      AnalyzedSpan s;
      s.begin = when;
      field_str(line, "name", s.name);
      auto it = lane_names.find(key);
      s.track = it != lane_names.end() ? it->second : "";
      field_u64(line, "txn", s.txn);
      field_u64(line, "uid", s.uid);
      field_u64(line, "parent", s.parent);
      std::string seg;
      if (field_str(line, "seg", seg)) s.segment = segment_from(seg);
      std::string cause;
      if (field_str(line, "cause", cause)) s.cause = cause_from(cause);
      open[key].push_back(std::move(s));
    } else {
      auto& stack = open[key];
      if (stack.empty()) {
        throw std::runtime_error("trace analysis: unbalanced E event");
      }
      AnalyzedSpan s = std::move(stack.back());
      stack.pop_back();
      s.end = when;
      out.spans_.push_back(std::move(s));
    }
  }
  for (const auto& [key, stack] : open) {
    if (!stack.empty()) {
      throw std::runtime_error("trace analysis: unclosed span in trace");
    }
  }
  if (!saw_header || !saw_trailer) {
    throw std::runtime_error(
        "trace analysis: truncated chrome trace (missing closing \"]}\")");
  }
  return out;
}

TraceAnalysis TraceAnalysis::load_flight(std::istream& in) {
  char magic[8];
  in.read(magic, 8);
  if (!in || std::string(magic, 8) != "MSFLIGHT") {
    throw std::runtime_error("trace analysis: not a flight-recorder dump");
  }
  const std::uint32_t version = get_u32(in);
  if (version != 1) {
    throw std::runtime_error("trace analysis: unsupported flight version");
  }
  get_u32(in);  // reserved
  const std::uint64_t records = get_u64(in);
  TraceAnalysis out;
  out.flight_dropped_ = get_u64(in);
  const std::uint32_t names = get_u32(in);
  std::vector<std::string> table(names);
  for (std::uint32_t i = 0; i < names; ++i) {
    const std::uint32_t len = get_u32(in);
    table[i].resize(len);
    in.read(table[i].data(), len);
    if (!in) throw std::runtime_error("trace analysis: truncated flight dump");
  }
  out.spans_.reserve(records);
  for (std::uint64_t i = 0; i < records; ++i) {
    AnalyzedSpan s;
    s.begin = static_cast<Time>(get_u64(in));
    s.end = static_cast<Time>(get_u64(in));
    s.uid = get_u64(in);
    s.txn = get_u64(in);
    s.parent = get_u64(in);
    const std::uint32_t track_id = get_u32(in);
    const std::uint32_t name_id = get_u32(in);
    const std::uint32_t flags = get_u32(in);
    if (track_id >= names || name_id >= names) {
      throw std::runtime_error("trace analysis: flight name id out of range");
    }
    s.track = table[track_id];
    s.name = table[name_id];
    const std::uint32_t seg = flags & 0xff;
    const std::uint32_t cause = (flags >> 16) & 0xff;
    if (seg >= kNumSegments || cause >= kNumCohCauses) {
      throw std::runtime_error("trace analysis: corrupt flight record flags");
    }
    s.segment = static_cast<Segment>(seg);
    s.cause = static_cast<CohCause>(cause);
    out.spans_.push_back(std::move(s));
  }
  return out;
}

std::vector<TxnSummary> TraceAnalysis::transactions() const {
  std::map<std::uint64_t, TxnSummary> txns;
  // Roots first: the root span's extent is the end-to-end latency.
  for (const AnalyzedSpan& s : spans_) {
    if (s.txn == 0 || s.parent != 0) continue;
    TxnSummary& t = txns[s.txn];
    t.txn = s.txn;
    t.name = s.name;
    t.track = s.track;
    t.begin = s.begin;
    t.end = s.end;
    t.total = s.end - s.begin;
  }
  // Tagged leaves accumulate; container spans (kNone) only group.
  for (const AnalyzedSpan& s : spans_) {
    if (s.txn == 0 || s.segment == Segment::kNone) continue;
    auto it = txns.find(s.txn);
    if (it == txns.end()) continue;  // root fell out of the flight ring
    it->second.seg[static_cast<int>(s.segment)] += s.end - s.begin;
    if (s.segment == Segment::kCoherence) {
      it->second.coh[static_cast<int>(s.cause)] += s.end - s.begin;
    }
    ++it->second.spans;
  }
  std::vector<TxnSummary> out;
  out.reserve(txns.size());
  for (auto& [id, t] : txns) {
    Time accounted = 0;
    for (const Time v : t.seg) accounted += v;
    // Residual-to-other, same rule as Tracer::finalize_txn — the invariant
    // memscale-analyze (and the tests) rely on: sum(seg) == total, exactly.
    if (accounted <= t.total) {
      t.seg[static_cast<int>(Segment::kOther)] += t.total - accounted;
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<ComponentRow> TraceAnalysis::components() const {
  std::map<std::tuple<std::string, std::string, int>, ComponentRow> rows;
  for (const AnalyzedSpan& s : spans_) {
    if (s.txn == 0 || s.segment == Segment::kNone) continue;
    auto key = std::make_tuple(s.track, s.name, static_cast<int>(s.segment));
    ComponentRow& r = rows[key];
    if (r.count == 0) {
      r.track = s.track;
      r.name = s.name;
      r.segment = s.segment;
    }
    ++r.count;
    r.total += s.end - s.begin;
  }
  std::vector<ComponentRow> out;
  out.reserve(rows.size());
  for (auto& [key, r] : rows) out.push_back(std::move(r));
  std::sort(out.begin(), out.end(),
            [](const ComponentRow& a, const ComponentRow& b) {
              if (a.total != b.total) return a.total > b.total;
              if (a.track != b.track) return a.track < b.track;
              return a.name < b.name;
            });
  return out;
}

std::array<Time, kNumSegments> TraceAnalysis::segment_totals() const {
  std::array<Time, kNumSegments> totals{};
  for (const TxnSummary& t : transactions()) {
    for (int i = 0; i < kNumSegments; ++i) totals[i] += t.seg[i];
  }
  return totals;
}

std::array<Time, kNumCohCauses> TraceAnalysis::coherence_cause_totals()
    const {
  std::array<Time, kNumCohCauses> totals{};
  for (const TxnSummary& t : transactions()) {
    for (int i = 0; i < kNumCohCauses; ++i) totals[i] += t.coh[i];
  }
  return totals;
}

}  // namespace ms::sim
