#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ms::sim {

/// Counts accesses per 4 KiB page and reports the top-K hottest — the
/// congestion figures' "which pages drive mesh contention" view. Disabled
/// by default (one branch per record); benches enable it when a time-series
/// stream or hot-page report was requested.
class HotPageProfiler {
 public:
  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(std::uint64_t page) {
    if (!enabled_) return;
    ++counts_[page];
  }

  /// Top-K (page, count) pairs, hottest first; ties broken by ascending
  /// page so the output is deterministic.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> top(std::size_t k) const;

  std::size_t distinct_pages() const { return counts_.size(); }
  void reset() { counts_.clear(); }

 private:
  bool enabled_ = false;
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};

/// One periodic snapshot of instantaneous/cumulative gauges, taken at a
/// fixed sim-time interval while a bench data point runs.
struct TimeSeriesPoint {
  Time t = 0;
  /// Sorted by key before the point is stored, so the JSON is deterministic.
  std::vector<std::pair<std::string, double>> values;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hot_pages;
};

/// All snapshots of one bench data point (one labelled run).
struct TimeSeriesRun {
  std::string label;
  std::vector<TimeSeriesPoint> points;
};

/// The --timeseries-json stream: one run per bench data point.
class TimeSeries {
 public:
  TimeSeriesRun& start_run(std::string label) {
    runs_.push_back(TimeSeriesRun{std::move(label), {}});
    return runs_.back();
  }

  const std::vector<TimeSeriesRun>& runs() const { return runs_; }
  bool empty() const { return runs_.empty(); }

  /// {"interval_us":I,"runs":[{"label":L,"points":[{"t_us":T,
  ///  "values":{...},"hot_pages":[[page,count],...]}]}]} — deterministic.
  void dump_json(std::ostream& out, Time interval) const;

 private:
  std::vector<TimeSeriesRun> runs_;
};

}  // namespace ms::sim
