#include "sim/engine.hpp"

#include <cstdio>
#include <stdexcept>

namespace ms::sim {

void Engine::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("Engine::schedule_at: scheduling into the past");
  }
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

namespace {
// Awaitable that yields the current coroutine's handle without suspending.
struct SelfHandle {
  std::coroutine_handle<> h;
  bool await_ready() noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> current) noexcept {
    h = current;
    return false;  // resume immediately
  }
  std::coroutine_handle<> await_resume() noexcept { return h; }
};
}  // namespace

Engine::Detached Engine::drive(Task<void> task) {
  auto self = co_await SelfHandle{};
  ++live_;
  try {
    co_await std::move(task);
  } catch (...) {
    if (!first_error_) first_error_ = std::current_exception();
  }
  --live_;
  std::erase(drivers_, self);
}

void Engine::spawn(Task<void> task) {
  auto driver = drive(std::move(task));
  auto h = driver.handle;
  drivers_.push_back(h);
  schedule(0, [h] { h.resume(); });
}

Engine::~Engine() {
  // Destroy any process still suspended. Child task frames are owned by
  // their parents' locals, so destroying the driver frame unwinds the whole
  // chain. Handles left in component wait-lists are never resumed after
  // this point, so they cannot dangle into freed frames at runtime.
  for (auto h : drivers_) {
    if (h && !h.done()) h.destroy();
  }
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the event is moved out via const_cast,
  // which is safe because pop() immediately removes the moved-from element.
  auto& top = const_cast<Event&>(queue_.top());
  Time when = top.when;
  auto fn = std::move(top.fn);
  queue_.pop();
  now_ = when;
  ++events_processed_;
  fn();
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

Time Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace ms::sim
