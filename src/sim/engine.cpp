#include "sim/engine.hpp"

#include <stdexcept>

namespace ms::sim {

Engine::Engine() {
  for (int level = 0; level < kLevels; ++level) {
    const int nslots = level == 0 ? kL0Slots : kLevelSlots;
    levels_[level].slots.resize(static_cast<std::size_t>(nslots));
    levels_[level].occupied.resize(static_cast<std::size_t>(nslots / 64), 0);
  }
}

Engine::~Engine() {
  // Destroy payloads of events that never fired: heap-allocated callables
  // and inline captures are freed here (ASan's leak checker watches this).
  // Coroutine handles are non-owning — the frames belong to the drivers.
  for (auto& level : levels_) {
    for (auto& slot : level.slots) {
      for (EventNode* n = slot.head; n != nullptr; n = n->next) {
        if (n->destroy != nullptr) n->destroy(n);
      }
    }
  }
  // Destroy any process still suspended. Child task frames are owned by
  // their parents' locals, so destroying the driver frame unwinds the whole
  // chain. Handles left in component wait-lists are never resumed after
  // this point, so they cannot dangle into freed frames at runtime.
  for (auto h : drivers_) {
    if (h && !h.done()) h.destroy();
  }
}

Engine::EventNode* Engine::prepare(Time when) {
  if (when < now_) {
    throw std::logic_error("Engine::schedule_at: scheduling into the past");
  }
  EventNode* n = alloc_node();
  n->when = when;
  return n;
}

void Engine::commit(EventNode* n) {
  // Tie-fuzz decides head-vs-tail only at initial commit; cascades re-place
  // at the tail, preserving whatever same-timestamp order was decided here.
  place(n, tie_fuzz_ && (tie_rng_.next() & 1) != 0);
  ++size_;
}

Engine::EventNode* Engine::alloc_node() {
  if (free_ == nullptr) grow_pool();
  EventNode* n = free_;
  free_ = n->next;
  return n;
}

void Engine::grow_pool() {
  auto block = std::make_unique<EventNode[]>(kPoolBlock);
  for (std::size_t i = kPoolBlock; i-- > 0;) {
    EventNode& n = block[i];
    n.gen = 0;
    n.next = free_;
    free_ = &n;
  }
  blocks_.push_back(std::move(block));
}

namespace {
inline void set_bit(std::vector<std::uint64_t>& words, std::uint64_t& summary,
                    int s) {
  words[static_cast<std::size_t>(s >> 6)] |= std::uint64_t{1} << (s & 63);
  summary |= std::uint64_t{1} << (s >> 6);
}
inline void clear_bit(std::vector<std::uint64_t>& words,
                      std::uint64_t& summary, int s) {
  auto& w = words[static_cast<std::size_t>(s >> 6)];
  w &= ~(std::uint64_t{1} << (s & 63));
  if (w == 0) summary &= ~(std::uint64_t{1} << (s >> 6));
}
}  // namespace

void Engine::place(EventNode* n, bool front) {
  // The wheel is anchored at cursor_ <= every pending timestamp, so the
  // highest bit in which `when` differs from the cursor picks the level.
  const Time diff = n->when ^ cursor_;
  const int level = diff == 0 ? 0 : level_of_diff(diff);
  const int slot = static_cast<int>((n->when >> shift_of(level)) &
                                    ((Time{1} << bits_of(level)) - 1));
  n->level = static_cast<std::uint16_t>(level);
  n->slot = static_cast<std::uint16_t>(slot);
  Level& lv = levels_[level];
  Slot& sl = lv.slots[static_cast<std::size_t>(slot)];
  if (front && sl.head != nullptr) {
    // Tie-fuzz insertion: jump the slot's queue. Overflow slots mix
    // timestamps, but the cascade re-places each node by its own `when`,
    // so only same-timestamp relative order is affected.
    n->prev = nullptr;
    n->next = sl.head;
    sl.head->prev = n;
    sl.head = n;
    return;
  }
  n->prev = sl.tail;
  n->next = nullptr;
  if (sl.tail != nullptr) {
    sl.tail->next = n;
  } else {
    sl.head = n;
    set_bit(lv.occupied, lv.summary, slot);
  }
  sl.tail = n;
}

void Engine::unlink(EventNode* n) {
  Level& lv = levels_[n->level];
  Slot& sl = lv.slots[n->slot];
  if (n->prev != nullptr) n->prev->next = n->next; else sl.head = n->next;
  if (n->next != nullptr) n->next->prev = n->prev; else sl.tail = n->prev;
  if (sl.head == nullptr) clear_bit(lv.occupied, lv.summary, n->slot);
}

int Engine::find_occupied(const Level& l, int from) const {
  int word = from >> 6;
  const std::uint64_t bits = l.occupied[static_cast<std::size_t>(word)] &
                             (~std::uint64_t{0} << (from & 63));
  if (bits != 0) return (word << 6) + std::countr_zero(bits);
  if (word + 1 >= 64) return -1;
  const std::uint64_t sum = l.summary & (~std::uint64_t{0} << (word + 1));
  if (sum == 0) return -1;
  word = std::countr_zero(sum);
  return (word << 6) +
         std::countr_zero(l.occupied[static_cast<std::size_t>(word)]);
}

Engine::EventNode* Engine::pop_next(Time limit) {
  if (size_ == 0) return nullptr;
  for (;;) {
    // Near wheel: every level-0 event lies in the cursor's current 4096 ps
    // window, and every overflow event lies beyond it, so the first
    // occupied near slot at/after the cursor is the global minimum.
    {
      Level& l0 = levels_[0];
      const int start = static_cast<int>(cursor_ & (kL0Slots - 1));
      const int s = find_occupied(l0, start);
      if (s >= 0) {
        const Time t =
            (cursor_ & ~Time{kL0Slots - 1}) | static_cast<Time>(s);
        if (t > limit) return nullptr;
        cursor_ = t;
        Slot& sl = l0.slots[static_cast<std::size_t>(s)];
        EventNode* n = sl.head;
        sl.head = n->next;
        if (sl.head != nullptr) {
          sl.head->prev = nullptr;
        } else {
          sl.tail = nullptr;
          clear_bit(l0.occupied, l0.summary, s);
        }
        return n;
      }
    }
    // Near window exhausted: cascade the earliest occupied overflow slot.
    // Coarser levels hold strictly later events, so the lowest level with
    // an occupied slot at/after its cursor index is the one to open up.
    bool cascaded = false;
    for (int level = 1; level < kLevels; ++level) {
      Level& lv = levels_[level];
      const int idx = static_cast<int>((cursor_ >> shift_of(level)) &
                                       (kLevelSlots - 1));
      const int s = find_occupied(lv, idx);
      if (s < 0) continue;
      const int span = shift_of(level) + bits_of(level);
      const Time below =
          span >= 64 ? ~Time{0} : (Time{1} << span) - 1;
      const Time base =
          (cursor_ & ~below) | (static_cast<Time>(s) << shift_of(level));
      if (base > limit) return nullptr;
      // Move the whole slot, preserving list order so same-timestamp FIFO
      // survives the cascade; the nodes re-place against the new cursor.
      cursor_ = base;
      Slot& sl = lv.slots[static_cast<std::size_t>(s)];
      EventNode* n = sl.head;
      sl.head = sl.tail = nullptr;
      clear_bit(lv.occupied, lv.summary, s);
      while (n != nullptr) {
        EventNode* next = n->next;
        place(n);
        n = next;
      }
      cascaded = true;
      break;
    }
    if (!cascaded) return nullptr;  // unreachable while size_ > 0
  }
}

void Engine::fire(EventNode* n) {
  if (n->invoke == nullptr) {
    // Coroutine fast path: copy the handle out, recycle, resume.
    const auto h = n->payload.coro;
    recycle(n);
    h.resume();
  } else {
    n->invoke(this, n);  // moves the callable out and recycles the node
  }
}

bool Engine::cancel(TimerHandle& h) {
  EventNode* n = h.node_;
  h.node_ = nullptr;
  if (n == nullptr || n->gen != h.gen_) return false;  // fired or recycled
  unlink(n);
  if (n->destroy != nullptr) n->destroy(n);
  recycle(n);
  --size_;
  return true;
}

namespace {
// Awaitable that yields the current coroutine's handle without suspending.
struct SelfHandle {
  std::coroutine_handle<> h;
  bool await_ready() noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> current) noexcept {
    h = current;
    return false;  // resume immediately
  }
  std::coroutine_handle<> await_resume() noexcept { return h; }
};
}  // namespace

Engine::Detached Engine::drive(Task<void> task) {
  auto self = co_await SelfHandle{};
  ++live_;
  try {
    co_await std::move(task);
  } catch (...) {
    if (!first_error_) first_error_ = std::current_exception();
  }
  --live_;
  std::erase(drivers_, self);
}

void Engine::spawn(Task<void> task) {
  auto driver = drive(std::move(task));
  auto h = driver.handle;
  drivers_.push_back(h);
  schedule_resume(0, h);
}

bool Engine::step(Time limit) {
  EventNode* n = pop_next(limit);
  if (n == nullptr) return false;
  --size_;
  now_ = n->when;
  ++events_processed_;
  fire(n);
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  return true;
}

void Engine::run() {
  while (step(kTimeMax)) {
  }
}

Time Engine::run_until(Time deadline) {
  while (step(deadline)) {
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace ms::sim
