#pragma once

#include <sstream>
#include <string>

#include "sim/time.hpp"

namespace ms::sim {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Minimal leveled logger. Off above kInfo by default; the simulator's hot
/// paths guard trace logging behind enabled() so disabled logging costs one
/// branch. Output goes to stderr so bench tables on stdout stay clean.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);
  static bool enabled(LogLevel lvl) { return lvl >= level(); }
  static void write(LogLevel lvl, Time now, const std::string& msg);
};

#define MS_LOG(lvl, now, expr)                                   \
  do {                                                           \
    if (::ms::sim::Log::enabled(lvl)) {                          \
      std::ostringstream os_;                                    \
      os_ << expr;                                               \
      ::ms::sim::Log::write(lvl, now, os_.str());                \
    }                                                            \
  } while (0)

}  // namespace ms::sim
