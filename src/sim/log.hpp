#pragma once

#include <sstream>
#include <string>

#include "sim/time.hpp"

namespace ms::sim {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Destination for formatted log lines. A sink is installed per *thread*
/// (see Log::ScopedSink), so each concurrently running simulation instance
/// can own its log output; implementations are only ever called from the
/// thread they are installed on and need no internal locking.
class LogSink {
 public:
  virtual ~LogSink() = default;
  /// `formatted` is the complete line (no trailing newline), exactly what
  /// the default stderr sink would print.
  virtual void line(LogLevel lvl, Time now, const std::string& formatted) = 0;
};

/// Minimal leveled logger. Off above kInfo by default; the simulator's hot
/// paths guard trace logging behind enabled() so disabled logging costs one
/// branch. Output goes to stderr so bench tables on stdout stay clean.
///
/// Instance-safety (ARCHITECTURE.md §10): the level is a process-wide
/// atomic, and writes go either to the current thread's installed sink or,
/// by default, to stderr as one buffered write per line — so two Engines
/// running on different threads never interleave characters or race. A
/// parallel task that wants its log output attributed (or replayed in task
/// order) installs a Log::Capture for the duration of the task.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);
  static bool enabled(LogLevel lvl) { return lvl >= level(); }
  static void write(LogLevel lvl, Time now, const std::string& msg);

  /// Formats one line exactly as the stderr sink prints it (no newline).
  static std::string format_line(LogLevel lvl, Time now,
                                 const std::string& msg);

  /// RAII: routes the current thread's log lines to `sink`, restoring the
  /// previous routing on destruction. Passing nullptr restores the default
  /// stderr sink for the scope.
  class ScopedSink {
   public:
    explicit ScopedSink(LogSink* sink);
    ~ScopedSink();
    ScopedSink(const ScopedSink&) = delete;
    ScopedSink& operator=(const ScopedSink&) = delete;

   private:
    LogSink* prev_;
  };

  /// Captures the current thread's log lines into a string for the scope's
  /// lifetime. The sweep runner wraps every parallel task in one of these
  /// so per-task logs can be emitted in task order instead of interleaved.
  class Capture : public LogSink {
   public:
    Capture() : scoped_(this) {}
    void line(LogLevel, Time, const std::string& formatted) override {
      text_ += formatted;
      text_ += '\n';
    }
    const std::string& text() const { return text_; }

   private:
    std::string text_;
    ScopedSink scoped_;
  };
};

#define MS_LOG(lvl, now, expr)                                   \
  do {                                                           \
    if (::ms::sim::Log::enabled(lvl)) {                          \
      std::ostringstream os_;                                    \
      os_ << expr;                                               \
      ::ms::sim::Log::write(lvl, now, os_.str());                \
    }                                                            \
  } while (0)

}  // namespace ms::sim
