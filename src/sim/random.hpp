#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace ms::sim {

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG (Blackman & Vigna).
///
/// Header-only and deterministic across platforms, unlike std::mt19937_64
/// whose distribution adapters are implementation-defined. Every workload
/// takes an explicit seed so figure runs replay exactly.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the single seed word into the full state.
    auto splitmix = [&seed] {
      std::uint64_t z = (seed += 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = splitmix();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

  /// Exponential variate with the given mean (for arrival processes).
  double exponential(double mean) {
    // Inverse-CDF; uniform() < 1 so the log argument is never zero... but it
    // can be zero from the other side: guard the open interval explicitly.
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(1.0 - u);
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ms::sim
