#pragma once

#include <cstddef>
#include <cstdint>

namespace ms::sim {

/// Thread-local slab recycler for coroutine frames.
///
/// Every simulated activity is a Task<T> coroutine, so the engine's hot
/// loop is dominated by frame allocate/free pairs of a handful of distinct
/// sizes. The pool rounds requests up to 64-byte size classes and keeps a
/// per-class freelist of recycled frames carved out of 64 KiB slab blocks;
/// steady state serves every frame with a pop/push and never touches the
/// system allocator. Oversize requests (beyond kMaxPooled) fall through to
/// ::operator new and are counted separately.
///
/// The pool is thread_local, which is exactly the instance-safety contract
/// of ParallelExecutor (ARCHITECTURE.md: one engine instance per host
/// thread, no cross-thread simulator state): a frame is always freed on
/// the thread that allocated it because a coroutine runs and finishes on
/// its engine's thread. Slabs live until thread exit; memory is recycled,
/// not returned.
///
/// Under AddressSanitizer the freelist payloads are poisoned between uses
/// so stale-frame reads are still caught; the freelists themselves store
/// the chain in a side vector rather than threading pointers through the
/// (poisoned) payload.
class FramePool {
 public:
  static constexpr std::size_t kAlign = 64;          ///< class granularity
  static constexpr std::size_t kMaxPooled = 2048;    ///< beyond: plain heap
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  static void* allocate(std::size_t bytes);
  static void deallocate(void* p, std::size_t bytes) noexcept;

  /// Frames served from a freelist or fresh slab carve (lifetime total,
  /// summed over all host threads that ran an engine).
  static std::uint64_t frames_pooled();
  /// Frames that bypassed the pool to the system heap (oversize).
  static std::uint64_t frames_heap();
};

}  // namespace ms::sim
