#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ms::sim {

/// One recorded invariant failure: which checker fired, what it saw, and
/// when (simulated time). `at_drain` distinguishes an epoch-boundary check
/// from the final check after the event queue drained.
struct InvariantViolation {
  std::string name;
  std::string detail;
  Time when = 0;
  bool at_drain = false;
};

/// Context handed to every checker; fail() records a violation without
/// aborting the run, so one sweep reports every broken invariant at once.
class InvariantContext {
 public:
  void fail(std::string detail);
  Time now() const { return now_; }
  bool at_drain() const { return at_drain_; }

 private:
  friend class InvariantRegistry;
  InvariantContext(class InvariantRegistry& reg, std::string name, Time now,
                   bool at_drain)
      : reg_(reg), name_(std::move(name)), now_(now), at_drain_(at_drain) {}
  InvariantRegistry& reg_;
  std::string name_;
  Time now_;
  bool at_drain_;
};

/// Registry of cluster-wide consistency checkers for the fuzzing harness.
///
/// Checkers are plain polling functions over component state — nothing is
/// wired into simulation hot paths, so an empty registry costs the
/// production code zero branches. Epoch-safe checkers run at configurable
/// epoch boundaries *and* at drain; drain-only checkers express invariants
/// that only hold once the event queue is empty (credit conservation,
/// packet conservation), when no transaction is mid-flight.
class InvariantRegistry {
 public:
  using Checker = std::function<void(InvariantContext&)>;

  /// Registers a checker that runs at every epoch boundary and at drain.
  void add(std::string name, Checker fn) {
    items_.push_back({std::move(name), std::move(fn), /*drain_only=*/false});
  }

  /// Registers a checker that runs only at drain.
  void add_drain_only(std::string name, Checker fn) {
    items_.push_back({std::move(name), std::move(fn), /*drain_only=*/true});
  }

  bool empty() const { return items_.empty(); }

  /// Runs every eligible checker once. Returns the number of *new*
  /// violations recorded by this sweep. Cheap no-op when empty.
  std::size_t check_all(Time now, bool at_drain);

  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  void clear_violations() { violations_.clear(); }
  std::uint64_t checks_run() const { return checks_run_; }

  /// Caps recorded violations so a hopelessly broken run stays readable.
  void set_max_violations(std::size_t n) { max_violations_ = n; }

 private:
  friend class InvariantContext;
  struct Item {
    std::string name;
    Checker fn;
    bool drain_only;
  };
  std::vector<Item> items_;
  std::vector<InvariantViolation> violations_;
  std::size_t max_violations_ = 64;
  std::uint64_t checks_run_ = 0;
};

}  // namespace ms::sim
