#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ms::sim {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  /// Shard combine: counters add. Exact and order-independent.
  void merge(const Counter& o) { value_ += o.value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// HDR-style log-bucketed histogram: values up to 2^(kSubBits+1) are counted
/// exactly, larger ones land in one of 2^kSubBits linear sub-buckets per
/// power of two, bounding the relative quantile error at 2^-kSubBits
/// (~6%). Cheap enough to leave always-on in the hot memory path (one
/// bit-scan plus an increment per sample), precise enough for the
/// p50/p99/p999 latency-distribution reporting every figure needs.
class Histogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Buckets 0..2*kSubBuckets-1 are exact; each further power of two
  /// contributes kSubBuckets buckets, up to the top bit of uint64.
  static constexpr int kBuckets = (64 - kSubBits + 1) * kSubBuckets;

  /// Maps a value to its bucket index (exposed for boundary tests).
  static int bucket_for(std::uint64_t v);
  /// Inclusive lower / exclusive upper value bound of bucket `b`.
  static std::uint64_t bucket_lo(int b);
  static std::uint64_t bucket_hi(int b);

  void add(std::uint64_t v);
  /// Doubles (Sampler feed): negatives clamp to zero, huge values saturate.
  void add_double(double v);
  void add_time(Time t) { add(static_cast<std::uint64_t>(t)); }

  std::uint64_t count() const { return total_; }
  std::uint64_t bucket_count(int b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }
  /// Approximate quantile (q in [0,1]) assuming uniform density per bucket.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }
  double max_value() const;
  std::string render(int max_width = 50) const;
  /// {"count":N,"p50":...,"buckets":[[lo,count],...]} — nonzero buckets only.
  void dump_json(std::ostream& out) const;
  void reset();

  /// Shard combine: bucketwise sum. All histograms share one bucket layout,
  /// so merging K shards in any order yields exactly the histogram a single
  /// instance fed every sample would hold — merged quantiles carry only the
  /// usual per-bucket interpolation error (bounded by 2^-kSubBits relative),
  /// never additional merge error. tests/sweep_test.cpp holds this property.
  void merge(const Histogram& o);

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

/// Streaming sample statistics (Welford) plus an embedded log-bucketed
/// histogram, so every latency call-site that feeds a Sampler gets
/// percentiles for free.
class Sampler {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
    hist_.add_double(x);
  }
  void add_time(Time t) { add(static_cast<double>(t)); }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double quantile(double q) const { return hist_.quantile(q); }
  double p50() const { return hist_.p50(); }
  double p90() const { return hist_.p90(); }
  double p99() const { return hist_.p99(); }
  double p999() const { return hist_.p999(); }
  const Histogram& histogram() const { return hist_; }
  void reset() { *this = Sampler{}; }

  /// Shard combine (Chan's parallel Welford). count, sum, min, max and the
  /// histogram (hence all quantiles) merge exactly; mean and variance are
  /// exact up to floating-point rounding, so merge order perturbs them only
  /// at the last few ulps (~1e-15 relative per combine — the merge property
  /// test bounds the total at 1e-9 relative).
  void merge(const Sampler& o);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  Histogram hist_;
};

/// Formats a double for the JSON dump: shortest round-trippable decimal,
/// so two runs producing bit-identical doubles dump byte-identical JSON.
std::string json_double(double v);

/// Named registry so components can export their stats for reports/tests.
/// Ownership of values stays with the registry; components hold references.
class StatRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Sampler& sampler(const std::string& name) { return samplers_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Sampler>& samplers() const { return samplers_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Value of a counter, or 0 when absent (convenient in assertions).
  std::uint64_t counter_value(const std::string& name) const;

  std::string report() const;
  /// Machine-readable dump: {"counters":{...},"samplers":{...},
  /// "histograms":{...}}. Iteration order is the map's sorted key order and
  /// doubles print shortest-round-trip, so identical stats dump
  /// byte-identical JSON — the determinism tests rely on this.
  void dump_json(std::ostream& out) const;
  void reset();

  /// Union-merge another registry into this one: same-name counters add,
  /// samplers and histograms shard-combine, names only in `o` are copied.
  /// The sweep runner uses this to aggregate per-run registries into one
  /// report; merging K shards in any order equals the single-shot registry
  /// (up to Sampler's documented mean/variance rounding).
  void merge(const StatRegistry& o);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Sampler> samplers_;
  std::map<std::string, Histogram> histograms_;
};

/// The nonzero-only export convention (ARCHITECTURE.md §7): optional or
/// off-by-default instruments emit a key only when they actually recorded
/// something, so configurations that never exercise them keep
/// byte-identical stats output. Every component's export_stats goes
/// through these helpers instead of hand-rolled `if (x > 0)` copies.
inline void export_counter_nonzero(StatRegistry& reg, const std::string& name,
                                   std::uint64_t value) {
  if (value > 0) reg.counter(name).inc(value);
}

inline void export_sampler_nonzero(StatRegistry& reg, const std::string& name,
                                   const Sampler& s) {
  if (s.count() > 0) reg.sampler(name) = s;
}

}  // namespace ms::sim
