#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ms::sim {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Streaming sample statistics (Welford) for latency-like values.
class Sampler {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }
  void add_time(Time t) { add(static_cast<double>(t)); }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void reset() { *this = Sampler{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucketed histogram; cheap enough to leave always-on in the
/// hot memory path, precise enough for latency-distribution reporting.
class Histogram {
 public:
  void add(std::uint64_t v);
  std::uint64_t count() const { return total_; }
  /// Approximate quantile (q in [0,1]) assuming uniform density per bucket.
  double quantile(double q) const;
  std::string render(int max_width = 50) const;
  void reset();

 private:
  static constexpr int kBuckets = 64;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

/// Named registry so components can export their stats for reports/tests.
/// Ownership of values stays with the registry; components hold references.
class StatRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Sampler& sampler(const std::string& name) { return samplers_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Sampler>& samplers() const { return samplers_; }

  /// Value of a counter, or 0 when absent (convenient in assertions).
  std::uint64_t counter_value(const std::string& name) const;

  std::string report() const;
  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Sampler> samplers_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ms::sim
