#include "sim/config.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace ms::sim {

Config Config::from_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("expected key=value argument, got: " + tok);
    }
    cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
  }
  return cfg;
}

std::string Config::get_str(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

std::uint64_t Config::get_u64(const std::string& key, std::uint64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_size(it->second);
}

double Config::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("not a boolean: " + key + "=" + v);
}

std::string Config::dump() const {
  std::ostringstream out;
  for (const auto& [k, v] : values_) out << k << "=" << v << " ";
  return out.str();
}

std::uint64_t parse_size(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("empty size");
  std::size_t pos = 0;
  std::uint64_t base = std::stoull(text, &pos);
  std::uint64_t mult = 1;
  if (pos < text.size()) {
    switch (text[pos]) {
      case 'k': case 'K': mult = 1ULL << 10; break;
      case 'm': case 'M': mult = 1ULL << 20; break;
      case 'g': case 'G': mult = 1ULL << 30; break;
      case 't': case 'T': mult = 1ULL << 40; break;
      default:
        throw std::invalid_argument("bad size suffix in: " + text);
    }
  }
  return base * mult;
}

}  // namespace ms::sim
