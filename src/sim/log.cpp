#include "sim/log.hpp"

#include <cstdio>

namespace ms::sim {

namespace {
LogLevel g_level = LogLevel::kWarn;
const char* name_of(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

std::string format_time(Time t) {
  char buf[64];
  if (t < ns(10)) {
    std::snprintf(buf, sizeof buf, "%llu ps", static_cast<unsigned long long>(t));
  } else if (t < us(10)) {
    std::snprintf(buf, sizeof buf, "%.1f ns", to_ns(t));
  } else if (t < ms_(10)) {
    std::snprintf(buf, sizeof buf, "%.2f us", to_us(t));
  } else if (t < sec(10)) {
    std::snprintf(buf, sizeof buf, "%.2f ms", to_ms(t));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", to_sec(t));
  }
  return buf;
}

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel lvl) { g_level = lvl; }

void Log::write(LogLevel lvl, Time now, const std::string& msg) {
  std::fprintf(stderr, "[%s %s] %s\n", name_of(lvl), format_time(now).c_str(),
               msg.c_str());
}

}  // namespace ms::sim
