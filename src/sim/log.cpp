#include "sim/log.hpp"

#include <atomic>
#include <cstdio>

namespace ms::sim {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
thread_local LogSink* t_sink = nullptr;

const char* name_of(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

std::string format_time(Time t) {
  char buf[64];
  if (t < ns(10)) {
    std::snprintf(buf, sizeof buf, "%llu ps", static_cast<unsigned long long>(t));
  } else if (t < us(10)) {
    std::snprintf(buf, sizeof buf, "%.1f ns", to_ns(t));
  } else if (t < ms_(10)) {
    std::snprintf(buf, sizeof buf, "%.2f us", to_us(t));
  } else if (t < sec(10)) {
    std::snprintf(buf, sizeof buf, "%.2f ms", to_ms(t));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", to_sec(t));
  }
  return buf;
}

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }
void Log::set_level(LogLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
}

std::string Log::format_line(LogLevel lvl, Time now, const std::string& msg) {
  return std::string("[") + name_of(lvl) + " " + format_time(now) + "] " + msg;
}

void Log::write(LogLevel lvl, Time now, const std::string& msg) {
  const std::string line = format_line(lvl, now, msg);
  if (t_sink != nullptr) {
    t_sink->line(lvl, now, line);
    return;
  }
  // One fwrite of the whole line: stdio locks the stream per call, so
  // concurrent writers from other threads never interleave mid-line.
  const std::string out = line + "\n";
  std::fwrite(out.data(), 1, out.size(), stderr);
}

Log::ScopedSink::ScopedSink(LogSink* sink) : prev_(t_sink) { t_sink = sink; }
Log::ScopedSink::~ScopedSink() { t_sink = prev_; }

}  // namespace ms::sim
