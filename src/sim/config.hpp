#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ms::sim {

/// Flat key=value configuration store with typed getters.
///
/// Benches and examples accept overrides on the command line
/// ("bench_fig7 nodes=16 threads=4"); modules read their constants through
/// this object so every run can print exactly the configuration it used.
class Config {
 public:
  Config() = default;

  /// Parses "key=value" tokens; unrecognized tokens throw.
  static Config from_args(int argc, char** argv);

  void set(const std::string& key, const std::string& value) { values_[key] = value; }
  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get_str(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  std::string dump() const;

 private:
  std::map<std::string, std::string> values_;
};

/// Parses human-friendly sizes: "4096", "64K", "8M", "2G" (binary multiples).
std::uint64_t parse_size(const std::string& text);

}  // namespace ms::sim
