#pragma once

#include <string>
#include <vector>

namespace ms::sim {

/// Column-aligned text table with optional CSV export.
///
/// Every bench binary prints one of these per paper figure so the output can
/// be compared to the figure's series directly, and optionally dumped as CSV
/// for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row of pre-formatted cells; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience row builder mixing strings and numbers.
  class RowBuilder {
   public:
    RowBuilder(Table& t) : table_(t) {}
    RowBuilder& cell(const std::string& v);
    RowBuilder& cell(double v, int precision = 2);
    RowBuilder& cell(std::uint64_t v);
    RowBuilder& cell(std::int64_t v);
    RowBuilder& cell(int v) { return cell(static_cast<std::int64_t>(v)); }
    ~RowBuilder();

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  std::string render() const;
  std::string csv() const;
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ms::sim
