#pragma once

#include <bit>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace ms::sim {

class Tracer;

/// Discrete-event simulation engine.
///
/// The scheduler core is a hierarchical timing wheel: a fine near wheel
/// (4096 slots of 1 ps) plus coarser overflow wheels (256 slots each, the
/// top one covering the full 64-bit range). Insert, pop and cancel are O(1)
/// amortized — an event parked in an overflow wheel is re-distributed
/// ("cascaded") into finer wheels when simulated time enters its window,
/// at most once per level.
///
/// Events are intrusive pool-allocated nodes; the pool grows in blocks and
/// nodes are recycled, so steady-state scheduling performs no heap
/// allocation. The callback lives inside the node: a coroutine handle (the
/// dominant event type — every suspension point resumes through
/// schedule_resume), or a callable stored in-place when it fits
/// kInlinePayload bytes. Only a callable larger than that falls back to one
/// heap allocation.
///
/// Firing order is exactly the (timestamp, schedule-order) order of a
/// binary-heap scheduler: ties in timestamp are broken FIFO (slots are
/// appended to and drained from the front, and cascades preserve list
/// order), so runs are fully deterministic and bit-identical to the
/// pre-wheel engine. tests/engine_stress_test.cpp proves the equivalence
/// against a retained reference heap scheduler under randomized
/// schedule/cancel/spawn workloads.
///
/// Single-threaded by design: a simulation at this granularity is dominated
/// by pointer-chasing through component state, and determinism is worth more
/// than parallel speedup (cf. the reproducibility requirements of the
/// benchmarks — every figure must be replayable bit-for-bit).
class Engine {
  struct EventNode;  // defined below; opaque to users

 public:
  /// Ticket for a scheduled event, returned by every schedule variant.
  /// Cancellation is O(1); a handle outliving its event (fired, cancelled,
  /// or its node recycled for a new event) is detected by generation and
  /// cancel() becomes a safe no-op.
  class TimerHandle {
   public:
    TimerHandle() = default;
    /// True if the handle was ever bound to an event (it may have fired
    /// since; cancel() reports whether it was still pending).
    explicit operator bool() const noexcept { return node_ != nullptr; }

   private:
    friend class Engine;
    TimerHandle(EventNode* n, std::uint64_t g) : node_(n), gen_(g) {}
    EventNode* node_ = nullptr;
    std::uint64_t gen_ = 0;
  };

  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` to run `delay` after the current time.
  template <typename F>
  TimerHandle schedule(Time delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `when` (must be >= now()). The callable
  /// is stored inside the event node when `sizeof(fn) <= kInlinePayload`;
  /// larger callables cost one heap allocation.
  template <typename F>
  TimerHandle schedule_at(Time when, F&& fn) {
    using D = std::decay_t<F>;
    EventNode* n = prepare(when);
    if constexpr (sizeof(D) <= kInlinePayload &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(n->payload.inline_buf))
          D(std::forward<F>(fn));
      n->invoke = &invoke_inline<D>;
      n->destroy =
          std::is_trivially_destructible_v<D> ? nullptr : &destroy_inline<D>;
    } else {
      n->payload.heap_obj = new D(std::forward<F>(fn));
      n->invoke = &invoke_heap<D>;
      n->destroy = &destroy_heap<D>;
    }
    commit(n);
    return TimerHandle{n, n->gen};
  }

  /// Allocation-free fast path: resume a coroutine after `delay`. This is
  /// what every suspension primitive (delay, Semaphore, Trigger, WaitGroup,
  /// Mailbox) and spawn() use.
  TimerHandle schedule_resume(Time delay, std::coroutine_handle<> h) {
    return schedule_resume_at(now_ + delay, h);
  }

  /// Allocation-free fast path, absolute-time variant.
  TimerHandle schedule_resume_at(Time when, std::coroutine_handle<> h) {
    EventNode* n = prepare(when);
    n->invoke = nullptr;  // coroutine fast path
    n->destroy = nullptr;
    n->payload.coro = h;
    commit(n);
    return TimerHandle{n, n->gen};
  }

  /// Cancels a pending timer in O(1). Returns true if the event was still
  /// pending (it will never fire and its node returns to the pool); false
  /// if it already fired, was already cancelled, or the handle is empty.
  /// The handle is reset either way, so double-cancel is a safe no-op.
  bool cancel(TimerHandle& h);

  /// Starts a simulated process. The engine takes ownership of the coroutine
  /// frame; the first resumption happens through the event queue at the
  /// current time, so spawning mid-run is deterministic.
  void spawn(Task<void> task);

  /// Runs until the event queue is empty. Throws the first exception that
  /// escaped any process.
  void run();

  /// Runs until the queue is empty or simulated time would exceed `deadline`.
  /// Returns the time at which the run stopped.
  Time run_until(Time deadline);

  /// Number of spawned processes that have not yet finished. After run()
  /// returns this should normally be zero; a nonzero value means processes
  /// are blocked forever (deadlock) — tests assert on it.
  int live_processes() const { return live_; }

  std::uint64_t events_processed() const { return events_processed_; }

  /// Events scheduled but not yet fired or cancelled.
  std::size_t pending_events() const { return size_; }

  /// Event nodes ever allocated (pool capacity; grows in blocks of
  /// kPoolBlock and never shrinks before destruction). Tests use this to
  /// assert that cancelled timers recycle their nodes.
  std::size_t allocated_nodes() const { return blocks_.size() * kPoolBlock; }

  /// Optional timeline tracer (see sim/tracer.hpp). Instrumented components
  /// check this pointer on their hot paths; when no tracer is installed the
  /// whole observability layer costs one predictable branch per span site.
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }

  /// Schedule-perturbation hook for the fuzzing harness: with tie-fuzz on,
  /// each newly committed event lands at the head or the tail of its wheel
  /// slot on a seeded coin flip, randomizing the relative order of
  /// *same-timestamp* events while leaving cross-timestamp order untouched.
  /// Cascades keep their tail-append, so an order once decided survives
  /// wheel promotion. Fully deterministic for a given seed; when off (the
  /// default) the path is bit-identical to the FIFO engine and the RNG is
  /// never advanced, so golden-output tests stay byte-identical.
  void set_tie_fuzz(std::uint64_t seed) {
    tie_fuzz_ = true;
    tie_rng_.reseed(seed);
  }
  void clear_tie_fuzz() { tie_fuzz_ = false; }
  bool tie_fuzz_enabled() const { return tie_fuzz_; }

  /// Awaitable: suspends the current process for `d` simulated time.
  struct DelayAwaiter {
    Engine* engine;
    Time delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->schedule_resume(delay, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(Time d) { return DelayAwaiter{this, d}; }

  /// Largest callable stored inside an event node without heap allocation.
  static constexpr std::size_t kInlinePayload = 48;

 private:
  // ---- timing-wheel geometry ----
  // Level 0: 2^12 slots of 2^0 ps (covers 4.1 ns — most inter-event gaps).
  // Levels 1..7: 2^8 slots each, geometrically coarser; level 7's span caps
  // at bit 63, so the eight levels cover the full 64-bit time range.
  static constexpr int kLevels = 8;
  static constexpr int kL0Bits = 12;
  static constexpr int kLevelBits = 8;
  static constexpr int kL0Slots = 1 << kL0Bits;
  static constexpr int kLevelSlots = 1 << kLevelBits;
  static constexpr std::size_t kPoolBlock = 256;

  static constexpr int shift_of(int level) {
    return level == 0 ? 0 : kL0Bits + kLevelBits * (level - 1);
  }
  static constexpr int bits_of(int level) {
    return level == 0 ? kL0Bits : kLevelBits;
  }
  static int level_of_diff(Time diff) {
    // Highest differing bit decides the wheel level; diff != 0.
    const int hi = 63 - std::countl_zero(diff);
    if (hi < kL0Bits) return 0;
    const int level = 1 + (hi - kL0Bits) / kLevelBits;
    return level < kLevels ? level : kLevels - 1;
  }

  struct EventNode {
    EventNode* prev;
    EventNode* next;
    Time when;
    std::uint64_t gen;  // bumped on every recycle; guards stale handles
    // invoke == nullptr marks the coroutine fast path. For callables,
    // invoke() moves the payload out, recycles the node and calls it;
    // destroy() (nullable: trivially destructible payload) is used only
    // when the event dies without firing (cancel / engine teardown).
    void (*invoke)(Engine*, EventNode*);
    void (*destroy)(EventNode*);
    std::uint16_t level;
    std::uint16_t slot;
    union Payload {
      Payload() {}  // members are managed manually via invoke/destroy
      std::coroutine_handle<> coro;
      void* heap_obj;
      alignas(std::max_align_t) unsigned char inline_buf[kInlinePayload];
    } payload;
  };

  struct Slot {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };
  struct Level {
    std::vector<Slot> slots;
    std::vector<std::uint64_t> occupied;  // one bit per slot
    std::uint64_t summary = 0;            // one bit per occupied word
  };

  template <typename F>
  static void invoke_inline(Engine* e, EventNode* n) {
    F* f = std::launder(reinterpret_cast<F*>(n->payload.inline_buf));
    F local(std::move(*f));
    f->~F();
    e->recycle(n);
    local();
  }
  template <typename F>
  static void destroy_inline(EventNode* n) {
    std::launder(reinterpret_cast<F*>(n->payload.inline_buf))->~F();
  }
  template <typename F>
  static void invoke_heap(Engine* e, EventNode* n) {
    std::unique_ptr<F> f(static_cast<F*>(n->payload.heap_obj));
    e->recycle(n);
    (*f)();
  }
  template <typename F>
  static void destroy_heap(EventNode* n) {
    delete static_cast<F*>(n->payload.heap_obj);
  }

  // Detached driver coroutine: runs `task` to completion and self-destroys.
  struct Detached {
    struct promise_type {
      Detached get_return_object() {
        return {std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() { std::terminate(); }
    };
    std::coroutine_handle<promise_type> handle;
  };
  Detached drive(Task<void> task);

  EventNode* prepare(Time when);  // validates `when`, takes a pool node
  void commit(EventNode* n);      // places the node and grows size_
  void place(EventNode* n, bool front = false);
  void unlink(EventNode* n);
  void recycle(EventNode* n) {
    ++n->gen;
    n->next = free_;
    free_ = n;
  }
  EventNode* alloc_node();
  void grow_pool();
  EventNode* pop_next(Time limit);  // null if empty or next event > limit
  int find_occupied(const Level& l, int from) const;
  void fire(EventNode* n);
  bool step(Time limit);  // pops and runs one event; false when none <= limit

  Time now_ = 0;
  bool tie_fuzz_ = false;
  Rng tie_rng_{0};
  // Wheel cursor: lower bound on the next pending event's timestamp. It can
  // run ahead of now_ only transiently inside pop_next (never observable by
  // user code) and never past a run_until deadline.
  Time cursor_ = 0;
  Tracer* tracer_ = nullptr;
  // Driver frames still suspended; destroyed (recursively, through their
  // owned child tasks) if the engine dies before they finish.
  std::vector<std::coroutine_handle<>> drivers_;
  std::uint64_t events_processed_ = 0;
  std::size_t size_ = 0;
  int live_ = 0;
  std::exception_ptr first_error_;
  Level levels_[kLevels];
  std::vector<std::unique_ptr<EventNode[]>> blocks_;
  EventNode* free_ = nullptr;
};

/// RAII guard that cancels a pending timer when the scope exits. Safe across
/// co_await points (it lives in the coroutine frame) and safe when the timer
/// has already fired — cancel degrades to a no-op then. Used for watchdog
/// timeouts: arm, do the guarded work, and let scope exit disarm.
class ScopedTimer {
 public:
  ScopedTimer() = default;
  ScopedTimer(Engine& engine, Engine::TimerHandle h)
      : engine_(&engine), handle_(h) {}
  ScopedTimer(ScopedTimer&& o) noexcept
      : engine_(std::exchange(o.engine_, nullptr)), handle_(o.handle_) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ScopedTimer& operator=(ScopedTimer&&) = delete;
  ~ScopedTimer() {
    if (engine_ != nullptr) engine_->cancel(handle_);
  }

  /// Cancels the timer now (e.g. a stall watchdog that must stop ticking
  /// once the guarded wait — not the whole scope — ends). Idempotent; the
  /// destructor still covers early-exit paths before this point.
  void disarm() {
    if (engine_ != nullptr) engine_->cancel(handle_);
  }

 private:
  Engine* engine_ = nullptr;
  Engine::TimerHandle handle_;
};

}  // namespace ms::sim
