#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace ms::sim {

class Tracer;

/// Discrete-event simulation engine.
///
/// The engine owns a time-ordered event queue. Events are plain callbacks;
/// simulated processes are Task<void> coroutines spawned onto the engine,
/// whose suspension points (Delay, Semaphore, Mailbox, ...) schedule their
/// own resumption as events. Ties in timestamp are broken FIFO by a sequence
/// number, so runs are fully deterministic.
///
/// Single-threaded by design: a simulation at this granularity is dominated
/// by pointer-chasing through component state, and determinism is worth more
/// than parallel speedup (cf. the reproducibility requirements of the
/// benchmarks — every figure must be replayable bit-for-bit).
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` to run `delay` after the current time.
  void schedule(Time delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  void schedule_at(Time when, std::function<void()> fn);

  /// Starts a simulated process. The engine takes ownership of the coroutine
  /// frame; the first resumption happens through the event queue at the
  /// current time, so spawning mid-run is deterministic.
  void spawn(Task<void> task);

  /// Runs until the event queue is empty. Throws the first exception that
  /// escaped any process.
  void run();

  /// Runs until the queue is empty or simulated time would exceed `deadline`.
  /// Returns the time at which the run stopped.
  Time run_until(Time deadline);

  /// Number of spawned processes that have not yet finished. After run()
  /// returns this should normally be zero; a nonzero value means processes
  /// are blocked forever (deadlock) — tests assert on it.
  int live_processes() const { return live_; }

  std::uint64_t events_processed() const { return events_processed_; }

  /// Optional timeline tracer (see sim/tracer.hpp). Instrumented components
  /// check this pointer on their hot paths; when no tracer is installed the
  /// whole observability layer costs one predictable branch per span site.
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }

  /// Awaitable: suspends the current process for `d` simulated time.
  struct DelayAwaiter {
    Engine* engine;
    Time delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->schedule(delay, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(Time d) { return DelayAwaiter{this, d}; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Detached driver coroutine: runs `task` to completion and self-destroys.
  struct Detached {
    struct promise_type {
      Detached get_return_object() {
        return {std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() { std::terminate(); }
    };
    std::coroutine_handle<promise_type> handle;
  };
  Detached drive(Task<void> task);

  bool step();  // pops and runs one event; returns false when queue empty

  Time now_ = 0;
  Tracer* tracer_ = nullptr;
  // Driver frames still suspended; destroyed (recursively, through their
  // owned child tasks) if the engine dies before they finish.
  std::vector<std::coroutine_handle<>> drivers_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  int live_ = 0;
  std::exception_ptr first_error_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
};

}  // namespace ms::sim
