#include "sim/timeseries.hpp"

#include <algorithm>

#include "sim/stats.hpp"

namespace ms::sim {

std::vector<std::pair<std::uint64_t, std::uint64_t>> HotPageProfiler::top(
    std::size_t k) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> all(counts_.begin(),
                                                           counts_.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

void TimeSeries::dump_json(std::ostream& out, Time interval) const {
  out << "{\"interval_us\":" << json_double(to_us(interval)) << ",\"runs\":[";
  bool first_run = true;
  for (const TimeSeriesRun& run : runs_) {
    out << (first_run ? "\n" : ",\n");
    first_run = false;
    out << "{\"label\":\"" << run.label << "\",\"points\":[";
    bool first_pt = true;
    for (const TimeSeriesPoint& pt : run.points) {
      out << (first_pt ? "\n" : ",\n");
      first_pt = false;
      out << "{\"t_us\":" << json_double(to_us(pt.t)) << ",\"values\":{";
      bool first_v = true;
      for (const auto& [k, v] : pt.values) {
        if (!first_v) out << ",";
        first_v = false;
        out << "\"" << k << "\":" << json_double(v);
      }
      out << "},\"hot_pages\":[";
      bool first_h = true;
      for (const auto& [page, count] : pt.hot_pages) {
        if (!first_h) out << ",";
        first_h = false;
        out << "[" << page << "," << count << "]";
      }
      out << "]}";
    }
    out << "\n]}";
  }
  out << "\n]}\n";
}

}  // namespace ms::sim
