#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ms::sim {

/// Bounded worker pool for running many *isolated* simulations concurrently.
///
/// The simulator itself stays single-threaded by design (see Engine): one
/// Engine, its Cluster and everything hanging off them belong to exactly one
/// task on exactly one thread. The executor parallelizes across full
/// simulation instances — sweep cells, fuzz episodes — which share no
/// mutable state (the instance-safety contract in ARCHITECTURE.md §10).
///
/// map() collects results in task-index order regardless of completion
/// order, so a parallel sweep produces byte-identical reports to a serial
/// one; tests/sweep_test.cpp holds that golden.
class ParallelExecutor {
 public:
  /// jobs <= 0 selects default_jobs(). The pool is created immediately and
  /// persists across map() calls.
  explicit ParallelExecutor(int jobs = 0);
  ~ParallelExecutor();
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  int jobs() const { return jobs_; }

  /// Hardware concurrency, at least 1 (hardware_concurrency() may be 0).
  static int default_jobs();

  /// Called after each task of a map() completes, with (done, total).
  /// Invocations are serialized; keep it cheap (progress lines).
  using Progress = std::function<void(std::size_t, std::size_t)>;

  /// Runs fn(0) .. fn(count-1) across the pool and blocks until all have
  /// finished, returning their results in index order. Tasks are handed to
  /// workers in index order but complete in any order. If tasks threw, the
  /// lowest-index exception is rethrown after *every* task has finished
  /// (no task is abandoned mid-run). Not reentrant: a task must not call
  /// map() on the executor that is running it.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn, const Progress& progress = nullptr)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> results(count);
    std::vector<std::exception_ptr> errors(count);
    Batch batch{count};
    for (std::size_t i = 0; i < count; ++i) {
      submit([&, i] {
        try {
          results[i] = fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        batch.complete(progress);
      });
    }
    batch.wait();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    return results;
  }

 private:
  struct Batch {
    explicit Batch(std::size_t n) : total(n) {}
    void complete(const Progress& progress) {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      if (progress) progress(done, total);
      if (done == total) cv.notify_all();
    }
    void wait() {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return done == total; });
    }
    std::size_t total;
    std::size_t done = 0;
    std::mutex mu;
    std::condition_variable cv;
  };

  void submit(std::function<void()> task);
  void worker();

  int jobs_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ms::sim
