#pragma once

#include <array>
#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace_context.hpp"

namespace ms::sim {

/// Offline view of an exported trace — the substrate of memscale-analyze.
///
/// Loads either the Chrome-trace JSON (`Tracer::export_chrome`) or the
/// binary flight-recorder dump (`Tracer::export_flight`) back into spans,
/// then rebuilds per-transaction critical-path breakdowns with exactly the
/// tracer's accounting rules: only tagged leaf spans (segment != kNone)
/// accumulate, the root span's extent is the transaction's end-to-end
/// latency, and any un-attributed residual is credited to Segment::kOther —
/// so the per-segment sum always equals the total, in integer picoseconds.
struct AnalyzedSpan {
  Time begin = 0;
  Time end = 0;
  std::uint64_t uid = 0;
  std::uint64_t txn = 0;     ///< 0 = span not part of a traced transaction
  std::uint64_t parent = 0;  ///< parent span uid (0 = root / untraced)
  Segment segment = Segment::kNone;
  CohCause cause = CohCause::kUnattributed;  ///< kCoherence spans only
  std::string track;  ///< component lane, " #N" overflow suffix stripped
  std::string name;
};

/// One reconstructed transaction: end-to-end extent plus its decomposition.
struct TxnSummary {
  std::uint64_t txn = 0;
  std::string name;   ///< root span name ("read"/"write")
  std::string track;  ///< root span track ("txn.nN")
  Time begin = 0;
  Time end = 0;
  Time total = 0;  ///< == end - begin of the root span
  std::array<Time, kNumSegments> seg{};  ///< sums exactly to `total`
  /// Per-cause decomposition of seg[kCoherence]; sums exactly to it.
  std::array<Time, kNumCohCauses> coh{};
  int spans = 0;  ///< tagged leaf spans attributed to this transaction
};

/// Per (track, name, segment) leaf aggregation — the component table.
struct ComponentRow {
  std::string track;
  std::string name;
  Segment segment = Segment::kNone;
  std::uint64_t count = 0;
  Time total = 0;
};

class TraceAnalysis {
 public:
  /// Parses a Chrome-trace JSON stream produced by Tracer::export_chrome.
  /// Throws std::runtime_error on malformed input.
  static TraceAnalysis load_chrome(std::istream& in);

  /// Parses a binary flight-recorder dump (Tracer::export_flight).
  static TraceAnalysis load_flight(std::istream& in);

  const std::vector<AnalyzedSpan>& spans() const { return spans_; }
  std::uint64_t flight_dropped() const { return flight_dropped_; }

  /// All transactions, ascending by id. Segment sums equal totals exactly.
  std::vector<TxnSummary> transactions() const;

  /// Tagged-leaf aggregation, descending by total time (ties: by key) —
  /// only spans belonging to a transaction are counted.
  std::vector<ComponentRow> components() const;

  /// Cross-transaction segment totals, indexed by Segment.
  std::array<Time, kNumSegments> segment_totals() const;

  /// Cross-transaction coherence-cause totals, indexed by CohCause; their
  /// sum equals segment_totals()[kCoherence] exactly.
  std::array<Time, kNumCohCauses> coherence_cause_totals() const;

 private:
  std::vector<AnalyzedSpan> spans_;
  std::uint64_t flight_dropped_ = 0;
};

/// Parses a Tracer timestamp ("ts") string — microseconds with six decimal
/// digits — back to integer picoseconds, exactly.
Time parse_ts_us(const std::string& text);

}  // namespace ms::sim
