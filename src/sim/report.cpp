#include "sim/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/json.hpp"
#include "sim/stats.hpp"

namespace ms::sim::report {

namespace {

SamplerStats sampler_from(const json::Value& v) {
  SamplerStats s;
  s.count = static_cast<std::uint64_t>(v.at("count").as_number());
  s.mean = v.at("mean").as_number();
  s.min = v.at("min").as_number();
  s.max = v.at("max").as_number();
  s.stddev = v.at("stddev").as_number();
  s.p50 = v.at("p50").as_number();
  s.p90 = v.at("p90").as_number();
  s.p99 = v.at("p99").as_number();
  s.p999 = v.at("p999").as_number();
  return s;
}

HistogramStats histogram_from(const json::Value& v) {
  HistogramStats h;
  h.count = static_cast<std::uint64_t>(v.at("count").as_number());
  h.p50 = v.at("p50").as_number();
  h.p90 = v.at("p90").as_number();
  h.p99 = v.at("p99").as_number();
  h.p999 = v.at("p999").as_number();
  for (const json::Value& b : v.at("buckets").as_array()) {
    const auto& pair = b.as_array();
    if (pair.size() != 2) throw std::runtime_error("bad histogram bucket");
    h.buckets.emplace_back(static_cast<std::uint64_t>(pair[0].as_number()),
                           static_cast<std::uint64_t>(pair[1].as_number()));
  }
  return h;
}

/// Finds `marker` in `key` at a component boundary (start of key or right
/// after a '.'). On a match, `label` gets everything before the marker
/// (with its trailing '.' stripped) and `rest` everything after it.
bool split_at_marker(const std::string& key, const std::string& marker,
                     std::string* label, std::string* rest) {
  std::size_t pos = 0;
  while ((pos = key.find(marker, pos)) != std::string::npos) {
    if (pos == 0 || key[pos - 1] == '.') {
      *label = pos == 0 ? std::string() : key.substr(0, pos - 1);
      *rest = key.substr(pos + marker.size());
      return true;
    }
    ++pos;
  }
  return false;
}

std::string show_label(const std::string& label) {
  return label.empty() ? "(run)" : label;
}

std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_count(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

constexpr double kPsPerUs = 1e6;

// ---- intermediate representation shared by the two renderers -------------

struct Table {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  std::vector<double> heat;  ///< optional per-row intensity in [0,1]
};

struct Section {
  std::string title;
  std::vector<std::string> notes;
  std::vector<Table> tables;
};

const char* const kCauses[] = {"upgrade",          "invalidate", "downgrade",
                               "writeback_forced", "directory",  "software",
                               "unattributed"};

Section coherence_tax_section(const StatsDump& d) {
  Section sec;
  sec.title = "Coherence tax by run";

  // Labels come from the txn exports: one "<label>.txn.total_ps" each.
  std::vector<std::string> labels;
  for (const auto& [key, s] : d.samplers) {
    std::string label, rest;
    if (split_at_marker(key, "txn.", &label, &rest) && rest == "total_ps") {
      labels.push_back(label);
    }
  }
  if (labels.empty()) {
    sec.notes.push_back(
        "No per-transaction samplers in this dump (run with tracing "
        "attached to get the coherence-tax breakdown).");
    return sec;
  }

  Table t;
  t.header = {"run", "txns", "total (us)", "coherence (us)", "tax (%)"};
  for (const char* c : kCauses) t.header.push_back(c);

  auto sampler_sum = [&d](const std::string& key) {
    auto it = d.samplers.find(key);
    return it == d.samplers.end() ? 0.0 : it->second.sum();
  };

  for (const std::string& label : labels) {
    const std::string p = label.empty() ? "" : label + ".";
    const double total = sampler_sum(p + "txn.total_ps");
    const double coh = sampler_sum(p + "txn.seg.coherence_ps");
    const auto count_it = d.counters.find(p + "txn.count");
    const double txns =
        count_it == d.counters.end() ? 0.0 : count_it->second;
    std::vector<std::string> row = {
        show_label(label), fmt_count(txns), fmt(total / kPsPerUs),
        fmt(coh / kPsPerUs), fmt(total > 0 ? 100.0 * coh / total : 0.0)};
    for (const char* c : kCauses) {
      row.push_back(
          fmt(sampler_sum(p + "txn.seg.coherence." + c + "_ps") / kPsPerUs));
    }
    t.rows.push_back(std::move(row));
  }
  sec.tables.push_back(std::move(t));

  // Region-vs-DSM pairing: "<X>.dsm" is the coherent-DSM comparator of "<X>".
  for (const std::string& label : labels) {
    if (label.size() <= 4 || label.substr(label.size() - 4) != ".dsm") {
      continue;
    }
    const std::string base = label.substr(0, label.size() - 4);
    if (std::find(labels.begin(), labels.end(), base) == labels.end()) {
      continue;
    }
    const double base_total =
        d.samplers.at(base + ".txn.total_ps").sum();
    auto coh_of = [&](const std::string& l) {
      auto it = d.samplers.find(l + ".txn.seg.coherence_ps");
      return it == d.samplers.end() ? 0.0 : it->second.sum();
    };
    const double dsm_total = d.samplers.at(label + ".txn.total_ps").sum();
    const double base_tax =
        base_total > 0 ? 100.0 * coh_of(base) / base_total : 0.0;
    const double dsm_tax =
        dsm_total > 0 ? 100.0 * coh_of(label) / dsm_total : 0.0;
    sec.notes.push_back("Region vs DSM (" + show_label(base) +
                        "): coherence tax " + fmt(base_tax) +
                        "% under memory regions vs " + fmt(dsm_tax) +
                        "% under inter-node DSM.");
  }
  return sec;
}

Section protocol_events_section(const StatsDump& d) {
  Section sec;
  sec.title = "Protocol-event accounting";

  // label -> domain -> event -> count, from "<label>.coh.<domain>.<event>".
  std::map<std::string, std::map<std::string, std::map<std::string, double>>>
      by_label;
  std::map<std::string, std::pair<double, double>> sharing;  // false, true
  for (const auto& [key, v] : d.counters) {
    std::string label, rest;
    if (!split_at_marker(key, "coh.", &label, &rest)) continue;
    if (rest == "false_sharing") {
      sharing[label].first = v;
    } else if (rest == "true_sharing") {
      sharing[label].second = v;
    } else {
      const std::size_t dot = rest.find('.');
      if (dot == std::string::npos) continue;
      const std::string domain = rest.substr(0, dot);
      const std::string event = rest.substr(dot + 1);
      if ((domain == "intra" || domain == "inter") &&
          event.find('.') == std::string::npos) {
        by_label[label][domain][event] = v;
      }
    }
  }
  if (by_label.empty() && sharing.empty()) {
    sec.notes.push_back(
        "No profiler counters in this dump (enable with coh_profile=1).");
    return sec;
  }

  Table t;
  t.header = {"run",       "domain",           "events",      "probe",
              "invalidate", "downgrade",       "writeback_forced",
              "upgrade_miss"};
  for (const auto& [label, domains] : by_label) {
    for (const auto& [domain, events] : domains) {
      auto get = [&events](const char* e) {
        auto it = events.find(e);
        return it == events.end() ? 0.0 : it->second;
      };
      t.rows.push_back({show_label(label), domain, fmt_count(get("events")),
                        fmt_count(get("probe")), fmt_count(get("invalidate")),
                        fmt_count(get("downgrade")),
                        fmt_count(get("writeback_forced")),
                        fmt_count(get("upgrade_miss"))});
    }
  }
  sec.tables.push_back(std::move(t));

  for (const auto& [label, fs] : sharing) {
    sec.notes.push_back(show_label(label) + ": " + fmt_count(fs.first) +
                        " false-sharing vs " + fmt_count(fs.second) +
                        " true-sharing invalidations.");
  }
  return sec;
}

Section link_matrix_section(const StatsDump& d) {
  Section sec;
  sec.title = "Fabric link/VC utilization";

  // "<label>.noc.link.<from>-<to>.vc<N>.<field>"
  struct Cell {
    double packets = 0, busy_ps = 0;
  };
  std::map<std::string, std::map<std::string, std::map<int, Cell>>> by_label;
  int max_vc = -1;
  for (const auto& [key, v] : d.counters) {
    std::string label, rest;
    if (!split_at_marker(key, "noc.link.", &label, &rest)) continue;
    const std::size_t vc_pos = rest.find(".vc");
    if (vc_pos == std::string::npos) continue;
    const std::string link = rest.substr(0, vc_pos);
    const std::size_t field_dot = rest.find('.', vc_pos + 3);
    if (field_dot == std::string::npos) continue;
    const int vc = std::atoi(rest.substr(vc_pos + 3, field_dot - vc_pos - 3).c_str());
    const std::string field = rest.substr(field_dot + 1);
    Cell& cell = by_label[label][link][vc];
    if (field == "packets") cell.packets = v;
    if (field == "busy_ps") cell.busy_ps = v;
    max_vc = std::max(max_vc, vc);
  }
  if (by_label.empty()) {
    sec.notes.push_back("No per-link fabric counters in this dump.");
    return sec;
  }

  for (const auto& [label, links] : by_label) {
    Table t;
    t.header = {"link (" + show_label(label) + ")"};
    for (int vc = 0; vc <= max_vc; ++vc) {
      t.header.push_back("vc" + std::to_string(vc) + " pkts (busy us)");
    }
    for (const auto& [link, vcs] : links) {
      std::vector<std::string> row = {link};
      for (int vc = 0; vc <= max_vc; ++vc) {
        auto it = vcs.find(vc);
        if (it == vcs.end()) {
          row.push_back("-");
        } else {
          row.push_back(fmt_count(it->second.packets) + " (" +
                        fmt(it->second.busy_ps / kPsPerUs) + ")");
        }
      }
      t.rows.push_back(std::move(row));
    }
    sec.tables.push_back(std::move(t));
  }
  return sec;
}

Section hot_pages_section(const StatsDump& d, std::size_t top_k) {
  Section sec;
  sec.title = "Coherence-hot pages";

  // "<label>.coh.page.<page>.events" / ".false_sharing"
  struct Page {
    double events = 0, false_sharing = 0;
  };
  std::map<std::string, std::map<std::uint64_t, Page>> by_label;
  for (const auto& [key, v] : d.counters) {
    std::string label, rest;
    if (!split_at_marker(key, "coh.page.", &label, &rest)) continue;
    const std::size_t dot = rest.find('.');
    if (dot == std::string::npos) continue;
    const std::uint64_t page = std::strtoull(rest.c_str(), nullptr, 10);
    const std::string field = rest.substr(dot + 1);
    if (field == "events") by_label[label][page].events = v;
    if (field == "false_sharing") by_label[label][page].false_sharing = v;
  }
  if (by_label.empty()) {
    sec.notes.push_back(
        "No hot-page counters in this dump (enable with coh_profile=1).");
    return sec;
  }

  for (const auto& [label, pages] : by_label) {
    std::vector<std::pair<std::uint64_t, Page>> sorted(pages.begin(),
                                                       pages.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      if (a.second.events != b.second.events) {
        return a.second.events > b.second.events;
      }
      return a.first < b.first;
    });
    if (sorted.size() > top_k) sorted.resize(top_k);
    const double peak = sorted.empty() ? 0.0 : sorted.front().second.events;

    Table t;
    t.header = {"page (" + show_label(label) + ")", "events", "false sharing",
                "heat"};
    for (const auto& [page, p] : sorted) {
      const double heat = peak > 0 ? p.events / peak : 0.0;
      const int bars = static_cast<int>(heat * 20.0 + 0.5);
      t.rows.push_back({"0x" +
                            [](std::uint64_t v) {
                              char buf[32];
                              std::snprintf(buf, sizeof buf, "%llx",
                                            static_cast<unsigned long long>(v));
                              return std::string(buf);
                            }(page),
                        fmt_count(p.events), fmt_count(p.false_sharing),
                        std::string(static_cast<std::size_t>(bars), '#')});
      t.heat.push_back(heat);
    }
    sec.tables.push_back(std::move(t));
  }
  return sec;
}

std::vector<Section> build_sections(const StatsDump& d,
                                    const ReportOptions& opts) {
  return {coherence_tax_section(d), protocol_events_section(d),
          link_matrix_section(d), hot_pages_section(d, opts.top_pages)};
}

std::string html_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

StatsDump StatsDump::parse(const std::string& text) {
  const json::Value top = json::parse(text);
  // Accept both the bare StatRegistry::dump_json shape and the sweep
  // per-run wrapper ({"bench":...,"stats":{"counters":...}}).
  const json::Value* inner = top.find("stats");
  const json::Value& doc =
      inner != nullptr && inner->find("counters") != nullptr ? *inner : top;
  StatsDump d;
  for (const auto& [key, v] : doc.at("counters").as_object()) {
    d.counters[key] = v.as_number();
  }
  for (const auto& [key, v] : doc.at("samplers").as_object()) {
    d.samplers[key] = sampler_from(v);
  }
  for (const auto& [key, v] : doc.at("histograms").as_object()) {
    d.histograms[key] = histogram_from(v);
  }
  return d;
}

StatsDump StatsDump::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) throw std::runtime_error("cannot read " + path);
  try {
    return parse(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::string render_markdown(const StatsDump& dump, const ReportOptions& opts) {
  std::ostringstream out;
  out << "# " << opts.title << "\n";
  for (const Section& sec : build_sections(dump, opts)) {
    out << "\n## " << sec.title << "\n";
    for (const Table& t : sec.tables) {
      out << "\n|";
      for (const std::string& h : t.header) out << " " << h << " |";
      out << "\n|";
      for (std::size_t i = 0; i < t.header.size(); ++i) out << " --- |";
      out << "\n";
      for (const auto& row : t.rows) {
        out << "|";
        for (const std::string& cell : row) out << " " << cell << " |";
        out << "\n";
      }
    }
    for (const std::string& note : sec.notes) out << "\n" << note << "\n";
  }
  return out.str();
}

std::string render_html(const StatsDump& dump, const ReportOptions& opts) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
      << html_escape(opts.title) << "</title>\n<style>\n"
      << "body{font-family:sans-serif;margin:2em;max-width:72em}\n"
      << "table{border-collapse:collapse;margin:1em 0}\n"
      << "th,td{border:1px solid #ccc;padding:0.3em 0.6em;"
      << "text-align:right;font-variant-numeric:tabular-nums}\n"
      << "th{background:#f0f0f0}\ntd:first-child,th:first-child"
      << "{text-align:left}\n</style></head><body>\n<h1>"
      << html_escape(opts.title) << "</h1>\n";
  for (const Section& sec : build_sections(dump, opts)) {
    out << "<h2>" << html_escape(sec.title) << "</h2>\n";
    for (const Table& t : sec.tables) {
      out << "<table><tr>";
      for (const std::string& h : t.header) {
        out << "<th>" << html_escape(h) << "</th>";
      }
      out << "</tr>\n";
      for (std::size_t r = 0; r < t.rows.size(); ++r) {
        out << "<tr";
        if (r < t.heat.size()) {
          // Heatmap: deeper red for hotter pages.
          const int alpha = static_cast<int>(t.heat[r] * 80.0 + 0.5);
          out << " style=\"background:rgba(220,60,40,0." << (alpha < 10 ? "0" : "")
              << alpha << ")\"";
        }
        out << ">";
        for (const std::string& cell : t.rows[r]) {
          out << "<td>" << html_escape(cell) << "</td>";
        }
        out << "</tr>\n";
      }
      out << "</table>\n";
    }
    for (const std::string& note : sec.notes) {
      out << "<p>" << html_escape(note) << "</p>\n";
    }
  }
  out << "</body></html>\n";
  return out.str();
}

namespace {

bool is_coherence_key(const std::string& key) {
  std::string label, rest;
  return key.find("seg.coherence") != std::string::npos ||
         key.find("coherence_probes") != std::string::npos ||
         key.find("dsm") != std::string::npos ||
         split_at_marker(key, "coh.", &label, &rest);
}

bool within_tolerance(double a, double b, const DiffOptions& opts) {
  const double delta = std::fabs(b - a);
  if (delta <= opts.abs_tol) return true;
  return delta <= opts.rel_tol * std::max(std::fabs(a), std::fabs(b));
}

void diff_values(const std::string& key, const double* a, const double* b,
                 const DiffOptions& opts, DiffResult* out) {
  ++out->keys_compared;
  if (a != nullptr && b != nullptr && *a == *b) return;
  DiffEntry e;
  e.key = key;
  e.a = a != nullptr ? *a : 0;
  e.b = b != nullptr ? *b : 0;
  e.missing = a == nullptr || b == nullptr;
  e.within = !e.missing && within_tolerance(*a, *b, opts);
  e.coherence = is_coherence_key(key);
  if (!e.within) {
    ++out->out_of_tolerance;
    if (e.coherence) ++out->coherence_out_of_tolerance;
  }
  out->entries.push_back(std::move(e));
}

/// Walks the union of two sorted maps, passing aligned value pointers.
template <typename M, typename Fn>
void walk_union(const M& a, const M& b, Fn&& fn) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      fn(ia->first, &ia->second, nullptr);
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      fn(ib->first, nullptr, &ib->second);
      ++ib;
    } else {
      fn(ia->first, &ia->second, &ib->second);
      ++ia;
      ++ib;
    }
  }
}

}  // namespace

DiffResult diff(const StatsDump& a, const StatsDump& b,
                const DiffOptions& opts) {
  DiffResult out;
  walk_union(a.counters, b.counters,
             [&](const std::string& key, const double* va, const double* vb) {
               diff_values(key, va, vb, opts, &out);
             });
  walk_union(a.samplers, b.samplers,
             [&](const std::string& key, const SamplerStats* sa,
                 const SamplerStats* sb) {
               const double ca = sa ? static_cast<double>(sa->count) : 0;
               const double cb = sb ? static_cast<double>(sb->count) : 0;
               diff_values(key + "#count", sa ? &ca : nullptr,
                           sb ? &cb : nullptr, opts, &out);
               const double ma = sa ? sa->mean : 0;
               const double mb = sb ? sb->mean : 0;
               diff_values(key + "#mean", sa ? &ma : nullptr,
                           sb ? &mb : nullptr, opts, &out);
             });
  walk_union(a.histograms, b.histograms,
             [&](const std::string& key, const HistogramStats* ha,
                 const HistogramStats* hb) {
               const double ca = ha ? static_cast<double>(ha->count) : 0;
               const double cb = hb ? static_cast<double>(hb->count) : 0;
               diff_values(key + "#count", ha ? &ca : nullptr,
                           hb ? &cb : nullptr, opts, &out);
             });
  return out;
}

std::string render_diff_markdown(const DiffResult& d, const DiffOptions& opts,
                                 const std::string& label_a,
                                 const std::string& label_b) {
  std::ostringstream out;
  out << "# stats diff: " << label_a << " vs " << label_b << "\n\n"
      << d.keys_compared << " keys compared, " << d.entries.size()
      << " differ, " << d.out_of_tolerance << " out of tolerance ("
      << d.coherence_out_of_tolerance << " coherence-tax metrics; rel_tol="
      << opts.rel_tol << ", abs_tol=" << opts.abs_tol << ").\n";
  if (d.entries.empty()) return out.str();
  out << "\n| key | " << label_a << " | " << label_b
      << " | delta | status |\n| --- | --- | --- | --- | --- |\n";
  for (const DiffEntry& e : d.entries) {
    out << "| " << e.key << (e.coherence ? " (coh)" : "") << " | "
        << json_double(e.a) << " | " << json_double(e.b) << " | "
        << json_double(e.b - e.a) << " | "
        << (e.missing ? "MISSING" : e.within ? "within" : "OUT") << " |\n";
  }
  return out.str();
}

}  // namespace ms::sim::report
