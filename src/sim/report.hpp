#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ms::sim::report {

/// One sampler's summary as serialized by StatRegistry::dump_json.
struct SamplerStats {
  std::uint64_t count = 0;
  double mean = 0, min = 0, max = 0, stddev = 0;
  double p50 = 0, p90 = 0, p99 = 0, p999 = 0;
  double sum() const { return mean * static_cast<double>(count); }
};

/// One histogram's summary (quantiles plus sparse buckets).
struct HistogramStats {
  std::uint64_t count = 0;
  double p50 = 0, p90 = 0, p99 = 0, p999 = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;  // lo, n
};

/// Parsed --stats-json dump. Strict: a truncated or structurally malformed
/// dump throws std::runtime_error instead of yielding a partial view.
struct StatsDump {
  std::map<std::string, double> counters;
  std::map<std::string, SamplerStats> samplers;
  std::map<std::string, HistogramStats> histograms;

  static StatsDump parse(const std::string& text);
  static StatsDump load(const std::string& path);  ///< throws on I/O error too
};

struct ReportOptions {
  std::string title = "memscale report";
  std::size_t top_pages = 16;  ///< rows in the hot-page table/heatmap
};

/// Self-contained Markdown report: per-label coherence-tax table (labels
/// whose twin `<label>.dsm` exists are paired as region-vs-DSM rows),
/// cause-level coherence breakdown, protocol-event accounting, per-link/VC
/// utilization matrix and coherence-hot page list.
std::string render_markdown(const StatsDump& dump,
                            const ReportOptions& opts = {});

/// Same content as a single-file HTML page (inline CSS, hot-page heatmap
/// colored by event count).
std::string render_html(const StatsDump& dump, const ReportOptions& opts = {});

struct DiffOptions {
  double rel_tol = 0.0;  ///< |b-a| <= rel_tol * max(|a|,|b|) passes
  double abs_tol = 0.0;  ///< ... or |b-a| <= abs_tol
};

struct DiffEntry {
  std::string key;
  double a = 0, b = 0;     ///< counter values or sampler means
  bool missing = false;    ///< key present on only one side
  bool within = false;
  bool coherence = false;  ///< a coherence-tax metric (gates CI harder)
};

struct DiffResult {
  std::vector<DiffEntry> entries;  ///< only keys that differ
  std::uint64_t keys_compared = 0;
  std::uint64_t out_of_tolerance = 0;
  std::uint64_t coherence_out_of_tolerance = 0;
  bool ok() const { return out_of_tolerance == 0; }
};

/// Compares counters by value and samplers by count and mean. Keys present
/// on only one side are out-of-tolerance. Metrics that measure the
/// coherence tax (txn coherence segments and their causes, coherence_probes,
/// "coh." profiler keys, dsm counters) are additionally flagged so the CI
/// gate can fail on them specifically.
DiffResult diff(const StatsDump& a, const StatsDump& b,
                const DiffOptions& opts = {});

/// Markdown rendering of a diff (the differing keys, both values, status).
std::string render_diff_markdown(const DiffResult& d, const DiffOptions& opts,
                                 const std::string& label_a,
                                 const std::string& label_b);

}  // namespace ms::sim::report
