#pragma once

#include <cstdint>
#include <string>

namespace ms::sim {

/// Simulated time in integer picoseconds.
///
/// Picosecond resolution keeps every latency constant in the model exact
/// (e.g. one 64-byte flit on a 4 GB/s link is 16'000 ps) while still giving
/// ~213 days of simulated range in 64 bits — far beyond any run we make.
using Time = std::uint64_t;

/// Signed duration, used for differences only.
using TimeDelta = std::int64_t;

inline constexpr Time kTimeMax = ~Time{0};

// Duration constructors. Integer overloads are exact; the double overloads
// round to the nearest picosecond and exist for derived quantities such as
// bytes/bandwidth.
constexpr Time ps(std::uint64_t v) { return v; }
constexpr Time ns(std::uint64_t v) { return v * 1'000; }
constexpr Time us(std::uint64_t v) { return v * 1'000'000; }
constexpr Time ms_(std::uint64_t v) { return v * 1'000'000'000; }
constexpr Time sec(std::uint64_t v) { return v * 1'000'000'000'000ULL; }

constexpr Time ns_d(double v) { return static_cast<Time>(v * 1e3 + 0.5); }
constexpr Time us_d(double v) { return static_cast<Time>(v * 1e6 + 0.5); }

constexpr double to_ns(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_us(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e9; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e12; }

/// Human-readable rendering with an auto-selected unit ("312 ns", "4.2 ms").
std::string format_time(Time t);

}  // namespace ms::sim
