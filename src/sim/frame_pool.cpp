#include "sim/frame_pool.hpp"

#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define MS_FRAME_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MS_FRAME_POOL_ASAN 1
#endif
#endif

#ifdef MS_FRAME_POOL_ASAN
#include <sanitizer/asan_interface.h>
#define MS_POISON(p, n) ASAN_POISON_MEMORY_REGION((p), (n))
#define MS_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION((p), (n))
#else
#define MS_POISON(p, n) ((void)0)
#define MS_UNPOISON(p, n) ((void)0)
#endif

namespace ms::sim {

namespace {

constexpr std::size_t kClasses = FramePool::kMaxPooled / FramePool::kAlign;

struct Pool {
  std::vector<void*> slabs;
  std::size_t slab_used = FramePool::kSlabBytes;  // forces the first carve
  // Recycled frames per size class. The chain lives here, not threaded
  // through the frames, so freelisted payloads can stay ASan-poisoned.
  std::vector<void*> free[kClasses];
  std::uint64_t pooled = 0;
  std::uint64_t heap = 0;

  ~Pool() {
    for (void* s : slabs) {
      MS_UNPOISON(s, FramePool::kSlabBytes);
      ::operator delete(s);
    }
  }
};

Pool& pool() {
  static thread_local Pool p;
  return p;
}

}  // namespace

void* FramePool::allocate(std::size_t bytes) {
  Pool& p = pool();
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooled) {
    ++p.heap;
    return ::operator new(bytes);
  }
  const std::size_t cls = (bytes + kAlign - 1) / kAlign;  // 1-based
  const std::size_t size = cls * kAlign;
  auto& fl = p.free[cls - 1];
  ++p.pooled;
  if (!fl.empty()) {
    void* q = fl.back();
    fl.pop_back();
    MS_UNPOISON(q, size);
    return q;
  }
  if (p.slab_used + size > kSlabBytes) {
    p.slabs.push_back(::operator new(kSlabBytes));
    p.slab_used = 0;
  }
  void* q = static_cast<char*>(p.slabs.back()) + p.slab_used;
  p.slab_used += size;
  return q;
}

void FramePool::deallocate(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxPooled) {
    ::operator delete(ptr, bytes);
    return;
  }
  Pool& p = pool();
  const std::size_t cls = (bytes + kAlign - 1) / kAlign;
  const std::size_t size = cls * kAlign;
  MS_POISON(ptr, size);
  p.free[cls - 1].push_back(ptr);
}

std::uint64_t FramePool::frames_pooled() { return pool().pooled; }
std::uint64_t FramePool::frames_heap() { return pool().heap; }

}  // namespace ms::sim
