#include "sim/sync.hpp"

namespace ms::sim {

void Semaphore::release() {
  if (!waiters_.empty()) {
    // Hand the token directly to the oldest waiter; the count stays at zero
    // so a concurrent try_acquire cannot barge in front of it.
    auto h = waiters_.front();
    waiters_.pop_front();
    engine_.schedule_resume(0, h);
  } else {
    ++count_;
  }
}

void Trigger::fire() {
  fired_ = true;
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) {
    engine_.schedule_resume(0, h);
  }
}

void WaitGroup::done() {
  --count_;
  if (count_ == 0) {
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      engine_.schedule_resume(0, h);
    }
  }
}

}  // namespace ms::sim
