#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/stats.hpp"

namespace ms::sim {

/// Protocol event classes the coherence layers report. Each event is
/// attributed to the page it hit and the requester that triggered it.
enum class CohEvent : std::uint8_t {
  kProbe = 0,        ///< any coherence probe sent to a peer cache/node
  kInvalidate,       ///< a peer's copy invalidated by a write miss
  kDowngrade,        ///< a modified owner demoted by a read miss
  kWritebackForced,  ///< dirty data forced out by a peer's request
  kUpgradeMiss,      ///< write hit on a shared line (ownership upgrade)
};
inline constexpr int kNumCohEvents = 5;

inline const char* to_string(CohEvent e) {
  switch (e) {
    case CohEvent::kProbe: return "probe";
    case CohEvent::kInvalidate: return "invalidate";
    case CohEvent::kDowngrade: return "downgrade";
    case CohEvent::kWritebackForced: return "writeback_forced";
    case CohEvent::kUpgradeMiss: return "upgrade_miss";
  }
  return "?";
}

/// Which coherency domain an event belongs to. The paper's claim is about
/// the split: region mode keeps every event intra-node (one motherboard's
/// MSI directory) no matter how much memory the node borrows, whereas the
/// DSM baseline generates inter-node events that cross the fabric.
enum class CohDomain : std::uint8_t { kIntra = 0, kInter };
inline constexpr int kNumCohDomains = 2;

inline const char* to_string(CohDomain d) {
  return d == CohDomain::kIntra ? "intra" : "inter";
}

/// Sharing/coherence-tax profiler: counts and classifies every protocol
/// event the coherence layers report (mem::CoherenceDirectory per node,
/// dsm::DirectoryDsm for the inter-node baseline), with per-page and
/// per-requester attribution, sharer-set churn histograms and a cache-line
/// false-sharing detector.
///
/// Disabled by default — every record call is one branch when off, and
/// export_stats emits nothing, so default configs keep byte-identical
/// stats output. Enable with the `coh_profile=1` cluster config key.
///
/// False sharing is detected at line granularity from 8-byte sub-line
/// touch footprints: each requester's touched chunks of a line are
/// tracked (64-bit mask, one bit per 8-byte chunk), and an invalidation
/// whose requester and victim footprints are disjoint is counted as false
/// sharing — the two parties never touched the same bytes, so the
/// coherence action was pure line-granularity collateral.
class SharingProfiler {
 public:
  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// One protocol event on `line` triggered by `requester`. Requester ids
  /// are caller-defined (the cluster uses node_index * cores + core for
  /// intra events and node ids for inter events; the domains keep the two
  /// id spaces apart).
  void record_event(CohDomain domain, CohEvent event, std::uint64_t line,
                    int requester);

  /// An invalidation (or upgrade) of `victim`'s copy of `line` by
  /// `requester`: records the event and classifies it as true or false
  /// sharing from the two parties' touch footprints, then clears the
  /// victim's footprint (its copy is gone).
  void record_invalidation(CohDomain domain, CohEvent event,
                           std::uint64_t line, int requester, int victim);

  /// Sharer-set size transition on `line` (before/after one directory
  /// action): feeds the sharer-count and churn histograms.
  void record_sharers(std::uint64_t line, int before, int after);

  /// One access touching `bytes` bytes at `offset` within `line` by
  /// `requester` — the footprint the false-sharing detector compares.
  void record_touch(std::uint64_t line, int requester, std::uint32_t offset,
                    std::uint32_t bytes);

  std::uint64_t events(CohDomain d) const {
    return domain_events_[static_cast<int>(d)];
  }
  std::uint64_t events(CohDomain d, CohEvent e) const {
    return counts_[static_cast<int>(d)][static_cast<int>(e)];
  }
  std::uint64_t false_sharing_invalidations() const { return false_sharing_; }
  std::uint64_t true_sharing_invalidations() const { return true_sharing_; }
  std::size_t distinct_lines() const { return touch_.size(); }

  /// Top-K coherence-hot 4 KiB pages (page, event count), hottest first;
  /// ties broken by ascending page so the output is deterministic (same
  /// rule as HotPageProfiler::top).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> top_pages(
      std::size_t k) const;

  /// Nonzero-only export under `prefix` ("coh." from the cluster):
  /// per-domain/per-event counters, false/true-sharing counts, sharer and
  /// churn histograms, per-requester event counts and the top-K hot pages.
  /// Emits nothing when disabled or when no event was recorded.
  void export_stats(StatRegistry& reg, const std::string& prefix,
                    std::size_t top_k = 16) const;

  void reset();

 private:
  bool enabled_ = false;
  std::uint64_t counts_[kNumCohDomains][kNumCohEvents] = {};
  std::uint64_t domain_events_[kNumCohDomains] = {};
  std::uint64_t false_sharing_ = 0;
  std::uint64_t true_sharing_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> page_events_;
  std::unordered_map<std::uint64_t, std::uint64_t> false_sharing_pages_;
  // Per domain: requester ids live in different id spaces (intra = global
  // core index, inter = node id), so they must not share one map.
  std::unordered_map<int, std::uint64_t> requester_events_[kNumCohDomains];
  // line -> per-requester 8-byte-chunk touch masks (small vectors: a line
  // rarely has more than a handful of concurrent sharers).
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<int, std::uint64_t>>>
      touch_;
  Histogram sharers_;  ///< sharer count before each recorded transition
  Histogram churn_;    ///< |sharer delta| per transition
};

}  // namespace ms::sim
