#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ms::sim::json {

/// Minimal strict JSON document model. Objects keep their keys in sorted
/// order (std::map), which matches StatRegistry::dump_json output and makes
/// every walk over a parsed document deterministic.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw std::runtime_error when the type differs so a
  /// malformed document fails loudly instead of reading as zeros.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; throws when absent (strict) — use find() for
  /// optional members.
  const Value& at(const std::string& key) const;
  const Value* find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Strict recursive-descent parse of one complete JSON document. Throws
/// std::runtime_error (with a byte offset) on any syntax error, on a
/// truncated document and on trailing non-whitespace — the observability
/// CLIs rely on this to exit nonzero for cut-off dumps instead of silently
/// analyzing half a file.
Value parse(std::string_view text);

}  // namespace ms::sim::json
