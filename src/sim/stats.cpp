#include "sim/stats.hpp"

#include <bit>
#include <cmath>
#include <sstream>

namespace ms::sim {

double Sampler::stddev() const { return std::sqrt(variance()); }

namespace {
int bucket_for(std::uint64_t v) {
  return v == 0 ? 0 : 64 - std::countl_zero(v);
}
}  // namespace

void Histogram::add(std::uint64_t v) {
  int b = bucket_for(v);
  if (b >= kBuckets) b = kBuckets - 1;
  ++buckets_[b];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    double next = seen + static_cast<double>(buckets_[b]);
    if (next >= target) {
      // Interpolate within the bucket [2^(b-1), 2^b).
      double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      double hi = std::ldexp(1.0, b);
      double frac = buckets_[b] ? (target - seen) / static_cast<double>(buckets_[b]) : 0.0;
      return lo + frac * (hi - lo);
    }
    seen = next;
  }
  return std::ldexp(1.0, kBuckets - 1);
}

std::string Histogram::render(int max_width) const {
  std::ostringstream out;
  std::uint64_t peak = 0;
  int last = 0;
  for (int b = 0; b < kBuckets; ++b) {
    peak = std::max(peak, buckets_[b]);
    if (buckets_[b] > 0) last = b;
  }
  if (peak == 0) return "(empty)\n";
  for (int b = 0; b <= last; ++b) {
    double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
    int bar = static_cast<int>(static_cast<double>(buckets_[b]) /
                               static_cast<double>(peak) * max_width);
    out << ">=" << static_cast<std::uint64_t>(lo) << "\t" << buckets_[b] << "\t"
        << std::string(static_cast<std::size_t>(bar), '#') << "\n";
  }
  return out.str();
}

void Histogram::reset() {
  for (auto& b : buckets_) b = 0;
  total_ = 0;
}

std::uint64_t StatRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::string StatRegistry::report() const {
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " = " << c.value() << "\n";
  }
  for (const auto& [name, s] : samplers_) {
    out << name << ": n=" << s.count() << " mean=" << s.mean()
        << " min=" << s.min() << " max=" << s.max() << " sd=" << s.stddev()
        << "\n";
  }
  return out.str();
}

void StatRegistry::reset() {
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, s] : samplers_) s.reset();
  for (auto& [_, h] : histograms_) h.reset();
}

}  // namespace ms::sim
