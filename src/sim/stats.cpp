#include "sim/stats.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ms::sim {

double Sampler::stddev() const { return std::sqrt(variance()); }

int Histogram::bucket_for(std::uint64_t v) {
  if (v < 2 * kSubBuckets) return static_cast<int>(v);
  const int shift = std::bit_width(v) - (kSubBits + 1);  // >= 1 here
  const int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  return (shift + 1) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_lo(int b) {
  if (b < 2 * kSubBuckets) return static_cast<std::uint64_t>(b);
  const int shift = b / kSubBuckets - 1;
  const auto sub = static_cast<std::uint64_t>(b % kSubBuckets);
  return (static_cast<std::uint64_t>(kSubBuckets) + sub) << shift;
}

std::uint64_t Histogram::bucket_hi(int b) {
  if (b < 2 * kSubBuckets) return static_cast<std::uint64_t>(b) + 1;
  const int shift = b / kSubBuckets - 1;
  const std::uint64_t lo = bucket_lo(b);
  const std::uint64_t width = std::uint64_t{1} << shift;
  // The very top bucket's upper bound would be 2^64; saturate.
  return lo + width < lo ? std::numeric_limits<std::uint64_t>::max()
                         : lo + width;
}

void Histogram::add(std::uint64_t v) {
  ++buckets_[static_cast<std::size_t>(bucket_for(v))];
  ++total_;
}

void Histogram::add_double(double v) {
  if (!(v > 0.0)) {  // negatives and NaN clamp to the zero bucket
    add(0);
  } else if (v >= 0x1p64) {
    add(std::numeric_limits<std::uint64_t>::max());
  } else {
    add(static_cast<std::uint64_t>(v + 0.5));
  }
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    const double next = seen + static_cast<double>(n);
    if (next >= target) {
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      const double frac = (target - seen) / static_cast<double>(n);
      return lo + frac * (hi - lo);
    }
    seen = next;
  }
  return static_cast<double>(bucket_lo(kBuckets - 1));
}

void Histogram::merge(const Histogram& o) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        o.buckets_[static_cast<std::size_t>(b)];
  }
  total_ += o.total_;
}

void Sampler::merge(const Sampler& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  mean_ += delta * (nb / (na + nb));
  m2_ += o.m2_ + delta * delta * (na * nb / (na + nb));
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  hist_.merge(o.hist_);
}

double Histogram::max_value() const {
  for (int b = kBuckets - 1; b >= 0; --b) {
    if (buckets_[static_cast<std::size_t>(b)]) {
      return static_cast<double>(bucket_hi(b));
    }
  }
  return 0.0;
}

std::string Histogram::render(int max_width) const {
  std::ostringstream out;
  std::uint64_t peak = 0;
  for (auto b : buckets_) peak = std::max(peak, b);
  if (peak == 0) return "(empty)\n";
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    int bar = static_cast<int>(static_cast<double>(n) /
                               static_cast<double>(peak) * max_width);
    out << ">=" << bucket_lo(b) << "\t" << n << "\t"
        << std::string(static_cast<std::size_t>(bar), '#') << "\n";
  }
  return out.str();
}

void Histogram::dump_json(std::ostream& out) const {
  out << "{\"count\":" << total_ << ",\"p50\":" << json_double(p50())
      << ",\"p90\":" << json_double(p90()) << ",\"p99\":" << json_double(p99())
      << ",\"p999\":" << json_double(p999()) << ",\"buckets\":[";
  bool first = true;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "[" << bucket_lo(b) << "," << n << "]";
  }
  out << "]}";
}

void Histogram::reset() {
  for (auto& b : buckets_) b = 0;
  total_ = 0;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[40];
  // Shortest representation that round-trips: deterministic for identical
  // bit patterns, which is all the byte-identical-dump tests need.
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::uint64_t StatRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::string StatRegistry::report() const {
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " = " << c.value() << "\n";
  }
  for (const auto& [name, s] : samplers_) {
    out << name << ": n=" << s.count() << " mean=" << s.mean()
        << " min=" << s.min() << " max=" << s.max() << " sd=" << s.stddev()
        << " p50=" << s.p50() << " p99=" << s.p99() << "\n";
  }
  return out.str();
}

namespace {
void dump_sampler_json(std::ostream& out, const Sampler& s) {
  out << "{\"count\":" << s.count() << ",\"mean\":" << json_double(s.mean())
      << ",\"min\":" << json_double(s.min())
      << ",\"max\":" << json_double(s.max())
      << ",\"stddev\":" << json_double(s.stddev())
      << ",\"p50\":" << json_double(s.p50())
      << ",\"p90\":" << json_double(s.p90())
      << ",\"p99\":" << json_double(s.p99())
      << ",\"p999\":" << json_double(s.p999()) << "}";
}
}  // namespace

void StatRegistry::dump_json(std::ostream& out) const {
  out << "{\n\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "\"" << name << "\":" << c.value();
    first = false;
  }
  out << "\n},\n\"samplers\":{";
  first = true;
  for (const auto& [name, s] : samplers_) {
    out << (first ? "\n" : ",\n") << "\"" << name << "\":";
    dump_sampler_json(out, s);
    first = false;
  }
  out << "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "\"" << name << "\":";
    h.dump_json(out);
    first = false;
  }
  out << "\n}\n}\n";
}

void StatRegistry::reset() {
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, s] : samplers_) s.reset();
  for (auto& [_, h] : histograms_) h.reset();
}

void StatRegistry::merge(const StatRegistry& o) {
  for (const auto& [name, c] : o.counters_) counters_[name].merge(c);
  for (const auto& [name, s] : o.samplers_) samplers_[name].merge(s);
  for (const auto& [name, h] : o.histograms_) histograms_[name].merge(h);
}

}  // namespace ms::sim
