#pragma once

#include <cstdint>

namespace ms::sim {

/// Causal identity of one memory transaction, minted at the core/workload
/// boundary (core::MemorySpace) and threaded through every component a
/// request traverses — ht::Packet carries it across the fabric, coroutine
/// parameters carry it through the RMC, memory controllers and the swap
/// manager. A default-constructed context means "untraced": every
/// instrumentation site degrades to the flat PR-1 span behaviour.
struct TraceContext {
  std::uint64_t txn = 0;   ///< transaction id; 0 = no transaction
  std::uint64_t span = 0;  ///< uid of the parent span; 0 = transaction root

  explicit operator bool() const { return txn != 0; }
};

/// Critical-path segment classes. Leaf spans tagged with a segment
/// accumulate into their transaction's latency decomposition; kNone marks
/// container spans (they group children but never accumulate, so nothing is
/// double-counted). kOther is both an explicit class (crossbar injection,
/// realized compute carry) and the derived residual total − Σsegments, so a
/// transaction's segments always sum to its end-to-end latency exactly.
enum class Segment : std::uint8_t {
  kNone = 0,       ///< container span, not accumulated
  kQueue,          ///< waiting for a contended resource (port, credit, bank)
  kSerialization,  ///< bytes crossing a wire at link bandwidth
  kLink,           ///< router hops + wire propagation (link flight)
  kRmc,            ///< RMC pipeline + HNC bridge processing
  kMemory,         ///< memory controller + DRAM + intra-node transport
  kCoherence,      ///< intra-node directory / inter-node DSM actions
  kSwap,           ///< OS fault handling: trap, map update, de/compression
  kMigration,      ///< parked behind a live-page-migration blackout window
  kOther,          ///< explicitly unclassified time + derived residual
};

inline constexpr int kNumSegments = 10;

/// Cause classes for Segment::kCoherence leaf spans. Every coherence span
/// carries exactly one cause, so the per-cause times of a transaction sum
/// exactly (integer ps) to its kCoherence segment — the coherence tax can
/// be attributed without breaking the segment-sum invariant. kUnattributed
/// is the default for coherence spans recorded without a cause.
enum class CohCause : std::uint8_t {
  kUnattributed = 0,   ///< coherence time with no specific protocol cause
  kUpgrade,            ///< write hit on a shared line: upgrade invalidations
  kInvalidate,         ///< write miss: invalidating the other sharers
  kDowngrade,          ///< read miss: demoting a modified owner
  kWritebackForced,    ///< dirty data forced out by a peer's request
  kDirectory,          ///< inter-node DSM home-directory lookup/update
  kSoftware,           ///< software DSM layer overhead per protocol action
};

inline constexpr int kNumCohCauses = 7;

inline const char* to_string(CohCause c) {
  switch (c) {
    case CohCause::kUnattributed: return "unattributed";
    case CohCause::kUpgrade: return "upgrade";
    case CohCause::kInvalidate: return "invalidate";
    case CohCause::kDowngrade: return "downgrade";
    case CohCause::kWritebackForced: return "writeback_forced";
    case CohCause::kDirectory: return "directory";
    case CohCause::kSoftware: return "software";
  }
  return "?";
}

inline const char* to_string(Segment s) {
  switch (s) {
    case Segment::kNone: return "none";
    case Segment::kQueue: return "queue";
    case Segment::kSerialization: return "serialization";
    case Segment::kLink: return "link";
    case Segment::kRmc: return "rmc";
    case Segment::kMemory: return "memory";
    case Segment::kCoherence: return "coherence";
    case Segment::kSwap: return "swap";
    case Segment::kMigration: return "migration";
    case Segment::kOther: return "other";
  }
  return "?";
}

}  // namespace ms::sim
