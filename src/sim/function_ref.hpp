#pragma once

#include <type_traits>
#include <utility>

namespace ms::sim {

/// Non-owning reference to a callable — the hot-path replacement for
/// `const std::function<...>&` parameters. Constructing a std::function
/// from a capturing lambda heap-allocates at every call site; FunctionRef
/// is two words (object pointer + trampoline) and never allocates. The
/// referenced callable must outlive the call, which every user here
/// guarantees trivially: the lambda lives in the caller's frame for the
/// duration of the synchronous callee.
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace ms::sim
