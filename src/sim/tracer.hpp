#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace_context.hpp"

namespace ms::sim {

/// Span-based timeline tracer with causal transaction linkage.
///
/// Components record named begin/end spans, instant events and counter
/// samples against simulated time, grouped on named tracks ("rmc.1",
/// "link.1-2.vc0", "swap.3"). export_chrome emits the Chrome trace_event
/// JSON array format, loadable in chrome://tracing and Perfetto.
///
/// Causal layer (on top of the flat PR-1 spans): a transaction is minted at
/// the core/workload boundary (core::MemorySpace) and its TraceContext is
/// threaded through every component the request traverses. Spans recorded
/// with a context carry {txn, parent uid, segment}; the export adds Chrome
/// flow events (ph "s"/"f") so any remote read can be followed hop by hop,
/// and end_span folds each tagged leaf span's duration into the
/// transaction's per-segment latency decomposition. When the transaction's
/// root span closes, total − Σsegments is credited to Segment::kOther, so
/// the decomposition sums to the end-to-end latency *exactly* (integer ps).
///
/// Sampling: set_sample_interval(N) mints a context for every Nth
/// transaction only; unsampled transactions cost one counter increment.
///
/// Flight-recorder mode (enable_flight_recorder): closed spans are distilled
/// into fixed-size binary records in a bounded ring (newest kept, oldest
/// overwritten), span slots are recycled, and instants/counters are
/// dropped — memory stays O(capacity) over million-transaction runs.
/// export_flight writes the ring ("MSFLIGHT" format, see ARCHITECTURE.md);
/// export_chrome is unavailable in this mode.
///
/// Cost when disabled: the tracer is attached via Engine::set_tracer, and
/// every instrumentation site guards on `engine.tracer()` being non-null —
/// a single branch. No strings are built, nothing allocates.
class Tracer {
 public:
  using SpanId = std::size_t;
  static constexpr SpanId kNoSpan = static_cast<SpanId>(-1);

  /// Starts a new process group (one pid in the trace). Benches call this
  /// once per data point so each point gets its own named lane group.
  void begin_process(std::string_view name);

  SpanId begin_span(std::string_view track, std::string_view name, Time t) {
    return begin_span(track, name, t, TraceContext{}, Segment::kNone, false);
  }
  /// Causal variant: the span joins `ctx.txn` as a child of span uid
  /// `ctx.span`; `seg` tags leaf spans for the latency decomposition
  /// (Segment::kNone = container). `root` marks the transaction's root span
  /// (minted by TxnScope); closing it finalizes the decomposition. `cause`
  /// sub-classifies kCoherence leaf spans (ignored for other segments), so
  /// the coherence segment decomposes by protocol cause with the same
  /// exact-sum guarantee.
  SpanId begin_span(std::string_view track, std::string_view name, Time t,
                    TraceContext ctx, Segment seg, bool root = false,
                    CohCause cause = CohCause::kUnattributed);
  void end_span(SpanId id, Time t);
  void instant(std::string_view track, std::string_view name, Time t);
  void counter(std::string_view track, std::string_view name, Time t,
               double value);

  /// Context other spans use to attach as children of `id`.
  TraceContext ctx_of(SpanId id) const {
    if (id == kNoSpan || id >= spans_.size()) return {};
    return TraceContext{spans_[id].txn, spans_[id].uid};
  }

  /// Mints the next transaction id, honoring the sample interval. Returns 0
  /// ("untraced") for transactions skipped by sampling.
  std::uint64_t mint_txn() {
    const std::uint64_t n = mint_counter_++;
    if (sample_interval_ > 1 && n % sample_interval_ != 0) return 0;
    return next_txn_++;
  }
  /// Trace every Nth transaction (1 = all, the default; 0 behaves like 1).
  void set_sample_interval(std::uint64_t n) {
    sample_interval_ = n == 0 ? 1 : n;
  }
  std::uint64_t sample_interval() const { return sample_interval_; }

  /// Exact integer-ps decomposition of one finalized transaction.
  struct TxnBreakdown {
    std::uint64_t txn = 0;
    Time total = 0;
    std::array<Time, kNumSegments> seg{};  ///< indexed by Segment; sums to total
    /// Indexed by CohCause; sums exactly to seg[kCoherence] (every
    /// coherence leaf span carries exactly one cause).
    std::array<Time, kNumCohCauses> coh{};
  };
  /// The most recently finalized transaction (txn == 0 when none yet).
  const TxnBreakdown& last_txn() const { return last_txn_; }
  std::uint64_t txns_finalized() const { return txns_finalized_; }
  std::uint64_t txns_minted() const { return next_txn_ - 1; }

  /// Aggregated per-transaction stats: "<prefix>count", "<prefix>total_ps",
  /// "<prefix>seg.<name>_ps" samplers (segments that never occurred are
  /// omitted) and "<prefix>seg.coherence.<cause>_ps" cause sub-segments of
  /// the coherence segment. No-op when no transaction finalized.
  void export_txn_stats(StatRegistry& reg, const std::string& prefix) const;
  void reset_txn_stats();

  std::size_t span_count() const { return spans_.size(); }
  std::size_t open_span_count() const { return open_; }
  std::size_t instant_count() const { return instants_.size(); }
  std::size_t counter_count() const { return counter_samples_.size(); }

  /// Chrome trace_event JSON ("ts" in microseconds, one event per line).
  /// Deterministic: identical recorded histories export byte-identically.
  /// Unavailable in flight-recorder mode (throws std::logic_error).
  void export_chrome(std::ostream& out) const;

  // ---- flight recorder ----
  /// Switches to bounded-memory mode with a ring of `capacity` records.
  /// Must be called before any span is recorded.
  void enable_flight_recorder(std::size_t capacity);
  bool flight_mode() const { return flight_capacity_ != 0; }
  /// Records overwritten because the ring was full.
  std::uint64_t flight_dropped() const { return flight_dropped_; }
  std::size_t flight_record_count() const {
    return flight_ring_.size();
  }
  /// Binary dump of the ring, oldest record first ("MSFLIGHT" format).
  void export_flight(std::ostream& out) const;

  /// Read-only snapshot of recorded spans, for tests and in-process
  /// analysis (parent-chain walks). Not available in flight mode (slots
  /// recycle; use export_flight instead).
  struct SpanView {
    Time begin = 0;
    Time end = 0;
    std::uint64_t uid = 0;
    std::uint64_t txn = 0;
    std::uint64_t parent = 0;
    Segment segment = Segment::kNone;
    CohCause cause = CohCause::kUnattributed;
    bool root = false;
    bool closed = false;
    const std::string* track = nullptr;
    const std::string* name = nullptr;
  };
  std::vector<SpanView> span_views() const;

  void clear();

 private:
  struct Span {
    Time begin = 0;
    Time end = 0;
    std::uint32_t track = 0;
    std::uint32_t seq = 0;
    bool closed = false;
    bool root = false;
    Segment segment = Segment::kNone;
    CohCause cause = CohCause::kUnattributed;
    std::uint64_t uid = 0;
    std::uint64_t txn = 0;
    std::uint64_t parent = 0;
    std::string name;
  };
  struct Instant {
    Time when;
    std::uint32_t track;
    std::string name;
  };
  struct CounterSample {
    Time when;
    std::uint32_t track;
    double value;
    std::string name;
  };
  struct Track {
    std::string name;
    int pid;
  };
  struct FlightRecord {
    Time begin;
    Time end;
    std::uint64_t uid;
    std::uint64_t txn;
    std::uint64_t parent;
    std::uint32_t track_name;  ///< id in the flight string table
    std::uint32_t name;        ///< id in the flight string table
    std::uint8_t segment;
    std::uint8_t root;
    std::uint8_t cause;  ///< CohCause; bits 16-23 of the flags word
  };

  std::uint32_t track_id(std::string_view name);
  std::uint32_t flight_intern(const std::string& s);
  void finalize_txn(const Span& root, Time t);

  std::vector<std::string> process_names_;
  std::vector<Track> tracks_;
  std::map<std::string, std::uint32_t, std::less<>> track_ids_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<CounterSample> counter_samples_;
  std::size_t open_ = 0;
  Time last_time_ = 0;

  // Transaction accounting.
  std::uint64_t next_uid_ = 1;
  std::uint64_t next_txn_ = 1;
  std::uint64_t mint_counter_ = 0;
  std::uint64_t sample_interval_ = 1;
  struct OpenTxn {
    std::array<Time, kNumSegments> seg{};
    std::array<Time, kNumCohCauses> coh{};
  };
  std::unordered_map<std::uint64_t, OpenTxn> open_txns_;
  TxnBreakdown last_txn_;
  std::uint64_t txns_finalized_ = 0;
  Sampler txn_total_;
  std::array<Sampler, kNumSegments> txn_seg_;
  std::array<Sampler, kNumCohCauses> txn_coh_;

  // Flight recorder.
  std::size_t flight_capacity_ = 0;
  std::size_t flight_head_ = 0;  ///< next slot to write once the ring is full
  std::uint64_t flight_dropped_ = 0;
  std::vector<FlightRecord> flight_ring_;
  std::vector<SpanId> free_slots_;
  std::vector<std::string> flight_names_;
  std::map<std::string, std::uint32_t, std::less<>> flight_name_ids_;
};

/// RAII span: begins at construction, ends when destroyed (including via
/// coroutine-frame destruction on engine teardown). Inert when the engine
/// has no tracer installed. The optional context/segment link the span into
/// a transaction; ctx() yields the context children should attach under.
class ScopedSpan {
 public:
  ScopedSpan(Engine& engine, std::string_view track, std::string_view name,
             TraceContext ctx = {}, Segment seg = Segment::kNone)
      : engine_(&engine), tracer_(engine.tracer()) {
    if (tracer_ != nullptr) {
      id_ = tracer_->begin_span(track, name, engine.now(), ctx, seg);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end_span(id_, engine_->now());
  }

  TraceContext ctx() const {
    return tracer_ != nullptr ? tracer_->ctx_of(id_) : TraceContext{};
  }

 private:
  Engine* engine_;
  Tracer* tracer_;
  Tracer::SpanId id_ = Tracer::kNoSpan;
};

/// Leaf span for the latency decomposition: records only when both a tracer
/// is attached *and* the surrounding transaction is traced, so segment
/// instrumentation stays free on unsampled transactions.
class SegmentSpan {
 public:
  SegmentSpan(Engine& engine, TraceContext ctx, std::string_view track,
              std::string_view name, Segment seg,
              CohCause cause = CohCause::kUnattributed)
      : engine_(&engine) {
    if (ctx) {
      tracer_ = engine.tracer();
      if (tracer_ != nullptr) {
        id_ = tracer_->begin_span(track, name, engine.now(), ctx, seg,
                                  /*root=*/false, cause);
      }
    }
  }
  SegmentSpan(const SegmentSpan&) = delete;
  SegmentSpan& operator=(const SegmentSpan&) = delete;
  ~SegmentSpan() {
    if (tracer_ != nullptr) tracer_->end_span(id_, engine_->now());
  }

 private:
  Engine* engine_;
  Tracer* tracer_ = nullptr;
  Tracer::SpanId id_ = Tracer::kNoSpan;
};

/// Retroactive wait span: call after a contended acquire with the time the
/// wait began; records only when a tracer is attached and the wait was
/// nonzero (the wait is only interesting once it happened).
inline void record_wait(Engine& engine, std::string_view track,
                        std::string_view name, Time since,
                        TraceContext ctx = {},
                        Segment seg = Segment::kQueue) {
  auto* tr = engine.tracer();
  if (tr == nullptr || engine.now() == since) return;
  tr->end_span(tr->begin_span(track, name, since, ctx, seg), engine.now());
}

/// Retroactive cause-tagged coherence sub-span over [begin, end): used by
/// instrumentation sites that pay one combined coherence delay but know,
/// after the fact, how it decomposes by protocol cause. Recording with
/// computed timestamps instead of splitting the delay keeps event
/// scheduling (and therefore every timing golden) untouched. Records only
/// when the transaction is traced and the interval is nonempty.
inline void record_coh_cause(Engine& engine, std::string_view track,
                             TraceContext ctx, CohCause cause, Time begin,
                             Time end) {
  if (!ctx || begin >= end) return;
  auto* tr = engine.tracer();
  if (tr == nullptr) return;
  tr->end_span(tr->begin_span(track, to_string(cause), begin, ctx,
                              Segment::kCoherence, /*root=*/false, cause),
               end);
}

/// Mints one transaction and owns its root span. Constructed at the
/// core/workload boundary (one per user-level memory operation); ctx()
/// is what gets threaded down the component stack. finish() ends the
/// transaction early (before charging costs that are not part of it, e.g.
/// quantum compute realization); the destructor is a safety net.
class TxnScope {
 public:
  TxnScope(Engine& engine, std::string_view track, std::string_view name)
      : engine_(&engine), tracer_(engine.tracer()) {
    if (tracer_ != nullptr) {
      const std::uint64_t txn = tracer_->mint_txn();
      if (txn != 0) {
        id_ = tracer_->begin_span(track, name, engine.now(),
                                  TraceContext{txn, 0}, Segment::kNone,
                                  /*root=*/true);
        ctx_ = tracer_->ctx_of(id_);
      }
    }
  }
  TxnScope(const TxnScope&) = delete;
  TxnScope& operator=(const TxnScope&) = delete;
  ~TxnScope() { finish(); }

  void finish() {
    if (tracer_ != nullptr && id_ != Tracer::kNoSpan) {
      tracer_->end_span(id_, engine_->now());
      id_ = Tracer::kNoSpan;
    }
  }

  TraceContext ctx() const { return ctx_; }

 private:
  Engine* engine_;
  Tracer* tracer_;
  Tracer::SpanId id_ = Tracer::kNoSpan;
  TraceContext ctx_;
};

}  // namespace ms::sim
