#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace ms::sim {

/// Span-based timeline tracer.
///
/// Components record named begin/end spans, instant events and counter
/// samples against simulated time, grouped on named tracks ("rmc.1",
/// "link.1-2.vc0", "swap.3"). export_chrome emits the Chrome trace_event
/// JSON array format, loadable in chrome://tracing and Perfetto.
///
/// Concurrency model: coroutine processes interleave freely, so spans on
/// one track may overlap partially — which the Chrome B/E duration-event
/// format forbids within one thread lane. At export time each track's
/// spans are therefore greedily packed into the minimum number of lanes
/// such that spans within a lane strictly nest; each lane becomes one tid
/// with balanced, monotonically timestamped B/E events.
///
/// Cost when disabled: the tracer is attached via Engine::set_tracer, and
/// every instrumentation site guards on `engine.tracer()` being non-null —
/// a single branch. No strings are built, nothing allocates.
class Tracer {
 public:
  using SpanId = std::size_t;
  static constexpr SpanId kNoSpan = static_cast<SpanId>(-1);

  /// Starts a new process group (one pid in the trace). Benches call this
  /// once per data point so each point gets its own named lane group.
  void begin_process(std::string_view name);

  SpanId begin_span(std::string_view track, std::string_view name, Time t);
  void end_span(SpanId id, Time t);
  void instant(std::string_view track, std::string_view name, Time t);
  void counter(std::string_view track, std::string_view name, Time t,
               double value);

  std::size_t span_count() const { return spans_.size(); }
  std::size_t open_span_count() const { return open_; }
  std::size_t instant_count() const { return instants_.size(); }
  std::size_t counter_count() const { return counter_samples_.size(); }

  /// Chrome trace_event JSON ("ts" in microseconds, one event per line).
  /// Deterministic: identical recorded histories export byte-identically.
  void export_chrome(std::ostream& out) const;

  void clear();

 private:
  struct Span {
    Time begin = 0;
    Time end = 0;
    std::uint32_t track = 0;
    std::uint32_t seq = 0;
    bool closed = false;
    std::string name;
  };
  struct Instant {
    Time when;
    std::uint32_t track;
    std::string name;
  };
  struct CounterSample {
    Time when;
    std::uint32_t track;
    double value;
    std::string name;
  };
  struct Track {
    std::string name;
    int pid;
  };

  std::uint32_t track_id(std::string_view name);

  std::vector<std::string> process_names_;
  std::vector<Track> tracks_;
  std::map<std::string, std::uint32_t, std::less<>> track_ids_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<CounterSample> counter_samples_;
  std::size_t open_ = 0;
  Time last_time_ = 0;
};

/// RAII span: begins at construction, ends when destroyed (including via
/// coroutine-frame destruction on engine teardown). Inert when the engine
/// has no tracer installed.
class ScopedSpan {
 public:
  ScopedSpan(Engine& engine, std::string_view track, std::string_view name)
      : engine_(&engine), tracer_(engine.tracer()) {
    if (tracer_ != nullptr) {
      id_ = tracer_->begin_span(track, name, engine.now());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end_span(id_, engine_->now());
  }

 private:
  Engine* engine_;
  Tracer* tracer_;
  Tracer::SpanId id_ = Tracer::kNoSpan;
};

}  // namespace ms::sim
