#include "sim/table.hpp"

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ms::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(const std::string& v) {
  cells_.push_back(v);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  cells_.push_back(out.str());
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::uint64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::setw(static_cast<int>(width[c])) << cells[c];
      out << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c] << (c + 1 == cells.size() ? "\n" : ",");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace ms::sim
