#include "sim/sharing_profiler.hpp"

#include <algorithm>
#include <cstdlib>

namespace ms::sim {

namespace {

std::uint64_t touch_mask(std::uint32_t offset, std::uint32_t bytes) {
  // One bit per 8-byte chunk of a 64-byte line; wider lines saturate into
  // the 64 tracked chunks (512 bytes), which is plenty for footprints.
  const std::uint32_t first = offset / 8;
  const std::uint32_t last = bytes == 0 ? first : (offset + bytes - 1) / 8;
  std::uint64_t mask = 0;
  for (std::uint32_t c = first; c <= last && c < 64; ++c) {
    mask |= std::uint64_t{1} << c;
  }
  return mask;
}

std::uint64_t find_mask(
    const std::vector<std::pair<int, std::uint64_t>>& touches, int who) {
  for (const auto& [id, mask] : touches) {
    if (id == who) return mask;
  }
  return 0;
}

}  // namespace

void SharingProfiler::record_event(CohDomain domain, CohEvent event,
                                   std::uint64_t line, int requester) {
  if (!enabled_) return;
  ++counts_[static_cast<int>(domain)][static_cast<int>(event)];
  ++domain_events_[static_cast<int>(domain)];
  ++page_events_[line >> 12];
  ++requester_events_[static_cast<int>(domain)][requester];
}

void SharingProfiler::record_invalidation(CohDomain domain, CohEvent event,
                                          std::uint64_t line, int requester,
                                          int victim) {
  if (!enabled_) return;
  record_event(domain, event, line, requester);
  auto it = touch_.find(line);
  if (it != touch_.end()) {
    const std::uint64_t mine = find_mask(it->second, requester);
    const std::uint64_t theirs = find_mask(it->second, victim);
    if (mine != 0 && theirs != 0) {
      if ((mine & theirs) == 0) {
        ++false_sharing_;
        ++false_sharing_pages_[line >> 12];
      } else {
        ++true_sharing_;
      }
    }
    // The victim's copy is gone; its footprint restarts on the next touch.
    auto& touches = it->second;
    touches.erase(std::remove_if(touches.begin(), touches.end(),
                                 [victim](const auto& t) {
                                   return t.first == victim;
                                 }),
                  touches.end());
    if (touches.empty()) touch_.erase(it);
  }
}

void SharingProfiler::record_sharers(std::uint64_t line, int before,
                                     int after) {
  if (!enabled_) return;
  (void)line;
  sharers_.add(static_cast<std::uint64_t>(before < 0 ? 0 : before));
  churn_.add(static_cast<std::uint64_t>(std::abs(before - after)));
}

void SharingProfiler::record_touch(std::uint64_t line, int requester,
                                   std::uint32_t offset, std::uint32_t bytes) {
  if (!enabled_) return;
  auto& touches = touch_[line];
  const std::uint64_t mask = touch_mask(offset, bytes);
  for (auto& [id, m] : touches) {
    if (id == requester) {
      m |= mask;
      return;
    }
  }
  touches.emplace_back(requester, mask);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
SharingProfiler::top_pages(std::size_t k) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> all(
      page_events_.begin(), page_events_.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

void SharingProfiler::export_stats(StatRegistry& reg,
                                   const std::string& prefix,
                                   std::size_t top_k) const {
  if (!enabled_) return;
  std::uint64_t total = 0;
  for (const std::uint64_t v : domain_events_) total += v;
  if (total == 0) return;

  for (int d = 0; d < kNumCohDomains; ++d) {
    const std::string dp =
        prefix + to_string(static_cast<CohDomain>(d)) + ".";
    export_counter_nonzero(reg, dp + "events", domain_events_[d]);
    for (int e = 0; e < kNumCohEvents; ++e) {
      export_counter_nonzero(reg, dp + to_string(static_cast<CohEvent>(e)),
                             counts_[d][e]);
    }
    // Per-requester attribution (sorted by the registry's key order).
    for (const auto& [req, n] : requester_events_[d]) {
      export_counter_nonzero(
          reg, dp + "req." + std::to_string(req) + ".events", n);
    }
  }
  export_counter_nonzero(reg, prefix + "false_sharing", false_sharing_);
  export_counter_nonzero(reg, prefix + "true_sharing", true_sharing_);
  if (sharers_.count() > 0) {
    reg.histogram(prefix + "sharers_before") = sharers_;
    reg.histogram(prefix + "sharer_churn") = churn_;
  }
  for (const auto& [page, n] : top_pages(top_k)) {
    reg.counter(prefix + "page." + std::to_string(page) + ".events").inc(n);
  }
  for (const auto& [page, n] : false_sharing_pages_) {
    export_counter_nonzero(
        reg, prefix + "page." + std::to_string(page) + ".false_sharing", n);
  }
}

void SharingProfiler::reset() {
  for (auto& d : counts_) {
    for (auto& e : d) e = 0;
  }
  for (auto& d : domain_events_) d = 0;
  false_sharing_ = 0;
  true_sharing_ = 0;
  page_events_.clear();
  false_sharing_pages_.clear();
  for (auto& m : requester_events_) m.clear();
  touch_.clear();
  sharers_.reset();
  churn_.reset();
}

}  // namespace ms::sim
