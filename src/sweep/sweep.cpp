#include "sweep/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/cluster.hpp"
#include "fuzz/fuzz.hpp"
#include "sim/log.hpp"
#include "sim/parallel.hpp"
#include "sim/stats.hpp"

namespace ms::sweep {

namespace {

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

std::vector<std::string> split_values(const std::string& text) {
  // "a,b,c" or inclusive integer range "a..b".
  const auto dots = text.find("..");
  if (dots != std::string::npos && text.find(',') == std::string::npos) {
    const long long lo = std::stoll(text.substr(0, dots));
    const long long hi = std::stoll(text.substr(dots + 2));
    if (hi < lo) {
      throw std::invalid_argument("grid range must be ascending: " + text);
    }
    std::vector<std::string> out;
    for (long long v = lo; v <= hi; ++v) out.push_back(std::to_string(v));
    return out;
  }
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  for (const auto& v : out) {
    if (v.empty()) throw std::invalid_argument("empty grid value in: " + text);
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — only what golden/floor comparison needs. The
// producer is this file, so the subset (objects, arrays, strings, numbers,
// bools, null) is sufficient and covered by round-trip tests.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(const std::string& key) const {
    if (kind != kObj) return nullptr;
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}
  JsonValue parse() {
    JsonValue v = value();
    ws();
    if (pos_ != text_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }
  void ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }
  std::string string_body() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        char e = peek();
        ++pos_;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::stoul(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    ++pos_;  // closing quote
    return out;
  }
  JsonValue value() {
    ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      v.kind = JsonValue::kObj;
      ++pos_;
      ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        ws();
        std::string key = string_body();
        ws();
        expect(':');
        v.obj.emplace_back(std::move(key), value());
        ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.kind = JsonValue::kArr;
      ++pos_;
      ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v.arr.push_back(value());
        ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::kStr;
      v.str = string_body();
      return v;
    }
    if (consume("true")) {
      v.kind = JsonValue::kBool;
      v.b = true;
      return v;
    }
    if (consume("false")) {
      v.kind = JsonValue::kBool;
      return v;
    }
    if (consume("null")) return v;
    // number
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("unexpected character");
    v.kind = JsonValue::kNum;
    v.num = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------------------

SweepSpec SweepSpec::parse_tokens(const std::vector<std::string>& tokens) {
  SweepSpec spec;
  for (const std::string& raw : tokens) {
    std::string tok = raw;
    while (!tok.empty() && tok.front() == '-') tok.erase(tok.begin());
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("sweep spec: expected key=value, got '" +
                                  raw + "'");
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "bench") {
      spec.bench = value;
    } else if (key == "repeats") {
      spec.repeats = std::stoi(value);
      if (spec.repeats < 1) {
        throw std::invalid_argument("sweep spec: repeats must be >= 1");
      }
    } else if (key == "fuzz") {
      spec.fuzz = value != "0";
    } else if (key == "episodes") {
      spec.episodes = std::stoull(value);
    } else if (key == "seed") {
      spec.first_seed = std::stoull(value);
    } else if (key == "epoch_us") {
      spec.epoch_us = std::stoull(value);
    } else if (key == "minimize") {
      spec.minimize = value != "0";
    } else if (key == "mutation") {
      spec.mutation = value;
    } else if (key == "flight") {
      spec.flight_path = value;
    } else if (key.rfind("grid.", 0) == 0) {
      const std::string axis_key = key.substr(5);
      if (axis_key.empty()) {
        throw std::invalid_argument("sweep spec: empty grid key in '" + raw +
                                    "'");
      }
      // Re-declaring an axis replaces it (CLI overrides the spec file).
      auto values = split_values(value);
      bool replaced = false;
      for (auto& axis : spec.axes) {
        if (axis.key == axis_key) {
          axis.values = values;
          replaced = true;
          break;
        }
      }
      if (!replaced) spec.axes.push_back(GridAxis{axis_key, std::move(values)});
    } else {
      spec.base.set(key, value);
    }
  }
  if (spec.fuzz && !spec.bench.empty()) {
    throw std::invalid_argument(
        "sweep spec: fuzz=1 and bench= are mutually exclusive");
  }
  if (!spec.fuzz && spec.bench.empty()) {
    throw std::invalid_argument(
        "sweep spec: need bench=<kernel> or fuzz=1 (known kernels: see "
        "memscale_sweep help)");
  }
  return spec;
}

SweepSpec SweepSpec::load(const std::string& path,
                          const std::vector<std::string>& extra) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read sweep spec " + path);
  std::vector<std::string> tokens;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string word;
    while (words >> word) tokens.push_back(word);
  }
  tokens.insert(tokens.end(), extra.begin(), extra.end());
  return parse_tokens(tokens);
}

std::vector<SweepSpec::Cell> SweepSpec::expand() const {
  std::vector<Cell> cells;
  std::vector<std::size_t> idx(axes.size(), 0);
  for (;;) {
    Cell cell;
    cell.config = base;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const auto& axis = axes[a];
      const auto& value = axis.values[idx[a]];
      cell.params.emplace_back(axis.key, value);
      cell.config.set(axis.key, value);
      if (!cell.key.empty()) cell.key += ' ';
      cell.key += axis.key + "=" + value;
    }
    cells.push_back(std::move(cell));
    // Odometer increment, last axis fastest.
    std::size_t a = axes.size();
    for (;;) {
      if (a == 0) return cells;
      --a;
      if (++idx[a] < axes[a].values.size()) break;
      idx[a] = 0;
    }
  }
}

// ---------------------------------------------------------------------------
// Bench-mode sweep
// ---------------------------------------------------------------------------

namespace {

struct TaskOutcome {
  RunRecord record;
  sim::StatRegistry stats;
};

std::string cell_params_json(
    const std::vector<std::pair<std::string, std::string>>& params) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : params) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  }
  return out + "}";
}

SweepReport run_bench_sweep(const SweepSpec& spec, const SweepOptions& opt) {
  const auto cells = spec.expand();
  struct Task {
    std::size_t cell;
    int repeat;
  };
  std::vector<Task> tasks;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (int r = 0; r < spec.repeats; ++r) tasks.push_back({c, r});
  }

  sim::ParallelExecutor pool(opt.jobs);
  sim::ParallelExecutor::Progress progress;
  if (opt.verbose && opt.log != nullptr) {
    progress = [&](std::size_t done, std::size_t total) {
      *opt.log << "[" << done << "/" << total << "] tasks done\n";
    };
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<TaskOutcome> outcomes = pool.map(
      tasks.size(),
      [&](std::size_t i) -> TaskOutcome {
        sim::Log::Capture logs;  // per-task log lines, replayed in order
        const auto task_t0 = std::chrono::steady_clock::now();
        TaskOutcome o;
        KernelHooks hooks;
        hooks.capture = [&o](const std::string& label,
                             const core::Cluster& cluster) {
          cluster.export_stats(o.stats, label + ".");
        };
        o.record.out = run_kernel(spec.bench, cells[tasks[i].cell].config,
                                  hooks);
        o.record.key = cells[tasks[i].cell].key.empty()
                           ? o.record.out.label
                           : cells[tasks[i].cell].key;
        o.record.label = o.record.out.label;
        o.record.repeat = tasks[i].repeat;
        o.record.wall_ms = wall_ms_since(task_t0);
        o.record.log = logs.text();

        std::ostringstream run_json;
        run_json << "{\"bench\":\"" << json_escape(spec.bench) << "\",\"key\":\""
                 << json_escape(o.record.key) << "\",\"label\":\""
                 << json_escape(o.record.label) << "\",\"repeat\":"
                 << o.record.repeat << ",\"params\":"
                 << cell_params_json(cells[tasks[i].cell].params)
                 << ",\"metrics\":{";
        bool first = true;
        for (const auto& [name, value] : o.record.out.metrics) {
          if (!first) run_json << ",";
          first = false;
          run_json << "\"" << json_escape(name)
                   << "\":" << sim::json_double(value);
        }
        run_json << "},\"stats\":";
        o.stats.dump_json(run_json);
        run_json << "}";
        o.record.stats_json = run_json.str();
        return o;
      },
      progress);
  const double wall_ms = wall_ms_since(t0);

  // Ordered replay of captured per-task logs (stderr, like direct runs).
  for (const auto& o : outcomes) {
    if (!o.record.log.empty()) {
      std::fwrite(o.record.log.data(), 1, o.record.log.size(), stderr);
    }
  }

  SweepReport report;
  report.tasks = tasks.size();
  report.wall_ms = wall_ms;
  for (const auto& o : outcomes) report.task_ms_sum += o.record.wall_ms;

  // Merged report: cells in expansion order, per-cell metric medians over
  // repeats. Deterministic: no wall-clock values, shortest-round-trip
  // doubles, fixed iteration order.
  std::ostringstream json;
  json << "{\"spec\":{\"bench\":\"" << json_escape(spec.bench)
       << "\",\"repeats\":" << spec.repeats << ",\"cells\":" << cells.size()
       << "},\"cells\":[";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const TaskOutcome& first_run = outcomes[c * spec.repeats];
    if (c != 0) json << ",";
    json << "{\"key\":\"" << json_escape(first_run.record.key)
         << "\",\"label\":\"" << json_escape(first_run.record.label)
         << "\",\"params\":" << cell_params_json(cells[c].params)
         << ",\"runs\":" << spec.repeats << ",\"metrics\":{";
    bool first_metric = true;
    for (std::size_t m = 0; m < first_run.record.out.metrics.size(); ++m) {
      const std::string& name = first_run.record.out.metrics[m].first;
      std::vector<double> values;
      for (int r = 0; r < spec.repeats; ++r) {
        values.push_back(
            outcomes[c * spec.repeats + static_cast<std::size_t>(r)]
                .record.out.metric(name));
      }
      if (!first_metric) json << ",";
      first_metric = false;
      json << "\"" << json_escape(name)
           << "\":{\"median\":" << sim::json_double(median_of(values))
           << ",\"min\":"
           << sim::json_double(*std::min_element(values.begin(), values.end()))
           << ",\"max\":"
           << sim::json_double(*std::max_element(values.begin(), values.end()))
           << "}";
    }
    json << "}";
    if (opt.merge_samplers) {
      // Shard-combined stats across the cell's repeats: counters add,
      // samplers merge (exact counts/quantiles, see Sampler::merge).
      sim::StatRegistry merged;
      for (int r = 0; r < spec.repeats; ++r) {
        merged.merge(
            outcomes[c * spec.repeats + static_cast<std::size_t>(r)].stats);
      }
      json << ",\"counters\":{";
      bool first_counter = true;
      for (const auto& [name, counter] : merged.counters()) {
        if (!first_counter) json << ",";
        first_counter = false;
        json << "\"" << json_escape(name) << "\":" << counter.value();
      }
      json << "},\"samplers\":{";
      bool first_sampler = true;
      for (const auto& [name, sampler] : merged.samplers()) {
        if (!first_sampler) json << ",";
        first_sampler = false;
        json << "\"" << json_escape(name) << "\":{\"count\":"
             << sampler.count() << ",\"mean\":"
             << sim::json_double(sampler.mean())
             << ",\"p50\":" << sim::json_double(sampler.p50())
             << ",\"p99\":" << sim::json_double(sampler.p99()) << "}";
      }
      json << "}";
    }
    json << "}";
  }
  json << "]}";
  report.json = json.str();

  for (auto& o : outcomes) report.runs.push_back(std::move(o.record));

  if (!opt.out_dir.empty()) {
    std::filesystem::create_directories(opt.out_dir);
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
      char name[64];
      std::snprintf(name, sizeof name, "run-%04zu.json", i);
      const std::string path = opt.out_dir + "/" + name;
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot write " + path);
      out << report.runs[i].stats_json << "\n";
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Fuzz-mode sweep
// ---------------------------------------------------------------------------

SweepReport run_fuzz_sweep(const SweepSpec& spec, const SweepOptions& opt) {
  fuzz::CampaignOptions campaign;
  campaign.episodes = spec.episodes;
  campaign.first_seed = spec.first_seed;
  campaign.epoch = sim::us(spec.epoch_us);
  campaign.mutation = fuzz::parse_mutation(spec.mutation);
  campaign.minimize = spec.minimize;
  campaign.flight_path = spec.flight_path;
  campaign.verbose = opt.verbose;
  campaign.jobs = opt.jobs;

  const auto t0 = std::chrono::steady_clock::now();
  const fuzz::CampaignResult res = fuzz::run_campaign(campaign, opt.log);
  const double wall_ms = wall_ms_since(t0);

  SweepReport report;
  report.tasks = res.episodes_run;
  report.failing = res.failing;
  report.repro_lines = res.repro_lines;
  report.wall_ms = wall_ms;
  for (const auto& ep : res.episodes) report.task_ms_sum += ep.wall_ms;

  std::ostringstream json;
  json << "{\"spec\":{\"fuzz\":true,\"episodes\":" << spec.episodes
       << ",\"first_seed\":" << spec.first_seed
       << ",\"epoch_us\":" << spec.epoch_us << ",\"mutation\":\""
       << json_escape(fuzz::mutation_name(campaign.mutation))
       << "\"},\"episodes\":[";
  for (std::size_t i = 0; i < res.episodes.size(); ++i) {
    const auto& ep = res.episodes[i];
    if (i != 0) json << ",";
    json << "{\"seed\":" << ep.seed << ",\"events\":" << ep.events
         << ",\"sim_time_ps\":" << ep.sim_time << ",\"checks\":" << ep.checks
         << ",\"violations\":[";
    for (std::size_t v = 0; v < ep.violations.size(); ++v) {
      if (v != 0) json << ",";
      json << "\"" << json_escape(ep.violations[v]) << "\"";
    }
    json << "]}";
  }
  json << "],\"summary\":{\"episodes_run\":" << res.episodes_run
       << ",\"failing\":" << res.failing << ",\"failing_seeds\":[";
  for (std::size_t i = 0; i < res.failing_seeds.size(); ++i) {
    if (i != 0) json << ",";
    json << res.failing_seeds[i];
  }
  json << "]},\"repros\":[";
  for (std::size_t i = 0; i < res.repro_lines.size(); ++i) {
    if (i != 0) json << ",";
    json << "\"" << json_escape(res.repro_lines[i]) << "\"";
  }
  json << "]}";
  report.json = json.str();
  return report;
}

}  // namespace

SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& opt) {
  return spec.fuzz ? run_fuzz_sweep(spec, opt) : run_bench_sweep(spec, opt);
}

// ---------------------------------------------------------------------------
// Golden / floor comparison
// ---------------------------------------------------------------------------

namespace {

const JsonValue* find_cell(const JsonValue& report, const std::string& key) {
  const JsonValue* cells = report.find("cells");
  if (cells == nullptr || cells->kind != JsonValue::kArr) return nullptr;
  for (const auto& cell : cells->arr) {
    const JsonValue* k = cell.find("key");
    if (k != nullptr && k->kind == JsonValue::kStr && k->str == key) {
      return &cell;
    }
  }
  return nullptr;
}

bool median_of_cell(const JsonValue& cell, const std::string& metric,
                    double& out) {
  const JsonValue* metrics = cell.find("metrics");
  if (metrics == nullptr) return false;
  const JsonValue* m = metrics->find(metric);
  if (m == nullptr) return false;
  const JsonValue* median = m->find("median");
  if (median == nullptr || median->kind != JsonValue::kNum) return false;
  out = median->num;
  return true;
}

}  // namespace

std::vector<CheckFailure> compare_reports(const std::string& report_json,
                                          const std::string& golden_json,
                                          double rel_tolerance) {
  std::vector<CheckFailure> failures;
  const JsonValue report = JsonParser(report_json).parse();
  const JsonValue golden = JsonParser(golden_json).parse();
  const JsonValue* golden_cells = golden.find("cells");
  if (golden_cells == nullptr || golden_cells->kind != JsonValue::kArr) {
    failures.push_back({"golden", "golden report has no \"cells\" array"});
    return failures;
  }
  for (const auto& gcell : golden_cells->arr) {
    const JsonValue* keyv = gcell.find("key");
    const std::string key =
        keyv != nullptr && keyv->kind == JsonValue::kStr ? keyv->str : "?";
    const JsonValue* cell = find_cell(report, key);
    if (cell == nullptr) {
      failures.push_back({key, "cell missing from report"});
      continue;
    }
    const JsonValue* gmetrics = gcell.find("metrics");
    if (gmetrics == nullptr) continue;
    for (const auto& [metric, gval] : gmetrics->obj) {
      const JsonValue* gmedian = gval.find("median");
      if (gmedian == nullptr || gmedian->kind != JsonValue::kNum) continue;
      double actual = 0;
      if (!median_of_cell(*cell, metric, actual)) {
        failures.push_back({key + "." + metric, "metric missing from report"});
        continue;
      }
      const double expected = gmedian->num;
      const double denom =
          std::max({std::fabs(expected), std::fabs(actual), 1e-12});
      if (std::fabs(actual - expected) > rel_tolerance * denom &&
          actual != expected) {
        std::ostringstream detail;
        detail << "expected " << expected << " ± " << rel_tolerance * 100
               << "%, got " << actual;
        failures.push_back({key + "." + metric, detail.str()});
      }
    }
  }
  return failures;
}

std::vector<CheckFailure> check_floors(const std::string& report_json,
                                       const std::string& floors_json) {
  std::vector<CheckFailure> failures;
  const JsonValue report = JsonParser(report_json).parse();
  const JsonValue floors_doc = JsonParser(floors_json).parse();
  const JsonValue* floors = floors_doc.find("floors");
  if (floors == nullptr || floors->kind != JsonValue::kObj) {
    failures.push_back({"floors", "floors file has no \"floors\" object"});
    return failures;
  }
  for (const auto& [path, floor] : floors->obj) {
    // "<cell key>.<metric>" — metric names contain no dots, split at last.
    const auto dot = path.rfind('.');
    if (dot == std::string::npos || floor.kind != JsonValue::kNum) {
      failures.push_back({path, "bad floor entry"});
      continue;
    }
    const std::string key = path.substr(0, dot);
    const std::string metric = path.substr(dot + 1);
    const JsonValue* cell = find_cell(report, key);
    if (cell == nullptr) {
      failures.push_back({path, "cell missing from report"});
      continue;
    }
    double actual = 0;
    if (!median_of_cell(*cell, metric, actual)) {
      failures.push_back({path, "metric missing from report"});
      continue;
    }
    if (actual < floor.num) {
      std::ostringstream detail;
      detail << "floor " << floor.num << ", got " << actual;
      failures.push_back({path, detail.str()});
    }
  }
  return failures;
}

}  // namespace ms::sweep
