#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ht/packet.hpp"
#include "sim/config.hpp"

namespace ms::sim {
class Engine;
}
namespace ms::core {
class Cluster;
}

namespace ms::sweep {

/// Observability callbacks a kernel host may install (all optional). The
/// figure-bench binaries adapt their bench::Env (tracer attach, time-series
/// sampler, stats capture); the sweep runner installs a stats capture only.
/// Kernels invoke them at the same points the original bench code did, so a
/// bench binary built on a kernel emits byte-identical stats/trace output.
struct KernelHooks {
  std::function<void(sim::Engine&, const std::string& label)> attach;
  std::function<void(sim::Engine&, core::Cluster&, const std::string& label)>
      start_timeseries;
  std::function<void(const std::string& label, const core::Cluster&)> capture;
};

/// One data point: a stable label ("hops=3") plus named metric values in
/// table order (the sweep report preserves this order).
struct CellOutput {
  std::string label;
  std::vector<std::pair<std::string, double>> metrics;

  void add(const std::string& name, double value) {
    metrics.emplace_back(name, value);
  }
  /// Value of a metric; throws std::out_of_range when absent.
  double metric(const std::string& name) const;
};

using KernelFn = CellOutput (*)(const sim::Config&, const KernelHooks&);

struct KernelDef {
  KernelFn fn;
  /// Grid-able cell parameters with their defaults, for --help output.
  const char* params;
  /// False for kernels whose metrics depend on wall-clock time
  /// (engine_overhead): excluded from byte-identical report comparisons;
  /// gate them with floors instead of goldens.
  bool deterministic;
};

/// Registry of per-point bench kernels. Each kernel runs ONE data point of
/// one figure/ablation study on a fully isolated Engine+Cluster built from
/// its own config, and returns that point's metrics — the unit of work
/// sim::ParallelExecutor fans out. The fig/ablation bench binaries loop
/// over these same kernels, so `memscale_sweep bench=fig6 grid.hops=...`
/// reproduces the binaries' numbers exactly.
const std::map<std::string, KernelDef>& kernels();

/// Looks up and runs one kernel; throws std::invalid_argument on an
/// unknown bench name (message lists the known ones).
CellOutput run_kernel(const std::string& bench, const sim::Config& cfg,
                      const KernelHooks& hooks = {});

/// Figure 7's scenario table (threads x servers x distance), shared between
/// the fig7 kernel (cell parameter `scenario` indexes it) and the bench
/// binary's printed table.
struct Fig7Scenario {
  const char* label;
  int threads;
  std::vector<ht::NodeId> servers;
  int hops;
};
const std::vector<Fig7Scenario>& fig7_scenarios();

}  // namespace ms::sweep
