// Per-point bench kernels: the run_point bodies of the figure/ablation
// benches, factored out of the binaries so one data point is a callable,
// isolated unit of work. Each kernel builds its OWN Engine + Cluster from
// the config it is handed and touches no state outside its stack frame —
// the instance-safety contract (ARCHITECTURE.md §10) that lets
// sim::ParallelExecutor run many of them concurrently.
//
// The numbers must stay byte-identical to the pre-refactor binaries, so
// every seed, spawn order and measurement point is preserved exactly.

#include "sweep/kernels.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "broker/broker.hpp"
#include "core/cluster.hpp"
#include "core/memory_space.hpp"
#include "core/runner.hpp"
#include "dsm/directory_dsm.hpp"
#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"
#include "sim/random.hpp"
#include "workloads/random_access.hpp"

namespace ms::sweep {

double CellOutput::metric(const std::string& name) const {
  for (const auto& [k, v] : metrics) {
    if (k == name) return v;
  }
  throw std::out_of_range("kernel '" + label + "' has no metric '" + name +
                          "'");
}

namespace {

core::MemorySpace::Params region_params() {
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  p.swap.resident_limit_bytes = 0;
  return p;
}

void attach(const KernelHooks& h, sim::Engine& e, const std::string& label) {
  if (h.attach) h.attach(e, label);
}
void start_timeseries(const KernelHooks& h, sim::Engine& e, core::Cluster& c,
                      const std::string& label) {
  if (h.start_timeseries) h.start_timeseries(e, c, label);
}
void capture(const KernelHooks& h, const std::string& label,
             const core::Cluster& c) {
  if (h.capture) h.capture(label, c);
}

// ---------------------------------------------------------------------------
// fig6: remote read latency vs. distance (one point = one hop count)
// ---------------------------------------------------------------------------

// Nodes at increasing XY distance from node 1 (corner (0,0)) on a 4x4 mesh:
// itself, then (1,0),(2,0),(3,0),(3,1),(3,2),(3,3).
constexpr ht::NodeId kServerAtHops[] = {1, 2, 3, 4, 8, 12, 16};

CellOutput fig6_kernel(const sim::Config& cfg, const KernelHooks& hooks) {
  const int hops = static_cast<int>(cfg.get_int("hops", 0));
  if (hops < 0 || hops > 6) {
    throw std::invalid_argument("fig6: hops must be 0..6");
  }
  const std::uint64_t accesses = cfg.get_u64("accesses", 4000);
  const std::uint64_t buffer = cfg.get_u64("buffer", std::uint64_t{64} << 20);
  const std::string label = "hops=" + std::to_string(hops);

  sim::Engine engine;
  attach(hooks, engine, label);
  core::Cluster cluster(engine, core::ClusterConfig::from(cfg));
  auto mp = region_params();
  // hop 0 places the buffer in node 1's own local memory; remote rows pin
  // the donor explicitly, so the auto policy only matters for hop 0.
  mp.placement = os::RegionManager::Placement::kAuto;
  core::MemorySpace space(cluster, 1, mp);

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = buffer;
  rp.accesses_per_thread = accesses;
  workloads::RandomAccess ra(space, rp);

  core::Runner setup(engine);
  setup.spawn(ra.setup({kServerAtHops[hops]}));
  setup.run_all();

  core::Runner run(engine);
  start_timeseries(hooks, engine, cluster, label);
  run.spawn(ra.thread_fn(/*core=*/0, /*thread_id=*/0));
  const sim::Time elapsed = run.run_all();

  const auto& rtt = cluster.rmc(1).round_trip();
  const double hit_rate = cluster.node(1).core(0).cache().hit_rate();
  capture(hooks, label, cluster);

  CellOutput out{label, {}};
  out.add("per_read_us", sim::to_us(elapsed) / static_cast<double>(accesses));
  out.add("rmc_rtt_us", rtt.count() ? rtt.mean() / 1e6 : 0.0);
  out.add("cache_hit_rate", hit_rate);
  out.add("server_node", static_cast<double>(kServerAtHops[hops]));
  return out;
}

// ---------------------------------------------------------------------------
// fig7: the random benchmark (one point = one scenario row)
// ---------------------------------------------------------------------------

constexpr ht::NodeId kFig7Client = 6;  // (1,1) on the 4x4 mesh

CellOutput fig7_kernel(const sim::Config& cfg, const KernelHooks& hooks) {
  const auto& scenarios = fig7_scenarios();
  const auto idx = static_cast<std::size_t>(cfg.get_int("scenario", 0));
  if (idx >= scenarios.size()) {
    throw std::invalid_argument("fig7: scenario must be 0.." +
                                std::to_string(scenarios.size() - 1));
  }
  const Fig7Scenario& sc = scenarios[idx];
  const std::uint64_t total = cfg.get_u64("accesses", 40'000);
  const std::uint64_t buffer = cfg.get_u64("buffer", std::uint64_t{256} << 20);

  sim::Engine engine;
  attach(hooks, engine, sc.label);
  core::Cluster cluster(engine, core::ClusterConfig::from(cfg));
  core::MemorySpace space(cluster, kFig7Client, region_params());

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = buffer / sc.servers.size();
  rp.accesses_per_thread = total / static_cast<std::uint64_t>(sc.threads);
  workloads::RandomAccess ra(space, rp);

  core::Runner setup(engine);
  setup.spawn(ra.setup(sc.servers));
  setup.run_all();

  core::Runner run(engine);
  start_timeseries(hooks, engine, cluster, sc.label);
  for (int t = 0; t < sc.threads; ++t) run.spawn(ra.thread_fn(t, t));
  const double elapsed_ms = sim::to_ms(run.run_all());
  capture(hooks, sc.label, cluster);

  CellOutput out{sc.label, {}};
  out.add("threads", sc.threads);
  out.add("servers", static_cast<double>(sc.servers.size()));
  out.add("hops", sc.hops);
  out.add("time_ms", elapsed_ms);
  out.add("Maccess_per_s",
          static_cast<double>(total) / (elapsed_ms * 1000.0));
  return out;
}

// ---------------------------------------------------------------------------
// fig8: server-side congestion (one point = one stressor-node count)
// ---------------------------------------------------------------------------

constexpr ht::NodeId kFig8Server = 6;
constexpr ht::NodeId kFig8Control = 2;
// Stressor nodes whose XY routes to node 6 avoid the control link 2->6.
constexpr ht::NodeId kFig8Stressors[] = {5, 7, 10, 14, 9, 11};

sim::Task<void> fig8_stress_thread(core::MemorySpace& space, int core,
                                   core::VAddr base, std::uint64_t words,
                                   std::uint64_t seed, const bool* stop) {
  core::ThreadCtx t{.core = core};
  sim::Rng rng(seed);
  while (!*stop) {
    co_await space.read_u64(t, base + rng.below(words) * 8);
  }
  co_await space.sync(t);
}

CellOutput fig8_kernel(const sim::Config& cfg, const KernelHooks& hooks) {
  const int stress_nodes = static_cast<int>(cfg.get_int("stress_nodes", 0));
  if (stress_nodes < 0 || stress_nodes > 6) {
    throw std::invalid_argument("fig8: stress_nodes must be 0..6");
  }
  const int threads_per_node =
      stress_nodes == 0 ? 0
                        : static_cast<int>(cfg.get_int("threads_per_node", 4));
  const std::uint64_t control_accesses = cfg.get_u64("accesses", 4000);
  const std::uint64_t buffer = cfg.get_u64("buffer", std::uint64_t{64} << 20);
  const std::uint64_t hot_pages_k =
      cfg.get_u64("--hot-pages", cfg.get_u64("hot_pages", 0));
  const std::string label = "stress_nodes=" + std::to_string(stress_nodes);

  sim::Engine engine;
  attach(hooks, engine, label);
  core::Cluster cluster(engine, core::ClusterConfig::from(cfg));

  // Control process on node 2.
  core::MemorySpace control_space(cluster, kFig8Control, region_params());
  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = buffer;
  rp.accesses_per_thread = control_accesses;
  workloads::RandomAccess control(control_space, rp);

  // Stressor processes, one space per node, all served by node 6.
  std::vector<std::unique_ptr<core::MemorySpace>> spaces;
  std::vector<core::VAddr> bases;
  core::Runner setup(engine);
  setup.spawn(control.setup({kFig8Server}));
  for (int n = 0; n < stress_nodes; ++n) {
    spaces.push_back(std::make_unique<core::MemorySpace>(
        cluster, kFig8Stressors[n], region_params()));
  }
  setup.run_all();

  bases.resize(spaces.size());
  core::Runner map_setup(engine);
  for (std::size_t n = 0; n < spaces.size(); ++n) {
    map_setup.spawn([](core::MemorySpace& s, core::VAddr* out,
                       std::uint64_t bytes) -> sim::Task<void> {
      *out = co_await s.map_range_on(bytes, kFig8Server);
    }(*spaces[n], &bases[n], buffer));
  }
  map_setup.run_all();

  // Observe the measured phase only: any earlier Runner::run_all drains the
  // engine, which would terminate the time-series sampler.
  start_timeseries(hooks, engine, cluster, label);
  if (hot_pages_k > 0) {
    cluster.hot_pages().enable();
    cluster.hot_pages().reset();
  }

  bool stop = false;
  for (std::size_t n = 0; n < spaces.size(); ++n) {
    for (int t = 0; t < threads_per_node; ++t) {
      engine.spawn(fig8_stress_thread(
          *spaces[n], t, bases[n], buffer / 8,
          1000 + n * 31 + static_cast<unsigned>(t), &stop));
    }
  }

  core::Runner run(engine);
  const sim::Time start_served = engine.now();
  const std::uint64_t served_before =
      cluster.rmc(kFig8Server).served_requests();
  run.spawn(control.thread_fn(0, 0));
  // Separate watcher (not part of the runner, or join() would wait on
  // itself): when the control thread finishes, stop the stressors.
  engine.spawn([](bool* flag, core::Runner* r) -> sim::Task<void> {
    co_await r->join();
    *flag = true;
  }(&stop, &run));
  engine.run();

  const sim::Time control_done = run.last_completion();
  const double elapsed_us = sim::to_us(control_done - start_served);
  const double rate =
      elapsed_us > 0
          ? static_cast<double>(cluster.rmc(kFig8Server).served_requests() -
                                served_before) /
                elapsed_us
          : 0.0;
  capture(hooks, label, cluster);
  if (hot_pages_k > 0) {
    // Which 4 KiB pages drive the server-side contention this point saw —
    // every stressor hammers node 6, so the top pages are its hot spots.
    std::printf("hot pages (stress_nodes=%d, top %llu of %zu):", stress_nodes,
                static_cast<unsigned long long>(hot_pages_k),
                cluster.hot_pages().distinct_pages());
    for (const auto& [page, count] :
         cluster.hot_pages().top(static_cast<std::size_t>(hot_pages_k))) {
      std::printf(" 0x%llx:%llu",
                  static_cast<unsigned long long>(page << 12),
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }

  CellOutput out{label, {}};
  out.add("total_stress_threads", stress_nodes * threads_per_node);
  out.add("control_ms", sim::to_ms(control_done - start_served));
  out.add("server_Mreq_per_s", rate);
  return out;
}

// ---------------------------------------------------------------------------
// ablation_outstanding: RMC outstanding-request limit
// ---------------------------------------------------------------------------

CellOutput ablation_outstanding_kernel(const sim::Config& cfg,
                                       const KernelHooks& hooks) {
  const int outstanding = static_cast<int>(cfg.get_int("outstanding", 1));
  const int streams = static_cast<int>(cfg.get_int("streams", 8));
  const std::uint64_t total = cfg.get_u64("accesses", 20'000);
  const std::string label = "outstanding=" + std::to_string(outstanding);

  sim::Config point = cfg;
  point.set("rmc.outstanding", std::to_string(outstanding));
  sim::Engine engine;
  attach(hooks, engine, label);
  core::Cluster cluster(engine, core::ClusterConfig::from(point));
  core::MemorySpace space(cluster, 1, region_params());

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = std::uint64_t{64} << 20;
  rp.accesses_per_thread = total / static_cast<std::uint64_t>(streams);
  workloads::RandomAccess ra(space, rp);

  core::Runner setup(engine);
  setup.spawn(ra.setup({2}));
  setup.run_all();

  core::Runner run(engine);
  for (int s = 0; s < streams; ++s) {
    run.spawn(ra.thread_fn(/*core=*/0, /*thread_id=*/s));  // same core!
  }
  const double time_ms = sim::to_ms(run.run_all());
  capture(hooks, label, cluster);

  CellOutput out{label, {}};
  out.add("time_ms", time_ms);
  return out;
}

// ---------------------------------------------------------------------------
// ablation_coherency: non-coherent regions vs. coherent DSM
// ---------------------------------------------------------------------------

CellOutput ablation_coherency_kernel(const sim::Config& cfg,
                                     const KernelHooks& hooks) {
  // The swept parameter is named `sharers`, NOT `nodes`: the cluster itself
  // always keeps its configured node count (default 16) and only the number
  // of processes touching memory grows — `nodes` would be swallowed by
  // ClusterConfig::from and shrink the machine instead.
  const int nodes = static_cast<int>(cfg.get_int("sharers", 1));
  const std::uint64_t accesses = cfg.get_u64("accesses", 3'000);
  const double write_fraction = cfg.get_double("write_fraction", 0.3);
  const std::string label = "nodes=" + std::to_string(nodes);

  // Our architecture: `nodes` independent processes, each hammering its own
  // remote region. No coherence traffic can exist between them.
  double regions_us = 0;
  std::uint64_t regions_probes = 0;
  {
    sim::Engine engine;
    attach(hooks, engine, label);
    core::Cluster cluster(engine, core::ClusterConfig::from(cfg));
    std::vector<std::unique_ptr<core::MemorySpace>> spaces;
    std::vector<std::unique_ptr<workloads::RandomAccess>> loads;

    core::Runner setup(engine);
    for (int n = 0; n < nodes; ++n) {
      const auto home = static_cast<ht::NodeId>(n + 1);
      spaces.push_back(
          std::make_unique<core::MemorySpace>(cluster, home, region_params()));
      workloads::RandomAccess::Params rp;
      rp.buffer_bytes = std::uint64_t{16} << 20;
      rp.accesses_per_thread = accesses;
      loads.push_back(
          std::make_unique<workloads::RandomAccess>(*spaces.back(), rp));
      // Donate from the node "across" the mesh to keep traffic symmetric.
      const auto donor =
          static_cast<ht::NodeId>((n + nodes / 2) % cluster.num_nodes() + 1);
      setup.spawn(loads.back()->setup(
          {donor == home
               ? static_cast<ht::NodeId>(home % cluster.num_nodes() + 1)
               : donor}));
    }
    setup.run_all();

    core::Runner run(engine);
    for (auto& load : loads) run.spawn(load->thread_fn(0, 0));
    const sim::Time elapsed = run.run_all();
    regions_us = sim::to_us(elapsed) / static_cast<double>(accesses);
    regions_probes = cluster.total_intra_node_probes();
    capture(hooks, label, cluster);
  }

  // The coherent-DSM comparator: `nodes` nodes read/write one shared array.
  double dsm_us = 0;
  std::uint64_t dsm_msgs = 0;
  {
    sim::Engine engine;
    attach(hooks, engine, label + ".dsm");
    core::Cluster cluster(engine, core::ClusterConfig::from(cfg));
    dsm::DirectoryDsm dsm(
        engine, cluster.fabric(),
        [&cluster](ht::NodeId home, ht::PAddr addr, std::uint32_t bytes,
                   bool write, sim::TraceContext ctx) {
          return cluster.node(home).serve_remote(addr, bytes, write, ctx);
        },
        dsm::DirectoryDsm::Params{.num_nodes = cluster.num_nodes()});
    // Inter-node events land in the same profiler as the cluster's
    // intra-node ones, so a coh_profile run shows the tax split by domain.
    dsm.set_profiler(&cluster.sharing());

    core::Runner run(engine);
    for (int n = 0; n < nodes; ++n) {
      run.spawn([](dsm::DirectoryDsm& d, ht::NodeId self, std::uint64_t count,
                   double wf, std::uint64_t seed) -> sim::Task<void> {
        sim::Rng rng(seed);
        for (std::uint64_t i = 0; i < count; ++i) {
          // Hot shared working set: 4096 lines shared by everyone.
          const ht::PAddr addr = rng.below(4096) * 64;
          co_await d.access(self, addr, 8, rng.chance(wf));
        }
      }(dsm, static_cast<ht::NodeId>(n + 1), accesses, write_fraction,
        9000 + static_cast<std::uint64_t>(n)));
    }
    const sim::Time elapsed = run.run_all();
    dsm_us = sim::to_us(elapsed) / static_cast<double>(accesses);
    dsm_msgs = dsm.coherence_messages();
    capture(hooks, label + ".dsm", cluster);
  }

  CellOutput out{label, {}};
  out.add("regions_us_per_access", regions_us);
  out.add("regions_probes", static_cast<double>(regions_probes));
  out.add("dsm_us_per_access", dsm_us);
  out.add("dsm_coh_msgs", static_cast<double>(dsm_msgs));
  return out;
}

// ---------------------------------------------------------------------------
// ablation_prefetch: RMC stream prefetcher degree
// ---------------------------------------------------------------------------

CellOutput ablation_prefetch_kernel(const sim::Config& cfg,
                                    const KernelHooks& hooks) {
  const int degree = static_cast<int>(cfg.get_int("degree", 0));
  const std::uint64_t bytes = cfg.get_u64("bytes", std::uint64_t{4} << 20);
  const std::string label = "degree=" + std::to_string(degree);

  sim::Config point = cfg;
  point.set("rmc.prefetch_degree", std::to_string(degree));
  sim::Engine engine;
  attach(hooks, engine, label);
  core::Cluster cluster(engine, core::ClusterConfig::from(point));
  core::MemorySpace space(cluster, 1, region_params());

  core::Runner run(engine);
  sim::Time elapsed = 0;
  run.spawn([](core::MemorySpace& s, sim::Engine& e, std::uint64_t n,
               sim::Time* out) -> sim::Task<void> {
    auto base = co_await s.map_range(n);
    core::ThreadCtx t;
    const sim::Time start = e.now();
    for (std::uint64_t off = 0; off < n; off += 64) {
      co_await s.read_u64(t, base + off);
      t.compute(sim::ns(10));  // per-element work of a streaming kernel
    }
    co_await s.sync(t);
    *out = e.now() - start;
  }(space, engine, bytes, &elapsed));
  run.run_all();
  capture(hooks, label, cluster);

  CellOutput out{label, {}};
  out.add("scan_ms", sim::to_ms(elapsed));
  out.add("cache_hit_rate", cluster.node(1).core(0).cache().hit_rate());
  out.add("prefetch_fills",
          static_cast<double>(cluster.node(1).prefetch_fills()));
  return out;
}

// ---------------------------------------------------------------------------
// ablation_migration: live page migration overhead (one point = one period)
// ---------------------------------------------------------------------------

sim::Task<void> migration_driver(sim::Engine& e, broker::MemoryBroker& brk,
                                 core::MemorySpace& space, sim::Time period,
                                 const bool* stop) {
  std::uint64_t rng_state = 0x243f6a8885a308d3ULL;  // fixed: deterministic
  while (!*stop) {
    co_await e.delay(period);
    if (*stop) break;
    co_await brk.migrate_any(space, ++rng_state);
  }
}

CellOutput ablation_migration_kernel(const sim::Config& cfg,
                                     const KernelHooks& hooks) {
  const std::uint64_t period_us = cfg.get_u64("period_us", 0);
  const std::uint64_t accesses = cfg.get_u64("accesses", 6'000);
  const std::uint64_t buffer = cfg.get_u64("buffer", std::uint64_t{1} << 20);
  const std::string label = "period_us=" + std::to_string(period_us);

  sim::Engine engine;
  attach(hooks, engine, label);
  core::Cluster cluster(engine, core::ClusterConfig::from(cfg));
  // period_us=0 is the true no-broker baseline: no broker is constructed at
  // all, so its stats dump carries no broker keys (nonzero-only convention).
  // Broker before the space: teardown destroys the space while the gate it
  // points at is still alive (ARCHITECTURE.md §11 lifetime rule).
  std::unique_ptr<broker::MemoryBroker> brk;
  if (period_us > 0) {
    brk = std::make_unique<broker::MemoryBroker>(
        cluster, broker::MemoryBroker::Params{});
  }
  core::MemorySpace space(cluster, 1, region_params());
  if (brk) brk->attach(space);

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = buffer;
  rp.accesses_per_thread = accesses;
  workloads::RandomAccess ra(space, rp);

  core::Runner setup(engine);
  setup.spawn(ra.setup({2}));
  setup.run_all();

  start_timeseries(hooks, engine, cluster, label);
  bool stop = false;
  if (brk) {
    engine.spawn(
        migration_driver(engine, *brk, space, sim::us(period_us), &stop));
  }

  core::Runner run(engine);
  const sim::Time start = engine.now();
  run.spawn(ra.thread_fn(/*core=*/0, /*thread_id=*/0));
  // Watcher (not part of the runner, as in fig8): the driver parks on its
  // period delay, so flip the stop flag when the workload finishes.
  engine.spawn([](bool* flag, core::Runner* r) -> sim::Task<void> {
    co_await r->join();
    *flag = true;
  }(&stop, &run));
  engine.run();

  capture(hooks, label, cluster);

  CellOutput out{label, {}};
  out.add("run_ms", sim::to_ms(run.last_completion() - start));
  out.add("migrations",
          brk ? static_cast<double>(brk->migration().migrations()) : 0.0);
  out.add("blackout_us_mean",
          brk && brk->migration().blackout().count()
              ? brk->migration().blackout().mean() / 1e6
              : 0.0);
  out.add("parked_waits",
          brk ? static_cast<double>(brk->migration().parked_waits()) : 0.0);
  return out;
}

// ---------------------------------------------------------------------------
// ablation_topology: fabric topology (one point = one topology)
// ---------------------------------------------------------------------------

CellOutput ablation_topology_kernel(const sim::Config& cfg,
                                    const KernelHooks& hooks) {
  const std::string topo = cfg.get_str("topology", "mesh2d");
  const std::uint64_t lat_accesses = cfg.get_u64("lat_accesses", 400);
  const std::uint64_t stress_accesses = cfg.get_u64("stress_accesses", 3'000);
  const std::string label = "topology=" + topo;

  sim::Config point = cfg;
  point.set("topology", topo);

  // Zero-load latency: one client, every possible server in turn.
  double avg_lat_us = 0;
  {
    sim::Engine engine;
    core::Cluster cluster(engine, core::ClusterConfig::from(point));
    core::MemorySpace space(cluster, 1, region_params());

    double total_us = 0;
    int servers = 0;
    for (ht::NodeId server = 2;
         server <= static_cast<ht::NodeId>(cluster.num_nodes()); ++server) {
      workloads::RandomAccess::Params rp;
      rp.buffer_bytes = std::uint64_t{8} << 20;
      rp.accesses_per_thread = lat_accesses;
      auto ra = std::make_unique<workloads::RandomAccess>(space, rp);
      core::Runner setup(engine);
      setup.spawn(ra->setup({server}));
      setup.run_all();
      core::Runner run(engine);
      run.spawn(ra->thread_fn(0, 0));
      total_us += sim::to_us(run.run_all()) / static_cast<double>(lat_accesses);
      ++servers;
    }
    avg_lat_us = total_us / servers;
  }

  // Bisection stress: every node hammers a partner across the machine.
  double stress_ms = 0;
  {
    sim::Engine engine;
    attach(hooks, engine, label);
    core::Cluster cluster(engine, core::ClusterConfig::from(point));
    const int n = cluster.num_nodes();

    std::vector<std::unique_ptr<core::MemorySpace>> spaces;
    std::vector<std::unique_ptr<workloads::RandomAccess>> loads;
    core::Runner setup(engine);
    for (int i = 0; i < n; ++i) {
      const auto home = static_cast<ht::NodeId>(i + 1);
      const auto partner = static_cast<ht::NodeId>((i + n / 2) % n + 1);
      spaces.push_back(
          std::make_unique<core::MemorySpace>(cluster, home, region_params()));
      workloads::RandomAccess::Params rp;
      rp.buffer_bytes = std::uint64_t{8} << 20;
      rp.accesses_per_thread = stress_accesses;
      loads.push_back(
          std::make_unique<workloads::RandomAccess>(*spaces.back(), rp));
      setup.spawn(loads.back()->setup({partner}));
    }
    setup.run_all();

    core::Runner run(engine);
    for (auto& load : loads) {
      run.spawn(load->thread_fn(0, 0));
      run.spawn(load->thread_fn(1, 1));
    }
    stress_ms = sim::to_ms(run.run_all());
    capture(hooks, label, cluster);
  }

  CellOutput out{label, {}};
  out.add("avg_remote_read_us", avg_lat_us);
  out.add("all_pairs_stress_ms", stress_ms);
  return out;
}

// ---------------------------------------------------------------------------
// engine_overhead: raw scheduler throughput (wall-clock — nondeterministic)
// ---------------------------------------------------------------------------

sim::Time overhead_next_delay(sim::Rng& rng) {
  // Mix of wheel-level scales: mostly sub-ns..ns gaps, some us-scale.
  const std::uint64_t r = rng.below(100);
  if (r < 70) return sim::ps(rng.below(4096));
  if (r < 95) return sim::ns(rng.below(1000));
  return sim::us(1 + rng.below(16));
}

struct OverheadCallbackLoop {
  sim::Engine& e;
  sim::Rng rng{12345};
  std::uint64_t remaining;
  void pump() {
    if (remaining == 0) return;
    --remaining;
    e.schedule(overhead_next_delay(rng), [this] { pump(); });
  }
};

sim::Task<void> overhead_coro_loop(sim::Engine& e, sim::Rng& rng,
                                   std::uint64_t* remaining) {
  while (*remaining > 0) {
    --*remaining;
    co_await e.delay(overhead_next_delay(rng));
  }
}

CellOutput engine_overhead_kernel(const sim::Config& cfg,
                                  const KernelHooks&) {
  const std::uint64_t events = cfg.get_u64("events", 2'000'000);
  const int pending = static_cast<int>(cfg.get_int("pending", 1024));

  CellOutput out{"engine_overhead", {}};
  {
    sim::Engine e;
    OverheadCallbackLoop loop{e, sim::Rng(12345), events};
    for (int i = 0; i < pending; ++i) loop.pump();
    const auto t0 = std::chrono::steady_clock::now();
    e.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    out.add("callback_events_per_sec",
            static_cast<double>(e.events_processed()) / secs);
    out.add("callback_events", static_cast<double>(e.events_processed()));
  }
  {
    sim::Engine e;
    sim::Rng rng(777);
    std::uint64_t remaining = events;
    for (int i = 0; i < pending; ++i) {
      e.spawn(overhead_coro_loop(e, rng, &remaining));
    }
    const auto t0 = std::chrono::steady_clock::now();
    e.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    out.add("coro_events_per_sec",
            static_cast<double>(e.events_processed()) / secs);
    out.add("coro_events", static_cast<double>(e.events_processed()));
  }
  return out;
}

// ---------------------------------------------------------------------------
// memop_path: simulated-access throughput of the full memory-op path
// (wall-clock — nondeterministic). One cell runs the same cache-hit-heavy
// loop through each backing mode: kLocal, kRemoteRegion and kRemoteSwap.
// ---------------------------------------------------------------------------

sim::Task<void> memop_loop(core::MemorySpace& space, core::ThreadCtx* t,
                           os::VAddr base, std::uint64_t buffer_bytes,
                           std::uint64_t accesses) {
  for (std::uint64_t i = 0; i < accesses; ++i) {
    const os::VAddr va = base + (i * 8) % buffer_bytes;
    if ((i & 3) == 3) {
      co_await space.write_u64(*t, va, i);
    } else {
      co_await space.read_u64(*t, va);
    }
  }
  co_await space.sync(*t);
}

struct MemopModeResult {
  double accesses_per_sec = 0;
  double cache_hit_rate = 0;
  double fastpath_hits = 0;
  double slowpath_accesses = 0;
  double tlb_flat_probes = 0;
  double frames_pooled = 0;
  double frames_heap = 0;
};

MemopModeResult memop_run_mode(const sim::Config& cfg,
                               core::MemorySpace::Mode mode,
                               std::uint64_t accesses,
                               std::uint64_t buffer_bytes) {
  sim::Engine engine;
  core::Cluster cluster(engine, core::ClusterConfig::from(cfg));
  const std::uint64_t pooled0 = sim::FramePool::frames_pooled();
  const std::uint64_t heap0 = sim::FramePool::frames_heap();

  core::MemorySpace::Params sp;
  sp.mode = mode;
  if (mode == core::MemorySpace::Mode::kRemoteRegion) {
    sp.placement = os::RegionManager::Placement::kRemoteOnly;
  }
  if (mode == core::MemorySpace::Mode::kRemoteSwap) {
    sp.swap.resident_limit_bytes = buffer_bytes * 2;
  }
  core::MemorySpace space(cluster, 1, sp);

  core::Runner setup(engine);
  os::VAddr base = 0;
  setup.spawn([](core::MemorySpace& s, std::uint64_t bytes,
                 os::VAddr* out) -> sim::Task<void> {
    *out = co_await s.map_range(bytes);
  }(space, buffer_bytes, &base));
  setup.run_all();
  // Touch every page functionally so swap mode starts warm (resident).
  for (os::VAddr va = base; va < base + buffer_bytes; va += 4096) {
    space.poke_pod<std::uint64_t>(va, va);
  }

  core::ThreadCtx t;
  core::Runner run(engine);
  run.spawn(memop_loop(space, &t, base, buffer_bytes, accesses));
  const auto t0 = std::chrono::steady_clock::now();
  run.run_all();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  MemopModeResult r;
  r.accesses_per_sec = static_cast<double>(accesses) / secs;
  r.cache_hit_rate = cluster.node(1).core(0).cache().hit_rate();
  r.fastpath_hits = static_cast<double>(cluster.node(1).fastpath_hits());
  r.slowpath_accesses =
      static_cast<double>(cluster.node(1).slowpath_accesses());
  r.tlb_flat_probes = static_cast<double>(space.tlb().flat_probes());
  r.frames_pooled =
      static_cast<double>(sim::FramePool::frames_pooled() - pooled0);
  r.frames_heap = static_cast<double>(sim::FramePool::frames_heap() - heap0);
  return r;
}

CellOutput memop_path_kernel(const sim::Config& cfg, const KernelHooks&) {
  const std::uint64_t accesses = cfg.get_u64("accesses", 1'000'000);
  const std::uint64_t buffer = cfg.get_u64("buffer", std::uint64_t{64} << 10);

  CellOutput out{"memop_path", {}};
  const struct {
    const char* name;
    core::MemorySpace::Mode mode;
  } kModes[] = {
      {"local", core::MemorySpace::Mode::kLocal},
      {"region", core::MemorySpace::Mode::kRemoteRegion},
      {"swap", core::MemorySpace::Mode::kRemoteSwap},
  };
  for (const auto& m : kModes) {
    const MemopModeResult r = memop_run_mode(cfg, m.mode, accesses, buffer);
    out.add(std::string(m.name) + "_accesses_per_sec", r.accesses_per_sec);
    out.add(std::string(m.name) + "_cache_hit_rate", r.cache_hit_rate);
    out.add(std::string(m.name) + "_fastpath_hits", r.fastpath_hits);
    out.add(std::string(m.name) + "_slowpath_accesses", r.slowpath_accesses);
    out.add(std::string(m.name) + "_tlb_flat_probes", r.tlb_flat_probes);
    out.add(std::string(m.name) + "_frames_pooled", r.frames_pooled);
    out.add(std::string(m.name) + "_frames_heap", r.frames_heap);
  }
  out.add("accesses", static_cast<double>(accesses));
  return out;
}

}  // namespace

const std::vector<Fig7Scenario>& fig7_scenarios() {
  // Interior node 6 at (1,1): 1-hop {5,7,2,10}, 2-hop {1,3,9,11},
  // 3-hop {4,12,13,15}.
  static const std::vector<Fig7Scenario> kScenarios = {
      {"1 server, 1t", 1, {5}, 1},
      {"1 server, 2t", 2, {5}, 1},
      {"1 server, 4t", 4, {5}, 1},
      {"4 servers, 4t, 1 hop", 4, {5, 7, 2, 10}, 1},
      {"4 servers, 4t, 2 hops", 4, {1, 3, 9, 11}, 2},
      {"4 servers, 4t, 3 hops", 4, {4, 12, 13, 15}, 3},
  };
  return kScenarios;
}

const std::map<std::string, KernelDef>& kernels() {
  static const std::map<std::string, KernelDef> kKernels = {
      {"fig6",
       {&fig6_kernel, "hops=0..6 accesses=4000 buffer=64M", true}},
      {"fig7",
       {&fig7_kernel, "scenario=0..5 accesses=40000 buffer=256M", true}},
      {"fig8",
       {&fig8_kernel,
        "stress_nodes=0..6 threads_per_node=4 accesses=4000 buffer=64M",
        true}},
      {"ablation_outstanding",
       {&ablation_outstanding_kernel,
        "outstanding=1,2,4,8 streams=8 accesses=20000", true}},
      {"ablation_coherency",
       {&ablation_coherency_kernel,
        "sharers=1,2,4,8,16 accesses=3000 write_fraction=0.3", true}},
      {"ablation_prefetch",
       {&ablation_prefetch_kernel, "degree=0,2,4,8 bytes=4M", true}},
      {"ablation_migration",
       {&ablation_migration_kernel,
        "period_us=0,400,200,100 accesses=6000 buffer=1M", true}},
      {"ablation_topology",
       {&ablation_topology_kernel,
        "topology=mesh2d,torus2d,ring,star,full lat_accesses=400 "
        "stress_accesses=3000",
        true}},
      {"engine_overhead",
       {&engine_overhead_kernel, "events=2000000 pending=1024", false}},
      {"memop_path",
       {&memop_path_kernel, "accesses=1000000 buffer=64K", false}},
  };
  return kKernels;
}

CellOutput run_kernel(const std::string& bench, const sim::Config& cfg,
                      const KernelHooks& hooks) {
  const auto& reg = kernels();
  const auto it = reg.find(bench);
  if (it == reg.end()) {
    std::string known;
    for (const auto& [name, _] : reg) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw std::invalid_argument("unknown bench kernel '" + bench +
                                "' (known: " + known + ")");
  }
  return it->second.fn(cfg, hooks);
}

}  // namespace ms::sweep
