#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hpp"
#include "sweep/kernels.hpp"

namespace ms::sweep {

/// One grid axis: "grid.hops=0,1,2" or "grid.hops=0..6" (inclusive integer
/// range). Cells are the cartesian product of all axes, expanded with the
/// first-declared axis outermost, so expansion order is deterministic.
struct GridAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Declarative sweep specification: a bench kernel × parameter grid, or a
/// fuzz campaign of N seeded episodes. Parsed from key=value tokens (spec
/// file lines and/or CLI arguments; '#' starts a comment; later tokens
/// override earlier ones, so CLI arguments override the spec file).
struct SweepSpec {
  // Bench mode.
  std::string bench;          ///< kernel name (see sweep::kernels())
  std::vector<GridAxis> axes; ///< grid.<key>=v1,v2,... tokens, declaration order
  int repeats = 1;            ///< runs per cell; report shows median/min/max
  sim::Config base;           ///< every other key: cell + cluster parameters

  // Fuzz mode (fuzz=1): mirrors fuzz::CampaignOptions.
  bool fuzz = false;
  std::uint64_t episodes = 64;
  std::uint64_t first_seed = 1;
  std::uint64_t epoch_us = 20;
  bool minimize = true;
  std::string mutation;       ///< fuzz mutation name ("" = none)
  std::string flight_path;    ///< dump MSFLIGHT rings for failing seeds

  static SweepSpec parse_tokens(const std::vector<std::string>& tokens);
  /// Loads a spec file then applies `extra` tokens on top.
  static SweepSpec load(const std::string& path,
                        const std::vector<std::string>& extra);

  struct Cell {
    std::vector<std::pair<std::string, std::string>> params;  ///< grid point
    sim::Config config;  ///< base + grid overrides, handed to the kernel
    std::string key;     ///< "k1=v1 k2=v2" in axis order ("" when no grid)
  };
  std::vector<Cell> expand() const;
};

/// One completed task: a (cell × repeat) kernel run. Everything in here is
/// deterministic except wall_ms, which never enters the report JSON.
struct RunRecord {
  std::string key;         ///< cell key (grid params) or kernel label
  std::string label;       ///< kernel-assigned label ("hops=3")
  int repeat = 0;
  CellOutput out;
  std::string stats_json;  ///< full per-run dump: params, metrics, stats
  std::string log;         ///< captured sim::Log lines of this task
  double wall_ms = 0;
};

struct SweepReport {
  std::string json;     ///< merged report (deterministic; byte-identical
                        ///< across --jobs values for the same spec)
  std::vector<RunRecord> runs;  ///< bench mode: every task, in task order
  std::uint64_t tasks = 0;
  std::uint64_t failing = 0;    ///< fuzz mode: failing episodes
  std::vector<std::string> repro_lines;  ///< fuzz mode
  double wall_ms = 0;       ///< end-to-end wall clock of the run phase
  double task_ms_sum = 0;   ///< sum of per-task wall clocks ("serial cost")
};

struct SweepOptions {
  int jobs = 1;             ///< worker threads (<= 0: hardware concurrency)
  std::string out_dir;      ///< write per-run stats JSON files here ("" = off)
  bool merge_samplers = false;  ///< include per-cell merged sampler stats
  bool verbose = false;     ///< progress lines to `log`
  std::ostream* log = nullptr;  ///< campaign/progress output (fuzz mode uses
                                ///< it exactly like fuzz::run_campaign)
};

/// Expands the spec into tasks, runs them across a sim::ParallelExecutor
/// (one isolated Engine+Cluster per task), and aggregates per-run stats
/// into one merged report with per-cell medians over repeats. Fuzz specs
/// run the seeded episode campaign in parallel with byte-identical
/// per-episode results and campaign log regardless of jobs.
SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& opt);

/// A golden/floor mismatch. `where` names the cell+metric, `detail` the
/// values involved.
struct CheckFailure {
  std::string where;
  std::string detail;
};

/// Compares a report against a committed golden report: every cell and
/// metric median in the golden must exist in `report_json` and match within
/// `rel_tolerance` (relative; 0 = exact). Extra cells in the new report are
/// ignored (grids may grow), missing ones fail.
std::vector<CheckFailure> compare_reports(const std::string& report_json,
                                          const std::string& golden_json,
                                          double rel_tolerance);

/// Checks floor constraints: floors_json is {"floors":{"<cell key>.<metric>"
/// : minimum, ...}}; each named metric's median must be >= its floor. Used
/// for wall-clock throughput gates where goldens would be flaky.
std::vector<CheckFailure> check_floors(const std::string& report_json,
                                       const std::string& floors_json);

}  // namespace ms::sweep
