#include "node/core.hpp"

// Core is header-only; this translation unit anchors the module.
namespace ms::node {}
