#pragma once

#include "mem/cache.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"

namespace ms::node {

/// One CPU core: a private cache plus the two outstanding-request limits
/// that shape the prototype's behaviour.
///
/// An Opteron core can keep eight ordinary memory requests in flight, but
/// only ONE request targeted at the RMC-mapped region, because the RMC is
/// presented as a memory-mapped I/O unit (paper Sec. IV-B). That single
/// remote slot is the reason a thread cannot pipeline remote misses and is
/// ablated by bench_ablation_outstanding.
class Core {
 public:
  Core(sim::Engine& engine, int index, const mem::Cache::Params& cache,
       int local_outstanding, int remote_outstanding)
      : index_(index),
        cache_(cache),
        local_slots_(engine, local_outstanding),
        remote_slots_(engine, remote_outstanding) {}

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  int index() const { return index_; }
  mem::Cache& cache() { return cache_; }
  const mem::Cache& cache() const { return cache_; }
  sim::Semaphore& local_slots() { return local_slots_; }
  sim::Semaphore& remote_slots() { return remote_slots_; }

 private:
  int index_;
  mem::Cache cache_;
  sim::Semaphore local_slots_;
  sim::Semaphore remote_slots_;
};

}  // namespace ms::node
