#include "node/node.hpp"

#include <bit>
#include <stdexcept>
#include <string>

#include "sim/tracer.hpp"

namespace ms::node {

Node::Node(sim::Engine& engine, ht::NodeId id, const Params& p)
    : engine_(engine),
      id_(id),
      params_(p),
      track_("node." + std::to_string(id)),
      addr_map_(p.sockets, p.local_bytes),
      prefetcher_(p.prefetch, p.sockets * p.cores_per_socket) {
  const int n_cores = p.sockets * p.cores_per_socket;
  cores_.reserve(static_cast<std::size_t>(n_cores));
  std::vector<mem::Cache*> caches;
  for (int c = 0; c < n_cores; ++c) {
    cores_.push_back(std::make_unique<Core>(engine, c, p.cache,
                                            p.core_local_outstanding,
                                            p.core_remote_outstanding));
    caches.push_back(&cores_.back()->cache());
    caches.back()->bind_trace(&engine, "cache.n" + std::to_string(id) + ".c" +
                                           std::to_string(c));
  }
  directory_ = std::make_unique<mem::CoherenceDirectory>(p.coherence, caches);
  mcs_.reserve(static_cast<std::size_t>(p.sockets));
  for (int s = 0; s < p.sockets; ++s) {
    mcs_.push_back(std::make_unique<mem::MemoryController>(
        engine, "node" + std::to_string(id) + ".mc" + std::to_string(s),
        p.mc));
  }
}

void Node::attach_rmc(rmc::Rmc* rmc) {
  rmc_ = rmc;
  rmc_->set_local_service(
      [this](ht::PAddr local, std::uint32_t bytes, bool is_write,
             sim::TraceContext ctx) {
        return serve_remote(local, bytes, is_write, ctx);
      });
}

int Node::socket_hops(int a, int b) const {
  return std::popcount(static_cast<unsigned>(a) ^ static_cast<unsigned>(b));
}

sim::Task<void> Node::serve_remote(ht::PAddr local_addr, std::uint32_t bytes,
                                   bool is_write, sim::TraceContext ctx) {
  {
    // Donor-side intra-node transport counts as memory service time.
    sim::SegmentSpan xbar(engine_, ctx, track_, "crossbar",
                          sim::Segment::kMemory);
    co_await engine_.delay(params_.crossbar_latency);
  }
  // The RMC sits in the HTX slot attached to socket 0; reaching another
  // socket's controller crosses cHT links.
  const int target = addr_map_.socket_of_local(local_addr);
  const int hops = socket_hops(0, target);
  if (hops > 0) {
    sim::SegmentSpan numa(engine_, ctx, track_, "socket_hops",
                          sim::Segment::kMemory);
    co_await engine_.delay(params_.socket_hop_latency *
                           static_cast<sim::Time>(hops));
  }
  co_await mc(target).access(local_addr, bytes, is_write, ctx);
}

sim::Task<void> Node::fetch(int core, ht::PAddr paddr, std::uint32_t bytes,
                            bool is_write, sim::TraceContext ctx) {
  Core& c = *cores_[static_cast<std::size_t>(core)];
  {
    sim::SegmentSpan xbar(engine_, ctx, track_, "crossbar",
                          sim::Segment::kOther);
    co_await engine_.delay(params_.crossbar_latency);
  }
  if (has_prefix(paddr)) {
    remote_accesses_.inc();
    if (params_.remote_sw_overhead != 0) {
      sim::SegmentSpan sw(engine_, ctx, track_, "sw_overhead",
                          sim::Segment::kOther);
      co_await engine_.delay(params_.remote_sw_overhead);
    }
    const sim::Time asked = engine_.now();
    co_await c.remote_slots().acquire();
    sim::record_wait(engine_, track_, "remote_slot.wait", asked, ctx);
    sim::SemToken slot(c.remote_slots());
    co_await rmc_->client_access(paddr, bytes, is_write, ctx);
  } else {
    local_accesses_.inc();
    const sim::Time asked = engine_.now();
    co_await c.local_slots().acquire();
    sim::record_wait(engine_, track_, "local_slot.wait", asked, ctx);
    sim::SemToken slot(c.local_slots());
    const int target = addr_map_.socket_of_local(paddr);
    const int hops = socket_hops(socket_of_core(core), target);
    if (hops > 0) {
      // NUMA: the request and its response each cross `hops` cHT links.
      sim::SegmentSpan numa(engine_, ctx, track_, "socket_hops",
                            sim::Segment::kMemory);
      co_await engine_.delay(2 * params_.socket_hop_latency *
                             static_cast<sim::Time>(hops));
    }
    co_await mc(target).access(paddr, bytes, is_write, ctx);
  }
}

bool Node::try_access_fast(int core, ht::PAddr paddr, bool is_write,
                           sim::Time carried, sim::Time* charge) {
  if (has_prefix(paddr) && !params_.cache_remote) return false;
  Core& c = *cores_[static_cast<std::size_t>(core)];
  auto& cache = c.cache();
  const ht::PAddr line = cache.line_of(paddr);
  // Check the MSHR *before* probing the cache: a tag hit on a line whose
  // fill is still in flight must take the coroutine path (it waits on the
  // fill trigger), and access() will then apply the hit side effects
  // exactly once.
  if (!fills_.empty() && fills_.count(mshr_key(core, line)) != 0) {
    return false;
  }
  // access_hit applies the full hit side effects on success and none at all
  // on failure, so the access() fallback never double-counts.
  if (!cache.access_hit(paddr, is_write)) return false;
  fastpath_hits_.inc();
  sim::Time t = carried + cache.params().hit_latency;
  if (is_write) {
    // Same synchronous MSI upgrade charge the coroutine hit path folds
    // into its returned accumulator.
    t += directory_->on_write_hit(core, line).latency;
  }
  *charge = t;
  return true;
}

sim::Task<sim::Time> Node::access(int core, ht::PAddr paddr,
                                  std::uint32_t bytes, bool is_write,
                                  sim::Time carried, sim::TraceContext ctx) {
  slowpath_accesses_.inc();
  Core& c = *cores_[static_cast<std::size_t>(core)];
  const bool via_rmc = has_prefix(paddr);
  const bool cacheable = !via_rmc || params_.cache_remote;

  if (!cacheable) {
    // Uncached I/O-style access: the full reference goes to the RMC.
    {
      sim::SegmentSpan cr(engine_, ctx, track_, "carried",
                          sim::Segment::kOther);
      co_await engine_.delay(carried);
    }
    co_await fetch(core, paddr, bytes, is_write, ctx);
    co_return 0;
  }

  auto& cache = c.cache();
  const ht::PAddr line = cache.line_of(paddr);
  auto res = cache.access(paddr, is_write);
  if (res.evicted) {
    directory_->on_evict(core, res.victim_line);
    if (res.writeback) {
      engine_.spawn(writeback_line(res.victim_line));
    }
  }

  if (res.hit) {
    // A tag hit on a line whose fill is still in flight (MSHR) must wait
    // for the data, like a second miss merged into the first.
    auto pending = fills_.find(mshr_key(core, line));
    if (pending != fills_.end()) {
      mshr_merges_.inc();
      {
        sim::SegmentSpan cr(engine_, ctx, track_, "carried",
                            sim::Segment::kOther);
        co_await engine_.delay(carried + cache.params().hit_latency);
      }
      const sim::Time asked = engine_.now();
      // Re-find after the suspension: the fill may have completed during
      // the delay, firing the trigger and erasing the entry (the held
      // iterator would dangle). Entry gone => the data already arrived.
      auto still = fills_.find(mshr_key(core, line));
      if (still != fills_.end()) co_await still->second->wait();
      sim::record_wait(engine_, track_, "mshr.wait", asked, ctx);
      if (is_write) {
        auto coh = directory_->on_write_hit(core, line);
        if (coh.latency != 0) {
          sim::SegmentSpan wh(engine_, ctx, track_, "write_hit",
                              sim::Segment::kCoherence,
                              sim::CohCause::kUpgrade);
          co_await engine_.delay(coh.latency);
        }
      }
      co_return 0;
    }
    sim::Time charge = carried + cache.params().hit_latency;
    if (is_write) {
      charge += directory_->on_write_hit(core, line).latency;
    }
    co_return charge;  // fast path: no event-queue traffic
  }

  // Miss. Register the outstanding fill *before* the first suspension so a
  // concurrent access to the just-allocated tag merges instead of racing
  // past (cache.access above already installed the line's tag).
  const std::uint64_t key = mshr_key(core, line);
  auto existing = fills_.find(key);
  if (existing != fills_.end()) {
    // An earlier prefetch or miss is already filling this line: merge.
    mshr_merges_.inc();
    {
      sim::SegmentSpan cr(engine_, ctx, track_, "carried",
                          sim::Segment::kOther);
      co_await engine_.delay(carried + cache.params().hit_latency);
    }
    const sim::Time asked = engine_.now();
    // Same iterator-across-suspension hazard as the hit path above.
    auto still = fills_.find(key);
    if (still != fills_.end()) co_await still->second->wait();
    sim::record_wait(engine_, track_, "mshr.wait", asked, ctx);
    co_return 0;
  }
  auto trigger = std::make_unique<sim::Trigger>(engine_);
  sim::Trigger* raw = trigger.get();
  fills_.emplace(key, std::move(trigger));

  // Realize the accumulated compute time, then walk the miss path.
  {
    sim::SegmentSpan cr(engine_, ctx, track_, "carried", sim::Segment::kOther);
    co_await engine_.delay(carried + cache.params().hit_latency);
  }
  auto coh = directory_->on_miss(core, line, is_write);
  if (coh.latency != 0) {
    const sim::Time t0 = engine_.now();
    co_await engine_.delay(coh.latency);
    // Decompose the combined charge by protocol cause: the probe round
    // (peer invalidations on a write, the owner downgrade on a read),
    // then the forced dirty writeback, if any. The retroactive spans
    // partition [t0, now) exactly, so the per-transaction cause times sum
    // to the coherence segment without splitting the delay itself.
    sim::Time split = t0;
    if (coh.probes > 0) {
      split += params_.coherence.probe_latency;
      sim::record_coh_cause(engine_, track_, ctx,
                            is_write ? sim::CohCause::kInvalidate
                                     : sim::CohCause::kDowngrade,
                            t0, split);
    }
    if (coh.dirty_transfer) {
      sim::record_coh_cause(engine_, track_, ctx,
                            sim::CohCause::kWritebackForced, split,
                            engine_.now());
    }
  }

  if (!coh.dirty_transfer) {
    if (via_rmc && prefetcher_.enabled()) {
      for (ht::PAddr pf : prefetcher_.observe(core, line)) {
        if (!cache.contains(pf)) engine_.spawn(prefetch_line(core, pf));
      }
    }
    // Fetch the whole line (write-allocate: writes fetch too; the data
    // goes out later as a write-back).
    co_await fetch(core, line, cache.params().line_bytes, false, ctx);
  }
  raw->fire();
  fills_.erase(key);
  co_return 0;
}

sim::Task<void> Node::writeback_line(ht::PAddr line) {
  const std::uint32_t bytes = params_.cache.line_bytes;
  co_await engine_.delay(params_.crossbar_latency);
  if (has_prefix(line)) {
    remote_accesses_.inc();
    // Write-backs are issued by the cache controller, not a core, so they
    // do not consume the core's single remote slot — but they do contend
    // for the RMC port like any other message.
    co_await rmc_->client_access(line, bytes, true);
  } else {
    local_accesses_.inc();
    auto& controller = mc(addr_map_.socket_of_local(line));
    co_await controller.access(line, bytes, true);
  }
}

sim::Task<void> Node::prefetch_line(int core, ht::PAddr line) {
  Core& c = *cores_[static_cast<std::size_t>(core)];
  const std::uint64_t key = mshr_key(core, line);
  if (fills_.count(key) != 0) co_return;  // a fill is already in flight
  auto trigger = std::make_unique<sim::Trigger>(engine_);
  sim::Trigger* raw = trigger.get();
  fills_.emplace(key, std::move(trigger));
  co_await rmc_->client_access(line, params_.cache.line_bytes, false);
  auto res = c.cache().install(line);
  if (res.evicted) {
    directory_->on_evict(core, res.victim_line);
    if (res.writeback) engine_.spawn(writeback_line(res.victim_line));
  }
  directory_->on_miss(core, line, false);  // register as a sharer
  prefetch_fills_.inc();
  raw->fire();
  fills_.erase(key);
}

sim::Task<void> Node::flush_core_cache(int core) {
  Core& c = *cores_[static_cast<std::size_t>(core)];
  std::vector<ht::PAddr> dirty;
  c.cache().flush_all([&dirty](ht::PAddr line) { dirty.push_back(line); });
  directory_->drop_core(core);
  for (ht::PAddr line : dirty) {
    engine_.spawn(writeback_line(line));
  }
  // The flush instruction stream itself: one cache sweep's worth of time.
  co_await engine_.delay(sim::ns(10) * (dirty.size() + 1));
}

}  // namespace ms::node
