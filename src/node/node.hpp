#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/sync.hpp"

#include "mem/coherence.hpp"
#include "mem/memory_controller.hpp"
#include "node/address_map.hpp"
#include "node/core.hpp"
#include "rmc/prefetcher.hpp"
#include "rmc/rmc.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/trace_context.hpp"

namespace ms::node {

/// One cluster node: sockets x cores, per-socket memory controllers, the
/// node-internal coherence directory and the attached RMC.
///
/// Node is purely a *timing* component — data lives in mem::BackingStore
/// and is read/written by core::MemorySpace. The access path implements the
/// paper's hardware flow: BAR lookup decides between a local memory
/// controller and the RMC; remote ranges are write-back cacheable; evicted
/// dirty remote lines are written back across the fabric in the background.
class Node {
 public:
  struct Params {
    int sockets = 4;
    int cores_per_socket = 4;
    ht::PAddr local_bytes = ht::PAddr{16} << 30;  ///< 16 GiB as in the prototype
    mem::Cache::Params cache;
    mem::CoherenceDirectory::Params coherence;
    mem::MemoryController::Params mc;
    rmc::StreamPrefetcher::Params prefetch;
    int core_local_outstanding = 8;  ///< Opteron: eight outstanding requests
    int core_remote_outstanding = 1; ///< one to the I/O-mapped RMC region
    bool cache_remote = true;        ///< remote ranges configured write-back
    sim::Time crossbar_latency = sim::ns(8);  ///< request injection cost
    /// Intra-node NUMA: Opteron sockets form a square of cHT links; an
    /// access to another socket's memory controller pays one hop per link
    /// crossed (adjacent 1, diagonal 2 — modelled as popcount of the
    /// socket-id XOR, exact for the 4-socket square).
    sim::Time socket_hop_latency = sim::ns(40);
    /// Software cost charged on every remote access — zero for the paper's
    /// hardware path; ~3 us models a Violin-style software memory server
    /// where "the OS is involved in every memory access" (Sec. II).
    sim::Time remote_sw_overhead = 0;
  };

  Node(sim::Engine& engine, ht::NodeId id, const Params& p);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Wires the RMC built by the cluster; also binds its local service to
  /// this node's memory controllers.
  void attach_rmc(rmc::Rmc* rmc);

  /// Timing for one memory reference by `core` (line-split already done by
  /// the caller). `carried` is compute/hit time the calling thread has
  /// accumulated since it last blocked; on the fast path (cache hit) the
  /// updated accumulator is returned without touching the event queue, on
  /// slow paths it is turned into real simulated delay first.
  /// Returns the new accumulator value. `ctx` links recorded spans into a
  /// traced transaction (observability only).
  sim::Task<sim::Time> access(int core, ht::PAddr paddr, std::uint32_t bytes,
                              bool is_write, sim::Time carried,
                              sim::TraceContext ctx = {});

  /// Synchronous fast path for the common case: a private-cache hit with no
  /// outstanding fill on the line. Returns true and writes the updated
  /// accumulator (`carried` + hit latency + any synchronous MSI upgrade
  /// cost) into `*charge` — exactly the value the coroutine path would
  /// co_return — without creating a coroutine frame or touching the event
  /// queue. Returns false (with NO simulator state changed) whenever any
  /// slow-path condition holds: the range is uncacheable, the line has a
  /// fill in flight (MSHR merge must wait), or the cache misses. Callers
  /// fall back to access() in that case.
  bool try_access_fast(int core, ht::PAddr paddr, bool is_write,
                       sim::Time carried, sim::Time* charge);

  /// Donor-side service: an access arriving from a peer RMC for this node's
  /// local memory. Bypasses every local cache (the borrowed range is pinned
  /// and never cached here — the paper's no-inter-node-coherence argument).
  sim::Task<void> serve_remote(ht::PAddr local_addr, std::uint32_t bytes,
                               bool is_write, sim::TraceContext ctx = {});

  /// Writes back and invalidates one core's cache (the explicit flush the
  /// prototype needs between a write phase and a parallel read-only phase).
  sim::Task<void> flush_core_cache(int core);

  ht::NodeId id() const { return id_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  const Params& params() const { return params_; }
  Core& core(int i) { return *cores_[static_cast<std::size_t>(i)]; }
  mem::MemoryController& mc(int socket) {
    return *mcs_[static_cast<std::size_t>(socket)];
  }
  mem::CoherenceDirectory& directory() { return *directory_; }
  const mem::CoherenceDirectory& directory() const { return *directory_; }
  const AddressMap& address_map() const { return addr_map_; }
  rmc::Rmc* rmc() { return rmc_; }
  rmc::StreamPrefetcher& prefetcher() { return prefetcher_; }

  std::uint64_t local_accesses() const { return local_accesses_.value(); }
  std::uint64_t remote_accesses() const { return remote_accesses_.value(); }
  std::uint64_t prefetch_fills() const { return prefetch_fills_.value(); }
  std::uint64_t mshr_merges() const { return mshr_merges_.value(); }
  std::uint64_t fastpath_hits() const { return fastpath_hits_.value(); }
  std::uint64_t slowpath_accesses() const { return slowpath_accesses_.value(); }

  /// Whether a fill of `line` into `core`'s cache is still outstanding.
  /// The tag is installed synchronously at access time while the coherence
  /// directory registers the sharer later (after the miss latency), so the
  /// invariant checkers tolerate cache-ahead-of-directory windows exactly
  /// when this is true.
  bool fill_pending(int core, ht::PAddr line) const {
    return fills_.count(mshr_key(core, line)) != 0;
  }
  std::size_t pending_fills() const { return fills_.size(); }

  /// cHT hops between two sockets (square topology: popcount of the XOR).
  int socket_hops(int a, int b) const;
  int socket_of_core(int core) const { return core / params_.cores_per_socket; }

 private:
  /// Background write-back of an evicted dirty line (posted, no one waits).
  sim::Task<void> writeback_line(ht::PAddr line);

  /// Background prefetch fill into `core`'s cache.
  sim::Task<void> prefetch_line(int core, ht::PAddr line);

  /// Fetch one line (or uncached chunk) from its home, local or remote.
  sim::Task<void> fetch(int core, ht::PAddr paddr, std::uint32_t bytes,
                        bool is_write, sim::TraceContext ctx);

  sim::Engine& engine_;
  ht::NodeId id_;
  Params params_;
  std::string track_;  ///< "node.<id>", precomputed off the access path
  AddressMap addr_map_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<mem::MemoryController>> mcs_;
  std::unique_ptr<mem::CoherenceDirectory> directory_;
  rmc::StreamPrefetcher prefetcher_;
  rmc::Rmc* rmc_ = nullptr;

  // MSHR-style fill merging: a line being filled into a core's cache is
  // registered here; a second access (demand or prefetch) to the same line
  // waits for the outstanding fill instead of fetching again. Keyed by
  // core and line address.
  std::uint64_t mshr_key(int core, ht::PAddr line) const {
    return (static_cast<std::uint64_t>(core) << 48) | line;
  }
  std::unordered_map<std::uint64_t, std::unique_ptr<sim::Trigger>> fills_;

  sim::Counter local_accesses_;
  sim::Counter remote_accesses_;
  sim::Counter prefetch_fills_;
  sim::Counter mshr_merges_;
  sim::Counter fastpath_hits_;
  sim::Counter slowpath_accesses_;
};

}  // namespace ms::node
