#include "node/address_map.hpp"

namespace ms::node {

AddressMap::AddressMap(int sockets, ht::PAddr local_bytes)
    : sockets_(sockets), local_bytes_(local_bytes) {
  if (sockets < 1) throw std::invalid_argument("AddressMap: sockets < 1");
  if (local_bytes == 0 || local_bytes > kLocalSpaceBytes) {
    throw std::invalid_argument("AddressMap: local size must fit 34 bits");
  }
  if (local_bytes % static_cast<ht::PAddr>(sockets) != 0) {
    throw std::invalid_argument("AddressMap: local size must split evenly");
  }
  per_socket_ = local_bytes / static_cast<ht::PAddr>(sockets);
}

}  // namespace ms::node
