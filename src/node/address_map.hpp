#pragma once

#include <cstdint>
#include <stdexcept>

#include "ht/packet.hpp"

namespace ms::node {

/// The paper's cluster-wide physical address scheme (Sec. III-B, Fig. 3).
///
/// Physical addresses are 48 bits. The 14 most significant bits carry the
/// node identifier; the low 34 bits address memory inside one node (16 GiB,
/// which is exactly the prototype's per-node capacity). Because node ids
/// start at 1, a zero prefix always means "a local memory controller owns
/// this address", and any nonzero prefix routes the access to the RMC —
/// with no translation table anywhere.
///
/// The overlap quirk is preserved: node N addressing prefix N refers to its
/// own memory ("loopback mode"); the OS reservation protocol never creates
/// such mappings, but the hardware path supports them (and tests poke it).
inline constexpr int kAddrBits = 48;
inline constexpr int kNodeBits = 14;
inline constexpr int kLocalBits = kAddrBits - kNodeBits;  // 34 -> 16 GiB

inline constexpr ht::PAddr kLocalSpaceBytes = ht::PAddr{1} << kLocalBits;
inline constexpr ht::NodeId kMaxNodeId = (1 << kNodeBits) - 1;

/// Extracts the node prefix (0 = local).
constexpr ht::NodeId node_of(ht::PAddr addr) {
  return static_cast<ht::NodeId>(addr >> kLocalBits);
}

/// Strips the prefix, yielding the address inside the owning node.
constexpr ht::PAddr local_part(ht::PAddr addr) {
  return addr & (kLocalSpaceBytes - 1);
}

constexpr bool has_prefix(ht::PAddr addr) { return node_of(addr) != 0; }

/// Applies a node prefix to a node-local address.
inline ht::PAddr make_remote(ht::NodeId node, ht::PAddr local) {
  if (node == 0 || node > kMaxNodeId) {
    throw std::invalid_argument("make_remote: node id out of range");
  }
  if (local >= kLocalSpaceBytes) {
    throw std::invalid_argument("make_remote: local address exceeds 34 bits");
  }
  return (static_cast<ht::PAddr>(node) << kLocalBits) | local;
}

/// Per-node BAR set: which local memory controller owns an unprefixed
/// address. Mirrors the Opteron base/limit registers (Fig. 2): local memory
/// is split into one contiguous range per socket.
class AddressMap {
 public:
  /// Target index kRmc means "not local — forward to the RMC".
  static constexpr int kRmc = -1;

  AddressMap(int sockets, ht::PAddr local_bytes);

  /// BAR lookup for an access issued inside this node.
  int target_of(ht::PAddr addr) const {
    if (has_prefix(addr)) return kRmc;
    if (addr >= local_bytes_) {
      throw std::out_of_range("AddressMap: unbacked local address");
    }
    return static_cast<int>(addr / per_socket_);
  }

  /// The socket MC owning a (already prefix-stripped) local address.
  int socket_of_local(ht::PAddr local_addr) const {
    return static_cast<int>(local_addr / per_socket_);
  }

  int sockets() const { return sockets_; }
  ht::PAddr local_bytes() const { return local_bytes_; }
  ht::PAddr socket_base(int socket) const {
    return static_cast<ht::PAddr>(socket) * per_socket_;
  }

 private:
  int sockets_;
  ht::PAddr local_bytes_;
  ht::PAddr per_socket_;
};

}  // namespace ms::node
