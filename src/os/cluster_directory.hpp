#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "ht/packet.hpp"
#include "os/frame_allocator.hpp"

namespace ms::os {

/// Cluster-wide knowledge of free memory ("augmenting the OS services so
/// that knowledge of the location of free memory across the cluster is
/// achieved", Sec. III).
///
/// Modelled as an eventually-updated table the reservation service consults
/// to pick a donor. Two policies:
///  * kMostFree — balance the pool by draining the emptiest node first;
///  * kNearest  — minimize access latency by preferring close donors with
///    enough free memory (needs a hop function from the fabric).
class ClusterDirectory {
 public:
  enum class Policy { kMostFree, kNearest };

  using HopsFn = std::function<int(ht::NodeId, ht::NodeId)>;

  void register_node(ht::NodeId node, const FrameAllocator* alloc) {
    nodes_[node] = alloc;
  }

  /// Picks a donor able to satisfy a contiguous reservation of `bytes`.
  /// Never returns the requester itself (that would be loopback mode), nor
  /// a node marked non-donatable (draining for shutdown).
  std::optional<ht::NodeId> pick_donor(ht::NodeId requester, ht::PAddr bytes,
                                       Policy policy,
                                       const HopsFn& hops) const;

  /// Marks a node as (non-)donatable. The memory broker flips this off at
  /// the start of a drain so no new reservation lands on a departing node.
  void set_donatable(ht::NodeId node, bool donatable) {
    if (donatable) {
      non_donatable_.erase(node);
    } else {
      non_donatable_.insert(node);
    }
  }
  bool donatable(ht::NodeId node) const {
    return non_donatable_.count(node) == 0;
  }

  ht::PAddr total_free() const;
  ht::PAddr free_at(ht::NodeId node) const;
  std::size_t num_nodes() const { return nodes_.size(); }

  static Policy parse_policy(const std::string& name);

 private:
  std::map<ht::NodeId, const FrameAllocator*> nodes_;
  std::set<ht::NodeId> non_donatable_;
};

}  // namespace ms::os
