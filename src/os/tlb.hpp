#pragma once

#include <cstdint>
#include <unordered_map>

#include "ht/packet.hpp"
#include "os/page_table.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ms::os {

/// Translation lookaside buffer, fully associative with LRU replacement.
///
/// A TLB hit is free in the timing model (it overlaps the L1 access); a
/// miss charges the page-walk latency. The walk reads the page table from
/// *local* memory even when the translated frame is remote — the page
/// tables themselves always live on the node running the process.
class Tlb {
 public:
  struct Params {
    int entries = 64;
    sim::Time walk_latency = sim::ns(80);  ///< ~two dependent DRAM reads
  };

  explicit Tlb(const Params& p) : params_(p) {}

  /// Looks up a translation; counts a hit or a miss.
  std::optional<ht::PAddr> lookup(VAddr page_base);

  /// Installs a translation after a walk/fault, evicting LRU if full.
  void insert(VAddr page_base, ht::PAddr frame);

  void invalidate(VAddr page_base);
  void flush();

  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  const Params& params() const { return params_; }

 private:
  struct Slot {
    ht::PAddr frame;
    std::uint64_t lru;
  };
  Params params_;
  std::uint64_t tick_ = 0;
  std::unordered_map<VAddr, Slot> slots_;
  sim::Counter hits_;
  sim::Counter misses_;
};

}  // namespace ms::os
