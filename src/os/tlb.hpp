#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ht/packet.hpp"
#include "os/page_table.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace ms::os {

/// Translation lookaside buffer, fully associative with LRU replacement.
///
/// A TLB hit is free in the timing model (it overlaps the L1 access); a
/// miss charges the page-walk latency. The walk reads the page table from
/// *local* memory even when the translated frame is remote — the page
/// tables themselves always live on the node running the process.
///
/// Storage is a fixed-capacity open-addressing table (linear probing,
/// backward-shift deletion) instead of an unordered_map: lookup on the
/// per-access hot path is one hash plus a short scan of contiguous slots.
/// Replacement semantics are identical to the original map version — LRU
/// stamps come from a strictly increasing tick, so every slot's stamp is
/// unique and the eviction victim is deterministic.
class Tlb {
 public:
  struct Params {
    int entries = 64;
    sim::Time walk_latency = sim::ns(80);  ///< ~two dependent DRAM reads
  };

  /// One live translation. Exposed so MemorySpace can keep a last-
  /// translation hint (a Slot*) and revalidate it by content: slots never
  /// move except through insert/invalidate/flush, and a stale hint fails
  /// the `valid && va == page` check rather than mis-translating.
  struct Slot {
    VAddr va = 0;
    ht::PAddr frame = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  explicit Tlb(const Params& p);

  /// Looks up a translation; counts a hit or a miss.
  std::optional<ht::PAddr> lookup(VAddr page_base);

  /// Same lookup (identical counters and LRU side effects) but returns the
  /// slot itself, for callers that keep a last-translation hint.
  Slot* lookup_slot(VAddr page_base);

  /// Re-touches a slot previously returned by lookup_slot/insert: applies
  /// exactly the side effects of a lookup hit (tick, hit counter, LRU
  /// stamp). The caller must have validated `slot->valid && slot->va`.
  void touch(Slot& slot) {
    ++tick_;
    hits_.inc();
    slot.lru = tick_;
  }

  /// Installs a translation after a walk/fault, evicting LRU if full.
  /// Returns the slot holding the new translation.
  Slot* insert(VAddr page_base, ht::PAddr frame);

  void invalidate(VAddr page_base);
  void flush();

  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  /// Probe steps taken by open-addressing lookups/inserts (hot-path
  /// telemetry; exported only under the opt-in hotpath stats flag).
  std::uint64_t flat_probes() const { return flat_probes_.value(); }
  const Params& params() const { return params_; }

 private:
  std::size_t slot_of(VAddr va) const {
    // Fibonacci hash of the page number; pages are 4 KiB-aligned.
    return static_cast<std::size_t>(((va >> 12) * 0x9e3779b97f4a7c15ULL) >>
                                    shift_) &
           mask_;
  }
  Slot* probe(VAddr page_base);
  void erase_at(std::size_t idx);

  Params params_;
  std::uint64_t tick_ = 0;
  std::size_t live_ = 0;
  std::size_t mask_ = 0;
  unsigned shift_ = 0;
  std::vector<Slot> slots_;
  sim::Counter hits_;
  sim::Counter misses_;
  sim::Counter flat_probes_;
};

}  // namespace ms::os
