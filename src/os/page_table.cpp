#include "os/page_table.hpp"

#include <bit>
#include <stdexcept>

namespace ms::os {

PageTable::PageTable(std::uint64_t page_bytes) : page_bytes_(page_bytes) {
  if (!std::has_single_bit(page_bytes)) {
    throw std::invalid_argument("PageTable: page size must be a power of two");
  }
}

void PageTable::map(VAddr vaddr, ht::PAddr frame_base) {
  Entry& e = entries_[page_base(vaddr)];
  e.frame = frame_base;
  e.present = true;
}

void PageTable::unmap(VAddr vaddr) { entries_.erase(page_base(vaddr)); }

std::optional<ht::PAddr> PageTable::translate(VAddr vaddr) const {
  auto it = entries_.find(page_base(vaddr));
  if (it == entries_.end() || !it->second.present) return std::nullopt;
  return it->second.frame + (vaddr & (page_bytes_ - 1));
}

PageTable::Entry* PageTable::find(VAddr vaddr) {
  auto it = entries_.find(page_base(vaddr));
  return it == entries_.end() ? nullptr : &it->second;
}

const PageTable::Entry* PageTable::find(VAddr vaddr) const {
  auto it = entries_.find(page_base(vaddr));
  return it == entries_.end() ? nullptr : &it->second;
}

PageTable::Entry& PageTable::ensure(VAddr vaddr) {
  return entries_[page_base(vaddr)];
}

}  // namespace ms::os
