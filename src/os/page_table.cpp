#include "os/page_table.hpp"

#include <bit>
#include <stdexcept>

namespace ms::os {

namespace {
constexpr std::size_t kInitialCapacity = 64;
}  // namespace

PageTable::PageTable(std::uint64_t page_bytes) : page_bytes_(page_bytes) {
  if (!std::has_single_bit(page_bytes)) {
    throw std::invalid_argument("PageTable: page size must be a power of two");
  }
  page_shift_ = static_cast<unsigned>(std::countr_zero(page_bytes));
  index_.resize(kInitialCapacity);
  mask_ = kInitialCapacity - 1;
  hash_shift_ =
      64 - static_cast<unsigned>(std::countr_zero(kInitialCapacity));
}

const PageTable::IndexSlot* PageTable::probe(VAddr page) const {
  std::size_t idx = slot_of(page);
  for (;;) {
    const IndexSlot& s = index_[idx];
    if (!s.used) return nullptr;
    if (s.va == page) return &s;
    idx = (idx + 1) & mask_;
  }
}

void PageTable::place(IndexSlot slot) {
  std::size_t idx = slot_of(slot.va);
  while (index_[idx].used) idx = (idx + 1) & mask_;
  index_[idx] = slot;
}

void PageTable::grow() {
  std::vector<IndexSlot> old = std::move(index_);
  const std::size_t cap = old.size() * 2;
  index_.assign(cap, IndexSlot{});
  mask_ = cap - 1;
  hash_shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
  for (const IndexSlot& s : old) {
    if (s.used) place(s);
  }
}

PageTable::Entry& PageTable::ensure(VAddr vaddr) {
  const VAddr page = page_base(vaddr);
  if (const IndexSlot* s = probe(page)) {
    return entries_[s->entry];
  }
  // Keep the load factor under 1/2 so probe chains stay short.
  if ((live_ + 1) * 2 > index_.size()) grow();
  std::uint32_t pos;
  if (!free_.empty()) {
    pos = free_.back();
    free_.pop_back();
    entries_[pos] = Entry{};
  } else {
    pos = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  place(IndexSlot{page, pos, true});
  ++live_;
  return entries_[pos];
}

void PageTable::map(VAddr vaddr, ht::PAddr frame_base) {
  Entry& e = ensure(vaddr);
  e.frame = frame_base;
  e.present = true;
}

void PageTable::unmap(VAddr vaddr) {
  const VAddr page = page_base(vaddr);
  const IndexSlot* found = probe(page);
  if (found == nullptr) return;
  const std::size_t idx =
      static_cast<std::size_t>(found - index_.data());
  free_.push_back(index_[idx].entry);
  index_[idx].used = false;
  --live_;
  // Backward-shift deletion keeps every survivor reachable by linear probe.
  std::size_t hole = idx;
  std::size_t next = (idx + 1) & mask_;
  while (index_[next].used) {
    const std::size_t home = slot_of(index_[next].va);
    const bool in_path = ((next - home) & mask_) >= ((next - hole) & mask_);
    if (in_path) {
      index_[hole] = index_[next];
      index_[next].used = false;
      hole = next;
    }
    next = (next + 1) & mask_;
  }
}

std::optional<ht::PAddr> PageTable::translate(VAddr vaddr) const {
  const IndexSlot* s = probe(page_base(vaddr));
  if (s == nullptr) return std::nullopt;
  const Entry& e = entries_[s->entry];
  if (!e.present) return std::nullopt;
  return e.frame + (vaddr & (page_bytes_ - 1));
}

PageTable::Entry* PageTable::find(VAddr vaddr) {
  const IndexSlot* s = probe(page_base(vaddr));
  return s == nullptr ? nullptr : &entries_[s->entry];
}

const PageTable::Entry* PageTable::find(VAddr vaddr) const {
  const IndexSlot* s = probe(page_base(vaddr));
  return s == nullptr ? nullptr : &entries_[s->entry];
}

}  // namespace ms::os
