#include "os/region_manager.hpp"

#include <algorithm>

namespace ms::os {

RegionManager::RegionManager(sim::Engine& engine, ht::NodeId self,
                             FrameAllocator& local,
                             ReservationService& reservation,
                             ClusterDirectory& directory,
                             ClusterDirectory::HopsFn hops, const Params& p)
    : engine_(engine),
      self_(self),
      local_(local),
      reservation_(reservation),
      directory_(directory),
      hops_(std::move(hops)),
      params_(p),
      grow_mutex_(engine, 1) {}

std::optional<ht::PAddr> RegionManager::take_from_segments(
    ht::NodeId donor_filter) {
  for (auto& seg : segments_) {
    if (donor_filter != ht::kNoNode && seg.grant.donor != donor_filter) {
      continue;
    }
    if (quarantined_.count(seg.grant.donor) != 0) continue;
    if (seg.next_offset + params_.page_bytes <= seg.grant.bytes) {
      ht::PAddr page = seg.grant.prefixed_base + seg.next_offset;
      seg.next_offset += params_.page_bytes;
      return page;
    }
  }
  return std::nullopt;
}

sim::Task<std::optional<std::size_t>> RegionManager::grow(ht::NodeId donor) {
  if (donor == ht::kNoNode) {
    auto pick = directory_.pick_donor(self_, params_.segment_bytes,
                                      params_.policy, hops_);
    if (!pick) co_return std::nullopt;
    donor = *pick;
  }
  auto grant =
      co_await reservation_.reserve(self_, donor, params_.segment_bytes);
  if (!grant) co_return std::nullopt;
  segments_.push_back(Segment{*grant, 0});
  if (observer_ != nullptr) observer_->on_grant(*grant);
  co_return segments_.size() - 1;
}

sim::Task<std::optional<ht::PAddr>> RegionManager::alloc_page(
    Placement placement) {
  if (placement != Placement::kRemoteOnly) {
    if (!free_local_.empty()) {
      ht::PAddr page = free_local_.front();
      free_local_.pop_front();
      local_pages_.inc();
      co_return page;
    }
    if (auto frame = take_local_page()) {
      local_pages_.inc();
      co_return *frame;
    }
    if (placement == Placement::kLocalOnly) co_return std::nullopt;
  }

  if (!free_remote_.empty()) {
    ht::PAddr page = free_remote_.front();
    free_remote_.pop_front();
    remote_pages_.inc();
    co_return page;
  }

  // Borrow: serialize growth so concurrent faults reserve one segment.
  co_await grow_mutex_.acquire();
  sim::SemToken lock(grow_mutex_);
  if (auto page = take_from_segments(ht::kNoNode)) {
    remote_pages_.inc();
    co_return page;
  }
  if (!co_await grow(ht::kNoNode)) co_return std::nullopt;
  auto page = take_from_segments(ht::kNoNode);
  if (page) remote_pages_.inc();
  co_return page;
}

sim::Task<std::optional<ht::PAddr>> RegionManager::alloc_page_on(
    ht::NodeId donor) {
  if (donor == self_) {
    if (auto frame = take_local_page()) {
      local_pages_.inc();
      co_return *frame;
    }
    co_return std::nullopt;
  }
  co_await grow_mutex_.acquire();
  sim::SemToken lock(grow_mutex_);
  if (auto page = take_from_segments(donor)) {
    remote_pages_.inc();
    co_return page;
  }
  if (!co_await grow(donor)) co_return std::nullopt;
  auto page = take_from_segments(donor);
  if (page) remote_pages_.inc();
  co_return page;
}

std::optional<ht::PAddr> RegionManager::take_local_page() {
  if (local_chunk_next_ >= local_chunk_end_) {
    // Grab the next chunk; shrink towards a single page if fragmented.
    ht::PAddr chunk = std::min<ht::PAddr>(ht::PAddr{64} << 20,
                                          local_.largest_free_range());
    chunk = std::max<ht::PAddr>(chunk, params_.page_bytes);
    auto base = local_.allocate(chunk);
    if (!base) return std::nullopt;
    local_chunk_next_ = *base;
    local_chunk_end_ = *base + chunk;
  }
  ht::PAddr page = local_chunk_next_;
  local_chunk_next_ += params_.page_bytes;
  return page;
}

void RegionManager::free_page(ht::PAddr page_base) {
  if (node::has_prefix(page_base)) {
    // Quarantined donors reclaim their frames wholesale when the segment is
    // released; handing the page back out would resurrect a draining donor.
    if (quarantined_.count(node::node_of(page_base)) != 0) return;
    free_remote_.push_back(page_base);
  } else {
    free_local_.push_back(page_base);
  }
}

sim::Task<void> RegionManager::release_all() {
  // Same lock as grow()/release_segments_on(): a broker drain releasing a
  // donor's segments must not interleave with teardown walking the list.
  co_await grow_mutex_.acquire();
  sim::SemToken lock(grow_mutex_);
  for (auto& seg : segments_) {
    co_await reservation_.release(self_, seg.grant);
  }
  // Observer bookkeeping and the erase happen with no suspension in
  // between, so lease books stay in lockstep with segment_grants().
  if (observer_ != nullptr) {
    for (auto& seg : segments_) observer_->on_release(seg.grant);
  }
  segments_.clear();
  free_remote_.clear();
}

sim::Task<void> RegionManager::release_segments_on(ht::NodeId donor) {
  // Serialize against grow() so a concurrent fault cannot slot a fresh
  // segment from this donor in between release and erase.
  co_await grow_mutex_.acquire();
  sim::SemToken lock(grow_mutex_);
  for (auto& seg : segments_) {
    if (seg.grant.donor == donor) {
      co_await reservation_.release(self_, seg.grant);
    }
  }
  // As in release_all(): book updates + erase are suspension-free so an
  // epoch invariant sweep never sees the two views disagree.
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->grant.donor != donor) {
      ++it;
      continue;
    }
    if (observer_ != nullptr) observer_->on_release(it->grant);
    it = segments_.erase(it);
  }
  free_remote_.erase(
      std::remove_if(free_remote_.begin(), free_remote_.end(),
                     [donor](ht::PAddr p) {
                       return node::node_of(p) == donor;
                     }),
      free_remote_.end());
}

void RegionManager::quarantine_donor(ht::NodeId donor) {
  quarantined_.insert(donor);
  free_remote_.erase(
      std::remove_if(free_remote_.begin(), free_remote_.end(),
                     [donor](ht::PAddr p) {
                       return node::node_of(p) == donor;
                     }),
      free_remote_.end());
}

ht::PAddr RegionManager::borrowed_bytes() const {
  ht::PAddr sum = 0;
  for (const auto& seg : segments_) sum += seg.grant.bytes;
  return sum;
}

}  // namespace ms::os
