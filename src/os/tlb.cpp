#include "os/tlb.hpp"

#include <bit>
#include <stdexcept>

namespace ms::os {

Tlb::Tlb(const Params& p) : params_(p) {
  if (p.entries < 1) {
    throw std::invalid_argument("Tlb: entries must be positive");
  }
  // Capacity >= 2x entries keeps the load factor <= 0.5 even when full, so
  // linear-probe chains stay short and backward-shift deletes stay cheap.
  const std::size_t cap =
      std::bit_ceil(static_cast<std::size_t>(p.entries) * 2);
  slots_.resize(cap);
  mask_ = cap - 1;
  shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
}

Tlb::Slot* Tlb::probe(VAddr page_base) {
  std::size_t idx = slot_of(page_base);
  for (;;) {
    flat_probes_.inc();
    Slot& s = slots_[idx];
    if (!s.valid) return nullptr;
    if (s.va == page_base) return &s;
    idx = (idx + 1) & mask_;
  }
}

std::optional<ht::PAddr> Tlb::lookup(VAddr page_base) {
  Slot* s = lookup_slot(page_base);
  if (s == nullptr) return std::nullopt;
  return s->frame;
}

Tlb::Slot* Tlb::lookup_slot(VAddr page_base) {
  ++tick_;
  Slot* s = probe(page_base);
  if (s == nullptr) {
    misses_.inc();
    return nullptr;
  }
  hits_.inc();
  s->lru = tick_;
  return s;
}

Tlb::Slot* Tlb::insert(VAddr page_base, ht::PAddr frame) {
  ++tick_;
  Slot* existing = probe(page_base);
  if (existing != nullptr) {
    existing->frame = frame;
    existing->lru = tick_;
    return existing;
  }
  if (live_ >= static_cast<std::size_t>(params_.entries)) {
    // Evict the (unique) minimum-LRU slot — same victim the map-backed
    // implementation picked, because tick stamps never repeat.
    std::size_t victim = slots_.size();
    std::uint64_t best = ~std::uint64_t{0};
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].valid && slots_[i].lru < best) {
        best = slots_[i].lru;
        victim = i;
      }
    }
    erase_at(victim);
  }
  std::size_t idx = slot_of(page_base);
  for (;;) {
    flat_probes_.inc();
    if (!slots_[idx].valid) break;
    idx = (idx + 1) & mask_;
  }
  slots_[idx] = Slot{page_base, frame, tick_, true};
  ++live_;
  return &slots_[idx];
}

void Tlb::erase_at(std::size_t idx) {
  // Backward-shift deletion: close the probe chain so later lookups never
  // stop early at a hole.
  slots_[idx].valid = false;
  --live_;
  std::size_t hole = idx;
  std::size_t next = (idx + 1) & mask_;
  while (slots_[next].valid) {
    const std::size_t home = slot_of(slots_[next].va);
    // Shift `next` into the hole iff the hole lies within its probe path.
    const bool in_path = ((next - home) & mask_) >= ((next - hole) & mask_);
    if (in_path) {
      slots_[hole] = slots_[next];
      slots_[next].valid = false;
      hole = next;
    }
    next = (next + 1) & mask_;
  }
}

void Tlb::invalidate(VAddr page_base) {
  Slot* s = probe(page_base);
  if (s != nullptr) {
    erase_at(static_cast<std::size_t>(s - slots_.data()));
  }
}

void Tlb::flush() {
  for (Slot& s : slots_) s.valid = false;
  live_ = 0;
}

}  // namespace ms::os
