#include "os/tlb.hpp"

namespace ms::os {

std::optional<ht::PAddr> Tlb::lookup(VAddr page_base) {
  ++tick_;
  auto it = slots_.find(page_base);
  if (it == slots_.end()) {
    misses_.inc();
    return std::nullopt;
  }
  hits_.inc();
  it->second.lru = tick_;
  return it->second.frame;
}

void Tlb::insert(VAddr page_base, ht::PAddr frame) {
  ++tick_;
  if (slots_.count(page_base) == 0 &&
      slots_.size() >= static_cast<std::size_t>(params_.entries)) {
    auto victim = slots_.begin();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->second.lru < victim->second.lru) victim = it;
    }
    slots_.erase(victim);
  }
  slots_[page_base] = {frame, tick_};
}

void Tlb::invalidate(VAddr page_base) { slots_.erase(page_base); }

void Tlb::flush() { slots_.clear(); }

}  // namespace ms::os
