#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "ht/packet.hpp"

namespace ms::os {

/// Process virtual address.
using VAddr = std::uint64_t;

/// Per-process page table: virtual page -> physical frame.
///
/// The frame address may carry a node prefix — that is the paper's entire
/// trick (Fig. 4): the donor returns its physical base with "the 14 most
/// significant bits changed to reflect the identifier of node 3", the
/// requesting OS writes that prefixed address straight into the page table,
/// and every later load/store is routed by hardware with no software on the
/// access path.
class PageTable {
 public:
  explicit PageTable(std::uint64_t page_bytes = 4096);

  struct Entry {
    ht::PAddr frame = 0;   ///< physical frame base (possibly prefixed)
    bool present = false;  ///< false: not resident (swap backends)
    bool dirty = false;
    std::uint64_t aux = 0; ///< backend cookie (e.g. swap slot)
  };

  void map(VAddr vaddr, ht::PAddr frame_base);
  void unmap(VAddr vaddr);

  /// Full translation; nullopt when unmapped or not present.
  std::optional<ht::PAddr> translate(VAddr vaddr) const;

  /// Raw entry access for the OS (fault handlers, swap).
  Entry* find(VAddr vaddr);
  const Entry* find(VAddr vaddr) const;
  Entry& ensure(VAddr vaddr);

  VAddr page_base(VAddr vaddr) const { return vaddr & ~(page_bytes_ - 1); }
  std::uint64_t page_bytes() const { return page_bytes_; }
  std::size_t mapped_pages() const { return entries_.size(); }

  /// Invokes `fn(page_base, entry)` for every entry (present or not).
  /// Read-only walk for the invariant checkers.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [va, e] : entries_) fn(va, e);
  }

 private:
  std::uint64_t page_bytes_;
  std::unordered_map<VAddr, Entry> entries_;  // keyed by page base
};

}  // namespace ms::os
