#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "ht/packet.hpp"

namespace ms::os {

/// Process virtual address.
using VAddr = std::uint64_t;

/// Per-process page table: virtual page -> physical frame.
///
/// The frame address may carry a node prefix — that is the paper's entire
/// trick (Fig. 4): the donor returns its physical base with "the 14 most
/// significant bits changed to reflect the identifier of node 3", the
/// requesting OS writes that prefixed address straight into the page table,
/// and every later load/store is routed by hardware with no software on the
/// access path.
///
/// Translation sits on the per-access hot path (every TLB miss walks it),
/// so the index is a growable open-addressing table (linear probing,
/// backward-shift deletion) over contiguous slots instead of an
/// unordered_map. Entries themselves live in a deque so Entry pointers
/// handed out by find()/ensure() stay stable across map/unmap/rehash —
/// the same stability guarantee the map-backed version gave the swap
/// manager and migration engine.
class PageTable {
 public:
  explicit PageTable(std::uint64_t page_bytes = 4096);

  struct Entry {
    ht::PAddr frame = 0;   ///< physical frame base (possibly prefixed)
    bool present = false;  ///< false: not resident (swap backends)
    bool dirty = false;
    std::uint64_t aux = 0; ///< backend cookie (e.g. swap slot)
  };

  void map(VAddr vaddr, ht::PAddr frame_base);
  void unmap(VAddr vaddr);

  /// Full translation; nullopt when unmapped or not present.
  std::optional<ht::PAddr> translate(VAddr vaddr) const;

  /// Raw entry access for the OS (fault handlers, swap).
  Entry* find(VAddr vaddr);
  const Entry* find(VAddr vaddr) const;
  Entry& ensure(VAddr vaddr);

  VAddr page_base(VAddr vaddr) const { return vaddr & ~(page_bytes_ - 1); }
  std::uint64_t page_bytes() const { return page_bytes_; }
  std::size_t mapped_pages() const { return live_; }

  /// Invokes `fn(page_base, entry)` for every entry (present or not).
  /// Read-only walk for the invariant checkers. Iteration order is a
  /// deterministic function of the map/unmap history but NOT sorted;
  /// callers that need an order sort the collected keys (they all do).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const IndexSlot& s : index_) {
      if (s.used) fn(s.va, entries_[s.entry]);
    }
  }

 private:
  struct IndexSlot {
    VAddr va = 0;
    std::uint32_t entry = 0;  ///< index into entries_
    bool used = false;
  };

  std::size_t slot_of(VAddr va) const {
    return static_cast<std::size_t>(
               ((va >> page_shift_) * 0x9e3779b97f4a7c15ULL) >> hash_shift_) &
           mask_;
  }
  const IndexSlot* probe(VAddr page) const;
  void grow();
  void place(IndexSlot slot);

  std::uint64_t page_bytes_;
  unsigned page_shift_;
  unsigned hash_shift_ = 0;
  std::size_t mask_ = 0;
  std::size_t live_ = 0;
  std::vector<IndexSlot> index_;
  std::deque<Entry> entries_;          ///< stable storage, never shrinks
  std::vector<std::uint32_t> free_;    ///< recycled entries_ positions
};

}  // namespace ms::os
