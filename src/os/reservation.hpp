#pragma once

#include <map>
#include <optional>

#include "ht/packet.hpp"
#include "noc/fabric.hpp"
#include "node/address_map.hpp"
#include "os/frame_allocator.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace ms::os {

/// The remote memory reservation protocol (Sec. III-B, Fig. 4).
///
/// Requester OS -> CtrlReq(kReserve, bytes) -> donor OS, which pins a
/// contiguous physical range and answers with the base address — after
/// applying its own node prefix to the 14 most significant bits. The
/// requester writes prefixed translations into its page table; the RMC
/// never participates ("carried out by the OSes without any interaction
/// with the RMC").
///
/// Control messages ride the same fabric as data. The donor-side handler
/// runs inline in the requester's coroutine (the process walks its own
/// message), charging the donor's OS handling latency.
class ReservationService {
 public:
  struct Params {
    sim::Time os_handling = sim::us(3);  ///< syscall+allocator work per side
  };

  ReservationService(sim::Engine& engine, noc::Fabric& fabric,
                     const Params& p);

  void register_node(ht::NodeId node, FrameAllocator* alloc) {
    allocators_[node] = alloc;
  }

  struct Grant {
    ht::NodeId donor = ht::kNoNode;
    ht::PAddr prefixed_base = 0;  ///< donor-local base with donor prefix
    ht::PAddr bytes = 0;
  };

  /// Reserves `bytes` of pinned contiguous memory on `donor` on behalf of
  /// `requester`. Returns nullopt when the donor cannot satisfy it.
  sim::Task<std::optional<Grant>> reserve(ht::NodeId requester,
                                          ht::NodeId donor, ht::PAddr bytes);

  /// Returns a previous grant to the donor's pool.
  sim::Task<void> release(ht::NodeId requester, const Grant& grant);

  /// Donor-side hot-remove guard: true if the range may be hot-removed,
  /// i.e. it is not currently reserved by anyone.
  bool removable(ht::NodeId donor, ht::PAddr base, ht::PAddr bytes) const;

  std::uint64_t requests() const { return requests_.value(); }
  std::uint64_t grants() const { return grants_.value(); }
  std::uint64_t denials() const { return denials_.value(); }

 private:
  enum CtrlOp : std::uint32_t { kReserve = 1, kReserveAck, kRelease, kReleaseAck };

  sim::Task<void> send_ctrl(ht::NodeId from, ht::NodeId to, std::uint32_t op,
                            std::uint64_t p0, std::uint64_t p1);

  sim::Engine& engine_;
  noc::Fabric& fabric_;
  Params params_;
  std::map<ht::NodeId, FrameAllocator*> allocators_;
  sim::Counter requests_;
  sim::Counter grants_;
  sim::Counter denials_;
};

}  // namespace ms::os
