#include "os/frame_allocator.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace ms::os {

FrameAllocator::FrameAllocator(ht::PAddr base, ht::PAddr bytes,
                               std::uint64_t frame_bytes)
    : frame_bytes_(frame_bytes) {
  if (!std::has_single_bit(frame_bytes)) {
    throw std::invalid_argument("FrameAllocator: frame size must be 2^k");
  }
  if (bytes == 0 || base % frame_bytes != 0 || bytes % frame_bytes != 0) {
    throw std::invalid_argument("FrameAllocator: unaligned pool");
  }
  free_ranges_[base] = bytes;
  total_ = bytes;
  free_ = bytes;
}

std::optional<ht::PAddr> FrameAllocator::allocate(ht::PAddr bytes,
                                                  bool pinned) {
  if (bytes == 0) return std::nullopt;
  bytes = round_up(bytes);
  for (auto it = free_ranges_.begin(); it != free_ranges_.end(); ++it) {
    if (it->second < bytes) continue;
    ht::PAddr base = it->first;
    ht::PAddr remaining = it->second - bytes;
    free_ranges_.erase(it);
    if (remaining > 0) free_ranges_[base + bytes] = remaining;
    allocations_[base] = {bytes, pinned};
    free_ -= bytes;
    if (pinned) pinned_ += bytes;
    return base;
  }
  return std::nullopt;
}

void FrameAllocator::free(ht::PAddr base) {
  auto it = allocations_.find(base);
  if (it == allocations_.end()) {
    throw std::logic_error("FrameAllocator::free: not an allocation base");
  }
  ht::PAddr bytes = it->second.bytes;
  if (it->second.pinned) pinned_ -= bytes;
  allocations_.erase(it);
  free_ += bytes;

  // Insert and coalesce with neighbours.
  auto [pos, inserted] = free_ranges_.emplace(base, bytes);
  if (!inserted) throw std::logic_error("FrameAllocator: corrupt free list");
  if (pos != free_ranges_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_ranges_.erase(pos);
      pos = prev;
    }
  }
  auto next = std::next(pos);
  if (next != free_ranges_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_ranges_.erase(next);
  }
}

bool FrameAllocator::hot_remove(ht::PAddr base, ht::PAddr bytes) {
  // The range must be covered by exactly one free span.
  for (auto it = free_ranges_.begin(); it != free_ranges_.end(); ++it) {
    if (it->first <= base && base + bytes <= it->first + it->second) {
      ht::PAddr span_base = it->first;
      ht::PAddr span_bytes = it->second;
      free_ranges_.erase(it);
      if (base > span_base) free_ranges_[span_base] = base - span_base;
      if (base + bytes < span_base + span_bytes) {
        free_ranges_[base + bytes] = span_base + span_bytes - (base + bytes);
      }
      free_ -= bytes;
      total_ -= bytes;
      return true;
    }
  }
  return false;
}

void FrameAllocator::hot_add(ht::PAddr base, ht::PAddr bytes) {
  if (base % frame_bytes_ != 0 || bytes % frame_bytes_ != 0) {
    throw std::invalid_argument("FrameAllocator::hot_add: unaligned range");
  }
  total_ += bytes;
  // Reuse free()'s coalescing by staging a fake allocation.
  allocations_[base] = {bytes, false};
  free_ += 0;  // free() adds the bytes
  free(base);
}

bool FrameAllocator::is_allocated(ht::PAddr addr) const {
  auto it = allocations_.upper_bound(addr);
  if (it == allocations_.begin()) return false;
  --it;
  return addr < it->first + it->second.bytes;
}

bool FrameAllocator::is_pinned(ht::PAddr addr) const {
  auto it = allocations_.upper_bound(addr);
  if (it == allocations_.begin()) return false;
  --it;
  return addr < it->first + it->second.bytes && it->second.pinned;
}

std::string FrameAllocator::validate() const {
  std::ostringstream err;
  // Merge both maps into one sorted interval list and check for overlap,
  // alignment and byte-total agreement in a single pass.
  struct Span {
    ht::PAddr base;
    ht::PAddr bytes;
    bool is_free;
  };
  std::vector<Span> spans;
  spans.reserve(free_ranges_.size() + allocations_.size());
  ht::PAddr free_sum = 0, alloc_sum = 0, pinned_sum = 0;
  for (const auto& [base, bytes] : free_ranges_) {
    spans.push_back({base, bytes, true});
    free_sum += bytes;
  }
  for (const auto& [base, a] : allocations_) {
    spans.push_back({base, a.bytes, false});
    alloc_sum += a.bytes;
    if (a.pinned) pinned_sum += a.bytes;
  }
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.base < b.base; });
  ht::PAddr prev_end = 0;
  bool first = true;
  for (const Span& s : spans) {
    if (s.bytes == 0 || s.base % frame_bytes_ != 0 ||
        s.bytes % frame_bytes_ != 0) {
      err << "unaligned or empty " << (s.is_free ? "free" : "alloc")
          << " span at 0x" << std::hex << s.base;
      return err.str();
    }
    if (!first && s.base < prev_end) {
      err << "overlapping spans at 0x" << std::hex << s.base;
      return err.str();
    }
    prev_end = s.base + s.bytes;
    first = false;
  }
  if (free_sum != free_) {
    err << "free list sums to " << free_sum << " but free_ = " << free_;
    return err.str();
  }
  if (free_sum + alloc_sum != total_) {
    err << "free " << free_sum << " + allocated " << alloc_sum
        << " != total " << total_;
    return err.str();
  }
  if (pinned_sum != pinned_) {
    err << "pinned allocations sum to " << pinned_sum << " but pinned_ = "
        << pinned_;
    return err.str();
  }
  return {};
}

ht::PAddr FrameAllocator::largest_free_range() const {
  ht::PAddr best = 0;
  for (const auto& [_, bytes] : free_ranges_) best = std::max(best, bytes);
  return best;
}

}  // namespace ms::os
