#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "ht/packet.hpp"
#include "sim/stats.hpp"

namespace ms::os {

/// Physical-frame allocator for one node's local memory.
///
/// Supports the three behaviours the paper's OS extensions need:
///  * contiguous allocation — the reservation protocol grants donors'
///    memory as one contiguous physical range ("the reservation is done
///    over a contiguous physical memory area", Sec. III-B), so remote
///    segments need no per-page bookkeeping at the requester;
///  * pinning — donated ranges are marked non-swappable and are never
///    handed to local processes while reserved;
///  * hot-plug — whole ranges can be removed from / returned to the pool,
///    modelling the kernel hot-remove the paper lists as a prerequisite.
///
/// First-fit over an ordered free list with coalescing; allocations are
/// tracked so double-free and partial-free are hard errors.
class FrameAllocator {
 public:
  FrameAllocator(ht::PAddr base, ht::PAddr bytes,
                 std::uint64_t frame_bytes = 4096);

  /// Allocates a contiguous range (rounded up to whole frames).
  std::optional<ht::PAddr> allocate(ht::PAddr bytes, bool pinned = false);

  /// Frees a range previously returned by allocate (exact base required).
  void free(ht::PAddr base);

  /// Single-frame helpers for page-granular users (swap resident set).
  std::optional<ht::PAddr> allocate_frame() { return allocate(frame_bytes_); }

  /// Removes a fully-free range from the pool (memory hot-remove).
  /// Returns false if any frame in the range is allocated.
  bool hot_remove(ht::PAddr base, ht::PAddr bytes);

  /// Returns a previously hot-removed range to the pool.
  void hot_add(ht::PAddr base, ht::PAddr bytes);

  bool is_allocated(ht::PAddr addr) const;
  bool is_pinned(ht::PAddr addr) const;

  ht::PAddr total_bytes() const { return total_; }
  ht::PAddr free_bytes() const { return free_; }
  ht::PAddr pinned_bytes() const { return pinned_; }
  ht::PAddr largest_free_range() const;
  std::uint64_t frame_bytes() const { return frame_bytes_; }

  /// Full consistency audit for the invariant checkers: free list and
  /// allocation map must partition the pool without overlap, and the byte
  /// totals (total/free/pinned) must match the maps exactly. Returns an
  /// empty string when consistent, else a description of the first problem.
  std::string validate() const;

  /// Invokes `fn(base, bytes, pinned)` for every live allocation.
  template <typename Fn>
  void for_each_allocation(Fn&& fn) const {
    for (const auto& [base, a] : allocations_) fn(base, a.bytes, a.pinned);
  }

  /// Invokes `fn(base, bytes)` for every free range (hot-plug tests pick
  /// removable ranges from this walk).
  template <typename Fn>
  void for_each_free_range(Fn&& fn) const {
    for (const auto& [base, bytes] : free_ranges_) fn(base, bytes);
  }

 private:
  ht::PAddr round_up(ht::PAddr bytes) const {
    return (bytes + frame_bytes_ - 1) & ~(frame_bytes_ - 1);
  }

  struct Allocation {
    ht::PAddr bytes;
    bool pinned;
  };

  std::uint64_t frame_bytes_;
  ht::PAddr total_ = 0;
  ht::PAddr free_ = 0;
  ht::PAddr pinned_ = 0;
  std::map<ht::PAddr, ht::PAddr> free_ranges_;       // base -> bytes
  std::map<ht::PAddr, Allocation> allocations_;      // base -> info
};

}  // namespace ms::os
