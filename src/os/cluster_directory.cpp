#include "os/cluster_directory.hpp"

#include <stdexcept>

namespace ms::os {

std::optional<ht::NodeId> ClusterDirectory::pick_donor(
    ht::NodeId requester, ht::PAddr bytes, Policy policy,
    const HopsFn& hops) const {
  std::optional<ht::NodeId> best;
  ht::PAddr best_free = 0;
  int best_hops = 1 << 30;
  for (const auto& [node, alloc] : nodes_) {
    if (node == requester) continue;
    if (non_donatable_.count(node) != 0) continue;
    if (alloc->largest_free_range() < bytes) continue;
    switch (policy) {
      case Policy::kMostFree:
        if (!best || alloc->free_bytes() > best_free) {
          best = node;
          best_free = alloc->free_bytes();
        }
        break;
      case Policy::kNearest: {
        int h = hops ? hops(requester, node) : 0;
        if (!best || h < best_hops ||
            (h == best_hops && alloc->free_bytes() > best_free)) {
          best = node;
          best_hops = h;
          best_free = alloc->free_bytes();
        }
        break;
      }
    }
  }
  return best;
}

ht::PAddr ClusterDirectory::total_free() const {
  ht::PAddr sum = 0;
  for (const auto& [_, alloc] : nodes_) sum += alloc->free_bytes();
  return sum;
}

ht::PAddr ClusterDirectory::free_at(ht::NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second->free_bytes();
}

ClusterDirectory::Policy ClusterDirectory::parse_policy(
    const std::string& name) {
  if (name == "most_free") return Policy::kMostFree;
  if (name == "nearest") return Policy::kNearest;
  throw std::invalid_argument("unknown donor policy: " + name);
}

}  // namespace ms::os
