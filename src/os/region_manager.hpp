#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "os/cluster_directory.hpp"
#include "os/reservation.hpp"
#include "sim/sync.hpp"

namespace ms::os {

/// Observer for segment-level region changes. The memory broker implements
/// this to keep its lease book in sync with the reservation ground truth
/// without polling. Callbacks run synchronously inside the region call.
class RegionObserver {
 public:
  virtual ~RegionObserver() = default;
  virtual void on_grant(const ReservationService::Grant& grant) = 0;
  virtual void on_release(const ReservationService::Grant& grant) = 0;
};

/// One node's *memory region* (Sec. III-A): the single coherency domain its
/// processes live in, composed of local memory plus any number of segments
/// borrowed from other nodes. Growing the region never adds caches to the
/// domain — that is the paper's thesis; this class only manages placement.
///
/// Remote memory arrives in large pinned contiguous segments (one
/// reservation each) and is parcelled out page by page with a bump pointer;
/// freed pages go to per-class free lists for reuse.
class RegionManager {
 public:
  enum class Placement {
    kAuto,        ///< local while it lasts, then remote
    kLocalOnly,   ///< fail instead of borrowing
    kRemoteOnly,  ///< always borrowed memory (benches use this)
  };

  struct Params {
    ht::PAddr segment_bytes = ht::PAddr{256} << 20;  ///< donor granule
    std::uint64_t page_bytes = 4096;
    ClusterDirectory::Policy policy = ClusterDirectory::Policy::kNearest;
  };

  RegionManager(sim::Engine& engine, ht::NodeId self, FrameAllocator& local,
                ReservationService& reservation, ClusterDirectory& directory,
                ClusterDirectory::HopsFn hops, const Params& p);

  /// Returns the physical base (prefixed if remote) of one fresh page, or
  /// nullopt when the placement cannot be satisfied cluster-wide.
  sim::Task<std::optional<ht::PAddr>> alloc_page(Placement placement);

  /// Page explicitly placed on a given donor (used by benches that control
  /// server distance). The donor may be this node (=> local memory).
  sim::Task<std::optional<ht::PAddr>> alloc_page_on(ht::NodeId donor);

  /// Returns a page for reuse.
  void free_page(ht::PAddr page_base);

  /// Releases every remote segment (process teardown). Pages handed out
  /// from those segments must no longer be used.
  sim::Task<void> release_all();

  /// Releases only the segments borrowed from `donor` (the tail of a donor
  /// evacuation, once the broker has migrated every live page away).
  sim::Task<void> release_segments_on(ht::NodeId donor);

  /// Stops handing out pages backed by `donor`: purges its pages from the
  /// remote free list and makes take_from_segments() skip its segments.
  /// free_page() of a quarantined page becomes a no-op (the whole segment
  /// goes back to the donor at release_segments_on()). Growing a fresh
  /// segment from the donor is prevented separately via
  /// ClusterDirectory::set_donatable.
  void quarantine_donor(ht::NodeId donor);

  /// Registers (or clears, with nullptr) the segment-change observer.
  void set_observer(RegionObserver* observer) { observer_ = observer; }

  ht::NodeId self() const { return self_; }
  std::uint64_t local_pages() const { return local_pages_.value(); }
  std::uint64_t remote_pages() const { return remote_pages_.value(); }
  std::size_t segment_count() const { return segments_.size(); }
  ht::PAddr borrowed_bytes() const;

  /// Snapshot of the live reservation grants backing this region (for the
  /// frame-ownership and donor-never-caches invariant checkers).
  std::vector<ReservationService::Grant> segment_grants() const {
    std::vector<ReservationService::Grant> out;
    out.reserve(segments_.size());
    for (const Segment& s : segments_) out.push_back(s.grant);
    return out;
  }

  const Params& params() const { return params_; }

 private:
  struct Segment {
    ReservationService::Grant grant;
    ht::PAddr next_offset = 0;  ///< bump pointer within the segment
  };

  /// Grows the region with one more segment from `donor` (or directory
  /// choice when donor == kNoNode). Returns the new segment index.
  sim::Task<std::optional<std::size_t>> grow(ht::NodeId donor);

  std::optional<ht::PAddr> take_from_segments(ht::NodeId donor_filter);

  sim::Engine& engine_;
  ht::NodeId self_;
  FrameAllocator& local_;
  ReservationService& reservation_;
  ClusterDirectory& directory_;
  ClusterDirectory::HopsFn hops_;
  Params params_;
  sim::Semaphore grow_mutex_;

  // Local pages are carved from larger chunks so the frame allocator sees
  // thousands of allocations, not millions, for GB-scale footprints.
  ht::PAddr local_chunk_next_ = 0;
  ht::PAddr local_chunk_end_ = 0;
  std::optional<ht::PAddr> take_local_page();

  std::vector<Segment> segments_;
  std::deque<ht::PAddr> free_local_;
  std::deque<ht::PAddr> free_remote_;
  std::set<ht::NodeId> quarantined_;
  RegionObserver* observer_ = nullptr;
  sim::Counter local_pages_;
  sim::Counter remote_pages_;
};

}  // namespace ms::os
