#include "os/reservation.hpp"

#include <stdexcept>

namespace ms::os {

ReservationService::ReservationService(sim::Engine& engine,
                                       noc::Fabric& fabric, const Params& p)
    : engine_(engine), fabric_(fabric), params_(p) {}

sim::Task<void> ReservationService::send_ctrl(ht::NodeId from, ht::NodeId to,
                                              std::uint32_t op,
                                              std::uint64_t p0,
                                              std::uint64_t p1) {
  if (from == to) co_return;  // node-local OS call, no fabric traffic
  ht::Packet pkt{
      .type = op == kReserve || op == kRelease ? ht::PacketType::kCtrlReq
                                               : ht::PacketType::kCtrlResp,
      .src = from,
      .dst = to,
      .ctrl_op = op,
      .payload0 = p0,
      .payload1 = p1,
  };
  co_await fabric_.traverse(pkt);
}

sim::Task<std::optional<ReservationService::Grant>> ReservationService::reserve(
    ht::NodeId requester, ht::NodeId donor, ht::PAddr bytes) {
  requests_.inc();
  auto it = allocators_.find(donor);
  if (it == allocators_.end()) {
    throw std::invalid_argument("ReservationService: unknown donor node");
  }

  // Requester-side OS work, then the request message travels to the donor.
  co_await engine_.delay(params_.os_handling);
  co_await send_ctrl(requester, donor, kReserve, bytes, 0);

  // Donor-side OS: pin a contiguous range.
  co_await engine_.delay(params_.os_handling);
  std::optional<ht::PAddr> base = it->second->allocate(bytes, /*pinned=*/true);

  if (!base) {
    denials_.inc();
    co_await send_ctrl(donor, requester, kReserveAck, /*ok=*/0, 0);
    co_return std::nullopt;
  }

  grants_.inc();
  // "One modification is done to that physical address before sending it
  // back: the 14 most significant bits are changed to reflect the
  // identifier of node 3."
  ht::PAddr prefixed = node::make_remote(donor, *base);
  co_await send_ctrl(donor, requester, kReserveAck, /*ok=*/1, prefixed);
  co_return Grant{donor, prefixed, bytes};
}

sim::Task<void> ReservationService::release(ht::NodeId requester,
                                            const Grant& grant) {
  auto it = allocators_.find(grant.donor);
  if (it == allocators_.end()) {
    throw std::invalid_argument("ReservationService: unknown donor node");
  }
  co_await send_ctrl(requester, grant.donor, kRelease,
                     node::local_part(grant.prefixed_base), grant.bytes);
  co_await engine_.delay(params_.os_handling);
  it->second->free(node::local_part(grant.prefixed_base));
  co_await send_ctrl(grant.donor, requester, kReleaseAck, 0, 0);
}

bool ReservationService::removable(ht::NodeId donor, ht::PAddr base,
                                   ht::PAddr bytes) const {
  auto it = allocators_.find(donor);
  if (it == allocators_.end()) return false;
  // Any allocated (hence possibly reserved) frame in the range blocks
  // hot-removal; pinned donations especially so.
  for (ht::PAddr a = base; a < base + bytes; a += it->second->frame_bytes()) {
    if (it->second->is_allocated(a)) return false;
  }
  return true;
}

}  // namespace ms::os
