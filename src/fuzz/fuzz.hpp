#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/memory_space.hpp"
#include "sim/invariant.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace ms::fuzz {

/// One randomized episode configuration. Every field defaults to the
/// *smallest* interesting value, so "distance from default" is both the
/// generator's dial and the minimizer's objective: a minimized repro is a
/// short list of knob=value overrides on top of this baseline.
struct Knobs {
  // Cluster shape.
  int nodes = 2;
  std::string topology = "ring";
  int sockets = 1;
  int cores_per_socket = 1;
  std::uint64_t local_mib = 64;     ///< local memory per node
  std::uint64_t cache_kib = 64;     ///< per-core private cache
  std::uint64_t segment_mib = 2;    ///< donor reservation granule
  int rmc_outstanding = 1;          ///< per-core remote outstanding limit
  int virtual_channels = 1;
  double link_error_rate = 0.0;     ///< CRC retransmission probability
  // Process / workload.
  int mode = 0;       ///< 0 = region (the paper's architecture), 1 = remote swap
  int workload = 0;   ///< 0 = random reads, 1 = hash index, 2 = shared r/w
  int threads = 1;
  std::uint64_t accesses = 200;     ///< per thread
  std::uint64_t buffer_kib = 64;    ///< workload footprint
  std::uint64_t resident_kib = 128; ///< swap resident-set limit (mode 1)
  // Memory broker (mode 0 only; all 0 = no broker, the pre-broker system).
  std::uint64_t migrate_period_us = 0;  ///< random live migration period
  int pressure_pct = 0;                 ///< rebalance threshold (0 = off)
  std::uint64_t evacuate_at_us = 0;     ///< drain donor 2 at this sim time
  // Hot path.
  int fastpath = 1;  ///< 0 = force every access down the coroutine path

  /// Samples a random-but-valid configuration; deterministic per Rng state.
  static Knobs generate(sim::Rng& rng);

  /// Names of every knob, in minimization order (structural knobs first so
  /// the minimizer shrinks the machine before the workload).
  static const std::vector<std::string>& knob_names();

  /// Returns knobs that differ from the default baseline as "name=value".
  std::vector<std::string> non_default() const;

  /// Sets one knob from "name=value" (CLI overrides, repro lines). Throws
  /// std::invalid_argument on an unknown name.
  void set(const std::string& name, const std::string& value);

  /// Resets one knob to its default. Returns false on an unknown name.
  bool reset(const std::string& name);

  /// "name=value ..." for every non-default knob (repro command lines).
  std::string repro_args() const;

  /// Materializes the cluster configuration this episode runs on.
  core::ClusterConfig cluster_config() const;
};

/// Seeded fault injections: each breaks exactly one invariant so the
/// checkers (and the minimizer) can be validated end to end.
enum class Mutation {
  kNone,
  kSkipDowngrade,    ///< MSI: skip the modified-owner downgrade on read miss
  kLeakCredit,       ///< eat one link credit permanently
  kPhantomRequest,   ///< count a client request that never happened
  kShrinkSwapLimit,  ///< shrink the swap resident capacity mid-run
  kLostPageOnMigrate,///< migration bookkeeping completes, remap skipped
};

Mutation parse_mutation(const std::string& name);
const char* mutation_name(Mutation m);

struct EpisodeOptions {
  std::uint64_t seed = 1;          ///< drives tie-fuzz + workload RNG
  sim::Time epoch = sim::us(20);   ///< invariant-check period; 0 = drain only
  Mutation mutation = Mutation::kNone;
  sim::Tracer* tracer = nullptr;   ///< optional (flight-recorder re-runs)
};

struct EpisodeResult {
  std::vector<sim::InvariantViolation> violations;
  std::uint64_t events = 0;   ///< engine events processed
  sim::Time sim_time = 0;     ///< simulated duration
  std::uint64_t checks = 0;   ///< invariant sweeps executed
};

/// Everything the cluster-wide checkers need to see. `released` flips to
/// true once the episode has torn its regions down; checkers that compare
/// page tables against live grants go quiet after that point (the PTEs are
/// intentionally stale during teardown).
struct EpisodeContext {
  sim::Engine* engine = nullptr;
  core::Cluster* cluster = nullptr;
  std::vector<core::MemorySpace*> spaces;
  std::shared_ptr<bool> released;
};

/// Registers the full invariant set against a built cluster:
///   frame.allocator    — allocator free/alloc maps partition the pool
///   frame.ownership    — grants pinned at the donor, globally disjoint
///   pagetable.agreement— PTEs point into live grants / local memory
///   donor.never_caches — donated ranges never resident in donor caches
///   msi.directory      — modified owner is the *only* sharer
///   msi.cache_agreement— resident lines are registered (mod. fill window)
///   msi.single_writer  — at most one dirty copy of a line (drain: strict)
///   swap.resident      — resident set <= capacity, LRU books consistent
///   link.credits       — [drain] all credits returned, transmitters idle
///   packet.conservation— [drain] every request got exactly one response
///   engine.drain       — [drain] no process still blocked (deadlock)
void register_cluster_invariants(sim::InvariantRegistry& reg,
                                 const EpisodeContext& ctx);

/// Runs one seeded episode: build the cluster from `k`, apply the mutation,
/// run a random workload mix under tie-fuzz, check invariants at epoch
/// boundaries and at drain. Exceptions escaping the simulation are reported
/// as violations ("episode.exception"), never thrown.
EpisodeResult run_episode(const Knobs& k, const EpisodeOptions& opt);

struct MinimizeResult {
  Knobs knobs;            ///< smallest configuration still failing
  std::string invariant;  ///< the invariant it still fails
  int runs = 0;           ///< episodes spent minimizing
};

/// Greedy shrink: reset knobs to their defaults one at a time (keeping a
/// reset only when `invariant` still fires), then halve the episode length.
/// `invariant` is the checker name that must keep firing (from the original
/// failure).
MinimizeResult minimize(Knobs k, const EpisodeOptions& opt,
                        const std::string& invariant);

struct CampaignOptions {
  std::uint64_t episodes = 64;
  std::uint64_t first_seed = 1;          ///< seeds are first_seed..+episodes-1
  std::vector<std::uint64_t> seeds;      ///< explicit list (overrides above)
  sim::Time epoch = sim::us(20);
  Mutation mutation = Mutation::kNone;
  bool minimize = true;                  ///< auto-minimize failures
  std::string flight_path;               ///< dump MSFLIGHT rings here ("" = off)
  bool verbose = false;
  int jobs = 1;                          ///< episode workers (<= 0: all cores)
};

/// One episode's outcome, recorded per seed in seed order. Everything here
/// is a pure function of (seed, campaign options) — episodes never share
/// state — so the records are byte-identical regardless of `jobs`. Only
/// wall_ms varies run to run; it never enters report JSON.
struct EpisodeRecord {
  std::uint64_t seed = 0;
  std::uint64_t events = 0;
  sim::Time sim_time = 0;
  std::uint64_t checks = 0;
  std::vector<std::string> violations;  ///< "[name @drain t=N] detail" lines
  double wall_ms = 0;                   ///< includes minimize + flight re-run
};

struct CampaignResult {
  std::uint64_t episodes_run = 0;
  std::uint64_t failing = 0;
  std::vector<std::uint64_t> failing_seeds;
  std::vector<std::string> repro_lines;  ///< one repro command line per failure
  std::vector<EpisodeRecord> episodes;   ///< per-seed outcomes, in seed order
};

/// Runs a campaign of seeded episodes (knobs generated per seed), reporting
/// violations, minimizing failures and dumping flight-recorder rings.
/// Progress and findings go to `log` when non-null. With jobs != 1 the
/// episodes run across a sim::ParallelExecutor, one isolated Engine per
/// episode; the campaign log is streamed in seed order as episodes complete,
/// so results AND log output are byte-identical for every jobs value.
CampaignResult run_campaign(const CampaignOptions& opt, std::ostream* log);

}  // namespace ms::fuzz
