#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "broker/broker.hpp"
#include "core/runner.hpp"
#include "node/address_map.hpp"
#include "node/core.hpp"
#include "sim/parallel.hpp"
#include "sim/tracer.hpp"
#include "workloads/hash_index.hpp"
#include "workloads/random_access.hpp"

namespace ms::fuzz {

// ---------------------------------------------------------------------------
// Knobs: one table drives get/set/reset/diff so the generator, the CLI and
// the minimizer can never disagree about what a knob is called.
// ---------------------------------------------------------------------------

namespace {

std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

struct Field {
  const char* name;
  std::string (*get)(const Knobs&);
  void (*set)(Knobs&, const std::string&);
  bool (*differs)(const Knobs&, const Knobs&);
};

#define MS_INT_FIELD(f)                                                  \
  Field{#f, [](const Knobs& k) { return std::to_string(k.f); },          \
        [](Knobs& k, const std::string& v) { k.f = std::stoi(v); },      \
        [](const Knobs& a, const Knobs& b) { return a.f != b.f; }}
#define MS_U64_FIELD(f)                                                  \
  Field{#f, [](const Knobs& k) { return std::to_string(k.f); },          \
        [](Knobs& k, const std::string& v) { k.f = std::stoull(v); },    \
        [](const Knobs& a, const Knobs& b) { return a.f != b.f; }}
#define MS_DBL_FIELD(f)                                                  \
  Field{#f, [](const Knobs& k) { return fmt_double(k.f); },              \
        [](Knobs& k, const std::string& v) { k.f = std::stod(v); },      \
        [](const Knobs& a, const Knobs& b) { return a.f != b.f; }}
#define MS_STR_FIELD(f)                                                  \
  Field{#f, [](const Knobs& k) { return k.f; },                          \
        [](Knobs& k, const std::string& v) { k.f = v; },                 \
        [](const Knobs& a, const Knobs& b) { return a.f != b.f; }}

// Minimization order: structural knobs first, so the minimizer shrinks the
// machine back to the 2-node ring baseline before it touches the workload.
const Field kFields[] = {
    MS_INT_FIELD(nodes),
    MS_STR_FIELD(topology),
    MS_INT_FIELD(sockets),
    MS_INT_FIELD(cores_per_socket),
    MS_U64_FIELD(local_mib),
    MS_U64_FIELD(cache_kib),
    MS_U64_FIELD(segment_mib),
    MS_INT_FIELD(rmc_outstanding),
    MS_INT_FIELD(virtual_channels),
    MS_DBL_FIELD(link_error_rate),
    MS_INT_FIELD(mode),
    MS_INT_FIELD(workload),
    MS_INT_FIELD(threads),
    MS_U64_FIELD(accesses),
    MS_U64_FIELD(buffer_kib),
    MS_U64_FIELD(resident_kib),
    MS_U64_FIELD(migrate_period_us),
    MS_INT_FIELD(pressure_pct),
    MS_U64_FIELD(evacuate_at_us),
    MS_INT_FIELD(fastpath),
};

#undef MS_INT_FIELD
#undef MS_U64_FIELD
#undef MS_DBL_FIELD
#undef MS_STR_FIELD

const Field* find_field(const std::string& name) {
  for (const Field& f : kFields) {
    if (name == f.name) return &f;
  }
  return nullptr;
}

}  // namespace

Knobs Knobs::generate(sim::Rng& rng) {
  Knobs k;
  k.nodes = static_cast<int>(2 + rng.below(5));  // 2..6
  static const char* kTopos[] = {"ring", "mesh2d", "star", "full", "torus2d"};
  k.topology = kTopos[rng.below(5)];
  k.sockets = static_cast<int>(1 + rng.below(2));
  k.cores_per_socket = static_cast<int>(1 + rng.below(2));
  k.local_mib = std::uint64_t{32} << rng.below(2);   // 32 or 64 MiB
  k.cache_kib = std::uint64_t{16} << rng.below(3);   // 16/32/64 KiB
  k.segment_mib = std::uint64_t{1} << rng.below(3);  // 1/2/4 MiB
  k.rmc_outstanding = 1 << rng.below(4);             // 1/2/4/8
  k.virtual_channels = static_cast<int>(1 + rng.below(2));
  static const double kErr[] = {0.0, 0.0, 1e-3, 1e-2};
  k.link_error_rate = kErr[rng.below(4)];
  k.mode = rng.chance(0.3) ? 1 : 0;
  k.workload = static_cast<int>(rng.below(3));
  k.threads = static_cast<int>(1 + rng.below(4));
  k.accesses = 100 + rng.below(901);                  // 100..1000
  k.buffer_kib = std::uint64_t{16} << rng.below(4);   // 16..128 KiB
  k.resident_kib = std::uint64_t{32} << rng.below(3); // 32/64/128 KiB
  // Broker knobs (drawn last so earlier knobs keep their per-seed values).
  k.migrate_period_us =
      rng.chance(0.25) ? std::uint64_t{20} << rng.below(3) : 0;  // 20/40/80
  k.pressure_pct =
      rng.chance(0.15) ? static_cast<int>(25 * (1 + rng.below(3))) : 0;
  k.evacuate_at_us = rng.chance(0.2) ? 40 + rng.below(200) : 0;
  // The fast path is timing-equivalent by contract; fuzzing it off on a
  // fraction of episodes cross-checks that contract over random configs.
  k.fastpath = rng.chance(0.25) ? 0 : 1;
  return k;
}

const std::vector<std::string>& Knobs::knob_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const Field& f : kFields) v.emplace_back(f.name);
    return v;
  }();
  return names;
}

std::vector<std::string> Knobs::non_default() const {
  const Knobs def;
  std::vector<std::string> out;
  for (const Field& f : kFields) {
    if (f.differs(*this, def)) {
      out.push_back(std::string(f.name) + "=" + f.get(*this));
    }
  }
  return out;
}

void Knobs::set(const std::string& name, const std::string& value) {
  const Field* f = find_field(name);
  if (f == nullptr) {
    throw std::invalid_argument("unknown fuzz knob: " + name);
  }
  f->set(*this, value);
}

bool Knobs::reset(const std::string& name) {
  const Field* f = find_field(name);
  if (f == nullptr) return false;
  const Knobs def;
  f->set(*this, f->get(def));
  return true;
}

std::string Knobs::repro_args() const {
  std::string out;
  for (const std::string& kv : non_default()) {
    if (!out.empty()) out += ' ';
    out += kv;
  }
  return out;
}

core::ClusterConfig Knobs::cluster_config() const {
  core::ClusterConfig c;
  c.nodes = nodes;
  c.topology = topology;
  // Keep the OS share small: fuzz clusters are MiB-scale, not the
  // prototype's 16 GiB nodes.
  c.os_reserved_bytes = ht::PAddr{8} << 20;
  c.node.sockets = sockets;
  c.node.cores_per_socket = cores_per_socket;
  c.node.local_bytes = local_mib << 20;
  c.node.cache.size_bytes = cache_kib << 10;
  c.node.core_remote_outstanding = rmc_outstanding;
  c.fabric.virtual_channels = virtual_channels;
  c.fabric.link.error_rate = link_error_rate;
  c.region.segment_bytes = segment_mib << 20;
  return c;
}

Mutation parse_mutation(const std::string& name) {
  if (name.empty() || name == "none") return Mutation::kNone;
  if (name == "skip-downgrade") return Mutation::kSkipDowngrade;
  if (name == "leak-credit") return Mutation::kLeakCredit;
  if (name == "phantom-request") return Mutation::kPhantomRequest;
  if (name == "shrink-swap") return Mutation::kShrinkSwapLimit;
  if (name == "lost-page-on-migrate") return Mutation::kLostPageOnMigrate;
  throw std::invalid_argument("unknown mutation: " + name);
}

const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kSkipDowngrade: return "skip-downgrade";
    case Mutation::kLeakCredit: return "leak-credit";
    case Mutation::kPhantomRequest: return "phantom-request";
    case Mutation::kShrinkSwapLimit: return "shrink-swap";
    case Mutation::kLostPageOnMigrate: return "lost-page-on-migrate";
  }
  return "none";
}

// ---------------------------------------------------------------------------
// Invariant checkers
// ---------------------------------------------------------------------------

namespace {

std::string hex(ht::PAddr a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

struct GrantRange {
  ht::NodeId donor;
  ht::PAddr base;   ///< donor-local (unprefixed)
  ht::PAddr bytes;
};

std::vector<GrantRange> live_grants(
    const std::vector<core::MemorySpace*>& spaces) {
  std::vector<GrantRange> out;
  for (core::MemorySpace* sp : spaces) {
    if (sp->region() == nullptr) continue;
    for (const auto& g : sp->region()->segment_grants()) {
      out.push_back({g.donor, node::local_part(g.prefixed_base), g.bytes});
    }
  }
  return out;
}

}  // namespace

void register_cluster_invariants(sim::InvariantRegistry& reg,
                                 const EpisodeContext& ctx) {
  core::Cluster* cl = ctx.cluster;
  auto spaces = ctx.spaces;
  auto released = ctx.released;
  const int nodes = cl->num_nodes();

  // Every node's frame allocator partitions its pool exactly.
  reg.add("frame.allocator", [cl, nodes](sim::InvariantContext& c) {
    for (int n = 1; n <= nodes; ++n) {
      std::string err = cl->allocator(static_cast<ht::NodeId>(n)).validate();
      if (!err.empty()) c.fail("node " + std::to_string(n) + ": " + err);
    }
  });

  // Every live grant is allocated *and pinned* at its donor, and no two
  // grants overlap (frames are owned by at most one region at a time).
  // Quiet during teardown: release_all frees grants at the donor one
  // co_await at a time before clearing its segment list.
  reg.add("frame.ownership", [cl, spaces, released](sim::InvariantContext& c) {
    if (released != nullptr && *released) return;
    std::vector<GrantRange> grants = live_grants(spaces);
    for (const GrantRange& g : grants) {
      os::FrameAllocator& alloc = cl->allocator(g.donor);
      if (!alloc.is_allocated(g.base) || !alloc.is_pinned(g.base) ||
          !alloc.is_allocated(g.base + g.bytes - 1)) {
        c.fail("grant " + hex(g.base) + "+" + std::to_string(g.bytes) +
               " not allocated+pinned at donor " + std::to_string(g.donor));
      }
    }
    std::sort(grants.begin(), grants.end(),
              [](const GrantRange& a, const GrantRange& b) {
                return a.donor != b.donor ? a.donor < b.donor
                                          : a.base < b.base;
              });
    for (std::size_t i = 1; i < grants.size(); ++i) {
      const GrantRange& p = grants[i - 1];
      const GrantRange& g = grants[i];
      if (p.donor == g.donor && g.base < p.base + p.bytes) {
        c.fail("grants overlap on donor " + std::to_string(g.donor) +
               " at " + hex(g.base) + " (double-granted range)");
      }
    }
  });

  // Present PTEs point into a live grant (prefixed) or into local memory
  // (unprefixed, below the node's pool). Quiet once teardown started: PTEs
  // are intentionally stale while grants are being released.
  reg.add("pagetable.agreement", [cl, spaces, released](
                                     sim::InvariantContext& c) {
    const bool closed = released != nullptr && *released;
    const ht::PAddr local_bytes = cl->config().node.local_bytes;
    const std::vector<GrantRange> grants = live_grants(spaces);
    for (core::MemorySpace* sp : spaces) {
      sp->page_table().for_each([&](os::VAddr va,
                                    const os::PageTable::Entry& e) {
        if (!e.present) return;
        if (node::has_prefix(e.frame)) {
          if (closed) return;
          const ht::NodeId donor = node::node_of(e.frame);
          const ht::PAddr local = node::local_part(e.frame);
          bool inside = false;
          for (const GrantRange& g : grants) {
            if (g.donor == donor && local >= g.base &&
                local < g.base + g.bytes) {
              inside = true;
              break;
            }
          }
          if (!inside) {
            c.fail("PTE va " + hex(va) + " -> " + hex(e.frame) +
                   " points outside every live grant");
          }
        } else if (e.frame >= local_bytes) {
          c.fail("PTE va " + hex(va) + " -> local frame " + hex(e.frame) +
                 " beyond the node's memory");
        }
      });
    }
  });

  // The paper's thesis made checkable: a donor never caches donated frames
  // (they belong to the borrower's coherency domain, not the donor's).
  reg.add("donor.never_caches", [cl, spaces, released](
                                    sim::InvariantContext& c) {
    if (released != nullptr && *released) return;
    for (const GrantRange& g : live_grants(spaces)) {
      node::Node& dn = cl->node(g.donor);
      for (int i = 0; i < dn.num_cores(); ++i) {
        dn.core(i).cache().for_each_resident(
            [&](ht::PAddr line, bool /*dirty*/) {
              if (!node::has_prefix(line) && line >= g.base &&
                  line < g.base + g.bytes) {
                c.fail("donor " + std::to_string(g.donor) + " core " +
                       std::to_string(i) + " caches donated line " +
                       hex(line));
              }
            });
      }
    }
  });

  // MSI: a registered modified owner must be the *only* sharer. This is the
  // checker the skip-downgrade mutation trips.
  reg.add("msi.directory", [cl, nodes](sim::InvariantContext& c) {
    for (int n = 1; n <= nodes; ++n) {
      cl->node(static_cast<ht::NodeId>(n))
          .directory()
          .for_each_entry([&](ht::PAddr line, std::uint64_t sharers,
                              int owner) {
            if (sharers == 0) {
              c.fail("node " + std::to_string(n) + " line " + hex(line) +
                     ": directory entry with no sharers");
            } else if (owner >= 0 && sharers != (std::uint64_t{1} << owner)) {
              c.fail("node " + std::to_string(n) + " line " + hex(line) +
                     ": modified owner core " + std::to_string(owner) +
                     " coexists with sharer mask " +
                     std::to_string(sharers));
            }
          });
    }
  });

  // Every cache-resident line is registered in its node's directory (a fill
  // in flight is registered before the tag lands, hence the MSHR window).
  reg.add("msi.cache_agreement", [cl, nodes](sim::InvariantContext& c) {
    for (int n = 1; n <= nodes; ++n) {
      node::Node& nd = cl->node(static_cast<ht::NodeId>(n));
      for (int i = 0; i < nd.num_cores(); ++i) {
        nd.core(i).cache().for_each_resident(
            [&](ht::PAddr line, bool /*dirty*/) {
              if (!nd.directory().sharer(line, i) &&
                  !nd.fill_pending(i, line)) {
                c.fail("node " + std::to_string(n) + " core " +
                       std::to_string(i) + " holds unregistered line " +
                       hex(line));
              }
            });
      }
    }
  });

  // At most one dirty copy per line. Mid-run a write-miss fill may be dirty
  // before the old owner's invalidation lands, so copies inside the MSHR
  // window are excluded at epochs; at drain the check is strict.
  reg.add("msi.single_writer", [cl, nodes](sim::InvariantContext& c) {
    for (int n = 1; n <= nodes; ++n) {
      node::Node& nd = cl->node(static_cast<ht::NodeId>(n));
      std::unordered_map<ht::PAddr, int> dirty_copies;
      for (int i = 0; i < nd.num_cores(); ++i) {
        nd.core(i).cache().for_each_resident([&](ht::PAddr line, bool dirty) {
          if (!dirty) return;
          if (!c.at_drain() && nd.fill_pending(i, line)) return;
          ++dirty_copies[line];
        });
      }
      for (const auto& [line, copies] : dirty_copies) {
        if (copies > 1) {
          c.fail("node " + std::to_string(n) + " line " + hex(line) + ": " +
                 std::to_string(copies) + " dirty copies");
        }
      }
    }
  });

  // Swap books: resident set within capacity, LRU in exact correspondence,
  // no frame backing two pages.
  reg.add("swap.resident", [spaces](sim::InvariantContext& c) {
    for (core::MemorySpace* sp : spaces) {
      if (sp->swapper() == nullptr) continue;
      std::string err = sp->swapper()->validate();
      if (!err.empty()) c.fail(err);
    }
  });

  // Flow control: when the simulation drains, every link has all its
  // credits back, an idle transmitter and nobody queued for credits.
  reg.add_drain_only("link.credits", [cl](sim::InvariantContext& c) {
    cl->fabric().for_each_link([&](ht::NodeId from, ht::NodeId to, int vc,
                                   const ht::Link& l) {
      const std::string edge = std::to_string(from) + "->" +
                               std::to_string(to) + " vc" +
                               std::to_string(vc);
      if (l.credits_available() != l.credits_configured()) {
        c.fail("link " + edge + ": " +
               std::to_string(l.credits_available()) + " of " +
               std::to_string(l.credits_configured()) +
               " credits returned at drain");
      }
      if (!l.transmitter_idle()) c.fail("link " + edge + ": transmitter busy");
      if (l.credit_waiters() != 0) {
        c.fail("link " + edge + ": " + std::to_string(l.credit_waiters()) +
               " messages still waiting for credits");
      }
    });
  });

  // Conservation: every client request completed exactly one round trip and
  // no RMC still holds occupancy or waiters at drain.
  reg.add_drain_only("packet.conservation", [cl, nodes](
                                                sim::InvariantContext& c) {
    for (int n = 1; n <= nodes; ++n) {
      rmc::Rmc& r = cl->rmc(static_cast<ht::NodeId>(n));
      const std::string who = "rmc " + std::to_string(n);
      if (r.outstanding() != 0) {
        c.fail(who + ": " + std::to_string(r.outstanding()) +
               " requests still outstanding at drain");
      }
      if (r.port_waiters() != 0) {
        c.fail(who + ": " + std::to_string(r.port_waiters()) +
               " messages queued on the local port at drain");
      }
      if (r.client_requests() != r.round_trip().count()) {
        c.fail(who + ": " + std::to_string(r.client_requests()) +
               " client requests vs " +
               std::to_string(r.round_trip().count()) +
               " completed round trips");
      }
    }
  });

  // The engine drained with coroutines still suspended => deadlock.
  sim::Engine* eng = ctx.engine;
  reg.add_drain_only("engine.drain", [eng](sim::InvariantContext& c) {
    if (eng->live_processes() != 0) {
      c.fail(std::to_string(eng->live_processes()) +
             " processes still blocked at drain (deadlock)");
    }
  });
}

// ---------------------------------------------------------------------------
// Episode driver
// ---------------------------------------------------------------------------

namespace {

void apply_mutation(core::Cluster& cluster, Mutation m) {
  switch (m) {
    case Mutation::kNone:
    case Mutation::kShrinkSwapLimit:    // applied mid-run, see run_episode
    case Mutation::kLostPageOnMigrate:  // applied on the broker, see run_episode
      break;
    case Mutation::kSkipDowngrade:
      for (int n = 1; n <= cluster.num_nodes(); ++n) {
        cluster.node(static_cast<ht::NodeId>(n))
            .directory()
            .test_skip_downgrade(true);
      }
      break;
    case Mutation::kLeakCredit: {
      ht::NodeId from = 0, to = 0;
      bool got = false;
      cluster.fabric().for_each_link(
          [&](ht::NodeId f, ht::NodeId t, int vc, const ht::Link&) {
            if (!got && vc == 0) {
              from = f;
              to = t;
              got = true;
            }
          });
      if (got) cluster.fabric().mutable_link(from, to, 0).test_leak_credit();
      break;
    }
    case Mutation::kPhantomRequest:
      cluster.rmc(1).test_inject_phantom_request();
      break;
  }
}

sim::Task<void> random_access_thread(
    std::shared_ptr<workloads::RandomAccess> wl, int core, int thread_id) {
  co_await wl->thread_fn(core, thread_id);
}

sim::Task<void> hash_thread(std::shared_ptr<workloads::HashIndex> idx,
                            core::MemorySpace* space,
                            std::shared_ptr<std::uint64_t> errors, int core,
                            std::uint64_t seed, std::uint64_t entries,
                            std::uint64_t accesses) {
  core::ThreadCtx t{.core = core};
  sim::Rng rng(seed);
  for (std::uint64_t i = 0; i < accesses; ++i) {
    const std::uint64_t pick = rng.below(entries);
    t.compute(sim::ns(6));  // key generation + compare
    auto v = co_await idx->get(t, pick * 2 + 1);
    if (!v.has_value() || *v != pick) ++*errors;
  }
  co_await space->sync(t);
}

sim::Task<void> shared_rw_thread(core::MemorySpace* space, core::VAddr base,
                                 std::uint64_t words, int core,
                                 std::uint64_t seed, std::uint64_t accesses) {
  core::ThreadCtx t{.core = core};
  sim::Rng rng(seed);
  for (std::uint64_t i = 0; i < accesses; ++i) {
    const std::uint64_t w = rng.below(words);
    t.compute(sim::ns(4));
    if (rng.chance(0.5)) {
      co_await space->write_u64(t, base + w * 8, (seed << 20) ^ i);
    } else {
      (void)co_await space->read_u64(t, base + w * 8);
    }
  }
  co_await space->sync(t);
}

// Periodic broker activity: random live migrations (deterministic in the
// episode seed) and, when a pressure threshold is armed, a rebalance pass
// first. Ends with the workload like the epoch loop.
sim::Task<void> broker_ticker(sim::Engine& engine, broker::MemoryBroker* brk,
                              core::MemorySpace* space, sim::Time period,
                              bool migrate, std::shared_ptr<bool> done,
                              sim::Time deadline, std::uint64_t seed) {
  std::uint64_t rng = seed;
  while (!*done && engine.now() < deadline) {
    co_await engine.delay(period);
    if (*done) break;
    if (co_await brk->rebalance_once()) continue;
    if (migrate) {
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      co_await brk->migrate_any(*space, rng);
    }
  }
}

// Periodic invariant sweeps. The period backs off geometrically so long
// episodes (or a deadlocked one running to the sim-time deadline) execute a
// bounded number of sweeps instead of tens of thousands.
sim::Task<void> epoch_loop(sim::Engine& engine, sim::InvariantRegistry& reg,
                           sim::Time epoch, std::shared_ptr<bool> done,
                           sim::Time deadline,
                           std::shared_ptr<bool> timed_out) {
  sim::Time period = epoch;
  int sweeps_at_period = 0;
  while (!*done && engine.now() < deadline) {
    co_await engine.delay(period);
    if (*done) break;
    reg.check_all(engine.now(), /*at_drain=*/false);
    if (++sweeps_at_period >= 32) {
      sweeps_at_period = 0;
      period *= 2;
    }
  }
  if (!*done) *timed_out = true;
}

}  // namespace

EpisodeResult run_episode(const Knobs& k, const EpisodeOptions& opt) {
  EpisodeResult res;
  sim::InvariantRegistry reg;
  auto done = std::make_shared<bool>(false);
  auto released = std::make_shared<bool>(false);
  auto timed_out = std::make_shared<bool>(false);
  auto evac_done = std::make_shared<bool>(true);
  auto data_errors = std::make_shared<std::uint64_t>(0);
  try {
    sim::Engine engine;
    engine.set_tie_fuzz(opt.seed * 0x9e3779b97f4a7c15ULL + 0x5eed);
    if (opt.tracer != nullptr) engine.set_tracer(opt.tracer);
    core::Cluster cluster(engine, k.cluster_config());
    apply_mutation(cluster, opt.mutation);

    // The broker exists only when an episode actually exercises it, so the
    // bulk of the corpus still runs the pre-broker system byte-identically.
    // Declared before the space: the space must die first (its gate points
    // into the broker).
    const bool want_broker =
        k.mode == 0 && (k.migrate_period_us > 0 || k.pressure_pct > 0 ||
                        k.evacuate_at_us > 0 ||
                        opt.mutation == Mutation::kLostPageOnMigrate);
    std::unique_ptr<broker::MemoryBroker> brk;
    if (want_broker) {
      broker::MemoryBroker::Params bp;
      bp.pressure_pct = k.pressure_pct;
      brk = std::make_unique<broker::MemoryBroker>(cluster, bp);
      if (opt.mutation == Mutation::kLostPageOnMigrate) {
        brk->test_lose_page(true);
      }
    }

    core::MemorySpace::Params sp;
    sp.fastpath = k.fastpath != 0;
    if (k.mode == 0) {
      sp.mode = core::MemorySpace::Mode::kRemoteRegion;
      sp.placement = os::RegionManager::Placement::kRemoteOnly;
    } else {
      sp.mode = core::MemorySpace::Mode::kRemoteSwap;
      sp.swap.resident_limit_bytes = k.resident_kib << 10;
    }
    core::MemorySpace space(cluster, 1, sp);
    if (brk != nullptr) brk->attach(space);

    EpisodeContext ctx{&engine, &cluster, {&space}, released};
    register_cluster_invariants(reg, ctx);
    if (brk != nullptr) brk->register_invariants(reg, released.get());

    // Region closure: after teardown every donor is back to its baseline
    // free-byte count (the home may hold local chunks the region keeps).
    std::vector<ht::PAddr> baseline;
    for (int n = 1; n <= cluster.num_nodes(); ++n) {
      baseline.push_back(cluster.allocator(static_cast<ht::NodeId>(n))
                             .free_bytes());
    }
    core::Cluster* cl = &cluster;
    reg.add_drain_only("region.closure", [cl, baseline, released](
                                             sim::InvariantContext& c) {
      if (!*released) return;  // episode died before teardown
      for (int n = 1; n <= cl->num_nodes(); ++n) {
        const ht::PAddr now_free =
            cl->allocator(static_cast<ht::NodeId>(n)).free_bytes();
        const ht::PAddr then_free = baseline[static_cast<std::size_t>(n - 1)];
        const bool home = n == 1;
        if (home ? now_free > then_free : now_free != then_free) {
          c.fail("node " + std::to_string(n) + ": " +
                 std::to_string(now_free) + " bytes free after release, " +
                 std::to_string(then_free) + " before the episode");
        }
      }
    });

    const sim::Time deadline = engine.now() + sim::sec(1);
    if (opt.epoch > 0 && !reg.empty()) {
      engine.spawn(
          epoch_loop(engine, reg, opt.epoch, done, deadline, timed_out));
    }

    if (brk != nullptr) {
      const sim::Time period = k.migrate_period_us > 0
                                   ? sim::us(k.migrate_period_us)
                                   : sim::us(40);
      const bool migrate = k.migrate_period_us > 0 ||
                           opt.mutation == Mutation::kLostPageOnMigrate;
      engine.spawn(broker_ticker(engine, brk.get(), &space, period, migrate,
                                 done, deadline, opt.seed));
      if (k.evacuate_at_us > 0 && cluster.num_nodes() >= 2) {
        // Hot-remove-under-load: drain donor 2 mid-episode. The workload
        // keeps running; broker.evacuated then holds for the rest of it.
        // Teardown waits on evac_done — a drain still migrating pages while
        // release_all runs would re-grow segments after the region closed.
        *evac_done = false;
        broker::MemoryBroker* b = brk.get();
        sim::Engine* eng = &engine;
        auto flag = evac_done;
        engine.schedule(sim::us(k.evacuate_at_us), [b, eng, flag] {
          eng->spawn([](broker::MemoryBroker* bk,
                        std::shared_ptr<bool> f) -> sim::Task<void> {
            co_await bk->drain_donor(2);
            *f = true;
          }(b, flag));
        });
      }
    }

    core::Runner runner(engine);
    const int ncores = cluster.node(1).num_cores();
    const std::uint64_t buffer_bytes =
        std::max<std::uint64_t>(4096, k.buffer_kib << 10);
    std::vector<ht::NodeId> servers;
    if (k.mode == 0) {
      for (int n = 2; n <= cluster.num_nodes(); ++n) {
        servers.push_back(static_cast<ht::NodeId>(n));
      }
    }
    if (servers.empty()) servers.push_back(1);

    auto ra = std::make_shared<workloads::RandomAccess>(
        space,
        workloads::RandomAccess::Params{
            .buffer_bytes = buffer_bytes,
            .accesses_per_thread = k.accesses,
            .access_bytes = 8,
            .seed = opt.seed,
            .verify = true,
        });
    auto setup_and_spawn = [&, servers]() -> sim::Task<void> {
      if (k.workload == 0) {
        co_await ra->setup(servers);
        for (int t = 0; t < k.threads; ++t) {
          runner.spawn(random_access_thread(ra, t % ncores, t));
        }
      } else if (k.workload == 1) {
        const std::uint64_t capacity =
            std::bit_ceil(std::max<std::uint64_t>(1024, buffer_bytes / 16));
        const std::uint64_t entries = capacity / 2;
        auto idx = std::make_shared<workloads::HashIndex>(space, capacity);
        co_await idx->build(entries,
                            [](std::uint64_t i) { return i * 2 + 1; });
        for (int t = 0; t < k.threads; ++t) {
          runner.spawn(hash_thread(idx, &space, data_errors, t % ncores,
                                   opt.seed * 31 + static_cast<unsigned>(t),
                                   entries, k.accesses));
        }
      } else {
        const std::uint64_t words = buffer_bytes / 8;
        core::VAddr base = co_await space.map_range(buffer_bytes);
        for (int t = 0; t < k.threads; ++t) {
          runner.spawn(shared_rw_thread(
              &space, base, words, t % ncores,
              opt.seed * 131 + static_cast<unsigned>(t), k.accesses));
        }
      }
      co_await runner.join();
      if (k.workload == 0) *data_errors += ra->errors();
      while (!*evac_done) co_await engine.delay(sim::us(10));
      *released = true;
      if (space.region() != nullptr) co_await space.region()->release_all();
      *done = true;
    };
    engine.spawn(setup_and_spawn());

    if (opt.mutation == Mutation::kShrinkSwapLimit) {
      core::MemorySpace* spc = &space;
      engine.schedule(sim::us(60), [spc] {
        if (spc->swapper() != nullptr) spc->swapper()->test_shrink_limit(1);
      });
    }

    engine.run();
    res.events = engine.events_processed();
    res.sim_time = engine.now();
    reg.check_all(engine.now(), /*at_drain=*/true);
  } catch (const std::exception& e) {
    res.violations.push_back(
        sim::InvariantViolation{"episode.exception", e.what(), 0, true});
  }
  if (*timed_out) {
    res.violations.push_back(sim::InvariantViolation{
        "episode.timeout",
        "simulated-time budget exceeded (livelock or runaway episode)", 0,
        false});
  }
  if (*data_errors != 0) {
    res.violations.push_back(sim::InvariantViolation{
        "workload.data",
        std::to_string(*data_errors) + " data verification errors", 0, true});
  }
  for (const auto& v : reg.violations()) res.violations.push_back(v);
  res.checks = reg.checks_run();
  return res;
}

// ---------------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------------

namespace {

bool still_fails(const Knobs& k, const EpisodeOptions& opt,
                 const std::string& invariant, int* runs) {
  ++*runs;
  const EpisodeResult r = run_episode(k, opt);
  for (const auto& v : r.violations) {
    if (v.name == invariant) return true;
  }
  return false;
}

}  // namespace

MinimizeResult minimize(Knobs k, const EpisodeOptions& opt,
                        const std::string& invariant) {
  MinimizeResult m{k, invariant, 0};
  const Knobs def;
  // Pass 1: greedy reset toward the default baseline, structural knobs
  // first. Each reset is kept only if the invariant still fires.
  for (const std::string& name : Knobs::knob_names()) {
    Knobs trial = m.knobs;
    if (!trial.reset(name)) continue;
    if (trial.repro_args() == m.knobs.repro_args()) continue;  // already default
    if (still_fails(trial, opt, invariant, &m.runs)) m.knobs = trial;
  }
  // Pass 2: shrink the episode — fewer threads, then shorter runs.
  while (m.knobs.threads > 1) {
    Knobs trial = m.knobs;
    trial.threads = m.knobs.threads - 1;
    if (!still_fails(trial, opt, invariant, &m.runs)) break;
    m.knobs = trial;
  }
  while (m.knobs.accesses > 16) {
    Knobs trial = m.knobs;
    trial.accesses = std::max<std::uint64_t>(16, m.knobs.accesses / 2);
    if (trial.accesses == m.knobs.accesses) break;
    if (!still_fails(trial, opt, invariant, &m.runs)) break;
    m.knobs = trial;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

namespace {

/// One seed's complete campaign step: run, report, minimize, flight-dump.
/// Pure function of (seed, options) + filesystem side effects under unique
/// per-seed file names, so seeds can run concurrently. Log output goes to
/// `log_text` for in-order streaming by the caller.
struct SeedOutcome {
  EpisodeRecord record;
  bool failing = false;
  std::string repro;
  std::string log_text;
};

SeedOutcome run_seed(std::uint64_t seed, const CampaignOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  SeedOutcome out;
  out.record.seed = seed;
  std::ostringstream log;

  sim::Rng knob_rng(seed * 0x9e3779b97f4a7c15ULL + 0xc0ffee);
  const Knobs k = Knobs::generate(knob_rng);
  const EpisodeOptions eo{seed, opt.epoch, opt.mutation, nullptr};
  const EpisodeResult r = run_episode(k, eo);
  out.record.events = r.events;
  out.record.sim_time = r.sim_time;
  out.record.checks = r.checks;
  for (const auto& v : r.violations) {
    std::ostringstream line;
    line << "[" << v.name << (v.at_drain ? " @drain" : " @epoch")
         << " t=" << v.when << "] " << v.detail;
    out.record.violations.push_back(line.str());
  }
  if (opt.verbose) {
    log << "seed " << seed << ": " << r.events << " events, " << r.checks
        << " sweeps, " << r.violations.size() << " violations\n";
  }

  if (!r.violations.empty()) {
    out.failing = true;
    const std::string args = k.repro_args();
    log << "VIOLATION seed=" << seed << " knobs: "
        << (args.empty() ? "(defaults)" : args) << "\n";
    for (const auto& line : out.record.violations) {
      log << "  " << line << "\n";
    }

    Knobs repro_knobs = k;
    if (opt.minimize) {
      const MinimizeResult m = minimize(k, eo, r.violations.front().name);
      repro_knobs = m.knobs;
      log << "  minimized in " << m.runs << " runs to "
          << repro_knobs.non_default().size() << " non-default knobs\n";
    }
    std::string repro = "memscale_fuzz repro=1 seed=" + std::to_string(seed);
    if (opt.mutation != Mutation::kNone) {
      repro += std::string(" mutation=") + mutation_name(opt.mutation);
    }
    const std::string args2 = repro_knobs.repro_args();
    if (!args2.empty()) repro += " " + args2;
    out.repro = repro;
    log << "  repro: " << repro << "\n";

    if (!opt.flight_path.empty()) {
      // Re-run the failing seed with the flight recorder attached (normal
      // episodes run tracer-free) and dump the ring next to the repro.
      sim::Tracer tracer;
      tracer.enable_flight_recorder(8192);
      EpisodeOptions fo = eo;
      fo.tracer = &tracer;
      (void)run_episode(k, fo);
      std::error_code ec;
      std::filesystem::create_directories(opt.flight_path, ec);
      const std::string file = opt.flight_path + "/violation-seed-" +
                               std::to_string(seed) + ".msflight";
      std::ofstream file_out(file, std::ios::binary);
      if (file_out) {
        tracer.export_flight(file_out);
        log << "  flight ring: " << file << "\n";
      } else {
        log << "  flight ring: cannot open " << file << "\n";
      }
    }
  }
  out.log_text = log.str();
  out.record.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  return out;
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& opt, std::ostream* log) {
  std::vector<std::uint64_t> seeds = opt.seeds;
  if (seeds.empty()) {
    for (std::uint64_t i = 0; i < opt.episodes; ++i) {
      seeds.push_back(opt.first_seed + i);
    }
  }

  // Stream each seed's log block in seed order the moment its prefix is
  // complete, so the campaign log is byte-identical for every jobs value
  // while long campaigns still show live progress.
  std::mutex print_mu;
  std::size_t next_print = 0;
  std::vector<std::string> pending(seeds.size());
  std::vector<bool> ready(seeds.size(), false);

  sim::ParallelExecutor pool(opt.jobs);
  std::vector<SeedOutcome> outcomes =
      pool.map(seeds.size(), [&](std::size_t i) -> SeedOutcome {
        SeedOutcome out = run_seed(seeds[i], opt);
        if (log != nullptr) {
          std::lock_guard<std::mutex> lk(print_mu);
          pending[i] = out.log_text;
          ready[i] = true;
          while (next_print < seeds.size() && ready[next_print]) {
            *log << pending[next_print];
            pending[next_print].clear();
            ++next_print;
          }
        }
        return out;
      });

  CampaignResult res;
  for (SeedOutcome& out : outcomes) {
    ++res.episodes_run;
    if (out.failing) {
      ++res.failing;
      res.failing_seeds.push_back(out.record.seed);
      res.repro_lines.push_back(std::move(out.repro));
    }
    res.episodes.push_back(std::move(out.record));
  }
  if (log != nullptr) {
    *log << res.episodes_run << " episodes, " << res.failing << " failing\n";
  }
  return res;
}

}  // namespace ms::fuzz
