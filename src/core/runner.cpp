#include "core/runner.hpp"

// Header-only; anchors the module in the library.
namespace ms::core {}
