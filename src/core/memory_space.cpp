#include "core/memory_space.hpp"

#include <new>
#include <stdexcept>

#include "sim/tracer.hpp"

namespace ms::core {

MemorySpace::MemorySpace(Cluster& cluster, ht::NodeId home, const Params& p)
    : cluster_(cluster),
      home_(home),
      params_(p),
      table_(4096),
      tlb_(p.tlb),
      next_va_(p.va_base),
      txn_track_("txn.n" + std::to_string(home)) {
  const bool is_swap = p.mode == Mode::kRemoteSwap ||
                       p.mode == Mode::kDiskSwap ||
                       p.mode == Mode::kCompressedSwap;

  if (p.mode == Mode::kLocal || p.mode == Mode::kRemoteRegion ||
      p.mode == Mode::kRemoteSwap) {
    region_ = cluster.make_region(home);
  }
  if (is_swap) {
    auto sp = p.swap;
    switch (p.mode) {
      case Mode::kDiskSwap:
        sp.backend = swap::SwapManager::Backend::kDisk;
        break;
      case Mode::kCompressedSwap:
        sp.backend = swap::SwapManager::Backend::kCompressed;
        break;
      default:
        sp.backend = swap::SwapManager::Backend::kRemote;
        break;
    }
    sp.page_bytes = table_.page_bytes();
    swap_ = std::make_unique<swap::SwapManager>(
        cluster.engine(), cluster.node(home), cluster.fabric(), region_.get(),
        &cluster.disk(), sp);
    swap_->set_donor_service(
        [this](ht::NodeId donor, ht::PAddr local, std::uint32_t bytes,
               bool is_write, sim::TraceContext ctx) {
          return cluster_.node(donor).serve_remote(local, bytes, is_write,
                                                   ctx);
        });
    pseudo_node_ = cluster.next_pseudo_node();
  }

  if (cluster.config().hotpath_stats) {
    // Opt-in hot-path telemetry: this space appears in the shared stats
    // dump. Sources are never unregistered, so under hotpath_stats=1 a
    // space must outlive the cluster's last export_stats call (the same
    // lifetime contract add_stats_source states).
    cluster.add_stats_source(
        [this](sim::StatRegistry& reg, const std::string& prefix) {
          sim::export_counter_nonzero(reg, prefix + "tlb.flat_probes",
                                      tlb_.flat_probes());
          sim::export_counter_nonzero(reg, prefix + "tlb.hits", tlb_.hits());
          sim::export_counter_nonzero(reg, prefix + "tlb.misses",
                                      tlb_.misses());
        });
  }
}

sim::Task<VAddr> MemorySpace::map_impl(std::uint64_t bytes, bool pin_donor,
                                       ht::NodeId donor) {
  const std::uint64_t page = table_.page_bytes();
  const std::uint64_t pages = (bytes + page - 1) / page;
  const VAddr base = next_va_;
  next_va_ += pages * page + page;  // guard page between ranges

  if (params_.mode == Mode::kLocal || params_.mode == Mode::kRemoteRegion) {
    auto placement = params_.mode == Mode::kLocal
                         ? os::RegionManager::Placement::kLocalOnly
                         : params_.placement;
    for (std::uint64_t i = 0; i < pages; ++i) {
      std::optional<ht::PAddr> frame;
      if (pin_donor) {
        frame = co_await region_->alloc_page_on(donor);
      } else {
        frame = co_await region_->alloc_page(placement);
      }
      if (!frame) throw std::bad_alloc();
      table_.map(base + i * page, *frame);
    }
    co_await cluster_.engine().delay(params_.map_page_cost * pages);
  } else {
    // Swap modes: virtual reservation only; slots materialize on fault.
    for (std::uint64_t i = 0; i < pages; ++i) {
      // Mark the page as belonging to this space (present=false until the
      // swap manager faults it in; translate() ignores such entries).
      table_.ensure(base + i * page).present = false;
    }
  }
  co_return base;
}

sim::Task<VAddr> MemorySpace::map_range(std::uint64_t bytes) {
  co_return co_await map_impl(bytes, false, ht::kNoNode);
}

sim::Task<VAddr> MemorySpace::map_range_on(std::uint64_t bytes,
                                           ht::NodeId donor) {
  if (params_.mode != Mode::kRemoteRegion && params_.mode != Mode::kLocal) {
    throw std::logic_error("map_range_on: placement control requires the "
                           "region-backed modes");
  }
  co_return co_await map_impl(bytes, true, donor);
}

ht::PAddr MemorySpace::functional_backing(VAddr page_va) const {
  if (swap_) {
    // Functional bytes for swap modes live under the pseudo-node key,
    // indexed by the virtual page (stable across migrations).
    return node::make_remote(pseudo_node_,
                             page_va & (node::kLocalSpaceBytes - 1));
  }
  auto pa = table_.translate(page_va);
  if (!pa) throw std::out_of_range("MemorySpace: access to unmapped page");
  return *pa;
}

void MemorySpace::functional_rw(VAddr va, void* data, std::uint32_t bytes,
                                bool is_write) {
  auto& store = cluster_.store();
  std::uint32_t done = 0;
  while (done < bytes) {
    const VAddr cur = va + done;
    const VAddr page_va = table_.page_base(cur);
    const std::uint64_t in_page = cur - page_va;
    const auto chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        bytes - done, table_.page_bytes() - in_page));
    ht::PAddr backing = functional_backing(page_va) + in_page;
    const ht::NodeId owner =
        node::has_prefix(backing) ? node::node_of(backing) : home_;
    const ht::PAddr local = node::local_part(backing);
    auto* bytes_ptr = static_cast<std::byte*>(data) + done;
    if (is_write) {
      store.write(owner, local, std::span<const std::byte>(bytes_ptr, chunk));
    } else {
      store.read(owner, local, std::span<std::byte>(bytes_ptr, chunk));
    }
    done += chunk;
  }
}

sim::Task<void> MemorySpace::access(ThreadCtx& t, VAddr va, void* data,
                                    std::uint32_t bytes, bool is_write) {
  (is_write ? writes_ : reads_).inc();
  if (trace_ != nullptr) {
    trace_->record(cluster_.engine().now(), t.core, va, bytes, is_write);
  }

  // Transactions are minted here — the core/workload boundary — and the
  // context rides through every layer below (node, RMC, fabric, swap). The
  // root span covers the timed chunks only; quantum realization below is
  // compute time already accounted by the workload, not memory latency.
  sim::TxnScope txn(cluster_.engine(), txn_track_,
                    is_write ? "write" : "read");

  // Migration gate: park behind any blackout covering this range, then
  // hold the page(s) in-flight so a migration cannot cut in mid-access.
  // Must precede the functional transfer — otherwise a write could land in
  // a frame the broker has already copied out of and be lost at remap.
  struct GateExit {
    PageAccessGate* gate = nullptr;
    MemorySpace* space;
    VAddr va;
    std::uint32_t bytes;
    ~GateExit() {
      if (gate != nullptr) gate->exit(*space, va, bytes);
    }
  } gate_exit{nullptr, this, va, bytes};
  if (gate_ != nullptr) {
    const sim::Time gate_since = cluster_.engine().now();
    co_await gate_->enter(*this, va, bytes);
    gate_exit.gate = gate_;
    sim::record_wait(cluster_.engine(), txn_track_, "migration.blackout",
                     gate_since, txn.ctx(), sim::Segment::kMigration);
  }

  // Functional transfer (order is unobservable within one thread).
  if (data != nullptr) functional_rw(va, data, bytes, is_write);

  constexpr std::uint64_t kLine = 64;
  std::uint32_t done = 0;
  while (done < bytes) {
    const VAddr cur = va + done;
    const std::uint64_t to_line = kLine - (cur & (kLine - 1));
    const std::uint64_t to_page =
        table_.page_bytes() - (cur & (table_.page_bytes() - 1));
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>({bytes - done, to_line, to_page}));
    ++t.accesses;
    if (swap_) {
      t.pending = co_await swap_->access(cur, chunk, is_write, t.core,
                                         t.pending, txn.ctx());
      done += chunk;
      continue;
    }
    // Synchronous translation: last-translation hint, then flat TLB, then
    // the page-table walk. The hint is revalidated by content before use;
    // touch() replays exactly the counter/LRU side effects of a TLB hit.
    sim::Time carried = t.pending;
    const VAddr page_va = table_.page_base(cur);
    os::Tlb::Slot* slot;
    if (t.lt_space == this && t.lt_slot != nullptr && t.lt_slot->valid &&
        t.lt_slot->va == page_va) {
      slot = t.lt_slot;
      tlb_.touch(*slot);
    } else {
      slot = tlb_.lookup_slot(page_va);
      if (slot == nullptr) {
        carried += tlb_.params().walk_latency;
        auto pa = table_.translate(page_va);
        if (!pa) {
          throw std::out_of_range("MemorySpace: access to unmapped page");
        }
        slot = tlb_.insert(page_va, *pa);
      }
      t.lt_space = this;
      t.lt_slot = slot;
    }
    const ht::PAddr pa = slot->frame + (cur - page_va);
    sim::Time charge = 0;
    if (params_.fastpath &&
        home_node().try_access_fast(t.core, pa, is_write, carried, &charge)) {
      // Private-cache hit: timing resolved without suspending.
      t.pending = charge;
    } else {
      t.pending = co_await home_node().access(t.core, pa, chunk, is_write,
                                              carried, txn.ctx());
    }
    done += chunk;
  }
  txn.finish();
  if (t.pending >= t.quantum) {
    const sim::Time d = t.pending;
    t.pending = 0;
    co_await cluster_.engine().delay(d);
  }
}

sim::Task<void> MemorySpace::read(ThreadCtx& t, VAddr va,
                                  std::span<std::byte> out) {
  co_await access(t, va, out.data(), static_cast<std::uint32_t>(out.size()),
                  false);
}

sim::Task<void> MemorySpace::write(ThreadCtx& t, VAddr va,
                                   std::span<const std::byte> in) {
  co_await access(t, va, const_cast<std::byte*>(in.data()),
                  static_cast<std::uint32_t>(in.size()), true);
}

sim::Task<std::uint64_t> MemorySpace::read_u64(ThreadCtx& t, VAddr va) {
  co_return co_await read_pod<std::uint64_t>(t, va);
}

sim::Task<void> MemorySpace::write_u64(ThreadCtx& t, VAddr va,
                                       std::uint64_t v) {
  co_await write_pod(t, va, v);
}

void MemorySpace::poke(VAddr va, std::span<const std::byte> in) {
  functional_rw(va, const_cast<std::byte*>(in.data()),
                static_cast<std::uint32_t>(in.size()), true);
  if (swap_) {
    // Setup data participates in swap state: it is backed, and the most
    // recently written pages are the ones a real build leaves resident.
    const std::uint64_t page = table_.page_bytes();
    for (VAddr p = table_.page_base(va); p < va + in.size(); p += page) {
      swap_->note_poke(p);
    }
  }
}

void MemorySpace::peek(VAddr va, std::span<std::byte> out) {
  functional_rw(va, out.data(), static_cast<std::uint32_t>(out.size()), false);
}

sim::Task<void> MemorySpace::sync(ThreadCtx& t) {
  if (t.pending > 0) {
    const sim::Time d = t.pending;
    t.pending = 0;
    co_await cluster_.engine().delay(d);
  }
}

sim::Task<void> MemorySpace::flush_cache(int core) {
  co_await home_node().flush_core_cache(core);
}

sim::Task<ht::PAddr> MemorySpace::backing_of(VAddr va) {
  if (swap_) co_return co_await swap_->slot_of(table_.page_base(va));
  auto pa = table_.translate(va);
  if (!pa) throw std::out_of_range("MemorySpace: unmapped address");
  co_return *pa;
}

}  // namespace ms::core
