#include "core/remote_allocator.hpp"

#include <bit>
#include <stdexcept>

namespace ms::core {

RemoteAllocator::RemoteAllocator(MemorySpace& space)
    : RemoteAllocator(space, Params{}) {}

RemoteAllocator::RemoteAllocator(MemorySpace& space, const Params& p)
    : space_(space), params_(p) {
  if (!std::has_single_bit(p.min_class)) {
    throw std::invalid_argument("RemoteAllocator: min_class must be 2^k");
  }
}

std::uint64_t RemoteAllocator::class_of(std::uint64_t bytes,
                                        std::uint64_t min_class) {
  return std::bit_ceil(std::max(bytes, min_class));
}

sim::Task<VAddr> RemoteAllocator::take_from_arena(Arena& arena,
                                                  std::uint64_t bytes,
                                                  ht::NodeId donor) {
  if (arena.next + bytes > arena.end) {
    const std::uint64_t chunk = std::max(params_.arena_bytes, bytes);
    VAddr base = donor == ht::kNoNode
                     ? co_await space_.map_range(chunk)
                     : co_await space_.map_range_on(chunk, donor);
    arena.next = base;
    arena.end = base + chunk;
  }
  VAddr ptr = arena.next;
  arena.next += bytes;
  co_return ptr;
}

sim::Task<VAddr> RemoteAllocator::gmalloc(std::uint64_t bytes) {
  if (bytes == 0) co_return kNull;
  const std::uint64_t cls = class_of(bytes, params_.min_class);

  auto fl = free_lists_.find(cls);
  VAddr ptr;
  if (fl != free_lists_.end() && !fl->second.empty()) {
    ptr = fl->second.back();
    fl->second.pop_back();
  } else {
    ptr = co_await take_from_arena(shared_arena_, cls, ht::kNoNode);
  }
  allocations_[ptr] = cls;
  ++live_;
  allocated_bytes_ += cls;
  co_return ptr;
}

sim::Task<VAddr> RemoteAllocator::gmalloc_on(std::uint64_t bytes,
                                             ht::NodeId donor) {
  if (bytes == 0) co_return kNull;
  const std::uint64_t cls = class_of(bytes, params_.min_class);
  VAddr ptr = co_await take_from_arena(pinned_arenas_[donor], cls, donor);
  allocations_[ptr] = cls;
  ++live_;
  allocated_bytes_ += cls;
  co_return ptr;
}

void RemoteAllocator::gfree(VAddr ptr) {
  if (ptr == kNull) return;
  auto it = allocations_.find(ptr);
  if (it == allocations_.end()) {
    throw std::logic_error("RemoteAllocator::gfree: unknown pointer");
  }
  free_lists_[it->second].push_back(ptr);
  allocated_bytes_ -= it->second;
  allocations_.erase(it);
  --live_;
}

}  // namespace ms::core
