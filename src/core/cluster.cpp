#include "core/cluster.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/frame_pool.hpp"

namespace ms::core {

ClusterConfig ClusterConfig::from(const sim::Config& cfg) {
  ClusterConfig c;
  c.nodes = static_cast<int>(cfg.get_int("nodes", c.nodes));
  c.topology = cfg.get_str("topology", c.topology);
  c.os_reserved_bytes = cfg.get_u64("os_reserved", c.os_reserved_bytes);

  c.node.sockets = static_cast<int>(cfg.get_int("node.sockets", c.node.sockets));
  c.node.cores_per_socket =
      static_cast<int>(cfg.get_int("node.cores_per_socket", c.node.cores_per_socket));
  c.node.local_bytes = cfg.get_u64("node.local_bytes", c.node.local_bytes);
  c.node.cache.size_bytes = cfg.get_u64("node.cache_bytes", c.node.cache.size_bytes);
  c.node.cache_remote = cfg.get_bool("node.cache_remote", c.node.cache_remote);
  c.node.core_remote_outstanding = static_cast<int>(
      cfg.get_int("rmc.outstanding", c.node.core_remote_outstanding));
  c.node.prefetch.degree =
      static_cast<int>(cfg.get_int("rmc.prefetch_degree", c.node.prefetch.degree));

  c.rmc.process_latency = sim::ns(
      cfg.get_u64("rmc.process_ns", c.rmc.process_latency / 1000));
  c.rmc.per_waiter_turnaround = sim::ns(
      cfg.get_u64("rmc.turnaround_ns", c.rmc.per_waiter_turnaround / 1000));

  c.fabric.link.bytes_per_ns =
      cfg.get_double("link.bytes_per_ns", c.fabric.link.bytes_per_ns);
  c.fabric.link.propagation = sim::ns(
      cfg.get_u64("link.propagation_ns", c.fabric.link.propagation / 1000));
  c.fabric.router_delay = sim::ns(
      cfg.get_u64("link.router_ns", c.fabric.router_delay / 1000));
  c.fabric.virtual_channels = static_cast<int>(
      cfg.get_int("link.vcs", c.fabric.virtual_channels));
  c.fabric.migration_vc = static_cast<int>(
      cfg.get_int("link.migration_vc", c.fabric.migration_vc));

  c.region.segment_bytes = cfg.get_u64("region.segment", c.region.segment_bytes);
  c.region.policy =
      os::ClusterDirectory::parse_policy(cfg.get_str("region.policy", "nearest"));
  c.coh_profile = cfg.get_bool("coh_profile", c.coh_profile);
  c.hotpath_stats = cfg.get_bool("hotpath_stats", c.hotpath_stats);
  return c;
}

std::string ClusterConfig::summary() const {
  std::ostringstream out;
  out << nodes << " nodes (" << topology << "), " << node.sockets << "x"
      << node.cores_per_socket << " cores, "
      << (node.local_bytes >> 30) << " GiB/node ("
      << (os_reserved_bytes >> 30) << " GiB OS-reserved), cache "
      << (node.cache.size_bytes >> 10) << " KiB/core, RMC "
      << sim::to_ns(rmc.process_latency) << " ns/msg, outstanding="
      << node.core_remote_outstanding << ", prefetch="
      << node.prefetch.degree;
  return out.str();
}

Cluster::Cluster(sim::Engine& engine, const ClusterConfig& cfg)
    : engine_(engine),
      cfg_(cfg),
      frames_pooled_base_(sim::FramePool::frames_pooled()),
      frames_heap_base_(sim::FramePool::frames_heap()) {
  if (cfg.nodes < 1 || cfg.nodes > node::kMaxNodeId) {
    throw std::invalid_argument("Cluster: node count out of range");
  }

  fabric_ = std::make_unique<noc::Fabric>(
      engine, noc::Topology::make(cfg.topology, cfg.nodes), cfg.fabric);
  reservation_ = std::make_unique<os::ReservationService>(engine, *fabric_,
                                                          cfg.reservation);
  disk_ = std::make_unique<swap::DiskModel>(engine, cfg.disk);

  sharing_.enable(cfg.coh_profile);
  const int cores_per_node = cfg.node.sockets * cfg.node.cores_per_socket;
  for (int i = 0; i < cfg.nodes; ++i) {
    const auto id = static_cast<ht::NodeId>(i + 1);
    nodes_.push_back(std::make_unique<node::Node>(engine, id, cfg.node));
    rmcs_.push_back(std::make_unique<rmc::Rmc>(engine, id, *fabric_, cfg.rmc));
    rmcs_.back()->set_hot_pages(&hot_pages_);
    nodes_.back()->attach_rmc(rmcs_.back().get());
    // Sharing profiler: each node's directory and caches report in the
    // intra domain with globally unique requester ids (node_index * cores
    // + core). Cheap when disabled, so wire unconditionally.
    const int base = i * cores_per_node;
    nodes_.back()->directory().set_profiler(&sharing_, base);
    for (int c = 0; c < cores_per_node; ++c) {
      nodes_.back()->core(c).cache().set_profiler(&sharing_, base + c);
    }
    allocators_.push_back(std::make_unique<os::FrameAllocator>(
        ht::PAddr{0}, cfg.node.local_bytes));
    // The OS boots with a private share that is never donated (the
    // prototype boots each OS with 8 of its 16 GiB).
    if (cfg.os_reserved_bytes > 0) {
      auto boot = allocators_.back()->allocate(cfg.os_reserved_bytes,
                                               /*pinned=*/true);
      if (!boot) throw std::logic_error("Cluster: OS reservation failed");
    }
    reservation_->register_node(id, allocators_.back().get());
    directory_.register_node(id, allocators_.back().get());
  }

  // Peer lookup for RMC-to-RMC forwarding.
  for (auto& r : rmcs_) {
    r->set_peer_lookup([this](ht::NodeId id) -> rmc::Rmc* {
      if (id < 1 || id > rmcs_.size()) return nullptr;
      return rmcs_[id - 1].get();
    });
  }
}

os::ClusterDirectory::HopsFn Cluster::hops_fn() {
  return [this](ht::NodeId a, ht::NodeId b) { return fabric_->hops(a, b); };
}

std::unique_ptr<os::RegionManager> Cluster::make_region(ht::NodeId home) {
  return std::make_unique<os::RegionManager>(
      engine_, home, allocator(home), *reservation_, directory_, hops_fn(),
      cfg_.region);
}

std::string Cluster::report() const {
  std::ostringstream out;
  out << "cluster: " << cfg_.summary() << "\n";
  out << "fabric: " << fabric_->packets_delivered() << " packets delivered";
  if (fabric_->traversal_latency().count() > 0) {
    out << ", mean traversal "
        << sim::format_time(static_cast<sim::Time>(
               fabric_->traversal_latency().mean()));
  }
  out << "\n";
  out << "reservations: " << reservation_->grants() << " grants, "
      << reservation_->denials() << " denials\n";
  for (int i = 0; i < cfg_.nodes; ++i) {
    const auto& n = *nodes_[i];
    const auto& r = *rmcs_[i];
    std::uint64_t mc_reads = 0, mc_writes = 0;
    for (int s = 0; s < cfg_.node.sockets; ++s) {
      mc_reads += nodes_[i]->mc(s).reads();
      mc_writes += nodes_[i]->mc(s).writes();
    }
    std::uint64_t hits = 0, misses = 0;
    for (int c = 0; c < n.num_cores(); ++c) {
      hits += nodes_[i]->core(c).cache().hits();
      misses += nodes_[i]->core(c).cache().misses();
    }
    if (mc_reads + mc_writes + r.client_requests() + r.served_requests() +
            hits + misses ==
        0) {
      continue;  // idle node
    }
    out << "node " << (i + 1) << ": mc r/w " << mc_reads << "/" << mc_writes
        << ", cache h/m " << hits << "/" << misses << ", rmc out/served/loop "
        << r.client_requests() << "/" << r.served_requests() << "/"
        << r.loopbacks() << ", probes " << n.directory().probes() << "\n";
  }
  return out.str();
}

void Cluster::export_stats(sim::StatRegistry& reg,
                           const std::string& prefix) const {
  fabric_->export_stats(reg, prefix + "noc.");
  reg.counter(prefix + "reservation.grants").inc(reservation_->grants());
  reg.counter(prefix + "reservation.denials").inc(reservation_->denials());
  for (int i = 0; i < cfg_.nodes; ++i) {
    const auto& n = *nodes_[i];
    const auto& r = *rmcs_[i];
    const std::string node_p =
        prefix + "node." + std::to_string(i + 1) + ".";
    const std::string rmc_p = prefix + "rmc." + std::to_string(i + 1) + ".";

    std::uint64_t hits = 0, misses = 0, writebacks = 0;
    for (int c = 0; c < n.num_cores(); ++c) {
      hits += nodes_[i]->core(c).cache().hits();
      misses += nodes_[i]->core(c).cache().misses();
      writebacks += nodes_[i]->core(c).cache().writebacks();
    }
    std::uint64_t mc_reads = 0, mc_writes = 0;
    for (int s = 0; s < cfg_.node.sockets; ++s) {
      mc_reads += nodes_[i]->mc(s).reads();
      mc_writes += nodes_[i]->mc(s).writes();
    }
    const bool idle = mc_reads + mc_writes + r.client_requests() +
                          r.served_requests() + hits + misses ==
                      0;
    if (idle) continue;

    reg.counter(node_p + "cache_hits").inc(hits);
    reg.counter(node_p + "cache_misses").inc(misses);
    reg.counter(node_p + "cache_writebacks").inc(writebacks);
    reg.counter(node_p + "mc_reads").inc(mc_reads);
    reg.counter(node_p + "mc_writes").inc(mc_writes);
    reg.counter(node_p + "local_accesses").inc(n.local_accesses());
    reg.counter(node_p + "remote_accesses").inc(n.remote_accesses());
    if (cfg_.hotpath_stats) {
      // Hot-path telemetry is opt-in (and nonzero-only) so default stats
      // dumps stay byte-identical to pre-fast-path goldens.
      sim::export_counter_nonzero(reg, node_p + "fastpath_hits",
                                  n.fastpath_hits());
      sim::export_counter_nonzero(reg, node_p + "slowpath_accesses",
                                  n.slowpath_accesses());
    }
    reg.counter(node_p + "coherence_probes").inc(n.directory().probes());
    for (int s = 0; s < cfg_.node.sockets; ++s) {
      const auto& mc = nodes_[i]->mc(s);
      if (mc.reads() + mc.writes() == 0) continue;
      reg.sampler(node_p + "mc" + std::to_string(s) + ".latency_ps") =
          mc.latency();
    }

    reg.counter(rmc_p + "client_requests").inc(r.client_requests());
    reg.counter(rmc_p + "served_requests").inc(r.served_requests());
    reg.counter(rmc_p + "loopbacks").inc(r.loopbacks());
    reg.counter(rmc_p + "turnarounds").inc(r.turnarounds());
    // Watchdog is off by default; nonzero-only (ARCHITECTURE.md, stats
    // export convention).
    sim::export_counter_nonzero(reg, rmc_p + "request_timeouts",
                                r.request_timeouts());
    if (r.round_trip().count() > 0) {
      reg.sampler(rmc_p + "round_trip_ps") = r.round_trip();
      reg.sampler(rmc_p + "port_wait_ps") = r.port_wait();
    }
  }
  sharing_.export_stats(reg, prefix + "coh.");
  if (cfg_.hotpath_stats) {
    // Frame-pool counters are thread-local; the delta since construction
    // is this cluster's own engine activity (one engine per host thread —
    // the ParallelExecutor instance-safety contract).
    sim::export_counter_nonzero(
        reg, prefix + "engine.frames_pooled",
        sim::FramePool::frames_pooled() - frames_pooled_base_);
    sim::export_counter_nonzero(
        reg, prefix + "engine.frames_heap",
        sim::FramePool::frames_heap() - frames_heap_base_);
  }
  for (const auto& source : extra_stats_) source(reg, prefix);
}

sim::TimeSeriesPoint Cluster::sample_timeseries(sim::Time now,
                                                int top_k) const {
  sim::TimeSeriesPoint pt;
  pt.t = now;
  fabric_->sample_timeseries(pt.values, "noc.");
  for (int i = 0; i < cfg_.nodes; ++i) {
    const auto& r = *rmcs_[i];
    if (r.client_requests() + r.served_requests() == 0) continue;
    const std::string rmc_p = "rmc." + std::to_string(i + 1) + ".";
    pt.values.emplace_back(rmc_p + "outstanding",
                           static_cast<double>(r.outstanding()));
    pt.values.emplace_back(rmc_p + "port_waiters",
                           static_cast<double>(r.port_waiters()));
    pt.values.emplace_back(rmc_p + "client_requests",
                           static_cast<double>(r.client_requests()));
    pt.values.emplace_back(rmc_p + "served_requests",
                           static_cast<double>(r.served_requests()));
  }
  for (int i = 0; i < cfg_.nodes; ++i) {
    for (int s = 0; s < cfg_.node.sockets; ++s) {
      const auto& mc = nodes_[i]->mc(s);
      if (mc.reads() + mc.writes() == 0) continue;
      const std::string mc_p = "node." + std::to_string(i + 1) + ".mc" +
                               std::to_string(s) + ".";
      pt.values.emplace_back(mc_p + "port_waiters",
                             static_cast<double>(mc.port_waiters()));
      pt.values.emplace_back(mc_p + "accesses",
                             static_cast<double>(mc.reads() + mc.writes()));
    }
  }
  if (sharing_.enabled()) {
    // Cumulative coherence-event counts per domain; a point-to-point delta
    // in the stream shows when the protocol traffic happened.
    const auto intra = sharing_.events(sim::CohDomain::kIntra);
    const auto inter = sharing_.events(sim::CohDomain::kInter);
    if (intra + inter > 0) {
      pt.values.emplace_back("coh.intra.events", static_cast<double>(intra));
      pt.values.emplace_back("coh.inter.events", static_cast<double>(inter));
      pt.values.emplace_back(
          "coh.false_sharing",
          static_cast<double>(sharing_.false_sharing_invalidations()));
    }
  }
  std::sort(pt.values.begin(), pt.values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (hot_pages_.enabled() && top_k > 0) {
    pt.hot_pages = hot_pages_.top(static_cast<std::size_t>(top_k));
  }
  return pt;
}

std::uint64_t Cluster::total_intra_node_probes() const {
  std::uint64_t sum = 0;
  for (const auto& n : nodes_) sum += n->directory().probes();
  return sum;
}

}  // namespace ms::core
