#pragma once

#include <memory>
#include <span>

#include "core/cluster.hpp"
#include "os/page_table.hpp"
#include "os/tlb.hpp"
#include "sim/trace.hpp"
#include "swap/swap_manager.hpp"

namespace ms::core {

using os::VAddr;

/// Execution context of one simulated application thread.
///
/// `pending` accumulates compute time and cache-hit latencies so the hot
/// path stays off the event queue; it is realized as simulated delay
/// whenever the thread blocks (miss, fault) or crosses `quantum`. Workloads
/// charge their arithmetic through compute().
struct ThreadCtx {
  int core = 0;
  sim::Time pending = 0;
  sim::Time quantum = sim::us(1);
  std::uint64_t accesses = 0;

  /// Last-translation hint: the TLB slot that resolved this thread's
  /// previous access, keyed by the owning space. Purely an acceleration —
  /// it is revalidated by content (same space, slot valid, same page)
  /// before every use, so TLB evictions, flushes and migration remaps can
  /// only make it useless, never wrong. A ThreadCtx must not outlive the
  /// last MemorySpace it accessed.
  const void* lt_space = nullptr;
  os::Tlb::Slot* lt_slot = nullptr;

  void compute(sim::Time t) { pending += t; }
};

class MemorySpace;

/// Hook the memory broker's migration engine installs on a space. Every
/// timed access brackets itself with enter()/exit() so a live page
/// migration can (a) park accesses that land on a page mid-blackout and
/// (b) wait for in-flight accesses to drain before remapping. enter() runs
/// *before* the functional byte transfer — bytes must never land in a
/// frame the migration has already copied out of.
class PageAccessGate {
 public:
  virtual ~PageAccessGate() = default;
  /// May suspend (blackout window); on resume the access proceeds against
  /// the space's updated page table. The range may span pages.
  virtual sim::Task<void> enter(MemorySpace& space, VAddr va,
                                std::uint32_t bytes) = 0;
  /// Synchronous; called when the access (functional transfer plus all
  /// timed chunks) has finished, including on exception unwind.
  virtual void exit(MemorySpace& space, VAddr va, std::uint32_t bytes) = 0;
};

/// A process's view of memory — the library's central abstraction.
///
/// One MemorySpace is one process confined to one node's cores (the
/// paper's model: threads never span nodes). The mode selects how the
/// space is backed:
///   kLocal        only node-local frames (the "128 GiB in one box" ideal);
///   kRemoteRegion the paper's architecture: the region grows over donated
///                 segments, loads/stores reach them through the RMC;
///   kRemoteSwap   page-fault-driven remote swapping (the comparator);
///   kDiskSwap     classic disk swapping;
///   kCompressedSwap  zram-style compressed local pool (related work
///                 [12][13]: trade CPU cycles for capacity).
///
/// Accesses are split on cache-line and page boundaries, each chunk paying
/// its timing path while the real bytes are kept in the cluster's backing
/// store at the *physical* home of the data — the address-prefix
/// arithmetic is exercised end to end, and tests verify a value written on
/// the compute node is sitting in the donor's frames.
class MemorySpace {
 public:
  enum class Mode { kLocal, kRemoteRegion, kRemoteSwap, kDiskSwap, kCompressedSwap };

  struct Params {
    Mode mode = Mode::kRemoteRegion;
    os::RegionManager::Placement placement =
        os::RegionManager::Placement::kAuto;
    os::Tlb::Params tlb;
    swap::SwapManager::Params swap;  ///< used by the swap modes
    VAddr va_base = VAddr{1} << 20;
    sim::Time map_page_cost = sim::ns(250);  ///< OS work per eagerly mapped page
    /// Take the synchronous cache-hit fast path (Node::try_access_fast)
    /// when possible. Timing-equivalent to the coroutine path by contract;
    /// the knob exists so the equivalence suite can diff the two.
    bool fastpath = true;
  };

  MemorySpace(Cluster& cluster, ht::NodeId home, const Params& p);
  MemorySpace(const MemorySpace&) = delete;
  MemorySpace& operator=(const MemorySpace&) = delete;

  /// Reserves `bytes` of virtual space and (for kLocal/kRemoteRegion)
  /// eagerly backs every page per the placement policy — the paper's
  /// reservation-at-malloc model. Throws std::bad_alloc on exhaustion.
  sim::Task<VAddr> map_range(std::uint64_t bytes);

  /// Same, but pins the physical placement to one donor node (benches use
  /// this to control server distance). kRemoteRegion mode only.
  sim::Task<VAddr> map_range_on(std::uint64_t bytes, ht::NodeId donor);

  /// Timed accesses (function + timing).
  sim::Task<void> read(ThreadCtx& t, VAddr va, std::span<std::byte> out);
  sim::Task<void> write(ThreadCtx& t, VAddr va,
                        std::span<const std::byte> in);

  sim::Task<std::uint64_t> read_u64(ThreadCtx& t, VAddr va);
  sim::Task<void> write_u64(ThreadCtx& t, VAddr va, std::uint64_t v);

  template <typename T>
  sim::Task<T> read_pod(ThreadCtx& t, VAddr va) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    co_await read(t, va, std::as_writable_bytes(std::span(&value, 1)));
    co_return value;
  }

  template <typename T>
  sim::Task<void> write_pod(ThreadCtx& t, VAddr va, const T& value) {
    co_await write(t, va, std::as_bytes(std::span(&value, 1)));
  }

  /// Untimed functional access for workload setup (poke) and verification
  /// (peek); does not advance simulated time or touch caches.
  void poke(VAddr va, std::span<const std::byte> in);
  void peek(VAddr va, std::span<std::byte> out);
  template <typename T>
  void poke_pod(VAddr va, const T& v) {
    poke(va, std::as_bytes(std::span(&v, 1)));
  }
  template <typename T>
  T peek_pod(VAddr va) {
    T v{};
    peek(va, std::as_writable_bytes(std::span(&v, 1)));
    return v;
  }

  /// Realizes the thread's accumulated compute time as simulated delay.
  sim::Task<void> sync(ThreadCtx& t);

  /// Write-back + invalidate of one core's cache (the prototype's explicit
  /// flush between a write phase and a parallel read-only phase).
  sim::Task<void> flush_cache(int core);

  Mode mode() const { return params_.mode; }
  ht::NodeId home() const { return home_; }
  node::Node& home_node() { return cluster_.node(home_); }
  os::RegionManager* region() { return region_.get(); }
  swap::SwapManager* swapper() { return swap_.get(); }
  os::Tlb& tlb() { return tlb_; }
  const os::PageTable& page_table() const { return table_; }
  std::uint64_t timed_reads() const { return reads_.value(); }
  std::uint64_t timed_writes() const { return writes_.value(); }

  /// Physical location currently backing `va` (for tests/inspection).
  /// For swap modes this is the backend slot.
  sim::Task<ht::PAddr> backing_of(VAddr va);

  /// Attaches an access trace; every timed access is recorded until the
  /// trace is detached (nullptr). Not owned.
  void set_trace(sim::AccessTrace* trace) { trace_ = trace; }

  /// Installs (or clears, with nullptr) the migration gate. Not owned; the
  /// gate must outlive every access issued while it is installed.
  void set_migration_gate(PageAccessGate* gate) { gate_ = gate; }
  PageAccessGate* migration_gate() const { return gate_; }

  /// Atomically (in simulated time: no suspension) retargets one mapped
  /// page to a new physical frame and drops the stale TLB entry. The
  /// migration engine calls this inside the blackout window, after the
  /// frame contents have been copied.
  void remap_page(VAddr page_va, ht::PAddr new_frame) {
    table_.map(page_va, new_frame);
    tlb_.invalidate(page_va);
  }

 private:
  /// Full access: functional bytes + timing, chunked. Translation (last-
  /// translation hint, flat TLB, page-table walk) runs synchronously
  /// inline; each chunk then either resolves through the node's
  /// non-suspending fast path (cache hit) or awaits the coroutine path.
  sim::Task<void> access(ThreadCtx& t, VAddr va, void* data,
                         std::uint32_t bytes, bool is_write);

  /// Functional location of one byte range (must not cross pages).
  std::pair<ht::NodeId, ht::PAddr> functional_home(VAddr page_va,
                                                   ht::PAddr backing) const;
  void functional_rw(VAddr va, void* data, std::uint32_t bytes, bool is_write);
  ht::PAddr functional_backing(VAddr page_va) const;

  sim::Task<VAddr> map_impl(std::uint64_t bytes, bool pin_donor,
                            ht::NodeId donor);

  Cluster& cluster_;
  ht::NodeId home_;
  Params params_;
  os::PageTable table_;
  os::Tlb tlb_;
  std::unique_ptr<os::RegionManager> region_;
  std::unique_ptr<swap::SwapManager> swap_;
  VAddr next_va_;
  ht::NodeId pseudo_node_ = ht::kNoNode;  ///< functional key for swap modes
  std::string txn_track_;  ///< tracer track for minted transactions
  sim::AccessTrace* trace_ = nullptr;
  PageAccessGate* gate_ = nullptr;
  sim::Counter reads_;
  sim::Counter writes_;
};

}  // namespace ms::core
