#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/memory_space.hpp"

namespace ms::core {

/// The interposed allocator (paper Sec. IV-B): applications call malloc and
/// free as usual; the library places the allocation in the process's memory
/// region — which may be borrowed memory several nodes away — and hands
/// back an ordinary pointer. Loads and stores on it are plain memory
/// instructions; no software runs on the access path.
///
/// Segregated size-class free lists over bump-allocated arenas mapped from
/// the MemorySpace. Metadata lives host-side, exactly like an interposing
/// library keeping its own allocation table.
class RemoteAllocator {
 public:
  struct Params {
    std::uint64_t arena_bytes = std::uint64_t{64} << 20;
    std::uint64_t min_class = 32;  ///< smallest size class, power of two
  };

  explicit RemoteAllocator(MemorySpace& space);
  RemoteAllocator(MemorySpace& space, const Params& p);
  RemoteAllocator(const RemoteAllocator&) = delete;
  RemoteAllocator& operator=(const RemoteAllocator&) = delete;

  /// malloc replacement. Throws std::bad_alloc when the cluster is out of
  /// memory under the space's placement policy.
  sim::Task<VAddr> gmalloc(std::uint64_t bytes);

  /// malloc pinned to a specific donor node (benches controlling distance).
  sim::Task<VAddr> gmalloc_on(std::uint64_t bytes, ht::NodeId donor);

  /// free replacement; tolerant of kNull, strict about unknown pointers.
  void gfree(VAddr ptr);

  static constexpr VAddr kNull = 0;

  std::uint64_t live_allocations() const {
    return static_cast<std::uint64_t>(live_);
  }
  std::uint64_t allocated_bytes() const { return allocated_bytes_; }
  MemorySpace& space() { return space_; }

 private:
  struct Arena {
    VAddr next = 0;
    VAddr end = 0;
  };

  static std::uint64_t class_of(std::uint64_t bytes, std::uint64_t min_class);
  sim::Task<VAddr> take_from_arena(Arena& arena, std::uint64_t bytes,
                                   ht::NodeId donor);

  MemorySpace& space_;
  Params params_;
  Arena shared_arena_;
  std::map<ht::NodeId, Arena> pinned_arenas_;
  std::map<std::uint64_t, std::vector<VAddr>> free_lists_;  // class -> ptrs
  std::map<VAddr, std::uint64_t> allocations_;              // ptr -> class
  std::int64_t live_ = 0;
  std::uint64_t allocated_bytes_ = 0;
};

}  // namespace ms::core
