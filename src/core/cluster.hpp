#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/backing_store.hpp"
#include "noc/fabric.hpp"
#include "node/node.hpp"
#include "os/cluster_directory.hpp"
#include "os/frame_allocator.hpp"
#include "os/region_manager.hpp"
#include "os/reservation.hpp"
#include "rmc/rmc.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/sharing_profiler.hpp"
#include "sim/timeseries.hpp"
#include "swap/disk_model.hpp"

namespace ms::core {

/// Every tunable of the simulated machine, defaulting to the paper's
/// prototype: 16 nodes of 4 quad-core 2.1 GHz Opterons with 16 GiB DDR2
/// each (8 GiB booted for the OS, 8 GiB donated to the 128 GiB pool), HTX
/// FPGA RMCs, a 4x4 2D mesh.
struct ClusterConfig {
  int nodes = 16;
  std::string topology = "mesh2d";
  ht::PAddr os_reserved_bytes = ht::PAddr{8} << 30;
  node::Node::Params node;
  rmc::Rmc::Params rmc;
  noc::Fabric::Params fabric;
  os::ReservationService::Params reservation;
  os::RegionManager::Params region;
  swap::DiskModel::Params disk;
  /// Enables the sharing/coherence-tax profiler (stats under "coh.").
  /// Default off: with it off, stats output stays byte-identical to builds
  /// without the profiler.
  bool coh_profile = false;

  /// Exports the memory-op hot-path telemetry (node.N.fastpath_hits /
  /// slowpath_accesses, engine.frames_pooled / frames_heap, and each
  /// space's tlb.flat_probes), nonzero-only. Default off so committed
  /// stats goldens stay byte-identical; the counters themselves are always
  /// maintained. Key: `hotpath_stats=1`.
  bool hotpath_stats = false;

  /// Applies "key=value" overrides (nodes=4, topology=ring,
  /// rmc.outstanding=8, node.cache_kb=512, ...); see the implementation
  /// for the full key list.
  static ClusterConfig from(const sim::Config& cfg);

  std::string summary() const;
};

/// The assembled machine: nodes, RMCs, fabric, backing store and the
/// cluster-wide OS services. This is the root object benches and examples
/// construct; processes then get a MemorySpace on one of the nodes.
class Cluster {
 public:
  Cluster(sim::Engine& engine, const ClusterConfig& cfg);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }
  const ClusterConfig& config() const { return cfg_; }
  int num_nodes() const { return cfg_.nodes; }

  node::Node& node(ht::NodeId id) { return *nodes_[id - 1]; }
  rmc::Rmc& rmc(ht::NodeId id) { return *rmcs_[id - 1]; }
  os::FrameAllocator& allocator(ht::NodeId id) { return *allocators_[id - 1]; }
  noc::Fabric& fabric() { return *fabric_; }
  mem::BackingStore& store() { return store_; }
  os::ReservationService& reservation() { return *reservation_; }
  os::ClusterDirectory& directory() { return directory_; }
  swap::DiskModel& disk() { return *disk_; }

  /// Hop distance function, suitable for donor policies.
  os::ClusterDirectory::HopsFn hops_fn();

  /// Allocates a pseudo BackingStore node id for swap-mode functional
  /// data: swap slots are timing entities, so each swap-backed space files
  /// its real bytes under a key no fabric node uses. Counts down from
  /// node::kMaxNodeId, distinct per space within this cluster. Deliberately
  /// per-instance state (never a global static) so concurrent simulations
  /// stay independent — the §10 instance-safety contract.
  ht::NodeId next_pseudo_node() {
    return static_cast<ht::NodeId>(node::kMaxNodeId - ++pseudo_nodes_);
  }

  /// Builds a region manager for a process homed on `home`.
  std::unique_ptr<os::RegionManager> make_region(ht::NodeId home);

  /// Sum of coherence probes across all node-internal directories (the
  /// paper's headline metric: this must not grow with borrowed memory).
  std::uint64_t total_intra_node_probes() const;

  /// Human-readable machine-wide statistics dump (per-node RMC, memory
  /// controller and cache counters, fabric and OS-service totals). Nodes
  /// that saw no traffic are skipped.
  std::string report() const;

  /// Snapshots every component's counters and latency distributions into
  /// `reg` under `prefix`, for StatRegistry::dump_json. Names are stable
  /// ("rmc.1.round_trip_ps", "node.2.cache_misses", ...) so bench output
  /// can be diffed across runs; idle nodes are skipped like in report().
  void export_stats(sim::StatRegistry& reg,
                    const std::string& prefix = "") const;

  /// Registers an additional stats source invoked at the end of every
  /// export_stats() call with the same registry and prefix. Optional
  /// subsystems (e.g. the memory broker) use this to appear in the shared
  /// dump without the cluster knowing about them; the source must outlive
  /// the last export call and should follow the nonzero-only convention so
  /// configurations that never exercise it keep byte-identical output.
  void add_stats_source(
      std::function<void(sim::StatRegistry&, const std::string&)> source) {
    extra_stats_.push_back(std::move(source));
  }

  /// Per-4KiB-page access profile seen by every RMC (serve + loopback
  /// paths). Disabled by default; benches enable it for hot-page reports
  /// and time-series streams.
  sim::HotPageProfiler& hot_pages() { return hot_pages_; }
  const sim::HotPageProfiler& hot_pages() const { return hot_pages_; }

  /// Protocol-event/sharing profiler fed by every node's coherence
  /// directory and core cache (intra domain; requester id = global core
  /// index). Enabled by the `coh_profile=1` config key; kernels wire their
  /// DSM ablation instances into it for the inter domain. Exported under
  /// "coh." by export_stats when enabled.
  sim::SharingProfiler& sharing() { return sharing_; }
  const sim::SharingProfiler& sharing() const { return sharing_; }

  /// One periodic snapshot of the machine: fabric counters, per-RMC
  /// occupancy/queue depth, per-node memory-controller port queues —
  /// components that saw no traffic are skipped — plus the top-`top_k`
  /// hottest pages when the profiler is enabled. Keys are sorted so the
  /// JSON stream is deterministic.
  sim::TimeSeriesPoint sample_timeseries(sim::Time now, int top_k = 8) const;

 private:
  sim::Engine& engine_;
  ClusterConfig cfg_;
  mem::BackingStore store_;
  std::unique_ptr<noc::Fabric> fabric_;
  std::vector<std::unique_ptr<node::Node>> nodes_;
  std::vector<std::unique_ptr<rmc::Rmc>> rmcs_;
  std::vector<std::unique_ptr<os::FrameAllocator>> allocators_;
  std::unique_ptr<os::ReservationService> reservation_;
  os::ClusterDirectory directory_;
  std::unique_ptr<swap::DiskModel> disk_;
  std::vector<std::function<void(sim::StatRegistry&, const std::string&)>>
      extra_stats_;
  sim::HotPageProfiler hot_pages_;
  sim::SharingProfiler sharing_;
  std::uint64_t frames_pooled_base_ = 0;  ///< FramePool counts at ctor time
  std::uint64_t frames_heap_base_ = 0;
  std::uint16_t pseudo_nodes_ = 0;  ///< pseudo node ids handed out so far
};

}  // namespace ms::core
