#pragma once

#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace ms::core {

/// Spawns simulated application threads and measures the wall-clock (in
/// simulated time) of the batch — the "execution time" every figure plots.
class Runner {
 public:
  explicit Runner(sim::Engine& engine) : engine_(engine), wg_(engine) {}
  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Registers one thread; it starts when the engine runs.
  void spawn(sim::Task<void> thread) {
    wg_.add(1);
    engine_.spawn(wrap(std::move(thread)));
  }

  /// Awaitable join for use inside another simulated process.
  sim::Task<void> join() { co_await wg_.wait(); }

  /// Drives the engine until every spawned thread has finished (background
  /// activity such as write-backs may continue after that) and returns the
  /// simulated duration start -> last thread completion.
  sim::Time run_all() {
    const sim::Time start = engine_.now();
    last_done_ = start;
    engine_.run();
    if (wg_.count() != 0) {
      throw std::logic_error("Runner: threads deadlocked (event queue drained "
                             "with workers still blocked)");
    }
    return last_done_ - start;
  }

  sim::Time last_completion() const { return last_done_; }

 private:
  sim::Task<void> wrap(sim::Task<void> thread) {
    co_await std::move(thread);
    last_done_ = engine_.now();
    wg_.done();
  }

  sim::Engine& engine_;
  sim::WaitGroup wg_;
  sim::Time last_done_ = 0;
};

}  // namespace ms::core
