// Tests for the memory hierarchy: backing store data integrity, DRAM
// timing, memory-controller queueing, cache behaviour (including a random
// property check against a reference model), and the node-internal
// coherence directory.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/runner.hpp"
#include "mem/backing_store.hpp"
#include "mem/cache.hpp"
#include "mem/coherence.hpp"
#include "mem/dram.hpp"
#include "mem/memory_controller.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"
#include "workloads/random_access.hpp"

namespace ms::mem {
namespace {

TEST(BackingStore, ReadsBackWhatWasWritten) {
  BackingStore store;
  store.write_u64(1, 0x1000, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(store.read_u64(1, 0x1000), 0xdeadbeefcafef00dULL);
  // Different node, same address: independent.
  EXPECT_EQ(store.read_u64(2, 0x1000), 0u);
}

TEST(BackingStore, UntouchedMemoryReadsZero) {
  BackingStore store;
  EXPECT_EQ(store.read_u64(3, 0xabc000), 0u);
  EXPECT_EQ(store.pages_touched(), 0u);
}

TEST(BackingStore, CrossPageTransfers) {
  BackingStore store(4096);
  std::vector<std::byte> data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7);
  }
  store.write(1, 4000, data);  // 4000..13999 spans four pages
  std::vector<std::byte> back(10000);
  store.read(1, 4000, back);
  EXPECT_EQ(data, back);
  EXPECT_EQ(store.pages_touched(), 4u);
}

TEST(BackingStore, CopyAcrossNodes) {
  BackingStore store;
  store.write_u64(1, 64, 42);
  store.write_u64(1, 72, 43);
  store.copy(1, 64, 5, 1024, 16);
  EXPECT_EQ(store.read_u64(5, 1024), 42u);
  EXPECT_EQ(store.read_u64(5, 1032), 43u);
}

TEST(BackingStore, RejectsNonPowerOfTwoPage) {
  EXPECT_THROW(BackingStore(1000), std::invalid_argument);
}

TEST(Dram, RowHitsAreCheaperThanConflicts) {
  DramModel::Params p;
  DramModel dram(p);
  const auto first = dram.access_latency(0, 64);     // row conflict (cold)
  const auto second = dram.access_latency(64, 64);   // same row: hit
  EXPECT_GT(first, second);
  EXPECT_EQ(dram.row_hits(), 1u);
  EXPECT_EQ(dram.row_conflicts(), 1u);
  // Far address in the same bank: conflict again.
  const auto third = dram.access_latency(p.row_bytes * p.banks * 4, 64);
  EXPECT_EQ(third, first);
}

TEST(Dram, BanksInterleaveByRow) {
  DramModel dram(DramModel::Params{});
  std::set<int> banks;
  for (int i = 0; i < 8; ++i) {
    banks.insert(dram.bank_of(static_cast<ht::PAddr>(i) * 8192));
  }
  EXPECT_EQ(banks.size(), 8u);
}

sim::Task<void> mc_access(MemoryController& mc, ht::PAddr a, bool write) {
  co_await mc.access(a, 64, write);
}

TEST(MemoryController, SingleAccessLatencyIsPlausible) {
  sim::Engine e;
  MemoryController mc(e, "mc", MemoryController::Params{});
  e.spawn(mc_access(mc, 0, false));
  e.run();
  // Cold access: controller 10 + (15+15+15) + 10 transfer = 65 ns.
  EXPECT_GT(e.now(), sim::ns(50));
  EXPECT_LT(e.now(), sim::ns(90));
  EXPECT_EQ(mc.reads(), 1u);
}

TEST(MemoryController, SameBankSerializesDifferentBanksOverlap) {
  sim::Engine e1;
  MemoryController mc1(e1, "mc", MemoryController::Params{});
  e1.spawn(mc_access(mc1, 0, false));
  e1.spawn(mc_access(mc1, 64, false));  // same row/bank
  e1.run();
  const auto same_bank = e1.now();

  sim::Engine e2;
  MemoryController mc2(e2, "mc", MemoryController::Params{});
  e2.spawn(mc_access(mc2, 0, false));
  e2.spawn(mc_access(mc2, 8192, false));  // next bank
  e2.run();
  EXPECT_LT(e2.now(), same_bank);
}

TEST(Cache, HitAfterMissAndLru) {
  Cache c(Cache::Params{.size_bytes = 1024, .ways = 2, .line_bytes = 64});
  auto r1 = c.access(0, false);
  EXPECT_FALSE(r1.hit);
  auto r2 = c.access(32, false);  // same line
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, EvictsLruVictimAndReportsWriteback) {
  // 2-way, 8 sets: addresses 0, 1024, 2048 map to set 0.
  Cache c(Cache::Params{.size_bytes = 1024, .ways = 2, .line_bytes = 64});
  c.access(0, true);       // dirty
  c.access(1024, false);   // clean
  c.access(0, false);      // touch line 0 -> 1024 becomes LRU
  auto r = c.access(2048, false);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted);
  EXPECT_FALSE(r.writeback);        // victim 1024 was clean
  EXPECT_EQ(r.victim_line, 1024u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(1024));

  auto r2 = c.access(1024, false);  // evicts dirty line 0
  EXPECT_TRUE(r2.writeback);
  EXPECT_EQ(r2.victim_line, 0u);
}

TEST(Cache, InvalidateAndClean) {
  Cache c(Cache::Params{.size_bytes = 1024, .ways = 2, .line_bytes = 64});
  c.access(128, true);
  EXPECT_TRUE(c.dirty(128));
  EXPECT_TRUE(c.clean(128));   // was dirty
  EXPECT_FALSE(c.dirty(128));
  EXPECT_TRUE(c.contains(128));
  auto inv = c.invalidate(128);
  EXPECT_TRUE(inv.was_present);
  EXPECT_FALSE(inv.was_dirty);
  EXPECT_FALSE(c.contains(128));
  EXPECT_FALSE(c.invalidate(128).was_present);
}

TEST(Cache, FlushWritesBackEveryDirtyLine) {
  Cache c(Cache::Params{.size_bytes = 4096, .ways = 4, .line_bytes = 64});
  c.access(0, true);
  c.access(64, true);
  c.access(128, false);
  std::set<ht::PAddr> flushed;
  c.flush_all([&](ht::PAddr line) { flushed.insert(line); });
  EXPECT_EQ(flushed, (std::set<ht::PAddr>{0, 64}));
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.contains(128));
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(Cache::Params{.size_bytes = 1000, .ways = 2,
                                   .line_bytes = 64}),
               std::invalid_argument);
  EXPECT_THROW(Cache(Cache::Params{.size_bytes = 1024, .ways = 2,
                                   .line_bytes = 60}),
               std::invalid_argument);
}

// Property: against a reference model (map line->dirty with unlimited
// capacity is wrong, so model the exact set/way geometry instead).
TEST(Cache, RandomStreamMatchesReferenceModel) {
  const Cache::Params params{.size_bytes = 2048, .ways = 2, .line_bytes = 64};
  Cache c(params);
  const std::size_t sets = 2048 / (2 * 64);

  struct RefWay {
    ht::PAddr tag = 0;
    bool valid = false, dirty = false;
    std::uint64_t lru = 0;
  };
  std::vector<std::array<RefWay, 2>> ref(sets);
  std::uint64_t tick = 0;

  sim::Rng rng(99);
  for (int i = 0; i < 20'000; ++i) {
    const ht::PAddr addr = rng.below(64) * 64 + rng.below(64);
    const bool write = rng.chance(0.3);
    const ht::PAddr line = addr & ~ht::PAddr{63};
    const std::size_t set = (line / 64) % sets;

    // Reference update.
    ++tick;
    auto& ways = ref[set];
    RefWay* hit_way = nullptr;
    for (auto& w : ways) {
      if (w.valid && w.tag == line) hit_way = &w;
    }
    bool expect_hit = hit_way != nullptr;
    if (hit_way) {
      hit_way->lru = tick;
      if (write) hit_way->dirty = true;
    } else {
      RefWay* victim = &ways[0];
      for (auto& w : ways) {
        if (!w.valid) { victim = &w; break; }
        if (w.lru < victim->lru) victim = &w;
      }
      *victim = RefWay{line, true, write, tick};
    }

    auto got = c.access(addr, write);
    ASSERT_EQ(got.hit, expect_hit) << "access " << i;
  }
}

// ---- Coherence directory ----

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest() {
    Cache::Params p{.size_bytes = 1024, .ways = 2, .line_bytes = 64};
    for (int i = 0; i < 4; ++i) caches_.emplace_back(p);
    std::vector<Cache*> ptrs;
    for (auto& c : caches_) ptrs.push_back(&c);
    dir_ = std::make_unique<CoherenceDirectory>(CoherenceDirectory::Params{},
                                                ptrs);
  }
  std::vector<Cache> caches_;
  std::unique_ptr<CoherenceDirectory> dir_;
};

TEST_F(DirectoryTest, ReadSharersAccumulateWithoutProbes) {
  for (int core = 0; core < 4; ++core) {
    caches_[static_cast<size_t>(core)].access(0, false);
    auto out = dir_->on_miss(core, 0, false);
    EXPECT_EQ(out.probes, 0);
  }
  EXPECT_EQ(dir_->sharer_count(0), 4);
  EXPECT_EQ(dir_->probes(), 0u);
}

TEST_F(DirectoryTest, WriteInvalidatesAllOtherSharers) {
  for (int core = 0; core < 4; ++core) {
    caches_[static_cast<size_t>(core)].access(0, false);
    dir_->on_miss(core, 0, false);
  }
  caches_[0].access(0, true);
  auto out = dir_->on_write_hit(0, 0);
  EXPECT_EQ(out.invalidations, 3);
  EXPECT_EQ(dir_->sharer_count(0), 1);
  EXPECT_FALSE(caches_[1].contains(0));
  EXPECT_FALSE(caches_[2].contains(0));
  EXPECT_GT(out.latency, 0u);
}

TEST_F(DirectoryTest, ReadMissAfterRemoteWriteFetchesDirtyData) {
  caches_[0].access(0, true);
  dir_->on_miss(0, 0, true);
  caches_[1].access(0, false);
  auto out = dir_->on_miss(1, 0, false);
  EXPECT_TRUE(out.dirty_transfer);
  EXPECT_EQ(out.probes, 1);
  EXPECT_FALSE(caches_[0].dirty(0));  // owner downgraded to clean
  EXPECT_EQ(dir_->sharer_count(0), 2);
}

TEST_F(DirectoryTest, EvictionsShrinkTheDirectory) {
  caches_[0].access(0, false);
  dir_->on_miss(0, 0, false);
  EXPECT_TRUE(dir_->tracked(0));
  dir_->on_evict(0, 0);
  EXPECT_FALSE(dir_->tracked(0));
}

TEST_F(DirectoryTest, DropCoreClearsEverySharerBit) {
  for (ht::PAddr line : {0u, 64u, 128u}) {
    caches_[2].access(line, false);
    dir_->on_miss(2, line, false);
  }
  caches_[3].access(0, false);
  dir_->on_miss(3, 0, false);
  dir_->drop_core(2);
  EXPECT_EQ(dir_->sharer_count(0), 1);  // core 3 remains
  EXPECT_FALSE(dir_->tracked(64));
  EXPECT_FALSE(dir_->tracked(128));
}

TEST_F(DirectoryTest, SingleWriterNeverProbes) {
  // The paper's case: one process confined to one core writing a huge
  // region — no probes, no invalidations, regardless of footprint.
  sim::Rng rng(5);
  for (int i = 0; i < 5'000; ++i) {
    const ht::PAddr line = rng.below(1 << 20) * 64;
    auto res = caches_[0].access(line, true);
    if (res.evicted) dir_->on_evict(0, res.victim_line);
    auto out = res.hit ? dir_->on_write_hit(0, line)
                       : dir_->on_miss(0, line, true);
    ASSERT_EQ(out.probes, 0);
  }
  EXPECT_EQ(dir_->probes(), 0u);
  EXPECT_EQ(dir_->invalidations(), 0u);
}

// ---------------------------------------------------------------------------
// Table-driven protocol conformance: every {directory state for a line} x
// {read / write / evict / remote read / remote write} cell, checked against
// the MSI transition the directory must implement. Each row runs on a fresh
// directory; the focal core is 0, remote actors are cores 1 and 2.
// ---------------------------------------------------------------------------

enum class LineState {
  kUntracked,        // no cache holds the line
  kSharedSelf,       // core 0 holds it shared, alone
  kSharedSelfOther,  // cores 0 and 1 share it
  kSharedOthers,     // cores 1 and 2 share it; core 0 does not hold it
  kModifiedSelf,     // core 0 owns it modified
  kModifiedOther     // core 1 owns it modified
};

enum class LineOp {
  kRead,         // core 0 reads
  kWrite,        // core 0 writes
  kEvict,        // the holding focal core evicts (no-op if it doesn't hold)
  kRemoteRead,   // another core reads
  kRemoteWrite   // another core writes
};

struct ConformanceRow {
  const char* name;
  LineState state;
  LineOp op;
  int remote_actor;  // core applying kRemote*; ignored otherwise
  // Expected outcome of the op and post-state of the directory.
  int probes;
  int invalidations;
  bool dirty_transfer;
  int sharers_after;
  bool tracked_after;
};

class ConformanceFixture {
 public:
  ConformanceFixture() {
    Cache::Params p{.size_bytes = 1024, .ways = 2, .line_bytes = 64};
    for (int i = 0; i < 4; ++i) caches_.emplace_back(p);
    std::vector<Cache*> ptrs;
    for (auto& c : caches_) ptrs.push_back(&c);
    dir_ = std::make_unique<CoherenceDirectory>(CoherenceDirectory::Params{},
                                                ptrs);
  }

  // Mirrors the node access path: cache first, then the directory on a miss
  // or a write hit, with evictions reported.
  CoherenceDirectory::Outcome access(int core, bool is_write) {
    auto res = caches_[static_cast<std::size_t>(core)].access(kLine, is_write);
    if (res.evicted) dir_->on_evict(core, res.victim_line);
    if (res.hit) {
      return is_write ? dir_->on_write_hit(core, kLine)
                      : CoherenceDirectory::Outcome{};
    }
    return dir_->on_miss(core, kLine, is_write);
  }

  void establish(LineState s) {
    switch (s) {
      case LineState::kUntracked:
        break;
      case LineState::kSharedSelf:
        access(0, false);
        break;
      case LineState::kSharedSelfOther:
        access(0, false);
        access(1, false);
        break;
      case LineState::kSharedOthers:
        access(1, false);
        access(2, false);
        break;
      case LineState::kModifiedSelf:
        access(0, true);
        break;
      case LineState::kModifiedOther:
        access(1, true);
        break;
    }
  }

  CoherenceDirectory::Outcome apply(LineOp op, int remote_actor) {
    switch (op) {
      case LineOp::kRead:
        return access(0, false);
      case LineOp::kWrite:
        return access(0, true);
      case LineOp::kEvict: {
        // The holding focal core gives the line up (capacity eviction).
        for (int c : {0, 1}) {
          if (caches_[static_cast<std::size_t>(c)].contains(kLine)) {
            caches_[static_cast<std::size_t>(c)].invalidate(kLine);
            dir_->on_evict(c, kLine);
            break;
          }
        }
        return {};
      }
      case LineOp::kRemoteRead:
        return access(remote_actor, false);
      case LineOp::kRemoteWrite:
        return access(remote_actor, true);
    }
    return {};
  }

  static constexpr ht::PAddr kLine = 0;
  std::vector<Cache> caches_;
  std::unique_ptr<CoherenceDirectory> dir_;
};

TEST(DirectoryConformance, EveryStateByOperationCell) {
  const ConformanceRow rows[] = {
      // Untracked line: first touch never probes.
      {"untracked/read", LineState::kUntracked, LineOp::kRead, 1,
       0, 0, false, 1, true},
      {"untracked/write", LineState::kUntracked, LineOp::kWrite, 1,
       0, 0, false, 1, true},
      {"untracked/evict", LineState::kUntracked, LineOp::kEvict, 1,
       0, 0, false, 0, false},
      {"untracked/remote-read", LineState::kUntracked, LineOp::kRemoteRead, 1,
       0, 0, false, 1, true},
      {"untracked/remote-write", LineState::kUntracked, LineOp::kRemoteWrite, 1,
       0, 0, false, 1, true},

      // Shared, held only by the focal core.
      {"shared-self/read", LineState::kSharedSelf, LineOp::kRead, 1,
       0, 0, false, 1, true},
      {"shared-self/write", LineState::kSharedSelf, LineOp::kWrite, 1,
       0, 0, false, 1, true},  // silent S->M upgrade: no other sharers
      {"shared-self/evict", LineState::kSharedSelf, LineOp::kEvict, 1,
       0, 0, false, 0, false},
      {"shared-self/remote-read", LineState::kSharedSelf, LineOp::kRemoteRead,
       1, 0, 0, false, 2, true},
      {"shared-self/remote-write", LineState::kSharedSelf, LineOp::kRemoteWrite,
       1, 1, 1, false, 1, true},  // clean invalidation of core 0

      // Shared by the focal core and one peer.
      {"shared-both/read", LineState::kSharedSelfOther, LineOp::kRead, 2,
       0, 0, false, 2, true},
      {"shared-both/write", LineState::kSharedSelfOther, LineOp::kWrite, 2,
       1, 1, false, 1, true},  // upgrade invalidates the peer
      {"shared-both/evict", LineState::kSharedSelfOther, LineOp::kEvict, 2,
       0, 0, false, 1, true},  // peer keeps the line tracked
      {"shared-both/remote-read", LineState::kSharedSelfOther,
       LineOp::kRemoteRead, 2, 0, 0, false, 3, true},
      {"shared-both/remote-write", LineState::kSharedSelfOther,
       LineOp::kRemoteWrite, 2, 2, 2, false, 1, true},

      // Shared by two peers; the focal core holds nothing.
      {"shared-others/read", LineState::kSharedOthers, LineOp::kRead, 1,
       0, 0, false, 3, true},
      {"shared-others/write", LineState::kSharedOthers, LineOp::kWrite, 1,
       2, 2, false, 1, true},
      {"shared-others/evict", LineState::kSharedOthers, LineOp::kEvict, 1,
       0, 0, false, 1, true},  // core 1 evicts; core 2 remains
      {"shared-others/remote-read", LineState::kSharedOthers,
       LineOp::kRemoteRead, 1, 0, 0, false, 2, true},  // re-read hits
      {"shared-others/remote-write", LineState::kSharedOthers,
       LineOp::kRemoteWrite, 1, 1, 1, false, 1, true},  // upgrade vs core 2

      // Modified by the focal core.
      {"modified-self/read", LineState::kModifiedSelf, LineOp::kRead, 1,
       0, 0, false, 1, true},
      {"modified-self/write", LineState::kModifiedSelf, LineOp::kWrite, 1,
       0, 0, false, 1, true},
      {"modified-self/evict", LineState::kModifiedSelf, LineOp::kEvict, 1,
       0, 0, false, 0, false},
      {"modified-self/remote-read", LineState::kModifiedSelf,
       LineOp::kRemoteRead, 1, 1, 0, true, 2, true},  // owner supplies data
      {"modified-self/remote-write", LineState::kModifiedSelf,
       LineOp::kRemoteWrite, 1, 1, 1, true, 1, true},

      // Modified by a peer.
      {"modified-other/read", LineState::kModifiedOther, LineOp::kRead, 2,
       1, 0, true, 2, true},
      {"modified-other/write", LineState::kModifiedOther, LineOp::kWrite, 2,
       1, 1, true, 1, true},
      {"modified-other/evict", LineState::kModifiedOther, LineOp::kEvict, 2,
       0, 0, false, 0, false},
      {"modified-other/remote-read", LineState::kModifiedOther,
       LineOp::kRemoteRead, 2, 1, 0, true, 2, true},
      {"modified-other/remote-write", LineState::kModifiedOther,
       LineOp::kRemoteWrite, 2, 1, 1, true, 1, true},
  };

  for (const auto& row : rows) {
    SCOPED_TRACE(row.name);
    ConformanceFixture f;
    f.establish(row.state);
    const auto before_probes = f.dir_->probes();
    const auto before_inv = f.dir_->invalidations();
    const auto out = f.apply(row.op, row.remote_actor);
    EXPECT_EQ(out.probes, row.probes);
    EXPECT_EQ(out.invalidations, row.invalidations);
    EXPECT_EQ(out.dirty_transfer, row.dirty_transfer);
    // Counters advance exactly with the reported outcome.
    EXPECT_EQ(f.dir_->probes() - before_probes,
              static_cast<std::uint64_t>(row.probes));
    EXPECT_EQ(f.dir_->invalidations() - before_inv,
              static_cast<std::uint64_t>(row.invalidations));
    EXPECT_EQ(f.dir_->sharer_count(ConformanceFixture::kLine),
              row.sharers_after);
    EXPECT_EQ(f.dir_->tracked(ConformanceFixture::kLine), row.tracked_after);
    // Latency is charged iff coherence work happened.
    if (row.probes > 0 || row.dirty_transfer) {
      EXPECT_GT(out.latency, 0u);
    } else {
      EXPECT_EQ(out.latency, 0u);
    }
  }
}

TEST(DirectoryConformance, DonorNodeNeverCachesRemoteFrames) {
  // The paper's central invariant: a donor serves remote requests straight
  // from its memory controllers — the request never enters the donor's
  // caches or coherence domain, so growing a borrower's region adds zero
  // probes on the donor.
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace space(cluster, 1, p);

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 2 << 20;
  rp.accesses_per_thread = 500;
  workloads::RandomAccess ra(space, rp);
  core::Runner setup(engine);
  setup.spawn(ra.setup({2}));  // node 2 donates every frame
  setup.run_all();
  core::Runner run(engine);
  run.spawn(ra.thread_fn(0, 0));
  run.run_all();

  auto& donor = cluster.node(2);
  ASSERT_GT(cluster.rmc(2).served_requests(), 0u);  // traffic reached it
  std::uint64_t donor_mc = 0;
  for (int s = 0; s < 2; ++s) {
    donor_mc += donor.mc(s).reads() + donor.mc(s).writes();
  }
  EXPECT_GT(donor_mc, 0u);  // served from DRAM...
  for (int c = 0; c < donor.num_cores(); ++c) {
    EXPECT_EQ(donor.core(c).cache().hits(), 0u);  // ...never from a cache
    EXPECT_EQ(donor.core(c).cache().misses(), 0u);
  }
  EXPECT_EQ(donor.directory().probes(), 0u);
  EXPECT_EQ(donor.directory().invalidations(), 0u);
}

TEST(DirectoryConformance, DirtyTransferCleansTheOwner) {
  // The transition behind the table's modified/remote-read cells, checked
  // against the caches: after a peer read, the former owner holds the line
  // clean, and a later eviction writes nothing back.
  ConformanceFixture f;
  f.establish(LineState::kModifiedSelf);
  EXPECT_TRUE(f.caches_[0].dirty(ConformanceFixture::kLine));
  f.access(1, false);
  EXPECT_TRUE(f.caches_[0].contains(ConformanceFixture::kLine));
  EXPECT_FALSE(f.caches_[0].dirty(ConformanceFixture::kLine));
}

}  // namespace
}  // namespace ms::mem
