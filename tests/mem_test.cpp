// Tests for the memory hierarchy: backing store data integrity, DRAM
// timing, memory-controller queueing, cache behaviour (including a random
// property check against a reference model), and the node-internal
// coherence directory.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mem/backing_store.hpp"
#include "mem/cache.hpp"
#include "mem/coherence.hpp"
#include "mem/dram.hpp"
#include "mem/memory_controller.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace ms::mem {
namespace {

TEST(BackingStore, ReadsBackWhatWasWritten) {
  BackingStore store;
  store.write_u64(1, 0x1000, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(store.read_u64(1, 0x1000), 0xdeadbeefcafef00dULL);
  // Different node, same address: independent.
  EXPECT_EQ(store.read_u64(2, 0x1000), 0u);
}

TEST(BackingStore, UntouchedMemoryReadsZero) {
  BackingStore store;
  EXPECT_EQ(store.read_u64(3, 0xabc000), 0u);
  EXPECT_EQ(store.pages_touched(), 0u);
}

TEST(BackingStore, CrossPageTransfers) {
  BackingStore store(4096);
  std::vector<std::byte> data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7);
  }
  store.write(1, 4000, data);  // 4000..13999 spans four pages
  std::vector<std::byte> back(10000);
  store.read(1, 4000, back);
  EXPECT_EQ(data, back);
  EXPECT_EQ(store.pages_touched(), 4u);
}

TEST(BackingStore, CopyAcrossNodes) {
  BackingStore store;
  store.write_u64(1, 64, 42);
  store.write_u64(1, 72, 43);
  store.copy(1, 64, 5, 1024, 16);
  EXPECT_EQ(store.read_u64(5, 1024), 42u);
  EXPECT_EQ(store.read_u64(5, 1032), 43u);
}

TEST(BackingStore, RejectsNonPowerOfTwoPage) {
  EXPECT_THROW(BackingStore(1000), std::invalid_argument);
}

TEST(Dram, RowHitsAreCheaperThanConflicts) {
  DramModel::Params p;
  DramModel dram(p);
  const auto first = dram.access_latency(0, 64);     // row conflict (cold)
  const auto second = dram.access_latency(64, 64);   // same row: hit
  EXPECT_GT(first, second);
  EXPECT_EQ(dram.row_hits(), 1u);
  EXPECT_EQ(dram.row_conflicts(), 1u);
  // Far address in the same bank: conflict again.
  const auto third = dram.access_latency(p.row_bytes * p.banks * 4, 64);
  EXPECT_EQ(third, first);
}

TEST(Dram, BanksInterleaveByRow) {
  DramModel dram(DramModel::Params{});
  std::set<int> banks;
  for (int i = 0; i < 8; ++i) {
    banks.insert(dram.bank_of(static_cast<ht::PAddr>(i) * 8192));
  }
  EXPECT_EQ(banks.size(), 8u);
}

sim::Task<void> mc_access(MemoryController& mc, ht::PAddr a, bool write) {
  co_await mc.access(a, 64, write);
}

TEST(MemoryController, SingleAccessLatencyIsPlausible) {
  sim::Engine e;
  MemoryController mc(e, "mc", MemoryController::Params{});
  e.spawn(mc_access(mc, 0, false));
  e.run();
  // Cold access: controller 10 + (15+15+15) + 10 transfer = 65 ns.
  EXPECT_GT(e.now(), sim::ns(50));
  EXPECT_LT(e.now(), sim::ns(90));
  EXPECT_EQ(mc.reads(), 1u);
}

TEST(MemoryController, SameBankSerializesDifferentBanksOverlap) {
  sim::Engine e1;
  MemoryController mc1(e1, "mc", MemoryController::Params{});
  e1.spawn(mc_access(mc1, 0, false));
  e1.spawn(mc_access(mc1, 64, false));  // same row/bank
  e1.run();
  const auto same_bank = e1.now();

  sim::Engine e2;
  MemoryController mc2(e2, "mc", MemoryController::Params{});
  e2.spawn(mc_access(mc2, 0, false));
  e2.spawn(mc_access(mc2, 8192, false));  // next bank
  e2.run();
  EXPECT_LT(e2.now(), same_bank);
}

TEST(Cache, HitAfterMissAndLru) {
  Cache c(Cache::Params{.size_bytes = 1024, .ways = 2, .line_bytes = 64});
  auto r1 = c.access(0, false);
  EXPECT_FALSE(r1.hit);
  auto r2 = c.access(32, false);  // same line
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, EvictsLruVictimAndReportsWriteback) {
  // 2-way, 8 sets: addresses 0, 1024, 2048 map to set 0.
  Cache c(Cache::Params{.size_bytes = 1024, .ways = 2, .line_bytes = 64});
  c.access(0, true);       // dirty
  c.access(1024, false);   // clean
  c.access(0, false);      // touch line 0 -> 1024 becomes LRU
  auto r = c.access(2048, false);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted);
  EXPECT_FALSE(r.writeback);        // victim 1024 was clean
  EXPECT_EQ(r.victim_line, 1024u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(1024));

  auto r2 = c.access(1024, false);  // evicts dirty line 0
  EXPECT_TRUE(r2.writeback);
  EXPECT_EQ(r2.victim_line, 0u);
}

TEST(Cache, InvalidateAndClean) {
  Cache c(Cache::Params{.size_bytes = 1024, .ways = 2, .line_bytes = 64});
  c.access(128, true);
  EXPECT_TRUE(c.dirty(128));
  EXPECT_TRUE(c.clean(128));   // was dirty
  EXPECT_FALSE(c.dirty(128));
  EXPECT_TRUE(c.contains(128));
  auto inv = c.invalidate(128);
  EXPECT_TRUE(inv.was_present);
  EXPECT_FALSE(inv.was_dirty);
  EXPECT_FALSE(c.contains(128));
  EXPECT_FALSE(c.invalidate(128).was_present);
}

TEST(Cache, FlushWritesBackEveryDirtyLine) {
  Cache c(Cache::Params{.size_bytes = 4096, .ways = 4, .line_bytes = 64});
  c.access(0, true);
  c.access(64, true);
  c.access(128, false);
  std::set<ht::PAddr> flushed;
  c.flush_all([&](ht::PAddr line) { flushed.insert(line); });
  EXPECT_EQ(flushed, (std::set<ht::PAddr>{0, 64}));
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.contains(128));
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(Cache::Params{.size_bytes = 1000, .ways = 2,
                                   .line_bytes = 64}),
               std::invalid_argument);
  EXPECT_THROW(Cache(Cache::Params{.size_bytes = 1024, .ways = 2,
                                   .line_bytes = 60}),
               std::invalid_argument);
}

// Property: against a reference model (map line->dirty with unlimited
// capacity is wrong, so model the exact set/way geometry instead).
TEST(Cache, RandomStreamMatchesReferenceModel) {
  const Cache::Params params{.size_bytes = 2048, .ways = 2, .line_bytes = 64};
  Cache c(params);
  const std::size_t sets = 2048 / (2 * 64);

  struct RefWay {
    ht::PAddr tag = 0;
    bool valid = false, dirty = false;
    std::uint64_t lru = 0;
  };
  std::vector<std::array<RefWay, 2>> ref(sets);
  std::uint64_t tick = 0;

  sim::Rng rng(99);
  for (int i = 0; i < 20'000; ++i) {
    const ht::PAddr addr = rng.below(64) * 64 + rng.below(64);
    const bool write = rng.chance(0.3);
    const ht::PAddr line = addr & ~ht::PAddr{63};
    const std::size_t set = (line / 64) % sets;

    // Reference update.
    ++tick;
    auto& ways = ref[set];
    RefWay* hit_way = nullptr;
    for (auto& w : ways) {
      if (w.valid && w.tag == line) hit_way = &w;
    }
    bool expect_hit = hit_way != nullptr;
    if (hit_way) {
      hit_way->lru = tick;
      if (write) hit_way->dirty = true;
    } else {
      RefWay* victim = &ways[0];
      for (auto& w : ways) {
        if (!w.valid) { victim = &w; break; }
        if (w.lru < victim->lru) victim = &w;
      }
      *victim = RefWay{line, true, write, tick};
    }

    auto got = c.access(addr, write);
    ASSERT_EQ(got.hit, expect_hit) << "access " << i;
  }
}

// ---- Coherence directory ----

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest() {
    Cache::Params p{.size_bytes = 1024, .ways = 2, .line_bytes = 64};
    for (int i = 0; i < 4; ++i) caches_.emplace_back(p);
    std::vector<Cache*> ptrs;
    for (auto& c : caches_) ptrs.push_back(&c);
    dir_ = std::make_unique<CoherenceDirectory>(CoherenceDirectory::Params{},
                                                ptrs);
  }
  std::vector<Cache> caches_;
  std::unique_ptr<CoherenceDirectory> dir_;
};

TEST_F(DirectoryTest, ReadSharersAccumulateWithoutProbes) {
  for (int core = 0; core < 4; ++core) {
    caches_[static_cast<size_t>(core)].access(0, false);
    auto out = dir_->on_miss(core, 0, false);
    EXPECT_EQ(out.probes, 0);
  }
  EXPECT_EQ(dir_->sharer_count(0), 4);
  EXPECT_EQ(dir_->probes(), 0u);
}

TEST_F(DirectoryTest, WriteInvalidatesAllOtherSharers) {
  for (int core = 0; core < 4; ++core) {
    caches_[static_cast<size_t>(core)].access(0, false);
    dir_->on_miss(core, 0, false);
  }
  caches_[0].access(0, true);
  auto out = dir_->on_write_hit(0, 0);
  EXPECT_EQ(out.invalidations, 3);
  EXPECT_EQ(dir_->sharer_count(0), 1);
  EXPECT_FALSE(caches_[1].contains(0));
  EXPECT_FALSE(caches_[2].contains(0));
  EXPECT_GT(out.latency, 0u);
}

TEST_F(DirectoryTest, ReadMissAfterRemoteWriteFetchesDirtyData) {
  caches_[0].access(0, true);
  dir_->on_miss(0, 0, true);
  caches_[1].access(0, false);
  auto out = dir_->on_miss(1, 0, false);
  EXPECT_TRUE(out.dirty_transfer);
  EXPECT_EQ(out.probes, 1);
  EXPECT_FALSE(caches_[0].dirty(0));  // owner downgraded to clean
  EXPECT_EQ(dir_->sharer_count(0), 2);
}

TEST_F(DirectoryTest, EvictionsShrinkTheDirectory) {
  caches_[0].access(0, false);
  dir_->on_miss(0, 0, false);
  EXPECT_TRUE(dir_->tracked(0));
  dir_->on_evict(0, 0);
  EXPECT_FALSE(dir_->tracked(0));
}

TEST_F(DirectoryTest, DropCoreClearsEverySharerBit) {
  for (ht::PAddr line : {0u, 64u, 128u}) {
    caches_[2].access(line, false);
    dir_->on_miss(2, line, false);
  }
  caches_[3].access(0, false);
  dir_->on_miss(3, 0, false);
  dir_->drop_core(2);
  EXPECT_EQ(dir_->sharer_count(0), 1);  // core 3 remains
  EXPECT_FALSE(dir_->tracked(64));
  EXPECT_FALSE(dir_->tracked(128));
}

TEST_F(DirectoryTest, SingleWriterNeverProbes) {
  // The paper's case: one process confined to one core writing a huge
  // region — no probes, no invalidations, regardless of footprint.
  sim::Rng rng(5);
  for (int i = 0; i < 5'000; ++i) {
    const ht::PAddr line = rng.below(1 << 20) * 64;
    auto res = caches_[0].access(line, true);
    if (res.evicted) dir_->on_evict(0, res.victim_line);
    auto out = res.hit ? dir_->on_write_hit(0, line)
                       : dir_->on_miss(0, line, true);
    ASSERT_EQ(out.probes, 0);
  }
  EXPECT_EQ(dir_->probes(), 0u);
  EXPECT_EQ(dir_->invalidations(), 0u);
}

}  // namespace
}  // namespace ms::mem
