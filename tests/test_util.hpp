#pragma once

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "sim/engine.hpp"

namespace ms::test {

/// Cluster sized for fast unit tests: 4 nodes in a 2x2 mesh, 2x2 cores,
/// 64 MiB local memory per node (8 MiB OS-reserved), small caches and
/// small donor segments so growth paths run quickly.
inline core::ClusterConfig small_config(int nodes = 4) {
  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.topology = "mesh2d";
  cfg.os_reserved_bytes = ht::PAddr{8} << 20;
  cfg.node.sockets = 2;
  cfg.node.cores_per_socket = 2;
  cfg.node.local_bytes = ht::PAddr{64} << 20;
  cfg.node.cache.size_bytes = 64 << 10;
  cfg.region.segment_bytes = ht::PAddr{4} << 20;
  return cfg;
}

/// Runs one simulated process to completion and asserts clean termination.
inline void run_in_sim(sim::Engine& engine, sim::Task<void> body) {
  engine.spawn(std::move(body));
  engine.run();
  ASSERT_EQ(engine.live_processes(), 0) << "simulated process deadlocked";
}

}  // namespace ms::test
