// Integration tests for the public API: cluster assembly, memory spaces in
// every mode (data lands on the donor, the coherence-independence headline
// claim, time accounting), the interposed allocator and the runner.
#include <gtest/gtest.h>

#include "core/remote_allocator.hpp"
#include "core/runner.hpp"
#include "test_util.hpp"
#include "workloads/random_access.hpp"

namespace ms::core {
namespace {

TEST(ClusterConfig, OverridesApply) {
  sim::Config raw;
  raw.set("nodes", "4");
  raw.set("topology", "ring");
  raw.set("rmc.outstanding", "8");
  raw.set("node.cache_bytes", "128K");
  raw.set("rmc.prefetch_degree", "4");
  auto cfg = ClusterConfig::from(raw);
  EXPECT_EQ(cfg.nodes, 4);
  EXPECT_EQ(cfg.topology, "ring");
  EXPECT_EQ(cfg.node.core_remote_outstanding, 8);
  EXPECT_EQ(cfg.node.cache.size_bytes, 128u << 10);
  EXPECT_EQ(cfg.node.prefetch.degree, 4);
  EXPECT_NE(cfg.summary().find("ring"), std::string::npos);
}

TEST(Cluster, AssemblesPaperPrototypeShape) {
  sim::Engine e;
  ClusterConfig cfg;  // defaults = the paper's 16-node machine
  Cluster cluster(e, cfg);
  EXPECT_EQ(cluster.num_nodes(), 16);
  EXPECT_EQ(cluster.node(1).num_cores(), 16);
  EXPECT_EQ(cluster.fabric().diameter(), 6);  // 4x4 mesh
  // 8 GiB per node donatable -> 128 GiB shared pool across the cluster.
  EXPECT_EQ(cluster.directory().total_free(), ht::PAddr{128} << 30);
  EXPECT_EQ(cluster.hops_fn()(1, 16), 6);
}

TEST(Cluster, RejectsBadNodeCounts) {
  sim::Engine e;
  ClusterConfig cfg;
  cfg.nodes = 0;
  EXPECT_THROW(Cluster(e, cfg), std::invalid_argument);
}

// ---- MemorySpace end-to-end ----

class SpaceTest : public ::testing::Test {
 protected:
  SpaceTest() : cluster_(engine_, test::small_config()) {}
  sim::Engine engine_;
  Cluster cluster_;
};

sim::Task<void> write_read_roundtrip(MemorySpace& space, Cluster& cluster,
                                     bool expect_remote) {
  ThreadCtx t;
  auto base = co_await space.map_range(1 << 20);
  for (int i = 0; i < 256; ++i) {
    co_await space.write_u64(t, base + static_cast<VAddr>(i) * 8,
                             0xabc000u + static_cast<unsigned>(i));
  }
  for (int i = 0; i < 256; ++i) {
    auto v = co_await space.read_u64(t, base + static_cast<VAddr>(i) * 8);
    EXPECT_EQ(v, 0xabc000u + static_cast<unsigned>(i));
  }
  auto backing = co_await space.backing_of(base);
  if (expect_remote) {
    EXPECT_TRUE(node::has_prefix(backing));
    EXPECT_NE(node::node_of(backing), space.home());
    if (space.mode() == MemorySpace::Mode::kRemoteRegion) {
      // The bytes physically live in the donor's memory: read them straight
      // out of the donor's backing store at the granted local address.
      // (Swap modes keep functional bytes under a per-space pseudo key.)
      auto donor = node::node_of(backing);
      EXPECT_EQ(cluster.store().read_u64(donor, node::local_part(backing)),
                0xabc000u);
    }
  } else {
    EXPECT_FALSE(node::has_prefix(backing));
  }
  co_await space.sync(t);
}

TEST_F(SpaceTest, LocalModeKeepsDataLocal) {
  MemorySpace::Params p;
  p.mode = MemorySpace::Mode::kLocal;
  MemorySpace space(cluster_, 1, p);
  engine_.spawn(write_read_roundtrip(space, cluster_, false));
  engine_.run();
  EXPECT_EQ(cluster_.node(1).remote_accesses(), 0u);
}

TEST_F(SpaceTest, RemoteRegionPlacesDataOnDonor) {
  MemorySpace::Params p;
  p.mode = MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  MemorySpace space(cluster_, 1, p);
  engine_.spawn(write_read_roundtrip(space, cluster_, true));
  engine_.run();
  EXPECT_GT(cluster_.node(1).remote_accesses(), 0u);
  EXPECT_GT(cluster_.rmc(1).client_requests(), 0u);
}

TEST_F(SpaceTest, SwapModeRoundTrips) {
  MemorySpace::Params p;
  p.mode = MemorySpace::Mode::kRemoteSwap;
  p.swap.resident_limit_bytes = 16 * 4096;
  MemorySpace space(cluster_, 1, p);
  engine_.spawn(write_read_roundtrip(space, cluster_, true));
  engine_.run();
  EXPECT_GT(space.swapper()->faults(), 0u);
}

sim::Task<void> coherence_claim(Cluster& cluster, sim::Engine& engine,
                                std::uint64_t* probes_small,
                                std::uint64_t* probes_large) {
  // The headline claim: growing a region with borrowed memory must not add
  // coherence probes. Run the same access pattern over a small local
  // buffer and a large mostly-remote buffer and compare probe counts.
  ThreadCtx t;
  {
    MemorySpace::Params p;
    p.mode = MemorySpace::Mode::kRemoteRegion;
    MemorySpace small_space(cluster, 1, p);
    auto base = co_await small_space.map_range(1 << 20);
    const auto before = cluster.total_intra_node_probes();
    for (int i = 0; i < 2000; ++i) {
      co_await small_space.write_u64(t, base + static_cast<VAddr>(i) * 512, i);
    }
    co_await small_space.sync(t);
    *probes_small = cluster.total_intra_node_probes() - before;
  }
  {
    MemorySpace::Params p;
    p.mode = MemorySpace::Mode::kRemoteRegion;
    p.placement = os::RegionManager::Placement::kRemoteOnly;
    MemorySpace big_space(cluster, 1, p);
    auto base = co_await big_space.map_range(16 << 20);  // spans donors
    const auto before = cluster.total_intra_node_probes();
    for (int i = 0; i < 2000; ++i) {
      co_await big_space.write_u64(t, base + static_cast<VAddr>(i) * 8192, i);
    }
    co_await big_space.sync(t);
    *probes_large = cluster.total_intra_node_probes() - before;
  }
  (void)engine;
}

TEST_F(SpaceTest, CoherenceProbesIndependentOfRegionSize) {
  std::uint64_t probes_small = 99, probes_large = 99;
  engine_.spawn(
      coherence_claim(cluster_, engine_, &probes_small, &probes_large));
  engine_.run();
  // Single-threaded process: zero probes in both cases, no matter how much
  // memory is borrowed. This is "getting rid of coherency overhead".
  EXPECT_EQ(probes_small, 0u);
  EXPECT_EQ(probes_large, 0u);
}

sim::Task<void> quantum_check(MemorySpace& space, sim::Engine& engine) {
  ThreadCtx t;
  auto base = co_await space.map_range(1 << 16);
  co_await space.sync(t);
  const sim::Time start = engine.now();
  // 1000 cache hits of ~3 ns and 1000 * 10 ns compute: time must advance
  // by roughly the sum even though hits avoid the event queue.
  co_await space.write_u64(t, base, 1);  // warm the line
  for (int i = 0; i < 1000; ++i) {
    t.compute(sim::ns(10));
    co_await space.read_u64(t, base);
  }
  co_await space.sync(t);
  const sim::Time elapsed = engine.now() - start;
  EXPECT_GE(elapsed, sim::ns(13 * 1000 - 100));
  EXPECT_LE(elapsed, sim::us(20));
}

TEST_F(SpaceTest, PendingTimeAccountingIsHonest) {
  MemorySpace::Params p;
  p.mode = MemorySpace::Mode::kLocal;
  MemorySpace space(cluster_, 1, p);
  engine_.spawn(quantum_check(space, engine_));
  engine_.run();
}

sim::Task<void> oom_check(MemorySpace& space) {
  bool threw = false;
  try {
    co_await space.map_range(ht::PAddr{4} << 30);  // larger than the cluster
  } catch (const std::bad_alloc&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST_F(SpaceTest, ClusterWideExhaustionThrowsBadAlloc) {
  MemorySpace::Params p;
  p.mode = MemorySpace::Mode::kRemoteRegion;
  MemorySpace space(cluster_, 1, p);
  engine_.spawn(oom_check(space));
  engine_.run();
}

TEST_F(SpaceTest, UnmappedAccessThrows) {
  MemorySpace::Params p;
  p.mode = MemorySpace::Mode::kLocal;
  MemorySpace space(cluster_, 1, p);
  engine_.spawn([](MemorySpace& s) -> sim::Task<void> {
    ThreadCtx t;
    co_await s.read_u64(t, 0xdead0000);
  }(space));
  EXPECT_THROW(engine_.run(), std::out_of_range);
}

// ---- RemoteAllocator ----

sim::Task<void> alloc_roundtrip(RemoteAllocator& alloc) {
  auto a = co_await alloc.gmalloc(100);
  auto b = co_await alloc.gmalloc(100);
  EXPECT_NE(a, b);
  EXPECT_GE(b, a + 128);  // size class of 100 is 128
  EXPECT_EQ(alloc.live_allocations(), 2u);

  alloc.gfree(a);
  EXPECT_EQ(alloc.live_allocations(), 1u);
  auto c = co_await alloc.gmalloc(90);  // same class: reuses a's block
  EXPECT_EQ(c, a);

  EXPECT_THROW(alloc.gfree(0xdeadbeef), std::logic_error);
  alloc.gfree(RemoteAllocator::kNull);  // no-op

  auto z = co_await alloc.gmalloc(0);
  EXPECT_EQ(z, RemoteAllocator::kNull);

  // Huge allocation gets its own arena.
  auto big = co_await alloc.gmalloc(100 << 20);
  EXPECT_NE(big, RemoteAllocator::kNull);
}

TEST_F(SpaceTest, AllocatorClassesAndReuse) {
  MemorySpace::Params p;
  p.mode = MemorySpace::Mode::kRemoteRegion;
  MemorySpace space(cluster_, 1, p);
  RemoteAllocator alloc(space);
  engine_.spawn(alloc_roundtrip(alloc));
  engine_.run();
}

sim::Task<void> pinned_alloc(RemoteAllocator& alloc, MemorySpace& space) {
  auto ptr = co_await alloc.gmalloc_on(4096, 3);
  auto backing = co_await space.backing_of(ptr);
  EXPECT_EQ(node::node_of(backing), 3);
}

TEST_F(SpaceTest, AllocatorPinsDonor) {
  MemorySpace::Params p;
  p.mode = MemorySpace::Mode::kRemoteRegion;
  MemorySpace space(cluster_, 1, p);
  // Small arenas: the test cluster's donors hold tens of MiB, not GiB.
  RemoteAllocator alloc(space,
                        RemoteAllocator::Params{.arena_bytes = 1 << 20});
  engine_.spawn(pinned_alloc(alloc, space));
  engine_.run();
}

// ---- Runner ----

sim::Task<void> sleep_for(sim::Engine& e, sim::Time d) { co_await e.delay(d); }

TEST(Runner, MeasuresLastCompletion) {
  sim::Engine e;
  Runner r(e);
  r.spawn(sleep_for(e, sim::us(3)));
  r.spawn(sleep_for(e, sim::us(7)));
  r.spawn(sleep_for(e, sim::us(5)));
  EXPECT_EQ(r.run_all(), sim::us(7));
}

TEST(Runner, IntegratesWithWorkloads) {
  sim::Engine e;
  Cluster cluster(e, test::small_config());
  MemorySpace::Params p;
  p.mode = MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  MemorySpace space(cluster, 1, p);

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 1 << 20;
  rp.accesses_per_thread = 500;
  workloads::RandomAccess bench(space, rp);

  Runner setup(e);
  setup.spawn(bench.setup({2}));
  setup.run_all();

  Runner r(e);
  r.spawn(bench.thread_fn(0, 0));
  r.spawn(bench.thread_fn(1, 1));
  const sim::Time elapsed = r.run_all();
  EXPECT_GT(elapsed, 0u);
  EXPECT_EQ(bench.errors(), 0u);
  EXPECT_EQ(bench.total_reads(), 1000u);
}

}  // namespace
}  // namespace ms::core
