// Tests for the remote-swap/disk-swap baseline (fault mechanics, LRU,
// Eq. 1 structure) and the coherent-DSM baseline (directory behaviour,
// inter-node traffic scaling).
#include <gtest/gtest.h>

#include <set>

#include "core/memory_space.hpp"
#include "dsm/directory_dsm.hpp"
#include "swap/disk_model.hpp"
#include "swap/swap_manager.hpp"
#include "test_util.hpp"

namespace ms {
namespace {

core::MemorySpace::Params swap_params(std::uint64_t resident_bytes) {
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteSwap;
  p.swap.resident_limit_bytes = resident_bytes;
  return p;
}

sim::Task<void> touch_pages(core::MemorySpace& space, core::VAddr base,
                            int pages, bool write, int stride_pages = 1) {
  core::ThreadCtx t;
  for (int i = 0; i < pages; ++i) {
    const core::VAddr va =
        base + static_cast<core::VAddr>(i) * 4096 *
                   static_cast<core::VAddr>(stride_pages);
    if (write) {
      co_await space.write_u64(t, va, 0x5a5a0000u + static_cast<unsigned>(i));
    } else {
      co_await space.read_u64(t, va);
    }
  }
  co_await space.sync(t);
}

class SwapTest : public ::testing::Test {
 protected:
  SwapTest() : cluster_(engine_, test::small_config()) {}
  sim::Engine engine_;
  core::Cluster cluster_;
};

TEST_F(SwapTest, FirstTouchFaultsOncePerPage) {
  core::MemorySpace space(cluster_, 1, swap_params(1 << 20));
  sim::Task<core::VAddr> m = space.map_range(64 * 4096);
  core::VAddr base = 0;
  engine_.spawn([](sim::Task<core::VAddr> t, core::VAddr* out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(m), &base));
  engine_.run();

  engine_.spawn(touch_pages(space, base, 64, false));
  engine_.run();
  EXPECT_EQ(space.swapper()->faults(), 64u);

  // Re-touching resident pages faults no further.
  engine_.spawn(touch_pages(space, base, 64, false));
  engine_.run();
  EXPECT_EQ(space.swapper()->faults(), 64u);
}

TEST_F(SwapTest, LruEvictionAndDirtyWriteback) {
  // Room for 8 resident pages.
  core::MemorySpace space(cluster_, 1, swap_params(8 * 4096));
  core::VAddr base = 0;
  engine_.spawn([](core::MemorySpace& s, core::VAddr* out) -> sim::Task<void> {
    *out = co_await s.map_range(32 * 4096);
  }(space, &base));
  engine_.run();

  engine_.spawn(touch_pages(space, base, 16, true));
  engine_.run();
  auto& sw = *space.swapper();
  EXPECT_EQ(sw.faults(), 16u);
  EXPECT_EQ(sw.evictions(), 8u);
  EXPECT_EQ(sw.dirty_writebacks(), 8u);  // every evicted page was written
  EXPECT_EQ(sw.resident_pages(), 8u);

  // Pages 8..15 are resident; page 0 is not.
  engine_.spawn(touch_pages(space, base + 15 * 4096, 1, false));
  engine_.run();
  EXPECT_EQ(sw.faults(), 16u);
  engine_.spawn(touch_pages(space, base, 1, false));
  engine_.run();
  EXPECT_EQ(sw.faults(), 17u);
}

TEST_F(SwapTest, DataSurvivesEvictionAndReload) {
  core::MemorySpace space(cluster_, 1, swap_params(4 * 4096));
  core::VAddr base = 0;
  engine_.spawn([](core::MemorySpace& s, core::VAddr* out) -> sim::Task<void> {
    *out = co_await s.map_range(32 * 4096);
    core::ThreadCtx t;
    for (int i = 0; i < 32; ++i) {
      co_await s.write_u64(t, *out + static_cast<core::VAddr>(i) * 4096, 1000u + static_cast<unsigned>(i));
    }
    // Everything but the last 4 pages has been evicted; read it all back.
    for (int i = 0; i < 32; ++i) {
      auto v = co_await s.read_u64(t, *out + static_cast<core::VAddr>(i) * 4096);
      EXPECT_EQ(v, 1000u + static_cast<unsigned>(i));
    }
    co_await s.sync(t);
  }(space, &base));
  engine_.run();
  EXPECT_GT(space.swapper()->faults(), 32u);  // reloads happened
}

TEST_F(SwapTest, FreshPagesAreMinorBackedPagesAreMajor) {
  // A fresh (never written-out) page zero-fills cheaply; a page with data
  // in the backend pays the full transfer. Poked pages count as data.
  core::MemorySpace space(cluster_, 1, swap_params(8 * 4096));
  core::VAddr base = 0;
  engine_.spawn([](core::MemorySpace& s, core::VAddr* out) -> sim::Task<void> {
    *out = co_await s.map_range(32 * 4096);
    core::ThreadCtx t;
    for (int i = 0; i < 32; ++i) {
      co_await s.read_u64(t, *out + static_cast<core::VAddr>(i) * 4096);
    }
    co_await s.sync(t);
  }(space, &base));
  engine_.run();
  // All fresh: every fault minor, evictions clean, nothing written back.
  EXPECT_EQ(space.swapper()->faults(), 32u);
  EXPECT_EQ(space.swapper()->major_faults(), 0u);
  EXPECT_EQ(space.swapper()->dirty_writebacks(), 0u);

  // But once evicted, the *same* pages reload as major faults.
  engine_.spawn([](core::MemorySpace& s, core::VAddr b) -> sim::Task<void> {
    core::ThreadCtx t;
    for (int i = 0; i < 8; ++i) {
      co_await s.read_u64(t, b + static_cast<core::VAddr>(i) * 4096);
    }
    co_await s.sync(t);
  }(space, base));
  engine_.run();
  EXPECT_GT(space.swapper()->major_faults(), 0u);
}

TEST_F(SwapTest, FaultCostMatchesEquationOne) {
  // Eq. 1: T = A_total * L_local + (A_total / A_page) * L_swap.
  // Poke data into more pages than fit (build phase), then read one word
  // per page: every page beyond the resident tail is a major fault whose
  // cost must sit in the NBD-over-GigE class (tens of microseconds).
  core::MemorySpace space(cluster_, 1, swap_params(8 * 4096));
  core::VAddr base = 0;
  sim::Time first_pass = 0, second_pass = 0;
  engine_.spawn([](core::MemorySpace& s, core::VAddr* out, sim::Engine& e,
                   sim::Time* t1, sim::Time* t2) -> sim::Task<void> {
    *out = co_await s.map_range(32 * 4096);
    for (int i = 0; i < 32; ++i) {
      s.poke_pod<std::uint64_t>(*out + static_cast<core::VAddr>(i) * 4096,
                                7u);
    }
    core::ThreadCtx t;
    sim::Time mark = e.now();
    for (int i = 0; i < 24; ++i) {  // pages 0..23 were pushed to the backend
      co_await s.read_u64(t, *out + static_cast<core::VAddr>(i) * 4096);
    }
    co_await s.sync(t);
    *t1 = e.now() - mark;
    mark = e.now();
    // Pages 16..23 are the freshest residents now: re-reading them is
    // the A_total * L_local term only.
    for (int i = 16; i < 24; ++i) {
      co_await s.read_u64(t, *out + static_cast<core::VAddr>(i) * 4096);
    }
    co_await s.sync(t);
    *t2 = e.now() - mark;
  }(space, &base, engine_, &first_pass, &second_pass));
  engine_.run();
  EXPECT_EQ(space.swapper()->major_faults(), 24u);
  const double per_fault = static_cast<double>(first_pass) / 24.0;
  EXPECT_GT(per_fault, static_cast<double>(sim::us(30)));
  EXPECT_LT(per_fault, static_cast<double>(sim::us(400)));
  EXPECT_GT(first_pass, 20 * second_pass);
}

TEST_F(SwapTest, DiskBackendIsOrdersOfMagnitudeSlower) {
  core::MemorySpace::Params disk_p = swap_params(4 * 4096);
  disk_p.mode = core::MemorySpace::Mode::kDiskSwap;
  core::MemorySpace disk_space(cluster_, 1, disk_p);
  core::MemorySpace net_space(cluster_, 1, swap_params(4 * 4096));

  // Poke data into 16 pages (only 4 stay resident), then read them all:
  // twelve-plus major faults against each backend.
  auto measure = [this](core::MemorySpace& s) {
    sim::Time out = 0;
    engine_.spawn([](core::MemorySpace& space, sim::Engine& e,
                     sim::Time* result) -> sim::Task<void> {
      auto base = co_await space.map_range(16 * 4096);
      for (int i = 0; i < 16; ++i) {
        space.poke_pod<std::uint64_t>(
            base + static_cast<core::VAddr>(i) * 4096, 1u);
      }
      const sim::Time start = e.now();
      co_await touch_pages(space, base, 16, false);
      *result = e.now() - start;
    }(s, engine_, &out));
    engine_.run();
    return out;
  };
  const sim::Time disk_time = measure(disk_space);
  const sim::Time net_time = measure(net_space);
  // The paper's premise: remote memory clearly beats disk (Sec. II cites
  // remote-vs-disk studies): ~8 ms positioning vs ~160 us per page.
  EXPECT_GT(disk_time, 30 * net_time);
}

TEST(DiskModel, SeekPlusTransferAndSpindleSerialization) {
  sim::Engine e;
  swap::DiskModel disk(e, swap::DiskModel::Params{});
  e.spawn([](swap::DiskModel& d) -> sim::Task<void> {
    co_await d.transfer(4096);
  }(disk));
  e.run();
  const sim::Time one = e.now();
  EXPECT_GT(one, sim::ms_(7));

  sim::Engine e2;
  swap::DiskModel disk2(e2, swap::DiskModel::Params{});
  for (int i = 0; i < 2; ++i) {
    e2.spawn([](swap::DiskModel& d) -> sim::Task<void> {
      co_await d.transfer(4096);
    }(disk2));
  }
  e2.run();
  EXPECT_EQ(e2.now(), 2 * one);  // single spindle
}

// ---- Coherent DSM baseline ----

class DsmTest : public ::testing::Test {
 protected:
  DsmTest()
      : fabric_(engine_, noc::Topology::make("mesh2d", 4), {}),
        dsm_(engine_, fabric_,
             [this](ht::NodeId, ht::PAddr, std::uint32_t, bool,
                    sim::TraceContext) -> sim::Task<void> {
               ++mem_accesses_;
               return mem_delay();
             },
             dsm::DirectoryDsm::Params{.num_nodes = 4}) {}

  sim::Task<void> mem_delay() { co_await engine_.delay(sim::ns(60)); }

  sim::Engine engine_;
  noc::Fabric fabric_;
  dsm::DirectoryDsm dsm_;
  int mem_accesses_ = 0;
};

sim::Task<void> dsm_access(dsm::DirectoryDsm& d, ht::NodeId n, ht::PAddr a,
                           bool w) {
  co_await d.access(n, a, 8, w);
}

TEST_F(DsmTest, RepeatedReadsHitAfterFirstMiss) {
  engine_.spawn(dsm_access(dsm_, 1, 0x1000, false));
  engine_.run();
  EXPECT_EQ(dsm_.misses(), 1u);
  engine_.spawn(dsm_access(dsm_, 1, 0x1000, false));
  engine_.run();
  EXPECT_EQ(dsm_.hits(), 1u);
  EXPECT_EQ(dsm_.misses(), 1u);
}

TEST_F(DsmTest, WriteInvalidatesEveryRemoteSharer) {
  for (ht::NodeId n = 1; n <= 4; ++n) {
    engine_.spawn(dsm_access(dsm_, n, 0x2000, false));
    engine_.run();
  }
  const auto msgs_before = dsm_.coherence_messages();
  engine_.spawn(dsm_access(dsm_, 1, 0x2000, true));
  engine_.run();
  EXPECT_EQ(dsm_.invalidations(), 3u);
  // Invalidation traffic: probe + ack per sharer, plus request/response.
  EXPECT_GE(dsm_.coherence_messages() - msgs_before, 8u);
}

TEST_F(DsmTest, InterNodeTrafficGrowsWithSharers) {
  // Measure write-miss cost with 2 vs 4 sharers; more sharers = more time.
  auto measure = [&](int sharers, ht::PAddr line) {
    for (int n = 1; n <= sharers; ++n) {
      engine_.spawn(dsm_access(dsm_, static_cast<ht::NodeId>(n), line, false));
      engine_.run();
    }
    const sim::Time start = engine_.now();
    engine_.spawn(dsm_access(dsm_, 1, line, true));
    engine_.run();
    return engine_.now() - start;
  };
  const sim::Time two = measure(2, 0x100);
  const sim::Time four = measure(4, 0x40000);
  EXPECT_GT(four, two);
}

TEST_F(DsmTest, DirtyReadForwardsToOwner) {
  engine_.spawn(dsm_access(dsm_, 2, 0x3000, true));
  engine_.run();
  const auto probes_before = dsm_.probes_sent();
  engine_.spawn(dsm_access(dsm_, 3, 0x3000, false));
  engine_.run();
  EXPECT_EQ(dsm_.probes_sent(), probes_before + 1);
}

TEST_F(DsmTest, HomeInterleavesUnprefixedLines) {
  std::set<ht::NodeId> homes;
  for (int i = 0; i < 8; ++i) {
    homes.insert(dsm_.home_of(static_cast<ht::PAddr>(i) * 64));
  }
  EXPECT_EQ(homes.size(), 4u);
  EXPECT_EQ(dsm_.home_of(node::make_remote(3, 0x1000)), 3);
}

}  // namespace
}  // namespace ms
