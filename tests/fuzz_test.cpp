#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "node/address_map.hpp"
#include "os/reservation.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace ms {
namespace {

bool has_violation(const fuzz::EpisodeResult& r, const std::string& name) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const sim::InvariantViolation& v) {
                       return v.name == name;
                     });
}

std::string violation_names(const fuzz::EpisodeResult& r) {
  std::string out;
  for (const auto& v : r.violations) out += v.name + " [" + v.detail + "] ";
  return out;
}

// ---------------------------------------------------------------------------
// Engine tie-fuzz: seeded perturbation of same-timestamp event order.
// ---------------------------------------------------------------------------

std::vector<int> same_timestamp_order(std::uint64_t tie_seed, bool fuzz_on) {
  sim::Engine engine;
  if (fuzz_on) engine.set_tie_fuzz(tie_seed);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    engine.schedule(sim::ns(10), [&order, i] { order.push_back(i); });
  }
  engine.run();
  return order;
}

TEST(TieFuzz, OffPreservesFifoOrder) {
  const std::vector<int> order = same_timestamp_order(0, /*fuzz_on=*/false);
  std::vector<int> fifo(16);
  for (int i = 0; i < 16; ++i) fifo[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(order, fifo);
}

TEST(TieFuzz, SameSeedSameOrder) {
  const auto a = same_timestamp_order(42, true);
  const auto b = same_timestamp_order(42, true);
  EXPECT_EQ(a, b);
}

TEST(TieFuzz, PerturbsTiesDeterministically) {
  // Some seed must produce a non-FIFO permutation of the 16 tied events
  // (16 coin flips; all-tails for every seed would mean the hook is dead).
  std::vector<int> fifo(16);
  for (int i = 0; i < 16; ++i) fifo[static_cast<std::size_t>(i)] = i;
  bool perturbed = false;
  for (std::uint64_t seed = 1; seed <= 8 && !perturbed; ++seed) {
    auto order = same_timestamp_order(seed, true);
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, fifo);  // a permutation: nothing lost or duplicated
    perturbed = order != fifo;
  }
  EXPECT_TRUE(perturbed);
}

TEST(TieFuzz, DistinctTimestampsKeepTimeOrder) {
  sim::Engine engine;
  engine.set_tie_fuzz(7);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    engine.schedule(sim::ns(static_cast<std::uint64_t>(8 - i)),
                    [&order, i] { order.push_back(i); });
  }
  engine.run();
  const std::vector<int> by_time = {7, 6, 5, 4, 3, 2, 1, 0};
  EXPECT_EQ(order, by_time);
}

// ---------------------------------------------------------------------------
// Knob plumbing
// ---------------------------------------------------------------------------

TEST(FuzzKnobs, SetResetRoundTrip) {
  fuzz::Knobs k;
  EXPECT_TRUE(k.non_default().empty());
  k.set("nodes", "5");
  k.set("topology", "star");
  k.set("link_error_rate", "0.001");
  EXPECT_EQ(k.nodes, 5);
  EXPECT_EQ(k.topology, "star");
  EXPECT_DOUBLE_EQ(k.link_error_rate, 0.001);
  EXPECT_EQ(k.non_default().size(), 3u);

  // Repro line -> fresh knobs -> identical repro line.
  fuzz::Knobs k2;
  for (const std::string& kv : k.non_default()) {
    const auto eq = kv.find('=');
    k2.set(kv.substr(0, eq), kv.substr(eq + 1));
  }
  EXPECT_EQ(k2.repro_args(), k.repro_args());

  EXPECT_TRUE(k.reset("topology"));
  EXPECT_EQ(k.topology, "ring");
  EXPECT_FALSE(k.reset("no_such_knob"));
  EXPECT_THROW(k.set("no_such_knob", "1"), std::invalid_argument);
}

TEST(FuzzKnobs, GeneratorIsDeterministicPerSeed) {
  sim::Rng a(123), b(123), c(124);
  const fuzz::Knobs ka = fuzz::Knobs::generate(a);
  const fuzz::Knobs kb = fuzz::Knobs::generate(b);
  const fuzz::Knobs kc = fuzz::Knobs::generate(c);
  EXPECT_EQ(ka.repro_args(), kb.repro_args());
  // Different seeds should (for this pair) pick different configurations.
  EXPECT_NE(ka.repro_args(), kc.repro_args());
}

// ---------------------------------------------------------------------------
// Clean episodes: no mutation => no violations, and deterministic per seed.
// ---------------------------------------------------------------------------

TEST(FuzzEpisode, CleanEpisodesHaveNoViolations) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xc0ffee);
    const fuzz::Knobs k = fuzz::Knobs::generate(rng);
    fuzz::EpisodeOptions opt;
    opt.seed = seed;
    const fuzz::EpisodeResult r = fuzz::run_episode(k, opt);
    EXPECT_TRUE(r.violations.empty())
        << "seed " << seed << ": " << violation_names(r);
    EXPECT_GT(r.events, 0u);
    EXPECT_GT(r.checks, 0u);  // epoch sweeps + the drain sweep ran
  }
}

TEST(FuzzEpisode, SameSeedIsReproducible) {
  sim::Rng rng(0xabcdef);
  const fuzz::Knobs k = fuzz::Knobs::generate(rng);
  fuzz::EpisodeOptions opt;
  opt.seed = 9;
  const fuzz::EpisodeResult a = fuzz::run_episode(k, opt);
  const fuzz::EpisodeResult b = fuzz::run_episode(k, opt);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

// ---------------------------------------------------------------------------
// Injected faults: each seeded mutation must trip exactly the checker that
// owns the broken invariant.
// ---------------------------------------------------------------------------

TEST(FuzzInjection, LeakedCreditTripsLinkCredits) {
  fuzz::Knobs k;  // default 2-node ring, random reads
  fuzz::EpisodeOptions opt;
  opt.seed = 5;
  opt.mutation = fuzz::Mutation::kLeakCredit;
  const fuzz::EpisodeResult r = fuzz::run_episode(k, opt);
  EXPECT_TRUE(has_violation(r, "link.credits")) << violation_names(r);
}

TEST(FuzzInjection, PhantomRequestTripsPacketConservation) {
  fuzz::Knobs k;
  fuzz::EpisodeOptions opt;
  opt.seed = 5;
  opt.mutation = fuzz::Mutation::kPhantomRequest;
  const fuzz::EpisodeResult r = fuzz::run_episode(k, opt);
  EXPECT_TRUE(has_violation(r, "packet.conservation")) << violation_names(r);
}

TEST(FuzzInjection, ShrunkSwapLimitTripsResidentBound) {
  fuzz::Knobs k;
  k.set("mode", "1");           // remote swap
  k.set("buffer_kib", "64");    // 16 pages over an 8-page resident limit
  k.set("resident_kib", "32");
  k.set("accesses", "400");
  fuzz::EpisodeOptions opt;
  opt.seed = 5;
  opt.epoch = sim::us(10);
  opt.mutation = fuzz::Mutation::kShrinkSwapLimit;
  const fuzz::EpisodeResult r = fuzz::run_episode(k, opt);
  EXPECT_TRUE(has_violation(r, "swap.resident")) << violation_names(r);
}

TEST(FuzzInjection, SkipDowngradeTripsDirectoryAndMinimizes) {
  // Two cores hammering a small shared read/write buffer: a read miss on a
  // modified line must downgrade the owner; the mutation skips that, so the
  // directory ends up with an owner coexisting with other sharers.
  fuzz::Knobs k;
  k.set("cores_per_socket", "2");
  k.set("threads", "2");
  k.set("workload", "2");
  k.set("buffer_kib", "16");
  k.set("accesses", "400");
  fuzz::EpisodeOptions opt;
  opt.seed = 7;
  opt.epoch = sim::us(5);
  opt.mutation = fuzz::Mutation::kSkipDowngrade;
  const fuzz::EpisodeResult r = fuzz::run_episode(k, opt);
  ASSERT_TRUE(has_violation(r, "msi.directory")) << violation_names(r);

  // Auto-minimization must keep the failure alive while shrinking the
  // configuration to a handful of non-default knobs.
  const fuzz::MinimizeResult m = fuzz::minimize(k, opt, "msi.directory");
  const fuzz::EpisodeResult again = fuzz::run_episode(m.knobs, opt);
  EXPECT_TRUE(has_violation(again, "msi.directory"))
      << violation_names(again);
  EXPECT_LE(m.knobs.non_default().size(), 4u)
      << "minimized repro: " << m.knobs.repro_args();
  EXPECT_GT(m.runs, 0);
}

TEST(FuzzInjection, LostPageOnMigrateTripsBrokerTransitAndMinimizes) {
  // The classic live-migration bug: copy done, bookkeeping done, but the
  // page table never retargeted. The broker.transit invariant must catch
  // it, and the minimizer must shrink the repro to a handful of knobs.
  fuzz::Knobs k;
  k.set("accesses", "50");
  fuzz::EpisodeOptions opt;
  opt.seed = 4;
  opt.mutation = fuzz::Mutation::kLostPageOnMigrate;
  const fuzz::EpisodeResult r = fuzz::run_episode(k, opt);
  ASSERT_TRUE(has_violation(r, "broker.transit")) << violation_names(r);

  const fuzz::MinimizeResult m = fuzz::minimize(k, opt, "broker.transit");
  const fuzz::EpisodeResult again = fuzz::run_episode(m.knobs, opt);
  EXPECT_TRUE(has_violation(again, "broker.transit"))
      << violation_names(again);
  EXPECT_LE(m.knobs.non_default().size(), 4u)
      << "minimized repro: " << m.knobs.repro_args();
}

// ---------------------------------------------------------------------------
// Broker episodes: hot-remove-under-load and the broker knob surface.
// ---------------------------------------------------------------------------

TEST(FuzzEpisode, HotRemoveUnderLoadEpisodeIsViolationFree) {
  // Evacuate donor 2 mid-episode while migrations and the workload keep
  // running: the broker.evacuated / broker.leases / region invariants all
  // stay green and the episode drains cleanly.
  fuzz::Knobs k;
  k.set("nodes", "4");
  k.set("accesses", "400");
  k.set("migrate_period_us", "20");
  k.set("evacuate_at_us", "60");
  fuzz::EpisodeOptions opt;
  opt.seed = 13;
  opt.epoch = sim::us(10);
  const fuzz::EpisodeResult r = fuzz::run_episode(k, opt);
  EXPECT_TRUE(r.violations.empty()) << violation_names(r);
  EXPECT_GT(r.events, 0u);
}

TEST(FuzzEpisode, PressureRebalanceEpisodeIsViolationFree) {
  fuzz::Knobs k;
  k.set("accesses", "400");
  k.set("pressure_pct", "75");
  fuzz::EpisodeOptions opt;
  opt.seed = 21;
  const fuzz::EpisodeResult r = fuzz::run_episode(k, opt);
  EXPECT_TRUE(r.violations.empty()) << violation_names(r);
}

TEST(FuzzKnobs, GeneratorCoversBrokerKnobs) {
  // The generator must actually explore the broker surface: across the
  // same seed derivation the campaign uses, some episodes get migrations,
  // pressure policy, or a mid-episode evacuation.
  int migrate = 0, pressure = 0, evacuate = 0;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xc0ffee);
    const fuzz::Knobs k = fuzz::Knobs::generate(rng);
    if (k.migrate_period_us > 0) ++migrate;
    if (k.pressure_pct > 0) ++pressure;
    if (k.evacuate_at_us > 0) ++evacuate;
  }
  EXPECT_GT(migrate, 0);
  EXPECT_GT(pressure, 0);
  EXPECT_GT(evacuate, 0);
}

// ---------------------------------------------------------------------------
// Campaign plumbing: a seeded mutation campaign reports the offending seed
// and emits a repro line that replays to the same violation.
// ---------------------------------------------------------------------------

TEST(FuzzCampaign, ReportsFailingSeedsAndReproLines) {
  fuzz::CampaignOptions opt;
  opt.episodes = 2;
  opt.first_seed = 11;
  opt.mutation = fuzz::Mutation::kPhantomRequest;
  opt.minimize = false;  // keep the test fast; minimization covered above
  const fuzz::CampaignResult res = fuzz::run_campaign(opt, nullptr);
  EXPECT_EQ(res.episodes_run, 2u);
  EXPECT_EQ(res.failing, 2u);
  ASSERT_EQ(res.failing_seeds.size(), 2u);
  EXPECT_EQ(res.failing_seeds[0], 11u);
  ASSERT_EQ(res.repro_lines.size(), 2u);
  EXPECT_NE(res.repro_lines[0].find("seed=11"), std::string::npos);
  EXPECT_NE(res.repro_lines[0].find("mutation=phantom-request"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Property test: reservation hot-remove/hot-add round trips under
// randomized interleavings never leak or double-grant a frame range.
// ---------------------------------------------------------------------------

struct ReservationModel {
  // Reference model: live grants per donor, checked for overlap.
  struct Live {
    ht::NodeId donor;
    ht::PAddr base;  ///< donor-local
    ht::PAddr bytes;
  };
  std::vector<Live> live;
  int double_grants = 0;
  int unpinned_grants = 0;

  void on_grant(core::Cluster& cl, const os::ReservationService::Grant& g) {
    const ht::PAddr base = node::local_part(g.prefixed_base);
    for (const Live& l : live) {
      if (l.donor == g.donor && base < l.base + l.bytes &&
          l.base < base + g.bytes) {
        ++double_grants;
      }
    }
    os::FrameAllocator& a = cl.allocator(g.donor);
    if (!a.is_pinned(base) || !a.is_allocated(base + g.bytes - 1)) {
      ++unpinned_grants;
    }
    live.push_back({g.donor, base, g.bytes});
  }

  void on_release(const os::ReservationService::Grant& g) {
    const ht::PAddr base = node::local_part(g.prefixed_base);
    auto it = std::find_if(live.begin(), live.end(), [&](const Live& l) {
      return l.donor == g.donor && l.base == base && l.bytes == g.bytes;
    });
    ASSERT_NE(it, live.end());
    live.erase(it);
  }
};

sim::Task<void> borrower_actor(sim::Engine& engine, core::Cluster& cluster,
                               ReservationModel& model, ht::NodeId requester,
                               std::uint64_t seed, int rounds) {
  sim::Rng rng(seed);
  std::vector<os::ReservationService::Grant> held;
  for (int i = 0; i < rounds; ++i) {
    co_await engine.delay(sim::ns(100 + rng.below(2000)));
    if (!held.empty() && rng.chance(0.4)) {
      const std::size_t pick = rng.below(held.size());
      const auto g = held[pick];
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
      // Drop the grant from the model *before* awaiting the release: the
      // donor frees the range when it processes the request, so it may
      // legitimately re-grant it before our ack comes back.
      model.on_release(g);
      co_await cluster.reservation().release(requester, g);
      continue;
    }
    const ht::NodeId donor = static_cast<ht::NodeId>(
        2 + rng.below(static_cast<std::uint64_t>(cluster.num_nodes() - 1)));
    const ht::PAddr bytes = ht::PAddr{4096} << rng.below(8);  // 4K..512K
    auto g = co_await cluster.reservation().reserve(requester, donor, bytes);
    if (g.has_value()) {
      model.on_grant(cluster, *g);
      held.push_back(*g);
    }
  }
  for (const auto& g : held) {
    model.on_release(g);
    co_await cluster.reservation().release(requester, g);
  }
}

sim::Task<void> hotplug_actor(sim::Engine& engine, core::Cluster& cluster,
                              ht::NodeId victim, std::uint64_t seed,
                              int rounds) {
  sim::Rng rng(seed);
  os::FrameAllocator& alloc = cluster.allocator(victim);
  for (int i = 0; i < rounds; ++i) {
    co_await engine.delay(sim::ns(300 + rng.below(3000)));
    // Pick a free range (no awaits between the pick and the removal, so the
    // snapshot cannot go stale) and yank it from the pool.
    std::vector<std::pair<ht::PAddr, ht::PAddr>> free_ranges;
    alloc.for_each_free_range([&](ht::PAddr base, ht::PAddr bytes) {
      free_ranges.emplace_back(base, bytes);
    });
    if (free_ranges.empty()) continue;
    const auto [base, span] = free_ranges[rng.below(free_ranges.size())];
    const ht::PAddr bytes =
        std::min<ht::PAddr>(span, ht::PAddr{4096} << rng.below(9));
    if (!cluster.reservation().removable(victim, base, bytes)) continue;
    // The snapshot is same-event, so the removal must succeed (gtest
    // ASSERTs cannot run in coroutines — they expand to a plain `return`).
    const bool removed = alloc.hot_remove(base, bytes);
    EXPECT_TRUE(removed);
    if (!removed) continue;
    // Hold the range out of the pool across other actors' turns, then
    // return it: a remove/add round trip must be lossless.
    co_await engine.delay(sim::ns(500 + rng.below(5000)));
    alloc.hot_add(base, bytes);
  }
}

TEST(ReservationProperty, HotPlugRoundTripNeverLeaksOrDoubleGrants) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    sim::Engine engine;
    engine.set_tie_fuzz(seed);  // perturb actor interleavings per seed
    core::Cluster cluster(engine, test::small_config(4));

    std::vector<ht::PAddr> total0, free0;
    for (int n = 1; n <= 4; ++n) {
      total0.push_back(cluster.allocator(n).total_bytes());
      free0.push_back(cluster.allocator(n).free_bytes());
    }

    ReservationModel model;
    engine.spawn(borrower_actor(engine, cluster, model, 1, seed * 3 + 1, 20));
    engine.spawn(borrower_actor(engine, cluster, model, 2, seed * 3 + 2, 20));
    engine.spawn(hotplug_actor(engine, cluster, 3, seed * 3 + 3, 12));
    engine.spawn(hotplug_actor(engine, cluster, 4, seed * 3 + 4, 12));
    engine.run();
    ASSERT_EQ(engine.live_processes(), 0) << "actors deadlocked, seed "
                                          << seed;

    EXPECT_EQ(model.double_grants, 0) << "seed " << seed;
    EXPECT_EQ(model.unpinned_grants, 0) << "seed " << seed;
    EXPECT_TRUE(model.live.empty()) << "seed " << seed;
    for (int n = 1; n <= 4; ++n) {
      os::FrameAllocator& a = cluster.allocator(n);
      EXPECT_EQ(a.validate(), "") << "node " << n << ", seed " << seed;
      EXPECT_EQ(a.total_bytes(), total0[static_cast<std::size_t>(n - 1)])
          << "node " << n << " leaked pool bytes, seed " << seed;
      EXPECT_EQ(a.free_bytes(), free0[static_cast<std::size_t>(n - 1)])
          << "node " << n << " leaked frames, seed " << seed;
    }
  }
}

}  // namespace
}  // namespace ms
