// PR-gate smoke sweep: 64 fixed seeds through the randomized
// model-checking harness (random cluster configuration + workload mix per
// seed, full invariant set armed, engine tie-fuzz on). The seed list is
// frozen so the sweep is byte-for-byte deterministic across machines; the
// nightly CI campaign explores fresh seeds at 200+ episodes.
#include <gtest/gtest.h>

#include <sstream>

#include "fuzz/fuzz.hpp"

namespace ms {
namespace {

TEST(FuzzSmoke, SixtyFourSeedSweepIsViolationFree) {
  fuzz::CampaignOptions opt;
  opt.seeds = {
      1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15, 16,
      17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32,
      33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48,
      49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 63, 64,
  };
  opt.minimize = false;  // nothing should fail; keep the gate fast
  std::ostringstream log;
  const fuzz::CampaignResult res = fuzz::run_campaign(opt, &log);
  EXPECT_EQ(res.episodes_run, 64u);
  EXPECT_EQ(res.failing, 0u) << log.str();
}

}  // namespace
}  // namespace ms
