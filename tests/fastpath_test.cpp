// Memory-op hot-path equivalence and flat-translation property tests.
//
// The fast path's contract is *semantic identity*: with
// MemorySpace::Params::fastpath flipped off, every access takes the
// original coroutine path, and the two runs must agree byte-for-byte on
// stats JSON, Chrome trace JSON, event counts and final simulated time.
// The flat open-addressing Tlb and PageTable are additionally checked
// against straightforward map-based reference models under randomized
// map/unmap/remap churn (the broker-migration and hot-remove patterns).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "fuzz/fuzz.hpp"
#include "os/page_table.hpp"
#include "os/tlb.hpp"
#include "sim/frame_pool.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/tracer.hpp"
#include "test_util.hpp"
#include "workloads/random_access.hpp"

namespace ms {
namespace {

struct Capture {
  sim::Time end_time = 0;
  std::uint64_t fastpath_hits = 0;
  std::string stats_json;
  std::string trace_json;
};

Capture run_workload(core::MemorySpace::Mode mode, bool fastpath,
                     std::uint64_t seed) {
  sim::Engine engine;
  sim::Tracer tracer;
  tracer.begin_process("fastpath");
  engine.set_tracer(&tracer);

  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = mode;
  p.fastpath = fastpath;
  if (mode == core::MemorySpace::Mode::kRemoteRegion) {
    p.placement = os::RegionManager::Placement::kRemoteOnly;
  }
  p.swap.resident_limit_bytes = 1 << 20;
  core::MemorySpace space(cluster, 1, p);

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 4 << 20;
  rp.accesses_per_thread = 1000;
  rp.seed = seed;
  workloads::RandomAccess ra(space, rp);

  core::Runner setup(engine);
  if (mode == core::MemorySpace::Mode::kRemoteSwap) {
    setup.spawn(ra.setup({1}));
  } else {
    setup.spawn(ra.setup({2, 3}));
  }
  setup.run_all();
  core::Runner run(engine);
  run.spawn(ra.thread_fn(0, 0));
  run.spawn(ra.thread_fn(1, 1));
  run.run_all();

  Capture c;
  c.end_time = engine.now();
  c.fastpath_hits = cluster.node(1).fastpath_hits();
  sim::StatRegistry reg;
  cluster.export_stats(reg, "");
  tracer.export_txn_stats(reg, "txn.");
  std::ostringstream stats_out, trace_out;
  reg.dump_json(stats_out);
  tracer.export_chrome(trace_out);
  c.stats_json = stats_out.str();
  c.trace_json = trace_out.str();
  return c;
}

void expect_equivalent(core::MemorySpace::Mode mode, std::uint64_t seed) {
  const Capture on = run_workload(mode, true, seed);
  const Capture off = run_workload(mode, false, seed);
  EXPECT_EQ(on.end_time, off.end_time);
  EXPECT_EQ(on.stats_json, off.stats_json);
  EXPECT_EQ(on.trace_json, off.trace_json);
  EXPECT_GT(on.end_time, 0u);
  EXPECT_EQ(off.fastpath_hits, 0u);
}

TEST(FastpathEquivalence, LocalOnOffByteIdentical) {
  expect_equivalent(core::MemorySpace::Mode::kLocal, 42);
}

TEST(FastpathEquivalence, RemoteRegionOnOffByteIdentical) {
  expect_equivalent(core::MemorySpace::Mode::kRemoteRegion, 99);
}

TEST(FastpathEquivalence, RemoteSwapOnOffByteIdentical) {
  expect_equivalent(core::MemorySpace::Mode::kRemoteSwap, 7);
}

TEST(FastpathEquivalence, FastPathActuallyTaken) {
  // Guard against the equivalence tests passing vacuously: with the knob
  // on, a cache-hit-heavy run must resolve accesses synchronously.
  const Capture on =
      run_workload(core::MemorySpace::Mode::kRemoteRegion, true, 99);
  EXPECT_GT(on.fastpath_hits, 0u);
}

// Randomized configurations through the model-checking harness: every
// fuzzed machine shape must behave identically with the fast path forced
// off. Episodes include broker migrations, donor evacuation and swap
// (depending on the seed), so this covers the remap/TLB-shootdown
// interactions the hand-built scenarios above cannot.
TEST(FastpathEquivalence, FuzzedEpisodesMatchWithFastpathOff) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xc0ffee);
    fuzz::Knobs k = fuzz::Knobs::generate(rng);
    fuzz::EpisodeOptions opt;
    opt.seed = seed;
    k.fastpath = 1;
    const fuzz::EpisodeResult on = fuzz::run_episode(k, opt);
    k.fastpath = 0;
    const fuzz::EpisodeResult off = fuzz::run_episode(k, opt);
    EXPECT_EQ(on.events, off.events) << "seed " << seed;
    EXPECT_EQ(on.sim_time, off.sim_time) << "seed " << seed;
    EXPECT_EQ(on.checks, off.checks) << "seed " << seed;
    EXPECT_TRUE(on.violations.empty()) << "seed " << seed;
    EXPECT_TRUE(off.violations.empty()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Flat TLB vs reference model.
// ---------------------------------------------------------------------------

// Straightforward map-based mirror of the Tlb's documented semantics: LRU
// stamps from a strictly increasing tick, unique-minimum eviction.
class TlbModel {
 public:
  explicit TlbModel(int entries) : entries_(entries) {}

  std::optional<std::uint64_t> lookup(std::uint64_t page) {
    ++tick_;
    auto it = map_.find(page);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    it->second.lru = tick_;
    return it->second.frame;
  }

  void insert(std::uint64_t page, std::uint64_t frame) {
    ++tick_;
    auto it = map_.find(page);
    if (it != map_.end()) {
      it->second.frame = frame;
      it->second.lru = tick_;
      return;
    }
    if (map_.size() >= static_cast<std::size_t>(entries_)) {
      auto victim = map_.begin();
      for (auto i = map_.begin(); i != map_.end(); ++i) {
        if (i->second.lru < victim->second.lru) victim = i;
      }
      map_.erase(victim);
    }
    map_[page] = {frame, tick_};
  }

  void invalidate(std::uint64_t page) { map_.erase(page); }
  void flush() { map_.clear(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct E {
    std::uint64_t frame = 0;
    std::uint64_t lru = 0;
  };
  int entries_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::map<std::uint64_t, E> map_;
};

TEST(FlatTlbProperty, MatchesReferenceModelUnderChurn) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    sim::Rng rng(seed);
    os::Tlb::Params tp;
    tp.entries = 8;  // small so evictions are constant
    os::Tlb tlb(tp);
    TlbModel model(tp.entries);

    for (int step = 0; step < 4000; ++step) {
      const std::uint64_t page = (1 + rng.below(24)) << 12;  // 24 hot pages
      const std::uint64_t roll = rng.below(100);
      if (roll < 55) {
        os::Tlb::Slot* got = tlb.lookup_slot(page);
        auto want = model.lookup(page);
        ASSERT_EQ(got != nullptr, want.has_value()) << "step " << step;
        if (got != nullptr) {
          ASSERT_EQ(got->frame, *want) << "step " << step;
          // Re-touch sometimes: the last-translation-cache path must be
          // indistinguishable from a repeated lookup hit.
          if (rng.chance(0.5)) {
            tlb.touch(*got);
            auto again = model.lookup(page);
            ASSERT_EQ(got->frame, *again);
          }
        }
      } else if (roll < 85) {
        const std::uint64_t frame = (page << 8) | rng.below(256);
        tlb.insert(page, frame);
        model.insert(page, frame);
      } else if (roll < 97) {
        tlb.invalidate(page);
        model.invalidate(page);
      } else {
        tlb.flush();
        model.flush();
      }
    }
    EXPECT_EQ(tlb.hits(), model.hits()) << "seed " << seed;
    EXPECT_EQ(tlb.misses(), model.misses()) << "seed " << seed;
    EXPECT_GT(tlb.flat_probes(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Flat PageTable vs reference model.
// ---------------------------------------------------------------------------

TEST(FlatPageTableProperty, MatchesReferenceModelUnderChurn) {
  for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
    sim::Rng rng(seed);
    constexpr std::uint64_t kPage = 4096;
    os::PageTable pt(kPage);
    std::map<std::uint64_t, std::uint64_t> model;  // page -> frame

    for (int step = 0; step < 6000; ++step) {
      const std::uint64_t page = (1 + rng.below(512)) * kPage;
      const std::uint64_t roll = rng.below(100);
      if (roll < 40) {
        // Map / remap: hot-add, broker live migration (frame changes
        // under a fixed VA), initial allocation all look like this.
        const std::uint64_t frame = (page << 4) + step;
        pt.map(page, frame);
        model[page] = frame;
      } else if (roll < 60) {
        // Unmap: hot-remove / donor evacuation reclaim.
        pt.unmap(page);
        model.erase(page);
      } else {
        const std::uint64_t off = rng.below(kPage);
        auto got = pt.translate(page + off);
        auto it = model.find(page);
        ASSERT_EQ(got.has_value(), it != model.end())
            << "seed " << seed << " step " << step;
        if (got) ASSERT_EQ(*got, it->second + off);
      }
      if (step % 512 == 0) {
        ASSERT_EQ(pt.mapped_pages(), model.size());
        // for_each must visit exactly the live set (order unspecified).
        std::map<std::uint64_t, std::uint64_t> seen;
        pt.for_each([&](os::VAddr va, const os::PageTable::Entry& e) {
          if (e.present) seen[va] = e.frame;
        });
        ASSERT_EQ(seen, model);
      }
    }
  }
}

TEST(FlatPageTableProperty, EntryPointersStableAcrossChurn) {
  // The swap manager and migration engine hold Entry* across map/unmap of
  // *other* pages; the deque storage must keep them stable even through
  // index growth.
  os::PageTable pt(4096);
  pt.map(4096, 0xAA000);
  os::PageTable::Entry* held = pt.find(4096);
  ASSERT_NE(held, nullptr);
  held->aux = 0x5eed;
  for (std::uint64_t i = 2; i < 3000; ++i) {
    pt.map(i * 4096, i);
    if (i % 3 == 0) pt.unmap(i * 4096);
  }
  EXPECT_EQ(pt.find(4096), held);
  EXPECT_EQ(held->frame, 0xAA000u);
  EXPECT_EQ(held->aux, 0x5eedu);
  // Recycled positions must come back zeroed, not with stale state.
  pt.unmap(4096);
  pt.map(8192, 0xBB000);
  const os::PageTable::Entry* fresh = pt.find(8192);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->aux, 0u);
}

// ---------------------------------------------------------------------------
// Coroutine frame pool.
// ---------------------------------------------------------------------------

TEST(FramePoolTest, RecyclesSameSizeClassAndCountsHeapFallback) {
  const std::uint64_t pooled0 = sim::FramePool::frames_pooled();
  void* a = sim::FramePool::allocate(200);
  sim::FramePool::deallocate(a, 200);
  // 200 and 250 share the 256-byte class, so the freelist must hand the
  // same block back.
  void* b = sim::FramePool::allocate(250);
  EXPECT_EQ(a, b);
  sim::FramePool::deallocate(b, 250);
  EXPECT_EQ(sim::FramePool::frames_pooled(), pooled0 + 2);

  const std::uint64_t heap0 = sim::FramePool::frames_heap();
  void* big = sim::FramePool::allocate(sim::FramePool::kMaxPooled + 1);
  sim::FramePool::deallocate(big, sim::FramePool::kMaxPooled + 1);
  EXPECT_EQ(sim::FramePool::frames_heap(), heap0 + 1);
  EXPECT_EQ(sim::FramePool::frames_pooled(), pooled0 + 2);
}

TEST(FramePoolTest, TaskFramesComeFromThePool) {
  const std::uint64_t pooled0 = sim::FramePool::frames_pooled();
  sim::Engine engine;
  core::Runner run(engine);
  run.spawn([]() -> sim::Task<void> { co_return; }());
  run.run_all();
  EXPECT_GT(sim::FramePool::frames_pooled(), pooled0);
}

}  // namespace
}  // namespace ms
