// Observability tests: the strict JSON parser, the memscale_report library
// (stats-dump parsing, Markdown/HTML rendering, tolerance diffing), the
// sharing/coherence profiler with its false-sharing detector, the per-cause
// coherence sub-segments round-tripping through both trace analyzers, and
// hot-page top-K tie-break determinism across runs and job counts.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/memory_space.hpp"
#include "core/runner.hpp"
#include "dsm/directory_dsm.hpp"
#include "sim/json.hpp"
#include "sim/report.hpp"
#include "sim/sharing_profiler.hpp"
#include "sim/timeseries.hpp"
#include "sim/trace_analysis.hpp"
#include "sim/tracer.hpp"
#include "sweep/sweep.hpp"
#include "test_util.hpp"

namespace ms {
namespace {

using core::Cluster;
using core::MemorySpace;
using core::ThreadCtx;
using core::VAddr;

// ---------------------------------------------------------------------------
// Strict JSON parser
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalarsContainersAndEscapes) {
  const auto v = sim::json::parse(
      R"({"a":1.5,"b":[1,2,3],"c":{"x":"he\"llo","y":true,"z":null},"d":-2e3})");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
  ASSERT_EQ(v.at("b").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("b").as_array()[2].as_number(), 3.0);
  EXPECT_EQ(v.at("c").at("x").as_string(), "he\"llo");
  EXPECT_TRUE(v.at("c").at("y").as_bool());
  EXPECT_TRUE(v.at("c").at("z").is_null());
  EXPECT_DOUBLE_EQ(v.at("d").as_number(), -2000.0);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), std::runtime_error);
}

TEST(Json, ThrowsOnTruncatedAndMalformedInput) {
  EXPECT_THROW(sim::json::parse("{\"a\":1"), std::runtime_error);
  EXPECT_THROW(sim::json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(sim::json::parse("[1,2,"), std::runtime_error);
  EXPECT_THROW(sim::json::parse("tru"), std::runtime_error);
  EXPECT_THROW(sim::json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(sim::json::parse(""), std::runtime_error);
}

// ---------------------------------------------------------------------------
// StatsDump: parse what StatRegistry::dump_json writes
// ---------------------------------------------------------------------------

TEST(StatsDump, RoundTripsRegistryDump) {
  sim::StatRegistry reg;
  reg.counter("runs").inc(7);
  auto& s = reg.sampler("lat_ps");
  s.add(100);
  s.add(300);
  reg.histogram("depth").add(4);
  std::ostringstream out;
  reg.dump_json(out);

  const auto dump = sim::report::StatsDump::parse(out.str());
  EXPECT_DOUBLE_EQ(dump.counters.at("runs"), 7.0);
  EXPECT_EQ(dump.samplers.at("lat_ps").count, 2u);
  EXPECT_DOUBLE_EQ(dump.samplers.at("lat_ps").mean, 200.0);
  EXPECT_EQ(dump.histograms.at("depth").count, 1u);

  // A truncated dump (half the bytes) must throw, not parse partially.
  const std::string text = out.str();
  EXPECT_THROW(sim::report::StatsDump::parse(text.substr(0, text.size() / 2)),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// SharingProfiler
// ---------------------------------------------------------------------------

TEST(SharingProfiler, DisabledRecordsNothingAndExportsNothing) {
  sim::SharingProfiler p;
  p.record_event(sim::CohDomain::kIntra, sim::CohEvent::kProbe, 0x1000, 0);
  p.record_touch(0x1000, 0, 0, 8);
  p.record_invalidation(sim::CohDomain::kIntra, sim::CohEvent::kInvalidate,
                        0x1000, 0, 1);
  EXPECT_EQ(p.events(sim::CohDomain::kIntra), 0u);
  EXPECT_EQ(p.distinct_lines(), 0u);

  sim::StatRegistry reg;
  std::ostringstream a, b;
  reg.dump_json(a);
  p.export_stats(reg, "coh.");
  reg.dump_json(b);
  EXPECT_EQ(a.str(), b.str());  // byte-identical with the profiler off
}

TEST(SharingProfiler, ClassifiesFalseVsTrueSharingByTouchFootprint) {
  sim::SharingProfiler p;
  p.enable();
  // Core 0 touches bytes [0,8), core 1 touches bytes [8,16) of one line:
  // disjoint footprints, so an invalidation between them is false sharing.
  p.record_touch(0x40, /*requester=*/0, /*offset=*/0, /*bytes=*/8);
  p.record_touch(0x40, /*requester=*/1, /*offset=*/8, /*bytes=*/8);
  p.record_invalidation(sim::CohDomain::kIntra, sim::CohEvent::kInvalidate,
                        0x40, /*requester=*/0, /*victim=*/1);
  EXPECT_EQ(p.false_sharing_invalidations(), 1u);
  EXPECT_EQ(p.true_sharing_invalidations(), 0u);

  // Overlapping footprints on another line: true sharing.
  p.record_touch(0x80, 0, 0, 8);
  p.record_touch(0x80, 1, 0, 16);
  p.record_invalidation(sim::CohDomain::kIntra, sim::CohEvent::kInvalidate,
                        0x80, 0, 1);
  EXPECT_EQ(p.false_sharing_invalidations(), 1u);
  EXPECT_EQ(p.true_sharing_invalidations(), 1u);

  // The victim's footprint was cleared: a repeat invalidation of the same
  // victim has nothing to compare against and classifies as neither.
  p.record_invalidation(sim::CohDomain::kIntra, sim::CohEvent::kInvalidate,
                        0x80, 0, 1);
  EXPECT_EQ(p.false_sharing_invalidations(), 1u);
  EXPECT_EQ(p.true_sharing_invalidations(), 1u);
}

TEST(SharingProfiler, TopPagesBreaksTiesByAscendingPage) {
  sim::SharingProfiler p;
  p.enable();
  // Equal event counts on pages 9, 3 and 5 (recorded in that order).
  for (std::uint64_t page : {9, 3, 5}) {
    p.record_event(sim::CohDomain::kIntra, sim::CohEvent::kProbe, page << 12,
                   0);
  }
  const auto top = p.top_pages(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 3u);
  EXPECT_EQ(top[1].first, 5u);
  EXPECT_EQ(top[2].first, 9u);
}

// ---------------------------------------------------------------------------
// Cluster wiring: region mode keeps every event intra-node; the DSM
// baseline produces inter-node events (the paper's split, per-domain).
// ---------------------------------------------------------------------------

sim::Task<void> shared_line_writers(MemorySpace& space) {
  ThreadCtx t0{.core = 0};
  ThreadCtx t1{.core = 1};
  const VAddr base = co_await space.map_range(1 << 16);
  for (int round = 0; round < 32; ++round) {
    for (int w = 0; w < 8; ++w) {
      const VAddr va = base + static_cast<VAddr>(w) * 8;
      co_await space.write_u64(t0, va, 1);
      co_await space.write_u64(t1, va + 8, 2);  // same lines, distinct words
    }
  }
  co_await space.sync(t0);
  co_await space.sync(t1);
}

TEST(CoherenceAttribution, RegionModeReportsZeroInterNodeTax) {
  sim::Engine engine;
  auto cfg = test::small_config();
  cfg.coh_profile = true;
  Cluster cluster(engine, cfg);
  MemorySpace space(cluster, 1, {});
  test::run_in_sim(engine, shared_line_writers(space));

  const auto& prof = cluster.sharing();
  EXPECT_GT(prof.events(sim::CohDomain::kIntra), 0u);
  EXPECT_EQ(prof.events(sim::CohDomain::kInter), 0u);
  EXPECT_GT(prof.false_sharing_invalidations() +
                prof.true_sharing_invalidations(),
            0u);

  sim::StatRegistry reg;
  cluster.export_stats(reg);
  EXPECT_GT(reg.counter_value("coh.intra.events"), 0u);
  EXPECT_EQ(reg.counter_value("coh.inter.events"), 0u);
}

TEST(CoherenceAttribution, DsmBaselineReportsInterNodeTax) {
  sim::Engine engine;
  auto cfg = test::small_config();
  cfg.coh_profile = true;
  Cluster cluster(engine, cfg);
  dsm::DirectoryDsm dsm(
      engine, cluster.fabric(),
      [&cluster](ht::NodeId home, ht::PAddr addr, std::uint32_t bytes,
                 bool write, sim::TraceContext ctx) {
        return cluster.node(home).serve_remote(addr, bytes, write, ctx);
      },
      dsm::DirectoryDsm::Params{.num_nodes = cluster.num_nodes()});
  dsm.set_profiler(&cluster.sharing());

  core::Runner run(engine);
  for (int n = 0; n < 2; ++n) {
    run.spawn([](dsm::DirectoryDsm& d, ht::NodeId self) -> sim::Task<void> {
      for (int i = 0; i < 64; ++i) {
        co_await d.access(self, static_cast<ht::PAddr>(i % 8) * 64, 8, true);
      }
    }(dsm, static_cast<ht::NodeId>(n + 1)));
  }
  run.run_all();

  EXPECT_GT(cluster.sharing().events(sim::CohDomain::kInter), 0u);
  EXPECT_GT(cluster.sharing().events(sim::CohDomain::kInter,
                                     sim::CohEvent::kInvalidate),
            0u);

  sim::StatRegistry reg;
  cluster.export_stats(reg);
  EXPECT_GT(reg.counter_value("coh.inter.events"), 0u);
  EXPECT_GT(reg.counter_value("coh.inter.invalidate"), 0u);
}

// ---------------------------------------------------------------------------
// Cause-tagged coherence sub-segments: per transaction, the per-cause
// decomposition sums exactly to the coherence segment — through both the
// Chrome-trace and the flight-recorder round trip.
// ---------------------------------------------------------------------------

void check_cause_sums(const sim::TraceAnalysis& analysis) {
  const auto txns = analysis.transactions();
  ASSERT_FALSE(txns.empty());
  sim::Time coh_total = 0;
  for (const auto& t : txns) {
    sim::Time cause_sum = 0;
    for (const sim::Time v : t.coh) cause_sum += v;
    EXPECT_EQ(cause_sum, t.seg[static_cast<int>(sim::Segment::kCoherence)])
        << "txn " << t.txn;
    coh_total += cause_sum;
  }
  EXPECT_GT(coh_total, 0u) << "workload produced no coherence tax";

  const auto causes = analysis.coherence_cause_totals();
  sim::Time across = 0;
  for (const sim::Time v : causes) across += v;
  EXPECT_EQ(across, coh_total);
  EXPECT_EQ(causes[static_cast<int>(sim::CohCause::kUnattributed)], 0u)
      << "an instrumentation site left a coherence span untagged";
}

TEST(CoherenceAttribution, CauseSubSegmentsSumExactlyThroughChromeTrace) {
  sim::Tracer tracer;
  tracer.begin_process("coh");
  sim::Engine engine;
  engine.set_tracer(&tracer);
  Cluster cluster(engine, test::small_config());
  MemorySpace space(cluster, 1, {});
  test::run_in_sim(engine, shared_line_writers(space));
  ASSERT_GT(tracer.txns_finalized(), 0u);

  std::ostringstream out;
  tracer.export_chrome(out);
  std::istringstream in(out.str());
  const auto analysis = sim::TraceAnalysis::load_chrome(in);
  check_cause_sums(analysis);
}

TEST(CoherenceAttribution, CauseSubSegmentsSumExactlyThroughFlightRecorder) {
  sim::Tracer tracer;
  tracer.begin_process("coh");
  tracer.enable_flight_recorder(1 << 16);
  sim::Engine engine;
  engine.set_tracer(&tracer);
  Cluster cluster(engine, test::small_config());
  MemorySpace space(cluster, 1, {});
  test::run_in_sim(engine, shared_line_writers(space));

  std::ostringstream out;
  tracer.export_flight(out);
  std::istringstream in(out.str());
  const auto analysis = sim::TraceAnalysis::load_flight(in);
  check_cause_sums(analysis);
}

TEST(CoherenceAttribution, CauseSamplersExportUnderCoherenceSegment) {
  sim::Tracer tracer;
  tracer.begin_process("coh");
  sim::Engine engine;
  engine.set_tracer(&tracer);
  Cluster cluster(engine, test::small_config());
  MemorySpace space(cluster, 1, {});
  test::run_in_sim(engine, shared_line_writers(space));

  sim::StatRegistry reg;
  tracer.export_txn_stats(reg, "txn.");
  std::ostringstream js;
  reg.dump_json(js);
  const auto dump = sim::report::StatsDump::parse(js.str());
  ASSERT_TRUE(dump.samplers.count("txn.seg.coherence_ps"));
  // At least one cause sampler, and the cause sums reproduce the segment.
  double cause_sum = 0;
  for (const auto& [key, s] : dump.samplers) {
    if (key.rfind("txn.seg.coherence.", 0) == 0) cause_sum += s.sum();
  }
  EXPECT_DOUBLE_EQ(cause_sum, dump.samplers.at("txn.seg.coherence_ps").sum());
}

// ---------------------------------------------------------------------------
// Truncated traces fail loudly (satellite: nonzero analyzer exits ride on
// these throws).
// ---------------------------------------------------------------------------

TEST(TraceStrictness, TruncatedChromeTraceThrows) {
  sim::Tracer tracer;
  tracer.begin_process("t");
  sim::Engine engine;
  engine.set_tracer(&tracer);
  Cluster cluster(engine, test::small_config());
  MemorySpace space(cluster, 1, {});
  test::run_in_sim(engine, shared_line_writers(space));

  std::ostringstream out;
  tracer.export_chrome(out);
  const std::string full = out.str();
  // Drop the trailer: the loader must notice the missing "]}".
  std::istringstream cut(full.substr(0, full.size() - 3));
  EXPECT_THROW(sim::TraceAnalysis::load_chrome(cut), std::runtime_error);

  std::istringstream not_a_trace("hello world\n");
  EXPECT_THROW(sim::TraceAnalysis::load_chrome(not_a_trace),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Hot-page top-K determinism (satellite): insertion order must not leak
// into the ranking, and a parallel sweep must reproduce the serial bytes.
// ---------------------------------------------------------------------------

TEST(HotPages, TopKIsInsertionOrderIndependentWithTies) {
  sim::HotPageProfiler a, b;
  a.enable();
  b.enable();
  // Same multiset of records, opposite insertion orders, with ties.
  const std::vector<std::uint64_t> pages = {7, 1, 9, 1, 7, 3, 9, 3};
  for (auto it = pages.begin(); it != pages.end(); ++it) a.record(*it);
  for (auto it = pages.rbegin(); it != pages.rend(); ++it) b.record(*it);
  const auto ta = a.top(4);
  const auto tb = b.top(4);
  EXPECT_EQ(ta, tb);
  // All counts equal (2): ties resolve by ascending page number.
  ASSERT_EQ(ta.size(), 4u);
  EXPECT_EQ(ta[0].first, 1u);
  EXPECT_EQ(ta[1].first, 3u);
  EXPECT_EQ(ta[2].first, 7u);
  EXPECT_EQ(ta[3].first, 9u);
}

TEST(HotPages, Fig8SweepIsByteIdenticalAcrossJobCounts) {
  // fig8 runs the hot-page profiler in-kernel; identical stats bytes across
  // jobs= values prove the profiler's ranking carries no scheduler state.
  const auto spec = sweep::SweepSpec::parse_tokens(
      {"bench=fig8", "grid.stress_nodes=0,1", "accesses=120", "hot_pages=4"});
  sweep::SweepOptions serial;
  serial.jobs = 1;
  const auto a = sweep::run_sweep(spec, serial);
  sweep::SweepOptions parallel_opt;
  parallel_opt.jobs = 2;
  const auto b = sweep::run_sweep(spec, parallel_opt);
  EXPECT_EQ(a.json, b.json);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].stats_json, b.runs[i].stats_json) << "run " << i;
  }
}

// ---------------------------------------------------------------------------
// Report rendering and diffing
// ---------------------------------------------------------------------------

sim::report::StatsDump traced_profiled_dump() {
  sim::Tracer tracer;
  tracer.begin_process("rpt");
  sim::Engine engine;
  engine.set_tracer(&tracer);
  auto cfg = test::small_config();
  cfg.coh_profile = true;
  Cluster cluster(engine, cfg);
  MemorySpace space(cluster, 1, {});
  test::run_in_sim(engine, shared_line_writers(space));

  sim::StatRegistry reg;
  cluster.export_stats(reg, "run.");
  tracer.export_txn_stats(reg, "run.txn.");
  std::ostringstream js;
  reg.dump_json(js);
  return sim::report::StatsDump::parse(js.str());
}

TEST(Report, MarkdownAndHtmlContainTheCoherenceSections) {
  const auto dump = traced_profiled_dump();
  const std::string md = sim::report::render_markdown(dump, {});
  EXPECT_NE(md.find("## Coherence tax by run"), std::string::npos);
  EXPECT_NE(md.find("## Protocol-event accounting"), std::string::npos);
  EXPECT_NE(md.find("## Coherence-hot pages"), std::string::npos);
  EXPECT_NE(md.find("| run |"), std::string::npos);
  EXPECT_NE(md.find("intra"), std::string::npos);

  const std::string html = sim::report::render_html(dump, {});
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("Coherence tax by run"), std::string::npos);
  EXPECT_NE(html.find("<table>"), std::string::npos);
}

TEST(Report, DiffIsCleanOnIdenticalDumpsAndFlagsChanges) {
  const auto dump = traced_profiled_dump();
  const auto clean = sim::report::diff(dump, dump, {});
  EXPECT_TRUE(clean.ok());
  EXPECT_TRUE(clean.entries.empty());
  EXPECT_GT(clean.keys_compared, 0u);

  auto modified = dump;
  // Perturb a coherence metric and drop another key entirely.
  ASSERT_TRUE(modified.counters.count("run.coh.intra.events"));
  modified.counters["run.coh.intra.events"] += 5;
  modified.counters.erase(std::prev(modified.counters.end())->first);
  const auto d = sim::report::diff(dump, modified, {});
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.out_of_tolerance, 2u);
  EXPECT_GE(d.coherence_out_of_tolerance, 1u);
  bool saw_coh = false, saw_missing = false;
  for (const auto& e : d.entries) {
    if (e.key == "run.coh.intra.events") {
      EXPECT_TRUE(e.coherence);
      saw_coh = true;
    }
    if (e.missing) saw_missing = true;
  }
  EXPECT_TRUE(saw_coh);
  EXPECT_TRUE(saw_missing);

  // A generous relative tolerance absorbs the numeric change but can never
  // absorb the missing key.
  sim::report::DiffOptions loose;
  loose.rel_tol = 1.0;
  const auto within = sim::report::diff(dump, modified, loose);
  EXPECT_EQ(within.out_of_tolerance, 1u);

  const std::string rendered =
      sim::report::render_diff_markdown(d, {}, "a", "b");
  EXPECT_NE(rendered.find("coh.intra.events"), std::string::npos);
  EXPECT_NE(rendered.find("OUT"), std::string::npos);
}

}  // namespace
}  // namespace ms
