// B-tree correctness: bulk-build shape, search against an oracle set,
// organic inserts with splits, invariants across fanouts (parameterized),
// and the access-pattern statistics the paper's analysis relies on.
#include <gtest/gtest.h>

#include <set>

#include "core/remote_allocator.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"
#include "workloads/btree.hpp"

namespace ms::workloads {
namespace {

struct TreeHarness {
  explicit TreeHarness(core::Cluster& cluster, int fanout,
                       core::MemorySpace::Mode mode =
                           core::MemorySpace::Mode::kRemoteRegion)
      : space(cluster, 1, make_params(mode)),
        alloc(space),
        tree(space, alloc, fanout) {}

  static core::MemorySpace::Params make_params(core::MemorySpace::Mode mode) {
    core::MemorySpace::Params p;
    p.mode = mode;
    if (mode == core::MemorySpace::Mode::kRemoteSwap) {
      p.swap.resident_limit_bytes = 32 * 4096;
    }
    return p;
  }

  core::MemorySpace space;
  core::RemoteAllocator alloc;
  BTree tree;
};

sim::Task<void> build_sequential(BTree& tree, std::uint64_t n) {
  co_await tree.bulk_build(n, [](std::uint64_t i) { return i * 2 + 1; });
}

TEST(BTree, BulkBuildShapeAndValidation) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  TreeHarness h(cluster, 8);
  e.spawn(build_sequential(h.tree, 1000));
  e.run();
  EXPECT_EQ(h.tree.size(), 1000u);
  // fanout 8 => 7 keys/leaf => 143 leaves => height 1 (leaves) + 3.
  EXPECT_EQ(h.tree.height(), 4);
  EXPECT_NO_THROW(h.tree.validate());
  auto keys = h.tree.collect_all();
  ASSERT_EQ(keys.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(keys[i], i * 2 + 1);
}

sim::Task<void> search_all(BTree& tree, std::uint64_t n, int* wrong) {
  core::ThreadCtx t;
  for (std::uint64_t i = 0; i < n; ++i) {
    // Present keys (odd) must be found, absent keys (even) must not.
    if (!co_await tree.search(t, i * 2 + 1)) ++*wrong;
    if (co_await tree.search(t, i * 2)) ++*wrong;
  }
}

TEST(BTree, SearchFindsExactlyTheInsertedKeys) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  TreeHarness h(cluster, 16);
  e.spawn(build_sequential(h.tree, 500));
  e.run();
  int wrong = 0;
  e.spawn(search_all(h.tree, 500, &wrong));
  e.run();
  EXPECT_EQ(wrong, 0);
}

TEST(BTree, EmptyTreeFindsNothing) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  TreeHarness h(cluster, 8);
  e.spawn(build_sequential(h.tree, 0));
  e.run();
  bool found = true;
  e.spawn([](BTree& tree, bool* f) -> sim::Task<void> {
    core::ThreadCtx t;
    *f = co_await tree.search(t, 42);
  }(h.tree, &found));
  e.run();
  EXPECT_FALSE(found);
}

TEST(BTree, SearchStatsMatchTheory) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  TreeHarness h(cluster, 32);
  e.spawn(build_sequential(h.tree, 10'000));
  e.run();
  BTree::SearchStats stats;
  e.spawn([](BTree& tree, BTree::SearchStats* s) -> sim::Task<void> {
    core::ThreadCtx t;
    co_await tree.search(t, 4001, s);
  }(h.tree, &stats));
  e.run();
  // Nodes visited <= height; probes ~ nodes * log2(fanout).
  EXPECT_GE(stats.nodes_visited, 1);
  EXPECT_LE(stats.nodes_visited, h.tree.height());
  EXPECT_LE(stats.key_probes,
            stats.nodes_visited * 6 + 6);  // log2(31) ~ 5
}

sim::Task<void> insert_random(BTree& tree, std::set<std::uint64_t>* oracle,
                              int count, std::uint64_t seed) {
  core::ThreadCtx t;
  sim::Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const std::uint64_t key = rng.below(10'000);
    oracle->insert(key);
    co_await tree.insert(t, key);
  }
}

sim::Task<void> check_membership(BTree& tree,
                                 const std::set<std::uint64_t>& oracle,
                                 int limit, int* wrong) {
  core::ThreadCtx t;
  for (std::uint64_t k = 0; k < static_cast<std::uint64_t>(limit); ++k) {
    const bool expected = oracle.count(k) != 0;
    if (co_await tree.search(t, k) != expected) ++*wrong;
  }
}

class BTreeFanout : public ::testing::TestWithParam<int> {};

TEST_P(BTreeFanout, OrganicInsertsMatchOracleAndStayValid) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  TreeHarness h(cluster, GetParam());
  std::set<std::uint64_t> oracle;
  e.spawn(insert_random(h.tree, &oracle, 800, 1234));
  e.run();
  EXPECT_NO_THROW(h.tree.validate());
  EXPECT_EQ(h.tree.size(), oracle.size());

  auto keys = h.tree.collect_all();
  std::vector<std::uint64_t> expect(oracle.begin(), oracle.end());
  EXPECT_EQ(keys, expect);

  int wrong = 0;
  e.spawn(check_membership(h.tree, oracle, 2'000, &wrong));
  e.run();
  EXPECT_EQ(wrong, 0);
}

TEST_P(BTreeFanout, BulkThenInsertMixWorks) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  TreeHarness h(cluster, GetParam());
  e.spawn(build_sequential(h.tree, 300));  // odd keys 1..599
  e.run();
  std::set<std::uint64_t> oracle;
  for (std::uint64_t i = 0; i < 300; ++i) oracle.insert(i * 2 + 1);
  e.spawn(insert_random(h.tree, &oracle, 300, 77));
  e.run();
  EXPECT_NO_THROW(h.tree.validate());
  auto keys = h.tree.collect_all();
  std::vector<std::uint64_t> expect(oracle.begin(), oracle.end());
  EXPECT_EQ(keys, expect);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeFanout,
                         ::testing::Values(3, 4, 7, 16, 64, 168),
                         [](const auto& info) {
                           return "fanout" + std::to_string(info.param);
                         });

TEST(BTree, WorksOverRemoteSwapSpace) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  TreeHarness h(cluster, 32, core::MemorySpace::Mode::kRemoteSwap);
  // ~10k keys * 512 B/node well exceeds the 128 KiB resident limit, so the
  // search phase must take major faults — and still return correct results.
  e.spawn(build_sequential(h.tree, 10'000));
  e.run();
  int wrong = 0;
  e.spawn(search_all(h.tree, 200, &wrong));
  e.run();
  EXPECT_EQ(wrong, 0);
  EXPECT_GT(h.space.swapper()->major_faults(), 0u);
}

TEST(BTree, RejectsTinyFanoutAndDoubleBuild) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  EXPECT_THROW(TreeHarness(cluster, 2), std::invalid_argument);
  TreeHarness h(cluster, 8);
  e.spawn(build_sequential(h.tree, 10));
  e.run();
  e.spawn(build_sequential(h.tree, 10));
  EXPECT_THROW(e.run(), std::logic_error);
}

}  // namespace
}  // namespace ms::workloads
