// Tests for the OS layer: frame allocator (incl. random property test and
// hot-plug), page table, TLB, cluster directory, reservation protocol and
// region manager (growth, denial, release).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/cluster_directory.hpp"
#include "os/frame_allocator.hpp"
#include "os/page_table.hpp"
#include "os/region_manager.hpp"
#include "os/reservation.hpp"
#include "os/tlb.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace ms::os {
namespace {

TEST(FrameAllocator, AllocatesDistinctAlignedRanges) {
  FrameAllocator fa(0, 1 << 20);
  auto a = fa.allocate(10'000);
  auto b = fa.allocate(10'000);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a % 4096, 0u);
  EXPECT_EQ(*b % 4096, 0u);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(fa.free_bytes(), (1 << 20) - 2 * 12288u);  // rounded to frames
}

TEST(FrameAllocator, ExhaustionReturnsNullopt) {
  FrameAllocator fa(0, 64 << 10);
  EXPECT_TRUE(fa.allocate(64 << 10).has_value());
  EXPECT_FALSE(fa.allocate(4096).has_value());
}

TEST(FrameAllocator, FreeCoalescesNeighbours) {
  FrameAllocator fa(0, 1 << 20);
  auto a = fa.allocate(256 << 10);
  auto b = fa.allocate(256 << 10);
  auto c = fa.allocate(256 << 10);
  ASSERT_TRUE(a && b && c);
  fa.free(*a);
  fa.free(*c);
  fa.free(*b);  // coalesces with both sides
  EXPECT_EQ(fa.largest_free_range(), 1u << 20);
  auto big = fa.allocate(1 << 20);
  EXPECT_TRUE(big.has_value());
}

TEST(FrameAllocator, DoubleAndPartialFreeAreErrors) {
  FrameAllocator fa(0, 1 << 20);
  auto a = fa.allocate(8192);
  ASSERT_TRUE(a);
  fa.free(*a);
  EXPECT_THROW(fa.free(*a), std::logic_error);
  auto b = fa.allocate(8192);
  EXPECT_THROW(fa.free(*b + 4096), std::logic_error);
}

TEST(FrameAllocator, PinningIsTracked) {
  FrameAllocator fa(0, 1 << 20);
  auto p = fa.allocate(64 << 10, /*pinned=*/true);
  ASSERT_TRUE(p);
  EXPECT_EQ(fa.pinned_bytes(), 64u << 10);
  EXPECT_TRUE(fa.is_pinned(*p));
  EXPECT_TRUE(fa.is_pinned(*p + 4096));
  auto q = fa.allocate(4096);
  EXPECT_FALSE(fa.is_pinned(*q));
  fa.free(*p);
  EXPECT_EQ(fa.pinned_bytes(), 0u);
}

TEST(FrameAllocator, HotRemoveOnlyWhenFree) {
  FrameAllocator fa(0, 1 << 20);
  auto a = fa.allocate(4096);
  ASSERT_TRUE(a);
  // Range overlapping the allocation cannot be removed.
  EXPECT_FALSE(fa.hot_remove(*a, 8192));
  // A free range can.
  EXPECT_TRUE(fa.hot_remove(512 << 10, 256 << 10));
  EXPECT_EQ(fa.total_bytes(), (1u << 20) - (256u << 10));
  // And can come back.
  fa.hot_add(512 << 10, 256 << 10);
  EXPECT_EQ(fa.total_bytes(), 1u << 20);
  EXPECT_EQ(fa.free_bytes(), (1u << 20) - 4096);
}

// Property: random alloc/free keeps ranges disjoint and conserves bytes.
TEST(FrameAllocator, RandomAllocFreeConservesAndNeverOverlaps) {
  FrameAllocator fa(0, 4 << 20);
  sim::Rng rng(42);
  std::map<ht::PAddr, ht::PAddr> live;  // base -> rounded bytes
  ht::PAddr live_bytes = 0;
  for (int i = 0; i < 3'000; ++i) {
    if (live.empty() || rng.chance(0.6)) {
      const ht::PAddr want = (rng.below(16) + 1) * 4096;
      auto base = fa.allocate(want);
      if (!base) continue;
      // Overlap check against neighbours in address order.
      auto next = live.lower_bound(*base);
      if (next != live.end()) ASSERT_LE(*base + want, next->first);
      if (next != live.begin()) {
        auto prev = std::prev(next);
        ASSERT_LE(prev->first + prev->second, *base);
      }
      live[*base] = want;
      live_bytes += want;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.below(live.size())));
      fa.free(it->first);
      live_bytes -= it->second;
      live.erase(it);
    }
    ASSERT_EQ(fa.free_bytes(), (4u << 20) - live_bytes);
  }
}

TEST(PageTable, MapTranslateUnmap) {
  PageTable pt(4096);
  pt.map(0x10000, 0xABC000);
  EXPECT_EQ(pt.translate(0x10000), 0xABC000u);
  EXPECT_EQ(pt.translate(0x10123), 0xABC123u);
  EXPECT_FALSE(pt.translate(0x20000).has_value());
  pt.unmap(0x10000);
  EXPECT_FALSE(pt.translate(0x10000).has_value());
}

TEST(PageTable, PrefixedFramesSurviveRoundTrip) {
  PageTable pt(4096);
  const ht::PAddr frame = node::make_remote(3, 0x41000000);
  pt.map(0x7000, frame);
  auto pa = pt.translate(0x7abc);
  ASSERT_TRUE(pa);
  EXPECT_EQ(node::node_of(*pa), 3);
  EXPECT_EQ(node::local_part(*pa), 0x41000abcu);
}

TEST(PageTable, NonPresentEntriesDoNotTranslate) {
  PageTable pt(4096);
  pt.ensure(0x3000).present = false;
  EXPECT_FALSE(pt.translate(0x3000).has_value());
  EXPECT_NE(pt.find(0x3000), nullptr);
}

TEST(Tlb, HitsMissesAndLruEviction) {
  Tlb tlb(Tlb::Params{.entries = 2});
  EXPECT_FALSE(tlb.lookup(0x1000).has_value());
  tlb.insert(0x1000, 0xA000);
  tlb.insert(0x2000, 0xB000);
  EXPECT_EQ(tlb.lookup(0x1000), 0xA000u);  // refresh LRU of 0x1000
  tlb.insert(0x3000, 0xC000);              // evicts 0x2000
  EXPECT_FALSE(tlb.lookup(0x2000).has_value());
  EXPECT_TRUE(tlb.lookup(0x1000).has_value());
  EXPECT_EQ(tlb.hits(), 2u);
  EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, FlushAndInvalidate) {
  Tlb tlb(Tlb::Params{.entries = 8});
  tlb.insert(0x1000, 0xA000);
  tlb.insert(0x2000, 0xB000);
  tlb.invalidate(0x1000);
  EXPECT_FALSE(tlb.lookup(0x1000).has_value());
  EXPECT_TRUE(tlb.lookup(0x2000).has_value());
  tlb.flush();
  EXPECT_FALSE(tlb.lookup(0x2000).has_value());
}

TEST(ClusterDirectory, PoliciesPickExpectedDonors) {
  FrameAllocator a(0, 1 << 20), b(0, 4 << 20), c(0, 2 << 20);
  ClusterDirectory dir;
  dir.register_node(1, &a);
  dir.register_node(2, &b);
  dir.register_node(3, &c);
  auto hops = [](ht::NodeId x, ht::NodeId y) {
    return std::abs(static_cast<int>(x) - static_cast<int>(y));
  };
  // Most free: node 2.
  EXPECT_EQ(dir.pick_donor(1, 4096, ClusterDirectory::Policy::kMostFree, hops),
            2);
  // Nearest with space: node 2 is 1 hop from node 1; node 3 is 2 hops.
  EXPECT_EQ(dir.pick_donor(1, 4096, ClusterDirectory::Policy::kNearest, hops),
            2);
  // From node 3's perspective the nearest is node 2 as well.
  EXPECT_EQ(dir.pick_donor(3, 4096, ClusterDirectory::Policy::kNearest, hops),
            2);
  // Requester itself is never picked even if it has the most memory.
  EXPECT_EQ(dir.pick_donor(2, 4096, ClusterDirectory::Policy::kMostFree, hops),
            3);
  // Demands nobody can satisfy return nothing.
  EXPECT_FALSE(dir.pick_donor(1, 8 << 20, ClusterDirectory::Policy::kMostFree,
                              hops)
                   .has_value());
  EXPECT_EQ(dir.total_free(), (1u << 20) + (4u << 20) + (2u << 20));
}

TEST(ClusterDirectory, ParsePolicy) {
  EXPECT_EQ(ClusterDirectory::parse_policy("most_free"),
            ClusterDirectory::Policy::kMostFree);
  EXPECT_EQ(ClusterDirectory::parse_policy("nearest"),
            ClusterDirectory::Policy::kNearest);
  EXPECT_THROW(ClusterDirectory::parse_policy("bogus"), std::invalid_argument);
}

// ---- Reservation protocol over a real fabric ----

class ReservationTest : public ::testing::Test {
 protected:
  ReservationTest()
      : fabric_(engine_, noc::Topology::make("mesh2d", 4), {}),
        svc_(engine_, fabric_, ReservationService::Params{}),
        donor_alloc_(0, 16 << 20) {
    svc_.register_node(3, &donor_alloc_);
  }
  sim::Engine engine_;
  noc::Fabric fabric_;
  ReservationService svc_;
  FrameAllocator donor_alloc_;
};

sim::Task<void> do_reserve(ReservationService& svc, ht::NodeId req,
                           ht::NodeId donor, ht::PAddr bytes,
                           std::optional<ReservationService::Grant>* out) {
  *out = co_await svc.reserve(req, donor, bytes);
}

TEST_F(ReservationTest, GrantCarriesDonorPrefixAndPinsMemory) {
  std::optional<ReservationService::Grant> grant;
  engine_.spawn(do_reserve(svc_, 1, 3, 4 << 20, &grant));
  engine_.run();
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->donor, 3);
  EXPECT_EQ(node::node_of(grant->prefixed_base), 3);
  EXPECT_TRUE(donor_alloc_.is_pinned(node::local_part(grant->prefixed_base)));
  EXPECT_EQ(svc_.grants(), 1u);
  // Control messages actually crossed the fabric (request + ack).
  EXPECT_EQ(fabric_.packets_delivered(), 2u);
  // OS handling on both sides took real time.
  EXPECT_GE(engine_.now(), sim::us(6));
}

TEST_F(ReservationTest, DenialWhenDonorExhausted) {
  std::optional<ReservationService::Grant> g1, g2;
  engine_.spawn(do_reserve(svc_, 1, 3, 12 << 20, &g1));
  engine_.run();
  engine_.spawn(do_reserve(svc_, 2, 3, 12 << 20, &g2));
  engine_.run();
  EXPECT_TRUE(g1.has_value());
  EXPECT_FALSE(g2.has_value());
  EXPECT_EQ(svc_.denials(), 1u);
}

sim::Task<void> do_release(ReservationService& svc, ht::NodeId req,
                           ReservationService::Grant g) {
  co_await svc.release(req, g);
}

TEST_F(ReservationTest, ReleaseReturnsMemoryToDonor) {
  std::optional<ReservationService::Grant> grant;
  engine_.spawn(do_reserve(svc_, 1, 3, 4 << 20, &grant));
  engine_.run();
  const auto free_before = donor_alloc_.free_bytes();
  engine_.spawn(do_release(svc_, 1, *grant));
  engine_.run();
  EXPECT_EQ(donor_alloc_.free_bytes(), free_before + (4u << 20));
  EXPECT_EQ(donor_alloc_.pinned_bytes(), 0u);
}

TEST_F(ReservationTest, RemovableGuardsReservedRanges) {
  std::optional<ReservationService::Grant> grant;
  engine_.spawn(do_reserve(svc_, 1, 3, 4 << 20, &grant));
  engine_.run();
  const ht::PAddr base = node::local_part(grant->prefixed_base);
  EXPECT_FALSE(svc_.removable(3, base, 4 << 20));
  EXPECT_TRUE(svc_.removable(3, 8 << 20, 4 << 20));
  EXPECT_FALSE(svc_.removable(99, 0, 4096));  // unknown node
}

// ---- Region manager on a full small cluster ----

sim::Task<void> grow_pages(os::RegionManager& rm, int pages,
                           RegionManager::Placement placement,
                           std::vector<ht::PAddr>* out) {
  for (int i = 0; i < pages; ++i) {
    auto page = co_await rm.alloc_page(placement);
    if (page) out->push_back(*page);
  }
}

TEST(RegionManager, AutoSpillsFromLocalToRemote) {
  sim::Engine engine;
  auto cfg = test::small_config();
  cfg.node.local_bytes = ht::PAddr{16} << 20;
  cfg.os_reserved_bytes = ht::PAddr{12} << 20;  // only 4 MiB local left
  cfg.region.segment_bytes = ht::PAddr{2} << 20;
  core::Cluster cluster(engine, cfg);
  auto rm = cluster.make_region(1);

  std::vector<ht::PAddr> pages;
  const int want = (6 << 20) / 4096;  // 6 MiB: must spill
  engine.spawn(grow_pages(*rm, want, RegionManager::Placement::kAuto, &pages));
  engine.run();
  ASSERT_EQ(pages.size(), static_cast<size_t>(want));
  EXPECT_GT(rm->local_pages(), 0u);
  EXPECT_GT(rm->remote_pages(), 0u);
  EXPECT_GE(rm->segment_count(), 1u);
  // All remote pages carry a donor prefix and are distinct.
  std::set<ht::PAddr> uniq(pages.begin(), pages.end());
  EXPECT_EQ(uniq.size(), pages.size());
}

TEST(RegionManager, RemoteOnlyNeverUsesLocalFrames) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  auto rm = cluster.make_region(1);
  std::vector<ht::PAddr> pages;
  engine.spawn(grow_pages(*rm, 64, RegionManager::Placement::kRemoteOnly,
                          &pages));
  engine.run();
  ASSERT_EQ(pages.size(), 64u);
  for (auto p : pages) {
    EXPECT_TRUE(node::has_prefix(p));
    EXPECT_NE(node::node_of(p), 1);
  }
  EXPECT_EQ(rm->local_pages(), 0u);
}

TEST(RegionManager, LocalOnlyFailsInsteadOfBorrowing) {
  sim::Engine engine;
  auto cfg = test::small_config();
  cfg.node.local_bytes = ht::PAddr{16} << 20;
  cfg.os_reserved_bytes = ht::PAddr{15} << 20;
  core::Cluster cluster(engine, cfg);
  auto rm = cluster.make_region(1);
  std::vector<ht::PAddr> pages;
  engine.spawn(grow_pages(*rm, (2 << 20) / 4096,
                          RegionManager::Placement::kLocalOnly, &pages));
  engine.run();
  EXPECT_EQ(pages.size(), (1u << 20) / 4096);  // got only the free 1 MiB
  EXPECT_EQ(rm->segment_count(), 0u);
}

sim::Task<void> grow_on(os::RegionManager& rm, ht::NodeId donor, int pages,
                        std::vector<ht::PAddr>* out) {
  for (int i = 0; i < pages; ++i) {
    auto page = co_await rm.alloc_page_on(donor);
    if (page) out->push_back(*page);
  }
}

TEST(RegionManager, PlacementPinsDonor) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  auto rm = cluster.make_region(1);
  std::vector<ht::PAddr> pages;
  engine.spawn(grow_on(*rm, 4, 16, &pages));
  engine.run();
  ASSERT_EQ(pages.size(), 16u);
  for (auto p : pages) EXPECT_EQ(node::node_of(p), 4);
}

sim::Task<void> grow_then_release(os::RegionManager& rm,
                                  core::Cluster& cluster) {
  for (int i = 0; i < 8; ++i) {
    co_await rm.alloc_page(RegionManager::Placement::kRemoteOnly);
  }
  co_await rm.release_all();
  (void)cluster;
}

TEST(RegionManager, ReleaseAllReturnsSegments) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  auto rm = cluster.make_region(1);
  const auto free_before = cluster.directory().total_free();
  engine.spawn(grow_then_release(*rm, cluster));
  engine.run();
  EXPECT_EQ(rm->segment_count(), 0u);
  EXPECT_EQ(cluster.directory().total_free(), free_before);
}

TEST(RegionManager, FreedPagesAreReused) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  auto rm = cluster.make_region(1);
  std::vector<ht::PAddr> pages;
  engine.spawn(grow_pages(*rm, 4, RegionManager::Placement::kRemoteOnly,
                          &pages));
  engine.run();
  rm->free_page(pages[0]);
  std::vector<ht::PAddr> again;
  engine.spawn(grow_pages(*rm, 1, RegionManager::Placement::kRemoteOnly,
                          &again));
  engine.run();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], pages[0]);
}

// ---- Property test: PageTable + FrameAllocator vs. a reference model ----
//
// Randomized map/unmap/touch sequences, checked after every step against a
// plain std::unordered_map. The page table and frame allocator must agree
// with the model on every translation, every count, and every byte of
// accounting, for any operation order. Seeds are reported on failure so a
// counterexample replays exactly.

class PageMappingModel {
 public:
  PageMappingModel(PageTable& pt, FrameAllocator& fa) : pt_(pt), fa_(fa) {}

  bool try_map(VAddr page, bool pinned_frame) {
    if (model_.count(page)) return false;  // already mapped: invalid op
    auto frame = fa_.allocate(fa_.frame_bytes(), pinned_frame);
    if (!frame) return false;  // physical memory exhausted
    // Frames must never be handed out twice.
    EXPECT_TRUE(frames_.insert(*frame).second) << "frame reused: " << *frame;
    pt_.map(page, *frame);
    model_[page] = *frame;
    order_.push_back(page);
    return true;
  }

  void unmap_random(sim::Rng& rng) {
    if (order_.empty()) return;
    const std::size_t i = static_cast<std::size_t>(rng.below(order_.size()));
    const VAddr page = order_[i];
    order_[i] = order_.back();
    order_.pop_back();
    const ht::PAddr frame = model_.at(page);
    pt_.unmap(page);
    fa_.free(frame);
    EXPECT_EQ(frames_.erase(frame), 1u);
    model_.erase(page);
  }

  void touch(VAddr page, std::uint64_t offset) {
    const auto got = pt_.translate(page + offset);
    const auto it = model_.find(page);
    if (it == model_.end()) {
      EXPECT_FALSE(got.has_value()) << "phantom mapping for page " << page;
    } else {
      ASSERT_TRUE(got.has_value()) << "lost mapping for page " << page;
      EXPECT_EQ(*got, it->second + offset);
      EXPECT_TRUE(fa_.is_allocated(it->second));
    }
  }

  void toggle_present(sim::Rng& rng) {
    if (order_.empty()) return;
    const VAddr page =
        order_[static_cast<std::size_t>(rng.below(order_.size()))];
    PageTable::Entry* e = pt_.find(page);
    ASSERT_NE(e, nullptr);
    e->present = false;
    EXPECT_FALSE(pt_.translate(page).has_value());  // swap-out: faults
    e->present = true;
    EXPECT_TRUE(pt_.translate(page).has_value());
  }

  void check_invariants() const {
    EXPECT_EQ(pt_.mapped_pages(), model_.size());
    EXPECT_EQ(fa_.total_bytes() - fa_.free_bytes(),
              model_.size() * fa_.frame_bytes());
  }

  const std::unordered_map<VAddr, ht::PAddr>& model() const { return model_; }

 private:
  PageTable& pt_;
  FrameAllocator& fa_;
  std::unordered_map<VAddr, ht::PAddr> model_;
  std::set<ht::PAddr> frames_;
  std::vector<VAddr> order_;  // for uniform random eviction picks
};

void run_page_mapping_property(std::uint64_t seed, int steps) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (rerun with this seed to replay the counterexample)");
  constexpr std::uint64_t kPageBytes = 4096;
  constexpr std::uint64_t kFrames = 64;  // small pool: exhaustion is common
  constexpr std::uint64_t kPages = 256;  // VA space 4x the physical pool
  PageTable pt(kPageBytes);
  FrameAllocator fa(/*base=*/1 << 20, kFrames * kPageBytes, kPageBytes);
  PageMappingModel m(pt, fa);
  sim::Rng rng(seed);

  for (int s = 0; s < steps; ++s) {
    const VAddr page = rng.below(kPages) * kPageBytes;
    switch (rng.below(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
        m.try_map(page, rng.below(4) == 0);
        break;
      case 4:
      case 5:
        m.unmap_random(rng);
        break;
      case 6:
        m.toggle_present(rng);
        break;
      default:
        m.touch(page, rng.below(kPageBytes));
        break;
    }
    m.check_invariants();
    if (testing::Test::HasFatalFailure()) return;
  }

  // Drain: unmap everything and the allocator must be whole again.
  while (!m.model().empty()) m.unmap_random(rng);
  m.check_invariants();
  EXPECT_EQ(fa.free_bytes(), fa.total_bytes());
  EXPECT_EQ(fa.largest_free_range(), fa.total_bytes());
  EXPECT_EQ(pt.mapped_pages(), 0u);
}

TEST(PageMappingProperty, RandomOpsMatchReferenceModel) {
  for (std::uint64_t seed : {1ull, 42ull, 20260806ull}) {
    run_page_mapping_property(seed, 4000);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(PageMappingProperty, ChurnUnderExhaustionMatchesModel) {
  // Heavier map pressure than frames available: most maps fail with
  // nullopt, which the model must treat as a legal no-op, never a crash.
  for (std::uint64_t seed : {7ull, 99ull}) {
    run_page_mapping_property(seed, 8000);
    if (testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace ms::os
