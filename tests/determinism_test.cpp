// Determinism golden test for the observability layer: two fresh engines
// running the same multi-threaded workload must produce not just the same
// final simulated time but byte-identical stats JSON and byte-identical
// Chrome trace exports. This pins down every source of nondeterminism the
// instrumentation could introduce — map iteration order, double formatting,
// span sequence numbers, lane packing — on top of the DES's own replay
// guarantee.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "sim/stats.hpp"
#include "sim/tracer.hpp"
#include "test_util.hpp"
#include "workloads/random_access.hpp"

namespace ms {
namespace {

struct Capture {
  sim::Time end_time = 0;
  std::string stats_json;
  std::string trace_json;
};

Capture run_observed_workload(std::uint64_t seed,
                              core::MemorySpace::Mode mode) {
  sim::Engine engine;
  sim::Tracer tracer;
  tracer.begin_process("determinism");
  engine.set_tracer(&tracer);

  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = mode;
  if (mode == core::MemorySpace::Mode::kRemoteRegion) {
    p.placement = os::RegionManager::Placement::kRemoteOnly;
  }
  p.swap.resident_limit_bytes = 1 << 20;
  core::MemorySpace space(cluster, 1, p);

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 4 << 20;
  rp.accesses_per_thread = 1000;
  rp.seed = seed;
  workloads::RandomAccess ra(space, rp);

  core::Runner setup(engine);
  // Swap mode manages placement itself; region mode pins remote donors.
  if (mode == core::MemorySpace::Mode::kRemoteSwap) {
    setup.spawn(ra.setup({1}));
  } else {
    setup.spawn(ra.setup({2, 3}));
  }
  setup.run_all();
  core::Runner run(engine);
  run.spawn(ra.thread_fn(0, 0));
  run.spawn(ra.thread_fn(1, 1));
  run.run_all();

  Capture c;
  c.end_time = engine.now();
  sim::StatRegistry reg;
  cluster.export_stats(reg, "");
  tracer.export_txn_stats(reg, "txn.");
  std::ostringstream stats_out, trace_out;
  reg.dump_json(stats_out);
  tracer.export_chrome(trace_out);
  c.stats_json = stats_out.str();
  c.trace_json = trace_out.str();
  return c;
}

TEST(ObservedDeterminism, RemoteRegionRunsAreByteIdentical) {
  const Capture a =
      run_observed_workload(99, core::MemorySpace::Mode::kRemoteRegion);
  const Capture b =
      run_observed_workload(99, core::MemorySpace::Mode::kRemoteRegion);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  // The captures are not trivially empty.
  EXPECT_GT(a.end_time, 0u);
  EXPECT_NE(a.stats_json.find("round_trip_ps"), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"ph\":\"B\""), std::string::npos);
  // Causal layer: flow events and per-txn stats replay byte-identically
  // too (the EXPECT_EQ above covers them; this pins their presence).
  EXPECT_NE(a.trace_json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"txn\":"), std::string::npos);
  EXPECT_NE(a.stats_json.find("txn.count"), std::string::npos);
}

TEST(ObservedDeterminism, RemoteSwapRunsAreByteIdentical) {
  const Capture a =
      run_observed_workload(7, core::MemorySpace::Mode::kRemoteSwap);
  const Capture b =
      run_observed_workload(7, core::MemorySpace::Mode::kRemoteSwap);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  // Swap instrumentation shows up on its own tracks.
  EXPECT_NE(a.trace_json.find("swap."), std::string::npos);
}

// Fig. 7-style configuration: several hammering threads sharing one client
// node's RMC, the saturation scenario. Scaled to the unit-test cluster.
Capture run_fig7_style(std::uint64_t seed) {
  sim::Engine engine;
  sim::Tracer tracer;
  tracer.begin_process("fig7");
  engine.set_tracer(&tracer);

  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace space(cluster, 1, p);

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 4 << 20;
  rp.accesses_per_thread = 500;
  rp.seed = seed;
  workloads::RandomAccess ra(space, rp);

  core::Runner setup(engine);
  setup.spawn(ra.setup({2, 3}));
  setup.run_all();
  core::Runner run(engine);
  for (int t = 0; t < 4; ++t) run.spawn(ra.thread_fn(t, t));
  run.run_all();

  Capture c;
  c.end_time = engine.now();
  sim::StatRegistry reg;
  cluster.export_stats(reg, "");
  std::ostringstream stats_out, trace_out;
  reg.dump_json(stats_out);
  tracer.export_chrome(trace_out);
  c.stats_json = stats_out.str();
  c.trace_json = trace_out.str();
  return c;
}

// Fig. 8-style configuration: a control thread reads from a memory server
// while stressor nodes hammer the same server until the control thread
// finishes — the stop-flag watcher makes the interleaving maximally
// schedule-sensitive, so byte-identical replay here pins the engine hard.
sim::Task<void> stress_thread(core::MemorySpace& space, int core,
                              core::VAddr base, std::uint64_t words,
                              std::uint64_t seed, const bool* stop) {
  core::ThreadCtx t{.core = core};
  sim::Rng rng(seed);
  while (!*stop) {
    co_await space.read_u64(t, base + rng.below(words) * 8);
  }
  co_await space.sync(t);
}

Capture run_fig8_style(std::uint64_t seed) {
  constexpr ht::NodeId kServer = 4;
  constexpr ht::NodeId kControl = 1;
  constexpr ht::NodeId kStressors[] = {2, 3};
  constexpr std::uint64_t kBuffer = 1 << 20;

  sim::Engine engine;
  sim::Tracer tracer;
  tracer.begin_process("fig8");
  engine.set_tracer(&tracer);

  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;

  core::MemorySpace control_space(cluster, kControl, p);
  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = kBuffer;
  rp.accesses_per_thread = 300;
  rp.seed = seed;
  workloads::RandomAccess control(control_space, rp);

  std::vector<std::unique_ptr<core::MemorySpace>> spaces;
  core::Runner setup(engine);
  setup.spawn(control.setup({kServer}));
  for (ht::NodeId n : kStressors) {
    spaces.push_back(std::make_unique<core::MemorySpace>(cluster, n, p));
  }
  setup.run_all();

  std::vector<core::VAddr> bases(spaces.size());
  core::Runner map_setup(engine);
  for (std::size_t n = 0; n < spaces.size(); ++n) {
    map_setup.spawn([](core::MemorySpace& s, core::VAddr* out,
                       std::uint64_t bytes) -> sim::Task<void> {
      *out = co_await s.map_range_on(bytes, kServer);
    }(*spaces[n], &bases[n], kBuffer));
  }
  map_setup.run_all();

  bool stop = false;
  for (std::size_t n = 0; n < spaces.size(); ++n) {
    for (int t = 0; t < 2; ++t) {
      engine.spawn(stress_thread(*spaces[n], t, bases[n], kBuffer / 8,
                                 seed + n * 31 + static_cast<unsigned>(t),
                                 &stop));
    }
  }

  core::Runner run(engine);
  run.spawn(control.thread_fn(0, 0));
  engine.spawn([](bool* flag, core::Runner* r) -> sim::Task<void> {
    co_await r->join();
    *flag = true;
  }(&stop, &run));
  engine.run();

  Capture c;
  c.end_time = engine.now();
  sim::StatRegistry reg;
  cluster.export_stats(reg, "");
  std::ostringstream stats_out, trace_out;
  reg.dump_json(stats_out);
  tracer.export_chrome(trace_out);
  c.stats_json = stats_out.str();
  c.trace_json = trace_out.str();
  return c;
}

TEST(ObservedDeterminism, Fig7StyleRunsAreByteIdentical) {
  const Capture a = run_fig7_style(21);
  const Capture b = run_fig7_style(21);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_GT(a.end_time, 0u);
  EXPECT_NE(a.stats_json.find("round_trip_ps"), std::string::npos);
}

TEST(ObservedDeterminism, Fig8StyleRunsAreByteIdentical) {
  const Capture a = run_fig8_style(33);
  const Capture b = run_fig8_style(33);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_GT(a.end_time, 0u);
  // The congested server actually served the stressors.
  EXPECT_NE(a.stats_json.find("served_requests"), std::string::npos);
}

TEST(ObservedDeterminism, DifferentSeedsDivergeEverywhere) {
  const Capture a =
      run_observed_workload(99, core::MemorySpace::Mode::kRemoteRegion);
  const Capture c =
      run_observed_workload(100, core::MemorySpace::Mode::kRemoteRegion);
  EXPECT_NE(a.end_time, c.end_time);
  EXPECT_NE(a.stats_json, c.stats_json);
  EXPECT_NE(a.trace_json, c.trace_json);
}

TEST(ObservedDeterminism, TracingDoesNotPerturbSimulatedTime) {
  // The tracer observes; it must never change the schedule. Compare a
  // traced run against the untraced plain run of the same workload.
  const Capture traced =
      run_observed_workload(55, core::MemorySpace::Mode::kRemoteRegion);

  sim::Engine engine;  // no tracer
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace space(cluster, 1, p);
  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 4 << 20;
  rp.accesses_per_thread = 1000;
  rp.seed = 55;
  workloads::RandomAccess ra(space, rp);
  core::Runner setup(engine);
  setup.spawn(ra.setup({2, 3}));
  setup.run_all();
  core::Runner run(engine);
  run.spawn(ra.thread_fn(0, 0));
  run.spawn(ra.thread_fn(1, 1));
  run.run_all();

  EXPECT_EQ(traced.end_time, engine.now());
}

}  // namespace
}  // namespace ms
