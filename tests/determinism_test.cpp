// Determinism golden test for the observability layer: two fresh engines
// running the same multi-threaded workload must produce not just the same
// final simulated time but byte-identical stats JSON and byte-identical
// Chrome trace exports. This pins down every source of nondeterminism the
// instrumentation could introduce — map iteration order, double formatting,
// span sequence numbers, lane packing — on top of the DES's own replay
// guarantee.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/runner.hpp"
#include "sim/stats.hpp"
#include "sim/tracer.hpp"
#include "test_util.hpp"
#include "workloads/random_access.hpp"

namespace ms {
namespace {

struct Capture {
  sim::Time end_time = 0;
  std::string stats_json;
  std::string trace_json;
};

Capture run_observed_workload(std::uint64_t seed,
                              core::MemorySpace::Mode mode) {
  sim::Engine engine;
  sim::Tracer tracer;
  tracer.begin_process("determinism");
  engine.set_tracer(&tracer);

  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = mode;
  if (mode == core::MemorySpace::Mode::kRemoteRegion) {
    p.placement = os::RegionManager::Placement::kRemoteOnly;
  }
  p.swap.resident_limit_bytes = 1 << 20;
  core::MemorySpace space(cluster, 1, p);

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 4 << 20;
  rp.accesses_per_thread = 1000;
  rp.seed = seed;
  workloads::RandomAccess ra(space, rp);

  core::Runner setup(engine);
  // Swap mode manages placement itself; region mode pins remote donors.
  if (mode == core::MemorySpace::Mode::kRemoteSwap) {
    setup.spawn(ra.setup({1}));
  } else {
    setup.spawn(ra.setup({2, 3}));
  }
  setup.run_all();
  core::Runner run(engine);
  run.spawn(ra.thread_fn(0, 0));
  run.spawn(ra.thread_fn(1, 1));
  run.run_all();

  Capture c;
  c.end_time = engine.now();
  sim::StatRegistry reg;
  cluster.export_stats(reg, "");
  std::ostringstream stats_out, trace_out;
  reg.dump_json(stats_out);
  tracer.export_chrome(trace_out);
  c.stats_json = stats_out.str();
  c.trace_json = trace_out.str();
  return c;
}

TEST(ObservedDeterminism, RemoteRegionRunsAreByteIdentical) {
  const Capture a =
      run_observed_workload(99, core::MemorySpace::Mode::kRemoteRegion);
  const Capture b =
      run_observed_workload(99, core::MemorySpace::Mode::kRemoteRegion);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  // The captures are not trivially empty.
  EXPECT_GT(a.end_time, 0u);
  EXPECT_NE(a.stats_json.find("round_trip_ps"), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"ph\":\"B\""), std::string::npos);
}

TEST(ObservedDeterminism, RemoteSwapRunsAreByteIdentical) {
  const Capture a =
      run_observed_workload(7, core::MemorySpace::Mode::kRemoteSwap);
  const Capture b =
      run_observed_workload(7, core::MemorySpace::Mode::kRemoteSwap);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  // Swap instrumentation shows up on its own tracks.
  EXPECT_NE(a.trace_json.find("swap."), std::string::npos);
}

TEST(ObservedDeterminism, DifferentSeedsDivergeEverywhere) {
  const Capture a =
      run_observed_workload(99, core::MemorySpace::Mode::kRemoteRegion);
  const Capture c =
      run_observed_workload(100, core::MemorySpace::Mode::kRemoteRegion);
  EXPECT_NE(a.end_time, c.end_time);
  EXPECT_NE(a.stats_json, c.stats_json);
  EXPECT_NE(a.trace_json, c.trace_json);
}

TEST(ObservedDeterminism, TracingDoesNotPerturbSimulatedTime) {
  // The tracer observes; it must never change the schedule. Compare a
  // traced run against the untraced plain run of the same workload.
  const Capture traced =
      run_observed_workload(55, core::MemorySpace::Mode::kRemoteRegion);

  sim::Engine engine;  // no tracer
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace space(cluster, 1, p);
  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 4 << 20;
  rp.accesses_per_thread = 1000;
  rp.seed = 55;
  workloads::RandomAccess ra(space, rp);
  core::Runner setup(engine);
  setup.spawn(ra.setup({2, 3}));
  setup.run_all();
  core::Runner run(engine);
  run.spawn(ra.thread_fn(0, 0));
  run.spawn(ra.thread_fn(1, 1));
  run.run_all();

  EXPECT_EQ(traced.end_time, engine.now());
}

}  // namespace
}  // namespace ms
