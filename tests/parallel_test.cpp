// sim::ParallelExecutor and the instance-safety contract it depends on:
// ordered result collection, exception propagation, pool reuse, per-thread
// log capture, and a TSan-able smoke test that runs a mixed batch of full
// simulation instances (figure kernels + fuzz episodes) concurrently and
// checks them against serial runs. Build with -fsanitize=thread to turn the
// smoke test into a data-race hunt over the whole simulator.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "sim/config.hpp"
#include "sim/log.hpp"
#include "sim/parallel.hpp"
#include "sim/random.hpp"
#include "sweep/kernels.hpp"

namespace ms {
namespace {

TEST(ParallelExecutor, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(sim::ParallelExecutor::default_jobs(), 1);
  sim::ParallelExecutor pool(0);
  EXPECT_EQ(pool.jobs(), sim::ParallelExecutor::default_jobs());
  sim::ParallelExecutor pool3(3);
  EXPECT_EQ(pool3.jobs(), 3);
}

TEST(ParallelExecutor, MapReturnsResultsInIndexOrder) {
  sim::ParallelExecutor pool(8);
  // Reverse-staggered sleeps: late indices finish first, so index-ordered
  // results prove collection order is independent of completion order.
  auto results = pool.map(64, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds((64 - i) * 20));
    return i * i;
  });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ParallelExecutor, MapRunsEveryTaskAndRethrowsLowestIndexError) {
  sim::ParallelExecutor pool(4);
  std::atomic<int> ran{0};
  try {
    pool.map(32, [&ran](std::size_t i) -> int {
      ++ran;
      if (i == 7 || i == 21) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");  // lowest failing index wins
  }
  // No task is abandoned: the batch drains fully before rethrowing.
  EXPECT_EQ(ran.load(), 32);
}

TEST(ParallelExecutor, PoolIsReusedAcrossMapCalls) {
  sim::ParallelExecutor pool(4);
  for (int round = 0; round < 3; ++round) {
    auto results =
        pool.map(16, [round](std::size_t i) { return round * 100 + int(i); });
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(results[i], round * 100 + int(i));
    }
  }
}

TEST(ParallelExecutor, ProgressReportsEveryCompletionMonotonically) {
  sim::ParallelExecutor pool(4);
  std::vector<std::size_t> seen;
  pool.map(
      24, [](std::size_t i) { return i; },
      [&seen](std::size_t done, std::size_t total) {
        EXPECT_EQ(total, 24u);
        seen.push_back(done);  // progress calls are serialized
      });
  ASSERT_EQ(seen.size(), 24u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(ParallelExecutor, ZeroTasksCompletesImmediately) {
  sim::ParallelExecutor pool(2);
  EXPECT_TRUE(pool.map(0, [](std::size_t) { return 1; }).empty());
}

// ---------------------------------------------------------------------------
// Log instance-safety
// ---------------------------------------------------------------------------

TEST(LogCapture, PerThreadSinksIsolateConcurrentInstances) {
  sim::ParallelExecutor pool(8);
  auto captured = pool.map(16, [](std::size_t i) {
    sim::Log::Capture capture;
    // kError is enabled at the default kWarn level.
    MS_LOG(sim::LogLevel::kError, sim::us(i), "instance " << i << " line A");
    MS_LOG(sim::LogLevel::kError, sim::us(i), "instance " << i << " line B");
    return capture.text();
  });
  for (std::size_t i = 0; i < 16; ++i) {
    const std::string mine = "instance " + std::to_string(i) + " line A";
    EXPECT_NE(captured[i].find(mine), std::string::npos) << captured[i];
    // No cross-talk: another instance's lines never land in this capture.
    for (std::size_t j = 0; j < 16; ++j) {
      if (j == i) continue;
      const std::string theirs = "instance " + std::to_string(j) + " ";
      EXPECT_EQ(captured[i].find(theirs), std::string::npos);
    }
  }
}

TEST(LogCapture, ScopedSinkRestoresPreviousRouting) {
  sim::Log::Capture outer;
  MS_LOG(sim::LogLevel::kError, 0, "outer-1");
  {
    sim::Log::Capture inner;
    MS_LOG(sim::LogLevel::kError, 0, "inner-only");
    EXPECT_NE(inner.text().find("inner-only"), std::string::npos);
  }
  MS_LOG(sim::LogLevel::kError, 0, "outer-2");
  EXPECT_NE(outer.text().find("outer-1"), std::string::npos);
  EXPECT_NE(outer.text().find("outer-2"), std::string::npos);
  EXPECT_EQ(outer.text().find("inner-only"), std::string::npos);
}

TEST(LogCapture, CaptureMatchesFormattedLine) {
  sim::Log::Capture capture;
  sim::Log::write(sim::LogLevel::kError, sim::ns(1234), "hello");
  EXPECT_EQ(capture.text(), sim::Log::format_line(sim::LogLevel::kError,
                                                  sim::ns(1234), "hello") +
                                "\n");
}

// ---------------------------------------------------------------------------
// TSan smoke: 16 concurrent mixed simulation instances. Under a normal
// build this doubles as a parallel-vs-serial determinism check; under
// -fsanitize=thread it sweeps the whole simulator (engine, cluster,
// workloads, invariant checkers) for cross-instance data races.
// ---------------------------------------------------------------------------

fuzz::EpisodeResult smoke_episode(std::uint64_t seed) {
  sim::Rng knob_rng(seed * 0x9e3779b97f4a7c15ULL + 0xc0ffee);
  const fuzz::Knobs k = fuzz::Knobs::generate(knob_rng);
  return fuzz::run_episode(k, fuzz::EpisodeOptions{seed, sim::us(20),
                                                   fuzz::Mutation::kNone,
                                                   nullptr});
}

sweep::CellOutput smoke_kernel(std::size_t i) {
  sim::Config cfg;
  cfg.set("hops", std::to_string(i % 4));
  cfg.set("accesses", "100");
  return sweep::run_kernel("fig6", cfg);
}

TEST(TsanSmoke, SixteenMixedEpisodesConcurrentMatchSerial) {
  // Serial references first (tasks 0..7 = fig6 points, 8..15 = fuzz seeds).
  std::vector<sweep::CellOutput> serial_cells;
  for (std::size_t i = 0; i < 8; ++i) serial_cells.push_back(smoke_kernel(i));
  std::vector<fuzz::EpisodeResult> serial_eps;
  for (std::uint64_t s = 1; s <= 8; ++s) serial_eps.push_back(smoke_episode(s));

  struct Outcome {
    sweep::CellOutput cell;
    fuzz::EpisodeResult ep;
  };
  sim::ParallelExecutor pool(8);
  auto outcomes = pool.map(16, [](std::size_t i) {
    Outcome o;
    if (i < 8) {
      o.cell = smoke_kernel(i);
    } else {
      o.ep = smoke_episode(i - 7);  // seeds 1..8
    }
    return o;
  });

  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_EQ(outcomes[i].cell.metrics.size(),
              serial_cells[i].metrics.size());
    for (std::size_t m = 0; m < serial_cells[i].metrics.size(); ++m) {
      EXPECT_EQ(outcomes[i].cell.metrics[m].first,
                serial_cells[i].metrics[m].first);
      // Bit-exact: a concurrent instance must not perturb another at all.
      EXPECT_EQ(outcomes[i].cell.metrics[m].second,
                serial_cells[i].metrics[m].second);
    }
  }
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& par = outcomes[8 + i].ep;
    const auto& ser = serial_eps[i];
    EXPECT_EQ(par.events, ser.events);
    EXPECT_EQ(par.sim_time, ser.sim_time);
    EXPECT_EQ(par.checks, ser.checks);
    EXPECT_EQ(par.violations.size(), ser.violations.size());
  }
}

}  // namespace
}  // namespace ms
