// Workload correctness: every kernel computes a real, checkable result
// while running through the simulated memory system, in more than one
// backing mode (the figures only make sense if the workloads are honest).
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "test_util.hpp"
#include "workloads/blackscholes.hpp"
#include "workloads/canneal.hpp"
#include "workloads/random_access.hpp"
#include "workloads/raytrace.hpp"
#include "workloads/streamcluster.hpp"

namespace ms::workloads {
namespace {

core::MemorySpace::Params mode_params(core::MemorySpace::Mode mode,
                                      std::uint64_t resident = 64 * 4096) {
  core::MemorySpace::Params p;
  p.mode = mode;
  if (mode == core::MemorySpace::Mode::kRemoteSwap ||
      mode == core::MemorySpace::Mode::kDiskSwap) {
    p.swap.resident_limit_bytes = resident;
  }
  if (mode == core::MemorySpace::Mode::kRemoteRegion) {
    p.placement = os::RegionManager::Placement::kRemoteOnly;
  }
  return p;
}

TEST(RandomAccessTest, VerifiesPatternAndCountsReads) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  core::MemorySpace space(
      cluster, 1, mode_params(core::MemorySpace::Mode::kRemoteRegion));
  RandomAccess::Params p;
  p.buffer_bytes = 1 << 20;
  p.accesses_per_thread = 1000;
  RandomAccess ra(space, p);
  core::Runner setup(e);
  setup.spawn(ra.setup({2, 3}));
  setup.run_all();
  core::Runner r(e);
  r.spawn(ra.thread_fn(0, 0));
  r.run_all();
  EXPECT_EQ(ra.total_reads(), 1000u);
  EXPECT_EQ(ra.errors(), 0u);
}

TEST(RandomAccessTest, MoreThreadsFinishFasterUntilSaturation) {
  auto run_with_threads = [](int threads) {
    sim::Engine e;
    core::Cluster cluster(e, test::small_config());
    core::MemorySpace space(
        cluster, 1, mode_params(core::MemorySpace::Mode::kRemoteRegion));
    RandomAccess::Params p;
    p.buffer_bytes = 4 << 20;
    p.accesses_per_thread = 2000 / static_cast<std::uint64_t>(threads);
    RandomAccess ra(space, p);
    core::Runner setup(e);
    setup.spawn(ra.setup({2}));
    setup.run_all();
    core::Runner r(e);
    for (int i = 0; i < threads; ++i) r.spawn(ra.thread_fn(i, i));
    return r.run_all();
  };
  const sim::Time one = run_with_threads(1);
  const sim::Time two = run_with_threads(2);
  // Two threads with one outstanding slot each overlap their round trips.
  EXPECT_LT(two, one);
  EXPECT_GT(two, one / 4);
}

struct KernelCase {
  core::MemorySpace::Mode mode;
  const char* name;
};

class KernelModes : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelModes, BlackscholesMatchesOracle) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  core::MemorySpace space(cluster, 1, mode_params(GetParam().mode));
  Blackscholes::Params p;
  p.options = 2'000;
  Blackscholes bs(space, p);
  core::Runner r(e);
  r.spawn([](Blackscholes& b, core::MemorySpace& s) -> sim::Task<void> {
    co_await b.setup();
    core::ThreadCtx t;
    co_await b.run(t);
    (void)s;
  }(bs, space));
  const sim::Time elapsed = r.run_all();
  EXPECT_GT(elapsed, 0u);

  // Oracle: regenerate the option stream host-side (same seed and
  // generator as setup) and compare the checksum of simulated results.
  sim::Rng rng(p.seed);
  double expect = 0;
  for (std::uint64_t i = 0; i < p.options; ++i) {
    Blackscholes::OptionData o{
        .spot = 20.0 + rng.uniform() * 80.0,
        .strike = 20.0 + rng.uniform() * 80.0,
        .rate = 0.01 + rng.uniform() * 0.09,
        .volatility = 0.10 + rng.uniform() * 0.50,
        .maturity = 0.25 + rng.uniform() * 2.0,
        .is_put = static_cast<std::uint32_t>(rng.below(2)),
    };
    expect += Blackscholes::price(o);
  }
  EXPECT_NEAR(bs.checksum(), expect, 1e-6 * expect);
}

TEST_P(KernelModes, RaytraceHashMatchesExpectation) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  core::MemorySpace space(cluster, 1, mode_params(GetParam().mode));
  Raytrace::Params p;
  p.depth = 12;
  p.rays = 2'000;
  Raytrace rt(space, p);
  core::Runner r(e);
  r.spawn([](Raytrace& w) -> sim::Task<void> {
    co_await w.setup();
    core::ThreadCtx t;
    co_await w.run(t);
  }(rt));
  r.run_all();
  EXPECT_EQ(rt.result_hash(), rt.expected_hash());
}

TEST_P(KernelModes, StreamclusterAssignmentsMatchOracle) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  core::MemorySpace space(cluster, 1, mode_params(GetParam().mode));
  Streamcluster::Params p;
  p.points = 3'000;
  Streamcluster sc(space, p);
  core::Runner r(e);
  r.spawn([](Streamcluster& w) -> sim::Task<void> {
    co_await w.setup();
    core::ThreadCtx t;
    co_await w.run(t);
  }(sc));
  r.run_all();
  EXPECT_EQ(sc.assignment_sum(), sc.expected_assignment_sum());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, KernelModes,
    ::testing::Values(
        KernelCase{core::MemorySpace::Mode::kLocal, "local"},
        KernelCase{core::MemorySpace::Mode::kRemoteRegion, "remote"},
        KernelCase{core::MemorySpace::Mode::kRemoteSwap, "swap"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(BlackscholesTest, PriceOracleKnownValues) {
  // Standard textbook check: S=100 K=100 r=5% sigma=20% T=1 call ~ 10.45.
  Blackscholes::OptionData call{.spot = 100, .strike = 100, .rate = 0.05,
                                .volatility = 0.2, .maturity = 1.0,
                                .is_put = 0};
  EXPECT_NEAR(Blackscholes::price(call), 10.45, 0.02);
  Blackscholes::OptionData put = call;
  put.is_put = 1;
  // Put-call parity: C - P = S - K e^{-rT}.
  const double parity = Blackscholes::price(call) - Blackscholes::price(put);
  EXPECT_NEAR(parity, 100.0 - 100.0 * std::exp(-0.05), 0.02);
}

TEST(CannealTest, AnnealingReducesWireLength) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  core::MemorySpace space(
      cluster, 1, mode_params(core::MemorySpace::Mode::kRemoteRegion));
  Canneal::Params p;
  p.elements = 1 << 12;
  p.steps = 4'000;
  p.initial_temperature = 1.0;  // mostly greedy: length must drop
  Canneal cn(space, p);
  double before = 0, after = 0;
  core::Runner r(e);
  r.spawn([](Canneal& w, double* b, double* a) -> sim::Task<void> {
    co_await w.setup();
    *b = w.total_wire_length();
    core::ThreadCtx t;
    co_await w.run(t);
    *a = w.total_wire_length();
  }(cn, &before, &after));
  r.run_all();
  EXPECT_GT(cn.accepted_swaps(), 0u);
  EXPECT_LT(after, before);
}

TEST(CannealTest, RandomAccessesThrashUnderSwap) {
  // The Fig. 11 contrast in miniature: canneal under swap pays far more
  // than under remote memory for the same number of steps.
  auto run_mode = [](core::MemorySpace::Mode mode) {
    sim::Engine e;
    core::Cluster cluster(e, test::small_config());
    core::MemorySpace space(cluster, 1, mode_params(mode, /*resident=*/32 * 4096));
    Canneal::Params p;
    p.elements = 1 << 14;  // 1 MiB footprint vs 128 KiB resident
    p.steps = 300;
    Canneal cn(space, p);
    core::Runner r(e);
    sim::Time elapsed = 0;
    r.spawn([](Canneal& w, sim::Engine& eng, sim::Time* out) -> sim::Task<void> {
      co_await w.setup();
      core::ThreadCtx t;
      const sim::Time start = eng.now();
      co_await w.run(t);
      *out = eng.now() - start;
    }(cn, e, &elapsed));
    r.run_all();
    return elapsed;
  };
  const sim::Time remote = run_mode(core::MemorySpace::Mode::kRemoteRegion);
  const sim::Time swapped = run_mode(core::MemorySpace::Mode::kRemoteSwap);
  EXPECT_GT(swapped, 5 * remote);
}

TEST(RaytraceTest, RejectsBadDepth) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  core::MemorySpace space(
      cluster, 1, mode_params(core::MemorySpace::Mode::kLocal));
  Raytrace::Params p;
  p.depth = 1;
  EXPECT_THROW(Raytrace(space, p), std::invalid_argument);
}

}  // namespace
}  // namespace ms::workloads
