// Tests for the address map (node-prefix arithmetic), the node access path
// (cache hits vs misses, outstanding limits, write-backs) and the RMC
// (forwarding, loopback, port contention, prefetcher).
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "node/address_map.hpp"
#include "rmc/prefetcher.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace ms {
namespace {

using node::AddressMap;

TEST(AddressMap, PrefixRoundTripsAcrossNodeRange) {
  for (ht::NodeId n : {1, 2, 3, 255, 4096, 16383}) {
    for (ht::PAddr local : {ht::PAddr{0}, ht::PAddr{0x1234},
                            node::kLocalSpaceBytes - 64}) {
      const ht::PAddr remote = node::make_remote(n, local);
      EXPECT_EQ(node::node_of(remote), n);
      EXPECT_EQ(node::local_part(remote), local);
      EXPECT_TRUE(node::has_prefix(remote));
    }
  }
}

TEST(AddressMap, LocalAddressesHaveNoPrefix) {
  EXPECT_FALSE(node::has_prefix(0));
  EXPECT_FALSE(node::has_prefix(node::kLocalSpaceBytes - 1));
  EXPECT_EQ(node::node_of(0x1000), 0);
}

TEST(AddressMap, RejectsInvalidPrefixInputs) {
  EXPECT_THROW(node::make_remote(0, 0), std::invalid_argument);
  EXPECT_THROW(node::make_remote(1, node::kLocalSpaceBytes),
               std::invalid_argument);
}

TEST(AddressMap, PaperExampleFromFig4) {
  // Node 3 reserves memory at 0x40000000; the prefixed address node 1 gets
  // back decodes to node 3 / the original local address.
  const ht::PAddr granted = node::make_remote(3, 0x40000000);
  EXPECT_EQ(node::node_of(granted), 3);
  EXPECT_EQ(node::local_part(granted), 0x40000000u);
  // 14 MSBs of the 48-bit address carry the node id.
  EXPECT_EQ(granted >> 34, 3u);
}

TEST(AddressMap, BarsSplitLocalRangeAcrossSockets) {
  // 8 GiB local split over 4 sockets (2 GiB each). Note a full 16 GiB node
  // uses the entire 34-bit local space, so the "unbacked" window only
  // exists for smaller configurations.
  AddressMap map(4, ht::PAddr{8} << 30);
  EXPECT_EQ(map.target_of(0), 0);
  EXPECT_EQ(map.target_of((ht::PAddr{2} << 30)), 1);
  EXPECT_EQ(map.target_of((ht::PAddr{7} << 30)), 3);
  EXPECT_EQ(map.target_of(node::make_remote(5, 0)), AddressMap::kRmc);
  EXPECT_THROW(map.target_of((ht::PAddr{9} << 30)), std::out_of_range);
  EXPECT_EQ(map.socket_base(2), ht::PAddr{4} << 30);
}

TEST(AddressMap, RejectsUnevenSplit) {
  EXPECT_THROW(AddressMap(3, (ht::PAddr{16} << 30) + 4096),
               std::invalid_argument);
  EXPECT_THROW(AddressMap(0, ht::PAddr{1} << 30), std::invalid_argument);
}

// ---- Node + RMC integration on a small cluster ----

class NodeRmcTest : public ::testing::Test {
 public:
  NodeRmcTest() : cluster_(engine_, test::small_config()) {}

  sim::Task<sim::Time> timed_access(ht::NodeId n, int core, ht::PAddr addr,
                                    bool write) {
    const sim::Time start = engine_.now();
    sim::Time left =
        co_await cluster_.node(n).access(core, addr, 8, write, 0);
    co_await engine_.delay(left);  // realize any synchronous charge
    co_return engine_.now() - start;
  }

  sim::Engine engine_;
  core::Cluster cluster_;
};

sim::Task<void> probe_latencies(NodeRmcTest* t, core::Cluster& cluster,
                                sim::Time* local_miss, sim::Time* local_hit,
                                sim::Time* remote_miss, sim::Time* remote_hit) {
  *local_miss = co_await t->timed_access(1, 0, 0x10000, false);
  *local_hit = co_await t->timed_access(1, 0, 0x10000, false);
  const ht::PAddr remote = node::make_remote(2, 0x20000);
  *remote_miss = co_await t->timed_access(1, 0, remote, false);
  *remote_hit = co_await t->timed_access(1, 0, remote, false);
  (void)cluster;
}

TEST_F(NodeRmcTest, LatencyOrderingLocalVsRemoteHitVsMiss) {
  sim::Time local_miss = 0, local_hit = 0, remote_miss = 0, remote_hit = 0;
  engine_.spawn(probe_latencies(this, cluster_, &local_miss, &local_hit,
                                &remote_miss, &remote_hit));
  engine_.run();

  EXPECT_GT(local_miss, local_hit);
  EXPECT_GT(remote_miss, local_miss);
  // Remote lines are cached write-back, so a remote hit is as cheap as a
  // local one — the prototype's entire point about caching remote ranges.
  EXPECT_EQ(remote_hit, local_hit);
  // Remote miss takes ~1 us class round trip, local well under 200 ns.
  EXPECT_GT(remote_miss, sim::ns(500));
  EXPECT_LT(remote_miss, sim::us(5));
  EXPECT_LT(local_miss, sim::ns(300));
  EXPECT_EQ(cluster_.rmc(1).client_requests(), 1u);
  EXPECT_EQ(cluster_.rmc(2).served_requests(), 1u);
}

sim::Task<void> loopback_access(NodeRmcTest* t, sim::Time* out) {
  *out = co_await t->timed_access(1, 0, node::make_remote(1, 0x30000), false);
}

TEST_F(NodeRmcTest, LoopbackPrefixTurnsAroundInsideRmc) {
  sim::Time lat = 0;
  engine_.spawn(loopback_access(this, &lat));
  engine_.run();
  EXPECT_EQ(cluster_.rmc(1).loopbacks(), 1u);
  EXPECT_EQ(cluster_.fabric().packets_delivered(), 0u);  // never hits the mesh
  EXPECT_GT(lat, sim::ns(200));  // still pays RMC processing
}

sim::Task<void> dirty_then_evict(NodeRmcTest* t, core::Cluster& cluster) {
  // Write a remote line, then force eviction by filling its set; the dirty
  // remote victim must be written back through the RMC.
  const ht::PAddr target = node::make_remote(2, 0x40000);
  co_await t->timed_access(1, 0, target, true);
  const auto& cache = cluster.node(1).core(0).cache();
  const std::uint64_t sets =
      cache.params().size_bytes / (static_cast<std::uint64_t>(cache.params().ways) *
                                   cache.params().line_bytes);
  const std::uint64_t stride = sets * cache.params().line_bytes;
  for (int i = 1; i <= cache.params().ways + 1; ++i) {
    co_await t->timed_access(1, 0,
                             node::make_remote(2, 0x40000 + i * stride), false);
  }
}

TEST_F(NodeRmcTest, DirtyRemoteEvictionWritesBackOverFabric) {
  engine_.spawn(dirty_then_evict(this, cluster_));
  engine_.run();
  bool wrote_back = false;
  // The write-back appears as a served write at the donor node's RMC.
  wrote_back = cluster_.rmc(2).served_requests() > 0 &&
               cluster_.node(2).mc(0).writes() +
                       cluster_.node(2).mc(1).writes() >
                   0;
  EXPECT_TRUE(wrote_back);
}

sim::Task<void> flush_core(core::Cluster& cluster, NodeRmcTest* t) {
  co_await t->timed_access(1, 0, node::make_remote(2, 0x50000), true);
  co_await cluster.node(1).flush_core_cache(0);
}

TEST_F(NodeRmcTest, ExplicitFlushWritesDirtyRemoteLines) {
  engine_.spawn(flush_core(cluster_, this));
  engine_.run();
  std::uint64_t donor_writes = 0;
  for (int s = 0; s < cluster_.config().node.sockets; ++s) {
    donor_writes += cluster_.node(2).mc(s).writes();
  }
  EXPECT_GE(donor_writes, 1u);
  EXPECT_FALSE(cluster_.node(1).core(0).cache().contains(
      node::make_remote(2, 0x50000)));
}

sim::Task<void> hammer_remote(NodeRmcTest* t, int accesses, ht::NodeId donor,
                              int core) {
  for (int i = 0; i < accesses; ++i) {
    // Distinct lines: all misses, all remote.
    co_await t->timed_access(1, core,
                             node::make_remote(donor, 0x100000 + i * 64),
                             false);
  }
}

TEST_F(NodeRmcTest, SingleOutstandingSlotSerializesOneThread) {
  // One thread, dependent accesses: duration scales linearly with count.
  engine_.spawn(hammer_remote(this, 10, 2, 0));
  engine_.run();
  const sim::Time ten = engine_.now();

  sim::Engine e2;
  core::Cluster c2(e2, test::small_config());
  NodeRmcTest* self = this;
  (void)self;
  // Re-run with 20 accesses on a fresh cluster.
  struct Helper {
    static sim::Task<void> run(core::Cluster& c, sim::Engine& e, int n) {
      for (int i = 0; i < n; ++i) {
        sim::Time left = co_await c.node(1).access(
            0, node::make_remote(2, 0x100000 + i * 64), 8, false, 0);
        co_await e.delay(left);
      }
    }
  };
  e2.spawn(Helper::run(c2, e2, 20));
  e2.run();
  EXPECT_NEAR(static_cast<double>(e2.now()), 2.0 * static_cast<double>(ten),
              0.2 * static_cast<double>(ten));
}

TEST(Prefetcher, DetectsSequentialStreamAfterTwoMisses) {
  rmc::StreamPrefetcher pf(
      rmc::StreamPrefetcher::Params{.degree = 4, .streams_per_core = 2},
      /*cores=*/2);
  EXPECT_TRUE(pf.enabled());
  EXPECT_TRUE(pf.observe(0, 0x1000).empty());   // first touch: learn
  auto fetches = pf.observe(0, 0x1040);          // +64: confirmed
  ASSERT_EQ(fetches.size(), 4u);
  EXPECT_EQ(fetches[0], 0x1080u);
  EXPECT_EQ(fetches[3], 0x1140u);
  EXPECT_EQ(pf.issued(), 4u);
}

TEST(Prefetcher, RandomMissesNeverTrigger) {
  rmc::StreamPrefetcher pf(rmc::StreamPrefetcher::Params{.degree = 4},
                           /*cores=*/1);
  sim::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto f = pf.observe(0, rng.below(1 << 20) * 128);  // 128B stride = no match
    EXPECT_TRUE(f.empty());
  }
}

TEST(Prefetcher, PerCoreStreamsAreIndependent) {
  rmc::StreamPrefetcher pf(rmc::StreamPrefetcher::Params{.degree = 2},
                           /*cores=*/2);
  pf.observe(0, 0x1000);
  EXPECT_TRUE(pf.observe(1, 0x1040).empty());  // other core: no stream yet
  EXPECT_FALSE(pf.observe(0, 0x1040).empty());
}

TEST(Prefetcher, DisabledByZeroDegree) {
  rmc::StreamPrefetcher pf(rmc::StreamPrefetcher::Params{.degree = 0},
                           /*cores=*/1);
  EXPECT_FALSE(pf.enabled());
  pf.observe(0, 0x1000);
  EXPECT_TRUE(pf.observe(0, 0x1040).empty());
}

}  // namespace
}  // namespace ms
