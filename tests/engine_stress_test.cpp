// Equivalence property suite for the timing-wheel engine.
//
// A randomized workload of schedule / schedule_at / spawn / cancel
// operations is driven through sim::Engine (the hierarchical timing wheel)
// and through RefEngine — a retained copy of the pre-wheel binary-heap
// scheduler ordered by (timestamp, sequence) — and the two firing logs must
// match entry for entry: same events, same timestamps, same order,
// including same-timestamp FIFO ties, events scheduled at now() from inside
// a running event, and cancellation outcomes. Every failure message carries
// the seed, so a failing run replays exactly.

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace {

using ms::sim::Time;

// ---------------------------------------------------------------------------
// Reference model: the pre-wheel heap scheduler, verbatim except that it
// returns cancellation handles (lazy delete — a cancelled event still pops,
// as a no-op, which cannot affect the relative order of live events).
// ---------------------------------------------------------------------------
class RefEngine {
 public:
  class TimerHandle {
   public:
    TimerHandle() = default;

   private:
    friend class RefEngine;
    // 0 = pending, 1 = fired, 2 = cancelled.
    std::shared_ptr<int> state_;
  };

  RefEngine() = default;
  RefEngine(const RefEngine&) = delete;
  RefEngine& operator=(const RefEngine&) = delete;
  ~RefEngine() {
    for (auto h : drivers_) {
      if (h && !h.done()) h.destroy();
    }
  }

  Time now() const { return now_; }

  template <typename F>
  TimerHandle schedule(Time delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  template <typename F>
  TimerHandle schedule_at(Time when, F&& fn) {
    if (when < now_) {
      throw std::logic_error("RefEngine: scheduling into the past");
    }
    auto state = std::make_shared<int>(0);
    queue_.push(Event{when, next_seq_++,
                      [state, f = std::forward<F>(fn)]() mutable {
                        if (*state == 0) {
                          *state = 1;
                          f();
                        }
                      }});
    TimerHandle h;
    h.state_ = state;
    return h;
  }

  bool cancel(TimerHandle& h) {
    auto state = std::move(h.state_);
    if (state && *state == 0) {
      *state = 2;
      return true;
    }
    return false;
  }

  struct DelayAwaiter {
    RefEngine* engine;
    Time delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->schedule(delay, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(Time d) { return DelayAwaiter{this, d}; }

  void spawn(ms::sim::Task<void> task) {
    auto driver = drive(std::move(task));
    auto h = driver.handle;
    drivers_.push_back(h);
    schedule(0, [h] { h.resume(); });
  }

  void run() {
    while (step()) {
    }
  }

  Time run_until(Time deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) {
      step();
    }
    if (now_ < deadline) now_ = deadline;
    return now_;
  }

  int live_processes() const { return live_; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  struct Detached {
    struct promise_type {
      Detached get_return_object() {
        return {std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() { std::terminate(); }
    };
    std::coroutine_handle<promise_type> handle;
  };

  struct SelfHandle {
    std::coroutine_handle<> h;
    bool await_ready() noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> current) noexcept {
      h = current;
      return false;
    }
    std::coroutine_handle<> await_resume() noexcept { return h; }
  };

  Detached drive(ms::sim::Task<void> task) {
    auto self = co_await SelfHandle{};
    ++live_;
    try {
      co_await std::move(task);
    } catch (...) {
      if (!first_error_) first_error_ = std::current_exception();
    }
    --live_;
    std::erase(drivers_, self);
  }

  bool step() {
    if (queue_.empty()) return false;
    auto& top = const_cast<Event&>(queue_.top());
    Time when = top.when;
    auto fn = std::move(top.fn);
    queue_.pop();
    now_ = when;
    fn();
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
    return true;
  }

  Time now_ = 0;
  std::vector<std::coroutine_handle<>> drivers_;
  std::uint64_t next_seq_ = 0;
  int live_ = 0;
  std::exception_ptr first_error_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
};

// ---------------------------------------------------------------------------
// Randomized driver, templated over the engine. Both instantiations draw
// from identically-seeded RNGs; since every draw happens while an event
// fires (or in the mirrored setup/run code), equivalent engines produce
// identical logs and any divergence in firing order derails the comparison
// immediately.
// ---------------------------------------------------------------------------

// Log entries: (id << 2) | kind.
enum LogKind : std::uint64_t {
  kFired = 0,      // top-level scheduled op fired
  kCoroStep = 1,   // spawned coroutine passed a delay
  kCancelHit = 2,  // cancel() returned true
  kCancelMiss = 3  // cancel() returned false (already fired)
};

template <typename E>
struct Driver {
  E& eng;
  ms::sim::Rng rng;
  std::uint64_t budget;  // schedule/spawn operations left
  std::uint64_t next_id = 0;
  std::vector<std::pair<std::uint64_t, Time>> log;
  std::vector<std::pair<typename E::TimerHandle, std::uint64_t>> handles;

  Driver(E& e, std::uint64_t seed, std::uint64_t ops)
      : eng(e), rng(seed), budget(ops) {}

  bool take() {
    if (budget == 0) return false;
    --budget;
    return true;
  }

  Time rand_delay() {
    const std::uint64_t r = rng.below(100);
    if (r < 55) return ms::sim::ps(rng.below(5000));  // near-wheel scale
    if (r < 75) return 0;                             // same-timestamp ties
    if (r < 90) return ms::sim::ns(rng.below(2000));  // level-1/2 scale
    if (r < 99) return ms::sim::us(1 + rng.below(20));
    return ms::sim::ms_(1 + rng.below(5));  // deep overflow levels
  }

  void schedule_op(Time delay) {
    const std::uint64_t id = next_id++;
    eng.schedule(delay, [this, id] { fire(id); });
  }

  void fire(std::uint64_t id) {
    log.emplace_back((id << 2) | kFired, eng.now());
    follow_up();
  }

  ms::sim::Task<void> proc() {
    const int hops = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < hops; ++i) {
      co_await eng.delay(rand_delay());
      const std::uint64_t id = next_id++;
      log.emplace_back((id << 2) | kCoroStep, eng.now());
    }
    if (take()) schedule_op(rand_delay());
  }

  void follow_up() {
    const std::uint64_t kind = rng.below(100);
    if (kind < 38) {
      if (take()) schedule_op(rand_delay());
    } else if (kind < 52) {
      // Absolute-time schedule at now(), from inside a running event: must
      // fire after every event already queued for this timestamp.
      if (take()) {
        const std::uint64_t id = next_id++;
        eng.schedule_at(eng.now(), [this, id] { fire(id); });
      }
    } else if (kind < 66) {
      // FIFO tie pair landing on the same future timestamp.
      const Time d = rand_delay();
      if (take()) schedule_op(d);
      if (take()) schedule_op(d);
    } else if (kind < 80) {
      if (take()) {
        const std::uint64_t id = next_id++;
        auto h = eng.schedule(rand_delay(), [this, id] { fire(id); });
        handles.emplace_back(h, id);
      }
    } else if (kind < 92) {
      // Cancel a tracked timer; it may have fired already — both engines
      // must agree on the outcome.
      if (!handles.empty()) {
        const std::size_t idx =
            static_cast<std::size_t>(rng.below(handles.size()));
        auto [h, id] = handles[idx];
        handles[idx] = handles.back();
        handles.pop_back();
        const bool hit = eng.cancel(h);
        log.emplace_back((id << 2) | (hit ? kCancelHit : kCancelMiss),
                         eng.now());
      }
    } else {
      if (take()) eng.spawn(proc());
    }
  }

  void seed_initial() {
    for (int i = 0; i < 64; ++i) {
      if (take()) schedule_op(rand_delay());
    }
    // Far-future events parking in every overflow level (bit 14 → level 1
    // ... bit 62 → level 7); they fire during the final drain.
    for (int bit = 14; bit <= 62; bit += 8) {
      if (take()) schedule_op(Time{1} << bit);
    }
  }
};

template <typename E>
Driver<E> run_workload(E& eng, std::uint64_t seed, std::uint64_t ops) {
  Driver<E> d(eng, seed, ops);
  d.seed_initial();
  // Chunked run exercising the run_until deadline path (deadlines fall
  // between, on, and before pending timestamps), then drain.
  ms::sim::Rng chunks(seed ^ 0x9e3779b97f4a7c15ULL);
  Time t = 0;
  for (int i = 0; i < 40; ++i) {
    t += ms::sim::ns(chunks.below(50'000));
    eng.run_until(t);
  }
  eng.run();
  return d;
}

void expect_equivalent(std::uint64_t seed, std::uint64_t ops) {
  SCOPED_TRACE(::testing::Message()
               << "replay: seed=" << seed << " ops=" << ops);
  ms::sim::Engine wheel;
  RefEngine heap;
  const auto a = run_workload(wheel, seed, ops);
  const auto b = run_workload(heap, seed, ops);

  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    ASSERT_EQ(a.log[i], b.log[i])
        << "first divergence at log index " << i << " (id " << (a.log[i].first >> 2)
        << " kind " << (a.log[i].first & 3) << " vs id " << (b.log[i].first >> 2)
        << " kind " << (b.log[i].first & 3) << ")";
  }
  EXPECT_EQ(wheel.live_processes(), 0);
  EXPECT_EQ(heap.live_processes(), 0);
  EXPECT_EQ(wheel.pending_events(), 0u);
}

TEST(EngineStress, WheelMatchesHeapOnMillionOpWorkload) {
  expect_equivalent(/*seed=*/0xC0FFEE, /*ops=*/1'000'000);
}

TEST(EngineStress, WheelMatchesHeapAcrossSeeds) {
  for (std::uint64_t seed : {1ULL, 42ULL, 20260806ULL}) {
    expect_equivalent(seed, /*ops=*/50'000);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// The node pool must not grow while a bounded number of events is in
// flight, no matter how many total events pass through: scheduling is
// allocation-free at steady state.
TEST(EngineStress, SteadyStateDoesNotGrowThePool) {
  ms::sim::Engine e;
  ms::sim::Rng rng(7);
  struct Loop {
    ms::sim::Engine& e;
    ms::sim::Rng& rng;
    std::uint64_t remaining;
    void pump() {
      if (remaining == 0) return;
      --remaining;
      e.schedule(ms::sim::ps(rng.below(100'000)), [this] { pump(); });
    }
  };
  Loop loop{e, rng, 200'000};
  for (int i = 0; i < 512; ++i) loop.pump();
  e.run_until(ms::sim::ns(1));  // warm the pool with the full pending set
  const std::size_t warm = e.allocated_nodes();
  e.run();
  EXPECT_EQ(e.allocated_nodes(), warm);
  EXPECT_EQ(e.events_processed(), 200'000u);
}

}  // namespace
