// Unit tests for the discrete-event kernel: engine ordering, coroutine
// semantics, synchronization primitives, RNG, statistics, config, tables.
#include <gtest/gtest.h>

#include <vector>

#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/table.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace ms::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(ns(1), 1000u);
  EXPECT_EQ(us(1), ns(1000));
  EXPECT_EQ(ms_(1), us(1000));
  EXPECT_EQ(sec(1), ms_(1000));
  EXPECT_DOUBLE_EQ(to_ns(ns(250)), 250.0);
  EXPECT_EQ(ns_d(2.5), 2500u);
}

TEST(Time, FormatPicksUnits) {
  EXPECT_EQ(format_time(ps(5)), "5 ps");
  EXPECT_NE(format_time(ns(100)).find("ns"), std::string::npos);
  EXPECT_NE(format_time(us(100)).find("us"), std::string::npos);
  EXPECT_NE(format_time(sec(100)).find(" s"), std::string::npos);
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(ns(30), [&] { order.push_back(3); });
  e.schedule(ns(10), [&] { order.push_back(1); });
  e.schedule(ns(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), ns(30));
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, TiesBreakFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule(ns(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, SchedulingIntoThePastThrows) {
  Engine e;
  e.schedule(ns(10), [&] {
    EXPECT_THROW(e.schedule_at(ns(5), [] {}), std::logic_error);
  });
  e.run();
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule(ns(10), [&] { ++fired; });
  e.schedule(ns(100), [&] { ++fired; });
  e.run_until(ns(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), ns(50));
  e.run();
  EXPECT_EQ(fired, 2);
}

Task<void> delay_chain(Engine& e, std::vector<Time>& stamps) {
  co_await e.delay(ns(10));
  stamps.push_back(e.now());
  co_await e.delay(ns(15));
  stamps.push_back(e.now());
}

TEST(Engine, SpawnedProcessObservesDelays) {
  Engine e;
  std::vector<Time> stamps;
  e.spawn(delay_chain(e, stamps));
  EXPECT_EQ(e.live_processes(), 0);  // starts via the queue
  e.run();
  EXPECT_EQ(stamps, (std::vector<Time>{ns(10), ns(25)}));
  EXPECT_EQ(e.live_processes(), 0);
}

Task<int> answer() { co_return 42; }
Task<int> add_one() { co_return 1 + co_await answer(); }
Task<void> check_nested(bool& done) {
  EXPECT_EQ(co_await add_one(), 43);
  done = true;
}

TEST(Task, NestedAwaitPropagatesValues) {
  Engine e;
  bool done = false;
  e.spawn(check_nested(done));
  e.run();
  EXPECT_TRUE(done);
}

Task<void> thrower() {
  co_await std::suspend_never{};
  throw std::runtime_error("boom");
}

TEST(Task, ExceptionPropagatesOutOfRun) {
  Engine e;
  e.spawn(thrower());
  EXPECT_THROW(e.run(), std::runtime_error);
}

Task<int> never_started_counter(int& constructed) {
  ++constructed;
  co_return 7;
}

TEST(Task, LazyTaskNeverRunsIfNotAwaited) {
  int constructed = 0;
  {
    auto t = never_started_counter(constructed);
    EXPECT_TRUE(t.valid());
  }  // destroyed without running
  EXPECT_EQ(constructed, 0);
}

Task<void> hold_sem(Engine& e, Semaphore& s, Time hold, std::vector<int>& log,
                    int id) {
  co_await s.acquire();
  log.push_back(id);
  co_await e.delay(hold);
  s.release();
}

TEST(Semaphore, SerializesFifo) {
  Engine e;
  Semaphore s(e, 1);
  std::vector<int> log;
  for (int i = 0; i < 4; ++i) e.spawn(hold_sem(e, s, ns(10), log, i));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(e.now(), ns(40));
  EXPECT_EQ(s.available(), 1);
}

TEST(Semaphore, TryAcquireDoesNotBarge) {
  Engine e;
  Semaphore s(e, 1);
  std::vector<int> log;
  e.spawn(hold_sem(e, s, ns(10), log, 0));
  e.spawn(hold_sem(e, s, ns(10), log, 1));
  bool barged = true;
  e.schedule(ns(5), [&] { barged = s.try_acquire(); });
  e.run();
  // Token was handed directly to waiter 1; the barger must fail.
  EXPECT_FALSE(barged);
  EXPECT_EQ(log, (std::vector<int>{0, 1}));
}

TEST(Semaphore, CountingAllowsParallelHolders) {
  Engine e;
  Semaphore s(e, 2);
  std::vector<int> log;
  for (int i = 0; i < 4; ++i) e.spawn(hold_sem(e, s, ns(10), log, i));
  e.run();
  EXPECT_EQ(e.now(), ns(20));  // two batches of two
}

Task<void> waiter_fn(Trigger& t, int& count) {
  co_await t.wait();
  ++count;
}

TEST(Trigger, BroadcastReleasesAllAndStaysFired) {
  Engine e;
  Trigger t(e);
  int count = 0;
  e.spawn(waiter_fn(t, count));
  e.spawn(waiter_fn(t, count));
  e.schedule(ns(10), [&] { t.fire(); });
  e.run();
  EXPECT_EQ(count, 2);
  // Already-fired trigger does not block new waiters.
  e.spawn(waiter_fn(t, count));
  e.run();
  EXPECT_EQ(count, 3);
}

Task<void> produce(Engine& e, Mailbox<int>& box) {
  co_await e.delay(ns(10));
  box.send(1);
  co_await e.delay(ns(10));
  box.send(2);
}

Task<void> consume(Mailbox<int>& box, std::vector<int>& got) {
  got.push_back(co_await box.receive());
  got.push_back(co_await box.receive());
}

TEST(Mailbox, BlocksUntilItemsArriveInOrder) {
  Engine e;
  Mailbox<int> box(e);
  std::vector<int> got;
  e.spawn(consume(box, got));
  e.spawn(produce(e, box));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Mailbox, BuffersWhenNoReceiver) {
  Engine e;
  Mailbox<int> box(e);
  box.send(5);
  EXPECT_EQ(box.size(), 1u);
  std::vector<int> got;
  e.spawn([](Mailbox<int>& b, std::vector<int>& g) -> Task<void> {
    g.push_back(co_await b.receive());
  }(box, got));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{5}));
}

Task<void> wg_worker(Engine& e, WaitGroup& wg, Time d) {
  co_await e.delay(d);
  wg.done();
}

Task<void> wg_waiter(Engine& e, WaitGroup& wg, Time& done_at) {
  co_await wg.wait();
  done_at = e.now();
}

TEST(WaitGroup, WaitsForAllWorkers) {
  Engine e;
  WaitGroup wg(e);
  wg.add(3);
  Time done_at = 0;
  e.spawn(wg_waiter(e, wg, done_at));
  e.spawn(wg_worker(e, wg, ns(10)));
  e.spawn(wg_worker(e, wg, ns(30)));
  e.spawn(wg_worker(e, wg, ns(20)));
  e.run();
  EXPECT_EQ(done_at, ns(30));
}

TEST(Rng, DeterministicAndReseedable) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  a.reseed(123);
  Rng c(123);
  EXPECT_EQ(a.next(), c.next());
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng r(7);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    auto v = r.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[static_cast<size_t>(v)];
  }
  for (int b : buckets) {
    EXPECT_NEAR(b, kDraws / 10, kDraws / 100);  // within 10% relative
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Stats, SamplerMoments) {
  Sampler s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(Stats, HistogramQuantiles) {
  Histogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.add(i);
  EXPECT_EQ(h.count(), 1000u);
  double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 200.0);
  EXPECT_LT(p50, 800.0);
  EXPECT_LE(h.quantile(0.1), p50);
}

TEST(Stats, RegistryReportsAndResets) {
  StatRegistry reg;
  reg.counter("x").inc(5);
  reg.sampler("lat").add(3.0);
  EXPECT_EQ(reg.counter_value("x"), 5u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_NE(reg.report().find("x = 5"), std::string::npos);
  reg.reset();
  EXPECT_EQ(reg.counter_value("x"), 0u);
}

TEST(Config, ParsesTypedValuesAndSizes) {
  const char* argv[] = {"prog", "nodes=8", "ratio=0.5", "flag=true",
                        "size=64M"};
  auto cfg = Config::from_args(5, const_cast<char**>(argv));
  EXPECT_EQ(cfg.get_int("nodes", 0), 8);
  EXPECT_DOUBLE_EQ(cfg.get_double("ratio", 0), 0.5);
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_EQ(cfg.get_u64("size", 0), 64ull << 20);
  EXPECT_EQ(cfg.get_int("absent", 17), 17);
}

TEST(Config, RejectsMalformedArgs) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Config::from_args(2, const_cast<char**>(argv)),
               std::invalid_argument);
}

TEST(Config, ParseSizeSuffixes) {
  EXPECT_EQ(parse_size("4096"), 4096u);
  EXPECT_EQ(parse_size("2K"), 2048u);
  EXPECT_EQ(parse_size("3g"), 3ull << 30);
  EXPECT_THROW(parse_size("5x"), std::invalid_argument);
  EXPECT_THROW(parse_size(""), std::invalid_argument);
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"a", "bb"});
  t.row().cell(std::uint64_t{1}).cell("x");
  t.row().cell(2.5, 1).cell("yy");
  auto text = t.render();
  EXPECT_NE(text.find("bb"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
  EXPECT_EQ(t.csv(), "a,bb\n1,x\n2.5,yy\n");
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace ms::sim
