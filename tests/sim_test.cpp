// Unit tests for the discrete-event kernel: engine ordering, coroutine
// semantics, synchronization primitives, RNG, statistics, config, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/table.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/tracer.hpp"

namespace ms::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(ns(1), 1000u);
  EXPECT_EQ(us(1), ns(1000));
  EXPECT_EQ(ms_(1), us(1000));
  EXPECT_EQ(sec(1), ms_(1000));
  EXPECT_DOUBLE_EQ(to_ns(ns(250)), 250.0);
  EXPECT_EQ(ns_d(2.5), 2500u);
}

TEST(Time, FormatPicksUnits) {
  EXPECT_EQ(format_time(ps(5)), "5 ps");
  EXPECT_NE(format_time(ns(100)).find("ns"), std::string::npos);
  EXPECT_NE(format_time(us(100)).find("us"), std::string::npos);
  EXPECT_NE(format_time(sec(100)).find(" s"), std::string::npos);
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(ns(30), [&] { order.push_back(3); });
  e.schedule(ns(10), [&] { order.push_back(1); });
  e.schedule(ns(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), ns(30));
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, TiesBreakFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule(ns(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, SchedulingIntoThePastThrows) {
  Engine e;
  e.schedule(ns(10), [&] {
    EXPECT_THROW(e.schedule_at(ns(5), [] {}), std::logic_error);
  });
  e.run();
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule(ns(10), [&] { ++fired; });
  e.schedule(ns(100), [&] { ++fired; });
  e.run_until(ns(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), ns(50));
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CancelledTimerNeverFires) {
  Engine e;
  int fired = 0;
  auto h = e.schedule(ns(10), [&] { ++fired; });
  e.schedule(ns(20), [&] { ++fired; });
  EXPECT_TRUE(e.cancel(h));
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.events_processed(), 1u);
}

TEST(Engine, CancelAfterFireIsSafeNoOp) {
  Engine e;
  int fired = 0;
  auto h = e.schedule(ns(10), [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.cancel(h));  // already fired: no-op
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, DoubleCancelIsSafeNoOp) {
  Engine e;
  auto h = e.schedule(ns(10), [] {});
  auto copy = h;
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.cancel(h));     // handle was reset by the first cancel
  EXPECT_FALSE(e.cancel(copy));  // stale duplicate: generation mismatch
  EXPECT_EQ(e.pending_events(), 0u);
  e.run();
}

TEST(Engine, CancelledNodeIsReusedNotLeaked) {
  Engine e;
  // Fill exactly one pool block, cancel everything, then refill: the pool
  // must hand the recycled nodes back out instead of growing.
  std::vector<Engine::TimerHandle> handles;
  for (int i = 0; i < 256; ++i) {
    handles.push_back(e.schedule(ns(10 + i), [] {}));
  }
  const std::size_t capacity = e.allocated_nodes();
  for (auto& h : handles) EXPECT_TRUE(e.cancel(h));
  EXPECT_EQ(e.pending_events(), 0u);
  for (int i = 0; i < 256; ++i) e.schedule(ns(10 + i), [] {});
  EXPECT_EQ(e.allocated_nodes(), capacity);
  e.run();
  EXPECT_EQ(e.events_processed(), 256u);
}

TEST(Engine, CancelReleasesCallableState) {
  // Cancelling must destroy the captured state immediately (not at engine
  // teardown): observable through the shared_ptr refcount, and ASan's leak
  // checker sees any slip in CI.
  Engine e;
  auto token = std::make_shared<int>(1);
  auto h = e.schedule(ns(10), [token] {});
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(e.cancel(h));
  EXPECT_EQ(token.use_count(), 1);
}

TEST(Engine, PendingEventsAtTeardownAreFreed) {
  // Both payload representations: a small capture stored inline in the
  // node, and one big enough to take the heap fallback. Destroying the
  // engine with them still pending must free both (ASan-visible).
  auto small_token = std::make_shared<int>(1);
  auto big_token = std::make_shared<int>(2);
  {
    Engine e;
    e.schedule(ns(10), [small_token] {});
    struct Big {
      std::shared_ptr<int> p;
      unsigned char pad[Engine::kInlinePayload];
    };
    e.schedule(ns(20), [big = Big{big_token, {}}] { (void)big; });
    EXPECT_EQ(e.pending_events(), 2u);
  }  // engine destroyed without running
  EXPECT_EQ(small_token.use_count(), 1);
  EXPECT_EQ(big_token.use_count(), 1);
}

Task<void> guarded_wait(Engine& e, int& timeouts) {
  ScopedTimer watchdog(
      e, e.schedule(ns(100), [&timeouts] { ++timeouts; }));
  co_await e.delay(ns(10));
}  // scope exit disarms

TEST(Engine, ScopedTimerDisarmsOnScopeExit) {
  Engine e;
  int timeouts = 0;
  e.spawn(guarded_wait(e, timeouts));
  e.run();
  EXPECT_EQ(timeouts, 0);
  EXPECT_EQ(e.pending_events(), 0u);
}

Task<void> delay_chain(Engine& e, std::vector<Time>& stamps) {
  co_await e.delay(ns(10));
  stamps.push_back(e.now());
  co_await e.delay(ns(15));
  stamps.push_back(e.now());
}

TEST(Engine, SpawnedProcessObservesDelays) {
  Engine e;
  std::vector<Time> stamps;
  e.spawn(delay_chain(e, stamps));
  EXPECT_EQ(e.live_processes(), 0);  // starts via the queue
  e.run();
  EXPECT_EQ(stamps, (std::vector<Time>{ns(10), ns(25)}));
  EXPECT_EQ(e.live_processes(), 0);
}

Task<int> answer() { co_return 42; }
Task<int> add_one() { co_return 1 + co_await answer(); }
Task<void> check_nested(bool& done) {
  EXPECT_EQ(co_await add_one(), 43);
  done = true;
}

TEST(Task, NestedAwaitPropagatesValues) {
  Engine e;
  bool done = false;
  e.spawn(check_nested(done));
  e.run();
  EXPECT_TRUE(done);
}

Task<void> thrower() {
  co_await std::suspend_never{};
  throw std::runtime_error("boom");
}

TEST(Task, ExceptionPropagatesOutOfRun) {
  Engine e;
  e.spawn(thrower());
  EXPECT_THROW(e.run(), std::runtime_error);
}

Task<int> never_started_counter(int& constructed) {
  ++constructed;
  co_return 7;
}

TEST(Task, LazyTaskNeverRunsIfNotAwaited) {
  int constructed = 0;
  {
    auto t = never_started_counter(constructed);
    EXPECT_TRUE(t.valid());
  }  // destroyed without running
  EXPECT_EQ(constructed, 0);
}

Task<void> hold_sem(Engine& e, Semaphore& s, Time hold, std::vector<int>& log,
                    int id) {
  co_await s.acquire();
  log.push_back(id);
  co_await e.delay(hold);
  s.release();
}

TEST(Semaphore, SerializesFifo) {
  Engine e;
  Semaphore s(e, 1);
  std::vector<int> log;
  for (int i = 0; i < 4; ++i) e.spawn(hold_sem(e, s, ns(10), log, i));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(e.now(), ns(40));
  EXPECT_EQ(s.available(), 1);
}

TEST(Semaphore, TryAcquireDoesNotBarge) {
  Engine e;
  Semaphore s(e, 1);
  std::vector<int> log;
  e.spawn(hold_sem(e, s, ns(10), log, 0));
  e.spawn(hold_sem(e, s, ns(10), log, 1));
  bool barged = true;
  e.schedule(ns(5), [&] { barged = s.try_acquire(); });
  e.run();
  // Token was handed directly to waiter 1; the barger must fail.
  EXPECT_FALSE(barged);
  EXPECT_EQ(log, (std::vector<int>{0, 1}));
}

TEST(Semaphore, CountingAllowsParallelHolders) {
  Engine e;
  Semaphore s(e, 2);
  std::vector<int> log;
  for (int i = 0; i < 4; ++i) e.spawn(hold_sem(e, s, ns(10), log, i));
  e.run();
  EXPECT_EQ(e.now(), ns(20));  // two batches of two
}

Task<void> waiter_fn(Trigger& t, int& count) {
  co_await t.wait();
  ++count;
}

TEST(Trigger, BroadcastReleasesAllAndStaysFired) {
  Engine e;
  Trigger t(e);
  int count = 0;
  e.spawn(waiter_fn(t, count));
  e.spawn(waiter_fn(t, count));
  e.schedule(ns(10), [&] { t.fire(); });
  e.run();
  EXPECT_EQ(count, 2);
  // Already-fired trigger does not block new waiters.
  e.spawn(waiter_fn(t, count));
  e.run();
  EXPECT_EQ(count, 3);
}

Task<void> produce(Engine& e, Mailbox<int>& box) {
  co_await e.delay(ns(10));
  box.send(1);
  co_await e.delay(ns(10));
  box.send(2);
}

Task<void> consume(Mailbox<int>& box, std::vector<int>& got) {
  got.push_back(co_await box.receive());
  got.push_back(co_await box.receive());
}

TEST(Mailbox, BlocksUntilItemsArriveInOrder) {
  Engine e;
  Mailbox<int> box(e);
  std::vector<int> got;
  e.spawn(consume(box, got));
  e.spawn(produce(e, box));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Mailbox, BuffersWhenNoReceiver) {
  Engine e;
  Mailbox<int> box(e);
  box.send(5);
  EXPECT_EQ(box.size(), 1u);
  std::vector<int> got;
  e.spawn([](Mailbox<int>& b, std::vector<int>& g) -> Task<void> {
    g.push_back(co_await b.receive());
  }(box, got));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{5}));
}

Task<void> wg_worker(Engine& e, WaitGroup& wg, Time d) {
  co_await e.delay(d);
  wg.done();
}

Task<void> wg_waiter(Engine& e, WaitGroup& wg, Time& done_at) {
  co_await wg.wait();
  done_at = e.now();
}

TEST(WaitGroup, WaitsForAllWorkers) {
  Engine e;
  WaitGroup wg(e);
  wg.add(3);
  Time done_at = 0;
  e.spawn(wg_waiter(e, wg, done_at));
  e.spawn(wg_worker(e, wg, ns(10)));
  e.spawn(wg_worker(e, wg, ns(30)));
  e.spawn(wg_worker(e, wg, ns(20)));
  e.run();
  EXPECT_EQ(done_at, ns(30));
}

TEST(Rng, DeterministicAndReseedable) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  a.reseed(123);
  Rng c(123);
  EXPECT_EQ(a.next(), c.next());
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng r(7);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    auto v = r.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[static_cast<size_t>(v)];
  }
  for (int b : buckets) {
    EXPECT_NEAR(b, kDraws / 10, kDraws / 100);  // within 10% relative
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Stats, SamplerMoments) {
  Sampler s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(Stats, HistogramQuantiles) {
  Histogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.add(i);
  EXPECT_EQ(h.count(), 1000u);
  double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 200.0);
  EXPECT_LT(p50, 800.0);
  EXPECT_LE(h.quantile(0.1), p50);
}

TEST(Stats, RegistryReportsAndResets) {
  StatRegistry reg;
  reg.counter("x").inc(5);
  reg.sampler("lat").add(3.0);
  EXPECT_EQ(reg.counter_value("x"), 5u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_NE(reg.report().find("x = 5"), std::string::npos);
  reg.reset();
  EXPECT_EQ(reg.counter_value("x"), 0u);
}

TEST(Config, ParsesTypedValuesAndSizes) {
  const char* argv[] = {"prog", "nodes=8", "ratio=0.5", "flag=true",
                        "size=64M"};
  auto cfg = Config::from_args(5, const_cast<char**>(argv));
  EXPECT_EQ(cfg.get_int("nodes", 0), 8);
  EXPECT_DOUBLE_EQ(cfg.get_double("ratio", 0), 0.5);
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_EQ(cfg.get_u64("size", 0), 64ull << 20);
  EXPECT_EQ(cfg.get_int("absent", 17), 17);
}

TEST(Config, RejectsMalformedArgs) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Config::from_args(2, const_cast<char**>(argv)),
               std::invalid_argument);
}

TEST(Config, ParseSizeSuffixes) {
  EXPECT_EQ(parse_size("4096"), 4096u);
  EXPECT_EQ(parse_size("2K"), 2048u);
  EXPECT_EQ(parse_size("3g"), 3ull << 30);
  EXPECT_THROW(parse_size("5x"), std::invalid_argument);
  EXPECT_THROW(parse_size(""), std::invalid_argument);
}

TEST(Histogram, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 2 * Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_for(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::bucket_lo(static_cast<int>(v)), v);
    EXPECT_EQ(Histogram::bucket_hi(static_cast<int>(v)), v + 1);
  }
}

TEST(Histogram, BucketBoundsRoundTrip) {
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const std::uint64_t lo = Histogram::bucket_lo(b);
    const std::uint64_t hi = Histogram::bucket_hi(b);
    ASSERT_LT(lo, hi) << "bucket " << b;
    EXPECT_EQ(Histogram::bucket_for(lo), b);
    EXPECT_EQ(Histogram::bucket_for(hi - 1), b);
    if (b > 0) {
      EXPECT_EQ(Histogram::bucket_hi(b - 1), lo);
    }
  }
  // The whole uint64 range is covered, endpoints included.
  EXPECT_EQ(Histogram::bucket_for(0), 0);
  const int top = Histogram::bucket_for(~std::uint64_t{0});
  EXPECT_LT(top, Histogram::kBuckets);
  EXPECT_EQ(Histogram::bucket_hi(top), ~std::uint64_t{0});
}

TEST(Histogram, BucketWidthBoundsRelativeError) {
  Rng r(31);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t v = r.next() >> (r.next() % 64);
    const int b = Histogram::bucket_for(v);
    const std::uint64_t lo = Histogram::bucket_lo(b);
    const std::uint64_t hi = Histogram::bucket_hi(b);
    ASSERT_GE(v, lo);
    ASSERT_LT(v, hi);
    // Width of v's bucket is at most lo/2^kSubBits (or 1 for exact buckets),
    // which is what caps the quantile error at ~2^-kSubBits relative.
    EXPECT_LE(hi - lo,
              std::max<std::uint64_t>(1, lo >> Histogram::kSubBits));
  }
}

TEST(Histogram, QuantilesMonotonicInQ) {
  Histogram h;
  Rng r(47);
  for (int i = 0; i < 50'000; ++i) {
    h.add(1 + r.below(1'000'000) * (1 + r.below(100)));
  }
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
}

TEST(Histogram, QuantileAccuracyOnUniform) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100'000; ++v) h.add(v);
  // Relative error bound: one sub-bucket, 2^-4 ~ 6.25%.
  EXPECT_NEAR(h.quantile(0.5), 50'000, 50'000 * 0.07);
  EXPECT_NEAR(h.quantile(0.9), 90'000, 90'000 * 0.07);
  EXPECT_NEAR(h.quantile(0.99), 99'000, 99'000 * 0.07);
  EXPECT_NEAR(h.max_value(), 100'000, 100'000 * 0.07);
}

TEST(Histogram, QuantileAccuracyOnBimodal) {
  Histogram h;
  for (int i = 0; i < 900; ++i) h.add(100);    // fast path
  for (int i = 0; i < 100; ++i) h.add(10'000); // slow tail
  EXPECT_NEAR(h.quantile(0.5), 100, 100 * 0.07 + 1);
  EXPECT_NEAR(h.quantile(0.95), 10'000, 10'000 * 0.07);
  EXPECT_NEAR(h.p999(), 10'000, 10'000 * 0.07);
}

TEST(Histogram, ExtremesClampAndSaturate) {
  Histogram h;
  h.add(0);
  h.add(~std::uint64_t{0});
  h.add_double(-5.0);   // clamps to 0
  h.add_double(1e300);  // saturates to the top bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  for (double q : {0.0, 0.5, 0.999, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_TRUE(std::isfinite(v)) << q;
    EXPECT_GE(v, 0.0);
  }
}

TEST(Stats, SamplerEmbedsHistogramPercentiles) {
  Sampler s;
  for (int i = 1; i <= 1000; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.p50(), 500.0, 500.0 * 0.07);
  EXPECT_NEAR(s.p99(), 990.0, 990.0 * 0.07);
  EXPECT_EQ(s.histogram().count(), 1000u);
  s.reset();
  EXPECT_EQ(s.histogram().count(), 0u);
}

TEST(Stats, JsonDoubleRoundTripsExactly) {
  for (double v : {0.0, 1.0, 0.1, 1.0 / 3.0, 123456789.123456, 1e-300,
                   1.7e308, 170000.0, 2.5}) {
    const std::string s = json_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    EXPECT_EQ(s.find('n'), std::string::npos) << s;  // no nan/inf leaks
  }
}

TEST(Stats, DumpJsonIsDeterministicAndWellFormed) {
  auto fill = [](StatRegistry& reg) {
    reg.counter("b.count").inc(7);
    reg.counter("a.count").inc(3);
    Sampler& s = reg.sampler("lat");
    for (int i = 1; i <= 100; ++i) s.add(i * 1000.0);
    reg.histogram("h").add(42);
  };
  StatRegistry r1, r2;
  fill(r1);
  fill(r2);
  std::ostringstream o1, o2;
  r1.dump_json(o1);
  r2.dump_json(o2);
  EXPECT_EQ(o1.str(), o2.str());

  const std::string j = o1.str();
  // Keys appear in sorted order and the three sections are present.
  EXPECT_LT(j.find("\"a.count\""), j.find("\"b.count\""));
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"samplers\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"p50\""), std::string::npos);
  // Balanced braces/brackets (no strings in the dump contain them).
  int brace = 0, bracket = 0;
  for (char c : j) {
    brace += c == '{';
    brace -= c == '}';
    bracket += c == '[';
    bracket -= c == ']';
    ASSERT_GE(brace, 0);
    ASSERT_GE(bracket, 0);
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
}

Task<void> traced_work(Engine& e) {
  ScopedSpan outer(e, "unit", "outer");
  co_await e.delay(ns(10));
  {
    ScopedSpan inner(e, "unit", "inner");
    co_await e.delay(ns(5));
  }
  co_await e.delay(ns(5));
}

TEST(Tracer, DisabledEngineRecordsNoSpans) {
  Engine e;  // no tracer attached
  e.spawn(traced_work(e));
  e.run();
  Tracer t;
  EXPECT_EQ(t.span_count(), 0u);
  std::ostringstream out;
  t.export_chrome(out);
  // Still a valid, loadable (metadata-only) trace.
  EXPECT_NE(out.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(out.str().find("\"ph\":\"B\""), std::string::npos);
}

TEST(Tracer, ScopedSpansRecordSimTime) {
  Engine e;
  Tracer t;
  e.set_tracer(&t);
  e.spawn(traced_work(e));
  e.run();
  EXPECT_EQ(t.span_count(), 2u);
  EXPECT_EQ(t.open_span_count(), 0u);
}

// Minimal line-oriented checker for the exporter's one-event-per-line JSON:
// per (pid,tid) lane, B/E events must balance and timestamps must be
// monotonically non-decreasing — exactly what chrome://tracing requires.
void check_chrome_trace(const std::string& json, std::size_t expect_be) {
  std::istringstream in(json);
  std::string line;
  std::map<std::pair<long, long>, int> depth;
  std::map<std::pair<long, long>, double> last_ts;
  std::size_t be_events = 0;
  auto field = [&](const std::string& key) -> double {
    const auto pos = line.find("\"" + key + "\":");
    EXPECT_NE(pos, std::string::npos) << line;
    return std::strtod(line.c_str() + pos + key.size() + 3, nullptr);
  };
  while (std::getline(in, line)) {
    const bool is_b = line.find("\"ph\":\"B\"") != std::string::npos;
    const bool is_e = line.find("\"ph\":\"E\"") != std::string::npos;
    if (!is_b && !is_e) continue;
    ++be_events;
    const auto lane = std::make_pair(static_cast<long>(field("pid")),
                                     static_cast<long>(field("tid")));
    const double ts = field("ts");
    auto it = last_ts.find(lane);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << line;
    }
    last_ts[lane] = ts;
    depth[lane] += is_b ? 1 : -1;
    ASSERT_GE(depth[lane], 0) << line;
  }
  for (const auto& [lane, d] : depth) {
    EXPECT_EQ(d, 0) << "pid=" << lane.first << " tid=" << lane.second;
  }
  EXPECT_EQ(be_events, expect_be);
}

TEST(Tracer, ChromeExportNestsOverlappingSpans) {
  Tracer t;
  t.begin_process("point0");
  // Partial overlap on one track: must be split across two lanes.
  auto a = t.begin_span("rmc.0", "a", ps(0));
  auto b = t.begin_span("rmc.0", "b", ps(50));
  t.end_span(a, ps(100));
  t.end_span(b, ps(150));
  // Properly nested pair: one lane suffices.
  auto c = t.begin_span("rmc.0", "c", ps(200));
  auto d = t.begin_span("rmc.0", "d", ps(210));
  t.end_span(d, ps(220));
  t.end_span(c, ps(300));
  t.instant("rmc.0", "evict", ps(250));
  t.counter("rmc.0", "occupancy", ps(260), 3.0);

  std::ostringstream out;
  t.export_chrome(out);
  const std::string j = out.str();
  check_chrome_trace(j, 8);  // 4 spans -> 4 B + 4 E
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"point0\""), std::string::npos);
  // The overlap forced a second lane for the same track.
  EXPECT_NE(j.find("\"name\":\"rmc.0 #2\""), std::string::npos);
}

TEST(Tracer, EndToEndExportFromSimulation) {
  Engine e;
  Tracer t;
  t.begin_process("run");
  e.set_tracer(&t);
  for (int i = 0; i < 4; ++i) e.spawn(traced_work(e));
  e.run();
  EXPECT_EQ(t.span_count(), 8u);
  std::ostringstream out;
  t.export_chrome(out);
  check_chrome_trace(out.str(), 16);
}

TEST(Tracer, UnclosedSpansAreClosedAtExport) {
  Tracer t;
  t.begin_span("x", "leaked", ps(10));
  t.begin_span("x", "later", ps(20));  // never ended; last_time_ = 20
  EXPECT_EQ(t.open_span_count(), 2u);
  std::ostringstream out;
  t.export_chrome(out);
  check_chrome_trace(out.str(), 4);
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"a", "bb"});
  t.row().cell(std::uint64_t{1}).cell("x");
  t.row().cell(2.5, 1).cell("yy");
  auto text = t.render();
  EXPECT_NE(text.find("bb"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
  EXPECT_EQ(t.csv(), "a,bb\n1,x\n2.5,yy\n");
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace ms::sim
