// Causal tracing tests: transaction minting at the MemorySpace boundary,
// parent-chain linkage across the component stack, the exact-sum latency
// decomposition (the invariant memscale-analyze reports on), sampling,
// the flight recorder, and the offline trace analysis round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "core/runner.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/trace_analysis.hpp"
#include "sim/tracer.hpp"
#include "test_util.hpp"
#include "workloads/random_access.hpp"

namespace ms {
namespace {

core::MemorySpace::Params remote_region_params() {
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  return p;
}

/// Random-access workload over remote memory with `tracer` attached;
/// returns the final simulated time.
sim::Time run_traced_workload(sim::Tracer& tracer, std::uint64_t accesses,
                              std::uint64_t seed = 11) {
  sim::Engine engine;
  engine.set_tracer(&tracer);
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace space(cluster, 1, remote_region_params());

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 4 << 20;
  rp.accesses_per_thread = accesses;
  rp.seed = seed;
  workloads::RandomAccess ra(space, rp);

  core::Runner setup(engine);
  setup.spawn(ra.setup({2, 3}));
  setup.run_all();
  core::Runner run(engine);
  run.spawn(ra.thread_fn(0, 0));
  run.spawn(ra.thread_fn(1, 1));
  run.run_all();
  return engine.now();
}

sim::Time seg_sum(const std::array<sim::Time, sim::kNumSegments>& seg) {
  sim::Time sum = 0;
  for (const sim::Time v : seg) sum += v;
  return sum;
}

// The acceptance invariant: for every transaction, the per-segment
// decomposition reported by the offline analyzer sums to the measured
// end-to-end latency exactly (integer picoseconds — tighter than the
// "within 1 ps" requirement).
TEST(CausalTracing, SegmentDecompositionSumsToEndToEndExactly) {
  sim::Tracer tracer;
  tracer.begin_process("sum");
  run_traced_workload(tracer, 400);
  ASSERT_GT(tracer.txns_finalized(), 0u);

  // Tracer-side finalization of the most recent transaction.
  const auto& last = tracer.last_txn();
  ASSERT_NE(last.txn, 0u);
  EXPECT_EQ(seg_sum(last.seg), last.total);

  // Analyzer-side: export -> parse -> same invariant for every transaction.
  std::ostringstream out;
  tracer.export_chrome(out);
  std::istringstream in(out.str());
  const auto analysis = sim::TraceAnalysis::load_chrome(in);
  const auto txns = analysis.transactions();
  ASSERT_EQ(txns.size(), tracer.txns_finalized());
  // Cache hits defer their latency into ThreadCtx::pending, so a hit's
  // transaction can legitimately span 0 ps — but not all of them.
  std::size_t nonzero = 0;
  for (const auto& t : txns) {
    EXPECT_EQ(t.total, t.end - t.begin) << "txn " << t.txn;
    EXPECT_EQ(seg_sum(t.seg), t.total) << "txn " << t.txn;
    if (t.total > 0) ++nonzero;
  }
  EXPECT_GT(nonzero, 0u);

  // A remote-heavy workload exercises the major segment classes.
  const auto totals = analysis.segment_totals();
  EXPECT_GT(totals[static_cast<int>(sim::Segment::kRmc)], 0u);
  EXPECT_GT(totals[static_cast<int>(sim::Segment::kMemory)], 0u);
  EXPECT_GT(totals[static_cast<int>(sim::Segment::kSerialization)], 0u);
  EXPECT_GT(totals[static_cast<int>(sim::Segment::kLink)], 0u);
}

// Migration blackout stalls surface as their own taxonomy segment, and the
// exact-sum decomposition still holds when the broker is live-migrating
// pages underneath the traced workload.
TEST(CausalTracing, MigrationSegmentIsAttributedAndSumsExactly) {
  EXPECT_STREQ(sim::to_string(sim::Segment::kMigration), "migration");

  sim::Tracer tracer;
  tracer.begin_process("mig");
  sim::Engine engine;
  engine.set_tracer(&tracer);
  core::Cluster cluster(engine, test::small_config());
  broker::MemoryBroker::Params bp;
  bp.migration.remap_cost = sim::us(50);  // guarantee reads park in blackout
  broker::MemoryBroker brk(cluster, bp);
  core::MemorySpace space(cluster, 1, remote_region_params());
  brk.attach(space);

  os::VAddr base = 0;
  engine.spawn([](core::MemorySpace& s, os::VAddr* out) -> sim::Task<void> {
    *out = co_await s.map_range_on(4 << 10, 2);
  }(space, &base));
  engine.run();

  engine.spawn([](broker::MemoryBroker& b, core::MemorySpace& s,
                  os::VAddr va) -> sim::Task<void> {
    co_await b.migration().migrate_page(s, va, 3);
  }(brk, space, base));
  engine.spawn([](core::MemorySpace& s, os::VAddr va) -> sim::Task<void> {
    core::ThreadCtx t;
    sim::Rng rng(99);  // random lines: stay cache-cold so every read gates
    for (int i = 0; i < 120; ++i) {
      co_await s.read_u64(t, va + rng.below(512) * 8);
    }
    co_await s.sync(t);
  }(space, base));
  engine.run();
  ASSERT_GE(brk.migration().parked_waits(), 1u);
  ASSERT_GT(tracer.txns_finalized(), 0u);

  std::ostringstream out;
  tracer.export_chrome(out);
  std::istringstream in(out.str());
  const auto analysis = sim::TraceAnalysis::load_chrome(in);
  for (const auto& t : analysis.transactions()) {
    EXPECT_EQ(seg_sum(t.seg), t.total) << "txn " << t.txn;
  }
  const auto totals = analysis.segment_totals();
  // The parked reads waited out the blackout; that time lands in the
  // migration bucket, not in kOther's residual.
  EXPECT_GE(totals[static_cast<int>(sim::Segment::kMigration)],
            static_cast<sim::Time>(sim::us(50)));
}

// One remote read crossing the fabric: its spans must form a single tree
// rooted at the minted transaction span, with the RMC, link and memory
// controller leaves all reachable from the root through parent uids.
TEST(CausalTracing, RemoteReadSpansFormParentChainToRoot) {
  sim::Engine engine;
  sim::Tracer tracer;
  tracer.begin_process("chain");
  engine.set_tracer(&tracer);
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace space(cluster, 1, remote_region_params());

  core::VAddr base = 0;
  test::run_in_sim(
      engine, [](core::MemorySpace& s, core::VAddr* out) -> sim::Task<void> {
        *out = co_await s.map_range_on(1 << 20, 2);
        core::ThreadCtx t{.core = 0};
        co_await s.read_u64(t, *out);
        co_await s.sync(t);
      }(space, &base));

  const auto spans = tracer.span_views();
  // Exactly one transaction was minted (one timed access), on the home
  // node's txn track.
  std::vector<sim::Tracer::SpanView> roots;
  for (const auto& s : spans) {
    if (s.root) roots.push_back(s);
  }
  ASSERT_EQ(roots.size(), 1u);
  const auto& root = roots[0];
  EXPECT_NE(root.txn, 0u);
  EXPECT_EQ(root.parent, 0u);
  EXPECT_EQ(*root.track, "txn.n1");
  EXPECT_EQ(*root.name, "read");
  EXPECT_TRUE(root.closed);

  std::map<std::uint64_t, const sim::Tracer::SpanView*> by_uid;
  for (const auto& s : spans) {
    if (s.txn == root.txn) by_uid[s.uid] = &s;
  }
  ASSERT_GT(by_uid.size(), 1u) << "no component spans joined the transaction";

  // Every span of the transaction chains to the root via parent uids.
  // Collect which (track, segment) pairs sit on those chains.
  bool saw_rmc = false, saw_wire = false, saw_memory = false;
  std::size_t max_depth = 0;
  for (const auto& [uid, s] : by_uid) {
    const sim::Tracer::SpanView* cur = s;
    std::size_t depth = 0;
    std::set<std::string> tracks_on_chain{*s->track};
    while (cur->uid != root.uid) {
      ASSERT_NE(cur->parent, 0u)
          << "span " << *cur->track << "/" << *cur->name << " is detached";
      const auto it = by_uid.find(cur->parent);
      ASSERT_NE(it, by_uid.end())
          << "span " << *cur->track << "/" << *cur->name
          << " has a parent outside its transaction";
      cur = it->second;
      tracks_on_chain.insert(*cur->track);
      ASSERT_LT(++depth, 64u) << "parent chain does not terminate";
    }
    max_depth = std::max(max_depth, depth);
    if (s->segment == sim::Segment::kRmc) saw_rmc = true;
    if (s->segment == sim::Segment::kLink ||
        s->segment == sim::Segment::kSerialization) {
      saw_wire = true;
    }
    if (s->segment == sim::Segment::kMemory &&
        s->track->rfind("node.", 0) == 0) {
      // The remote node's memory side: crossing the fabric really reached
      // the serving node, at least three distinct tracks from the root.
      saw_memory = true;
      EXPECT_GE(tracks_on_chain.size(), 3u)
          << "memory leaf " << *s->name << " chain: only "
          << tracks_on_chain.size() << " tracks";
    }
  }
  EXPECT_TRUE(saw_rmc) << "no RMC span joined the transaction";
  EXPECT_TRUE(saw_wire) << "no link/serialization span joined";
  EXPECT_TRUE(saw_memory) << "no remote memory span joined";
  EXPECT_GE(max_depth, 3u) << "remote read recorded fewer than 3 hops";
}

TEST(CausalTracing, FlowEventsLinkParentsToChildren) {
  sim::Tracer tracer;
  tracer.begin_process("flow");
  run_traced_workload(tracer, 50);
  std::ostringstream out;
  tracer.export_chrome(out);
  const std::string json = out.str();
  // Chrome flow start/finish pairs tie each child span to its parent, and
  // causal B events carry the txn/uid/parent triple for offline analysis.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"txn\":"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":"), std::string::npos);
  EXPECT_NE(json.find("\"seg\":"), std::string::npos);
}

TEST(CausalTracing, MintHonorsSampleInterval) {
  sim::Tracer tracer;
  tracer.set_sample_interval(3);
  // Every 3rd mint gets a real id; the others are untraced (0).
  EXPECT_NE(tracer.mint_txn(), 0u);
  EXPECT_EQ(tracer.mint_txn(), 0u);
  EXPECT_EQ(tracer.mint_txn(), 0u);
  EXPECT_NE(tracer.mint_txn(), 0u);
  EXPECT_EQ(tracer.mint_txn(), 0u);
  EXPECT_EQ(tracer.mint_txn(), 0u);
  const std::uint64_t id = tracer.mint_txn();
  EXPECT_NE(id, 0u);
  EXPECT_EQ(tracer.txns_minted(), 3u);
  // 0 behaves like 1 (trace everything).
  sim::Tracer all;
  all.set_sample_interval(0);
  EXPECT_NE(all.mint_txn(), 0u);
  EXPECT_NE(all.mint_txn(), 0u);
}

TEST(CausalTracing, SamplingBoundsSpanVolumeWithoutPerturbingTime) {
  sim::Tracer full;
  full.begin_process("full");
  const sim::Time t_full = run_traced_workload(full, 300, 42);

  sim::Tracer sampled;
  sampled.set_sample_interval(8);
  sampled.begin_process("sampled");
  const sim::Time t_sampled = run_traced_workload(sampled, 300, 42);

  // Sampling is an observation knob: simulated time is identical.
  EXPECT_EQ(t_full, t_sampled);
  // Roughly 1/8th of the transactions (exact: ceil(mints/8)).
  ASSERT_GT(full.txns_finalized(), 0u);
  EXPECT_EQ(sampled.txns_finalized(),
            (full.txns_finalized() + 7) / 8);
  // Untraced transactions record no causal spans at all, so the span
  // volume shrinks accordingly — the overhead bound --trace-sample buys.
  EXPECT_LT(sampled.span_count(), full.span_count() / 2);
}

TEST(FlightRecorder, BoundedRingRoundTripsThroughAnalyzer) {
  sim::Tracer tracer;
  tracer.enable_flight_recorder(256);
  tracer.begin_process("flight");
  run_traced_workload(tracer, 300);

  ASSERT_TRUE(tracer.flight_mode());
  EXPECT_LE(tracer.flight_record_count(), 256u);
  EXPECT_GT(tracer.flight_dropped(), 0u)
      << "workload too small to overflow the ring";
  // Chrome export is unavailable in flight mode (slots recycle).
  std::ostringstream chrome;
  EXPECT_THROW(tracer.export_chrome(chrome), std::logic_error);

  std::ostringstream out;
  tracer.export_flight(out);
  std::istringstream in(out.str());
  const auto analysis = sim::TraceAnalysis::load_flight(in);
  EXPECT_EQ(analysis.spans().size(), tracer.flight_record_count());
  EXPECT_EQ(analysis.flight_dropped(), tracer.flight_dropped());
  // Transactions whose root span survived in the ring still decompose
  // exactly: leaves that were overwritten just shift into the residual.
  const auto txns = analysis.transactions();
  ASSERT_FALSE(txns.empty());
  for (const auto& t : txns) {
    EXPECT_EQ(seg_sum(t.seg), t.total) << "txn " << t.txn;
  }
}

TEST(FlightRecorder, RejectsGarbageInput) {
  std::istringstream not_flight("{\"ph\":\"B\"}");
  EXPECT_THROW(sim::TraceAnalysis::load_flight(not_flight),
               std::runtime_error);
  std::istringstream truncated(std::string("MSFLIGHT\x01\x00\x00\x00", 12));
  EXPECT_THROW(sim::TraceAnalysis::load_flight(truncated),
               std::runtime_error);
}

TEST(TraceAnalysis, ParseTsIsExactInPicoseconds) {
  // The exporter prints ts as "%.6f" microseconds; parsing must invert it
  // exactly — this is what makes the analyzer's sums match to the ps.
  EXPECT_EQ(sim::parse_ts_us("0.000000"), 0u);
  EXPECT_EQ(sim::parse_ts_us("0.000001"), 1u);
  EXPECT_EQ(sim::parse_ts_us("12.345678"), 12345678u);
  EXPECT_EQ(sim::parse_ts_us("3.5"), 3500000u);
  EXPECT_EQ(sim::parse_ts_us("1000000.000001"), 1000000000001u);
}

TEST(TraceAnalysis, ComponentTableAggregatesLeaves) {
  sim::Tracer tracer;
  tracer.begin_process("components");
  run_traced_workload(tracer, 200);
  std::ostringstream out;
  tracer.export_chrome(out);
  std::istringstream in(out.str());
  const auto analysis = sim::TraceAnalysis::load_chrome(in);
  const auto rows = analysis.components();
  ASSERT_FALSE(rows.empty());
  // Sorted by descending total; every row is a tagged leaf with activity.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].total, rows[i].total);
  }
  bool saw_rmc_track = false;
  for (const auto& r : rows) {
    EXPECT_GT(r.count, 0u);
    EXPECT_NE(r.segment, sim::Segment::kNone);
    if (r.track.rfind("rmc.", 0) == 0) saw_rmc_track = true;
  }
  EXPECT_TRUE(saw_rmc_track);
  // Component leaf time never exceeds the transaction grand total.
  sim::Time leaf_total = 0;
  for (const auto& r : rows) leaf_total += r.total;
  sim::Time grand = 0;
  for (const auto& t : analysis.transactions()) grand += t.total;
  EXPECT_LE(leaf_total, grand);
}

TEST(TraceAnalysis, TxnStatsExportIntoRegistry) {
  sim::Tracer tracer;
  tracer.begin_process("stats");
  run_traced_workload(tracer, 100);
  sim::StatRegistry reg;
  tracer.export_txn_stats(reg, "point.txn.");
  std::ostringstream js;
  reg.dump_json(js);
  const std::string json = js.str();
  EXPECT_NE(json.find("point.txn.count"), std::string::npos);
  EXPECT_NE(json.find("point.txn.total_ps"), std::string::npos);
  EXPECT_NE(json.find("point.txn.seg.rmc_ps"), std::string::npos);
  // Reset clears the aggregation for the next bench data point.
  tracer.reset_txn_stats();
  EXPECT_EQ(tracer.txns_finalized(), 0u);
}

TEST(SwapStats, WatchdogCounterOmittedWhenItNeverFired) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteSwap;
  p.swap.resident_limit_bytes = 1 << 20;
  core::MemorySpace space(cluster, 1, p);

  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 4 << 20;
  rp.accesses_per_thread = 200;
  rp.seed = 5;
  workloads::RandomAccess ra(space, rp);
  core::Runner setup(engine);
  setup.spawn(ra.setup({1}));
  setup.run_all();
  core::Runner run(engine);
  run.spawn(ra.thread_fn(0, 0));
  run.run_all();

  ASSERT_NE(space.swapper(), nullptr);
  ASSERT_GT(space.swapper()->faults(), 0u);
  sim::StatRegistry reg;
  space.swapper()->export_stats(reg, "swap.");
  std::ostringstream js;
  reg.dump_json(js);
  const std::string json = js.str();
  EXPECT_NE(json.find("swap.faults"), std::string::npos);
  EXPECT_NE(json.find("swap.major_faults"), std::string::npos);
  // Same nonzero-only convention as noc stall_timeouts / rmc
  // request_timeouts: the watchdog never fired, so no gauge is emitted and
  // default-config stats stay byte-identical.
  EXPECT_EQ(json.find("fault_timeouts"), std::string::npos);
}

TEST(TimeSeries, ClusterSnapshotIsSortedAndGated) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  cluster.hot_pages().enable();
  core::MemorySpace space(cluster, 1, remote_region_params());
  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 2 << 20;
  rp.accesses_per_thread = 200;
  rp.seed = 3;
  workloads::RandomAccess ra(space, rp);
  core::Runner setup(engine);
  setup.spawn(ra.setup({2}));
  setup.run_all();
  core::Runner run(engine);
  run.spawn(ra.thread_fn(0, 0));
  run.run_all();

  const auto pt = cluster.sample_timeseries(engine.now(), 4);
  EXPECT_EQ(pt.t, engine.now());
  ASSERT_FALSE(pt.values.empty());
  for (std::size_t i = 1; i < pt.values.size(); ++i) {
    EXPECT_LT(pt.values[i - 1].first, pt.values[i].first);
  }
  // Only the RMCs that actually moved traffic appear (gauge gating).
  bool saw_active_rmc = false, saw_idle_rmc = false;
  for (const auto& [key, value] : pt.values) {
    if (key.rfind("rmc.1.", 0) == 0) saw_active_rmc = true;
    if (key.rfind("rmc.4.", 0) == 0) saw_idle_rmc = true;
  }
  EXPECT_TRUE(saw_active_rmc);
  EXPECT_FALSE(saw_idle_rmc);
  // The profiler saw the remote pages the workload touched.
  ASSERT_FALSE(pt.hot_pages.empty());
  EXPECT_LE(pt.hot_pages.size(), 4u);
  for (std::size_t i = 1; i < pt.hot_pages.size(); ++i) {
    EXPECT_GE(pt.hot_pages[i - 1].second, pt.hot_pages[i].second);
  }
}

}  // namespace
}  // namespace ms
