// Tests for the reliability/fidelity extensions: link-layer CRC retries,
// virtual channels, intra-node NUMA distance, and the compressed-memory
// swap backend.
#include <gtest/gtest.h>

#include "core/memory_space.hpp"
#include "core/runner.hpp"
#include "ht/link.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace ms {
namespace {

// ---- Link error injection ----

sim::Task<void> send_n(ht::Link& link, int n) {
  for (int i = 0; i < n; ++i) co_await link.transmit(80);
}

TEST(LinkErrors, RetriesCostTimeAndAreCounted) {
  ht::Link::Params clean{.bytes_per_ns = 4.0, .propagation = sim::ns(20),
                         .credits = 8};
  ht::Link::Params lossy = clean;
  lossy.error_rate = 0.5;

  sim::Engine e1;
  ht::Link l1(e1, "clean", clean);
  e1.spawn(send_n(l1, 200));
  e1.run();

  sim::Engine e2;
  ht::Link l2(e2, "lossy", lossy);
  e2.spawn(send_n(l2, 200));
  e2.run();

  EXPECT_EQ(l1.retries(), 0u);
  EXPECT_GT(l2.retries(), 50u);   // ~1 retry per packet at 50% loss
  EXPECT_LT(l2.retries(), 400u);
  EXPECT_GT(e2.now(), e1.now());  // retransmissions cost wire time
}

TEST(LinkErrors, ErrorStreamIsDeterministic) {
  ht::Link::Params lossy{.bytes_per_ns = 4.0, .propagation = sim::ns(20),
                         .credits = 8, .error_rate = 0.3, .error_seed = 7};
  auto run_once = [&] {
    sim::Engine e;
    ht::Link l(e, "lossy", lossy);
    e.spawn(send_n(l, 100));
    e.run();
    return std::pair(e.now(), l.retries());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(LinkErrors, EndToEndAccessStillCompletesOnLossyFabric) {
  sim::Engine engine;
  auto cfg = test::small_config();
  cfg.fabric.link.error_rate = 0.2;
  core::Cluster cluster(engine, cfg);
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace space(cluster, 1, p);

  engine.spawn([](core::MemorySpace& s) -> sim::Task<void> {
    core::ThreadCtx t;
    auto base = co_await s.map_range(1 << 16);
    for (int i = 0; i < 64; ++i) {
      co_await s.write_u64(t, base + i * 8, 42u + static_cast<unsigned>(i));
    }
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(co_await s.read_u64(t, base + i * 8),
                42u + static_cast<unsigned>(i));
    }
    co_await s.sync(t);
  }(space));
  engine.run();
  EXPECT_EQ(engine.live_processes(), 0);
}

// ---- Virtual channels ----

TEST(VirtualChannels, ResponsesBypassRequestQueueing) {
  // One congested edge: a flood of large write requests vs. one read's
  // small response. With 2 VCs the response never waits behind requests.
  auto run_with_vcs = [](int vcs) {
    sim::Engine e;
    noc::Fabric::Params fp;
    fp.virtual_channels = vcs;
    noc::Fabric f(e, noc::Topology::make("ring", 2), fp);
    // Saturate with big requests 1->2.
    for (int i = 0; i < 16; ++i) {
      e.spawn([](noc::Fabric& fab) -> sim::Task<void> {
        ht::Packet big{.type = ht::PacketType::kWriteReq, .src = 1, .dst = 2,
                       .size = 4096};
        co_await fab.traverse(big);
      }(f));
    }
    // One response packet in the same direction, issued at t=0 as well.
    sim::Time resp_done = 0;
    e.spawn([](noc::Fabric& fab, sim::Engine& eng,
               sim::Time* out) -> sim::Task<void> {
      ht::Packet resp{.type = ht::PacketType::kReadResp, .src = 1, .dst = 2,
                      .size = 64};
      co_await fab.traverse(resp);
      *out = eng.now();
    }(f, e, &resp_done));
    e.run();
    return resp_done;
  };
  const sim::Time shared = run_with_vcs(1);
  const sim::Time separated = run_with_vcs(2);
  EXPECT_LT(separated, shared / 4);
}

TEST(VirtualChannels, VcSelectionByPacketClass) {
  sim::Engine e;
  noc::Fabric::Params fp;
  fp.virtual_channels = 2;
  noc::Fabric f(e, noc::Topology::make("ring", 2), fp);
  EXPECT_EQ(f.vc_of(ht::PacketType::kReadReq), 0);
  EXPECT_EQ(f.vc_of(ht::PacketType::kCtrlReq), 0);
  EXPECT_EQ(f.vc_of(ht::PacketType::kCohProbe), 0);
  EXPECT_EQ(f.vc_of(ht::PacketType::kReadResp), 1);
  EXPECT_EQ(f.vc_of(ht::PacketType::kWriteAck), 1);
  EXPECT_EQ(f.vc_of(ht::PacketType::kCohAck), 1);
}

TEST(VirtualChannels, SingleVcKeepsEverythingOnChannelZero) {
  sim::Engine e;
  noc::Fabric f(e, noc::Topology::make("ring", 2), {});
  EXPECT_EQ(f.vc_of(ht::PacketType::kReadResp), 0);
  EXPECT_THROW(f.link(1, 2, 1), std::out_of_range);
}

// ---- Intra-node NUMA ----

sim::Task<sim::Time> timed_local(core::Cluster& c, sim::Engine& e, int core,
                                 ht::PAddr addr) {
  const sim::Time start = e.now();
  sim::Time left = co_await c.node(1).access(core, addr, 8, false, 0);
  co_await e.delay(left);
  co_return e.now() - start;
}

TEST(Numa, CrossSocketAccessIsSlower) {
  sim::Engine engine;
  auto cfg = test::small_config();  // 2 sockets x 2 cores, 64 MiB local
  core::Cluster cluster(engine, cfg);
  // Core 0 is on socket 0; socket 0 owns [0, 32 MiB), socket 1 the rest.
  sim::Time near = 0, far = 0;
  engine.spawn([](core::Cluster& c, sim::Engine& e, sim::Time* n,
                  sim::Time* f) -> sim::Task<void> {
    *n = co_await timed_local(c, e, 0, 0x100000);             // socket 0
    *f = co_await timed_local(c, e, 0, (ht::PAddr{33} << 20)); // socket 1
  }(cluster, engine, &near, &far));
  engine.run();
  EXPECT_GT(far, near);
  // Two cHT crossings (there and back) at the configured hop latency.
  EXPECT_GE(far - near,
            2 * cluster.config().node.socket_hop_latency - sim::ns(25));
}

TEST(Numa, SocketHopsAreSquareTopology) {
  sim::Engine engine;
  auto cfg = test::small_config();
  cfg.node.sockets = 4;
  cfg.node.cores_per_socket = 1;
  core::Cluster cluster(engine, cfg);
  auto& n = cluster.node(1);
  EXPECT_EQ(n.socket_hops(0, 0), 0);
  EXPECT_EQ(n.socket_hops(0, 1), 1);
  EXPECT_EQ(n.socket_hops(0, 2), 1);
  EXPECT_EQ(n.socket_hops(0, 3), 2);  // diagonal
  EXPECT_EQ(n.socket_hops(1, 2), 2);  // the other diagonal
}

// ---- Compressed-memory backend ----

TEST(CompressedSwap, FaultsCostMicrosecondsNotNetwork) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kCompressedSwap;
  p.swap.resident_limit_bytes = 8 * 4096;
  core::MemorySpace space(cluster, 1, p);

  sim::Time elapsed = 0;
  engine.spawn([](core::MemorySpace& s, sim::Engine& e,
                  sim::Time* out) -> sim::Task<void> {
    auto base = co_await s.map_range(32 * 4096);
    for (int i = 0; i < 32; ++i) {
      s.poke_pod<std::uint64_t>(base + static_cast<core::VAddr>(i) * 4096,
                                9u);
    }
    core::ThreadCtx t;
    const sim::Time start = e.now();
    for (int i = 0; i < 24; ++i) {  // all major (pushed out during setup)
      auto v = co_await s.read_u64(t, base + static_cast<core::VAddr>(i) * 4096);
      EXPECT_EQ(v, 9u);
    }
    co_await s.sync(t);
    *out = e.now() - start;
  }(space, engine, &elapsed));
  engine.run();

  EXPECT_EQ(space.swapper()->major_faults(), 24u);
  const double per_fault = static_cast<double>(elapsed) / 24.0;
  // Decompression-class cost: an order of magnitude under the NBD path.
  EXPECT_GT(per_fault, static_cast<double>(sim::us(2)));
  EXPECT_LT(per_fault, static_cast<double>(sim::us(20)));
  // And zero packets crossed the fabric for it.
  EXPECT_EQ(cluster.fabric().packets_delivered(), 0u);
}

TEST(CompressedSwap, SitsBetweenRemoteMemoryAndRemoteSwap) {
  auto fault_heavy_time = [](core::MemorySpace::Mode mode) {
    sim::Engine engine;
    core::Cluster cluster(engine, test::small_config());
    core::MemorySpace::Params p;
    p.mode = mode;
    p.placement = mode == core::MemorySpace::Mode::kRemoteRegion
                      ? os::RegionManager::Placement::kRemoteOnly
                      : p.placement;
    p.swap.resident_limit_bytes = 4 * 4096;
    core::MemorySpace space(cluster, 1, p);
    core::Runner r(engine);
    r.spawn([](core::MemorySpace& s) -> sim::Task<void> {
      auto base = co_await s.map_range(64 * 4096);
      for (int i = 0; i < 64; ++i) {
        s.poke_pod<std::uint64_t>(base + static_cast<core::VAddr>(i) * 4096,
                                  1u);
      }
      core::ThreadCtx t;
      sim::Rng rng(4);
      for (int i = 0; i < 200; ++i) {
        co_await s.read_u64(t, base + rng.below(64) * 4096);
      }
      co_await s.sync(t);
    }(space));
    return r.run_all();
  };
  const sim::Time remote = fault_heavy_time(core::MemorySpace::Mode::kRemoteRegion);
  const sim::Time zram = fault_heavy_time(core::MemorySpace::Mode::kCompressedSwap);
  const sim::Time nbd = fault_heavy_time(core::MemorySpace::Mode::kRemoteSwap);
  EXPECT_LT(remote, zram);
  EXPECT_LT(zram, nbd);
}

}  // namespace
}  // namespace ms
