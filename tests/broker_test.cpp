// Memory broker tests: live page migration (functional correctness, the
// blackout/park/replay window, the no-migration equivalence property),
// lease bookkeeping against the reservation ground truth, the rebalance /
// defrag policies, and drain-before-shutdown enabling hot_remove.
//
// Every suite name starts with `Broker` so the TSan stage can pick the
// whole file up with one gtest filter.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "broker/broker.hpp"
#include "core/runner.hpp"
#include "node/address_map.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace ms {
namespace {

core::MemorySpace::Params region_params() {
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  return p;
}

std::uint64_t pattern(os::VAddr va) { return va * 0x9e3779b97f4a7c15ULL + 1; }

os::VAddr map_on(sim::Engine& engine, core::MemorySpace& space,
                 std::uint64_t bytes, ht::NodeId donor) {
  os::VAddr base = 0;
  test::run_in_sim(
      engine,
      [](core::MemorySpace& s, std::uint64_t n, ht::NodeId d,
         os::VAddr* out) -> sim::Task<void> {
        *out = co_await s.map_range_on(n, d);
      }(space, bytes, donor, &base));
  return base;
}

ht::NodeId frame_node(core::MemorySpace& space, os::VAddr va) {
  const auto* e = space.page_table().find(va);
  EXPECT_NE(e, nullptr);
  EXPECT_TRUE(e != nullptr && e->present);
  return e != nullptr ? node::node_of(e->frame) : ht::kNoNode;
}

// ---------------------------------------------------------------------------
// Migration engine: functional correctness of a single page move.
// ---------------------------------------------------------------------------

TEST(Broker, MigratePageMovesBytesAndRemaps) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  broker::MemoryBroker brk(cluster, broker::MemoryBroker::Params{});
  core::MemorySpace space(cluster, 1, region_params());
  brk.attach(space);

  const os::VAddr base = map_on(engine, space, 64 << 10, 2);
  for (os::VAddr off = 0; off < (64 << 10); off += 8) {
    space.poke_pod<std::uint64_t>(base + off, pattern(base + off));
  }
  ASSERT_EQ(frame_node(space, base), 2);

  bool moved = false;
  test::run_in_sim(engine,
                   [](broker::MemoryBroker& b, core::MemorySpace& s,
                      os::VAddr va, bool* out) -> sim::Task<void> {
                     *out = co_await b.migration().migrate_page(s, va, 3);
                   }(brk, space, base, &moved));
  EXPECT_TRUE(moved);
  EXPECT_EQ(frame_node(space, base), 3);
  EXPECT_EQ(brk.migration().migrations(), 1u);
  EXPECT_EQ(brk.migration().transits().size(), 0u);

  // Every byte survived, including the pages that did not move.
  for (os::VAddr off = 0; off < (64 << 10); off += 8) {
    EXPECT_EQ(space.peek_pod<std::uint64_t>(base + off), pattern(base + off))
        << "offset " << off;
  }

  // A timed read through the full machinery sees the migrated bytes too.
  test::run_in_sim(engine,
                   [](core::MemorySpace& s, os::VAddr va) -> sim::Task<void> {
                     core::ThreadCtx t;
                     const std::uint64_t v = co_await s.read_u64(t, va);
                     EXPECT_EQ(v, pattern(va));
                     co_await s.sync(t);
                   }(space, base));
}

TEST(Broker, MigrateToHomeLandsInLocalMemory) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  broker::MemoryBroker brk(cluster, broker::MemoryBroker::Params{});
  core::MemorySpace space(cluster, 1, region_params());
  brk.attach(space);

  const os::VAddr base = map_on(engine, space, 4 << 10, 2);
  space.poke_pod<std::uint64_t>(base, pattern(base));

  bool moved = false;
  test::run_in_sim(engine,
                   [](broker::MemoryBroker& b, core::MemorySpace& s,
                      os::VAddr va, bool* out) -> sim::Task<void> {
                     *out = co_await b.migration().migrate_page(s, va, 1);
                   }(brk, space, base, &moved));
  EXPECT_TRUE(moved);
  const auto* e = space.page_table().find(base);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(node::has_prefix(e->frame));  // back in node 1's own memory
  EXPECT_EQ(space.peek_pod<std::uint64_t>(base), pattern(base));
}

TEST(Broker, MigrateRejectsNoopsAndUnmappedPages) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  broker::MemoryBroker brk(cluster, broker::MemoryBroker::Params{});
  core::MemorySpace space(cluster, 1, region_params());
  brk.attach(space);

  const os::VAddr base = map_on(engine, space, 4 << 10, 2);
  bool moved = true;
  // Already on the destination.
  test::run_in_sim(engine,
                   [](broker::MemoryBroker& b, core::MemorySpace& s,
                      os::VAddr va, bool* out) -> sim::Task<void> {
                     *out = co_await b.migration().migrate_page(s, va, 2);
                   }(brk, space, base, &moved));
  EXPECT_FALSE(moved);
  // Unmapped address.
  moved = true;
  test::run_in_sim(engine,
                   [](broker::MemoryBroker& b, core::MemorySpace& s,
                      os::VAddr va, bool* out) -> sim::Task<void> {
                     *out = co_await b.migration().migrate_page(s, va, 3);
                   }(brk, space, base + (1 << 30), &moved));
  EXPECT_FALSE(moved);
  EXPECT_EQ(brk.migration().migrations(), 0u);
}

// ---------------------------------------------------------------------------
// Blackout: accesses racing the remap window park and replay.
// ---------------------------------------------------------------------------

TEST(Broker, BlackoutParksAndReplaysRacingAccesses) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  broker::MemoryBroker::Params bp;
  bp.migration.remap_cost = sim::us(50);  // stretch the window wide open
  broker::MemoryBroker brk(cluster, bp);
  core::MemorySpace space(cluster, 1, region_params());
  brk.attach(space);

  const os::VAddr base = map_on(engine, space, 4 << 10, 2);
  for (os::VAddr off = 0; off < (4 << 10); off += 8) {
    space.poke_pod<std::uint64_t>(base + off, pattern(base + off));
  }

  engine.spawn([](broker::MemoryBroker& b, core::MemorySpace& s,
                  os::VAddr va) -> sim::Task<void> {
    co_await b.migration().migrate_page(s, va, 3);
  }(brk, space, base));
  // A reader hammering the page for well past the blackout: some reads
  // must land inside the sealed window and park.
  engine.spawn([](core::MemorySpace& s, os::VAddr va) -> sim::Task<void> {
    core::ThreadCtx t;
    sim::Rng rng(99);
    for (int i = 0; i < 120; ++i) {
      const os::VAddr a = va + rng.below(512) * 8;
      const std::uint64_t v = co_await s.read_u64(t, a);
      EXPECT_EQ(v, pattern(a));
    }
    co_await s.sync(t);
  }(space, base));
  engine.run();
  ASSERT_EQ(engine.live_processes(), 0);

  EXPECT_EQ(brk.migration().migrations(), 1u);
  EXPECT_GE(brk.migration().parked_waits(), 1u);
  EXPECT_EQ(brk.migration().blackout().count(), 1u);
  EXPECT_GE(brk.migration().blackout().mean(),
            static_cast<double>(sim::us(50)));
}

// ---------------------------------------------------------------------------
// The equivalence property: a workload's output is identical with and
// without concurrent random migrations, under tie-fuzz perturbation.
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> run_mixed_workload(bool migrate,
                                              std::uint64_t tie_seed) {
  sim::Engine engine;
  engine.set_tie_fuzz(tie_seed);
  core::Cluster cluster(engine, test::small_config());
  broker::MemoryBroker brk(cluster, broker::MemoryBroker::Params{});
  core::MemorySpace space(cluster, 1, region_params());
  brk.attach(space);

  constexpr std::uint64_t kBytes = 16 << 10;  // 4 pages
  const os::VAddr base = map_on(engine, space, kBytes, 2);
  for (os::VAddr off = 0; off < kBytes; off += 8) {
    space.poke_pod<std::uint64_t>(base + off, off);
  }

  bool stop = false;
  if (migrate) {
    engine.spawn([](sim::Engine& e, broker::MemoryBroker& b,
                    core::MemorySpace& s, const bool* halt) -> sim::Task<void> {
      std::uint64_t state = 7;
      while (!*halt) {
        co_await e.delay(sim::us(3));
        if (*halt) break;
        co_await b.migrate_any(s, ++state);
      }
    }(engine, brk, space, &stop));
  }

  core::Runner run(engine);
  // Two threads on disjoint words (even/odd), so the final contents are a
  // pure function of the workload regardless of interleaving — exactly
  // what migrations and tie-fuzz must not change.
  for (int t = 0; t < 2; ++t) {
    run.spawn([](core::MemorySpace& s, os::VAddr b2, int tid,
                 std::uint64_t words) -> sim::Task<void> {
      core::ThreadCtx ctx{.core = tid};
      sim::Rng rng(1000 + static_cast<std::uint64_t>(tid));
      for (int i = 0; i < 200; ++i) {
        const std::uint64_t w =
            (rng.below(words / 2) * 2 + static_cast<std::uint64_t>(tid));
        const os::VAddr a = b2 + w * 8;
        const std::uint64_t v = co_await s.read_u64(ctx, a);
        co_await s.write_u64(ctx, a, v + 0x10001 * (i + 1));
      }
      co_await s.sync(ctx);
    }(space, base, t, kBytes / 8));
  }
  engine.spawn([](bool* flag, core::Runner* r) -> sim::Task<void> {
    co_await r->join();
    *flag = true;
  }(&stop, &run));
  engine.run();
  EXPECT_EQ(engine.live_processes(), 0);
  if (migrate) EXPECT_GT(brk.migration().migrations(), 0u);

  std::vector<std::uint64_t> out;
  out.reserve(kBytes / 8);
  for (os::VAddr off = 0; off < kBytes; off += 8) {
    out.push_back(space.peek_pod<std::uint64_t>(base + off));
  }
  return out;
}

TEST(Broker, RandomMigrationsNeverChangeWorkloadOutput) {
  const auto baseline = run_mixed_workload(/*migrate=*/false, /*tie=*/0);
  EXPECT_EQ(run_mixed_workload(true, 0), baseline);
  EXPECT_EQ(run_mixed_workload(true, 42), baseline);
  EXPECT_EQ(run_mixed_workload(true, 1234567), baseline);
}

// ---------------------------------------------------------------------------
// Lease book: mirrors reservation ground truth, renewals, release.
// ---------------------------------------------------------------------------

TEST(Broker, LeaseBookMirrorsGrantsAndRenews) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  broker::MemoryBroker::Params bp;
  bp.lease_term = sim::us(100);
  broker::MemoryBroker brk(cluster, bp);
  core::MemorySpace space(cluster, 1, region_params());
  brk.attach(space);
  EXPECT_TRUE(brk.leases().empty());

  map_on(engine, space, 4 << 10, 2);
  ASSERT_NE(space.region(), nullptr);
  const auto grants = space.region()->segment_grants();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(brk.leases().size(), 1u);
  EXPECT_EQ(brk.leases().bytes_on(2), grants[0].bytes);
  EXPECT_EQ(brk.leases().count_on(3), 0u);

  // Let the lease expire, then renew it.
  test::run_in_sim(engine, [](sim::Engine& e) -> sim::Task<void> {
    co_await e.delay(sim::us(150));
  }(engine));
  EXPECT_EQ(brk.renew_leases(), 1u);
  EXPECT_EQ(brk.renew_leases(), 0u);  // freshly renewed: nothing expired

  // Teardown empties the book through the observer.
  test::run_in_sim(engine, [](os::RegionManager* r) -> sim::Task<void> {
    co_await r->release_all();
  }(space.region()));
  EXPECT_TRUE(brk.leases().empty());
}

// ---------------------------------------------------------------------------
// Policies: rebalance under pressure, defrag toward consolidation.
// ---------------------------------------------------------------------------

TEST(Broker, RebalanceMovesPageOffPressuredDonor) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  broker::MemoryBroker::Params bp;
  bp.pressure_pct = 100;  // any donor with an allocation is "pressured"
  broker::MemoryBroker brk(cluster, bp);
  core::MemorySpace space(cluster, 1, region_params());
  brk.attach(space);

  const os::VAddr base = map_on(engine, space, 4 << 10, 2);
  ASSERT_EQ(frame_node(space, base), 2);

  bool acted = false;
  test::run_in_sim(engine,
                   [](broker::MemoryBroker& b, bool* out) -> sim::Task<void> {
                     *out = co_await b.rebalance_once();
                   }(brk, &acted));
  EXPECT_TRUE(acted);
  EXPECT_NE(frame_node(space, base), 2);
  EXPECT_EQ(brk.migration().migrations(), 1u);
}

TEST(Broker, RebalanceIsIdleWithoutPressureConfig) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  broker::MemoryBroker brk(cluster, broker::MemoryBroker::Params{});
  core::MemorySpace space(cluster, 1, region_params());
  brk.attach(space);
  map_on(engine, space, 4 << 10, 2);

  bool acted = true;
  test::run_in_sim(engine,
                   [](broker::MemoryBroker& b, bool* out) -> sim::Task<void> {
                     *out = co_await b.rebalance_once();
                   }(brk, &acted));
  EXPECT_FALSE(acted);
  EXPECT_EQ(brk.migration().migrations(), 0u);
}

TEST(Broker, DefragEmptiesFragmentedDonor) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  broker::MemoryBroker brk(cluster, broker::MemoryBroker::Params{});
  core::MemorySpace space(cluster, 1, region_params());
  brk.attach(space);

  // Donor 2 backs 2 pages (the fragment), donor 3 backs 8 (the sink).
  const os::VAddr frag = map_on(engine, space, 8 << 10, 2);
  map_on(engine, space, 32 << 10, 3);
  ASSERT_EQ(frame_node(space, frag), 2);

  int moves = 0;
  for (; moves < 8; ++moves) {
    bool acted = false;
    test::run_in_sim(engine,
                     [](broker::MemoryBroker& b, bool* out) -> sim::Task<void> {
                       *out = co_await b.defrag_once(/*max_pages=*/4);
                     }(brk, &acted));
    if (!acted) break;
  }
  EXPECT_EQ(moves, 2);  // exactly the fragment's pages moved
  EXPECT_EQ(frame_node(space, frag), 3);
  EXPECT_EQ(frame_node(space, frag + (4 << 10)), 3);
}

// ---------------------------------------------------------------------------
// Drain-before-shutdown: evacuation under load, then hot_remove.
// ---------------------------------------------------------------------------

TEST(Broker, DrainDonorUnderLoadEnablesHotRemove) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  broker::MemoryBroker brk(cluster, broker::MemoryBroker::Params{});
  core::MemorySpace space(cluster, 1, region_params());
  brk.attach(space);

  constexpr std::uint64_t kBytes = 64 << 10;
  const os::VAddr base = map_on(engine, space, kBytes, 2);
  for (os::VAddr off = 0; off < kBytes; off += 8) {
    space.poke_pod<std::uint64_t>(base + off, pattern(base + off));
  }
  const auto grants = space.region()->segment_grants();
  ASSERT_EQ(grants.size(), 1u);
  ASSERT_EQ(grants[0].donor, 2);

  // Reader keeps hammering the buffer while the drain runs underneath it.
  engine.spawn([](core::MemorySpace& s, os::VAddr b2,
                  std::uint64_t words) -> sim::Task<void> {
    core::ThreadCtx t;
    sim::Rng rng(4242);
    for (int i = 0; i < 400; ++i) {
      const os::VAddr a = b2 + rng.below(words) * 8;
      const std::uint64_t v = co_await s.read_u64(t, a);
      EXPECT_EQ(v, pattern(a));
    }
    co_await s.sync(t);
  }(space, base, kBytes / 8));
  engine.schedule(sim::us(20), [&engine, &brk] {
    engine.spawn(brk.drain_donor(2));
  });
  engine.run();
  ASSERT_EQ(engine.live_processes(), 0);

  // Zero live grants and zero live pages on the drained donor.
  EXPECT_TRUE(brk.drained(2));
  EXPECT_EQ(brk.evacuations(), 1u);
  EXPECT_EQ(brk.leases().bytes_on(2), 0u);
  for (const auto& g : space.region()->segment_grants()) {
    EXPECT_NE(g.donor, 2);
  }
  space.page_table().for_each([](os::VAddr, const os::PageTable::Entry& e) {
    if (e.present) EXPECT_NE(node::node_of(e.frame), 2);
  });
  // The donated range is whole again: hot_remove must succeed.
  EXPECT_TRUE(cluster.allocator(2).hot_remove(
      node::local_part(grants[0].prefixed_base), grants[0].bytes));
  // And the workload's data survived the evacuation byte for byte.
  for (os::VAddr off = 0; off < kBytes; off += 8) {
    EXPECT_EQ(space.peek_pod<std::uint64_t>(base + off), pattern(base + off))
        << "offset " << off;
  }
}

}  // namespace
}  // namespace ms
