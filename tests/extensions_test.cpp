// Tests for the extension features: MSHR fill merging in the node, the
// hash index (footnote 3), b-tree range scans, and a randomized
// shadow-oracle property test of MemorySpace in every backing mode.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/remote_allocator.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"
#include "workloads/btree.hpp"
#include "workloads/hash_index.hpp"

namespace ms {
namespace {

// ---- MSHR ----

class MshrTest : public ::testing::Test {
 public:
  MshrTest() : cluster_(engine_, test::small_config()) {}
  sim::Engine engine_;
  core::Cluster cluster_;
};

sim::Task<void> one_access(core::Cluster& c, sim::Engine& e, int core,
                           ht::PAddr addr) {
  sim::Time left = co_await c.node(1).access(core, addr, 8, false, 0);
  co_await e.delay(left);
}

TEST_F(MshrTest, ConcurrentSameLineMissesMergeIntoOneFetch) {
  const ht::PAddr line = node::make_remote(2, 0x70000);
  // Four concurrent readers of the same line on the same core: exactly one
  // remote fetch, three merged waiters.
  for (int i = 0; i < 4; ++i) {
    engine_.spawn(one_access(cluster_, engine_, 0, line + 8 * i));
  }
  engine_.run();
  EXPECT_EQ(cluster_.rmc(1).client_requests(), 1u);
  EXPECT_EQ(cluster_.node(1).mshr_merges(), 3u);
}

TEST_F(MshrTest, DifferentLinesDoNotMerge) {
  for (int i = 0; i < 4; ++i) {
    engine_.spawn(one_access(cluster_, engine_, 0,
                             node::make_remote(2, 0x80000 + i * 64)));
  }
  engine_.run();
  EXPECT_EQ(cluster_.rmc(1).client_requests(), 4u);
  EXPECT_EQ(cluster_.node(1).mshr_merges(), 0u);
}

TEST_F(MshrTest, DifferentCoresFetchIndependently) {
  // Private caches: each core needs its own copy of the line.
  const ht::PAddr line = node::make_remote(2, 0x90000);
  engine_.spawn(one_access(cluster_, engine_, 0, line));
  engine_.spawn(one_access(cluster_, engine_, 1, line));
  engine_.run();
  EXPECT_EQ(cluster_.rmc(1).client_requests(), 2u);
  EXPECT_EQ(cluster_.node(1).mshr_merges(), 0u);
}

TEST_F(MshrTest, MergedWaitersObserveFillLatency) {
  const ht::PAddr line = node::make_remote(2, 0xa0000);
  std::vector<sim::Time> done(2);
  for (int i = 0; i < 2; ++i) {
    engine_.spawn([](core::Cluster& c, sim::Engine& e, ht::PAddr a,
                     sim::Time* out) -> sim::Task<void> {
      co_await one_access(c, e, 0, a);
      *out = e.now();
    }(cluster_, engine_, line, &done[static_cast<std::size_t>(i)]));
  }
  engine_.run();
  // The merged access cannot complete before the fill it waits on.
  EXPECT_GE(done[1], done[0]);
  EXPECT_GT(done[1], sim::ns(500));  // it waited for a real remote fill
}

// ---- HashIndex ----

struct HashHarness {
  explicit HashHarness(core::Cluster& cluster, std::uint64_t capacity,
                       core::MemorySpace::Mode mode =
                           core::MemorySpace::Mode::kRemoteRegion)
      : space(cluster, 1, params(mode)), index(space, capacity) {}
  static core::MemorySpace::Params params(core::MemorySpace::Mode mode) {
    core::MemorySpace::Params p;
    p.mode = mode;
    p.swap.resident_limit_bytes = 16 * 4096;
    return p;
  }
  core::MemorySpace space;
  workloads::HashIndex index;
};

TEST(HashIndex, BuildAndLookupAgainstOracle) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  HashHarness h(cluster, 4096);
  e.spawn([](workloads::HashIndex& idx) -> sim::Task<void> {
    co_await idx.build(1000, [](std::uint64_t i) { return i * 3 + 1; });
  }(h.index));
  e.run();
  EXPECT_EQ(h.index.size(), 1000u);
  EXPECT_NO_THROW(h.index.validate());

  int wrong = 0;
  e.spawn([](workloads::HashIndex& idx, int* w) -> sim::Task<void> {
    core::ThreadCtx t;
    for (std::uint64_t i = 0; i < 1000; ++i) {
      auto v = co_await idx.get(t, i * 3 + 1);
      if (!v || *v != i) ++*w;
      if (co_await idx.contains(t, i * 3 + 2)) ++*w;  // absent keys
    }
  }(h.index, &wrong));
  e.run();
  EXPECT_EQ(wrong, 0);
}

TEST(HashIndex, RandomInsertGetMatchesStdMap) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  HashHarness h(cluster, 2048);
  std::map<std::uint64_t, std::uint64_t> oracle;
  e.spawn([](workloads::HashIndex& idx,
             std::map<std::uint64_t, std::uint64_t>* o) -> sim::Task<void> {
    core::ThreadCtx t;
    sim::Rng rng(55);
    for (int i = 0; i < 700; ++i) {
      const std::uint64_t key = rng.below(500) + 1;
      if (rng.chance(0.7)) {
        const std::uint64_t value = rng.next();
        (*o)[key] = value;
        co_await idx.insert(t, key, value);
      } else {
        auto got = co_await idx.get(t, key);
        auto it = o->find(key);
        if (it == o->end()) {
          EXPECT_FALSE(got.has_value());
        } else {
          EXPECT_TRUE(got.has_value());
          if (got) EXPECT_EQ(*got, it->second);
        }
      }
    }
  }(h.index, &oracle));
  e.run();
  EXPECT_EQ(h.index.size(), oracle.size());
  EXPECT_NO_THROW(h.index.validate());
}

TEST(HashIndex, RejectsBadInputs) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  EXPECT_THROW(HashHarness(cluster, 1000), std::invalid_argument);  // not 2^k
  HashHarness h(cluster, 64);
  e.spawn([](workloads::HashIndex& idx) -> sim::Task<void> {
    core::ThreadCtx t;
    co_await idx.insert(t, 0, 1);  // key 0 reserved
  }(h.index));
  EXPECT_THROW(e.run(), std::invalid_argument);
}

TEST(HashIndex, RefusesOverfill) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  HashHarness h(cluster, 64);
  e.spawn([](workloads::HashIndex& idx) -> sim::Task<void> {
    co_await idx.build(64, [](std::uint64_t i) { return i + 1; });
  }(h.index));
  EXPECT_THROW(e.run(), std::runtime_error);  // load factor > 0.75
}

TEST(HashIndex, LookupTouchesFarFewerLinesThanBTree) {
  // Footnote 3's mechanism at unit scale: average probes per hash lookup
  // stay near 1 even at 0.5 load factor.
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  HashHarness h(cluster, 8192);
  e.spawn([](workloads::HashIndex& idx) -> sim::Task<void> {
    co_await idx.build(4096, [](std::uint64_t i) { return i * 7 + 1; });
    core::ThreadCtx t;
    for (std::uint64_t i = 0; i < 1000; ++i) {
      co_await idx.contains(t, i * 7 + 1);
    }
  }(h.index));
  e.run();
  const double probes_per_op =
      static_cast<double>(h.index.total_probes()) / (4096.0 + 1000.0);
  EXPECT_LT(probes_per_op, 2.5);
}

// ---- BTree range scan ----

TEST(BTreeRange, ScanMatchesOracleOnBulkTree) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  core::MemorySpace space(cluster, 1, HashHarness::params(
                                          core::MemorySpace::Mode::kRemoteRegion));
  core::RemoteAllocator alloc(space);
  workloads::BTree tree(space, alloc, 16);
  e.spawn([](workloads::BTree& t) -> sim::Task<void> {
    co_await t.bulk_build(2000, [](std::uint64_t i) { return i * 5; });
  }(tree));
  e.run();

  std::vector<std::uint64_t> got;
  e.spawn([](workloads::BTree& t,
             std::vector<std::uint64_t>* out) -> sim::Task<void> {
    core::ThreadCtx ctx;
    *out = co_await t.range_scan(ctx, 1000, 2000);
  }(tree, &got));
  e.run();

  std::vector<std::uint64_t> expect;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    if (i * 5 >= 1000 && i * 5 <= 2000) expect.push_back(i * 5);
  }
  EXPECT_EQ(got, expect);
}

TEST(BTreeRange, EdgeRanges) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  core::MemorySpace space(cluster, 1, HashHarness::params(
                                          core::MemorySpace::Mode::kRemoteRegion));
  core::RemoteAllocator alloc(space);
  workloads::BTree tree(space, alloc, 8);
  e.spawn([](workloads::BTree& t) -> sim::Task<void> {
    co_await t.bulk_build(100, [](std::uint64_t i) { return i * 2 + 10; });
    core::ThreadCtx ctx;
    // Empty range (lo > hi), range below all keys, range above all keys,
    // exact single key, full range.
    EXPECT_TRUE((co_await t.range_scan(ctx, 50, 40)).empty());
    EXPECT_TRUE((co_await t.range_scan(ctx, 0, 9)).empty());
    EXPECT_TRUE((co_await t.range_scan(ctx, 1000, 2000)).empty());
    auto single = co_await t.range_scan(ctx, 10, 10);
    EXPECT_EQ(single.size(), 1u);
    if (!single.empty()) EXPECT_EQ(single[0], 10u);
    EXPECT_EQ((co_await t.range_scan(ctx, 0, ~std::uint64_t{0})).size(), 100u);
  }(tree));
  e.run();
}

TEST(BTreeRange, ScanWorksAfterOrganicInserts) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  core::MemorySpace space(cluster, 1, HashHarness::params(
                                          core::MemorySpace::Mode::kRemoteRegion));
  core::RemoteAllocator alloc(space);
  workloads::BTree tree(space, alloc, 5);
  std::set<std::uint64_t> oracle;
  e.spawn([](workloads::BTree& t,
             std::set<std::uint64_t>* o) -> sim::Task<void> {
    core::ThreadCtx ctx;
    sim::Rng rng(321);
    for (int i = 0; i < 500; ++i) {
      std::uint64_t k = rng.below(3000);
      o->insert(k);
      co_await t.insert(ctx, k);
    }
    auto got = co_await t.range_scan(ctx, 500, 1500);
    std::vector<std::uint64_t> expect;
    for (auto k : *o) {
      if (k >= 500 && k <= 1500) expect.push_back(k);
    }
    EXPECT_EQ(got, expect);
  }(tree, &oracle));
  e.run();
}

// ---- MemorySpace shadow oracle, all modes ----

class SpaceOracle
    : public ::testing::TestWithParam<core::MemorySpace::Mode> {};

TEST_P(SpaceOracle, RandomMixedAccessesMatchShadowBuffer) {
  sim::Engine e;
  core::Cluster cluster(e, test::small_config());
  core::MemorySpace::Params p = HashHarness::params(GetParam());
  if (GetParam() == core::MemorySpace::Mode::kRemoteRegion) {
    p.placement = os::RegionManager::Placement::kAuto;
  }
  core::MemorySpace space(cluster, 1, p);

  constexpr std::uint64_t kBytes = 256 * 1024;
  std::vector<std::byte> shadow(kBytes, std::byte{0});

  e.spawn([](core::MemorySpace& s, std::vector<std::byte>& sh) -> sim::Task<void> {
    auto base = co_await s.map_range(sh.size());
    core::ThreadCtx t;
    sim::Rng rng(2718);
    std::vector<std::byte> buf(512);
    for (int op = 0; op < 3000; ++op) {
      const std::uint64_t size = rng.below(500) + 1;  // may cross lines/pages
      const std::uint64_t off = rng.below(sh.size() - size);
      if (rng.chance(0.5)) {
        for (std::uint64_t i = 0; i < size; ++i) {
          buf[i] = static_cast<std::byte>(rng.next());
          sh[off + i] = buf[i];
        }
        co_await s.write(t, base + off,
                         std::span<const std::byte>(buf.data(), size));
      } else {
        co_await s.read(t, base + off, std::span<std::byte>(buf.data(), size));
        for (std::uint64_t i = 0; i < size; ++i) {
          EXPECT_EQ(buf[i], sh[off + i]) << "op " << op << " off " << off + i;
          if (buf[i] != sh[off + i]) co_return;  // stop the spam, fail fast
        }
      }
    }
    co_await s.sync(t);
  }(space, shadow));
  e.run();

  // Final sweep through the untimed path too (ranges start at va_base).
  std::vector<std::byte> final_data(kBytes);
  space.peek(core::VAddr{1} << 20, final_data);
  EXPECT_EQ(final_data, shadow);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SpaceOracle,
    ::testing::Values(core::MemorySpace::Mode::kLocal,
                      core::MemorySpace::Mode::kRemoteRegion,
                      core::MemorySpace::Mode::kRemoteSwap,
                      core::MemorySpace::Mode::kDiskSwap),
    [](const auto& info) {
      switch (info.param) {
        case core::MemorySpace::Mode::kLocal: return "local";
        case core::MemorySpace::Mode::kRemoteRegion: return "remote";
        case core::MemorySpace::Mode::kRemoteSwap: return "swap";
        case core::MemorySpace::Mode::kDiskSwap: return "disk";
      }
      return "?";
    });

}  // namespace
}  // namespace ms
