// System-level properties: bit-exact determinism, process isolation,
// uncached remote mode, multi-region coexistence on one donor (Fig. 1's
// scenario), link failure surfacing through the full stack, and the
// cluster report.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/remote_allocator.hpp"
#include "core/runner.hpp"
#include "test_util.hpp"
#include "workloads/random_access.hpp"

namespace ms {
namespace {

// ---- Determinism ----

sim::Time run_identical_workload(std::uint64_t seed) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace space(cluster, 1, p);
  workloads::RandomAccess::Params rp;
  rp.buffer_bytes = 4 << 20;
  rp.accesses_per_thread = 1500;
  rp.seed = seed;
  workloads::RandomAccess ra(space, rp);
  core::Runner setup(engine);
  setup.spawn(ra.setup({2, 3}));
  setup.run_all();
  core::Runner run(engine);
  run.spawn(ra.thread_fn(0, 0));
  run.spawn(ra.thread_fn(1, 1));
  run.run_all();
  return engine.now();
}

TEST(SystemDeterminism, IdenticalRunsEndAtIdenticalTimes) {
  // The whole point of a deterministic DES: bit-exact replay. Two full
  // multi-threaded runs with the same seed end at the same picosecond.
  const sim::Time a = run_identical_workload(99);
  const sim::Time b = run_identical_workload(99);
  EXPECT_EQ(a, b);
  // And a different seed gives a different interleaving.
  const sim::Time c = run_identical_workload(100);
  EXPECT_NE(a, c);
}

// ---- Process isolation ----

TEST(SystemIsolation, TwoSpacesNeverSeeEachOthersData) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace a(cluster, 1, p);
  core::MemorySpace b(cluster, 2, p);

  engine.spawn([](core::MemorySpace& sa, core::MemorySpace& sb)
                   -> sim::Task<void> {
    core::ThreadCtx ta, tb;
    auto base_a = co_await sa.map_range(1 << 16);
    auto base_b = co_await sb.map_range(1 << 16);
    for (int i = 0; i < 64; ++i) {
      co_await sa.write_u64(ta, base_a + i * 8, 0xAAAA0000u + i);
      co_await sb.write_u64(tb, base_b + i * 8, 0xBBBB0000u + i);
    }
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(co_await sa.read_u64(ta, base_a + i * 8), 0xAAAA0000u + i);
      EXPECT_EQ(co_await sb.read_u64(tb, base_b + i * 8), 0xBBBB0000u + i);
    }
    // The two processes' physical pages are disjoint.
    auto pa = co_await sa.backing_of(base_a);
    auto pb = co_await sb.backing_of(base_b);
    EXPECT_NE(pa, pb);
    co_await sa.sync(ta);
    co_await sb.sync(tb);
  }(a, b));
  engine.run();
  EXPECT_EQ(engine.live_processes(), 0);
}

// ---- Fig. 1: several regions coexisting inside one donor node ----

TEST(SystemRegions, ThreeRegionsCoexistInOneDonor) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  // Nodes 1, 2 and 3 all borrow from node 4 (like node D in Fig. 1
  // hosting parts of several foreign regions alongside its own).
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  std::vector<std::unique_ptr<core::MemorySpace>> spaces;
  for (ht::NodeId home : {1, 2, 3}) {
    spaces.push_back(std::make_unique<core::MemorySpace>(cluster, home, p));
  }
  std::vector<core::VAddr> bases(3);
  engine.spawn([](std::vector<std::unique_ptr<core::MemorySpace>>& sp,
                  std::vector<core::VAddr>& bs) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      bs[static_cast<std::size_t>(i)] =
          co_await sp[static_cast<std::size_t>(i)]->map_range_on(1 << 20, 4);
      core::ThreadCtx t;
      co_await sp[static_cast<std::size_t>(i)]->write_u64(
          t, bs[static_cast<std::size_t>(i)], 7000u + static_cast<unsigned>(i));
      co_await sp[static_cast<std::size_t>(i)]->sync(t);
    }
    for (int i = 0; i < 3; ++i) {
      core::ThreadCtx t;
      EXPECT_EQ(co_await sp[static_cast<std::size_t>(i)]->read_u64(
                    t, bs[static_cast<std::size_t>(i)]),
                7000u + static_cast<unsigned>(i));
      co_await sp[static_cast<std::size_t>(i)]->sync(t);
    }
  }(spaces, bases));
  engine.run();

  // The donor pinned three separate grants; its own OS memory is intact.
  EXPECT_GE(cluster.allocator(4).pinned_bytes(),
            3 * cluster.config().region.segment_bytes +
                cluster.config().os_reserved_bytes);
  // And the donor node's caches were never involved: it served requests
  // through its MCs without a single cache fill of its own.
  std::uint64_t donor_cache_traffic = 0;
  for (int c = 0; c < cluster.node(4).num_cores(); ++c) {
    donor_cache_traffic += cluster.node(4).core(c).cache().hits() +
                           cluster.node(4).core(c).cache().misses();
  }
  EXPECT_EQ(donor_cache_traffic, 0u);
  EXPECT_GT(cluster.rmc(4).served_requests(), 0u);
}

// ---- Uncached remote mode (I/O-style default before the write-back trick)

TEST(SystemUncached, UncachedRemoteModeWorksAndNeverCaches) {
  sim::Engine engine;
  auto cfg = test::small_config();
  cfg.node.cache_remote = false;  // the I/O-memory default
  core::Cluster cluster(engine, cfg);
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  p.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace space(cluster, 1, p);

  engine.spawn([](core::MemorySpace& s, core::Cluster& c) -> sim::Task<void> {
    core::ThreadCtx t;
    auto base = co_await s.map_range(1 << 16);
    for (int i = 0; i < 32; ++i) {
      co_await s.write_u64(t, base + i * 8, 100u + static_cast<unsigned>(i));
    }
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(co_await s.read_u64(t, base + i * 8),
                100u + static_cast<unsigned>(i));
    }
    co_await s.sync(t);
    (void)c;
  }(space, cluster));
  engine.run();

  // Every one of the 64 accesses went to the RMC (no caching of remote
  // ranges), and nothing remote sits in the local cache.
  EXPECT_EQ(cluster.rmc(1).client_requests(), 64u);
  EXPECT_EQ(cluster.node(1).core(0).cache().hits() +
                cluster.node(1).core(0).cache().misses(),
            0u);
}

TEST(SystemUncached, CachedModeIsFasterThanUncached) {
  auto run_mode = [](bool cache_remote) {
    sim::Engine engine;
    auto cfg = test::small_config();
    cfg.node.cache_remote = cache_remote;
    core::Cluster cluster(engine, cfg);
    core::MemorySpace::Params p;
    p.mode = core::MemorySpace::Mode::kRemoteRegion;
    p.placement = os::RegionManager::Placement::kRemoteOnly;
    core::MemorySpace space(cluster, 1, p);
    core::Runner r(engine);
    r.spawn([](core::MemorySpace& s) -> sim::Task<void> {
      core::ThreadCtx t;
      auto base = co_await s.map_range(1 << 16);
      // Sequential 8-byte reads: with write-back caching, 7 of 8 hit.
      for (int i = 0; i < 512; ++i) co_await s.read_u64(t, base + i * 8);
      co_await s.sync(t);
    }(space));
    return r.run_all();
  };
  EXPECT_LT(run_mode(true), run_mode(false) / 4);
}

// ---- Failure surfacing through the full stack ----

TEST(SystemFailure, LinkDownSurfacesFromMemoryAccess) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  core::MemorySpace space(cluster, 1, p);

  engine.spawn([](core::MemorySpace& s, core::Cluster& c) -> sim::Task<void> {
    core::ThreadCtx t;
    auto base = co_await s.map_range_on(1 << 16, 2);
    co_await s.read_u64(t, base);  // warms up fine
    c.fabric().set_link_down(1, 2, true);
    // Uncached line: force a new fill over the dead link.
    co_await s.read_u64(t, base + (64 << 10) - 8);
    co_await s.sync(t);
  }(space, cluster));
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(SystemRegions, ConcurrentFirstTouchReservesOneSegment) {
  // Eight threads hit an empty region simultaneously; the grow mutex must
  // serialize the reservation so exactly one donor segment is taken (all
  // eight pages fit in it), not eight.
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  auto rm = cluster.make_region(1);
  std::vector<ht::PAddr> pages(8, 0);
  for (int i = 0; i < 8; ++i) {
    engine.spawn([](os::RegionManager& r, ht::PAddr* out) -> sim::Task<void> {
      auto page =
          co_await r.alloc_page(os::RegionManager::Placement::kRemoteOnly);
      *out = page.value_or(0);
    }(*rm, &pages[static_cast<std::size_t>(i)]));
  }
  engine.run();
  std::set<ht::PAddr> uniq(pages.begin(), pages.end());
  EXPECT_EQ(uniq.size(), 8u);
  EXPECT_EQ(uniq.count(0), 0u);
  EXPECT_EQ(rm->segment_count(), 1u);
  EXPECT_EQ(cluster.reservation().grants(), 1u);
}

sim::Task<void> blocked_forever(sim::Semaphore& sem) {
  co_await sem.acquire();  // never released
}

TEST(SystemTeardown, EngineDestroysBlockedProcessesCleanly) {
  // A process parked on a semaphore when the engine dies must have its
  // coroutine frame (and owned children) destroyed, not leaked. If this
  // mismanages lifetimes it crashes or trips sanitizers.
  auto engine = std::make_unique<sim::Engine>();
  sim::Semaphore sem(*engine, 0);
  engine->spawn(blocked_forever(sem));
  engine->run();  // drains; the process is still live, parked on sem
  EXPECT_EQ(engine->live_processes(), 1);
  engine.reset();  // must not crash or leak
}

TEST(SystemTrace, CapturesAccessesAndBoundsMemory) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kLocal;
  core::MemorySpace space(cluster, 1, p);
  sim::AccessTrace trace(/*capacity=*/16);
  space.set_trace(&trace);

  engine.spawn([](core::MemorySpace& s) -> sim::Task<void> {
    core::ThreadCtx t{.core = 2};
    auto base = co_await s.map_range(1 << 16);
    for (int i = 0; i < 40; ++i) {
      co_await s.write_u64(t, base + i * 8, 1);
    }
    co_await s.read_u64(t, base);
    co_await s.sync(t);
  }(space));
  engine.run();

  EXPECT_EQ(trace.size(), 16u);           // ring bounded
  EXPECT_EQ(trace.dropped(), 25u);        // 41 total - 16 kept
  EXPECT_EQ(trace.records().back().is_write, false);  // last op was a read
  EXPECT_EQ(trace.records().back().core, 2);
  std::ostringstream csv;
  trace.dump_csv(csv);
  EXPECT_NE(csv.str().find("time_ps,core,vaddr,bytes,op"), std::string::npos);
  EXPECT_NE(csv.str().find(",R\n"), std::string::npos);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(SystemReport, ReportMentionsActiveNodesOnly) {
  sim::Engine engine;
  core::Cluster cluster(engine, test::small_config());
  core::MemorySpace::Params p;
  p.mode = core::MemorySpace::Mode::kRemoteRegion;
  core::MemorySpace space(cluster, 1, p);
  engine.spawn([](core::MemorySpace& s) -> sim::Task<void> {
    core::ThreadCtx t;
    auto base = co_await s.map_range_on(1 << 16, 2);
    co_await s.write_u64(t, base, 1);
    co_await s.sync(t);
  }(space));
  engine.run();
  const std::string report = cluster.report();
  EXPECT_NE(report.find("node 1"), std::string::npos);
  EXPECT_NE(report.find("node 2"), std::string::npos);
  EXPECT_EQ(report.find("node 3"), std::string::npos);  // idle
  EXPECT_NE(report.find("grants"), std::string::npos);
}

}  // namespace
}  // namespace ms
