// The sweep runner: spec parsing/expansion, the serial-vs-parallel
// determinism contract (the same spec run with --jobs=1 and --jobs=8 must
// produce byte-identical per-run stats JSON, logs, and merged report),
// stats shard-merge properties (order independence, equivalence to a
// single-shot aggregate), and the golden/floor regression gates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sweep/kernels.hpp"
#include "sweep/sweep.hpp"

namespace ms {
namespace {

sweep::SweepSpec parse(std::initializer_list<std::string> tokens) {
  return sweep::SweepSpec::parse_tokens(std::vector<std::string>(tokens));
}

// ---------------------------------------------------------------------------
// Spec parsing and grid expansion
// ---------------------------------------------------------------------------

TEST(SweepSpec, ParsesCommaListsAndRanges) {
  auto spec = parse({"bench=fig6", "grid.hops=0..3", "grid.mode=a,b",
                     "accesses=100", "repeats=2"});
  EXPECT_EQ(spec.bench, "fig6");
  EXPECT_EQ(spec.repeats, 2);
  EXPECT_EQ(spec.base.get_int("accesses", 0), 100);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].key, "hops");
  EXPECT_EQ(spec.axes[0].values,
            (std::vector<std::string>{"0", "1", "2", "3"}));
  EXPECT_EQ(spec.axes[1].values, (std::vector<std::string>{"a", "b"}));
}

TEST(SweepSpec, ExpansionIsCartesianFirstAxisOutermost) {
  auto spec = parse({"bench=fig6", "grid.x=1,2", "grid.y=a,b"});
  auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].key, "x=1 y=a");
  EXPECT_EQ(cells[1].key, "x=1 y=b");
  EXPECT_EQ(cells[2].key, "x=2 y=a");
  EXPECT_EQ(cells[3].key, "x=2 y=b");
  // Grid values land in the cell config on top of the base.
  EXPECT_EQ(cells[3].config.get_str("x", ""), "2");
  EXPECT_EQ(cells[3].config.get_str("y", ""), "b");
}

TEST(SweepSpec, RedeclaredAxisReplacesValues) {
  auto spec = parse({"bench=fig6", "grid.hops=0..6", "grid.hops=1,3"});
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].values, (std::vector<std::string>{"1", "3"}));
}

TEST(SweepSpec, LaterTokensOverrideEarlierOnes) {
  auto spec = parse({"bench=fig6", "accesses=100", "accesses=250"});
  EXPECT_EQ(spec.base.get_int("accesses", 0), 250);
}

TEST(SweepSpec, RejectsInvalidSpecs) {
  EXPECT_THROW(parse({"accesses=100"}), std::invalid_argument);  // no mode
  EXPECT_THROW(parse({"bench=fig6", "fuzz=1"}), std::invalid_argument);
  EXPECT_THROW(parse({"bench=fig6", "grid.h=5..2"}), std::invalid_argument);
  EXPECT_THROW(parse({"bench=fig6", "grid.h="}), std::invalid_argument);
  EXPECT_THROW(parse({"bench=fig6", "noequals"}), std::invalid_argument);
  EXPECT_THROW(parse({"bench=fig6", "repeats=0"}), std::invalid_argument);
}

TEST(SweepSpec, FuzzModeMirrorsCampaignOptions) {
  auto spec = parse({"fuzz=1", "episodes=12", "seed=5", "epoch_us=10",
                     "minimize=0"});
  EXPECT_TRUE(spec.fuzz);
  EXPECT_EQ(spec.episodes, 12u);
  EXPECT_EQ(spec.first_seed, 5u);
  EXPECT_EQ(spec.epoch_us, 10u);
  EXPECT_FALSE(spec.minimize);
}

// ---------------------------------------------------------------------------
// Serial vs. parallel: byte-identical outputs — the contract the parallel
// campaign rests on (ISSUE acceptance criterion).
// ---------------------------------------------------------------------------

TEST(SweepDeterminism, BenchSweepIsByteIdenticalAcrossJobCounts) {
  auto spec = parse(
      {"bench=fig6", "grid.hops=0,1,2", "accesses=100", "repeats=2"});

  sweep::SweepOptions serial;
  serial.jobs = 1;
  auto a = sweep::run_sweep(spec, serial);

  sweep::SweepOptions parallel_opt;
  parallel_opt.jobs = 8;
  auto b = sweep::run_sweep(spec, parallel_opt);

  EXPECT_EQ(a.tasks, 6u);  // 3 cells x 2 repeats
  EXPECT_EQ(a.json, b.json);  // merged report, byte for byte
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].key, b.runs[i].key);
    EXPECT_EQ(a.runs[i].repeat, b.runs[i].repeat);
    EXPECT_EQ(a.runs[i].stats_json, b.runs[i].stats_json) << "run " << i;
    EXPECT_EQ(a.runs[i].log, b.runs[i].log) << "run " << i;
  }
}

TEST(SweepDeterminism, FuzzSweepIsByteIdenticalAcrossJobCounts) {
  auto spec = parse({"fuzz=1", "episodes=6", "seed=1", "minimize=0"});

  std::ostringstream log_a;
  sweep::SweepOptions serial;
  serial.jobs = 1;
  serial.log = &log_a;
  auto a = sweep::run_sweep(spec, serial);

  std::ostringstream log_b;
  sweep::SweepOptions parallel_opt;
  parallel_opt.jobs = 4;
  parallel_opt.log = &log_b;
  auto b = sweep::run_sweep(spec, parallel_opt);

  EXPECT_EQ(a.tasks, 6u);
  EXPECT_EQ(a.failing, b.failing);
  EXPECT_EQ(a.json, b.json);          // per-episode records, byte for byte
  EXPECT_EQ(log_a.str(), log_b.str());  // campaign log streamed in seed order
}

TEST(SweepRunner, WritesPerRunStatsFilesInTaskOrder) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "memscale_sweep_test_outdir";
  fs::remove_all(dir);

  auto spec = parse({"bench=fig6", "grid.hops=0,1", "accesses=50"});
  sweep::SweepOptions opt;
  opt.jobs = 2;
  opt.out_dir = dir.string();
  auto report = sweep::run_sweep(spec, opt);

  ASSERT_EQ(report.runs.size(), 2u);
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "run-%04zu.json", i);
    std::ifstream in(dir / name);
    ASSERT_TRUE(in.good()) << name;
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), report.runs[i].stats_json + "\n");
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Stats shard-merge properties: merging per-run shards in any order must
// equal the single-shot aggregate a lone instance would have produced.
// ---------------------------------------------------------------------------

std::string hist_json(const sim::Histogram& h) {
  std::ostringstream os;
  h.dump_json(os);
  return os.str();
}

std::string registry_json(const sim::StatRegistry& r) {
  std::ostringstream os;
  r.dump_json(os);
  return os.str();
}

TEST(StatsMerge, HistogramShardsMergeExactlyInAnyOrder) {
  std::mt19937_64 rng(42);
  constexpr int kShards = 7;
  sim::Histogram single;
  std::vector<sim::Histogram> shards(kShards);
  for (int i = 0; i < 20000; ++i) {
    // Mix of exact small values and log-bucketed large ones.
    std::uint64_t v = rng() % ((i % 3 == 0) ? 17 : 3'000'000);
    single.add(v);
    shards[static_cast<std::size_t>(i % kShards)].add(v);
  }

  std::vector<int> order(kShards);
  for (int i = 0; i < kShards; ++i) order[static_cast<std::size_t>(i)] = i;
  for (int trial = 0; trial < 4; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    sim::Histogram merged;
    for (int idx : order) merged.merge(shards[static_cast<std::size_t>(idx)]);
    // Bucketwise merge is exact, so the whole JSON dump (counts, every
    // quantile, every bucket) matches the single-shot histogram byte for
    // byte — no merge error on top of the documented 2^-kSubBits
    // interpolation error.
    EXPECT_EQ(hist_json(merged), hist_json(single));
    EXPECT_EQ(merged.quantile(0.999), single.quantile(0.999));
  }
}

TEST(StatsMerge, SamplerShardsMergeWithinDocumentedBounds) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.5, 5000.0);
  constexpr int kShards = 5;
  sim::Sampler single;
  std::vector<sim::Sampler> shards(kShards);
  for (int i = 0; i < 10000; ++i) {
    double x = dist(rng);
    single.add(x);
    shards[static_cast<std::size_t>(i % kShards)].add(x);
  }

  std::vector<int> order{3, 0, 4, 2, 1};
  for (int trial = 0; trial < 3; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    sim::Sampler merged;
    for (int idx : order) merged.merge(shards[static_cast<std::size_t>(idx)]);
    // Exact fields.
    EXPECT_EQ(merged.count(), single.count());
    EXPECT_EQ(merged.min(), single.min());
    EXPECT_EQ(merged.max(), single.max());
    EXPECT_EQ(merged.quantile(0.5), single.quantile(0.5));
    EXPECT_EQ(merged.quantile(0.99), single.quantile(0.99));
    // Mean/variance: exact up to floating-point rounding (Chan's parallel
    // Welford) — documented bound is 1e-9 relative.
    EXPECT_NEAR(merged.mean(), single.mean(),
                std::abs(single.mean()) * 1e-9);
    EXPECT_NEAR(merged.variance(), single.variance(),
                std::abs(single.variance()) * 1e-9);
    EXPECT_NEAR(merged.sum(), single.sum(), std::abs(single.sum()) * 1e-12);
  }
}

TEST(StatsMerge, EmptyShardsAreIdentity) {
  sim::Sampler s;
  s.add(3.0);
  s.add(9.0);
  sim::Sampler empty;
  sim::Sampler merged = s;
  merged.merge(empty);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.mean(), s.mean());
  sim::Sampler other;
  other.merge(s);  // merge into empty
  EXPECT_EQ(other.count(), 2u);
  EXPECT_EQ(other.min(), 3.0);
  EXPECT_EQ(other.max(), 9.0);
}

TEST(StatsMerge, RegistryUnionMergeEqualsSingleShot) {
  std::mt19937_64 rng(11);
  // Counters + histograms only: their merges are bitwise-exact, so the
  // registry dumps compare byte for byte (sampler rounding is covered by
  // SamplerShardsMergeWithinDocumentedBounds).
  sim::StatRegistry single;
  constexpr int kShards = 4;
  std::vector<sim::StatRegistry> shards(kShards);
  const char* names[] = {"node0.reads", "node1.reads", "rmc.rtt"};
  for (int i = 0; i < 5000; ++i) {
    auto& shard = shards[static_cast<std::size_t>(i % kShards)];
    const char* name = names[i % 3];
    std::uint64_t v = rng() % 100000;
    single.counter(name).inc(v);
    shard.counter(name).inc(v);
    single.histogram("lat").add(v);
    shard.histogram("lat").add(v);
  }
  // Name present in only one shard: union copies it through.
  shards[2].counter("only.shard2").inc(5);
  single.counter("only.shard2").inc(5);

  sim::StatRegistry merged;
  for (int idx : {2, 0, 3, 1}) {
    merged.merge(shards[static_cast<std::size_t>(idx)]);
  }
  EXPECT_EQ(registry_json(merged), registry_json(single));
  EXPECT_EQ(merged.counter_value("only.shard2"), 5u);
}

// ---------------------------------------------------------------------------
// Golden comparison and floor gates
// ---------------------------------------------------------------------------

class SweepGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto spec = parse({"bench=fig6", "grid.hops=0,1", "accesses=50"});
    sweep::SweepOptions opt;
    opt.jobs = 2;
    report_ = sweep::run_sweep(spec, opt);
    ASSERT_EQ(report_.runs.size(), 2u);
    // repeats=1, so each cell's median is exactly its single run's metric.
    per_read_us_ = report_.runs[0].out.metric("per_read_us");
  }

  sweep::SweepReport report_;
  double per_read_us_ = 0;
};

TEST_F(SweepGateTest, ReportMatchesItselfExactly) {
  EXPECT_TRUE(sweep::compare_reports(report_.json, report_.json, 0.0).empty());
}

TEST_F(SweepGateTest, GoldenWithinTolerancePasses) {
  std::string golden = "{\"cells\":[{\"key\":\"hops=0\",\"metrics\":{"
                       "\"per_read_us\":{\"median\":" +
                       sim::json_double(per_read_us_ * 1.01) + "}}}]}";
  EXPECT_TRUE(sweep::compare_reports(report_.json, golden, 0.02).empty());
  auto failures = sweep::compare_reports(report_.json, golden, 0.001);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].where, "hops=0.per_read_us");
}

TEST_F(SweepGateTest, MissingCellAndMetricFail) {
  std::string missing_cell =
      "{\"cells\":[{\"key\":\"hops=99\",\"metrics\":{"
      "\"per_read_us\":{\"median\":1}}}]}";
  EXPECT_EQ(sweep::compare_reports(report_.json, missing_cell, 0.1).size(),
            1u);
  std::string missing_metric =
      "{\"cells\":[{\"key\":\"hops=0\",\"metrics\":{"
      "\"no_such_metric\":{\"median\":1}}}]}";
  EXPECT_EQ(sweep::compare_reports(report_.json, missing_metric, 0.1).size(),
            1u);
}

TEST_F(SweepGateTest, ExtraCellsInNewReportAreIgnored) {
  // Golden covers only hops=0; the report also has hops=1 — grids may grow.
  std::string golden = "{\"cells\":[{\"key\":\"hops=0\",\"metrics\":{"
                       "\"per_read_us\":{\"median\":" +
                       sim::json_double(per_read_us_) + "}}}]}";
  EXPECT_TRUE(sweep::compare_reports(report_.json, golden, 0.0).empty());
}

TEST_F(SweepGateTest, FloorsGateOnMedians) {
  std::string pass = "{\"floors\":{\"hops=0.per_read_us\":" +
                     sim::json_double(per_read_us_ * 0.5) + "}}";
  EXPECT_TRUE(sweep::check_floors(report_.json, pass).empty());

  std::string fail = "{\"floors\":{\"hops=0.per_read_us\":" +
                     sim::json_double(per_read_us_ * 2.0) + "}}";
  auto failures = sweep::check_floors(report_.json, fail);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].where, "hops=0.per_read_us");
}

}  // namespace
}  // namespace ms
