// Tests for the HyperTransport packet/link model and the cluster fabric:
// wire sizes, link serialization and credits, topology/routing properties
// (parameterized over kinds and sizes), fabric timing and failure injection.
#include <gtest/gtest.h>

#include "ht/bridge.hpp"
#include "ht/link.hpp"
#include "ht/packet.hpp"
#include "noc/fabric.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "sim/engine.hpp"

namespace ms {
namespace {

using noc::NodeId;

TEST(Packet, WireSizesFollowType) {
  ht::Packet read{.type = ht::PacketType::kReadReq, .size = 64};
  ht::Packet resp{.type = ht::PacketType::kReadResp, .size = 64};
  ht::Packet write{.type = ht::PacketType::kWriteReq, .size = 64};
  ht::Packet ack{.type = ht::PacketType::kWriteAck, .size = 0};
  EXPECT_EQ(ht::wire_size(read), 16u);   // headers only
  EXPECT_EQ(ht::wire_size(resp), 80u);   // headers + data
  EXPECT_EQ(ht::wire_size(write), 80u);
  EXPECT_EQ(ht::wire_size(ack), 16u);
  EXPECT_NE(read.describe().find("ReadReq"), std::string::npos);
}

sim::Task<void> one_transmit(ht::Link& link, std::uint32_t bytes) {
  co_await link.transmit(bytes);
}

TEST(Link, ZeroLoadLatencyIsSerializationPlusPropagation) {
  sim::Engine e;
  ht::Link::Params p{.bytes_per_ns = 4.0, .propagation = sim::ns(20),
                     .credits = 8};
  ht::Link link(e, "l", p);
  e.spawn(one_transmit(link, 80));
  e.run();
  // 80 B / 4 B/ns = 20 ns serialization + 20 ns propagation.
  EXPECT_EQ(e.now(), sim::ns(40));
  EXPECT_EQ(link.packets(), 1u);
  EXPECT_EQ(link.bytes(), 80u);
}

TEST(Link, TransmitterSerializesBackToBackMessages) {
  sim::Engine e;
  ht::Link::Params p{.bytes_per_ns = 4.0, .propagation = sim::ns(20),
                     .credits = 8};
  ht::Link link(e, "l", p);
  for (int i = 0; i < 4; ++i) e.spawn(one_transmit(link, 80));
  e.run();
  // Serializations pipeline: 4 * 20 ns + one trailing propagation.
  EXPECT_EQ(e.now(), sim::ns(100));
}

TEST(Link, CreditsBoundInFlightMessages) {
  sim::Engine e;
  // One credit: each message must fully arrive before the next starts.
  ht::Link::Params p{.bytes_per_ns = 4.0, .propagation = sim::ns(20),
                     .credits = 1};
  ht::Link link(e, "l", p);
  for (int i = 0; i < 3; ++i) e.spawn(one_transmit(link, 80));
  e.run();
  EXPECT_EQ(e.now(), sim::ns(120));  // 3 * (20 + 20)
}

TEST(Bridge, ChargesLatencyAndCounts) {
  ht::HncBridge bridge(ht::HncBridge::Params{.encapsulate_latency = sim::ns(32),
                                             .decapsulate_latency = sim::ns(16)});
  ht::Packet p{.type = ht::PacketType::kReadReq};
  EXPECT_EQ(bridge.encapsulate(p), sim::ns(32));
  EXPECT_EQ(bridge.decapsulate(p), sim::ns(16));
  EXPECT_EQ(bridge.packets_out(), 1u);
  EXPECT_EQ(bridge.packets_in(), 1u);
}

// ---- Topology properties, parameterized over kind and size ----

struct TopoCase {
  std::string kind;
  int nodes;
};

class TopologyProperties : public ::testing::TestWithParam<TopoCase> {};

TEST_P(TopologyProperties, StructureIsValid) {
  auto topo = noc::Topology::make(GetParam().kind, GetParam().nodes);
  EXPECT_EQ(topo->num_nodes(), GetParam().nodes);
  EXPECT_NO_THROW(noc::validate_topology(*topo));
}

TEST_P(TopologyProperties, RoutesAreSymmetricInLength) {
  auto topo = noc::Topology::make(GetParam().kind, GetParam().nodes);
  const int n = topo->num_nodes();
  for (NodeId s = 1; s <= n; ++s) {
    for (NodeId d = 1; d <= n; ++d) {
      EXPECT_EQ(topo->hops(s, d), topo->hops(d, s))
          << GetParam().kind << " " << s << "<->" << d;
    }
  }
}

TEST_P(TopologyProperties, RouteTableMatchesTopology) {
  auto topo = noc::Topology::make(GetParam().kind, GetParam().nodes);
  noc::RouteTable table(*topo);
  const int n = topo->num_nodes();
  int max_hops = 0;
  for (NodeId s = 1; s <= n; ++s) {
    for (NodeId d = 1; d <= n; ++d) {
      EXPECT_EQ(table.route(s, d), topo->route(s, d));
      max_hops = std::max(max_hops, table.hops(s, d));
    }
  }
  EXPECT_EQ(table.diameter(), max_hops);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, TopologyProperties,
    ::testing::Values(TopoCase{"mesh2d", 16}, TopoCase{"mesh2d", 12},
                      TopoCase{"mesh2d", 1}, TopoCase{"torus2d", 16},
                      TopoCase{"torus2d", 9}, TopoCase{"ring", 8},
                      TopoCase{"ring", 2}, TopoCase{"star", 8},
                      TopoCase{"full", 6}),
    [](const auto& info) {
      return info.param.kind + "_" + std::to_string(info.param.nodes);
    });

TEST(Topology, Mesh4x4MatchesPaperGeometry) {
  auto topo = noc::Topology::make("mesh2d", 16);
  auto* mesh = dynamic_cast<noc::Mesh2D*>(topo.get());
  ASSERT_NE(mesh, nullptr);
  EXPECT_EQ(mesh->width(), 4);
  EXPECT_EQ(mesh->height(), 4);
  // Corner-to-corner: 3 + 3 hops on a 4x4 mesh.
  EXPECT_EQ(topo->hops(1, 16), 6);
  // Neighbours: 1 hop.
  EXPECT_EQ(topo->hops(1, 2), 1);
  // XY routing resolves X first.
  auto route = topo->route(1, 16);
  EXPECT_EQ(route.front(), 2);  // move along X
}

TEST(Topology, TorusWrapsShorterWay) {
  auto topo = noc::Topology::make("torus2d", 16);
  // 1 (0,0) to 4 (3,0): one wraparound hop on a 4-wide torus.
  EXPECT_EQ(topo->hops(1, 4), 1);
  auto mesh = noc::Topology::make("mesh2d", 16);
  EXPECT_EQ(mesh->hops(1, 4), 3);
}

TEST(Topology, UnknownKindThrows) {
  EXPECT_THROW(noc::Topology::make("hypercube", 8), std::invalid_argument);
  EXPECT_THROW(noc::Topology::make("mesh2d", 0), std::invalid_argument);
}

// ---- Fabric ----

noc::Fabric::Params fast_fabric() {
  noc::Fabric::Params p;
  p.link.bytes_per_ns = 4.0;
  p.link.propagation = sim::ns(20);
  p.link.credits = 8;
  p.router_delay = sim::ns(60);
  return p;
}

sim::Task<void> traverse_once(noc::Fabric& f, ht::Packet p) {
  co_await f.traverse(p);
}

TEST(Fabric, ZeroLoadLatencyScalesWithHops) {
  sim::Engine e;
  noc::Fabric f(e, noc::Topology::make("mesh2d", 16), fast_fabric());
  ht::Packet p{.type = ht::PacketType::kReadReq, .src = 1, .dst = 2};
  e.spawn(traverse_once(f, p));
  e.run();
  const sim::Time one_hop = e.now();
  EXPECT_EQ(one_hop, f.zero_load_latency(1, ht::wire_size(p)));

  sim::Engine e2;
  noc::Fabric f2(e2, noc::Topology::make("mesh2d", 16), fast_fabric());
  ht::Packet p6{.type = ht::PacketType::kReadReq, .src = 1, .dst = 16};
  e2.spawn(traverse_once(f2, p6));
  e2.run();
  EXPECT_EQ(e2.now(), 6 * one_hop);
  EXPECT_EQ(f2.packets_delivered(), 1u);
}

TEST(Fabric, RejectsLoopbackTraversal) {
  sim::Engine e;
  noc::Fabric f(e, noc::Topology::make("mesh2d", 4), fast_fabric());
  ht::Packet p{.type = ht::PacketType::kReadReq, .src = 1, .dst = 1};
  e.spawn(traverse_once(f, p));
  EXPECT_THROW(e.run(), std::logic_error);
}

TEST(Fabric, DownLinkFailsTraversalAndRecovers) {
  sim::Engine e;
  noc::Fabric f(e, noc::Topology::make("mesh2d", 4), fast_fabric());
  f.set_link_down(1, 2, true);
  EXPECT_TRUE(f.link_is_down(1, 2));
  ht::Packet p{.type = ht::PacketType::kReadReq, .src = 1, .dst = 2};
  e.spawn(traverse_once(f, p));
  EXPECT_THROW(e.run(), std::logic_error);

  f.set_link_down(1, 2, false);
  sim::Engine e2;  // fresh engine: the failed process is gone
  noc::Fabric f2(e2, noc::Topology::make("mesh2d", 4), fast_fabric());
  e2.spawn(traverse_once(f2, p));
  EXPECT_NO_THROW(e2.run());
}

TEST(Fabric, SharedLinkShowsContention) {
  sim::Engine e;
  noc::Fabric f(e, noc::Topology::make("mesh2d", 4), fast_fabric());
  // Node 1 and node 3 both send to node 2; on a 2x2 mesh the 1->2 and
  // 3->... routes differ, so use two identical flows 1->2 to collide.
  ht::Packet big{.type = ht::PacketType::kWriteReq, .src = 1, .dst = 2,
                 .size = 4096};
  e.spawn(traverse_once(f, big));
  e.spawn(traverse_once(f, big));
  e.run();
  const auto serialization = sim::ns_d(ht::wire_size(big) / 4.0);
  // Second message waits for the first one's serialization.
  EXPECT_GE(e.now(), sim::ns(60) + 2 * serialization + sim::ns(20));
  EXPECT_GT(f.link(1, 2).busy_time(), serialization);
}

TEST(Fabric, StatsAccumulatePerLink) {
  sim::Engine e;
  noc::Fabric f(e, noc::Topology::make("ring", 4), fast_fabric());
  ht::Packet p{.type = ht::PacketType::kReadReq, .src = 1, .dst = 2};
  e.spawn(traverse_once(f, p));
  e.run();
  EXPECT_EQ(f.link(1, 2).packets(), 1u);
  EXPECT_EQ(f.link(2, 1).packets(), 0u);
  EXPECT_THROW(f.link(1, 3), std::out_of_range);
}

}  // namespace
}  // namespace ms
