// memscale-analyze: offline critical-path analysis of memscale traces.
//
// Reads a causal trace written by any bench (--trace=out.json for the
// Chrome-trace JSON, --flight=out.bin for the binary flight recorder) and
// prints, without needing a browser:
//   - the transaction population (count, mean/percentile end-to-end latency),
//   - the cross-transaction segment breakdown (queue vs serialization vs
//     link vs RMC vs memory vs coherence vs swap), which sums exactly to
//     the measured end-to-end time,
//   - the per-component leaf table (which span on which track costs what),
//   - the slowest transactions, each decomposed into segments,
//   - with --timeseries=file.json, the top contended 4 KiB pages from a
//     --timeseries-json stream,
//   - with --stats=stats.json, the memory-op hot-path counter view (fast-
//     vs slow-path accesses, TLB flat probes, pooled vs heap coroutine
//     frames) from a --stats-json dump taken with hotpath_stats=1.
//
// Usage: memscale_analyze <trace.json|flight.bin>
//                         [--top=N] [--timeseries=ts.json]
//                         [--stats=stats.json] [--csv]

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/json.hpp"
#include "sim/table.hpp"
#include "sim/time.hpp"
#include "sim/trace_analysis.hpp"

namespace {

using ms::sim::Segment;
using ms::sim::Time;

double us(Time t) { return static_cast<double>(t) / 1e6; }

Time percentile(std::vector<Time>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// Pulls every "hot_pages":[[page,count],...] array out of a
// --timeseries-json stream. Counts are cumulative per run, so the maximum
// seen per page is its final tally. Strict: a truncated or malformed
// stream throws instead of yielding a partial table.
std::vector<std::pair<std::uint64_t, std::uint64_t>> hot_pages_from(
    std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const ms::sim::json::Value doc = ms::sim::json::parse(buf.str());
  std::map<std::uint64_t, std::uint64_t> pages;
  for (const auto& run : doc.at("runs").as_array()) {
    for (const auto& pt : run.at("points").as_array()) {
      for (const auto& entry : pt.at("hot_pages").as_array()) {
        const auto& pair = entry.as_array();
        if (pair.size() != 2) {
          throw std::runtime_error("malformed hot_pages entry");
        }
        const auto page = static_cast<std::uint64_t>(pair[0].as_number());
        const auto count = static_cast<std::uint64_t>(pair[1].as_number());
        auto& slot = pages[page];
        slot = std::max(slot, count);
      }
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out(pages.begin(),
                                                           pages.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace

// Prints the hot-path counter table from a StatRegistry dump: every
// counter whose name marks it as memory-op hot-path telemetry, plus the
// derived fast-path share. Keys absent from the dump (run without
// hotpath_stats=1, or simply idle) are skipped — same nonzero-only
// convention the exporter follows.
void print_hotpath_stats(const ms::sim::json::Value& doc, bool csv) {
  static const char* kSuffixes[] = {
      "fastpath_hits", "slowpath_accesses", "tlb.flat_probes",
      "tlb.hits",      "tlb.misses",        "engine.frames_pooled",
      "engine.frames_heap"};
  const auto& counters = doc.at("counters").as_object();
  ms::sim::Table table({"counter", "value"});
  double fast = 0, slow = 0;
  std::size_t rows = 0;
  for (const auto& [name, value] : counters) {
    bool match = false;
    for (const char* suffix : kSuffixes) {
      const std::string sfx(suffix);
      if (name.size() >= sfx.size() &&
          name.compare(name.size() - sfx.size(), sfx.size(), sfx) == 0) {
        match = true;
        break;
      }
    }
    if (!match) continue;
    const double v = value.as_number();
    if (name.find("fastpath_hits") != std::string::npos) fast += v;
    if (name.find("slowpath_accesses") != std::string::npos) slow += v;
    table.row().cell(name).cell(static_cast<std::uint64_t>(v));
    ++rows;
  }
  std::cout << "== memory-op hot path ==\n";
  if (rows == 0) {
    std::cout << "(no hot-path counters in dump; run with hotpath_stats=1)"
              << "\n\n";
    return;
  }
  std::cout << (csv ? table.csv() : table.render());
  if (fast + slow > 0) {
    std::ostringstream share;
    share << "fast-path share: "
          << 100.0 * fast / (fast + slow) << "% of "
          << static_cast<std::uint64_t>(fast + slow) << " accesses";
    std::cout << share.str() << "\n";
  }
  std::cout << "\n";
}

int main(int argc, char** argv) {
  std::string trace_path;
  std::string timeseries_path;
  std::string stats_path;
  std::size_t top = 10;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--top=", 0) == 0) {
      top = static_cast<std::size_t>(std::strtoull(arg.c_str() + 6, nullptr,
                                                   10));
    } else if (arg.rfind("--timeseries=", 0) == 0) {
      timeseries_path = arg.substr(13);
    } else if (arg.rfind("--stats=", 0) == 0) {
      stats_path = arg.substr(8);
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: memscale_analyze <trace.json|flight.bin> "
                   "[--top=N] [--timeseries=ts.json] [--stats=stats.json] "
                   "[--csv]\n";
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      trace_path = arg;
    } else {
      std::cerr << "memscale_analyze: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (trace_path.empty() && !stats_path.empty()) {
    // Stats-only mode: no trace to analyze, just the hot-path counters.
    std::ifstream st(stats_path);
    if (!st) {
      std::cerr << "memscale_analyze: cannot open " << stats_path << "\n";
      return 1;
    }
    try {
      std::ostringstream buf;
      buf << st.rdbuf();
      print_hotpath_stats(ms::sim::json::parse(buf.str()), csv);
    } catch (const std::exception& e) {
      std::cerr << "memscale_analyze: " << stats_path << ": " << e.what()
                << "\n";
      return 1;
    }
    return 0;
  }
  if (trace_path.empty()) {
    std::cerr << "memscale_analyze: no trace file given (see --help)\n";
    return 2;
  }

  std::ifstream in(trace_path, std::ios::binary);
  if (!in) {
    std::cerr << "memscale_analyze: cannot open " << trace_path << "\n";
    return 1;
  }
  char magic[8] = {};
  in.read(magic, 8);
  in.clear();
  in.seekg(0);

  ms::sim::TraceAnalysis analysis;
  try {
    if (std::string(magic, 8) == "MSFLIGHT") {
      analysis = ms::sim::TraceAnalysis::load_flight(in);
    } else {
      analysis = ms::sim::TraceAnalysis::load_chrome(in);
    }
  } catch (const std::exception& e) {
    std::cerr << "memscale_analyze: " << e.what() << "\n";
    return 1;
  }

  const auto txns = analysis.transactions();
  std::cout << "trace: " << trace_path << " — " << analysis.spans().size()
            << " spans, " << txns.size() << " transactions";
  if (analysis.flight_dropped() > 0) {
    std::cout << " (" << analysis.flight_dropped()
              << " flight records dropped)";
  }
  std::cout << "\n\n";
  if (txns.empty()) {
    std::cout << "no transactions in trace (was tracing enabled and the "
                 "workload routed through a MemorySpace?)\n";
    return 0;
  }

  // Population summary.
  std::vector<Time> totals;
  totals.reserve(txns.size());
  Time grand_total = 0;
  for (const auto& t : txns) {
    totals.push_back(t.total);
    grand_total += t.total;
  }
  std::sort(totals.begin(), totals.end());
  {
    ms::sim::Table table({"txns", "mean_us", "p50_us", "p95_us", "p99_us",
                          "max_us"});
    table.row()
        .cell(static_cast<std::uint64_t>(txns.size()))
        .cell(us(grand_total) / static_cast<double>(txns.size()), 3)
        .cell(us(percentile(totals, 0.50)), 3)
        .cell(us(percentile(totals, 0.95)), 3)
        .cell(us(percentile(totals, 0.99)), 3)
        .cell(us(totals.back()), 3);
    std::cout << "== end-to-end latency ==\n"
              << (csv ? table.csv() : table.render()) << "\n";
  }

  // Segment breakdown — sums exactly to the end-to-end total.
  {
    const auto seg = analysis.segment_totals();
    Time sum = 0;
    for (const Time v : seg) sum += v;
    ms::sim::Table table({"segment", "total_us", "share_%"});
    for (int i = 0; i < ms::sim::kNumSegments; ++i) {
      if (seg[i] == 0) continue;
      table.row()
          .cell(std::string(to_string(static_cast<Segment>(i))))
          .cell(us(seg[i]), 3)
          .cell(100.0 * static_cast<double>(seg[i]) /
                    static_cast<double>(grand_total),
                2);
    }
    table.row().cell(std::string("total")).cell(us(sum), 3).cell(100.0, 2);
    std::cout << "== segment breakdown ==\n"
              << (csv ? table.csv() : table.render());
    if (sum != grand_total) {
      std::cout << "WARNING: segment sum (" << sum
                << " ps) != end-to-end total (" << grand_total << " ps)\n";
    }
    std::cout << "\n";

    // Cause decomposition of the coherence segment — sums exactly to it.
    const Time coh_total = seg[static_cast<int>(Segment::kCoherence)];
    const auto coh = analysis.coherence_cause_totals();
    Time coh_sum = 0;
    for (const Time v : coh) coh_sum += v;
    if (coh_sum != 0 || coh_total != 0) {
      ms::sim::Table cause_table({"cause", "total_us", "share_%"});
      for (int i = 0; i < ms::sim::kNumCohCauses; ++i) {
        if (coh[i] == 0) continue;
        cause_table.row()
            .cell(std::string(to_string(static_cast<ms::sim::CohCause>(i))))
            .cell(us(coh[i]), 3)
            .cell(100.0 * static_cast<double>(coh[i]) /
                      static_cast<double>(coh_total),
                  2);
      }
      std::cout << "== coherence causes ==\n"
                << (csv ? cause_table.csv() : cause_table.render());
      if (coh_sum != coh_total) {
        std::cout << "WARNING: coherence cause sum (" << coh_sum
                  << " ps) != coherence segment (" << coh_total << " ps)\n";
      }
      std::cout << "\n";
    }
  }

  // Per-component leaf table.
  {
    const auto rows = analysis.components();
    ms::sim::Table table(
        {"track", "span", "segment", "count", "total_us", "mean_ns"});
    std::size_t shown = 0;
    for (const auto& r : rows) {
      if (shown++ >= top) break;
      table.row()
          .cell(r.track)
          .cell(r.name)
          .cell(std::string(to_string(r.segment)))
          .cell(r.count)
          .cell(us(r.total), 3)
          .cell(static_cast<double>(r.total) /
                    (1e3 * static_cast<double>(r.count)),
                1);
    }
    std::cout << "== hottest components (top " << std::min(top, rows.size())
              << " of " << rows.size() << ") ==\n"
              << (csv ? table.csv() : table.render()) << "\n";
  }

  // Hot-path counter view, adjacent to the component table: the counters
  // say how much work never became spans at all (fast-path hits resolve
  // with no engine events, so they are invisible to the trace above).
  if (!stats_path.empty()) {
    std::ifstream st(stats_path);
    if (!st) {
      std::cerr << "memscale_analyze: cannot open " << stats_path << "\n";
      return 1;
    }
    try {
      std::ostringstream buf;
      buf << st.rdbuf();
      print_hotpath_stats(ms::sim::json::parse(buf.str()), csv);
    } catch (const std::exception& e) {
      std::cerr << "memscale_analyze: " << stats_path << ": " << e.what()
                << "\n";
      return 1;
    }
  }

  // Slowest transactions, decomposed.
  {
    auto slowest = txns;
    std::sort(slowest.begin(), slowest.end(),
              [](const auto& a, const auto& b) {
                if (a.total != b.total) return a.total > b.total;
                return a.txn < b.txn;
              });
    if (slowest.size() > top) slowest.resize(top);
    ms::sim::Table table({"txn", "op", "total_us", "breakdown"});
    for (const auto& t : slowest) {
      std::ostringstream parts;
      bool first = true;
      for (int i = 0; i < ms::sim::kNumSegments; ++i) {
        if (t.seg[i] == 0) continue;
        if (!first) parts << " ";
        first = false;
        parts << to_string(static_cast<Segment>(i)) << "="
              << static_cast<double>(t.seg[i]) / 1e6 << "us";
      }
      table.row()
          .cell(t.txn)
          .cell(t.name)
          .cell(us(t.total), 3)
          .cell(parts.str());
    }
    std::cout << "== slowest transactions ==\n"
              << (csv ? table.csv() : table.render()) << "\n";
  }

  if (!timeseries_path.empty()) {
    std::ifstream ts(timeseries_path);
    if (!ts) {
      std::cerr << "memscale_analyze: cannot open " << timeseries_path
                << "\n";
      return 1;
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pages;
    try {
      pages = hot_pages_from(ts);
    } catch (const std::exception& e) {
      std::cerr << "memscale_analyze: " << timeseries_path << ": "
                << e.what() << "\n";
      return 1;
    }
    ms::sim::Table table({"page", "accesses"});
    std::size_t shown = 0;
    for (const auto& [page, count] : pages) {
      if (shown++ >= top) break;
      std::ostringstream hex;
      hex << "0x" << std::hex << (page << 12);
      table.row().cell(hex.str()).cell(count);
    }
    std::cout << "== hottest pages (top " << std::min(top, pages.size())
              << " of " << pages.size() << ") ==\n"
              << (csv ? table.csv() : table.render()) << "\n";
  }
  return 0;
}
