// memscale_report: renders a --stats-json dump into a self-contained
// Markdown or HTML coherence-tax report, or diffs two dumps with tolerance
// bounds (the CI golden gate).
//
//   memscale_report --stats run.json [--html out.html] [--md out.md]
//   memscale_report --diff a.json b.json [--rel-tol 0.02] [--abs-tol 0]
//
// Exit codes: 0 ok; 1 diff out of tolerance; 2 usage, I/O or parse error
// (including truncated/malformed JSON — the parser is strict).

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/report.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: memscale_report --stats <stats.json> [--html <file>] "
         "[--md <file>] [--title <s>] [--top-pages <n>]\n"
         "       memscale_report --diff <a.json> <b.json> [--rel-tol <f>] "
         "[--abs-tol <f>] [--md <file>]\n";
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out.good()) {
    std::cerr << "memscale_report: cannot write " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stats_path, diff_a, diff_b, html_path, md_path;
  ms::sim::report::ReportOptions report_opts;
  ms::sim::report::DiffOptions diff_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--stats") {
      stats_path = next();
    } else if (arg == "--diff") {
      diff_a = next();
      diff_b = next();
    } else if (arg == "--html") {
      html_path = next();
    } else if (arg == "--md") {
      md_path = next();
    } else if (arg == "--title") {
      report_opts.title = next();
    } else if (arg == "--top-pages") {
      report_opts.top_pages = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--rel-tol") {
      diff_opts.rel_tol = std::strtod(next(), nullptr);
    } else if (arg == "--abs-tol") {
      diff_opts.abs_tol = std::strtod(next(), nullptr);
    } else {
      usage();
      return 2;
    }
  }

  try {
    if (!diff_a.empty()) {
      const auto a = ms::sim::report::StatsDump::load(diff_a);
      const auto b = ms::sim::report::StatsDump::load(diff_b);
      const auto result = ms::sim::report::diff(a, b, diff_opts);
      const std::string rendered = ms::sim::report::render_diff_markdown(
          result, diff_opts, diff_a, diff_b);
      std::cout << rendered;
      if (!md_path.empty() && !write_file(md_path, rendered)) return 2;
      return result.ok() ? 0 : 1;
    }
    if (stats_path.empty()) {
      usage();
      return 2;
    }
    const auto dump = ms::sim::report::StatsDump::load(stats_path);
    const std::string md = ms::sim::report::render_markdown(dump, report_opts);
    if (!md_path.empty()) {
      if (!write_file(md_path, md)) return 2;
    }
    if (!html_path.empty()) {
      if (!write_file(html_path,
                      ms::sim::report::render_html(dump, report_opts))) {
        return 2;
      }
    }
    if (md_path.empty() && html_path.empty()) std::cout << md;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "memscale_report: " << e.what() << "\n";
    return 2;
  }
}
