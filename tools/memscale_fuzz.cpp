// memscale-fuzz: randomized model-checking harness for the simulator.
//
// Campaign mode (default) runs N seeded episodes, each on a randomly
// generated cluster configuration and workload mix, with the global
// invariant checkers armed and the engine's same-timestamp tie-fuzz on.
// Failures are auto-minimized to a short repro command line:
//
//   memscale_fuzz episodes=200 seed=1
//   memscale_fuzz episodes=64 seed=1 flight=/tmp/fuzz-artifacts
//   memscale_fuzz mutation=skip-downgrade episodes=1 seed=7
//
// Repro mode re-runs one episode from a repro line printed by a campaign
// (knob overrides on top of the default baseline):
//
//   memscale_fuzz repro=1 seed=7 cores_per_socket=2 threads=2 workload=2
//
// Exit status: 0 when every episode is violation-free, 1 otherwise.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"

namespace {

void usage() {
  std::cout <<
      "memscale_fuzz [key=value ...]   (leading -- on keys is accepted)\n"
      "\n"
      "campaign mode (default):\n"
      "  episodes=N      episodes to run (default 64)\n"
      "  seed=S          first seed; episode i uses seed S+i (default 1)\n"
      "  epoch_us=U      invariant sweep period in us; 0 = drain-only "
      "(default 20)\n"
      "  minimize=0|1    auto-minimize failing episodes (default 1)\n"
      "  flight=DIR      dump MSFLIGHT rings for failing seeds into DIR\n"
      "  mutation=M      none|skip-downgrade|leak-credit|phantom-request|"
      "shrink-swap\n"
      "  verbose=0|1     per-episode progress lines (default 0)\n"
      "  jobs=N          episode worker threads; 0 = all cores (default 1).\n"
      "                  Results and log output are identical for every N\n"
      "\n"
      "repro mode:\n"
      "  repro=1 seed=S [knob=value ...]   re-run one episode; knobs are\n"
      "  overrides on the default baseline (see a campaign's repro lines)\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Reserved harness keys; everything else is a Knobs override (repro mode).
  std::uint64_t episodes = 64, first_seed = 1, epoch_us = 20;
  int jobs = 1;
  bool minimize = true, verbose = false, repro = false;
  std::string flight, mutation_str;
  ms::fuzz::Knobs knobs;
  std::vector<std::string> knob_overrides;

  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    while (!tok.empty() && tok.front() == '-') tok.erase(tok.begin());
    if (tok == "help" || tok == "h") {
      usage();
      return 0;
    }
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      std::cerr << "memscale_fuzz: expected key=value, got '" << argv[i]
                << "'\n";
      return 2;
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    try {
      if (key == "episodes") {
        episodes = std::stoull(value);
      } else if (key == "seed") {
        first_seed = std::stoull(value);
      } else if (key == "epoch_us") {
        epoch_us = std::stoull(value);
      } else if (key == "minimize") {
        minimize = value != "0";
      } else if (key == "verbose") {
        verbose = value != "0";
      } else if (key == "jobs") {
        jobs = std::stoi(value);
      } else if (key == "repro") {
        repro = value != "0";
      } else if (key == "flight") {
        flight = value;
      } else if (key == "mutation") {
        mutation_str = value;
      } else {
        knobs.set(key, value);  // throws on an unknown name
        knob_overrides.push_back(key + "=" + value);
      }
    } catch (const std::exception& e) {
      std::cerr << "memscale_fuzz: bad argument '" << argv[i]
                << "': " << e.what() << "\n";
      return 2;
    }
  }

  ms::fuzz::Mutation mutation;
  try {
    mutation = ms::fuzz::parse_mutation(mutation_str);
  } catch (const std::exception& e) {
    std::cerr << "memscale_fuzz: " << e.what() << "\n";
    return 2;
  }

  if (repro) {
    ms::fuzz::EpisodeOptions opt;
    opt.seed = first_seed;
    opt.epoch = ms::sim::us(epoch_us);
    opt.mutation = mutation;
    std::cout << "repro seed=" << first_seed << " knobs: "
              << (knobs.repro_args().empty() ? "(defaults)"
                                             : knobs.repro_args())
              << "\n";
    const ms::fuzz::EpisodeResult r = ms::fuzz::run_episode(knobs, opt);
    std::cout << r.events << " events, " << ms::sim::to_us(r.sim_time)
              << " us simulated, " << r.checks << " invariant sweeps\n";
    for (const auto& v : r.violations) {
      std::cout << "[" << v.name << (v.at_drain ? " @drain" : " @epoch")
                << " t=" << v.when << "] " << v.detail << "\n";
    }
    std::cout << (r.violations.empty() ? "OK" : "FAILED") << "\n";
    return r.violations.empty() ? 0 : 1;
  }

  if (!knob_overrides.empty()) {
    std::cerr << "memscale_fuzz: knob overrides (";
    for (const auto& kv : knob_overrides) std::cerr << kv << " ";
    std::cerr << ") only apply with repro=1; campaign episodes generate "
                 "their own knobs per seed\n";
    return 2;
  }

  ms::fuzz::CampaignOptions opt;
  opt.episodes = episodes;
  opt.first_seed = first_seed;
  opt.epoch = ms::sim::us(epoch_us);
  opt.mutation = mutation;
  opt.minimize = minimize;
  opt.flight_path = flight;
  opt.verbose = verbose;
  opt.jobs = jobs;
  const ms::fuzz::CampaignResult res = ms::fuzz::run_campaign(opt, &std::cout);
  return res.failing == 0 ? 0 : 1;
}
