// memscale-sweep: parallel campaign runner and perf-regression gate.
//
// Expands a declarative sweep spec — a bench kernel × parameter grid, or a
// fuzz campaign of N seeded episodes — into independent tasks, runs them
// across a bounded thread pool (one fully isolated Engine+Cluster per
// task), and aggregates per-run stats into one merged report with per-cell
// medians. The merged report is byte-identical for every --jobs value, so
// it can be compared against committed goldens with explicit tolerances:
//
//   memscale_sweep spec=sweep/specs/fig6.spec jobs=8 report=/tmp/fig6.json
//   memscale_sweep spec=sweep/specs/fig6.spec check=sweep/goldens/fig6.json
//   memscale_sweep bench=fig6 grid.hops=0..6 accesses=400 jobs=0
//   memscale_sweep fuzz=1 episodes=200 seed=1 jobs=0
//   memscale_sweep spec=... floors=sweep/goldens/engine_floors.json
//
// Exit status: 0 = ran clean (and every check passed), 1 = a golden/floor
// check failed or a fuzz episode found a violation, 2 = usage error.

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/parallel.hpp"
#include "sweep/kernels.hpp"
#include "sweep/sweep.hpp"

namespace {

void usage() {
  std::cout <<
      "memscale_sweep [key=value ...]   (leading -- on keys is accepted)\n"
      "\n"
      "harness keys (everything else goes into the sweep spec):\n"
      "  spec=FILE       load spec tokens from FILE ('#' comments); CLI\n"
      "                  tokens are applied on top and override it\n"
      "  jobs=N          worker threads; 0 = all cores (default 1)\n"
      "  out=DIR         write per-run stats JSON files into DIR\n"
      "  report=FILE     write the merged report JSON to FILE ('-' = stdout)\n"
      "  check=FILE      compare the report against golden FILE\n"
      "  tolerance=T     relative tolerance for check= (default 0.02)\n"
      "  floors=FILE     enforce metric floors from FILE\n"
      "  samplers=0|1    include per-cell merged sampler stats (default 0)\n"
      "  bench_json=FILE append a wall-clock summary record to FILE\n"
      "  verbose=0|1     progress lines (default 0)\n"
      "\n"
      "spec keys (bench mode):\n"
      "  bench=NAME      kernel to sweep (see list below)\n"
      "  grid.K=V1,V2    grid axis (also A..B inclusive integer ranges);\n"
      "                  cells are the cartesian product of all axes\n"
      "  repeats=N       runs per cell; report has median/min/max (default 1)\n"
      "  K=V             any other key: base cell/cluster parameter\n"
      "\n"
      "spec keys (fuzz mode): fuzz=1 episodes=N seed=S epoch_us=U\n"
      "  minimize=0|1 mutation=M flight=DIR   (as memscale_fuzz)\n"
      "\n"
      "kernels:\n";
  for (const auto& [name, def] : ms::sweep::kernels()) {
    std::cout << "  " << name << (def.deterministic ? "" : "  [wall-clock]")
              << "\n      params: " << def.params << "\n";
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, out_dir, report_path, check_path, floors_path;
  std::string bench_json_path;
  double tolerance = 0.02;
  ms::sweep::SweepOptions opt;
  std::vector<std::string> spec_tokens;

  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    while (!tok.empty() && tok.front() == '-') tok.erase(tok.begin());
    if (tok == "help" || tok == "h") {
      usage();
      return 0;
    }
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      std::cerr << "memscale_sweep: expected key=value, got '" << argv[i]
                << "'\n";
      return 2;
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    try {
      if (key == "spec") {
        spec_path = value;
      } else if (key == "jobs") {
        opt.jobs = std::stoi(value);
      } else if (key == "out") {
        out_dir = value;
      } else if (key == "report") {
        report_path = value;
      } else if (key == "check") {
        check_path = value;
      } else if (key == "tolerance") {
        tolerance = std::stod(value);
      } else if (key == "floors") {
        floors_path = value;
      } else if (key == "samplers") {
        opt.merge_samplers = value != "0";
      } else if (key == "bench_json") {
        bench_json_path = value;
      } else if (key == "verbose") {
        opt.verbose = value != "0";
      } else {
        spec_tokens.push_back(tok);
      }
    } catch (const std::exception& e) {
      std::cerr << "memscale_sweep: bad argument '" << argv[i]
                << "': " << e.what() << "\n";
      return 2;
    }
  }

  ms::sweep::SweepSpec spec;
  try {
    spec = spec_path.empty()
               ? ms::sweep::SweepSpec::parse_tokens(spec_tokens)
               : ms::sweep::SweepSpec::load(spec_path, spec_tokens);
  } catch (const std::exception& e) {
    std::cerr << "memscale_sweep: " << e.what() << "\n";
    return 2;
  }

  opt.out_dir = out_dir;
  opt.log = &std::cout;

  ms::sweep::SweepReport report;
  try {
    report = ms::sweep::run_sweep(spec, opt);
  } catch (const std::exception& e) {
    std::cerr << "memscale_sweep: " << e.what() << "\n";
    return 2;
  }

  const int jobs_used = opt.jobs > 0
                            ? opt.jobs
                            : ms::sim::ParallelExecutor::default_jobs();
  std::cout << report.tasks << " tasks, jobs=" << jobs_used << ", wall "
            << report.wall_ms << " ms (task time " << report.task_ms_sum
            << " ms, speedup " << (report.wall_ms > 0
                                       ? report.task_ms_sum / report.wall_ms
                                       : 0)
            << "x)\n";

  if (!report_path.empty()) {
    if (report_path == "-") {
      std::cout << report.json << "\n";
    } else {
      std::ofstream out(report_path);
      if (!out) {
        std::cerr << "memscale_sweep: cannot write " << report_path << "\n";
        return 2;
      }
      out << report.json << "\n";
    }
  }

  if (!bench_json_path.empty()) {
    // One summary record per invocation, appended (JSON lines) so CI can
    // track sweep wall-clock across commits: BENCH_sweep.json idiom.
    std::ofstream out(bench_json_path, std::ios::app);
    if (!out) {
      std::cerr << "memscale_sweep: cannot write " << bench_json_path << "\n";
      return 2;
    }
    out << "{\"tasks\":" << report.tasks << ",\"jobs\":" << jobs_used
        << ",\"wall_ms\":" << report.wall_ms
        << ",\"task_ms_sum\":" << report.task_ms_sum << ",\"failing\":"
        << report.failing << "}\n";
  }

  bool checks_ok = true;
  try {
    if (!check_path.empty()) {
      const auto failures = ms::sweep::compare_reports(
          report.json, read_file(check_path), tolerance);
      for (const auto& f : failures) {
        std::cerr << "GOLDEN MISMATCH " << f.where << ": " << f.detail << "\n";
      }
      if (failures.empty()) {
        std::cout << "golden check vs " << check_path << ": OK (tolerance "
                  << tolerance * 100 << "%)\n";
      } else {
        checks_ok = false;
      }
    }
    if (!floors_path.empty()) {
      const auto failures =
          ms::sweep::check_floors(report.json, read_file(floors_path));
      for (const auto& f : failures) {
        std::cerr << "FLOOR VIOLATION " << f.where << ": " << f.detail << "\n";
      }
      if (failures.empty()) {
        std::cout << "floor check vs " << floors_path << ": OK\n";
      } else {
        checks_ok = false;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "memscale_sweep: " << e.what() << "\n";
    return 2;
  }

  if (report.failing != 0) {
    std::cerr << report.failing << " failing episodes\n";
    return 1;
  }
  return checks_ok ? 0 : 1;
}
