// In-memory database index over borrowed memory — the paper's short-term
// objective ("store indexes or the entire database in memory, and then
// study the execution time for different queries", Sec. VI).
//
// A b-tree index far larger than what we allow the process locally is held
// in memory donated by other nodes. The query mix is point lookups plus
// inserts; the example reports per-operation latency and compares with the
// remote-swap alternative a 2010 operator would otherwise use.
//
// Run:   ./inmemory_db [keys=1000000] [lookups=3000] [inserts=300]
#include <cstdio>

#include "core/cluster.hpp"
#include "core/remote_allocator.hpp"
#include "core/runner.hpp"
#include "sim/config.hpp"
#include "sim/random.hpp"
#include "sim/table.hpp"
#include "workloads/btree.hpp"

using namespace ms;

namespace {

struct QueryStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t range_rows = 0;
  sim::Time elapsed = 0;
};

sim::Task<void> run_queries(workloads::BTree& tree, sim::Engine& engine,
                            std::uint64_t lookups, std::uint64_t inserts,
                            std::uint64_t key_space, QueryStats* out) {
  core::ThreadCtx t;
  sim::Rng rng(2026);
  const sim::Time start = engine.now();
  for (std::uint64_t q = 0; q < lookups; ++q) {
    const std::uint64_t key = rng.below(key_space);
    if (co_await tree.search(t, key)) {
      ++out->hits;
    } else {
      ++out->misses;
    }
  }
  for (std::uint64_t q = 0; q < inserts; ++q) {
    co_await tree.insert(t, rng.below(key_space));
  }
  // A few analytic range queries, like a real index serves.
  for (int q = 0; q < 10; ++q) {
    const std::uint64_t lo = rng.below(key_space);
    auto rows = co_await tree.range_scan(t, lo, lo + 3000);
    out->range_rows += rows.size();
  }
  // search/insert/scan flush the thread's accumulated time on return.
  out->elapsed = engine.now() - start;
}

QueryStats run_backend(core::MemorySpace::Mode mode, const sim::Config& raw,
                       std::uint64_t keys, std::uint64_t lookups,
                       std::uint64_t inserts) {
  sim::Engine engine;
  core::Cluster cluster(engine, core::ClusterConfig::from(raw));

  core::MemorySpace::Params mp;
  mp.mode = mode;
  if (mode == core::MemorySpace::Mode::kRemoteRegion) {
    mp.placement = os::RegionManager::Placement::kRemoteOnly;
  }
  mp.swap.resident_limit_bytes = raw.get_u64("resident", 8ull << 20);
  core::MemorySpace space(cluster, 1, mp);
  core::RemoteAllocator alloc(space);
  workloads::BTree index(space, alloc, 192);

  core::Runner setup(engine);
  setup.spawn(index.bulk_build(keys, [](std::uint64_t i) { return i * 3; }));
  setup.run_all();

  QueryStats stats;
  core::Runner runner(engine);
  runner.spawn(run_queries(index, engine, lookups, inserts, keys * 3, &stats));
  runner.run_all();
  index.validate();  // the index must still be a valid b-tree
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  auto raw = sim::Config::from_args(argc, argv);
  const auto keys = raw.get_u64("keys", 1'000'000);
  const auto lookups = raw.get_u64("lookups", 3'000);
  const auto inserts = raw.get_u64("inserts", 300);

  std::printf("in-memory index: %llu keys (fanout 192), %llu lookups + %llu "
              "inserts on node 1\n\n",
              static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(lookups),
              static_cast<unsigned long long>(inserts));

  sim::Table table(
      {"backend", "total_ms", "us_per_query", "hit_ratio", "range_rows"});
  struct Backend {
    const char* name;
    core::MemorySpace::Mode mode;
  };
  for (auto [name, mode] :
       {Backend{"remote memory (this paper)",
                core::MemorySpace::Mode::kRemoteRegion},
        Backend{"remote swap", core::MemorySpace::Mode::kRemoteSwap}}) {
    auto stats = run_backend(mode, raw, keys, lookups, inserts);
    const double queries = static_cast<double>(lookups + inserts);
    table.row()
        .cell(name)
        .cell(sim::to_ms(stats.elapsed), 2)
        .cell(sim::to_us(stats.elapsed) / queries, 2)
        .cell(static_cast<double>(stats.hits) /
                  static_cast<double>(stats.hits + stats.misses),
              3)
        .cell(stats.range_rows);
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
