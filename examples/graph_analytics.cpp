// Memory-hungry graph analytics on borrowed memory.
//
// The paper's motivating class (Sec. I): applications that outgrow one
// node's memory but not one node's cores. PageRank on a synthetic
// power-law-ish graph is the canonical example: the edge array is huge,
// accesses are poorly local, and the algorithm's parallelism is modest.
// The whole graph lives in memory donated by other nodes; the single
// compute thread runs on node 1 and never pays a coherence penalty for
// the borrowed gigabytes.
//
// Run:   ./graph_analytics [vertices=200000] [edges_per_vertex=8] [iters=3]
#include <cstdio>
#include <vector>

#include "core/cluster.hpp"
#include "core/memory_space.hpp"
#include "core/runner.hpp"
#include "sim/config.hpp"
#include "sim/random.hpp"

using namespace ms;

namespace {

// Graph layout in simulated memory (CSR):
//   offsets: (V+1) u64     edge list start per vertex
//   edges:   E u64         destination vertex ids
//   rank[2]: V doubles     current and next rank
struct Graph {
  core::VAddr offsets;
  core::VAddr edges;
  core::VAddr rank[2];
  std::uint64_t vertices;
  std::uint64_t edge_count;
};

sim::Task<Graph> build_graph(core::MemorySpace& space, std::uint64_t vertices,
                             std::uint64_t epv, std::uint64_t seed) {
  Graph g{};
  g.vertices = vertices;

  // Host-side generation (setup is untimed, like loading from disk).
  sim::Rng rng(seed);
  std::vector<std::uint64_t> degree(vertices);
  std::uint64_t total = 0;
  for (auto& d : degree) {
    // Skewed degrees: a few hubs, many leaves.
    d = 1 + rng.below(epv) + (rng.chance(0.02) ? epv * 10 : 0);
    total += d;
  }
  g.edge_count = total;

  g.offsets = co_await space.map_range((vertices + 1) * 8);
  g.edges = co_await space.map_range(total * 8);
  g.rank[0] = co_await space.map_range(vertices * 8);
  g.rank[1] = co_await space.map_range(vertices * 8);

  std::uint64_t off = 0;
  for (std::uint64_t v = 0; v < vertices; ++v) {
    space.poke_pod<std::uint64_t>(g.offsets + v * 8, off);
    for (std::uint64_t e = 0; e < degree[v]; ++e) {
      space.poke_pod<std::uint64_t>(g.edges + (off + e) * 8,
                                    rng.below(vertices));
    }
    off += degree[v];
    space.poke_pod<double>(g.rank[0] + v * 8,
                           1.0 / static_cast<double>(vertices));
  }
  space.poke_pod<std::uint64_t>(g.offsets + vertices * 8, off);
  co_return g;
}

sim::Task<void> pagerank(core::MemorySpace& space, Graph g, int iterations,
                         double* out_top) {
  core::ThreadCtx t;
  const double damping = 0.85;
  int cur = 0;
  for (int it = 0; it < iterations; ++it) {
    const int next = 1 - cur;
    for (std::uint64_t v = 0; v < g.vertices; ++v) {
      co_await space.write_pod(t, g.rank[next] + v * 8,
                               (1.0 - damping) / static_cast<double>(g.vertices));
    }
    for (std::uint64_t v = 0; v < g.vertices; ++v) {
      const auto begin = co_await space.read_pod<std::uint64_t>(
          t, g.offsets + v * 8);
      const auto end = co_await space.read_pod<std::uint64_t>(
          t, g.offsets + (v + 1) * 8);
      const auto rank = co_await space.read_pod<double>(t, g.rank[cur] + v * 8);
      if (end == begin) continue;
      const double share =
          damping * rank / static_cast<double>(end - begin);
      for (std::uint64_t e = begin; e < end; ++e) {
        const auto dst = co_await space.read_pod<std::uint64_t>(
            t, g.edges + e * 8);
        const auto acc = co_await space.read_pod<double>(
            t, g.rank[next] + dst * 8);
        co_await space.write_pod(t, g.rank[next] + dst * 8, acc + share);
        t.compute(sim::ns(4));
      }
    }
    cur = next;
  }
  double top = 0;
  for (std::uint64_t v = 0; v < g.vertices; ++v) {
    top = std::max(top, space.peek_pod<double>(g.rank[cur] + v * 8));
  }
  *out_top = top;
  co_await space.sync(t);
}

}  // namespace

int main(int argc, char** argv) {
  auto raw = sim::Config::from_args(argc, argv);
  const auto vertices = raw.get_u64("vertices", 200'000);
  const auto epv = raw.get_u64("edges_per_vertex", 8);
  const auto iters = static_cast<int>(raw.get_int("iters", 2));

  sim::Engine engine;
  core::Cluster cluster(engine, core::ClusterConfig::from(raw));

  core::MemorySpace::Params mp;
  mp.mode = core::MemorySpace::Mode::kRemoteRegion;
  mp.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace space(cluster, 1, mp);

  Graph graph{};
  double top_rank = 0;
  core::Runner setup(engine);
  setup.spawn([](core::MemorySpace& s, std::uint64_t v, std::uint64_t e,
                 Graph* out) -> sim::Task<void> {
    *out = co_await build_graph(s, v, e, 11);
  }(space, vertices, epv, &graph));
  setup.run_all();

  core::Runner runner(engine);
  runner.spawn(pagerank(space, graph, iters, &top_rank));
  const sim::Time elapsed = runner.run_all();

  const double gb =
      static_cast<double>((graph.edge_count + 3 * graph.vertices) * 8) / 1e9;
  std::printf("pagerank over %llu vertices / %llu edges (%.2f GB borrowed "
              "memory), %d iterations\n",
              static_cast<unsigned long long>(graph.vertices),
              static_cast<unsigned long long>(graph.edge_count), gb, iters);
  std::printf("simulated time: %s  (%.2f us/edge-update)\n",
              sim::format_time(elapsed).c_str(),
              sim::to_us(elapsed) /
                  static_cast<double>(graph.edge_count * iters));
  std::printf("top rank: %.6f; remote accesses from node 1: %llu; "
              "intra-node coherence probes: %llu\n",
              top_rank,
              static_cast<unsigned long long>(
                  cluster.node(1).remote_accesses()),
              static_cast<unsigned long long>(
                  cluster.total_intra_node_probes()));
  return 0;
}
