// Dynamic memory regions: grow, shrink, donate, hot-remove.
//
// Walks through the OS-level life cycle of Fig. 1/4: node C's region grows
// into its neighbours, the cluster free-memory directory steers donor
// choice, a release returns the memory, and a donor hot-removes a DIMM's
// worth of frames — which must be refused while any of it is reserved.
//
// Run:   ./region_rebalance [nodes=16] [region.policy=nearest|most_free]
#include <cstdio>
#include <set>

#include "core/cluster.hpp"
#include "core/runner.hpp"
#include "sim/config.hpp"

using namespace ms;

namespace {

void print_free(core::Cluster& cluster, const char* when) {
  std::printf("%-38s", when);
  for (int n = 1; n <= std::min(6, cluster.num_nodes()); ++n) {
    std::printf(" n%d=%4llu MiB", n,
                static_cast<unsigned long long>(
                    cluster.directory().free_at(static_cast<ht::NodeId>(n)) >>
                    20));
  }
  std::printf("\n");
}

sim::Task<void> scenario(core::Cluster& cluster) {
  auto region = cluster.make_region(/*home=*/3);

  print_free(cluster, "boot (8 GiB/node donatable):");

  // 1. Node 3 grows its region: the directory picks donors (nearest by
  //    default), each grant is one pinned contiguous segment.
  std::vector<ht::PAddr> pages;
  const int want_pages = static_cast<int>((std::uint64_t{768} << 20) / 4096);
  for (int i = 0; i < want_pages; ++i) {
    auto page =
        co_await region->alloc_page(os::RegionManager::Placement::kRemoteOnly);
    if (!page) break;
    pages.push_back(*page);
  }
  std::printf("\nregion of node 3 grew by %llu MiB in %zu segments from:",
              static_cast<unsigned long long>(region->borrowed_bytes() >> 20),
              region->segment_count());
  {
    std::set<ht::NodeId> donors;
    for (auto p : pages) donors.insert(node::node_of(p));
    for (auto d : donors) std::printf(" node%u", d);
  }
  std::printf("\n");
  print_free(cluster, "after growth:");

  // 2. Hot-remove on a donor: refused while its frames are reserved.
  const ht::NodeId donor = node::node_of(pages.front());
  const ht::PAddr seg_base = node::local_part(pages.front());
  const bool removable_now =
      cluster.reservation().removable(donor, seg_base, 256 << 20);
  std::printf("\nhot-remove of the reserved range on node %u: %s\n", donor,
              removable_now ? "ALLOWED (bug!)" : "refused (still reserved)");

  // 3. Release everything; the memory returns and hot-remove succeeds.
  co_await region->release_all();
  print_free(cluster, "after release:");
  const bool removable_after =
      cluster.reservation().removable(donor, seg_base, 256 << 20);
  std::printf("hot-remove after release: %s\n",
              removable_after ? "allowed" : "refused (bug!)");
  if (removable_after) {
    cluster.allocator(donor).hot_remove(seg_base, 256 << 20);
    std::printf("node %u hot-removed 256 MiB (e.g. failing DIMM); free now "
                "%llu MiB\n",
                donor,
                static_cast<unsigned long long>(
                    cluster.directory().free_at(donor) >> 20));
    cluster.allocator(donor).hot_add(seg_base, 256 << 20);
  }

  // 4. Exhaustion: asking for more than the cluster holds is denied
  //    gracefully by the reservation protocol.
  auto region2 = cluster.make_region(/*home=*/1);
  std::uint64_t got = 0;
  while (true) {
    auto page =
        co_await region2->alloc_page(os::RegionManager::Placement::kRemoteOnly);
    if (!page) break;
    if (++got % (1 << 18) == 0) {
      // keep going; 1 GiB steps
    }
    if (got > (std::uint64_t{200} << 30) / 4096) break;  // safety
  }
  std::printf("\nnode 1 drained the whole pool: %llu GiB granted before the "
              "directory ran out of donors (%llu grants, %llu protocol "
              "denials overall)\n",
              static_cast<unsigned long long>(got * 4096 >> 30),
              static_cast<unsigned long long>(cluster.reservation().grants()),
              static_cast<unsigned long long>(
                  cluster.reservation().denials()));
  co_await region2->release_all();
}

}  // namespace

int main(int argc, char** argv) {
  sim::Engine engine;
  auto cfg = core::ClusterConfig::from(sim::Config::from_args(argc, argv));
  core::Cluster cluster(engine, cfg);
  std::printf("machine: %s\n\n", cfg.summary().c_str());

  core::Runner runner(engine);
  runner.spawn(scenario(cluster));
  const sim::Time elapsed = runner.run_all();
  std::printf("\nsimulated time for all OS activity: %s\n",
              sim::format_time(elapsed).c_str());
  return 0;
}
