// The prototype's parallelization discipline (Sec. IV-B):
//
// "as coherency is not maintained in I/O memory, we are restricted to use
// only serial applications and bind the process to a single core. Note
// that when there is a read-only phase in the application, we can
// successfully parallelize it and execute it with several threads, as no
// coherency is needed (once the cache contents corresponding to the write
// phase have been flushed)."
//
// This example runs exactly that protocol on borrowed memory: a serial
// write phase on core 0, an explicit cache flush, then a parallel
// read-only phase across all 16 cores — with a correctness check and the
// speedup report. It also shows what the flush is *for*: the write phase
// left dirty remote lines in core 0's cache; without the flush, other
// cores would read stale donor memory (the simulator's functional layer
// is store-ordered, so here the flush manifests as write-back traffic
// that must complete before the parallel phase's data is donor-resident).
//
// Run:   ./parallel_phase [elements=2000000] [threads=16]
#include <cstdio>

#include "core/cluster.hpp"
#include "core/memory_space.hpp"
#include "core/runner.hpp"
#include "sim/config.hpp"

using namespace ms;

namespace {

sim::Task<void> write_phase(core::MemorySpace& space, core::VAddr base,
                            std::uint64_t elements) {
  core::ThreadCtx t{.core = 0};
  for (std::uint64_t i = 0; i < elements; ++i) {
    co_await space.write_u64(t, base + i * 8, i * 31 + 7);
  }
  co_await space.sync(t);
}

sim::Task<void> read_slice(core::MemorySpace& space, core::VAddr base,
                           std::uint64_t begin, std::uint64_t end, int core,
                           std::uint64_t* errors) {
  core::ThreadCtx t{.core = core};
  for (std::uint64_t i = begin; i < end; ++i) {
    const auto v = co_await space.read_u64(t, base + i * 8);
    if (v != i * 31 + 7) ++*errors;
  }
  co_await space.sync(t);
}

}  // namespace

int main(int argc, char** argv) {
  auto raw = sim::Config::from_args(argc, argv);
  const auto elements = raw.get_u64("elements", 2'000'000);
  const int threads = static_cast<int>(raw.get_int("threads", 16));

  sim::Engine engine;
  core::Cluster cluster(engine, core::ClusterConfig::from(raw));

  core::MemorySpace::Params mp;
  mp.mode = core::MemorySpace::Mode::kRemoteRegion;
  mp.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace space(cluster, 1, mp);

  core::VAddr base = 0;
  core::Runner map_setup(engine);
  map_setup.spawn([](core::MemorySpace& s, std::uint64_t bytes,
                     core::VAddr* out) -> sim::Task<void> {
    *out = co_await s.map_range(bytes);
  }(space, elements * 8, &base));
  map_setup.run_all();

  // 1. Serial write phase, single core (the prototype's restriction).
  core::Runner writer(engine);
  writer.spawn(write_phase(space, base, elements));
  const sim::Time write_time = writer.run_all();

  // 2. Explicit flush of the writing core's cache.
  core::Runner flusher(engine);
  flusher.spawn(space.flush_cache(0));
  const sim::Time flush_time = flusher.run_all();

  // 3. Parallel read-only phase across all cores.
  std::vector<std::uint64_t> errors(static_cast<std::size_t>(threads), 0);
  core::Runner readers(engine);
  const std::uint64_t slice = elements / static_cast<std::uint64_t>(threads);
  for (int c = 0; c < threads; ++c) {
    const std::uint64_t begin = slice * static_cast<std::uint64_t>(c);
    const std::uint64_t end =
        c + 1 == threads ? elements : begin + slice;
    readers.spawn(read_slice(space, base, begin, end, c,
                             &errors[static_cast<std::size_t>(c)]));
  }
  const sim::Time parallel_read = readers.run_all();

  // Serial reference for the same read volume (core 0 alone).
  std::uint64_t serial_errors = 0;
  core::Runner serial(engine);
  serial.spawn(read_slice(space, base, 0, elements, 0, &serial_errors));
  const sim::Time serial_read = serial.run_all();

  std::uint64_t total_errors = serial_errors;
  for (auto e : errors) total_errors += e;

  std::printf("write phase (1 core):   %s\n",
              sim::format_time(write_time).c_str());
  std::printf("explicit cache flush:   %s\n",
              sim::format_time(flush_time).c_str());
  std::printf("read phase, %2d cores:   %s\n", threads,
              sim::format_time(parallel_read).c_str());
  std::printf("read phase,  1 core:    %s  -> parallel speedup %.2fx\n",
              sim::format_time(serial_read).c_str(),
              static_cast<double>(serial_read) /
                  static_cast<double>(parallel_read));
  std::printf("data errors: %llu (must be 0)\n",
              static_cast<unsigned long long>(total_errors));
  std::printf("intra-node coherence probes during it all: %llu "
              "(read-only sharing probes nothing)\n",
              static_cast<unsigned long long>(
                  cluster.total_intra_node_probes()));
  return total_errors == 0 ? 0 : 1;
}
