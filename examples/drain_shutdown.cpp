// Drain-before-shutdown: evacuating a donor while its memory is in use.
//
// A process on node 1 runs over a buffer borrowed from node 2. Node 2 then
// needs to go away (maintenance, failing DIMM, scale-in), so the broker
// drains it: new placement stops, every live page is migrated to other
// donors over the migration traffic class while the workload keeps reading
// and writing, the leases are handed back, and the frame range hot-removes
// cleanly. The workload never observes anything but a few microseconds of
// blackout per page.
//
// Run:   ./drain_shutdown [nodes=16] [accesses=4000]
#include <cstdio>

#include "broker/broker.hpp"
#include "core/cluster.hpp"
#include "core/memory_space.hpp"
#include "core/runner.hpp"
#include "sim/config.hpp"
#include "sim/random.hpp"

using namespace ms;

namespace {

sim::Task<void> workload(core::MemorySpace& space, core::VAddr base,
                         std::uint64_t words, std::uint64_t accesses,
                         std::uint64_t* errors) {
  core::ThreadCtx t;
  sim::Rng rng(7);
  for (std::uint64_t i = 0; i < accesses; ++i) {
    const core::VAddr a = base + rng.below(words) * 8;
    const std::uint64_t v = co_await space.read_u64(t, a);
    if (v != a * 3) ++*errors;  // every word holds 3x its address
    if (rng.chance(0.2)) co_await space.write_u64(t, a, a * 3);
  }
  co_await space.sync(t);
}

void print_donor(core::Cluster& cluster, broker::MemoryBroker& brk,
                 const char* when) {
  std::printf("%-28s leases on node 2: %zu (%llu MiB), free there: %llu MiB\n",
              when, brk.leases().count_on(2),
              static_cast<unsigned long long>(brk.leases().bytes_on(2) >> 20),
              static_cast<unsigned long long>(
                  cluster.directory().free_at(2) >> 20));
}

}  // namespace

int main(int argc, char** argv) {
  auto raw = sim::Config::from_args(argc, argv);
  const std::uint64_t accesses = raw.get_u64("accesses", 4000);
  sim::Engine engine;
  auto cfg = core::ClusterConfig::from(raw);
  core::Cluster cluster(engine, cfg);
  std::printf("machine: %s\n\n", cfg.summary().c_str());

  // Broker before the space: the space must die first (its accesses hold
  // pointers into the broker's migration gate).
  broker::MemoryBroker brk(cluster, broker::MemoryBroker::Params{});
  core::MemorySpace::Params mp;
  mp.mode = core::MemorySpace::Mode::kRemoteRegion;
  mp.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace space(cluster, 1, mp);
  brk.attach(space);

  // A 2 MiB buffer, borrowed entirely from node 2.
  constexpr std::uint64_t kBytes = 2 << 20;
  core::VAddr base = 0;
  core::Runner setup(engine);
  setup.spawn([](core::MemorySpace& s, core::VAddr* out) -> sim::Task<void> {
    *out = co_await s.map_range_on(kBytes, 2);
  }(space, &base));
  setup.run_all();
  for (core::VAddr off = 0; off < kBytes; off += 8) {
    space.poke_pod<std::uint64_t>(base + off, (base + off) * 3);
  }
  print_donor(cluster, brk, "after setup:");

  // Run the workload; 20 us in, node 2 gets its eviction notice.
  std::uint64_t errors = 0;
  core::Runner run(engine);
  run.spawn(workload(space, base, kBytes / 8, accesses, &errors));
  engine.schedule(sim::us(20), [&engine, &brk] {
    std::printf("t=20us: draining donor 2 (drain-before-shutdown)\n");
    engine.spawn(brk.drain_donor(2));
  });
  const sim::Time elapsed = run.run_all();

  print_donor(cluster, brk, "after drain:");
  std::printf("\nworkload: %llu accesses, %llu data errors\n",
              static_cast<unsigned long long>(accesses),
              static_cast<unsigned long long>(errors));
  std::printf("migrations: %llu, parked accesses: %llu, mean blackout: "
              "%.2f us\n",
              static_cast<unsigned long long>(brk.migration().migrations()),
              static_cast<unsigned long long>(brk.migration().parked_waits()),
              brk.migration().blackout().count()
                  ? brk.migration().blackout().mean() / 1e6
                  : 0.0);
  std::printf("donor 2 drained: %s — hot-remove of its frames now succeeds\n",
              brk.drained(2) ? "yes" : "NO (cluster could not absorb it)");
  std::printf("simulated time: %s\n", sim::format_time(elapsed).c_str());
  return errors == 0 && brk.drained(2) ? 0 : 1;
}
