// Quickstart: borrow memory from other nodes and use it with plain
// loads/stores.
//
// Builds the paper's 16-node machine, starts a process on node 1, and
// allocates a buffer through the interposed allocator (the paper's special
// malloc). The allocation lands in memory donated by another node; the
// writes and reads below travel through node 1's RMC and the 4x4 mesh —
// no software on the access path, no inter-node coherence anywhere.
//
// Run:   ./quickstart [key=value ...]     e.g. nodes=4 topology=ring
#include <cstdio>

#include "core/cluster.hpp"
#include "core/memory_space.hpp"
#include "core/remote_allocator.hpp"
#include "core/runner.hpp"
#include "sim/config.hpp"

using namespace ms;

namespace {

sim::Task<void> demo(core::Cluster& cluster, core::MemorySpace& space,
                     core::RemoteAllocator& alloc) {
  core::ThreadCtx thread;  // one app thread pinned to core 0 of node 1

  // "malloc" 32 MiB — transparently placed in borrowed memory.
  const std::uint64_t kBytes = 32 << 20;
  core::VAddr buf = co_await alloc.gmalloc(kBytes);
  ht::PAddr backing = co_await space.backing_of(buf);
  std::printf("gmalloc(32 MiB) -> VA 0x%llx, physically on node %u "
              "(prefixed PA 0x%llx)\n",
              static_cast<unsigned long long>(buf), node::node_of(backing),
              static_cast<unsigned long long>(backing));

  // Ordinary stores...
  for (std::uint64_t i = 0; i < 1000; ++i) {
    co_await space.write_u64(thread, buf + i * 8, i * i);
  }
  // ... and ordinary loads.
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    sum += co_await space.read_u64(thread, buf + i * 8);
  }
  co_await space.sync(thread);
  std::printf("sum of 1000 squares read back over the fabric: %llu (%s)\n",
              static_cast<unsigned long long>(sum),
              sum == 332833500u ? "correct" : "WRONG");

  // Proof that the bytes really live on the donor: read the donor's DRAM
  // image directly from the backing store.
  const ht::NodeId donor = node::node_of(backing);
  std::printf("donor node %u DRAM at +8: %llu (expect 1)\n", donor,
              static_cast<unsigned long long>(cluster.store().read_u64(
                  donor, node::local_part(backing) + 8)));

  alloc.gfree(buf);
}

}  // namespace

int main(int argc, char** argv) {
  sim::Engine engine;
  auto cfg = core::ClusterConfig::from(sim::Config::from_args(argc, argv));
  core::Cluster cluster(engine, cfg);
  std::printf("machine: %s\n\n", cfg.summary().c_str());

  core::MemorySpace::Params mp;
  mp.mode = core::MemorySpace::Mode::kRemoteRegion;
  mp.placement = os::RegionManager::Placement::kRemoteOnly;
  core::MemorySpace space(cluster, /*home=*/1, mp);
  core::RemoteAllocator alloc(space);

  core::Runner runner(engine);
  runner.spawn(demo(cluster, space, alloc));
  const sim::Time elapsed = runner.run_all();

  std::printf("\nsimulated time: %s\n", sim::format_time(elapsed).c_str());
  std::printf("node 1 RMC round trips: %llu (mean %s)\n",
              static_cast<unsigned long long>(
                  cluster.rmc(1).client_requests()),
              sim::format_time(static_cast<sim::Time>(
                                   cluster.rmc(1).round_trip().mean()))
                  .c_str());
  std::printf("inter-node coherence probes anywhere: 0 by construction; "
              "intra-node probes: %llu\n",
              static_cast<unsigned long long>(
                  cluster.total_intra_node_probes()));
  return 0;
}
