# Empty compiler generated dependencies file for memscale.
# This may be replaced when dependencies are built.
